// Package bk implements the two Bron–Kerbosch maximal-clique enumeration
// baselines the paper builds on (its Section 2.2): Base BK, which extends
// by candidates in presentation order, and Improved BK, which pivots on a
// candidate with the most connections into CANDIDATES.  Both are the
// recursive backtracking scheme over the three dynamic sets COMPSUB,
// CANDIDATES and NOT; a node reports COMPSUB as a maximal clique when both
// derived sets are empty.
//
// These serve as correctness oracles for the Clique Enumerator and as the
// foundation of the k-clique seeder in package kclique.
package bk

import (
	"repro/internal/bitset"
	"repro/internal/clique"
	"repro/internal/graph"
)

// Variant selects the vertex-selection strategy.
type Variant int

const (
	// Base selects candidates in canonical (index) order — "Base BK".
	Base Variant = iota
	// Improved pivots on a highest-connectivity candidate and only
	// branches on candidates outside the pivot's neighborhood —
	// "Improved BK".
	Improved
)

// Enumerate reports every maximal clique of g to r.  The emitted slice is
// reused between calls; reporters must copy if they retain it.
func Enumerate(g graph.Interface, variant Variant, r clique.Reporter) {
	n := g.N()
	e := &enumerator{
		g:       g,
		variant: variant,
		report:  r,
		pool:    bitset.NewPool(n),
		scratch: make([]int, 0, n),
	}
	if variant == Improved {
		e.pivotRow = bitset.New(n)
	}
	candidates := bitset.New(n)
	candidates.SetAll()
	not := bitset.New(n)
	e.extend(candidates, not)
}

type enumerator struct {
	g       graph.Interface
	variant Variant
	report  clique.Reporter
	pool    *bitset.Pool
	compsub clique.Clique
	emitBuf clique.Clique
	scratch []int
	// pivotRow is the densified neighborhood of the current pivot: the
	// per-candidate membership probe must not walk a compressed row per
	// candidate (Improved variant only).
	pivotRow *bitset.Bitset
}

// extend is the EXTEND operator of Bron and Kerbosch: it consumes
// candidates (destructively) and not (destructively), branching on each
// selected vertex.
func (e *enumerator) extend(candidates, not *bitset.Bitset) {
	if candidates.None() {
		// COMPSUB is a stack, not a sorted set: deeper branches may hold
		// smaller indices, so canonicalize into a reusable buffer before
		// emitting.  The empty COMPSUB (edgeless root) is not a clique.
		if not.None() && len(e.compsub) > 0 {
			e.emitBuf = append(e.emitBuf[:0], e.compsub...)
			e.report.Emit(clique.Normalize(e.emitBuf))
		}
		return
	}

	// Branch set: all candidates for Base; candidates outside the pivot's
	// neighborhood for Improved.
	branch := e.scratch[:0]
	if e.variant == Improved {
		pivot := e.selectPivot(candidates, not)
		e.g.Materialize(pivot, e.pivotRow)
		pn := e.pivotRow
		candidates.ForEach(func(v int) bool {
			if !pn.Test(v) {
				branch = append(branch, v)
			}
			return true
		})
	} else {
		branch = candidates.AppendIndices(branch)
	}
	// branch aliases e.scratch; recursion below reuses e.scratch, so copy.
	branchCopy := append([]int(nil), branch...)

	for _, v := range branchCopy {
		if !candidates.Test(v) {
			continue // consumed by an earlier iteration's move to NOT
		}
		rv := e.g.Row(v)
		newCand := e.pool.GetNoClear()
		rv.AndInto(newCand, candidates)
		newNot := e.pool.GetNoClear()
		rv.AndInto(newNot, not)

		e.compsub = append(e.compsub, v)
		e.extend(newCand, newNot)
		e.compsub = e.compsub[:len(e.compsub)-1]

		e.pool.Put(newCand)
		e.pool.Put(newNot)

		candidates.Clear(v)
		not.Set(v)
	}
}

// selectPivot returns the vertex from CANDIDATES ∪ NOT with the most
// neighbors inside CANDIDATES (Improved BK's "highest number of
// connections to the remaining members of CANDIDATES"; taking the pivot
// from either set is the standard strengthening).
func (e *enumerator) selectPivot(candidates, not *bitset.Bitset) int {
	best, bestDeg := -1, -1
	consider := func(v int) bool {
		d := e.g.Row(v).AndCount(candidates)
		if d > bestDeg {
			best, bestDeg = v, d
		}
		return true
	}
	candidates.ForEach(consider)
	not.ForEach(consider)
	return best
}

// MaximalCliques is a convenience wrapper returning all maximal cliques,
// sorted by size then lexicographically.
func MaximalCliques(g graph.Interface, variant Variant) []clique.Clique {
	col := &clique.Collector{}
	Enumerate(g, variant, col)
	col.Sort()
	return col.Cliques
}
