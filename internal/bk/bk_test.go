package bk

import (
	"math/rand"
	"testing"

	"repro/internal/clique"
	"repro/internal/graph"
)

func TestEmptyAndTrivialGraphs(t *testing.T) {
	for _, variant := range []Variant{Base, Improved} {
		if got := MaximalCliques(graph.New(0), variant); len(got) != 0 {
			t.Errorf("variant %d: empty graph -> %v", variant, got)
		}
		// Isolated vertices are maximal 1-cliques.
		got := MaximalCliques(graph.New(3), variant)
		if len(got) != 3 {
			t.Errorf("variant %d: 3 isolated vertices -> %v", variant, got)
		}
	}
}

func TestSingleEdge(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	for _, variant := range []Variant{Base, Improved} {
		got := MaximalCliques(g, variant)
		if len(got) != 1 || got[0].Key() != "0,1" {
			t.Errorf("variant %d: K2 -> %v", variant, got)
		}
	}
}

func TestCompleteGraph(t *testing.T) {
	g := graph.New(6)
	graph.PlantClique(g, []int{0, 1, 2, 3, 4, 5})
	for _, variant := range []Variant{Base, Improved} {
		got := MaximalCliques(g, variant)
		if len(got) != 1 || len(got[0]) != 6 {
			t.Errorf("variant %d: K6 -> %v", variant, got)
		}
	}
}

func TestPaperFigure4Graph(t *testing.T) {
	// The running example of the paper's Figure 4: a graph with two
	// maximal 3-cliques, one maximal 4-clique and one maximal 5-clique.
	// Vertices a..g = 0..6: 5-clique {a,b,c,d,e}, 4-clique {a,b,c,f} is
	// not constructible without overlap side effects, so build the
	// canonical overlap structure instead: 5-clique {0,1,2,3,4},
	// 4-clique {1,2,3,5}, 3-cliques {0,5,6} and {2,4,6} — then verify
	// against brute force rather than hand-counting.
	g := graph.New(7)
	graph.PlantClique(g, []int{0, 1, 2, 3, 4})
	graph.PlantClique(g, []int{1, 2, 3, 5})
	graph.PlantClique(g, []int{0, 5, 6})
	graph.PlantClique(g, []int{2, 4, 6})
	want := clique.BruteForceMaximal(g)
	for _, variant := range []Variant{Base, Improved} {
		got := MaximalCliques(g, variant)
		if ok, diff := clique.SameSets(got, want); !ok {
			t.Errorf("variant %d: %s", variant, diff)
		}
	}
}

func TestVariantsAgreeOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(14)
		p := []float64{0.2, 0.4, 0.6, 0.8}[trial%4]
		g := graph.RandomGNP(rng, n, p)
		want := clique.BruteForceMaximal(g)
		for _, variant := range []Variant{Base, Improved} {
			got := MaximalCliques(g, variant)
			if err := clique.Validate(g, got, 1, 0); err != nil {
				t.Fatalf("trial %d variant %d: %v", trial, variant, err)
			}
			if ok, diff := clique.SameSets(got, want); !ok {
				t.Fatalf("trial %d variant %d: %s", trial, variant, diff)
			}
		}
	}
}

func TestMoonMoserExtremal(t *testing.T) {
	// The Moon–Moser graph K_{3,3,3...} (complete multipartite with parts
	// of size 3) has exactly 3^(n/3) maximal cliques — the paper's worst
	// case ("as many as 3^(n/3) maximal cliques").  n = 9 gives 27.
	g := graph.New(9)
	for u := 0; u < 9; u++ {
		for v := u + 1; v < 9; v++ {
			if u/3 != v/3 {
				g.AddEdge(u, v)
			}
		}
	}
	for _, variant := range []Variant{Base, Improved} {
		got := MaximalCliques(g, variant)
		if len(got) != 27 {
			t.Errorf("variant %d: Moon-Moser n=9 -> %d cliques, want 27",
				variant, len(got))
		}
		for _, c := range got {
			if len(c) != 3 {
				t.Errorf("variant %d: clique %v size != 3", variant, c)
			}
		}
	}
}

func TestEmittedSliceIsBorrowed(t *testing.T) {
	// The enumerator may reuse the emitted backing array; the Collector
	// copies.  Make sure results survive.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	col := &clique.Collector{}
	Enumerate(g, Base, col)
	keys := map[string]bool{}
	for _, c := range col.Cliques {
		keys[c.Key()] = true
	}
	if !keys["0,1"] || !keys["2,3"] {
		t.Errorf("cliques corrupted: %v", col.Cliques)
	}
}

func TestImprovedVisitsFewerNodesOnOverlap(t *testing.T) {
	// Improved BK's pivoting prunes overlapping-clique graphs.  Count
	// emitted-callback invocations as a proxy via custom reporters is not
	// possible (same count); instead just sanity-check both work on a
	// dense overlap case.
	rng := rand.New(rand.NewSource(5))
	g := graph.PlantedGraph(rng, 30, []graph.PlantedCliqueSpec{
		{Size: 8}, {Size: 8, Overlap: 4}, {Size: 6, Overlap: 3},
	}, 40)
	baseCliques := MaximalCliques(g, Base)
	improvedCliques := MaximalCliques(g, Improved)
	if ok, diff := clique.SameSets(baseCliques, improvedCliques); !ok {
		t.Fatalf("variants disagree: %s", diff)
	}
	if err := clique.Validate(g, baseCliques, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBaseBK(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.PlantedGraph(rng, 300, []graph.PlantedCliqueSpec{{Size: 12}}, 600)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Enumerate(g, Base, clique.ReporterFunc(func(clique.Clique) {}))
	}
}

func BenchmarkImprovedBK(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.PlantedGraph(rng, 300, []graph.PlantedCliqueSpec{{Size: 12}}, 600)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Enumerate(g, Improved, clique.ReporterFunc(func(clique.Clique) {}))
	}
}
