package pathways

import (
	"math/big"
	"testing"
)

// linearChain: ->(R0) A ->(R1) B ->(R2) out.  One mode: R0+R1+R2.
func linearChain() *Network {
	net := &Network{Metabolites: []string{"A", "B"}}
	net.AddReaction("in", false, map[int]int64{0: 1})
	net.AddReaction("AtoB", false, map[int]int64{0: -1, 1: 1})
	net.AddReaction("out", false, map[int]int64{1: -1})
	return net
}

// diamond: in->A; A->B; A->C; B->D; C->D; D->out.  Two modes.
func diamond() *Network {
	net := &Network{Metabolites: []string{"A", "B", "C", "D"}}
	net.AddReaction("in", false, map[int]int64{0: 1})
	net.AddReaction("AB", false, map[int]int64{0: -1, 1: 1})
	net.AddReaction("AC", false, map[int]int64{0: -1, 2: 1})
	net.AddReaction("BD", false, map[int]int64{1: -1, 3: 1})
	net.AddReaction("CD", false, map[int]int64{2: -1, 3: 1})
	net.AddReaction("out", false, map[int]int64{3: -1})
	return net
}

func modes(t *testing.T, net *Network) []Mode {
	t.Helper()
	ms, err := ElementaryModes(net)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range ms {
		if err := Verify(net, m); err != nil {
			t.Fatalf("mode %d (%v) invalid: %v", i, m, err)
		}
	}
	return ms
}

func TestLinearChain(t *testing.T) {
	ms := modes(t, linearChain())
	if len(ms) != 1 {
		t.Fatalf("modes = %v, want 1", ms)
	}
	for _, f := range ms[0].Flux {
		if f.Cmp(big.NewInt(1)) != 0 {
			t.Errorf("chain mode = %v, want all ones", ms[0])
		}
	}
}

func TestDiamondTwoModes(t *testing.T) {
	ms := modes(t, diamond())
	if len(ms) != 2 {
		t.Fatalf("found %d modes, want 2: %v", len(ms), ms)
	}
	// One mode uses AB+BD, the other AC+CD; both use in and out.
	usesB, usesC := false, false
	for _, m := range ms {
		if m.Flux[1].Sign() != 0 && m.Flux[3].Sign() != 0 {
			usesB = true
		}
		if m.Flux[2].Sign() != 0 && m.Flux[4].Sign() != 0 {
			usesC = true
		}
		if m.Flux[0].Sign() == 0 || m.Flux[5].Sign() == 0 {
			t.Errorf("mode %v skips exchange fluxes", m)
		}
	}
	if !usesB || !usesC {
		t.Errorf("branches not both covered: %v", ms)
	}
}

func TestStoichiometryCoefficients(t *testing.T) {
	// in -> A; 2A -> B (R1); B -> out.  Mode must carry flux 2 on "in".
	net := &Network{Metabolites: []string{"A", "B"}}
	net.AddReaction("in", false, map[int]int64{0: 1})
	net.AddReaction("2AtoB", false, map[int]int64{0: -2, 1: 1})
	net.AddReaction("out", false, map[int]int64{1: -1})
	ms := modes(t, net)
	if len(ms) != 1 {
		t.Fatalf("modes = %v", ms)
	}
	m := ms[0]
	if m.Flux[0].Cmp(big.NewInt(2)) != 0 ||
		m.Flux[1].Cmp(big.NewInt(1)) != 0 ||
		m.Flux[2].Cmp(big.NewInt(1)) != 0 {
		t.Errorf("mode = %v, want 2,1,1", m)
	}
}

func TestReversibleReactionOrientation(t *testing.T) {
	// in -> A; A <-> B; B -> out.  One forward mode; the reversible
	// reaction's backward direction cannot appear alone.
	net := &Network{Metabolites: []string{"A", "B"}}
	net.AddReaction("in", false, map[int]int64{0: 1})
	net.AddReaction("AB", true, map[int]int64{0: -1, 1: 1})
	net.AddReaction("out", false, map[int]int64{1: -1})
	ms := modes(t, net)
	if len(ms) != 1 {
		t.Fatalf("modes = %v, want 1", ms)
	}
	if ms[0].Flux[1].Sign() != 1 {
		t.Errorf("reversible reaction should run forward: %v", ms[0])
	}
}

func TestFullyReversibleCycleDeduplicated(t *testing.T) {
	// A <-> B (R0), B <-> C (R1), C <-> A (R2): one internal cycle mode
	// (not two orientations), with equal magnitudes.
	net := &Network{Metabolites: []string{"A", "B", "C"}}
	net.AddReaction("AB", true, map[int]int64{0: -1, 1: 1})
	net.AddReaction("BC", true, map[int]int64{1: -1, 2: 1})
	net.AddReaction("CA", true, map[int]int64{2: -1, 0: 1})
	ms := modes(t, net)
	if len(ms) != 1 {
		t.Fatalf("cycle modes = %v, want exactly 1 after orientation dedup", ms)
	}
	if ms[0].Flux[0].Sign() <= 0 {
		t.Errorf("canonical orientation should lead positive: %v", ms[0])
	}
}

func TestSupportMinimality(t *testing.T) {
	// Elementarity: no mode's support may strictly contain another's.
	for _, net := range []*Network{linearChain(), diamond(), schusterExample()} {
		ms := modes(t, net)
		for i := range ms {
			for j := range ms {
				if i == j {
					continue
				}
				si, sj := ms[i].Support(), ms[j].Support()
				if len(si) < len(sj) && subset(si, sj) {
					t.Errorf("mode %v support inside %v", ms[i], ms[j])
				}
			}
		}
	}
}

func subset(a, b []int) bool {
	bm := map[int]bool{}
	for _, x := range b {
		bm[x] = true
	}
	for _, x := range a {
		if !bm[x] {
			return false
		}
	}
	return true
}

// schusterExample is a small branched network with a reversible internal
// reaction, exercising split-merge and multiple branch modes at once.
func schusterExample() *Network {
	net := &Network{Metabolites: []string{"A", "B", "C"}}
	net.AddReaction("in", false, map[int]int64{0: 1})        // -> A
	net.AddReaction("AB", true, map[int]int64{0: -1, 1: 1})  // A <-> B
	net.AddReaction("AC", false, map[int]int64{0: -1, 2: 1}) // A -> C
	net.AddReaction("BC", false, map[int]int64{1: -1, 2: 1}) // B -> C
	net.AddReaction("out", false, map[int]int64{2: -1})      // C ->
	return net
}

func TestSchusterExample(t *testing.T) {
	ms := modes(t, schusterExample())
	// Two production routes: in,AB,BC,out and in,AC,out.
	if len(ms) != 2 {
		t.Fatalf("found %d modes: %v", len(ms), ms)
	}
}

func TestEmptyAndErrorCases(t *testing.T) {
	ms, err := ElementaryModes(&Network{})
	if err != nil || ms != nil {
		t.Errorf("empty network: %v, %v", ms, err)
	}
	bad := &Network{Metabolites: []string{"A"}}
	bad.AddReaction("r", false, map[int]int64{7: 1})
	if _, err := ElementaryModes(bad); err == nil {
		t.Error("out-of-range metabolite accepted")
	}
}

func TestVerifyRejectsBadModes(t *testing.T) {
	net := linearChain()
	wrong := Mode{Flux: []*big.Int{big.NewInt(1), big.NewInt(2), big.NewInt(1)}}
	if err := Verify(net, wrong); err == nil {
		t.Error("unbalanced mode accepted")
	}
	short := Mode{Flux: []*big.Int{big.NewInt(1)}}
	if err := Verify(net, short); err == nil {
		t.Error("wrong-length mode accepted")
	}
	neg := Mode{Flux: []*big.Int{big.NewInt(-1), big.NewInt(-1), big.NewInt(-1)}}
	if err := Verify(net, neg); err == nil {
		t.Error("negative irreversible flux accepted")
	}
}

func TestModeString(t *testing.T) {
	m := Mode{Flux: []*big.Int{big.NewInt(2), big.NewInt(0), big.NewInt(-1)}}
	if got := m.String(); got != "2 R0 - R2" {
		t.Errorf("String = %q", got)
	}
	zero := Mode{Flux: []*big.Int{big.NewInt(0)}}
	if zero.String() != "0" {
		t.Errorf("zero String = %q", zero.String())
	}
}

func TestGrowingNetworkModeCount(t *testing.T) {
	// k parallel branches from A to B: k modes, matching the
	// combinatorial growth the paper describes for extreme pathways.
	for k := 1; k <= 6; k++ {
		net := &Network{Metabolites: []string{"A", "B"}}
		net.AddReaction("in", false, map[int]int64{0: 1})
		for b := 0; b < k; b++ {
			net.AddReaction("branch", false, map[int]int64{0: -1, 1: 1})
		}
		net.AddReaction("out", false, map[int]int64{1: -1})
		ms := modes(t, net)
		if len(ms) != k {
			t.Errorf("k=%d branches: %d modes", k, len(ms))
		}
	}
}
