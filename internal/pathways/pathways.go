// Package pathways enumerates extreme pathways / elementary flux modes of
// metabolic networks — the first genome-scale application the paper
// motivates: "The enumeration of a complete set of 'systemically
// independent' metabolic pathways, termed 'extreme pathways' is at the
// core of these approaches" (Section 1), a problem equivalent to
// enumerating the vertices of a convex polyhedron.
//
// The implementation is the classical stoichiometric tableau (double
// description) algorithm of Schuster et al.: starting from one ray per
// reaction, each metabolite's steady-state constraint is imposed in turn
// by pairwise-combining positive and negative rays, keeping only
// combinations whose support is minimal.  Reversible reactions are
// handled by the standard forward/backward split, with futile two-cycles
// removed and the split re-merged in the output.  Arithmetic is exact
// (math/big), so no mode is lost or invented by rounding.
package pathways

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// Reaction is one column of the stoichiometric matrix.
type Reaction struct {
	Name       string
	Reversible bool
	// Stoich maps metabolite index to its coefficient: negative for
	// consumed, positive for produced.
	Stoich map[int]int64
}

// Network is a metabolic network: metabolites are the rows, reactions the
// columns of the stoichiometric matrix.  Exchange (boundary) reactions
// are ordinary reactions that touch only internal metabolites on one
// side; the caller decides which metabolites are balanced by listing only
// those as rows.
type Network struct {
	Metabolites []string
	Reactions   []Reaction
}

// AddReaction appends a reaction and returns its index.
func (n *Network) AddReaction(name string, reversible bool, stoich map[int]int64) int {
	n.Reactions = append(n.Reactions, Reaction{Name: name, Reversible: reversible, Stoich: stoich})
	return len(n.Reactions) - 1
}

// Mode is one elementary flux mode: an integer flux vector, one entry per
// reaction (negative only on reversible reactions), with inclusion-
// minimal support among all steady-state flux vectors.
type Mode struct {
	Flux []*big.Int
}

// Support returns the indices of reactions carrying flux.
func (m Mode) Support() []int {
	var s []int
	for i, f := range m.Flux {
		if f.Sign() != 0 {
			s = append(s, i)
		}
	}
	return s
}

// String renders the mode as "2 R1 + R3 - R7".
func (m Mode) String() string {
	var sb strings.Builder
	first := true
	for i, f := range m.Flux {
		switch f.Sign() {
		case 0:
			continue
		case 1:
			if !first {
				sb.WriteString(" + ")
			}
		case -1:
			if first {
				sb.WriteString("-")
			} else {
				sb.WriteString(" - ")
			}
		}
		abs := new(big.Int).Abs(f)
		if abs.Cmp(big.NewInt(1)) != 0 {
			fmt.Fprintf(&sb, "%v ", abs)
		}
		fmt.Fprintf(&sb, "R%d", i)
		first = false
	}
	if first {
		return "0"
	}
	return sb.String()
}

// ray is a working vector over the split (all-irreversible) columns.
type ray struct {
	coeff []*big.Int // nonnegative, one per split column
	val   *big.Int   // current constraint row value (cached per iteration)
}

func (r *ray) support() map[int]bool {
	s := make(map[int]bool)
	for i, c := range r.coeff {
		if c.Sign() != 0 {
			s[i] = true
		}
	}
	return s
}

// ElementaryModes enumerates all elementary flux modes of the network.
// The result is deterministic: modes are sorted by support then
// lexicographically by flux.
func ElementaryModes(net *Network) ([]Mode, error) {
	nr := len(net.Reactions)
	if nr == 0 {
		return nil, nil
	}
	nm := len(net.Metabolites)
	for ri, r := range net.Reactions {
		for mi := range r.Stoich {
			if mi < 0 || mi >= nm {
				return nil, fmt.Errorf("pathways: reaction %d references metabolite %d of %d", ri, mi, nm)
			}
		}
	}

	// Split reversible reactions: column j is (reaction, direction).
	type column struct {
		reaction int
		sign     int64
	}
	var cols []column
	for ri, r := range net.Reactions {
		cols = append(cols, column{ri, +1})
		if r.Reversible {
			cols = append(cols, column{ri, -1})
		}
	}
	nc := len(cols)

	// S' over split columns.
	srow := func(mi, ci int) int64 {
		c := cols[ci]
		return net.Reactions[c.reaction].Stoich[mi] * c.sign
	}

	// Initial rays: the split-column unit vectors.
	rays := make([]*ray, nc)
	for ci := 0; ci < nc; ci++ {
		r := &ray{coeff: make([]*big.Int, nc)}
		for j := range r.coeff {
			r.coeff[j] = new(big.Int)
		}
		r.coeff[ci].SetInt64(1)
		rays[ci] = r
	}

	// Impose each metabolite's steady-state constraint.
	for mi := 0; mi < nm; mi++ {
		var zero, pos, neg []*ray
		for _, r := range rays {
			v := new(big.Int)
			for ci, c := range r.coeff {
				if c.Sign() != 0 {
					v.Add(v, new(big.Int).Mul(c, big.NewInt(srow(mi, ci))))
				}
			}
			r.val = v
			switch v.Sign() {
			case 0:
				zero = append(zero, r)
			case 1:
				pos = append(pos, r)
			default:
				neg = append(neg, r)
			}
		}
		next := zero
		for _, p := range pos {
			for _, q := range neg {
				comb := combine(p, q)
				if isElementary(comb, rays, p, q) {
					next = append(next, comb)
				}
			}
		}
		rays = next
	}

	// Translate back to reaction space, discarding futile two-cycles
	// (forward+backward of the same reversible reaction).
	seen := make(map[string]bool)
	var modes []Mode
	for _, r := range rays {
		flux := make([]*big.Int, nr)
		for i := range flux {
			flux[i] = new(big.Int)
		}
		futile := false
		for ci, c := range r.coeff {
			if c.Sign() == 0 {
				continue
			}
			col := cols[ci]
			term := new(big.Int).Mul(c, big.NewInt(col.sign))
			sum := new(big.Int).Add(flux[col.reaction], term)
			if flux[col.reaction].Sign() != 0 && sum.Sign() == 0 {
				futile = true
			}
			flux[col.reaction] = sum
		}
		if futile || allZero(flux) {
			continue
		}
		normalize(flux)
		// A mode supported only by reversible reactions is the same
		// pathway in both orientations; canonicalize so the pair
		// deduplicates to one mode with positive leading flux.
		if allReversible(net, flux) {
			for _, f := range flux {
				if s := f.Sign(); s != 0 {
					if s < 0 {
						for _, g := range flux {
							g.Neg(g)
						}
					}
					break
				}
			}
		}
		key := fluxKey(flux)
		if seen[key] {
			continue
		}
		seen[key] = true
		modes = append(modes, Mode{Flux: flux})
	}
	sort.Slice(modes, func(i, j int) bool {
		return fluxKey(modes[i].Flux) < fluxKey(modes[j].Flux)
	})
	return modes, nil
}

// combine cancels the current constraint row between a positive and a
// negative ray: r = val(p)*q + (-val(q))*p.
func combine(p, q *ray) *ray {
	a := new(big.Int).Neg(q.val) // > 0
	b := new(big.Int).Set(p.val) // > 0
	out := &ray{coeff: make([]*big.Int, len(p.coeff))}
	for i := range out.coeff {
		out.coeff[i] = new(big.Int).Add(
			new(big.Int).Mul(a, p.coeff[i]),
			new(big.Int).Mul(b, q.coeff[i]),
		)
	}
	reduce(out.coeff)
	return out
}

// isElementary keeps a combined ray only if no existing ray (other than
// its parents) has support strictly inside the combination's support —
// the standard minimality test that prevents non-extreme rays from
// surviving.
func isElementary(comb *ray, rays []*ray, p, q *ray) bool {
	supp := comb.support()
	for _, r := range rays {
		if r == p || r == q {
			continue
		}
		subset := true
		for i, c := range r.coeff {
			if c.Sign() != 0 && !supp[i] {
				subset = false
				break
			}
		}
		if subset {
			return false
		}
	}
	return true
}

// reduce divides the coefficients by their collective GCD.
func reduce(coeff []*big.Int) {
	g := new(big.Int)
	for _, c := range coeff {
		if c.Sign() != 0 {
			g.GCD(nil, nil, g, new(big.Int).Abs(c))
		}
	}
	if g.Sign() == 0 || g.Cmp(big.NewInt(1)) == 0 {
		return
	}
	for _, c := range coeff {
		c.Quo(c, g)
	}
}

func normalize(flux []*big.Int) { reduce(flux) }

// allReversible reports whether every reaction carrying flux is
// reversible.
func allReversible(net *Network, flux []*big.Int) bool {
	for ri, f := range flux {
		if f.Sign() != 0 && !net.Reactions[ri].Reversible {
			return false
		}
	}
	return true
}

func allZero(flux []*big.Int) bool {
	for _, f := range flux {
		if f.Sign() != 0 {
			return false
		}
	}
	return true
}

func fluxKey(flux []*big.Int) string {
	var sb strings.Builder
	for i, f := range flux {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(f.String())
	}
	return sb.String()
}

// Verify checks that a mode satisfies steady state (S·v = 0) and respects
// irreversibility (no negative flux on irreversible reactions).
func Verify(net *Network, m Mode) error {
	if len(m.Flux) != len(net.Reactions) {
		return fmt.Errorf("pathways: flux length %d, want %d", len(m.Flux), len(net.Reactions))
	}
	for ri, r := range net.Reactions {
		if !r.Reversible && m.Flux[ri].Sign() < 0 {
			return fmt.Errorf("pathways: irreversible reaction %d has negative flux", ri)
		}
	}
	for mi := range net.Metabolites {
		sum := new(big.Int)
		for ri, r := range net.Reactions {
			if c, ok := r.Stoich[mi]; ok && c != 0 {
				sum.Add(sum, new(big.Int).Mul(m.Flux[ri], big.NewInt(c)))
			}
		}
		if sum.Sign() != 0 {
			return fmt.Errorf("pathways: metabolite %d unbalanced: %v", mi, sum)
		}
	}
	return nil
}
