package microarray

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTSV writes the matrix in the tab-separated layout microarray
// repositories use: a header row "gene<TAB>cond_1<TAB>...", then one row
// per gene with its identifier and expression values.
func WriteTSV(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprint(bw, "gene"); err != nil {
		return err
	}
	for c := 0; c < m.Conditions; c++ {
		if _, err := fmt.Fprintf(bw, "\tcond_%d", c+1); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw); err != nil {
		return err
	}
	for g := 0; g < m.Genes; g++ {
		name := fmt.Sprintf("gene_%d", g)
		if m.Names != nil && m.Names[g] != "" {
			name = m.Names[g]
		}
		if _, err := fmt.Fprint(bw, name); err != nil {
			return err
		}
		for c := 0; c < m.Conditions; c++ {
			if _, err := fmt.Fprintf(bw, "\t%g", m.Data[g][c]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTSV parses the layout written by WriteTSV.  All rows must have the
// same number of value columns; the header row is required.
func ReadTSV(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("microarray: empty input")
	}
	header := strings.Split(sc.Text(), "\t")
	if len(header) < 2 {
		return nil, fmt.Errorf("microarray: header has no condition columns")
	}
	conditions := len(header) - 1

	var names []string
	var rows [][]float64
	line := 1
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) != conditions+1 {
			return nil, fmt.Errorf("microarray: line %d has %d columns, want %d",
				line, len(fields), conditions+1)
		}
		row := make([]float64, conditions)
		for i, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("microarray: line %d column %d: %v", line, i+2, err)
			}
			row[i] = v
		}
		names = append(names, fields[0])
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	m := NewMatrix(len(rows), conditions)
	m.Names = names
	for g, row := range rows {
		copy(m.Data[g], row)
	}
	return m, nil
}
