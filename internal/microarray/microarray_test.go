package microarray

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

func TestNewMatrixShape(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Genes != 3 || m.Conditions != 4 {
		t.Fatalf("shape %dx%d", m.Genes, m.Conditions)
	}
	if len(m.Data) != 3 || len(m.Data[0]) != 4 {
		t.Fatal("backing shape wrong")
	}
	m.Data[1][2] = 5
	if m.Data[0][2] != 0 || m.Data[2][2] != 0 {
		t.Error("rows share storage incorrectly")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative dims did not panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestSynthesizeModuleCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := SyntheticConfig{
		Genes:      30,
		Conditions: 60,
		Modules: []ModuleSpec{
			{Genes: []int{0, 1, 2, 3, 4}, Signal: 5},
		},
	}
	m := Synthesize(rng, cfg)
	m.Normalize()
	// Module members must be strongly rank-correlated...
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if r := stats.Spearman(m.Data[i], m.Data[j]); r < 0.8 {
				t.Errorf("module pair (%d,%d) Spearman = %.3f", i, j, r)
			}
		}
	}
	// ...and uncorrelated with background genes (on average).
	var sum float64
	for j := 10; j < 30; j++ {
		sum += math.Abs(stats.Spearman(m.Data[0], m.Data[j]))
	}
	if avg := sum / 20; avg > 0.4 {
		t.Errorf("mean |r| against background = %.3f, want small", avg)
	}
}

func TestSynthesizeInverseMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cfg := SyntheticConfig{
		Genes:      10,
		Conditions: 80,
		Modules: []ModuleSpec{
			{Genes: []int{0, 1}, Signal: 6, Inverse: 1},
		},
	}
	m := Synthesize(rng, cfg)
	if r := stats.Spearman(m.Data[0], m.Data[1]); r > -0.8 {
		t.Errorf("anti-correlated pair Spearman = %.3f, want <= -0.8", r)
	}
}

func TestSynthesizeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("module gene out of range did not panic")
		}
	}()
	Synthesize(rand.New(rand.NewSource(1)), SyntheticConfig{
		Genes: 3, Conditions: 5,
		Modules: []ModuleSpec{{Genes: []int{7}, Signal: 1}},
	})
}

func TestNormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := Synthesize(rng, SyntheticConfig{Genes: 5, Conditions: 40})
	m.Normalize()
	for g := 0; g < m.Genes; g++ {
		if mean := stats.Mean(m.Data[g]); math.Abs(mean) > 1e-9 {
			t.Errorf("gene %d mean %g after normalize", g, mean)
		}
		if sd := stats.StdDev(m.Data[g]); math.Abs(sd-1) > 1e-9 {
			t.Errorf("gene %d sd %g after normalize", g, sd)
		}
	}
}

func TestCorrelationGraphFindsModuleClique(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	module := []int{2, 5, 8, 11, 14}
	cfg := SyntheticConfig{
		Genes:      40,
		Conditions: 80,
		Modules:    []ModuleSpec{{Genes: module, Signal: 6}},
	}
	m := Synthesize(rng, cfg)
	m.Normalize()
	for _, method := range []CorrelationMethod{SpearmanRank, PearsonProduct} {
		g := CorrelationGraph(m, method, 0.7)
		if !g.IsClique(module) {
			t.Errorf("method %d: planted module is not a clique at 0.7", method)
		}
		// Background density must stay low.
		background := g.M() - 10 // module contributes C(5,2)=10
		if background > 30 {
			t.Errorf("method %d: %d background edges at 0.7", method, background)
		}
	}
}

func TestCorrelationGraphAntiCorrelatedEdge(t *testing.T) {
	// |r| thresholding must connect anti-correlated genes too: the paper's
	// co-expression graphs are built from correlation magnitude.
	rng := rand.New(rand.NewSource(15))
	m := Synthesize(rng, SyntheticConfig{
		Genes: 6, Conditions: 100,
		Modules: []ModuleSpec{{Genes: []int{0, 1}, Signal: 8, Inverse: 1}},
	})
	m.Normalize()
	g := CorrelationGraph(m, SpearmanRank, 0.8)
	if !g.HasEdge(0, 1) {
		t.Error("anti-correlated pair not connected under |r| threshold")
	}
}

func TestCorrelationGraphNames(t *testing.T) {
	m := NewMatrix(2, 4)
	m.Names = []string{"probeA", "probeB"}
	for c := 0; c < 4; c++ {
		m.Data[0][c] = float64(c)
		m.Data[1][c] = float64(c) * 2
	}
	g := CorrelationGraph(m, PearsonProduct, 0.9)
	if g.Name(0) != "probeA" || g.Name(1) != "probeB" {
		t.Errorf("names not propagated: %q %q", g.Name(0), g.Name(1))
	}
	if !g.HasEdge(0, 1) {
		t.Error("perfectly correlated pair not connected")
	}
}

func TestThresholdForEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	module := []int{0, 1, 2, 3}
	m := Synthesize(rng, SyntheticConfig{
		Genes: 25, Conditions: 60,
		Modules: []ModuleSpec{{Genes: module, Signal: 6}},
	})
	m.Normalize()
	for _, target := range []int{6, 10, 40} {
		th := ThresholdForEdgeCount(m, SpearmanRank, target)
		g := CorrelationGraph(m, SpearmanRank, th)
		if g.M() > target {
			t.Errorf("target %d: got %d edges at threshold %.4f", target, g.M(), th)
		}
		// The threshold should not be wildly conservative either:
		// with distinct coefficients we expect to land close to target.
		if g.M() < target-3 {
			t.Errorf("target %d: only %d edges at threshold %.4f", target, g.M(), th)
		}
	}
	if th := ThresholdForEdgeCount(m, SpearmanRank, 1<<20); th != 0 {
		t.Errorf("threshold for huge budget = %g, want 0", th)
	}
	if th := ThresholdForEdgeCount(m, SpearmanRank, 0); th <= 1 {
		t.Errorf("threshold for zero budget = %g, want > 1", th)
	}
}

func TestTerseModuleStillCorrelates(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := Synthesize(rng, SyntheticConfig{
		Genes: 8, Conditions: 100,
		Modules: []ModuleSpec{{Genes: []int{0, 1, 2}, Signal: 8, Terse: true}},
	})
	m.Normalize()
	// Transitory association (the paper's motivating case): correlation
	// driven by half the conditions is weaker but still detectable.
	r := stats.Spearman(m.Data[0], m.Data[1])
	if r < 0.3 {
		t.Errorf("terse module Spearman = %.3f, want >= 0.3", r)
	}
	full := Synthesize(rand.New(rand.NewSource(17)), SyntheticConfig{
		Genes: 8, Conditions: 100,
		Modules: []ModuleSpec{{Genes: []int{0, 1, 2}, Signal: 8}},
	})
	full.Normalize()
	if rf := stats.Spearman(full.Data[0], full.Data[1]); rf <= r {
		t.Errorf("full-span correlation %.3f not stronger than terse %.3f", rf, r)
	}
}
