package microarray

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func TestTSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := Synthesize(rng, SyntheticConfig{Genes: 7, Conditions: 5})
	m.Names = []string{"a", "b", "c", "d", "e", "f", "g"}
	var buf bytes.Buffer
	if err := WriteTSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Genes != m.Genes || got.Conditions != m.Conditions {
		t.Fatalf("shape %dx%d, want %dx%d", got.Genes, got.Conditions, m.Genes, m.Conditions)
	}
	for g := 0; g < m.Genes; g++ {
		if got.Names[g] != m.Names[g] {
			t.Errorf("name[%d] = %q", g, got.Names[g])
		}
		for c := 0; c < m.Conditions; c++ {
			if got.Data[g][c] != m.Data[g][c] {
				t.Errorf("data[%d][%d] = %g, want %g", g, c, got.Data[g][c], m.Data[g][c])
			}
		}
	}
}

func TestTSVDefaultNames(t *testing.T) {
	m := NewMatrix(2, 2)
	var buf bytes.Buffer
	if err := WriteTSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Names[0] != "gene_0" || got.Names[1] != "gene_1" {
		t.Errorf("default names = %v", got.Names)
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"no conditions": "gene\n",
		"short row":     "gene\tcond_1\tcond_2\na\t1.0\n",
		"bad number":    "gene\tcond_1\na\tnotanumber\n",
	}
	for name, input := range cases {
		if _, err := ReadTSV(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
	// Blank lines are tolerated.
	m, err := ReadTSV(strings.NewReader("gene\tcond_1\n\na\t1.5\n"))
	if err != nil || m.Genes != 1 || m.Data[0][0] != 1.5 {
		t.Errorf("blank-line parse: %v %+v", err, m)
	}
}

// failWriter injects a write failure after n bytes.
type failWriter struct{ n int }

var errInjected = errors.New("injected write failure")

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errInjected
	}
	if len(p) > f.n {
		p = p[:f.n]
	}
	f.n -= len(p)
	return len(p), nil
}

func TestWriteTSVPropagatesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := Synthesize(rng, SyntheticConfig{Genes: 50, Conditions: 20})
	for _, budget := range []int{0, 3, 100, 1000} {
		if err := WriteTSV(&failWriter{n: budget}, m); err == nil {
			t.Errorf("budget %d: write failure swallowed", budget)
		}
	}
}
