// Package microarray synthesizes gene-expression datasets and turns them
// into correlation graphs, reproducing the data pipeline of Zhang et al.
// (SC 2005): "graphs ... generated from raw microarray data after
// normalization, pairwise rank coefficient calculation, and filtering
// using threshold".
//
// The paper's inputs — Affymetrix U74Av2 mouse-brain data (12,422 probe
// sets) and a 2,895-gene myogenic-differentiation dataset — are not
// redistributable, so this package builds the closest synthetic
// equivalent: expression matrices with planted co-expression modules
// (groups of genes driven by shared latent factors) over a noisy
// background.  After rank-correlation and thresholding, each planted
// module becomes a clique, overlapping modules produce the dense clique
// neighborhoods that stress the enumerator, and background genes
// contribute the sparse noise edges.  See DESIGN.md §2 for the
// substitution argument.
package microarray

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/stats"
)

// Matrix is a genes x conditions expression matrix.
type Matrix struct {
	Genes      int
	Conditions int
	Data       [][]float64 // Data[g][c]
	Names      []string    // optional probe-set IDs, len Genes
}

// NewMatrix allocates a zero expression matrix.
func NewMatrix(genes, conditions int) *Matrix {
	if genes < 0 || conditions < 0 {
		panic("microarray: negative matrix dimension")
	}
	data := make([][]float64, genes)
	backing := make([]float64, genes*conditions)
	for g := range data {
		data[g], backing = backing[:conditions:conditions], backing[conditions:]
	}
	return &Matrix{Genes: genes, Conditions: conditions, Data: data}
}

// ModuleSpec describes one planted co-expression module.
type ModuleSpec struct {
	Genes   []int   // member gene indices
	Signal  float64 // latent factor loading; higher = tighter correlation
	Terse   bool    // if true, the module factor affects only half the conditions
	Inverse int     // number of members loaded with negative sign (anti-correlated)
}

// SyntheticConfig drives Synthesize.
type SyntheticConfig struct {
	Genes      int
	Conditions int
	Modules    []ModuleSpec
	Noise      float64 // per-gene independent noise sigma (default 1.0)
}

// Synthesize builds an expression matrix: every gene gets independent
// Gaussian noise; module members additionally follow their module's latent
// factor with loading Signal.  With Signal >> Noise, intra-module Spearman
// correlations approach 1 and survive any reasonable threshold.
func Synthesize(rng *rand.Rand, cfg SyntheticConfig) *Matrix {
	noise := cfg.Noise
	if noise == 0 {
		noise = 1.0
	}
	m := NewMatrix(cfg.Genes, cfg.Conditions)
	for g := 0; g < cfg.Genes; g++ {
		for c := 0; c < cfg.Conditions; c++ {
			m.Data[g][c] = rng.NormFloat64() * noise
		}
	}
	for mi, mod := range cfg.Modules {
		factor := make([]float64, cfg.Conditions)
		for c := range factor {
			factor[c] = rng.NormFloat64()
		}
		span := cfg.Conditions
		if mod.Terse {
			span = cfg.Conditions / 2
		}
		for gi, g := range mod.Genes {
			if g < 0 || g >= cfg.Genes {
				panic(fmt.Sprintf("microarray: module %d gene %d out of range", mi, g))
			}
			sign := 1.0
			if gi < mod.Inverse {
				sign = -1.0
			}
			for c := 0; c < span; c++ {
				m.Data[g][c] += sign * mod.Signal * factor[c]
			}
		}
	}
	return m
}

// Normalize z-normalizes every gene row in place (zero mean, unit
// variance), the standard first step before correlation analysis.
func (m *Matrix) Normalize() {
	for g := 0; g < m.Genes; g++ {
		copy(m.Data[g], stats.ZNormalize(m.Data[g]))
	}
}

// CorrelationMethod selects the pairwise coefficient.
type CorrelationMethod int

const (
	// SpearmanRank is the paper's "pairwise rank coefficient".
	SpearmanRank CorrelationMethod = iota
	// PearsonProduct is the plain product-moment alternative.
	PearsonProduct
)

// CorrelationGraph computes all pairwise coefficients and returns the
// dense graph with an edge wherever |r| >= threshold.  The computation
// is parallelized over gene pairs; for SpearmanRank the rank transform
// is hoisted out of the pair loop, so the cost is one rank pass plus one
// Pearson kernel per pair.
func CorrelationGraph(m *Matrix, method CorrelationMethod, threshold float64) *graph.Graph {
	g, err := CorrelationGraphRep(m, method, threshold, graph.Dense)
	if err != nil {
		// Gene indices are generated in range; Dense freezing cannot fail.
		panic(err)
	}
	return g.(*graph.Graph)
}

// CorrelationGraphRep is CorrelationGraph with an explicit adjacency
// representation (graph.Auto selects from the thresholded density, so
// genome-scale sparse correlation graphs come back CSR without ever
// materializing the dense bitmap index).
func CorrelationGraphRep(m *Matrix, method CorrelationMethod, threshold float64, rep graph.Representation) (graph.Interface, error) {
	rows := m.Data
	if method == SpearmanRank {
		rows = make([][]float64, m.Genes)
		for g := 0; g < m.Genes; g++ {
			rows[g] = stats.Ranks(m.Data[g])
		}
	}
	b := graph.NewBuilder(m.Genes).WithRepresentation(rep)
	if m.Names != nil {
		for i, name := range m.Names {
			if err := b.SetName(i, name); err != nil {
				return nil, err
			}
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > m.Genes {
		workers = m.Genes
	}
	if workers < 1 {
		workers = 1
	}
	type edge struct{ u, v int }
	results := make(chan []edge, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []edge
			// Strided rows balance the triangular pair loop.
			for u := w; u < m.Genes; u += workers {
				for v := u + 1; v < m.Genes; v++ {
					r := stats.Pearson(rows[u], rows[v])
					if r >= threshold || -r >= threshold {
						local = append(local, edge{u, v})
					}
				}
			}
			results <- local
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	for local := range results {
		for _, e := range local {
			if err := b.AddEdge(e.u, e.v); err != nil {
				return nil, err
			}
		}
	}
	return b.Freeze()
}

// ThresholdForEdgeCount returns the smallest |r| threshold that keeps at
// most maxEdges edges, by computing all pairwise coefficients and taking
// the appropriate order statistic.  The paper picks thresholds that yield
// target densities (0.008%, 0.2%, 0.3%); this utility automates that.
func ThresholdForEdgeCount(m *Matrix, method CorrelationMethod, maxEdges int) float64 {
	rows := m.Data
	if method == SpearmanRank {
		rows = make([][]float64, m.Genes)
		for g := 0; g < m.Genes; g++ {
			rows[g] = stats.Ranks(m.Data[g])
		}
	}
	var all []float64
	for u := 0; u < m.Genes; u++ {
		for v := u + 1; v < m.Genes; v++ {
			r := stats.Pearson(rows[u], rows[v])
			if r < 0 {
				r = -r
			}
			all = append(all, r)
		}
	}
	if maxEdges >= len(all) {
		return 0
	}
	if maxEdges <= 0 {
		return 1.1 // above any attainable |r|
	}
	// Threshold just above the (maxEdges+1)-th largest coefficient.
	q := 1 - float64(maxEdges)/float64(len(all))
	return stats.Quantile(all, q)
}
