package clique

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestCanonical(t *testing.T) {
	cases := []struct {
		c    Clique
		want bool
	}{
		{Clique{}, true},
		{Clique{5}, true},
		{Clique{1, 2, 9}, true},
		{Clique{1, 1}, false},
		{Clique{2, 1}, false},
	}
	for _, tc := range cases {
		if got := tc.c.Canonical(); got != tc.want {
			t.Errorf("Canonical(%v) = %v", tc.c, got)
		}
	}
}

func TestKeyAndNormalize(t *testing.T) {
	c := Normalize(Clique{3, 1, 2})
	if !c.Canonical() {
		t.Fatal("Normalize did not sort")
	}
	if c.Key() != "1,2,3" {
		t.Errorf("Key = %q", c.Key())
	}
	if (Clique{}).Key() != "" {
		t.Error("empty key not empty")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Clique
		want int
	}{
		{Clique{1}, Clique{1, 2}, -1},    // size first
		{Clique{9}, Clique{1, 2}, -1},    // size dominates values
		{Clique{1, 2}, Clique{1, 3}, -1}, // lexicographic
		{Clique{1, 3}, Clique{1, 2}, 1},  //
		{Clique{1, 2}, Clique{1, 2}, 0},  // equal
		{Clique{2, 4, 6}, Clique{2, 4, 5}, 1},
	}
	for _, tc := range cases {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCollector(t *testing.T) {
	col := &Collector{}
	buf := Clique{2, 5}
	col.Emit(buf)
	buf[0] = 99 // reporter contract: emitted slices are borrowed
	col.Emit(Clique{1})
	col.Sort()
	if len(col.Cliques) != 2 {
		t.Fatalf("collected %d", len(col.Cliques))
	}
	if col.Cliques[0].Key() != "1" || col.Cliques[1].Key() != "2,5" {
		t.Errorf("sorted = %v", col.Cliques)
	}
	keys := col.Keys()
	if keys[0] != "1" || keys[1] != "2,5" {
		t.Errorf("Keys = %v", keys)
	}
}

func TestCounter(t *testing.T) {
	ct := NewCounter()
	ct.Emit(Clique{1, 2})
	ct.Emit(Clique{3, 4})
	ct.Emit(Clique{1, 2, 3})
	if ct.Total != 3 || ct.BySize[2] != 2 || ct.BySize[3] != 1 {
		t.Errorf("counter state: %+v", ct)
	}
	if ct.MaxSize() != 3 {
		t.Errorf("MaxSize = %d", ct.MaxSize())
	}
	if NewCounter().MaxSize() != 0 {
		t.Error("empty MaxSize != 0")
	}
}

func TestReporterFunc(t *testing.T) {
	var got Clique
	ReporterFunc(func(c Clique) { got = append(Clique(nil), c...) }).Emit(Clique{7})
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("ReporterFunc got %v", got)
	}
}

func triangleWithTail(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	return g
}

func TestValidate(t *testing.T) {
	g := triangleWithTail(t)
	good := []Clique{{0, 1, 2}, {2, 3}}
	if err := Validate(g, good, 2, 3); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	cases := map[string][]Clique{
		"non-canonical": {{1, 0, 2}},
		"not a clique":  {{0, 3}},
		"not maximal":   {{0, 1}},
		"duplicate":     {{0, 1, 2}, {0, 1, 2}},
		"below lo":      {{2, 3}},
		"above hi":      {{0, 1, 2}},
	}
	los := map[string]int{"below lo": 3}
	his := map[string]int{"above hi": 2}
	for name, set := range cases {
		lo, hi := 1, 0
		if v, ok := los[name]; ok {
			lo = v
		}
		if v, ok := his[name]; ok {
			hi = v
		}
		if err := Validate(g, set, lo, hi); err == nil {
			t.Errorf("%s: invalid set accepted", name)
		}
	}
}

func TestSameSets(t *testing.T) {
	a := []Clique{{1, 2}, {3}}
	b := []Clique{{3}, {1, 2}}
	if ok, _ := SameSets(a, b); !ok {
		t.Error("equal sets reported different")
	}
	c := []Clique{{1, 2}}
	if ok, diff := SameSets(a, c); ok || diff == "" {
		t.Error("different sets reported equal")
	}
	if ok, diff := SameSets(c, a); ok || diff == "" {
		t.Error("different sets reported equal (reversed)")
	}
}

func TestBruteForceMaximal(t *testing.T) {
	g := triangleWithTail(t)
	got := BruteForceMaximal(g)
	// Maximal cliques: {0,1,2}, {2,3}, {4}.
	if len(got) != 3 {
		t.Fatalf("maximal cliques = %v", got)
	}
	if err := Validate(g, got, 1, 0); err != nil {
		t.Errorf("brute force output invalid: %v", err)
	}
	if BruteForceMaxCliqueSize(g) != 3 {
		t.Errorf("max size = %d", BruteForceMaxCliqueSize(g))
	}
}

func TestBruteForceKCliques(t *testing.T) {
	g := triangleWithTail(t)
	if got := BruteForceKCliques(g, 2); len(got) != 4 {
		t.Errorf("2-cliques = %v", got)
	}
	if got := BruteForceKCliques(g, 3); len(got) != 1 {
		t.Errorf("3-cliques = %v", got)
	}
	if got := BruteForceKCliques(g, 4); got != nil {
		t.Errorf("4-cliques = %v", got)
	}
}

func TestBruteForcePanicsOnLargeGraph(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 25-vertex brute force")
		}
	}()
	BruteForceMaximal(graph.New(25))
}

func TestBruteForceRandomSelfConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomGNP(rng, 2+rng.Intn(10), 0.5)
		if err := Validate(g, BruteForceMaximal(g), 1, 0); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
