package clique

import (
	"repro/internal/graph"
)

// BruteForceMaximal enumerates every maximal clique of g by testing all
// 2^n vertex subsets.  It is the ground-truth oracle for the
// cross-validation tests and must only be used for small graphs
// (it panics above 24 vertices).
func BruteForceMaximal(g graph.Interface) []Clique {
	n := g.N()
	if n > 24 {
		panic("clique: BruteForceMaximal limited to 24 vertices")
	}
	var out []Clique
	var members []int
	for mask := 1; mask < 1<<uint(n); mask++ {
		members = members[:0]
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				members = append(members, v)
			}
		}
		if !graph.IsClique(g, members) {
			continue
		}
		if graph.IsMaximalClique(g, members) {
			out = append(out, append(Clique(nil), members...))
		}
	}
	return out
}

// BruteForceKCliques enumerates every clique of exactly size k (maximal
// or not) by subset testing; small graphs only.
func BruteForceKCliques(g graph.Interface, k int) []Clique {
	n := g.N()
	if n > 24 {
		panic("clique: BruteForceKCliques limited to 24 vertices")
	}
	var out []Clique
	var members []int
	for mask := 1; mask < 1<<uint(n); mask++ {
		members = members[:0]
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				members = append(members, v)
			}
		}
		if len(members) != k || !graph.IsClique(g, members) {
			continue
		}
		out = append(out, append(Clique(nil), members...))
	}
	return out
}

// BruteForceMaxCliqueSize returns the maximum clique size of g by subset
// testing; small graphs only.
func BruteForceMaxCliqueSize(g graph.Interface) int {
	best := 0
	for _, c := range BruteForceMaximal(g) {
		if len(c) > best {
			best = len(c)
		}
	}
	return best
}
