// Package clique defines the vocabulary shared by every clique-enumeration
// algorithm in the framework: the canonical clique representation, the
// reporting interfaces the enumerators emit through, and collectors used
// by tests, tools and the cross-validation harness.
package clique

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// Clique is a set of vertices in canonical (strictly increasing) order.
type Clique []int

// Clone returns an owned copy of the clique.  Enumerators emit borrowed
// slices (the backing array is reused for the next emission); a reporter
// that retains cliques past its Emit call must Clone them first.
func (c Clique) Clone() Clique {
	if c == nil {
		return nil
	}
	return append(Clique(nil), c...)
}

// Canonical reports whether the clique is in strictly increasing order.
func (c Clique) Canonical() bool {
	for i := 1; i < len(c); i++ {
		if c[i] <= c[i-1] {
			return false
		}
	}
	return true
}

// Key returns a string key identifying the clique, usable as a map key.
func (c Clique) Key() string {
	var sb strings.Builder
	for i, v := range c {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", v)
	}
	return sb.String()
}

// Compare orders cliques by size, then lexicographically — the
// "non-decreasing order" the Clique Enumerator guarantees, refined to a
// total order for deterministic output.
func Compare(a, b Clique) int {
	if len(a) != len(b) {
		if len(a) < len(b) {
			return -1
		}
		return 1
	}
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Normalize sorts the vertices into canonical order in place and returns
// the clique for chaining.
func Normalize(c Clique) Clique {
	sort.Ints(c)
	return c
}

// Reporter receives maximal cliques as they are discovered.  Emit must
// treat the slice as borrowed: enumerators reuse the backing array, so
// implementations that retain the clique must copy it.
type Reporter interface {
	Emit(c Clique)
}

// ReporterFunc adapts a function to the Reporter interface.
type ReporterFunc func(c Clique)

// Emit calls the adapted function.
func (f ReporterFunc) Emit(c Clique) { f(c) }

// Collector is a Reporter that copies and stores every emitted clique.
type Collector struct {
	Cliques []Clique
}

// Emit stores a copy of c.
func (col *Collector) Emit(c Clique) {
	col.Cliques = append(col.Cliques, append(Clique(nil), c...))
}

// Sort orders the collected cliques by size then lexicographically.
func (col *Collector) Sort() {
	sort.Slice(col.Cliques, func(i, j int) bool {
		return Compare(col.Cliques[i], col.Cliques[j]) < 0
	})
}

// Keys returns the sorted key strings of the collected cliques, the
// canonical form for set comparison in tests.
func (col *Collector) Keys() []string {
	keys := make([]string, len(col.Cliques))
	for i, c := range col.Cliques {
		keys[i] = c.Key()
	}
	sort.Strings(keys)
	return keys
}

// Counter is a Reporter that only counts cliques by size, for runs whose
// full output would not fit in memory (the paper's terabyte-scale cases).
type Counter struct {
	BySize map[int]int64
	Total  int64
}

// NewCounter returns an empty Counter.
func NewCounter() *Counter { return &Counter{BySize: make(map[int]int64)} }

// Emit counts c.
func (ct *Counter) Emit(c Clique) {
	ct.BySize[len(c)]++
	ct.Total++
}

// MaxSize returns the largest clique size seen, or 0.
func (ct *Counter) MaxSize() int {
	max := 0
	for k := range ct.BySize {
		if k > max {
			max = k
		}
	}
	return max
}

// Validate checks that every collected clique is a maximal clique of g,
// canonical, and unique; and that sizes lie in [lo, hi] (pass hi = 0 to
// skip the upper check).  It returns a descriptive error for the first
// violation — the workhorse of the cross-validation tests.
func Validate(g *graph.Graph, cliques []Clique, lo, hi int) error {
	seen := make(map[string]bool, len(cliques))
	for i, c := range cliques {
		if !c.Canonical() {
			return fmt.Errorf("clique %d %v not canonical", i, c)
		}
		if len(c) < lo {
			return fmt.Errorf("clique %d %v smaller than lower bound %d", i, c, lo)
		}
		if hi > 0 && len(c) > hi {
			return fmt.Errorf("clique %d %v larger than upper bound %d", i, c, hi)
		}
		key := c.Key()
		if seen[key] {
			return fmt.Errorf("clique %v emitted twice", c)
		}
		seen[key] = true
		if !g.IsClique(c) {
			return fmt.Errorf("%v is not a clique", c)
		}
		if !g.IsMaximalClique(c) {
			return fmt.Errorf("%v is not maximal", c)
		}
	}
	return nil
}

// SameSets reports whether two collections contain exactly the same
// cliques, and if not, returns an example difference.
func SameSets(a, b []Clique) (bool, string) {
	am := make(map[string]bool, len(a))
	for _, c := range a {
		am[c.Key()] = true
	}
	bm := make(map[string]bool, len(b))
	for _, c := range b {
		bm[c.Key()] = true
	}
	for k := range am {
		if !bm[k] {
			return false, fmt.Sprintf("clique {%s} only in first set", k)
		}
	}
	for k := range bm {
		if !am[k] {
			return false, fmt.Sprintf("clique {%s} only in second set", k)
		}
	}
	return true, ""
}
