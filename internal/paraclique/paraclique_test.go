package paraclique

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// almostClique builds a k-clique with a few edges removed plus one
// perfectly attached extra vertex cluster.
func almostClique(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(12)
	verts := []int{0, 1, 2, 3, 4, 5, 6, 7}
	graph.PlantClique(g, verts)
	// Vertex 8 adjacent to 7 of the 8 members (misses 0): a paraclique
	// member at glom <= 7/8 once, but not a clique member.
	for _, v := range []int{1, 2, 3, 4, 5, 6, 7} {
		g.AddEdge(8, v)
	}
	// Vertex 9 adjacent to only 2 members: never gloms at high factors.
	g.AddEdge(9, 0)
	g.AddEdge(9, 1)
	return g
}

func TestOneGlomsNearMember(t *testing.T) {
	g := almostClique(t)
	seed := []int{0, 1, 2, 3, 4, 5, 6, 7}
	p := One(g, seed, 0.8)
	found := false
	for _, v := range p.Vertices {
		if v == 8 {
			found = true
		}
		if v == 9 {
			t.Error("vertex 9 glommed at 0.8")
		}
	}
	if !found {
		t.Error("vertex 8 (7/8 adjacency) not glommed at 0.8")
	}
	if p.CoreSize != 8 {
		t.Errorf("CoreSize = %d", p.CoreSize)
	}
	if p.Density < 0.9 {
		t.Errorf("density = %.2f", p.Density)
	}
}

func TestOneStrictGlomIsCliqueGrowth(t *testing.T) {
	g := almostClique(t)
	seed := []int{0, 1, 2, 3, 4, 5, 6, 7}
	p := One(g, seed, 1.0)
	for _, v := range p.Vertices {
		if v == 8 {
			t.Error("vertex 8 joined at glom=1 despite missing an edge")
		}
	}
	if len(p.Vertices) != 8 {
		t.Errorf("vertices = %v", p.Vertices)
	}
	if p.Density != 1 {
		t.Errorf("density = %v", p.Density)
	}
}

func TestOneBadGlomPanics(t *testing.T) {
	g := graph.New(3)
	for _, glom := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("glom=%v accepted", glom)
				}
			}()
			One(g, []int{0}, glom)
		}()
	}
}

func TestExtractDecomposesModules(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	g := graph.PlantedGraph(rng, 60, []graph.PlantedCliqueSpec{
		{Size: 10}, {Size: 7}, {Size: 5},
	}, 30)
	ps := Extract(g, Options{Glom: 0.9})
	if len(ps) < 3 {
		t.Fatalf("found %d paracliques, want >= 3", len(ps))
	}
	if ps[0].CoreSize != 10 || ps[1].CoreSize < 7 {
		t.Errorf("core sizes: %d, %d", ps[0].CoreSize, ps[1].CoreSize)
	}
	// Paracliques must be disjoint (vertices are removed between rounds).
	seen := map[int]bool{}
	for _, p := range ps {
		for _, v := range p.Vertices {
			if seen[v] {
				t.Fatalf("vertex %d in two paracliques", v)
			}
			seen[v] = true
		}
	}
}

func TestExtractMaxParacliques(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	g := graph.PlantedGraph(rng, 40, []graph.PlantedCliqueSpec{
		{Size: 6}, {Size: 5}, {Size: 4},
	}, 20)
	ps := Extract(g, Options{MaxParacliques: 2})
	if len(ps) != 2 {
		t.Errorf("got %d paracliques, want 2", len(ps))
	}
}

func TestExtractMinCliqueSize(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	g := graph.PlantedGraph(rng, 30, []graph.PlantedCliqueSpec{{Size: 6}}, 10)
	ps := Extract(g, Options{MinCliqueSize: 7})
	if len(ps) != 0 {
		t.Errorf("found %d paracliques above a min size larger than ω", len(ps))
	}
}

func TestExtractDefaultsAndDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	g := graph.PlantedGraph(rng, 50, []graph.PlantedCliqueSpec{{Size: 8}}, 40)
	ps := Extract(g, Options{})
	if len(ps) == 0 {
		t.Fatal("no paracliques with defaults")
	}
	for _, p := range ps {
		if p.Density < 0.5 || p.Density > 1 {
			t.Errorf("density %v out of range", p.Density)
		}
		for i := 1; i < len(p.Vertices); i++ {
			if p.Vertices[i] <= p.Vertices[i-1] {
				t.Fatalf("vertices not canonical: %v", p.Vertices)
			}
		}
	}
}
