// Package paraclique extracts paracliques: dense, almost-complete
// subgraphs grown around a maximum clique.  The paper motivates them
// directly — "the ability to generate cliques, paracliques and other
// forms of densely-connected subgraphs allows us to separate these
// causes, and to place them in a larger systems-level graph" (Section 1)
// — because biological co-expression modules tolerate a few missing
// correlations (dropouts, noise) that break strict clique membership.
//
// The extraction follows the Langston-group glom strategy: start from a
// maximum clique C and repeatedly absorb any outside vertex adjacent to
// at least ceil(glom * |current|) members, where glom in (0,1] is the
// proportional glom factor; repeat until no vertex qualifies.  Successive
// paracliques are obtained by removing the previous one's vertices.
package paraclique

import (
	"context"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/maxclique"
)

// Options configures extraction.
type Options struct {
	// Ctx, when non-nil, cancels extraction between paracliques: Extract
	// returns the paracliques found so far (each maximum-clique seed
	// computation is the expensive unit, so cancellation latency is one
	// seed).  Callers that need an error observe ctx.Err() themselves.
	Ctx context.Context
	// Glom is the proportional glom factor: a vertex joins when adjacent
	// to at least ceil(Glom * |P|) members of the current paraclique P.
	// Must be in (0, 1]; 1 reduces to strict clique growth.
	Glom float64
	// MinCliqueSize stops Extract when the next maximum clique falls
	// below this size (default 3).
	MinCliqueSize int
	// MaxParacliques bounds how many paracliques Extract returns
	// (0 = all).
	MaxParacliques int
}

// Paraclique is one extracted dense subgraph.
type Paraclique struct {
	Vertices []int // canonical order
	CoreSize int   // size of the seed maximum clique
	Density  float64
}

// One grows a single paraclique from the given seed clique, over any
// graph representation.
func One(g graph.Interface, seed []int, glom float64) Paraclique {
	if glom <= 0 || glom > 1 {
		panic(fmt.Sprintf("paraclique: glom %v out of (0,1]", glom))
	}
	members := bitset.New(g.N())
	for _, v := range seed {
		members.Set(v)
	}
	size := len(seed)
	for {
		need := int(glom*float64(size) + 0.999999) // ceil for rational glom
		best := -1
		for v := 0; v < g.N(); v++ {
			if members.Test(v) {
				continue
			}
			if g.Row(v).AndCount(members) >= need {
				best = v
				break
			}
		}
		if best < 0 {
			break
		}
		members.Set(best)
		size++
	}
	verts := members.Indices()
	return Paraclique{
		Vertices: verts,
		CoreSize: len(seed),
		Density:  density(g, verts),
	}
}

func density(g graph.Interface, verts []int) float64 {
	if len(verts) < 2 {
		return 1
	}
	edges := 0
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			if g.HasEdge(verts[i], verts[j]) {
				edges++
			}
		}
	}
	return float64(edges) / float64(len(verts)*(len(verts)-1)/2)
}

// Extract repeatedly finds a maximum clique, gloms a paraclique around
// it, removes the paraclique's vertices, and continues — decomposing a
// correlation graph into its dense modules.
func Extract(g graph.Interface, opts Options) []Paraclique {
	if opts.Glom == 0 {
		opts.Glom = 0.8
	}
	if opts.MinCliqueSize == 0 {
		opts.MinCliqueSize = 3
	}
	// The decomposition repeatedly induces subgraphs and seeds maximum
	// cliques (which densify anyway), so it works on a dense copy.
	var work *graph.Graph
	if d, ok := g.(*graph.Graph); ok {
		work = d.Clone()
	} else {
		work = graph.Densify(g)
	}
	keep := bitset.New(g.N())
	keep.SetAll()
	idToOrig := make([]int, g.N())
	for i := range idToOrig {
		idToOrig[i] = i
	}

	var out []Paraclique
	for {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			return out
		}
		if opts.MaxParacliques > 0 && len(out) >= opts.MaxParacliques {
			return out
		}
		seed := maxclique.Find(work)
		if len(seed) < opts.MinCliqueSize {
			return out
		}
		p := One(work, seed, opts.Glom)
		// Translate to original vertex IDs.
		orig := make([]int, len(p.Vertices))
		for i, v := range p.Vertices {
			orig[i] = idToOrig[v]
		}
		out = append(out, Paraclique{
			Vertices: orig,
			CoreSize: p.CoreSize,
			Density:  p.Density,
		})
		// Remove the paraclique and continue on the remainder.
		removed := bitset.New(work.N())
		removed.SetAll()
		for _, v := range p.Vertices {
			removed.Clear(v)
		}
		sub, newToOld := work.InducedSubgraph(removed)
		remap := make([]int, sub.N())
		for ni, ov := range newToOld {
			remap[ni] = idToOrig[ov]
		}
		work = sub
		idToOrig = remap
		if work.N() == 0 {
			return out
		}
	}
}
