package sched

import (
	"fmt"
	"sync"
)

// Sequencer is the streaming in-order release point shared by the
// parallel enumerator's emission merger and the out-of-core engine's
// shard merger: results for a level's items are deposited in any order
// by concurrent workers, and each item's result is released — via the
// callback, under the Sequencer's lock — as soon as every earlier item
// of the level has been released.  The callback therefore observes
// results in exact item order (the canonical sequential order both
// backends promise), while only the out-of-order window is buffered,
// never the whole level.
//
// A Sequencer is reusable: Reset prepares it for the next level without
// reallocating the frontier bookkeeping.  Deposit is safe for concurrent
// use; the release callback runs serially, in order, under the lock.
type Sequencer[T any] struct {
	mu      sync.Mutex
	slots   []T
	present []bool
	emit    int // next item index to release
	release func(item int, v T)
}

// NewSequencer returns a Sequencer over n items releasing through fn.
func NewSequencer[T any](n int, fn func(item int, v T)) *Sequencer[T] {
	s := &Sequencer[T]{release: fn}
	s.Reset(n)
	return s
}

// Reset prepares the sequencer for a new level of n items, reusing the
// frontier arrays.  It must not race with Deposit.
func (s *Sequencer[T]) Reset(n int) {
	var zero T
	if cap(s.slots) < n {
		s.slots = make([]T, n)
		s.present = make([]bool, n)
	}
	s.slots = s.slots[:n]
	s.present = s.present[:n]
	for i := range s.slots {
		s.slots[i] = zero
		s.present[i] = false
	}
	s.emit = 0
}

// Deposit files item's result and releases every newly contiguous prefix
// of the level through the release callback.  Each item must be
// deposited exactly once.
func (s *Sequencer[T]) Deposit(item int, v T) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if item < 0 || item >= len(s.slots) {
		panic(fmt.Sprintf("sched: sequencer item %d out of [0,%d)", item, len(s.slots)))
	}
	if s.present[item] {
		panic(fmt.Sprintf("sched: sequencer item %d deposited twice", item))
	}
	s.slots[item] = v
	s.present[item] = true
	var zero T
	for s.emit < len(s.slots) && s.present[s.emit] {
		i := s.emit
		v := s.slots[i]
		// Drop the reference before the callback so a released result is
		// reclaimable as soon as the callback returns — the sequencer
		// holds only the out-of-order window.
		s.slots[i] = zero
		s.emit++
		s.release(i, v)
	}
}

// DrainPending removes every deposited-but-unreleased result without
// advancing the frontier, passing each (in item order) to fn, which may
// be nil to discard silently.  The abort and spillover paths use it to
// reconcile side accounting (memory-governor charges, pooled bitmaps)
// for work that is being thrown away: after DrainPending the released
// prefix [0, Released()) is exactly the work that was delivered, and
// everything at or beyond the frontier is untouched input again.
func (s *Sequencer[T]) DrainPending(fn func(item int, v T)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var zero T
	for i := s.emit; i < len(s.slots); i++ {
		if !s.present[i] {
			continue
		}
		v := s.slots[i]
		s.slots[i] = zero
		s.present[i] = false
		if fn != nil {
			fn(i, v)
		}
	}
}

// Released returns the number of items released so far (the frontier).
func (s *Sequencer[T]) Released() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.emit
}

// Complete reports whether every item has been released.
func (s *Sequencer[T]) Complete() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.emit == len(s.slots)
}
