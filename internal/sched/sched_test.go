package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBalancedContiguousBasics(t *testing.T) {
	loads := []int64{10, 10, 10, 10}
	a := BalancedContiguous(loads, 2)
	if a.Workers() != 2 || a.Items() != 4 {
		t.Fatalf("assignment %v", a)
	}
	totals := a.Totals(loads)
	if totals[0] != 20 || totals[1] != 20 {
		t.Errorf("totals %v", totals)
	}
	// Contiguity: worker 0 gets a prefix.
	if a[0][0] != 0 || a[0][len(a[0])-1] != len(a[0])-1 {
		t.Errorf("chunk 0 not contiguous: %v", a[0])
	}
}

func TestBalancedContiguousSkew(t *testing.T) {
	// One huge item: it should own a chunk alone (as far as possible).
	loads := []int64{1, 1, 100, 1, 1}
	a := BalancedContiguous(loads, 3)
	totals := a.Totals(loads)
	max := int64(0)
	for _, v := range totals {
		if v > max {
			max = v
		}
	}
	if max > 102 {
		t.Errorf("makespan %d too high: %v", max, a)
	}
	if a.Items() != 5 {
		t.Errorf("lost items: %v", a)
	}
}

func TestBalancedContiguousEdgeCases(t *testing.T) {
	if a := BalancedContiguous(nil, 3); a.Items() != 0 || a.Workers() != 3 {
		t.Errorf("empty loads: %v", a)
	}
	// More workers than items.
	a := BalancedContiguous([]int64{5, 5}, 8)
	if a.Items() != 2 {
		t.Errorf("items lost: %v", a)
	}
	defer func() {
		if recover() == nil {
			t.Error("0 workers did not panic")
		}
	}()
	BalancedContiguous([]int64{1}, 0)
}

func TestByHome(t *testing.T) {
	homes := []int32{0, 1, 1, 0, 2}
	a := ByHome(homes, 3)
	if len(a[0]) != 2 || len(a[1]) != 2 || len(a[2]) != 1 {
		t.Errorf("ByHome = %v", a)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range home did not panic")
		}
	}()
	ByHome([]int32{5}, 3)
}

func TestRebalanceMovesFromHeavyToLight(t *testing.T) {
	loads := []int64{50, 50, 50, 50, 1, 1}
	a := Assignment{{0, 1, 2, 3}, {4, 5}}
	moves := Policy{}.Rebalance(a, loads)
	if len(moves) == 0 {
		t.Fatal("no transfers on a 200-vs-2 imbalance")
	}
	totals := a.Totals(loads)
	gap := totals[0] - totals[1]
	if gap < 0 {
		gap = -gap
	}
	if gap > 60 {
		t.Errorf("still imbalanced after rebalance: %v", totals)
	}
	for _, m := range moves {
		if m.From != 0 || m.To != 1 {
			t.Errorf("unexpected move %+v", m)
		}
	}
	if a.Items() != 6 {
		t.Errorf("items lost: %v", a)
	}
}

func TestRebalanceRespectsThreshold(t *testing.T) {
	// 8% imbalance is inside the default 10% tolerance: no transfers.
	loads := []int64{54, 50}
	a := Assignment{{0}, {1}}
	if moves := (Policy{}).Rebalance(a, loads); len(moves) != 0 {
		t.Errorf("transfers within tolerance: %v", moves)
	}
	// Tight policy forces the transfer decision (but a single item per
	// worker cannot improve, so still no move).
	if moves := (Policy{RelTolerance: 0.001}).Rebalance(a, loads); len(moves) != 0 {
		t.Errorf("impossible transfer attempted: %v", moves)
	}
}

func TestRebalanceAbsFloor(t *testing.T) {
	loads := []int64{5, 3, 1}
	a := Assignment{{0, 1}, {2}}
	if moves := (Policy{AbsFloor: 100}).Rebalance(a, loads); len(moves) != 0 {
		t.Errorf("transfers below AbsFloor: %v", moves)
	}
}

func TestRebalanceSingleWorker(t *testing.T) {
	a := Assignment{{0, 1}}
	if moves := (Policy{}).Rebalance(a, []int64{1, 2}); moves != nil {
		t.Errorf("single worker rebalanced: %v", moves)
	}
}

func TestRebalanceAllEqualLoads(t *testing.T) {
	loads := []int64{7, 7, 7, 7, 7, 7}
	a := Assignment{{0, 1}, {2, 3}, {4, 5}}
	if moves := (Policy{}).Rebalance(a, loads); len(moves) != 0 {
		t.Errorf("moved on perfectly balanced loads: %v", moves)
	}
	// Even with a zero-tolerance policy there is no gap to close.
	a = Assignment{{0, 1}, {2, 3}, {4, 5}}
	if moves := (Policy{RelTolerance: 1e-9}).Rebalance(a, loads); len(moves) != 0 {
		t.Errorf("moved on balanced loads under tight policy: %v", moves)
	}
}

func TestRebalanceOneGiantItem(t *testing.T) {
	// One item dwarfs everything; moving it can only make things worse,
	// and the small items must still flow to the light workers.
	loads := []int64{1000, 1, 1, 1, 1}
	a := Assignment{{0, 1, 2, 3, 4}, {}, {}}
	moves := (Policy{}).Rebalance(a, loads)
	for _, m := range moves {
		if m.Item == 0 {
			t.Errorf("moved the giant item: %+v", m)
		}
	}
	if a.Items() != 5 {
		t.Errorf("items lost: %v", a)
	}
	// The giant's owner must still hold it.
	found := false
	for _, item := range a[0] {
		if item == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("giant item left worker 0: %v", a)
	}
}

func TestRebalanceAbsFloorDominatesTolerance(t *testing.T) {
	// Mean load 30 with 10% tolerance gives tol 3; AbsFloor 50 must win
	// and suppress the 40-unit gap that tolerance alone would close.
	loads := []int64{40, 10, 30, 40}
	a := Assignment{{0, 1}, {2}, {3}}
	if moves := (Policy{AbsFloor: 50}).Rebalance(a, loads); len(moves) != 0 {
		t.Errorf("AbsFloor did not dominate: %v", moves)
	}
	// Same loads without the floor: the gap exceeds tolerance and moves.
	a = Assignment{{0, 1}, {2}, {3}}
	if moves := (Policy{}).Rebalance(a, loads); len(moves) == 0 {
		t.Error("no transfer once AbsFloor is lifted")
	}
}

// Regression: Rebalance used to lift the lightest worker above the
// pre-balance maximum when the mean sat close to the maximum (found by
// TestQuickRebalanceInvariants, seed -8142442085675318554: totals
// [5196 4326 4968 4587] became [4282 5240 4968 4587]).
func TestRebalanceNeverRaisesMakespan(t *testing.T) {
	rng := rand.New(rand.NewSource(-8142442085675318554))
	n := 1 + rng.Intn(60)
	p := 1 + rng.Intn(8)
	loads := make([]int64, n)
	for i := range loads {
		loads[i] = int64(1 + rng.Intn(1000))
	}
	homes := make([]int32, n)
	for i := range homes {
		homes[i] = int32(rng.Intn(p))
	}
	a := ByHome(homes, p)
	maxBefore := int64(0)
	for _, v := range a.Totals(loads) {
		if v > maxBefore {
			maxBefore = v
		}
	}
	Policy{}.Rebalance(a, loads)
	for _, v := range a.Totals(loads) {
		if v > maxBefore {
			t.Fatalf("makespan rose from %d to %d", maxBefore, v)
		}
	}
}

// Property: rebalancing never loses items, never duplicates them, and
// never increases the makespan.
func TestQuickRebalanceInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		p := 1 + rng.Intn(8)
		loads := make([]int64, n)
		for i := range loads {
			loads[i] = int64(1 + rng.Intn(1000))
		}
		homes := make([]int32, n)
		for i := range homes {
			homes[i] = int32(rng.Intn(p))
		}
		a := ByHome(homes, p)
		before := a.Totals(loads)
		maxBefore := int64(0)
		for _, v := range before {
			if v > maxBefore {
				maxBefore = v
			}
		}
		Policy{}.Rebalance(a, loads)

		// No loss, no duplication.
		seen := make(map[int]bool, n)
		for _, ids := range a {
			for _, i := range ids {
				if seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		if len(seen) != n {
			return false
		}
		after := a.Totals(loads)
		maxAfter := int64(0)
		for _, v := range after {
			if v > maxAfter {
				maxAfter = v
			}
		}
		return maxAfter <= maxBefore
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: BalancedContiguous chunks are contiguous, cover all items,
// and achieve makespan within max-item + mean of optimal.
func TestQuickContiguousCoverage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(80)
		p := 1 + rng.Intn(10)
		loads := make([]int64, n)
		var total, maxItem int64
		for i := range loads {
			loads[i] = int64(1 + rng.Intn(500))
			total += loads[i]
			if loads[i] > maxItem {
				maxItem = loads[i]
			}
		}
		a := BalancedContiguous(loads, p)
		next := 0
		for _, ids := range a {
			for _, i := range ids {
				if i != next {
					return false
				}
				next++
			}
		}
		if next != n {
			return false
		}
		if n == 0 {
			return true
		}
		totals := a.Totals(loads)
		var makespan int64
		for _, v := range totals {
			if v > makespan {
				makespan = v
			}
		}
		ideal := total / int64(p)
		return makespan <= ideal+maxItem+ideal/int64(p)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	st := Summarize([]float64{10, 12, 8, 10})
	if st.Mean != 10 || st.Min != 8 || st.Max != 12 {
		t.Errorf("stats %+v", st)
	}
	if st.StdDev < 1.6 || st.StdDev > 1.7 {
		t.Errorf("stddev %g", st.StdDev)
	}
	if imb := st.Imbalance(); imb != 0.2 {
		t.Errorf("imbalance %g", imb)
	}
	if Summarize(nil).Imbalance() != 0 {
		t.Error("empty imbalance != 0")
	}
}
