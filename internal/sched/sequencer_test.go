package sched

import (
	"math/rand"
	"sync"
	"testing"
)

// TestSequencerReleasesInOrder deposits items in random order from
// concurrent goroutines and checks the release callback observes exact
// item order, every item exactly once.
func TestSequencerReleasesInOrder(t *testing.T) {
	const n = 500
	var released []int
	s := NewSequencer(n, func(item int, v int) {
		if v != item*3 {
			t.Errorf("item %d released with value %d, want %d", item, v, item*3)
		}
		released = append(released, item)
	})
	perm := rand.New(rand.NewSource(1)).Perm(n)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 4 {
				s.Deposit(perm[i], perm[i]*3)
			}
		}(w)
	}
	wg.Wait()
	if !s.Complete() {
		t.Fatalf("sequencer incomplete: released %d of %d", s.Released(), n)
	}
	if len(released) != n {
		t.Fatalf("released %d items, want %d", len(released), n)
	}
	for i, item := range released {
		if item != i {
			t.Fatalf("release order violated at %d: got item %d", i, item)
		}
	}
}

// TestSequencerFrontierStopsAtGap: with one item missing, nothing past
// it is released, and Reset clears the state for reuse.
func TestSequencerFrontierStopsAtGap(t *testing.T) {
	var released int
	s := NewSequencer(5, func(int, string) { released++ })
	s.Deposit(0, "a")
	s.Deposit(2, "c") // gap at 1
	s.Deposit(3, "d")
	if released != 1 || s.Released() != 1 {
		t.Fatalf("released %d items across a gap, want 1", released)
	}
	s.Deposit(1, "b")
	if released != 4 {
		t.Fatalf("released %d items after filling the gap, want 4", released)
	}
	s.Reset(2)
	if s.Released() != 0 || s.Complete() {
		t.Fatal("Reset did not clear the frontier")
	}
	s.Deposit(1, "y")
	s.Deposit(0, "x")
	if released != 6 || !s.Complete() {
		t.Fatalf("reuse after Reset released %d total, want 6", released)
	}
}

// TestSequencerDoubleDepositPanics pins the misuse contract.
func TestSequencerDoubleDepositPanics(t *testing.T) {
	s := NewSequencer(3, func(int, int) {})
	s.Deposit(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double deposit did not panic")
		}
	}()
	s.Deposit(1, 1)
}
