package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChunkGrain(t *testing.T) {
	if g := ChunkGrain([]int64{100, 100, 100, 100}, 2, 2); g != 100 {
		t.Errorf("grain = %d, want 100", g)
	}
	// Tiny totals floor at 1.
	if g := ChunkGrain([]int64{1}, 8, 0); g != 1 {
		t.Errorf("grain = %d, want 1", g)
	}
	// chunksPerWorker <= 0 selects the default.
	if g := ChunkGrain([]int64{1600}, 2, 0); g != 1600/(2*DefaultChunksPerWorker) {
		t.Errorf("default grain = %d", g)
	}
}

// drain simulates workers pulling until the dispatcher is empty,
// returning the items each worker processed.
func drain(d *Dispatcher, workers int) [][]int {
	got := make([][]int, workers)
	active := true
	for active {
		active = false
		for w := 0; w < workers; w++ {
			if c, ok := d.Next(w); ok {
				got[w] = append(got[w], c.Items...)
				active = true
			}
		}
	}
	return got
}

func TestContiguousDispatcherCoversInOrder(t *testing.T) {
	loads := []int64{5, 5, 5, 5, 5, 5, 5, 5}
	d := NewContiguousDispatcher(loads, 3, 10)
	var all []int
	for {
		c, ok := d.Next(0)
		if !ok {
			break
		}
		if c.Stolen {
			t.Error("contiguous chunk marked stolen")
		}
		if len(c.Items) != 2 {
			t.Errorf("chunk %v, want 2 items of load 5 per grain 10", c.Items)
		}
		all = append(all, c.Items...)
	}
	for i, item := range all {
		if item != i {
			t.Fatalf("items out of order: %v", all)
		}
	}
	if len(all) != len(loads) {
		t.Errorf("covered %d of %d items", len(all), len(loads))
	}
	if d.Transfers() != 0 {
		t.Errorf("contiguous transfers = %d", d.Transfers())
	}
	if d.Chunks() != 4 {
		t.Errorf("chunks = %d, want 4", d.Chunks())
	}
}

func TestAffinityDispatcherHomeFirst(t *testing.T) {
	loads := []int64{10, 10, 10, 10}
	homes := []int32{0, 0, 1, 1}
	d := NewAffinityDispatcher(loads, homes, 2, Policy{}, 10)
	c, _ := d.Next(1)
	if len(c.Items) != 1 || c.Items[0] != 2 || c.Stolen {
		t.Errorf("worker 1 first chunk = %+v, want own item 2", c)
	}
	c, _ = d.Next(0)
	if len(c.Items) != 1 || c.Items[0] != 0 || c.Stolen {
		t.Errorf("worker 0 first chunk = %+v, want own item 0", c)
	}
}

// An idle worker must steal from the heaviest backlog while it exceeds
// the threshold — this is the dispatcher-level regression test that
// seed-time creator ownership makes Affinity act from the first level:
// all load parked on one worker is exactly the post-seed state.
func TestAffinityDispatcherStealsFromHeavy(t *testing.T) {
	loads := []int64{50, 50, 50, 50}
	homes := []int32{0, 0, 0, 0} // everything created by worker 0
	d := NewAffinityDispatcher(loads, homes, 4, Policy{RelTolerance: 0.05}, 50)
	c, ok := d.Next(3)
	if !ok || !c.Stolen {
		t.Fatalf("idle worker did not steal: %+v ok=%v", c, ok)
	}
	// Steals come from the tail — the items farthest from the owner.
	if c.Items[len(c.Items)-1] != 3 {
		t.Errorf("steal took %v, want tail items", c.Items)
	}
	if d.Transfers() != len(c.Items) {
		t.Errorf("transfers = %d after stealing %d items", d.Transfers(), len(c.Items))
	}
}

func TestAffinityDispatcherRespectsThreshold(t *testing.T) {
	loads := []int64{10, 10}
	homes := []int32{0, 0}
	// AbsFloor above the whole backlog: stealing is never worth it.
	d := NewAffinityDispatcher(loads, homes, 2, Policy{AbsFloor: 1000}, 10)
	if c, ok := d.Next(1); ok {
		t.Errorf("stole %+v below the AbsFloor threshold", c)
	}
	// The owner still drains its own queue.
	if _, ok := d.Next(0); !ok {
		t.Error("owner denied its own work")
	}
}

func TestAffinityDispatcherPanics(t *testing.T) {
	recovered := func(f func()) (r bool) {
		defer func() { r = recover() != nil }()
		f()
		return
	}
	if !recovered(func() { NewAffinityDispatcher([]int64{1}, []int32{5}, 2, Policy{}, 1) }) {
		t.Error("out-of-range home accepted")
	}
	if !recovered(func() { NewAffinityDispatcher([]int64{1, 2}, []int32{0}, 2, Policy{}, 1) }) {
		t.Error("homes/loads length mismatch accepted")
	}
	if !recovered(func() { NewContiguousDispatcher([]int64{1}, 0, 1) }) {
		t.Error("0 workers accepted")
	}
}

// Property: however workers interleave, every item is dispatched exactly
// once, and transfers never exceed the item count.
func TestQuickDispatcherCoverage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(80)
		p := 1 + rng.Intn(6)
		loads := make([]int64, n)
		homes := make([]int32, n)
		for i := range loads {
			loads[i] = int64(1 + rng.Intn(500))
			homes[i] = int32(rng.Intn(p))
		}
		grain := ChunkGrain(loads, p, 1+rng.Intn(12))
		var d *Dispatcher
		if rng.Intn(2) == 0 {
			d = NewContiguousDispatcher(loads, p, grain)
		} else {
			d = NewAffinityDispatcher(loads, homes, p, Policy{RelTolerance: 0.05}, grain)
		}
		seen := make(map[int]bool, n)
		// Randomized interleaving of pulls.
		idle := 0
		for idle < p {
			w := rng.Intn(p)
			c, ok := d.Next(w)
			if !ok {
				idle++
				continue
			}
			idle = 0
			for _, item := range c.Items {
				if seen[item] {
					return false
				}
				seen[item] = true
			}
		}
		// Affinity may legitimately strand sub-threshold backlog with its
		// owner; drain owners to finish the level.
		for w := 0; w < p; w++ {
			for {
				c, ok := d.Next(w)
				if !ok {
					break
				}
				for _, item := range c.Items {
					if seen[item] {
						return false
					}
					seen[item] = true
				}
			}
		}
		return len(seen) == n && d.Transfers() <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
