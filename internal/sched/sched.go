// Package sched implements the centralized dynamic load balancing of the
// paper's multithreaded Clique Enumerator (Section 2.3, "Parallelism for
// shared-memory machines").
//
// The execution model is level-synchronous: a task scheduler assigns
// k-clique sub-lists to threads, threads generate (k+1)-cliques from
// their sub-lists independently (no communication), and at the level
// barrier the scheduler collects per-thread loads and transfers work from
// heavy to light threads when the imbalance exceeds a threshold derived
// from the total current load and each thread's deviation from the mean.
// Transfers pass addresses only — the data stays where it was created in
// the shared memory — which is why a transferred sub-list is processed
// with remote-memory access cost (tracked here, charged by the machine
// model in package simarch).
//
// The package is pure scheduling arithmetic over abstract load vectors,
// shared by the real goroutine backend (package parallel) and the
// simulated 256-processor Altix (package simarch).
package sched

import (
	"fmt"
	"math"
	"sort"
)

// Assignment maps each worker to the item indices it will process.
type Assignment [][]int

// Workers returns the number of workers in the assignment.
func (a Assignment) Workers() int { return len(a) }

// Items returns the total number of assigned items.
func (a Assignment) Items() int {
	n := 0
	for _, ids := range a {
		n += len(ids)
	}
	return n
}

// Totals returns each worker's summed load.
func (a Assignment) Totals(loads []int64) []int64 {
	totals := make([]int64, len(a))
	for w, ids := range a {
		for _, i := range ids {
			totals[w] += loads[i]
		}
	}
	return totals
}

// BalancedContiguous splits items 0..len(loads)-1 into p contiguous
// chunks with near-equal load (the scheduler's initial even division of
// all k-cliques).  Contiguity preserves canonical sub-list order inside
// each worker, so a merge in worker order keeps the enumeration's
// canonical output order.
func BalancedContiguous(loads []int64, p int) Assignment {
	if p < 1 {
		panic(fmt.Sprintf("sched: %d workers", p))
	}
	a := make(Assignment, p)
	n := len(loads)
	if n == 0 {
		return a
	}
	var total int64
	for _, l := range loads {
		total += l
	}
	// Walk items accumulating load; cut when the running chunk reaches
	// its fair share of the load that remained when the chunk started.
	w := 0
	var acc, done int64
	target := (total + int64(p) - 1) / int64(p)
	for i := 0; i < n; i++ {
		a[w] = append(a[w], i)
		acc += loads[i]
		done += loads[i]
		if acc >= target && w < p-1 && i < n-1 {
			w++
			acc = 0
			remainingWorkers := int64(p - w)
			target = (total - done + remainingWorkers - 1) / remainingWorkers
		}
	}
	return a
}

// ByHome groups items by their creating worker (affinity assignment):
// the no-transfer baseline where every thread keeps working on the
// sub-lists it generated.
func ByHome(homes []int32, p int) Assignment {
	a := make(Assignment, p)
	for i, h := range homes {
		if int(h) < 0 || int(h) >= p {
			panic(fmt.Sprintf("sched: item %d home %d out of [0,%d)", i, h, p))
		}
		a[h] = append(a[h], i)
	}
	return a
}

// Policy is the scheduler's transfer-decision rule.  A transfer from the
// heaviest to the lightest worker happens only while their load gap
// exceeds max(AbsFloor, RelTolerance * mean load) — the paper's threshold
// "determined based on the graph size, the total amount of current load,
// and differences of their loads from the average load".
type Policy struct {
	// RelTolerance is the allowed gap as a fraction of the mean worker
	// load.  The zero value uses DefaultRelTolerance.
	RelTolerance float64
	// AbsFloor is the minimum gap (in load units) worth transferring
	// over; transfers cost remote accesses, so tiny imbalances are kept.
	AbsFloor int64
}

// DefaultRelTolerance keeps workers within 10% of the mean, matching the
// paper's observed "standard deviations within 10% of the average run
// times" (Figure 8).
const DefaultRelTolerance = 0.10

func (p Policy) relTolerance() float64 {
	if p.RelTolerance == 0 {
		return DefaultRelTolerance
	}
	return p.RelTolerance
}

// Move records one transferred item.
type Move struct {
	Item     int
	From, To int
}

// Rebalance applies the threshold rule to an assignment in place and
// returns the transfers performed.  Items move from the currently
// heaviest worker to the currently lightest, largest-load items first
// (fewest remote sub-lists for the most balance), never overshooting the
// mean.
func (p Policy) Rebalance(a Assignment, loads []int64) []Move {
	w := len(a)
	if w < 2 {
		return nil
	}
	totals := a.Totals(loads)
	var total int64
	for _, t := range totals {
		total += t
	}
	mean := float64(total) / float64(w)
	tol := p.relTolerance() * mean
	if f := float64(p.AbsFloor); f > tol {
		tol = f
	}

	// Sort each worker's items by descending load once; we pop from the
	// front of the heaviest worker's list.
	for wi := range a {
		ids := a[wi]
		sort.Slice(ids, func(x, y int) bool { return loads[ids[x]] > loads[ids[y]] })
	}

	var moves []Move
	for iter := 0; iter < len(loads); iter++ { // hard bound on transfers
		hi, lo := 0, 0
		for wi := 1; wi < w; wi++ {
			if totals[wi] > totals[hi] {
				hi = wi
			}
			if totals[wi] < totals[lo] {
				lo = wi
			}
		}
		gap := float64(totals[hi] - totals[lo])
		if gap <= tol || len(a[hi]) <= 1 {
			break
		}
		// Choose the largest item on hi that does not push lo above the
		// mean (avoid thrash); fall back to hi's smallest item.  Either
		// way the move must leave the receiver strictly below the donor's
		// current load, or the makespan could grow past the pre-balance
		// maximum.
		pick := -1
		for idx, item := range a[hi] {
			if lift := totals[lo] + loads[item]; float64(lift) <= mean+tol && lift < totals[hi] {
				pick = idx
				break
			}
		}
		if pick == -1 {
			pick = len(a[hi]) - 1
			item := a[hi][pick]
			lift := totals[lo] + loads[item]
			if float64(lift) > mean+gap/2 || lift >= totals[hi] {
				break // any move would overshoot; stop
			}
		}
		item := a[hi][pick]
		a[hi] = append(a[hi][:pick], a[hi][pick+1:]...)
		// Keep lo's descending order by inserting in place.
		ins := sort.Search(len(a[lo]), func(x int) bool {
			return loads[a[lo][x]] < loads[item]
		})
		a[lo] = append(a[lo], 0)
		copy(a[lo][ins+1:], a[lo][ins:])
		a[lo][ins] = item
		totals[hi] -= loads[item]
		totals[lo] += loads[item]
		moves = append(moves, Move{Item: item, From: hi, To: lo})
	}
	return moves
}

// LoadStats summarizes the balance quality of per-worker loads.
type LoadStats struct {
	PerWorker []float64
	Mean      float64
	StdDev    float64
	Min, Max  float64
}

// Summarize computes balance statistics for per-worker load totals.
func Summarize(perWorker []float64) LoadStats {
	st := LoadStats{PerWorker: perWorker}
	if len(perWorker) == 0 {
		return st
	}
	var sum float64
	st.Min, st.Max = perWorker[0], perWorker[0]
	for _, v := range perWorker {
		sum += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean = sum / float64(len(perWorker))
	if len(perWorker) > 1 {
		var ss float64
		for _, v := range perWorker {
			d := v - st.Mean
			ss += d * d
		}
		st.StdDev = math.Sqrt(ss / float64(len(perWorker)-1))
	}
	return st
}

// Imbalance returns (max-mean)/mean, 0 for empty or zero-mean loads.
func (s LoadStats) Imbalance() float64 {
	if s.Mean == 0 {
		return 0
	}
	return (s.Max - s.Mean) / s.Mean
}
