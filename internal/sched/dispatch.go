package sched

import (
	"fmt"
	"sync"
)

// DefaultChunksPerWorker is the dispatch granularity: each level is cut
// into roughly workers * DefaultChunksPerWorker chunks by estimated load,
// small enough to absorb estimation error dynamically, large enough that
// dispatch locking stays off the profile.
const DefaultChunksPerWorker = 8

// ChunkGrain returns the per-chunk load target for dispatching `loads`
// across `workers` threads at the given oversubscription factor
// (chunksPerWorker <= 0 selects DefaultChunksPerWorker).
func ChunkGrain(loads []int64, workers, chunksPerWorker int) int64 {
	if chunksPerWorker <= 0 {
		chunksPerWorker = DefaultChunksPerWorker
	}
	var total int64
	for _, l := range loads {
		total += l
	}
	grain := total / int64(workers*chunksPerWorker)
	if grain < 1 {
		grain = 1
	}
	return grain
}

// Chunk is one batch of item indices handed to a worker by a Dispatcher.
type Chunk struct {
	Items []int
	// Stolen marks a chunk taken from another worker's queue: its items
	// are processed with remote-memory affinity cost and count as
	// scheduler transfers.
	Stolen bool
}

// Dispatcher hands a level's items to persistent workers dynamically,
// replacing the one-static-assignment-per-level model: workers pull
// chunks as they finish previous ones, so load-estimation error and
// skewed item costs are absorbed within the level instead of stretching
// the level barrier.
//
// Two modes mirror the static strategies:
//
//   - Contiguous (NewContiguousDispatcher): a single queue in canonical
//     item order; any worker pulls the next contiguous chunk.  Pure
//     dynamic self-scheduling, no ownership.
//   - Affinity (NewAffinityDispatcher): per-worker queues seeded by
//     creator ownership.  A worker drains its own queue first and steals
//     from the heaviest backlog only while that backlog exceeds the
//     Policy threshold — the paper's transfer rule applied continuously
//     instead of once per level.
//
// Dispatcher is safe for concurrent use by the workers of one level.
type Dispatcher struct {
	mu        sync.Mutex
	loads     []int64
	grain     int64
	affinity  bool
	policy    Policy
	queues    [][]int // per worker (affinity) or queues[0] (contiguous)
	remaining []int64 // per-queue pending load
	workers   int
	transfers int
	chunks    int
}

// NewContiguousDispatcher dispatches items 0..len(loads)-1 in canonical
// order as contiguous chunks of roughly `grain` load.
func NewContiguousDispatcher(loads []int64, workers int, grain int64) *Dispatcher {
	if workers < 1 {
		panic(fmt.Sprintf("sched: %d workers", workers))
	}
	if grain < 1 {
		grain = 1
	}
	d := &Dispatcher{
		loads:     loads,
		grain:     grain,
		workers:   workers,
		queues:    make([][]int, 1),
		remaining: make([]int64, 1),
	}
	d.queues[0] = identity(len(loads))
	d.remaining[0] = sum(loads)
	return d
}

// NewAffinityDispatcher dispatches each item to its creator worker
// (homes), with threshold stealing governed by policy.  len(homes) must
// equal len(loads) and every home must lie in [0, workers).
func NewAffinityDispatcher(loads []int64, homes []int32, workers int, policy Policy, grain int64) *Dispatcher {
	if workers < 1 {
		panic(fmt.Sprintf("sched: %d workers", workers))
	}
	if len(homes) != len(loads) {
		panic(fmt.Sprintf("sched: %d homes for %d loads", len(homes), len(loads)))
	}
	if grain < 1 {
		grain = 1
	}
	d := &Dispatcher{
		loads:     loads,
		grain:     grain,
		affinity:  true,
		policy:    policy,
		workers:   workers,
		queues:    make([][]int, workers),
		remaining: make([]int64, workers),
	}
	for i, h := range homes {
		if int(h) < 0 || int(h) >= workers {
			panic(fmt.Sprintf("sched: item %d home %d out of [0,%d)", i, h, workers))
		}
		d.queues[h] = append(d.queues[h], i)
		d.remaining[h] += loads[i]
	}
	return d
}

// Next returns the next chunk for `worker`, or ok=false when no work
// remains that this worker may take (the level is over for it).  In
// affinity mode an idle worker whose own queue is drained steals from the
// heaviest backlog only while that backlog exceeds the policy threshold;
// below it, residual imbalance is cheaper to finish locally than to move.
func (d *Dispatcher) Next(worker int) (Chunk, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.affinity {
		return d.popFront(0, false)
	}
	if worker < 0 || worker >= d.workers {
		panic(fmt.Sprintf("sched: worker %d out of [0,%d)", worker, d.workers))
	}
	if len(d.queues[worker]) > 0 {
		return d.popFront(worker, false)
	}
	victim := -1
	for q := range d.queues {
		if len(d.queues[q]) == 0 {
			continue
		}
		if victim == -1 || d.remaining[q] > d.remaining[victim] {
			victim = q
		}
	}
	if victim == -1 || float64(d.remaining[victim]) <= d.stealTolerance() {
		return Chunk{}, false
	}
	return d.popBack(victim, true)
}

// stealTolerance is the continuous form of Policy.Rebalance's threshold:
// the backlog gap worth a remote transfer, derived from the mean pending
// load.  Callers hold d.mu.
func (d *Dispatcher) stealTolerance() float64 {
	var total int64
	for _, r := range d.remaining {
		total += r
	}
	tol := d.policy.relTolerance() * float64(total) / float64(d.workers)
	if f := float64(d.policy.AbsFloor); f > tol {
		tol = f
	}
	return tol
}

// popFront takes a chunk of at least grain load from the head of queue q.
func (d *Dispatcher) popFront(q int, stolen bool) (Chunk, bool) {
	ids := d.queues[q]
	if len(ids) == 0 {
		return Chunk{}, false
	}
	take, load := 0, int64(0)
	for take < len(ids) && load < d.grain {
		load += d.loads[ids[take]]
		take++
	}
	c := Chunk{Items: ids[:take:take], Stolen: stolen}
	d.queues[q] = ids[take:]
	d.remaining[q] -= load
	d.chunks++
	if stolen {
		d.transfers += take
	}
	return c, true
}

// popBack takes a chunk from the tail of queue q — the items farthest
// from where the owner is currently working, the classic steal end.
func (d *Dispatcher) popBack(q int, stolen bool) (Chunk, bool) {
	ids := d.queues[q]
	if len(ids) == 0 {
		return Chunk{}, false
	}
	take, load := 0, int64(0)
	for take < len(ids) && load < d.grain {
		load += d.loads[ids[len(ids)-1-take]]
		take++
	}
	cut := len(ids) - take
	c := Chunk{Items: ids[cut:len(ids):len(ids)], Stolen: stolen}
	d.queues[q] = ids[:cut]
	d.remaining[q] -= load
	d.chunks++
	if stolen {
		d.transfers += take
	}
	return c, true
}

// Transfers returns the number of items dispatched to a non-home worker
// so far (always 0 in contiguous mode).
func (d *Dispatcher) Transfers() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.transfers
}

// Chunks returns the number of chunks handed out so far.
func (d *Dispatcher) Chunks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.chunks
}

func identity(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func sum(loads []int64) int64 {
	var t int64
	for _, l := range loads {
		t += l
	}
	return t
}
