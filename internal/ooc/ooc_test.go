package ooc

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/clique"
	"repro/internal/core"
	"repro/internal/graph"
)

func run(t *testing.T, g *graph.Graph, opts Options) (*clique.Collector, Stats) {
	t.Helper()
	col := &clique.Collector{}
	opts.Dir = t.TempDir()
	opts.Reporter = col
	st, err := Enumerate(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return col, st
}

func TestMatchesInCoreOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomGNP(rng, 4+rng.Intn(14), 0.5)
		inCore := &clique.Collector{}
		if _, err := core.Enumerate(g, core.Options{Reporter: inCore}); err != nil {
			t.Fatal(err)
		}
		outOfCore, _ := run(t, g, Options{})
		if ok, diff := clique.SameSets(inCore.Cliques, outOfCore.Cliques); !ok {
			t.Fatalf("trial %d: %s", trial, diff)
		}
	}
}

func TestMatchesInCoreOnPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	g := graph.PlantedGraph(rng, 80, []graph.PlantedCliqueSpec{
		{Size: 9}, {Size: 6, Overlap: 3},
	}, 150)
	inCore := &clique.Collector{}
	if _, err := core.Enumerate(g, core.Options{Reporter: inCore}); err != nil {
		t.Fatal(err)
	}
	outOfCore, st := run(t, g, Options{})
	if ok, diff := clique.SameSets(inCore.Cliques, outOfCore.Cliques); !ok {
		t.Fatal(diff)
	}
	if st.Maximal != int64(len(inCore.Cliques)) {
		t.Errorf("Maximal = %d, want %d", st.Maximal, len(inCore.Cliques))
	}
	if st.BytesWritten == 0 || st.BytesRead == 0 {
		t.Errorf("I/O accounting empty: %+v", st)
	}
	if st.PeakLevelFile == 0 || st.Levels == 0 {
		t.Errorf("level accounting empty: %+v", st)
	}
}

func TestNonDecreasingOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	g := graph.PlantedGraph(rng, 40, []graph.PlantedCliqueSpec{
		{Size: 7}, {Size: 5, Overlap: 2},
	}, 60)
	lastSize := 0
	col := clique.ReporterFunc(func(c clique.Clique) {
		if len(c) < lastSize {
			t.Fatalf("size order violated: %d after %d", len(c), lastSize)
		}
		lastSize = len(c)
	})
	if _, err := Enumerate(g, Options{Dir: t.TempDir(), Reporter: col}); err != nil {
		t.Fatal(err)
	}
}

func TestIOVolumeExceedsInCorePeak(t *testing.T) {
	// The out-of-core design's defining property: total bytes moved
	// through disk dwarf the in-core peak residency — the paper's
	// "intensive disk I/O access has been the major bottleneck".
	rng := rand.New(rand.NewSource(124))
	g := graph.PlantedGraph(rng, 100, []graph.PlantedCliqueSpec{{Size: 11}}, 200)
	inCore, err := core.Enumerate(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, st := run(t, g, Options{})
	if st.BytesWritten+st.BytesRead <= inCore.PeakBytes {
		t.Errorf("I/O %d bytes did not exceed in-core peak %d",
			st.BytesWritten+st.BytesRead, inCore.PeakBytes)
	}
}

func TestSpillBudgetAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(125))
	g := graph.PlantedGraph(rng, 60, []graph.PlantedCliqueSpec{{Size: 10}}, 100)
	st, err := Enumerate(g, Options{Dir: t.TempDir(), MaxLevelBytes: 256})
	if !errors.Is(err, ErrSpillBudget) {
		t.Fatalf("err = %v, want ErrSpillBudget", err)
	}
	if !st.Aborted {
		t.Error("Aborted flag not set")
	}
}

func TestMaxKStopsEarly(t *testing.T) {
	g := graph.New(9)
	graph.PlantClique(g, []int{0, 1, 2, 3, 4, 5, 6, 7, 8})
	col := &clique.Collector{}
	st, err := Enumerate(g, Options{Dir: t.TempDir(), Reporter: col, MaxK: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Levels != 2 {
		t.Errorf("levels = %d, want 2 (k=2 and k=3 processed)", st.Levels)
	}
	// Inside K9 nothing of size 3..4 is maximal.
	if len(col.Cliques) != 0 {
		t.Errorf("cliques = %v", col.Cliques)
	}
}

func TestDirRequired(t *testing.T) {
	if _, err := Enumerate(graph.New(2), Options{}); err == nil {
		t.Fatal("missing Dir accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	col, st := run(t, graph.New(5), Options{})
	if len(col.Cliques) != 0 || st.Maximal != 0 {
		t.Error("edgeless graph produced cliques")
	}
}

func BenchmarkOutOfCorePlanted10(b *testing.B) {
	rng := rand.New(rand.NewSource(126))
	g := graph.PlantedGraph(rng, 150, []graph.PlantedCliqueSpec{{Size: 10}}, 250)
	dir := b.TempDir()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(g, Options{Dir: dir}); err != nil {
			b.Fatal(err)
		}
	}
}
