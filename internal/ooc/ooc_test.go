package ooc

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"testing"

	"repro/internal/clique"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/membudget"
)

func run(t *testing.T, g *graph.Graph, opts Options) (*clique.Collector, Stats) {
	t.Helper()
	col := &clique.Collector{}
	opts.Dir = t.TempDir()
	opts.Reporter = col
	st, err := Enumerate(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return col, st
}

func TestMatchesInCoreOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomGNP(rng, 4+rng.Intn(14), 0.5)
		inCore := &clique.Collector{}
		if _, err := core.Enumerate(g, core.Options{Reporter: inCore}); err != nil {
			t.Fatal(err)
		}
		outOfCore, _ := run(t, g, Options{})
		if ok, diff := clique.SameSets(inCore.Cliques, outOfCore.Cliques); !ok {
			t.Fatalf("trial %d: %s", trial, diff)
		}
	}
}

func TestMatchesInCoreOnPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	g := graph.PlantedGraph(rng, 80, []graph.PlantedCliqueSpec{
		{Size: 9}, {Size: 6, Overlap: 3},
	}, 150)
	inCore := &clique.Collector{}
	if _, err := core.Enumerate(g, core.Options{Reporter: inCore}); err != nil {
		t.Fatal(err)
	}
	outOfCore, st := run(t, g, Options{})
	if ok, diff := clique.SameSets(inCore.Cliques, outOfCore.Cliques); !ok {
		t.Fatal(diff)
	}
	if st.Maximal != int64(len(inCore.Cliques)) {
		t.Errorf("Maximal = %d, want %d", st.Maximal, len(inCore.Cliques))
	}
	if st.BytesWritten == 0 || st.BytesRead == 0 {
		t.Errorf("I/O accounting empty: %+v", st)
	}
	if st.PeakLevelFile == 0 || st.Levels == 0 {
		t.Errorf("level accounting empty: %+v", st)
	}
}

func TestNonDecreasingOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	g := graph.PlantedGraph(rng, 40, []graph.PlantedCliqueSpec{
		{Size: 7}, {Size: 5, Overlap: 2},
	}, 60)
	lastSize := 0
	col := clique.ReporterFunc(func(c clique.Clique) {
		if len(c) < lastSize {
			t.Fatalf("size order violated: %d after %d", len(c), lastSize)
		}
		lastSize = len(c)
	})
	if _, err := Enumerate(g, Options{Dir: t.TempDir(), Reporter: col}); err != nil {
		t.Fatal(err)
	}
}

func TestIOVolumeExceedsInCorePeak(t *testing.T) {
	// The out-of-core design's defining property: total bytes moved
	// through disk dwarf the in-core peak residency — the paper's
	// "intensive disk I/O access has been the major bottleneck".
	rng := rand.New(rand.NewSource(124))
	g := graph.PlantedGraph(rng, 100, []graph.PlantedCliqueSpec{{Size: 11}}, 200)
	inCore, err := core.Enumerate(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, st := run(t, g, Options{})
	if st.BytesWritten+st.BytesRead <= inCore.PeakBytes {
		t.Errorf("I/O %d bytes did not exceed in-core peak %d",
			st.BytesWritten+st.BytesRead, inCore.PeakBytes)
	}
}

func TestSpillBudgetAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(125))
	g := graph.PlantedGraph(rng, 60, []graph.PlantedCliqueSpec{{Size: 10}}, 100)
	for _, workers := range []int{1, 4} {
		st, err := Enumerate(g, Options{Dir: t.TempDir(), MaxLevelBytes: 256, Workers: workers})
		if !errors.Is(err, ErrSpillBudget) {
			t.Fatalf("workers=%d: err = %v, want ErrSpillBudget", workers, err)
		}
		if !st.Aborted {
			t.Errorf("workers=%d: Aborted flag not set", workers)
		}
		// The aborted run must report the I/O it actually performed: the
		// level tripped the budget, so at least budget bytes moved.
		if st.BytesWritten <= 256 {
			t.Errorf("workers=%d: aborted run reports %d bytes written, want > budget", workers, st.BytesWritten)
		}
	}
}

// TestSpillBudgetAbortsMidJoin forces the abort into the join of a
// later level (not the edge spill) and checks the accounting still
// covers the bytes the aborted level already wrote — the fix for the
// old fail() path that removed the file without accounting.
func TestSpillBudgetAbortsMidJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(129))
	g := graph.PlantedGraph(rng, 60, []graph.PlantedCliqueSpec{{Size: 10}}, 100)
	// A budget the edge level fits under but a later level must exceed.
	edgeBytes := int64(8*g.M()) + shardHeaderLen
	full, err := Enumerate(g, Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if full.PeakLevelFile <= edgeBytes {
		t.Fatalf("test graph too small: peak level %d not past the edge level %d", full.PeakLevelFile, edgeBytes)
	}
	st, err := Enumerate(g, Options{Dir: t.TempDir(), MaxLevelBytes: edgeBytes})
	if !errors.Is(err, ErrSpillBudget) {
		t.Fatalf("err = %v, want ErrSpillBudget", err)
	}
	if !st.Aborted {
		t.Error("Aborted flag not set")
	}
	// Edge level + the aborted join level's writes must both be counted.
	if st.BytesWritten <= edgeBytes {
		t.Errorf("aborted run reports %d bytes written; the aborted level's writes (> %d) are missing",
			st.BytesWritten, edgeBytes)
	}
	if st.Levels == 0 || st.BytesRead == 0 {
		t.Errorf("aborted run lost level/read accounting: %+v", st)
	}
}

// orderedKeys runs Enumerate and returns the emitted stream as ordered
// keys, failing on any error.
func orderedKeys(t *testing.T, g graph.Interface, opts Options) ([]string, Stats) {
	t.Helper()
	var keys []string
	opts.Reporter = clique.ReporterFunc(func(c clique.Clique) {
		keys = append(keys, c.Key())
	})
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	st, err := Enumerate(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return keys, st
}

// TestParallelCompressedParity is the engine's acceptance property: any
// combination of workers, record encoding, and shard granularity emits
// the byte-identical ordered clique stream the serial raw run emits.
func TestParallelCompressedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	for trial := 0; trial < 3; trial++ {
		g := graph.PlantedGraph(rng, 90, []graph.PlantedCliqueSpec{
			{Size: 10}, {Size: 7, Overlap: 3}, {Size: 6},
		}, 200)
		want, _ := orderedKeys(t, g, Options{})
		if len(want) == 0 {
			t.Fatal("reference run found no cliques")
		}
		for _, c := range []struct {
			name string
			opts Options
		}{
			{"parallel", Options{Workers: 4}},
			{"compressed", Options{Compress: true}},
			{"parallel-compressed", Options{Workers: 4, Compress: true}},
			{"tiny-shards", Options{Workers: 4, Compress: true, ShardBytes: 64}},
			{"parallel-checkpoint", Options{Workers: 3, Checkpoint: true, Dir: t.TempDir()}},
			{"many-workers", Options{Workers: 16, ShardBytes: 256}},
		} {
			got, _ := orderedKeys(t, g, c.opts)
			if len(got) != len(want) {
				t.Fatalf("trial %d %s: %d cliques, want %d", trial, c.name, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d %s: stream diverges at %d: got {%s}, want {%s}",
						trial, c.name, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRepresentationParity joins over every graph representation with
// and without workers — the cross-layer property `make race` exercises
// under the race detector.
func TestRepresentationParity(t *testing.T) {
	rng := rand.New(rand.NewSource(128))
	dense := graph.PlantedGraph(rng, 70, []graph.PlantedCliqueSpec{
		{Size: 9}, {Size: 6, Overlap: 2},
	}, 120)
	want, _ := orderedKeys(t, dense, Options{})
	for _, rep := range []graph.Representation{graph.Dense, graph.CSR, graph.Compressed} {
		gg, err := graph.Convert(dense, rep)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			got, _ := orderedKeys(t, gg, Options{Workers: workers, ShardBytes: 512, Compress: true})
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: %d cliques, want %d", rep, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: stream diverges at %d", rep, workers, i)
				}
			}
		}
	}
}

// TestPrefetchParity pins the read-ahead contract: the double-buffered
// shard prefetch changes when a shard's bytes leave the disk, never
// what the join emits — the clique stream is byte-identical with
// prefetch on and off, at every worker count, and the governor's ledger
// (which carries each in-flight read-ahead buffer) returns to zero.
func TestPrefetchParity(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	g := graph.PlantedGraph(rng, 90, []graph.PlantedCliqueSpec{
		{Size: 10}, {Size: 7, Overlap: 3}, {Size: 6},
	}, 200)
	want, _ := orderedKeys(t, g, Options{DisablePrefetch: true})
	if len(want) == 0 {
		t.Fatal("reference run found no cliques")
	}
	for _, workers := range []int{1, 4} {
		for _, compress := range []bool{false, true} {
			gov := membudget.New(0)
			got, st := orderedKeys(t, g, Options{
				Workers:    workers,
				Compress:   compress,
				ShardBytes: 256, // many shards: every worker prefetches repeatedly
				Gov:        gov,
			})
			if len(got) != len(want) {
				t.Fatalf("workers=%d compress=%v: %d cliques, want %d", workers, compress, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d compress=%v: stream diverges at %d: got {%s}, want {%s}",
						workers, compress, i, got[i], want[i])
				}
			}
			if st.BytesRead == 0 {
				t.Errorf("workers=%d compress=%v: prefetched run reports no bytes read", workers, compress)
			}
			if used := gov.Used(); used != 0 {
				t.Errorf("workers=%d compress=%v: governor ledger unbalanced after run: %d", workers, compress, used)
			}
		}
	}
}

// TestPrefetchCancellation pins the abandon path: canceling mid-run with
// read-ahead in flight must drain the prefetch goroutines, release their
// buffer charges, and still clean the spill directory.
func TestPrefetchCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(134))
	g := graph.PlantedGraph(rng, 110, []graph.PlantedCliqueSpec{{Size: 11}, {Size: 9, Overlap: 2}}, 260)
	gov := membudget.New(0)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	rep := clique.ReporterFunc(func(clique.Clique) {
		n++
		if n == 5 {
			cancel()
		}
	})
	dir := t.TempDir()
	_, err := Enumerate(g, Options{
		Ctx: ctx, Dir: dir, Reporter: rep,
		Workers: 4, ShardBytes: 128, Gov: gov,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if used := gov.Used(); used != 0 {
		t.Errorf("governor ledger unbalanced after canceled run: %d", used)
	}
	entries, derr := os.ReadDir(dir)
	if derr != nil {
		t.Fatal(derr)
	}
	if len(entries) != 0 {
		t.Errorf("spill dir not cleaned after cancel: %d entries", len(entries))
	}
}

// TestCompressionShrinksLevelFiles pins the >= 2x I/O reduction the
// delta-varint encoding exists for.
func TestCompressionShrinksLevelFiles(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	g := graph.PlantedGraph(rng, 150, []graph.PlantedCliqueSpec{{Size: 12}}, 250)
	_, raw := orderedKeys(t, g, Options{})
	_, packed := orderedKeys(t, g, Options{Compress: true})
	if raw.Maximal != packed.Maximal {
		t.Fatalf("encodings disagree: %d vs %d maximal", raw.Maximal, packed.Maximal)
	}
	if packed.RawBytesWritten != raw.RawBytesWritten {
		t.Errorf("raw-equivalent accounting differs: %d vs %d", packed.RawBytesWritten, raw.RawBytesWritten)
	}
	if 2*packed.BytesWritten > raw.BytesWritten {
		t.Errorf("compressed run wrote %d bytes vs raw %d: less than the 2x target",
			packed.BytesWritten, raw.BytesWritten)
	}
	t.Logf("level-file bytes: raw %d, delta-varint %d (%.1fx)",
		raw.BytesWritten, packed.BytesWritten,
		float64(raw.BytesWritten)/float64(packed.BytesWritten))
}

// TestCancellationCleansSpillDir cancels a plain run mid-level and
// checks the spill directory is empty afterwards (run dirs are private
// and removed even on abort).
func TestCancellationCleansSpillDir(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	g := graph.PlantedGraph(rng, 100, []graph.PlantedCliqueSpec{{Size: 11}}, 200)
	for _, workers := range []int{1, 4} {
		dir := t.TempDir()
		ctx, cancel := context.WithCancel(context.Background())
		emitted := 0
		_, err := Enumerate(g, Options{
			Ctx: ctx, Dir: dir, Workers: workers, ShardBytes: 512,
			Reporter: clique.ReporterFunc(func(clique.Clique) {
				if emitted++; emitted == 3 {
					cancel()
				}
			}),
		})
		cancel()
		if err == nil {
			t.Fatalf("workers=%d: canceled run completed", workers)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: error %v does not wrap context.Canceled", workers, err)
		}
		entries, rerr := os.ReadDir(dir)
		if rerr != nil {
			t.Fatal(rerr)
		}
		for _, e := range entries {
			t.Errorf("workers=%d: leftover spill entry %s", workers, e.Name())
		}
	}
}

// TestJoinHotLoopAllocs pins the hoisted-scratch fix: the spill hot
// loop must not allocate per record.  The planted-12 run spills tens of
// thousands of records; the per-run allocation count stays bounded by
// the shard/level structure (files, buffers, arenas), orders of
// magnitude below one-per-record.
func TestJoinHotLoopAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	g := graph.PlantedGraph(rng, 150, []graph.PlantedCliqueSpec{{Size: 12}}, 250)
	dir := t.TempDir()
	var spilled int64
	allocs := testing.AllocsPerRun(3, func() {
		st, err := Enumerate(g, Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		spilled = st.RawBytesWritten / 4
	})
	if spilled < 10000 {
		t.Fatalf("only %d vertices spilled; the graph is too small to prove anything", spilled)
	}
	// The old hot loop allocated one record slice per spilled record
	// (>= spilled/k allocations).  The rebuilt loop's budget covers
	// files, bufio buffers and stats only.
	if allocs > 2000 {
		t.Errorf("%.0f allocs/run for %d spilled vertices: the hot loop is allocating per record", allocs, spilled)
	}
	t.Logf("%.0f allocs/run, %d spilled vertices", allocs, spilled)
}

func TestMaxKStopsEarly(t *testing.T) {
	g := graph.New(9)
	graph.PlantClique(g, []int{0, 1, 2, 3, 4, 5, 6, 7, 8})
	col := &clique.Collector{}
	st, err := Enumerate(g, Options{Dir: t.TempDir(), Reporter: col, MaxK: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Levels != 2 {
		t.Errorf("levels = %d, want 2 (k=2 and k=3 processed)", st.Levels)
	}
	// Inside K9 nothing of size 3..4 is maximal.
	if len(col.Cliques) != 0 {
		t.Errorf("cliques = %v", col.Cliques)
	}
}

func TestDirRequired(t *testing.T) {
	if _, err := Enumerate(graph.New(2), Options{}); err == nil {
		t.Fatal("missing Dir accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	col, st := run(t, graph.New(5), Options{})
	if len(col.Cliques) != 0 || st.Maximal != 0 {
		t.Error("edgeless graph produced cliques")
	}
}

func BenchmarkOutOfCorePlanted10(b *testing.B) {
	rng := rand.New(rand.NewSource(126))
	g := graph.PlantedGraph(rng, 150, []graph.PlantedCliqueSpec{{Size: 10}}, 250)
	dir := b.TempDir()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(g, Options{Dir: dir}); err != nil {
			b.Fatal(err)
		}
	}
}
