package ooc

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Level-file record codecs.  A level file holds canonical k-clique
// records in sorted (lexicographic) order; the encoding is chosen per
// run:
//
//   - raw: fixed-width 4-byte little-endian vertices, k per record — the
//     original format, kept as the measurement baseline.
//   - delta-varint: each record is encoded against its predecessor as
//     uvarint(lcp) — the length of the shared prefix — followed by one
//     uvarint per remaining position holding the gap to the previous
//     vertex of the same record (records are strictly increasing, so
//     every gap is >= 1; the first position stores the vertex itself).
//     Sorted level files share long prefixes between neighbors and hold
//     small in-record gaps, which is exactly what makes the paper's
//     "intensive disk I/O" compressible: typical records cost a few
//     bytes instead of 4k.
//
// Both codecs are validated on decode — monotonicity within the record,
// lexicographic progress between records, and the vertex universe bound
// — so a truncated or corrupted level file surfaces an error instead of
// feeding garbage into the join.

// recordEncoder appends encoded records to a scratch buffer.  The
// predecessor state restarts per shard file, so every shard decodes
// independently.
type recordEncoder struct {
	k        int
	compress bool
	prev     []uint32
	hasPrev  bool
	buf      []byte
}

func newRecordEncoder(k int, compress bool) *recordEncoder {
	return &recordEncoder{k: k, compress: compress, prev: make([]uint32, k)}
}

// reset clears the predecessor state (a new shard file starts).
func (e *recordEncoder) reset() { e.hasPrev = false }

// encode returns rec's encoding; the returned slice is valid until the
// next call.
func (e *recordEncoder) encode(rec []uint32) []byte {
	e.buf = e.buf[:0]
	if !e.compress {
		for _, v := range rec {
			e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
		}
		return e.buf
	}
	l := 0
	if e.hasPrev {
		l = lcp(e.prev, rec)
		if l == e.k { // duplicate record: encoders never see one, but keep the format total
			l = e.k - 1
		}
	}
	e.buf = binary.AppendUvarint(e.buf, uint64(l))
	for i := l; i < e.k; i++ {
		if i == 0 {
			e.buf = binary.AppendUvarint(e.buf, uint64(rec[0]))
		} else {
			e.buf = binary.AppendUvarint(e.buf, uint64(rec[i]-rec[i-1]))
		}
	}
	copy(e.prev, rec)
	e.hasPrev = true
	return e.buf
}

// recordDecoder streams records back out of a shard file, validating as
// it goes.
type recordDecoder struct {
	k        int
	compress bool
	n        int // vertex universe; decoded vertices must lie in [0, n)
	prev     []uint32
	hasPrev  bool
}

func newRecordDecoder(k, n int, compress bool) *recordDecoder {
	return &recordDecoder{k: k, compress: compress, n: n, prev: make([]uint32, k)}
}

// decode reads one record into rec (len k).  It reports io.EOF only at a
// clean record boundary; a record cut short decodes to a corruption
// error.
func (d *recordDecoder) decode(br io.ByteReader, rec []uint32) error {
	if !d.compress {
		if err := d.decodeRaw(br, rec); err != nil {
			return err
		}
	} else if err := d.decodeDelta(br, rec); err != nil {
		return err
	}
	if err := d.validate(rec); err != nil {
		return err
	}
	copy(d.prev, rec)
	d.hasPrev = true
	return nil
}

func (d *recordDecoder) decodeRaw(br io.ByteReader, rec []uint32) error {
	for i := 0; i < d.k; i++ {
		var v uint32
		for b := 0; b < 4; b++ {
			c, err := br.ReadByte()
			if err != nil {
				if i == 0 && b == 0 && err == io.EOF {
					return io.EOF
				}
				return corrupt("truncated record: %v", err)
			}
			v |= uint32(c) << (8 * b)
		}
		rec[i] = v
	}
	return nil
}

func (d *recordDecoder) decodeDelta(br io.ByteReader, rec []uint32) error {
	l64, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return corrupt("truncated record header: %v", err)
	}
	l := int(l64)
	if l >= d.k {
		return corrupt("shared prefix %d out of [0,%d)", l, d.k)
	}
	if !d.hasPrev && l != 0 {
		return corrupt("first record claims a %d-vertex shared prefix", l)
	}
	copy(rec[:l], d.prev[:l])
	for i := l; i < d.k; i++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return corrupt("truncated record body: %v", err)
		}
		if i == 0 {
			rec[0] = uint32(delta)
		} else {
			v := uint64(rec[i-1]) + delta
			if v > uint64(^uint32(0)) {
				return corrupt("vertex overflow at position %d", i)
			}
			rec[i] = uint32(v)
		}
	}
	return nil
}

// validate enforces the level-file invariants: strictly increasing
// vertices inside the record, vertices inside the universe, and strict
// lexicographic progress from the previous record.
func (d *recordDecoder) validate(rec []uint32) error {
	for i, v := range rec {
		if int64(v) >= int64(d.n) {
			return corrupt("vertex %d out of universe [0,%d)", v, d.n)
		}
		if i > 0 && rec[i] <= rec[i-1] {
			return corrupt("record not strictly increasing at position %d", i)
		}
	}
	if d.hasPrev && compareRecords(d.prev, rec) >= 0 {
		return corrupt("records out of sorted order")
	}
	return nil
}

func corrupt(format string, args ...any) error {
	return fmt.Errorf("ooc: corrupt level file: "+format, args...)
}

// lcp returns the length of the longest common prefix of a and b.
func lcp(a, b []uint32) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// compareRecords orders equal-length records lexicographically.
func compareRecords(a, b []uint32) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

func equalPrefix(a, b []uint32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
