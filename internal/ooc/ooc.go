// Package ooc implements the out-of-core, level-wise maximal clique
// enumerator: the approach the paper used *before* moving to large
// shared-memory machines.  Section 1: "To deal with such large memory
// requirements we have previously developed an out-of-core algorithm
// based on the recursive branching procedure suggested by Kose et al ...
// the algorithm could not finish after one week of execution ...
// Intensive disk I/O access has been the major bottleneck."
//
// Levels live on disk.  Each level — the sorted file of canonical
// k-cliques — is stored as an ordered list of run-aligned shard files
// (package-level comment in shard.go); shards are joined concurrently on
// a persistent worker pool fed by the sched.Dispatcher, and shard
// results are released in shard order through a sched.Sequencer, so the
// emitted clique stream is byte-identical to the sequential one at any
// worker count.  Records are optionally delta-varint encoded
// (Options.Compress), attacking the disk I/O volume the paper names as
// the bottleneck; Stats reports both the encoded bytes actually moved
// and the fixed-width-equivalent raw bytes so the compression win is
// measurable.  Only one prefix run per worker (at most n tails) plus the
// in-flight shard window is resident at a time, so memory stays O(n·P)
// regardless of how many cliques a level holds.
//
// Checkpointed runs (Options.Checkpoint) write a manifest at every level
// boundary and keep their level files on cancellation or crash; Resume
// continues such a run from its last completed level instead of
// restarting — the answer to the paper's one-week-cutoff story.
package ooc

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/clique"
	"repro/internal/enumcfg"
	"repro/internal/graph"
	"repro/internal/membudget"
	"repro/internal/sched"
)

// Options configures Enumerate and Resume.
type Options struct {
	// Ctx, when non-nil, cancels the run: the record-streaming loops
	// check it every few thousand records and Enumerate returns the
	// partial Stats with an error wrapping ctx.Err().  Plain runs remove
	// their spill directory on the way out; checkpointed runs keep the
	// last completed level and its manifest for Resume.
	Ctx context.Context
	// Dir is the spill directory (required).  Plain runs create a
	// private temporary run directory inside it; checkpointed runs use
	// Dir itself as the durable run directory.
	Dir string
	// Reporter receives maximal cliques (size >= 3, non-decreasing,
	// canonical order within a size — identical at any worker count).
	Reporter clique.Reporter
	// MaxK stops after generating cliques of size MaxK (0 = run out).
	MaxK int
	// MaxLevelBytes aborts when a level's files would exceed this many
	// encoded bytes (0 = unlimited): the out-of-core analogue of the
	// paper's one-week cutoff.  Aborted runs still report the bytes they
	// actually moved.
	MaxLevelBytes int64
	// OnLevel, when non-nil, observes each generation step — the
	// out-of-core counterpart of core.Options.OnLevel.
	OnLevel func(LevelStats)
	// Workers is the number of shard-join workers (0 or 1 = serial).
	// The join is the CPU-bound part of the out-of-core loop; shards of
	// one level are joined concurrently with results released in shard
	// order, so the output stream does not depend on Workers.
	Workers int
	// Compress delta-varint encodes level records instead of storing
	// fixed-width 4-byte vertices, typically shrinking level files
	// severalfold on clique-rich graphs at a small encode/decode cost.
	Compress bool
	// Checkpoint makes the run resumable: Dir itself becomes the run
	// directory, a manifest is committed at every level boundary, and on
	// cancellation (or crash) the last completed level's files are kept
	// so Resume can continue the run.  A successful run removes its
	// manifest.  Dir must not already hold another run's checkpoint.
	Checkpoint bool
	// ShardBytes overrides the target encoded size of one shard file
	// (0 = auto: the consumed level's size split ~8 ways per worker,
	// clamped to [32 KiB, 32 MiB]).  Smaller shards mean finer dispatch
	// granularity and a smaller in-order release window.
	ShardBytes int64
	// Gov, when non-nil, is the run's shared memory governor.  The
	// out-of-core engine charges its resident buffers — per-worker
	// bitmaps at pool start, each in-flight shard's I/O buffer while
	// open, and each read-ahead buffer while in flight — so a hybrid
	// run's Peak stays meaningful after the spill.  The engine never
	// enforces the budget: disk is exactly where an over-budget run
	// belongs.
	Gov *membudget.Governor
	// DisablePrefetch turns off the double-buffered shard read-ahead.
	// By default each worker leases its next shard early and reads its
	// file in the background while joining the current one, overlapping
	// level I/O with the CPU-bound join; the in-flight buffer is charged
	// to Gov, and results still release in shard order through the
	// sequencer, so the clique stream is byte-identical either way.
	DisablePrefetch bool
}

// LevelStats describes one out-of-core generation step k -> k+1.
type LevelStats struct {
	FromK        int   // size of the consumed level's cliques
	Cliques      int64 // cliques streamed from the consumed level
	Shards       int   // shard files the consumed level was stored in
	FileBytes    int64 // encoded bytes of the consumed level
	RawFileBytes int64 // fixed-width-equivalent bytes of the consumed level
	NextBytes    int64 // encoded bytes of the produced level
	RawNextBytes int64 // fixed-width-equivalent bytes of the produced level
	Maximal      int64 // maximal (k+1)-cliques reported this step
}

// OptionsFromConfig derives out-of-core Options from the unified backend
// config.  Reporter and OnLevel are left for the caller; the config's Lo
// does not narrow the backend (it reports every maximal clique of size
// >= 3) — callers filter, as the facade does.
func OptionsFromConfig(c enumcfg.Config) Options {
	return Options{
		Ctx:           c.Ctx,
		Dir:           c.Dir,
		MaxK:          c.Hi,
		MaxLevelBytes: c.SpillBudget,
		Workers:       c.Workers,
		Compress:      c.OOCCompress,
		Checkpoint:    c.Checkpoint,
	}
}

// Stats reports the run's I/O behavior.  All byte counters are true
// I/O: bytes an aborted level already moved stay counted.
type Stats struct {
	Maximal         int64
	BytesWritten    int64 // encoded bytes written to level files
	RawBytesWritten int64 // fixed-width-equivalent payload bytes (the codec's baseline)
	BytesRead       int64 // encoded bytes read back
	PeakLevelFile   int64 // largest level (sum of its shards) in encoded bytes
	Levels          int   // generation steps run
	Shards          int64 // shard files produced
	Aborted         bool  // a level was cut short (budget, cancel, or error)
	Resumed         bool  // this run continued a checkpoint
}

// ErrSpillBudget is returned when MaxLevelBytes is exceeded.
var ErrSpillBudget = errors.New("ooc: spill budget exceeded")

const shardSuffix = ".ooc"

// Enumerate runs the out-of-core enumeration and returns its statistics.
func Enumerate(g graph.Interface, opts Options) (Stats, error) {
	if err := normalizeOptions(&opts); err != nil {
		return Stats{}, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return Stats{}, err
	}
	dir := opts.Dir
	if opts.Checkpoint {
		if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
			return Stats{}, fmt.Errorf(
				"ooc: %s already holds a checkpoint; Resume it or remove %s", dir, manifestName)
		}
	} else {
		d, err := os.MkdirTemp(opts.Dir, "ooc-run-*")
		if err != nil {
			return Stats{}, err
		}
		dir = d
	}
	e := newEngine(g, opts, dir)
	if opts.Checkpoint {
		e.fp = Fingerprint(g)
	}
	st, err := e.enumerate()
	if !opts.Checkpoint {
		// Plain runs never leave spill files behind, success or not; a
		// failing removal is surfaced, not swallowed.
		if rerr := os.RemoveAll(dir); rerr != nil {
			err = errors.Join(err, fmt.Errorf("ooc: removing spill dir: %w", rerr))
		}
	}
	return st, err
}

// Continue runs the out-of-core level loop starting from a level of
// size-k candidate records supplied by feed instead of from the graph's
// edges: the hybrid backend's in-core -> out-of-core handoff.  feed is
// called once with the level writer's write function and must produce
// the records in canonical sorted order (the run-aligned sharding
// invariant rests on it); rawHint, when positive, estimates the level's
// fixed-width bytes so the first level is sharded sensibly.  Everything
// else matches a plain Enumerate run: the spill directory is a private
// temporary directory inside opts.Dir, removed on the way out, and
// checkpointing is not supported — the in-core prefix of a hybrid run
// cannot be replayed from a manifest.
func Continue(g graph.Interface, opts Options, k int, rawHint int64,
	feed func(write func(rec []uint32) error) error) (Stats, error) {
	if err := normalizeOptions(&opts); err != nil {
		return Stats{}, err
	}
	if opts.Checkpoint {
		return Stats{}, fmt.Errorf("ooc: Continue does not support checkpointed runs")
	}
	if k < 2 {
		return Stats{}, fmt.Errorf("ooc: Continue from level %d (want >= 2)", k)
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return Stats{}, err
	}
	dir, err := os.MkdirTemp(opts.Dir, "ooc-run-*")
	if err != nil {
		return Stats{}, err
	}
	e := newEngine(g, opts, dir)
	st, err := e.continueFrom(k, rawHint, feed)
	if rerr := os.RemoveAll(dir); rerr != nil {
		err = errors.Join(err, fmt.Errorf("ooc: removing spill dir: %w", rerr))
	}
	return st, err
}

func (e *engine) continueFrom(k int, rawHint int64,
	feed func(write func(rec []uint32) error) error) (Stats, error) {
	shards, err := e.spillLevel(k, rawHint, feed)
	if err != nil {
		return e.stats(), err
	}
	return e.run(shards, k)
}

// Resume continues a checkpointed run from the manifest in opts.Dir.
// The graph must be the one the checkpoint was written for (verified by
// fingerprint).  The record encoding and, when not overridden, MaxK are
// adopted from the manifest; cumulative Stats continue from the
// checkpoint, so a resumed run's final Stats match an uninterrupted
// run's.  The interrupted level is re-joined from its beginning, so its
// cliques are re-emitted: the resumed stream is exactly the uninterrupted
// stream from the first clique of size K+1 (the manifest's level) on.
func Resume(g graph.Interface, opts Options) (Stats, error) {
	opts.Checkpoint = true
	if err := normalizeOptions(&opts); err != nil {
		return Stats{}, err
	}
	m, err := LoadManifest(opts.Dir)
	if err != nil {
		return Stats{}, err
	}
	fp := Fingerprint(g)
	if m.GraphN != g.N() || m.GraphM != g.M() || m.GraphHash != fp {
		return Stats{}, fmt.Errorf(
			"ooc: checkpoint in %s was written for a different graph (manifest n=%d m=%d hash=%s, graph n=%d m=%d hash=%s)",
			opts.Dir, m.GraphN, m.GraphM, m.GraphHash, g.N(), g.M(), fp)
	}
	if err := verifyShards(opts.Dir, m.Shards); err != nil {
		return Stats{}, err
	}
	// Partial outputs of the interrupted level are discarded; the level
	// re-runs from its durable input.
	if err := RemoveStaleShards(opts.Dir, m.Shards); err != nil {
		return Stats{}, err
	}
	opts.Compress = m.Compress
	if opts.MaxK == 0 {
		opts.MaxK = m.MaxK
	}
	e := newEngine(g, opts, opts.Dir)
	e.fp = fp // already computed for the guard; skip the second edge scan
	e.restore(m)
	return e.run(m.Shards, m.K)
}

func normalizeOptions(opts *Options) error {
	if opts.Dir == "" {
		return fmt.Errorf("ooc: Dir is required")
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.ShardBytes < 0 {
		return fmt.Errorf("ooc: negative ShardBytes %d", opts.ShardBytes)
	}
	if opts.Ctx == nil {
		opts.Ctx = context.Background()
	}
	return nil
}

// engine is one run's state: the pool, the I/O counters (atomics — the
// workers account for bytes the instant they move, which is what keeps
// aborted runs truthful), and the level cursor.
type engine struct {
	g    graph.Interface
	opts Options
	ctx  context.Context
	dir  string
	fp   string // graph fingerprint (checkpointed runs only)

	written    atomic.Int64
	rawWritten atomic.Int64
	read       atomic.Int64
	shardSeq   atomic.Int64

	// Mutated only in-order: under the sequencer lock during a level,
	// by the coordinator between levels.
	maximal     int64
	levels      int
	shardsTotal int64
	peak        int64
	aborted     bool
	resumed     bool
	checkpinned bool  // a manifest has been committed
	claimed     bool  // this process owns the checkpoint dir (first commit done)
	owner       Owner // the stamp each commit carries

	workers       []*oocWorker
	poolWG        sync.WaitGroup
	scratchCharge int64 // governor charge for the workers' bitmaps
}

func newEngine(g graph.Interface, opts Options, dir string) *engine {
	return &engine{g: g, opts: opts, ctx: opts.Ctx, dir: dir, owner: SelfOwner("ooc")}
}

// restore loads the cumulative counters of a checkpoint, so the resumed
// run's Stats continue where the interrupted run's boundary left off.
func (e *engine) restore(m *Manifest) {
	e.maximal = m.Stats.Maximal
	e.written.Store(m.Stats.BytesWritten)
	e.rawWritten.Store(m.Stats.RawBytesWritten)
	e.read.Store(m.Stats.BytesRead)
	e.peak = m.Stats.PeakLevelFile
	e.levels = m.Stats.Levels
	e.shardsTotal = m.Stats.Shards
	e.resumed = true
	e.checkpinned = true
}

func (e *engine) stats() Stats {
	return Stats{
		Maximal:         e.maximal,
		BytesWritten:    e.written.Load(),
		RawBytesWritten: e.rawWritten.Load(),
		BytesRead:       e.read.Load(),
		PeakLevelFile:   e.peak,
		Levels:          e.levels,
		Shards:          e.shardsTotal,
		Aborted:         e.aborted,
		Resumed:         e.resumed,
	}
}

// enumerate is the fresh-run entry: spill the edge level, then run the
// level loop from k=2.
func (e *engine) enumerate() (Stats, error) {
	shards, err := e.spillEdges()
	if err != nil {
		return e.stats(), err
	}
	return e.run(shards, 2)
}

// run drives the level loop from the given level until no candidates
// remain (or MaxK / cancellation / the spill budget stops it).
//
//repro:ctxloop
func (e *engine) run(shards []ShardMeta, k int) (Stats, error) {
	e.startPool()
	defer e.stopPool()
	if e.opts.Checkpoint && !e.checkpinned {
		if err := e.writeCheckpoint(shards, k); err != nil {
			return e.stats(), err
		}
	}
	for levelRecords(shards) > 0 {
		if e.opts.MaxK > 0 && k >= e.opts.MaxK {
			break
		}
		if err := e.ctx.Err(); err != nil {
			// Between levels the checkpoint is already durable; just
			// stop.  Plain runs are cleaned up by Enumerate.
			return e.stats(), fmt.Errorf("ooc: canceled before level %d->%d: %w", k, k+1, err)
		}
		next, err := e.runLevel(shards, k)
		if err != nil {
			return e.stats(), err
		}
		// Crash-ordering: the produced level is durable before the
		// manifest names it, and the consumed level is deleted only
		// after the manifest commits — whatever instant a kill lands,
		// the directory holds one consistent, resumable level.
		if e.opts.Checkpoint {
			if err := e.writeCheckpoint(next, k+1); err != nil {
				return e.stats(), err
			}
		}
		if err := e.removeShards(shards); err != nil {
			return e.stats(), err
		}
		shards, k = next, k+1
	}
	// Completion mirrors the boundary ordering: retire the manifest
	// BEFORE deleting the shards it names.  A kill between the two
	// leaves stray (unreferenced) shard files, never a manifest naming
	// deleted ones — the checkpoint is always either resumable or gone.
	if e.opts.Checkpoint {
		if err := RemoveManifest(e.dir); err != nil {
			return e.stats(), err
		}
	}
	if err := e.removeShards(shards); err != nil {
		return e.stats(), err
	}
	return e.stats(), nil
}

func (e *engine) writeCheckpoint(shards []ShardMeta, k int) error {
	st := e.stats()
	st.Aborted = false
	// The first commit claims the directory (a fresh run writes into an
	// empty one; a Resume adopts the checkpoint it just validated); every
	// later commit must match the owner already on disk — a stale
	// process's late commit is rejected instead of silently accepted.
	if err := WriteManifest(e.dir, &Manifest{
		Owner:     e.owner,
		Compress:  e.opts.Compress,
		K:         k,
		MaxK:      e.opts.MaxK,
		Shards:    shards,
		Stats:     st,
		GraphN:    e.g.N(),
		GraphM:    e.g.M(),
		GraphHash: e.fp,
	}, !e.claimed); err != nil {
		return err
	}
	e.claimed = true
	e.checkpinned = true
	return nil
}

func (e *engine) removeShards(shards []ShardMeta) error {
	var errs []error
	for _, s := range shards {
		if err := os.Remove(filepath.Join(e.dir, s.Path)); err != nil {
			errs = append(errs, fmt.Errorf("ooc: remove consumed level file: %w", err))
		}
	}
	return errors.Join(errs...)
}

func (e *engine) nextShardName(k int) string {
	return fmt.Sprintf("l%03d-%06d%s", k, e.shardSeq.Add(1), shardSuffix)
}

// shardTarget sizes the next level's shards from the consumed level's
// encoded bytes: about eight shards per worker, so the dispatcher has
// slack to balance skewed shard costs, clamped so tiny levels are not
// pulverized and huge ones are not monolithic.
func (e *engine) shardTarget(consumedBytes int64) int64 {
	if e.opts.ShardBytes > 0 {
		return e.opts.ShardBytes
	}
	return DefaultShardTarget(consumedBytes, e.opts.Workers)
}

// spillEdges writes level 2 — every edge in canonical order — through
// the sharding writer.
func (e *engine) spillEdges() ([]ShardMeta, error) {
	return e.spillLevel(2, 8*int64(e.g.M()), EdgeFeed(e.ctx, e.g))
}

// spillLevel writes one level's sorted record stream — produced by feed
// in canonical order — through the exported WriteLevel entry, with the
// engine's usual accounting.  rawHint estimates the level's fixed-width
// bytes for shard-target sizing.
func (e *engine) spillLevel(k int, rawHint int64,
	feed func(write func(rec []uint32) error) error) ([]ShardMeta, error) {
	var levelOut atomic.Int64
	shards, err := WriteLevel(e.dir, k, e.opts.Compress, e.shardTarget(rawHint), e.opts.Gov,
		func() (string, error) { return e.nextShardName(k), nil },
		e.accountWrite(&levelOut, k), feed)
	if err != nil {
		e.aborted = true
		return nil, err
	}
	e.shardsTotal += int64(len(shards))
	return shards, nil
}

// accountWrite builds the onWrite hook for one level: global I/O
// counters first (they must be truthful even if this very write aborts
// the level), then the per-level spill budget.
func (e *engine) accountWrite(levelOut *atomic.Int64, nextK int) func(enc, raw int64) error {
	budget := e.opts.MaxLevelBytes
	return func(enc, raw int64) error {
		e.written.Add(enc)
		e.rawWritten.Add(raw)
		if budget > 0 && levelOut.Add(enc) > budget {
			return fmt.Errorf("%w: level %d would pass %d bytes", ErrSpillBudget, nextK, budget)
		}
		return nil
	}
}

// levelJob is one level's work order, broadcast to the pool.
type levelJob struct {
	k       int
	shards  []ShardMeta
	disp    *sched.Dispatcher
	seq     *sched.Sequencer[*shardResult]
	ctx     context.Context
	cancel  context.CancelFunc
	target  int64
	collect bool
	onWrite func(enc, raw int64) error
	wg      sync.WaitGroup

	mu       sync.Mutex
	files    []string // next-level shard files created (for failure cleanup)
	firstErr error
}

// fail records the level's first error and cancels the level context so
// the other workers stop pulling work.  Later "canceled" errors from
// peers reacting to that cancel are discarded.
func (j *levelJob) fail(err error) {
	j.mu.Lock()
	if j.firstErr == nil {
		j.firstErr = err
	}
	j.mu.Unlock()
	j.cancel()
}

func (j *levelJob) addFile(name string) {
	j.mu.Lock()
	j.files = append(j.files, name)
	j.mu.Unlock()
}

// shardResult is one input shard's join output: the next-level shards it
// wrote, its maximal-clique emissions (a flat vertex arena — no
// per-clique allocation), and the count.
type shardResult struct {
	out       []ShardMeta
	maximal   int64
	emitVerts []int
	emitOff   []int32
}

// runLevel joins one level's shards on the pool and returns the next
// level's shard list.
func (e *engine) runLevel(shards []ShardMeta, k int) ([]ShardMeta, error) {
	e.levels++
	encB, rawB := levelBytes(shards)
	if encB > e.peak {
		e.peak = encB
	}
	lst := LevelStats{
		FromK:        k,
		Cliques:      levelRecords(shards),
		Shards:       len(shards),
		FileBytes:    encB,
		RawFileBytes: rawB,
	}
	maxBefore := e.maximal

	loads := make([]int64, len(shards))
	for i, s := range shards {
		loads[i] = s.Records
	}
	lctx, cancel := context.WithCancel(e.ctx)
	defer cancel()
	var levelOut atomic.Int64
	job := &levelJob{
		k:       k,
		shards:  shards,
		disp:    sched.NewContiguousDispatcher(loads, e.opts.Workers, 1),
		ctx:     lctx,
		cancel:  cancel,
		target:  e.shardTarget(encB),
		collect: e.opts.Reporter != nil,
		onWrite: e.accountWrite(&levelOut, k+1),
	}
	var nextShards []ShardMeta
	// Release in shard order: emission order is exactly the sequential
	// order, and the next level's shard list is assembled in global run
	// order.  Maximal counts accrue on release, so an aborted level
	// counts only the cliques actually delivered.
	job.seq = sched.NewSequencer(len(shards), func(_ int, res *shardResult) {
		e.maximal += res.maximal
		if e.opts.Reporter != nil {
			start := int32(0)
			for _, end := range res.emitOff {
				e.opts.Reporter.Emit(clique.Clique(res.emitVerts[start:end]))
				start = end
			}
		}
		nextShards = append(nextShards, res.out...)
	})
	job.wg.Add(len(e.workers))
	for _, w := range e.workers {
		w.jobs <- job
	}
	job.wg.Wait()

	job.mu.Lock()
	err := job.firstErr
	files := job.files
	job.mu.Unlock()
	if err == nil {
		if cerr := e.ctx.Err(); cerr != nil {
			err = fmt.Errorf("ooc: canceled during level %d->%d: %w", k, k+1, cerr)
		}
	}
	if err != nil {
		e.aborted = true
		// Discard the partial next level; the consumed level (and, when
		// checkpointing, the manifest pointing at it) stays for Resume.
		errs := []error{err}
		for _, name := range files {
			if rerr := os.Remove(filepath.Join(e.dir, name)); rerr != nil && !os.IsNotExist(rerr) {
				errs = append(errs, fmt.Errorf("ooc: remove aborted level file: %w", rerr))
			}
		}
		return nil, errors.Join(errs...)
	}

	nst, nraw := levelBytes(nextShards)
	lst.NextBytes, lst.RawNextBytes = nst, nraw
	lst.Maximal = e.maximal - maxBefore
	if e.opts.OnLevel != nil {
		e.opts.OnLevel(lst)
	}
	e.shardsTotal += int64(len(nextShards))
	return nextShards, nil
}

func (e *engine) startPool() {
	if e.workers != nil {
		return
	}
	e.workers = make([]*oocWorker, e.opts.Workers)
	for i := range e.workers {
		w := &oocWorker{
			id:   i,
			e:    e,
			jobs: make(chan *levelJob, 1),
			join: NewJoiner(e.g),
		}
		e.workers[i] = w
		e.poolWG.Add(1)
		go w.loop()
	}
	// Per-worker bitmap scratch is resident for the whole run; the
	// governor hears about it like any other layer's footprint.
	e.scratchCharge = int64(e.opts.Workers) * e.workers[0].join.ScratchBytes()
	e.opts.Gov.Charge(e.scratchCharge)
}

func (e *engine) stopPool() {
	for _, w := range e.workers {
		close(w.jobs)
	}
	e.poolWG.Wait()
	e.opts.Gov.Release(e.scratchCharge)
	e.scratchCharge = 0
}

// oocWorker is one persistent pool thread.  Its Joiner's bitmaps and
// record scratch live for the whole run, so the spill hot loop
// allocates nothing per record (pinned by TestJoinHotLoopAllocs).
type oocWorker struct {
	id   int
	e    *engine
	jobs chan *levelJob
	join *Joiner
}

func (w *oocWorker) loop() {
	defer w.e.poolWG.Done()
	for job := range w.jobs {
		w.runJob(job)
		job.wg.Done()
	}
}

// runJob drains the dispatcher with one shard of read-ahead: the worker
// flattens its leased chunks into a local queue and, before joining a
// shard, starts a background read of the next queued shard's file — the
// double buffer that overlaps the level's I/O with the CPU-bound join.
// The deposit order into the sequencer is unchanged (the queue preserves
// lease order and results still release in shard order), so the clique
// stream is byte-identical with read-ahead on or off.  Every exit path
// drains the in-flight read first: its goroutine and its governor-
// charged buffer must not outlive the level.
//
//repro:ctxloop
func (w *oocWorker) runJob(job *levelJob) {
	prefetch := !w.e.opts.DisablePrefetch
	var queue []int
	var next *prefetched
	defer func() {
		if next != nil {
			next.await()
			w.e.opts.Gov.Release(job.shards[next.si].Bytes)
		}
	}()
	for {
		if job.ctx.Err() != nil {
			return
		}
		if len(queue) == 0 {
			chunk, ok := job.disp.Next(w.id)
			if !ok {
				return
			}
			queue = append(queue, chunk.Items...)
		}
		si := queue[0]
		queue = queue[1:]
		var data []byte
		if next != nil && next.si == si {
			d, err := next.await()
			next = nil
			if err != nil {
				w.e.opts.Gov.Release(job.shards[si].Bytes)
				if job.ctx.Err() != nil {
					return // level canceled; the driver reports it
				}
				job.fail(err)
				return
			}
			data = d
		}
		// Lease ahead so the successor's read overlaps this shard's
		// join; the dispatcher stays the single source of assignment.
		if len(queue) == 0 {
			if chunk, ok := job.disp.Next(w.id); ok {
				queue = append(queue, chunk.Items...)
			}
		}
		if prefetch && next == nil && len(queue) > 0 {
			next = w.startPrefetch(job, queue[0])
		}
		res, err := w.processShard(job, si, data)
		if data != nil {
			w.e.opts.Gov.Release(job.shards[si].Bytes)
		}
		if err != nil {
			job.fail(err)
			return
		}
		job.seq.Deposit(si, res)
	}
}

// prefetched is one shard's encoded file, read ahead of its join by a
// background goroutine.  await joins that goroutine; the shard's
// meta.Bytes stay charged to the governor from startPrefetch until the
// consumer (or the job's abandon path) releases them.
type prefetched struct {
	si   int
	data []byte
	err  error
	done chan struct{}
}

func (p *prefetched) await() ([]byte, error) {
	<-p.done
	return p.data, p.err
}

// startPrefetch charges the shard's encoded size to the governor and
// begins reading its file in the background.
func (w *oocWorker) startPrefetch(job *levelJob, si int) *prefetched {
	meta := job.shards[si]
	w.e.opts.Gov.Charge(meta.Bytes)
	p := &prefetched{si: si, done: make(chan struct{})}
	go func() {
		defer close(p.done)
		if err := job.ctx.Err(); err != nil {
			p.err = err
			return
		}
		data, err := os.ReadFile(filepath.Join(w.e.dir, meta.Path))
		if err == nil && int64(len(data)) != meta.Bytes {
			err = corrupt("%s: size %d, manifest expects %d", meta.Path, len(data), meta.Bytes)
		}
		p.data, p.err = data, err
	}()
	return p
}

// processShard joins one input shard through the worker's Joiner,
// writing next-level candidates through its own sharding writer (output
// shards of consecutive input shards concatenate in order — the
// run-aligned range-sharding invariant).  The join itself lives in
// Joiner.JoinShard / JoinShardBytes, shared with the distributed worker
// path; data, when non-nil, is the shard's prefetched encoded file.
func (w *oocWorker) processShard(job *levelJob, si int, data []byte) (*shardResult, error) {
	e := w.e
	k := job.k
	out := NewLevelWriter(e.dir, k+1, e.opts.Compress, job.target, e.opts.Gov,
		func() (string, error) {
			name := e.nextShardName(k + 1)
			job.addFile(name)
			return name, nil
		},
		job.onWrite)
	var st JoinStats
	var err error
	if data != nil {
		st, err = w.join.JoinShardBytes(job.ctx, data, job.shards[si], k, e.opts.Compress, out, job.collect)
	} else {
		st, err = w.join.JoinShard(job.ctx, e.dir, job.shards[si], k, e.opts.Compress, e.opts.Gov, out, job.collect)
	}
	e.read.Add(st.BytesRead)
	if err != nil {
		return nil, errors.Join(err, out.Abort())
	}
	metas, err := out.Finish()
	if err != nil {
		return nil, err
	}
	return &shardResult{
		out:       metas,
		maximal:   st.Maximal,
		emitVerts: st.EmitVerts,
		emitOff:   st.EmitOff,
	}, nil
}

// SpillPath returns a default spill directory under the OS temp dir.
func SpillPath() string { return filepath.Join(os.TempDir(), "repro-ooc") }
