// Package ooc implements an out-of-core, level-wise maximal clique
// enumerator: the approach the paper used *before* moving to large
// shared-memory machines.  Section 1: "To deal with such large memory
// requirements we have previously developed an out-of-core algorithm
// based on the recursive branching procedure suggested by Kose et al ...
// the algorithm could not finish after one week of execution ...
// Intensive disk I/O access has been the major bottleneck."
//
// Levels live on disk: the file of canonical k-cliques is streamed
// through memory one prefix run at a time, tail pairs are joined into
// (k+1)-cliques written to the next level file, and the bitmap
// common-neighbor test decides maximality as in package core.  Only one
// prefix run (at most n cliques) is resident at a time, so memory stays
// O(n) regardless of how many cliques a level holds — the I/O volume is
// what explodes instead, and the Stats expose exactly that, which is the
// comparison the in-core/out-of-core ablation benchmark draws.
package ooc

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/bitset"
	"repro/internal/clique"
	"repro/internal/enumcfg"
	"repro/internal/graph"
)

// Options configures Enumerate.
type Options struct {
	// Ctx, when non-nil, cancels the run: the record-streaming loop
	// checks it every few thousand records, the current run's spill
	// directory (and every level file in it) is removed on the way out,
	// and Enumerate returns the partial Stats with an error wrapping
	// ctx.Err().
	Ctx context.Context
	// Dir is the spill directory (required); level files are created and
	// deleted inside it.
	Dir string
	// Reporter receives maximal cliques (size >= 3, non-decreasing).
	Reporter clique.Reporter
	// MaxK stops after generating cliques of size MaxK (0 = run out).
	MaxK int
	// MaxLevelBytes aborts when a level file would exceed this size
	// (0 = unlimited): the out-of-core analogue of the paper's one-week
	// cutoff.
	MaxLevelBytes int64
	// OnLevel, when non-nil, observes each generation step — the
	// out-of-core counterpart of core.Options.OnLevel.
	OnLevel func(LevelStats)
}

// LevelStats describes one out-of-core generation step k -> k+1.
type LevelStats struct {
	FromK     int   // size of the consumed level's cliques
	Cliques   int64 // cliques streamed from the consumed level file
	FileBytes int64 // size of the consumed level file
	NextBytes int64 // size of the produced level file
	Maximal   int64 // maximal (k+1)-cliques reported this step
}

// OptionsFromConfig derives out-of-core Options from the unified backend
// config.  Reporter and OnLevel are left for the caller; the config's Lo
// does not narrow the backend (it reports every maximal clique of size
// >= 3) — callers filter, as the facade does.
func OptionsFromConfig(c enumcfg.Config) Options {
	return Options{
		Ctx:           c.Ctx,
		Dir:           c.Dir,
		MaxK:          c.Hi,
		MaxLevelBytes: c.SpillBudget,
	}
}

// Stats reports the run's I/O behavior.
type Stats struct {
	Maximal       int64
	BytesWritten  int64
	BytesRead     int64
	PeakLevelFile int64 // largest level file in bytes
	Levels        int
	Aborted       bool
}

// ErrSpillBudget is returned when MaxLevelBytes is exceeded.
var ErrSpillBudget = fmt.Errorf("ooc: spill budget exceeded")

// levelWriter writes fixed-width k-clique records through a counting
// buffered writer.
type levelWriter struct {
	f       *os.File
	bw      *bufio.Writer
	k       int
	written int64
	count   int64
}

func newLevelWriter(dir string, k int) (*levelWriter, error) {
	f, err := os.CreateTemp(dir, fmt.Sprintf("level-%d-*.cliques", k))
	if err != nil {
		return nil, err
	}
	return &levelWriter{f: f, bw: bufio.NewWriterSize(f, 1<<20), k: k}, nil
}

func (w *levelWriter) write(c []uint32) error {
	var buf [4]byte
	for _, v := range c {
		binary.LittleEndian.PutUint32(buf[:], v)
		if _, err := w.bw.Write(buf[:]); err != nil {
			return err
		}
	}
	w.written += int64(4 * len(c))
	w.count++
	return nil
}

// finish flushes and reopens the file for reading.
func (w *levelWriter) finish() (*levelReader, error) {
	if err := w.bw.Flush(); err != nil {
		return nil, err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return &levelReader{
		f:     w.f,
		br:    bufio.NewReaderSize(w.f, 1<<20),
		k:     w.k,
		count: w.count,
		bytes: w.written,
	}, nil
}

// levelReader streams fixed-width k-clique records.
type levelReader struct {
	f     *os.File
	br    *bufio.Reader
	k     int
	count int64
	bytes int64
	read  int64
}

// next reads one clique into dst (len k), reporting io.EOF at the end.
func (r *levelReader) next(dst []uint32) error {
	var buf [4]byte
	for i := 0; i < r.k; i++ {
		if _, err := io.ReadFull(r.br, buf[:]); err != nil {
			if i == 0 && err == io.EOF {
				return io.EOF
			}
			return fmt.Errorf("ooc: truncated level file: %w", err)
		}
		dst[i] = binary.LittleEndian.Uint32(buf[:])
	}
	r.read += int64(4 * r.k)
	return nil
}

func (r *levelReader) close() error {
	name := r.f.Name()
	if err := r.f.Close(); err != nil {
		return err
	}
	return os.Remove(name)
}

// Enumerate runs the out-of-core enumeration and returns its statistics.
func Enumerate(g graph.Interface, opts Options) (Stats, error) {
	var st Stats
	if opts.Dir == "" {
		return st, fmt.Errorf("ooc: Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return st, err
	}
	dir, err := os.MkdirTemp(opts.Dir, "ooc-run-*")
	if err != nil {
		return st, err
	}
	defer os.RemoveAll(dir)

	// Level 2: spill all edges in canonical order.
	w, err := newLevelWriter(dir, 2)
	if err != nil {
		return st, err
	}
	writeErr := error(nil)
	graph.ForEachEdge(g, func(u, v int) bool {
		writeErr = w.write([]uint32{uint32(u), uint32(v)})
		return writeErr == nil
	})
	if writeErr != nil {
		return st, writeErr
	}
	st.BytesWritten += w.written

	cur, err := w.finish()
	if err != nil {
		return st, err
	}

	cn := bitset.New(g.N())
	cnNext := bitset.New(g.N())
	emitBuf := make(clique.Clique, 0, 16)
	for cur.count > 0 {
		if opts.MaxK > 0 && cur.k >= opts.MaxK {
			break
		}
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			cur.close()
			return st, fmt.Errorf("ooc: canceled before level %d->%d: %w",
				cur.k, cur.k+1, opts.Ctx.Err())
		}
		st.Levels++
		if cur.bytes > st.PeakLevelFile {
			st.PeakLevelFile = cur.bytes
		}
		lst := LevelStats{FromK: cur.k, Cliques: cur.count, FileBytes: cur.bytes}
		maxBefore := st.Maximal
		next, nst, err := generateLevel(g, dir, cur, cn, cnNext, emitBuf, opts, &st)
		st.BytesRead += cur.read
		if cerr := cur.close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			return st, err
		}
		st.BytesWritten += nst
		if opts.OnLevel != nil {
			lst.NextBytes = nst
			lst.Maximal = st.Maximal - maxBefore
			opts.OnLevel(lst)
		}
		cur = next
	}
	st.BytesRead += cur.read
	if err := cur.close(); err != nil {
		return st, err
	}
	return st, nil
}

// generateLevel streams one level file, joining prefix runs into the next
// level and reporting maximal (k+1)-cliques.
func generateLevel(g graph.Interface, dir string, cur *levelReader,
	cn, cnNext *bitset.Bitset, emitBuf clique.Clique,
	opts Options, st *Stats) (*levelReader, int64, error) {

	w, err := newLevelWriter(dir, cur.k+1)
	if err != nil {
		return nil, 0, err
	}
	fail := func(err error) (*levelReader, int64, error) {
		name := w.f.Name()
		w.f.Close()
		os.Remove(name)
		return nil, 0, err
	}

	// run holds the current prefix run: cliques sharing the first k-1
	// vertices.  At most n tails, so memory stays O(n).
	k := cur.k
	prefix := make([]uint32, k-1)
	var tails []uint32
	rec := make([]uint32, k)

	flush := func() error {
		if len(tails) == 0 {
			return nil
		}
		// CN of the shared prefix (k-1 ANDs over adjacency rows; for
		// k=2 the "prefix" is one vertex).
		graph.CommonNeighbors(g, cn, toInts(prefix))
		for i := 0; i < len(tails)-1; i++ {
			v := int(tails[i])
			rv := g.Row(v)
			rv.AndInto(cnNext, cn)
			for j := i + 1; j < len(tails); j++ {
				u := int(tails[j])
				if !rv.Test(u) {
					continue
				}
				if g.Row(u).IntersectsWith(cnNext) {
					// Non-maximal: spill as a next-level candidate.
					rec2 := append(append(append([]uint32{}, prefix...), tails[i]), tails[j])
					if err := w.write(rec2); err != nil {
						return err
					}
					if opts.MaxLevelBytes > 0 && w.written > opts.MaxLevelBytes {
						st.Aborted = true
						return ErrSpillBudget
					}
				} else if k+1 >= 3 {
					st.Maximal++
					if opts.Reporter != nil {
						emitBuf = emitBuf[:0]
						for _, p := range prefix {
							emitBuf = append(emitBuf, int(p))
						}
						emitBuf = append(emitBuf, v, u)
						opts.Reporter.Emit(emitBuf)
					}
				}
			}
		}
		tails = tails[:0]
		return nil
	}

	for rec64 := 0; ; rec64++ {
		// Cancellation point: every 4096 records, so latency stays
		// bounded even when one level file holds millions of cliques.
		if opts.Ctx != nil && rec64&4095 == 0 && opts.Ctx.Err() != nil {
			st.Aborted = true
			return fail(fmt.Errorf("ooc: canceled during level %d->%d: %w",
				k, k+1, opts.Ctx.Err()))
		}
		err := cur.next(rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fail(err)
		}
		if len(tails) > 0 && !equalPrefix(prefix, rec[:k-1]) {
			if err := flush(); err != nil {
				return fail(err)
			}
		}
		copy(prefix, rec[:k-1])
		tails = append(tails, rec[k-1])
	}
	if err := flush(); err != nil {
		return fail(err)
	}

	written := w.written
	next, err := w.finish()
	if err != nil {
		return nil, 0, err
	}
	return next, written, nil
}

func equalPrefix(a, b []uint32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func toInts(vs []uint32) []int {
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = int(v)
	}
	return out
}

// SpillPath returns a default spill directory under the OS temp dir.
func SpillPath() string { return filepath.Join(os.TempDir(), "repro-ooc") }
