package ooc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/membudget"
)

// This file is the worker-side face of the out-of-core engine: the
// pieces a remote (or merely out-of-process) worker needs to join one
// leased shard exactly the way the single-machine pool does — stream
// the shard's prefix runs, pairwise-test each run's tails against the
// prefix common-neighbor bitmap, spill survivors as (k+1)-candidates
// through a run-aligned LevelWriter, and buffer the maximal dead ends
// for in-order emission.  internal/dist builds its workers on Joiner +
// LevelWriter + OpenShard; the local pool in ooc.go uses the same
// Joiner, so the distributed and single-machine joins cannot drift.

// JoinStats is one shard join's output: the maximal cliques found (a
// flat vertex arena, no per-clique allocation), and the I/O the join
// performed.  The output shards are owned by the LevelWriter the caller
// supplied; Finish it to collect them.
type JoinStats struct {
	Maximal   int64
	EmitVerts []int
	EmitOff   []int32
	BytesRead int64
}

// Joiner owns the per-worker scratch of the shard join: the two dense
// common-neighbor bitmaps and the record buffers.  It is not safe for
// concurrent use; give each worker its own.
type Joiner struct {
	g          graph.Interface
	dense      *graph.Graph // non-nil when g is the dense backend (fused fast path)
	cn, cnNext *bitset.Bitset
	rec        []uint32
	prefix     []uint32
	tails      []uint32
	rec2       []uint32
	prefixInts []int
}

// NewJoiner returns a Joiner over g with freshly allocated scratch.
func NewJoiner(g graph.Interface) *Joiner {
	n := g.N()
	dense, _ := g.(*graph.Graph)
	return &Joiner{g: g, dense: dense, cn: bitset.New(n), cnNext: bitset.New(n)}
}

// ScratchBytes reports the joiner's resident bitmap footprint — what a
// coordinator reserves against its governor on the worker's behalf, so
// one budget authority still sees every process's scratch.
func (j *Joiner) ScratchBytes() int64 {
	return 2 * int64((j.g.N()+63)/64) * 8
}

// JoinShard streams one input shard of size-k records from dir, joining
// its prefix runs and writing next-level candidates through out (which
// the caller owns: Finish it for the output shard list, Abort it on
// error).  collect buffers maximal-clique emissions in the returned
// JoinStats; pass false when only counts are wanted.  The read buffer
// is charged to gov while the shard is open.
func (j *Joiner) JoinShard(ctx context.Context, dir string, in ShardMeta, k int,
	compress bool, gov *membudget.Governor, out *LevelWriter, collect bool) (JoinStats, error) {
	r, err := OpenShard(dir, in, k, j.g.N(), compress, gov)
	if err != nil {
		return JoinStats{}, err
	}
	return j.joinFrom(ctx, r, k, out, collect)
}

// JoinShardBytes is JoinShard over an in-memory copy of the shard's
// encoded file — the engine's read-ahead path.  The caller owns data and
// its governor charge; the join is byte-for-byte the same as the
// file-backed one, so the output stream cannot depend on which path a
// shard took.
func (j *Joiner) JoinShardBytes(ctx context.Context, data []byte, in ShardMeta, k int,
	compress bool, out *LevelWriter, collect bool) (JoinStats, error) {
	r, err := OpenShardBytes(data, in, k, j.g.N(), compress)
	if err != nil {
		return JoinStats{}, err
	}
	return j.joinFrom(ctx, r, k, out, collect)
}

// joinFrom streams the opened shard's prefix runs through joinRun,
// closing the reader on every path.
//
//repro:ctxloop
func (j *Joiner) joinFrom(ctx context.Context, r *ShardReader, k int,
	out *LevelWriter, collect bool) (res JoinStats, err error) {
	defer func() {
		res.BytesRead = r.BytesRead()
		if cerr := r.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
	}()

	rec := growU32(&j.rec, k)
	prefix := growU32(&j.prefix, k-1)
	tails := j.tails[:0]
	defer func() { j.tails = tails[:0] }() // keep grown capacity for the next shard
	for i := int64(0); ; i++ {
		// Cancellation point: every 4096 records, so abort latency stays
		// bounded even when one shard holds millions of cliques.
		if i&4095 == 0 && ctx.Err() != nil {
			return res, fmt.Errorf("ooc: canceled during level %d->%d: %w", k, k+1, ctx.Err())
		}
		err := r.Next(rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return res, err
		}
		if len(tails) > 0 && !equalPrefix(prefix, rec[:k-1]) {
			if err := j.joinRun(&res, out, k, prefix, tails, collect); err != nil {
				return res, err
			}
			tails = tails[:0]
		}
		copy(prefix, rec[:k-1])
		tails = append(tails, rec[k-1])
	}
	if len(tails) > 0 {
		if err := j.joinRun(&res, out, k, prefix, tails, collect); err != nil {
			return res, err
		}
	}
	return res, nil
}

// joinRun joins one prefix run: the current run's tails are pairwise
// tested; survivors spill as (k+1)-candidates, dead ends of size >= 3
// are maximal and buffered for in-order emission.  All scratch is
// joiner-owned — the hot loop allocates only when an emission arena
// grows.
func (j *Joiner) joinRun(res *JoinStats, out *LevelWriter,
	k int, prefix, tails []uint32, collect bool) error {
	g := j.g
	pi := j.prefixInts[:0]
	for _, p := range prefix {
		pi = append(pi, int(p))
	}
	j.prefixInts = pi
	// CN of the shared prefix (k-1 ANDs over adjacency rows; for k=2 the
	// "prefix" is one vertex).
	graph.CommonNeighbors(g, j.cn, pi)
	rec2 := growU32(&j.rec2, k+1)
	copy(rec2, prefix)
	for i := 0; i < len(tails)-1; i++ {
		v := int(tails[i])
		if j.dense != nil {
			// Dense fast path: the join never retains CN(prefix+v) — it
			// only asks maximality — so the cnNext materialize is fused
			// away entirely and each probe runs three-way over
			// (prefix CN, N(v), N(u)) with first-witness early exit.
			nv := j.dense.Neighbors(v)
			rec2[k-1] = tails[i]
			for jj := i + 1; jj < len(tails); jj++ {
				u := int(tails[jj])
				if !nv.Test(u) {
					continue
				}
				if bitset.AndAny3(j.cn, nv, j.dense.Neighbors(u)) {
					rec2[k] = tails[jj]
					if err := out.Write(rec2); err != nil {
						return err
					}
				} else if k+1 >= 3 {
					res.Maximal++
					if collect {
						for _, p := range prefix {
							res.EmitVerts = append(res.EmitVerts, int(p))
						}
						res.EmitVerts = append(res.EmitVerts, v, u)
						res.EmitOff = append(res.EmitOff, int32(len(res.EmitVerts)))
					}
				}
			}
			continue
		}
		rv := g.Row(v)
		rv.AndInto(j.cnNext, j.cn)
		rec2[k-1] = tails[i]
		for jj := i + 1; jj < len(tails); jj++ {
			u := int(tails[jj])
			if !rv.Test(u) {
				continue
			}
			if g.Row(u).IntersectsWith(j.cnNext) {
				// Non-maximal: spill as a next-level candidate.
				rec2[k] = tails[jj]
				if err := out.Write(rec2); err != nil {
					return err
				}
			} else if k+1 >= 3 {
				res.Maximal++
				if collect {
					for _, p := range prefix {
						res.EmitVerts = append(res.EmitVerts, int(p))
					}
					res.EmitVerts = append(res.EmitVerts, v, u)
					res.EmitOff = append(res.EmitOff, int32(len(res.EmitVerts)))
				}
			}
		}
	}
	return nil
}

func growU32(buf *[]uint32, n int) []uint32 {
	if cap(*buf) < n {
		*buf = make([]uint32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// WriteLevel writes one level's sorted record stream — produced by feed
// in canonical order, the run-aligned sharding invariant — into dir as
// shard files of roughly target encoded bytes.  nextName names each
// shard file; onWrite observes every encoded/raw byte increment (and
// may return an error to abort the level, e.g. a spill budget).  On a
// feed or write error every shard file created so far is removed and
// the error returned; on success the level's shard list is returned.
// This is the level-materialization entry the distributed coordinator
// (and the engine's own spill paths) write through.
func WriteLevel(dir string, k int, compress bool, target int64,
	gov *membudget.Governor, nextName func() (string, error),
	onWrite func(enc, raw int64) error,
	feed func(write func(rec []uint32) error) error) ([]ShardMeta, error) {
	var created []string
	lw := NewLevelWriter(dir, k, compress, target, gov,
		func() (string, error) {
			name, err := nextName()
			if err == nil {
				created = append(created, name)
			}
			return name, err
		},
		onWrite)
	if werr := feed(lw.Write); werr != nil {
		errs := []error{werr, lw.Abort()}
		for _, name := range created {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				errs = append(errs, fmt.Errorf("ooc: remove aborted level spill: %w", err))
			}
		}
		return nil, errors.Join(errs...)
	}
	return lw.Finish()
}

// EdgeFeed adapts a graph's canonical edge stream to WriteLevel's feed
// contract: every edge (u < v) in sorted order, as a 2-record — the
// level-2 seed of the out-of-core loop.  ctx cancels between batches of
// 4096 edges.
func EdgeFeed(ctx context.Context, g graph.Interface) func(write func(rec []uint32) error) error {
	return func(write func(rec []uint32) error) error {
		var rec [2]uint32
		var werr error
		cnt := 0
		graph.ForEachEdge(g, func(u, v int) bool {
			if cnt&4095 == 0 && ctx.Err() != nil {
				werr = fmt.Errorf("ooc: canceled during edge spill: %w", ctx.Err())
				return false
			}
			cnt++
			rec[0], rec[1] = uint32(u), uint32(v)
			werr = write(rec[:])
			return werr == nil
		})
		return werr
	}
}

// DefaultShardTarget sizes a level's shards from the consumed level's
// encoded bytes: about eight shards per worker, so the dispatcher (or
// the distributed lease table) has slack to balance skewed shard costs,
// clamped so tiny levels are not pulverized and huge ones are not
// monolithic.
func DefaultShardTarget(consumedBytes int64, workers int) int64 {
	if workers < 1 {
		workers = 1
	}
	t := consumedBytes / int64(8*workers)
	const minTarget = 32 << 10
	const maxTarget = 32 << 20
	if t < minTarget {
		t = minTarget
	}
	if t > maxTarget {
		t = maxTarget
	}
	return t
}

// LevelRecords sums the record counts of a level's shard list.
func LevelRecords(shards []ShardMeta) int64 { return levelRecords(shards) }

// LevelBytes sums a level's encoded and fixed-width-equivalent bytes.
func LevelBytes(shards []ShardMeta) (enc, raw int64) { return levelBytes(shards) }

// ShardFileName builds the canonical shard file name for level k with a
// distinguishing tag (the engine uses a global sequence; the
// distributed coordinator embeds shard index and lease attempt so a
// superseded worker's output can never collide with its replacement's).
func ShardFileName(k int, tag string) string {
	return fmt.Sprintf("l%03d-%s%s", k, tag, shardSuffix)
}
