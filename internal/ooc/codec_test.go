package ooc

import (
	"bufio"
	"bytes"
	"io"
	"math/rand"
	"sort"
	"testing"
)

// randomLevel generates a sorted, duplicate-free stream of canonical
// k-records over [0, n).
func randomLevel(rng *rand.Rand, k, n, count int) [][]uint32 {
	seen := map[string]bool{}
	var recs [][]uint32
	for len(recs) < count {
		perm := rng.Perm(n)[:k]
		sort.Ints(perm)
		rec := make([]uint32, k)
		key := ""
		for i, v := range perm {
			rec[i] = uint32(v)
			key += string(rune(v)) + ","
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return compareRecords(recs[i], recs[j]) < 0 })
	return recs
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, compress := range []bool{false, true} {
		for _, k := range []int{2, 3, 5, 9} {
			recs := randomLevel(rng, k, 80, 200)
			enc := newRecordEncoder(k, compress)
			var buf bytes.Buffer
			for _, r := range recs {
				buf.Write(enc.encode(r))
			}
			dec := newRecordDecoder(k, 80, compress)
			br := bufio.NewReader(&buf)
			got := make([]uint32, k)
			for i, want := range recs {
				if err := dec.decode(br, got); err != nil {
					t.Fatalf("compress=%v k=%d: decode record %d: %v", compress, k, i, err)
				}
				if compareRecords(got, want) != 0 {
					t.Fatalf("compress=%v k=%d: record %d = %v, want %v", compress, k, i, got, want)
				}
			}
			if err := dec.decode(br, got); err != io.EOF {
				t.Fatalf("compress=%v k=%d: trailing decode error %v, want EOF", compress, k, err)
			}
		}
	}
}

// TestCodecCompressionWins pins the point of the delta-varint codec: on
// a sorted clique-rich stream it beats fixed-width by well over 2x.
func TestCodecCompressionWins(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Dense run structure: all C(18,6) combinations of an 18-vertex
	// neighborhood — what a planted-clique level actually looks like.
	var recs [][]uint32
	base := rng.Perm(200)[:18]
	sort.Ints(base)
	var gen func(start int, cur []uint32)
	gen = func(start int, cur []uint32) {
		if len(cur) == 6 {
			recs = append(recs, append([]uint32(nil), cur...))
			return
		}
		for i := start; i < len(base); i++ {
			gen(i+1, append(cur, uint32(base[i])))
		}
	}
	gen(0, nil)
	sort.Slice(recs, func(i, j int) bool { return compareRecords(recs[i], recs[j]) < 0 })

	size := func(compress bool) int {
		enc := newRecordEncoder(6, compress)
		total := 0
		for _, r := range recs {
			total += len(enc.encode(r))
		}
		return total
	}
	raw, packed := size(false), size(true)
	if raw != 24*len(recs) {
		t.Fatalf("raw encoding %d bytes, want %d", raw, 24*len(recs))
	}
	if packed*2 > raw {
		t.Errorf("delta-varint %d bytes vs raw %d: less than the 2x target", packed, raw)
	}
	t.Logf("level of %d records: raw %d bytes, delta-varint %d (%.1fx)",
		len(recs), raw, packed, float64(raw)/float64(packed))
}

// TestDecoderRejectsCorruption: every class of malformed input surfaces
// an error — never a panic, never silent garbage.
func TestDecoderRejectsCorruption(t *testing.T) {
	cases := []struct {
		name     string
		compress bool
		data     []byte
	}{
		{"raw truncated mid-record", false, []byte{1, 0, 0, 0, 2, 0}},
		{"raw not increasing", false, []byte{5, 0, 0, 0, 5, 0, 0, 0, 6, 0, 0, 0}},
		{"raw out of universe", false, []byte{1, 0, 0, 0, 2, 0, 0, 0, 0xff, 0xff, 0, 0}},
		{"delta lcp out of range", true, []byte{3, 1, 1, 1}},
		{"delta lcp on first record", true, []byte{2, 1}},
		{"delta truncated body", true, []byte{0, 5}},
		{"delta zero gap (duplicate vertex)", true, []byte{0, 4, 0, 1}},
		{"delta out of universe", true, []byte{0, 200, 1, 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dec := newRecordDecoder(3, 100, c.compress)
			rec := make([]uint32, 3)
			err := dec.decode(bufio.NewReader(bytes.NewReader(c.data)), rec)
			if err == nil || err == io.EOF {
				t.Fatalf("corrupt input decoded without error (err=%v, rec=%v)", err, rec)
			}
		})
	}
}

// TestDecoderRejectsSortOrderRegression: a second record that does not
// advance lexicographically is corruption (level files are sorted).
func TestDecoderRejectsSortOrderRegression(t *testing.T) {
	enc := newRecordEncoder(3, false)
	var buf bytes.Buffer
	buf.Write(enc.encode([]uint32{5, 6, 7}))
	buf.Write(enc.encode([]uint32{1, 2, 3})) // encoder is not the validator; feed it out of order
	dec := newRecordDecoder(3, 100, false)
	br := bufio.NewReader(&buf)
	rec := make([]uint32, 3)
	if err := dec.decode(br, rec); err != nil {
		t.Fatal(err)
	}
	if err := dec.decode(br, rec); err == nil {
		t.Fatal("out-of-order record accepted")
	}
}
