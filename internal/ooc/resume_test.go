package ooc

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/clique"
	"repro/internal/graph"
)

func plantedGraph(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return graph.PlantedGraph(rng, 100, []graph.PlantedCliqueSpec{
		{Size: 11}, {Size: 7, Overlap: 3}, {Size: 6},
	}, 350)
}

// killRun starts a checkpointed run and cancels it after `after`
// emissions, returning the emitted prefix.
func killRun(t *testing.T, g graph.Interface, dir string, after int, opts Options) []string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var killed []string
	opts.Ctx = ctx
	opts.Dir = dir
	opts.Checkpoint = true
	opts.Reporter = clique.ReporterFunc(func(c clique.Clique) {
		killed = append(killed, c.Key())
		if len(killed) == after {
			cancel()
		}
	})
	_, err := Enumerate(g, opts)
	if err == nil {
		t.Fatal("checkpointed run completed despite cancellation; raise the kill point")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("kill error %v does not wrap context.Canceled", err)
	}
	return killed
}

// TestKillResumeParity kills a checkpointed run at several points and
// checks each resume delivers exactly the uninterrupted stream's suffix
// with merged cumulative stats equal to the uninterrupted run's.
func TestKillResumeParity(t *testing.T) {
	g := plantedGraph(201)
	for _, c := range []struct {
		name string
		opts Options
	}{
		{"serial-raw", Options{}},
		{"parallel-compressed", Options{Workers: 4, Compress: true, ShardBytes: 512}},
	} {
		t.Run(c.name, func(t *testing.T) {
			ref := c.opts
			want, full := orderedKeys(t, g, ref)
			if len(want) < 20 {
				t.Fatalf("only %d cliques in the reference run", len(want))
			}
			for _, kill := range []int{1, len(want) / 3, len(want) - 2} {
				dir := t.TempDir()
				killed := killRun(t, g, dir, kill, c.opts)
				for i, k := range killed {
					if k != want[i] {
						t.Fatalf("kill@%d: killed stream diverges at %d", kill, i)
					}
				}
				if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
					t.Fatalf("kill@%d: no manifest after the kill: %v", kill, err)
				}
				var resumed []string
				ropts := c.opts
				ropts.Dir = dir
				ropts.Reporter = clique.ReporterFunc(func(cl clique.Clique) {
					resumed = append(resumed, cl.Key())
				})
				st, err := Resume(g, ropts)
				if err != nil {
					t.Fatalf("kill@%d: resume: %v", kill, err)
				}
				if !st.Resumed {
					t.Errorf("kill@%d: Stats.Resumed unset", kill)
				}
				off := len(want) - len(resumed)
				if off < 0 || off > len(killed) {
					t.Fatalf("kill@%d: resume delivered %d cliques (killed %d, full %d): not a continuation",
						kill, len(resumed), len(killed), len(want))
				}
				for i, k := range resumed {
					if k != want[off+i] {
						t.Fatalf("kill@%d: resumed stream diverges at %d", kill, i)
					}
				}
				if st.Maximal != full.Maximal || st.BytesWritten != full.BytesWritten ||
					st.RawBytesWritten != full.RawBytesWritten || st.BytesRead != full.BytesRead ||
					st.Levels != full.Levels || st.PeakLevelFile != full.PeakLevelFile {
					t.Errorf("kill@%d: merged stats diverge from the uninterrupted run:\nresumed %+v\nfull    %+v",
						kill, st, full)
				}
			}
		})
	}
}

// TestResumeWithDifferentWorkerCount: parallelism is a per-run choice,
// not part of the checkpoint; the stream must not depend on it.
func TestResumeWithDifferentWorkerCount(t *testing.T) {
	g := plantedGraph(202)
	want, _ := orderedKeys(t, g, Options{})
	dir := t.TempDir()
	killRun(t, g, dir, len(want)/2, Options{Workers: 1, Compress: true})
	var resumed []string
	st, err := Resume(g, Options{
		Dir: dir, Workers: 4, ShardBytes: 256,
		Reporter: clique.ReporterFunc(func(c clique.Clique) { resumed = append(resumed, c.Key()) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Maximal == 0 || len(resumed) == 0 {
		t.Fatal("resumed run found nothing")
	}
	off := len(want) - len(resumed)
	for i, k := range resumed {
		if k != want[off+i] {
			t.Fatalf("resumed stream diverges at %d", i)
		}
	}
}

// TestCheckpointLifecycle: a completed checkpointed run retires its
// manifest and level files; a fresh run refuses a directory that still
// holds a live checkpoint.
func TestCheckpointLifecycle(t *testing.T) {
	g := plantedGraph(203)
	dir := t.TempDir()
	if _, err := Enumerate(g, Options{Dir: dir, Checkpoint: true}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("leftover entry after a completed checkpointed run: %s", e.Name())
	}
	// A live checkpoint blocks a fresh run in the same directory.
	killRun(t, g, dir, 1, Options{})
	if _, err := Enumerate(g, Options{Dir: dir, Checkpoint: true}); err == nil ||
		!strings.Contains(err.Error(), "already holds a checkpoint") {
		t.Fatalf("fresh run over a live checkpoint: err = %v", err)
	}
	// The kill left exactly the manifest plus the shards it lists.
	m, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	listed := map[string]bool{manifestName: true}
	for _, s := range m.Shards {
		listed[s.Path] = true
	}
	entries, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !listed[e.Name()] {
			t.Errorf("unlisted file left behind by the killed run: %s", e.Name())
		}
	}
}

// TestResumeRejectsDifferentGraph: the fingerprint guard.
func TestResumeRejectsDifferentGraph(t *testing.T) {
	g := plantedGraph(204)
	dir := t.TempDir()
	killRun(t, g, dir, 2, Options{})
	other := plantedGraph(205)
	if _, err := Resume(other, Options{Dir: dir}); err == nil ||
		!strings.Contains(err.Error(), "different graph") {
		t.Fatalf("resume against a different graph: err = %v", err)
	}
	// Same n and m but one edge moved: the hash must catch it.
	mutated := graph.New(g.N())
	edges := graph.Edges(g)
	for i, e := range edges {
		if i == 0 {
			continue
		}
		mutated.AddEdge(e.U, e.V)
	}
	u := edges[0].U
	for v := 0; v < mutated.N(); v++ {
		if v != u && !mutated.HasEdge(u, v) && !(u == edges[0].U && v == edges[0].V) {
			mutated.AddEdge(u, v)
			break
		}
	}
	if mutated.M() != g.M() {
		t.Fatalf("mutation changed the edge count: %d vs %d", mutated.M(), g.M())
	}
	if _, err := Resume(mutated, Options{Dir: dir}); err == nil ||
		!strings.Contains(err.Error(), "different graph") {
		t.Fatalf("resume against a mutated graph: err = %v", err)
	}
}

// TestResumeRejectsCorruptCheckpoints: every corruption class errors
// cleanly — no panics, no silent misbehavior.
func TestResumeRejectsCorruptCheckpoints(t *testing.T) {
	g := plantedGraph(206)
	freshKill := func(t *testing.T) string {
		dir := t.TempDir()
		killRun(t, g, dir, 3, Options{})
		return dir
	}
	t.Run("missing manifest", func(t *testing.T) {
		if _, err := Resume(g, Options{Dir: t.TempDir()}); err == nil ||
			!strings.Contains(err.Error(), "no resumable checkpoint") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("garbage manifest", func(t *testing.T) {
		dir := freshKill(t)
		if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Resume(g, Options{Dir: dir}); err == nil ||
			!strings.Contains(err.Error(), "corrupt manifest") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		dir := freshKill(t)
		m, err := LoadManifest(dir)
		if err != nil {
			t.Fatal(err)
		}
		m.Version = 99
		data, _ := json.Marshal(m)
		os.WriteFile(filepath.Join(dir, manifestName), data, 0o644)
		if _, err := Resume(g, Options{Dir: dir}); err == nil ||
			!strings.Contains(err.Error(), "version") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("traversal shard path", func(t *testing.T) {
		dir := freshKill(t)
		m, err := LoadManifest(dir)
		if err != nil {
			t.Fatal(err)
		}
		m.Shards[0].Path = "../escape" + shardSuffix
		data, _ := json.Marshal(m)
		os.WriteFile(filepath.Join(dir, manifestName), data, 0o644)
		if _, err := Resume(g, Options{Dir: dir}); err == nil ||
			!strings.Contains(err.Error(), "suspicious shard path") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("missing shard", func(t *testing.T) {
		dir := freshKill(t)
		m, err := LoadManifest(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(filepath.Join(dir, m.Shards[0].Path)); err != nil {
			t.Fatal(err)
		}
		if _, err := Resume(g, Options{Dir: dir}); err == nil ||
			!strings.Contains(err.Error(), "missing") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("truncated shard", func(t *testing.T) {
		dir := freshKill(t)
		m, err := LoadManifest(dir)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, m.Shards[0].Path)
		if err := os.Truncate(path, m.Shards[0].Bytes/2); err != nil {
			t.Fatal(err)
		}
		if _, err := Resume(g, Options{Dir: dir}); err == nil ||
			!strings.Contains(err.Error(), "truncated") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("corrupted shard body", func(t *testing.T) {
		dir := freshKill(t)
		m, err := LoadManifest(dir)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, m.Shards[0].Path)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Scramble the record payload, size unchanged: the pre-flight
		// stat passes, the record decoder must catch it mid-join.
		for i := shardHeaderLen; i < len(data); i++ {
			data[i] = byte(255 - data[i])
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Resume(g, Options{Dir: dir}); err == nil ||
			!strings.Contains(err.Error(), "corrupt level file") {
			t.Fatalf("err = %v", err)
		}
	})
}

// TestResumeDiscardsStalePartialLevel: the interrupted level's partial
// output files are removed on resume, not joined twice.
func TestResumeDiscardsStalePartialLevel(t *testing.T) {
	g := plantedGraph(207)
	dir := t.TempDir()
	killRun(t, g, dir, 2, Options{})
	// Plant a stale shard file mimicking a crash that never cleaned up.
	stale := filepath.Join(dir, "l099-999999"+shardSuffix)
	if err := os.WriteFile(stale, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	want, _ := orderedKeys(t, g, Options{})
	var resumed []string
	if _, err := Resume(g, Options{Dir: dir,
		Reporter: clique.ReporterFunc(func(c clique.Clique) { resumed = append(resumed, c.Key()) }),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale partial shard survived the resume")
	}
	off := len(want) - len(resumed)
	for i, k := range resumed {
		if k != want[off+i] {
			t.Fatalf("resumed stream diverges at %d", i)
		}
	}
}
