package ooc

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/graph"
)

// manifestName is the checkpoint descriptor inside a run directory.  It
// is rewritten atomically (tmp + rename) at every level boundary, so a
// run killed at any instant leaves either the previous or the next
// consistent checkpoint — never a torn one.  See DESIGN.md §0c for the
// crash-ordering invariant (outputs durable before the manifest names
// them, inputs deleted only after).
const manifestName = "ooc-manifest.json"

// ManifestVersion guards the on-disk format (shard encoding + manifest
// schema together).  Version 2 added the Owner stamp: a manifest
// records which process wrote it, and WriteManifest rejects a commit
// whose owner does not match the manifest already on disk — the guard
// that keeps a stale distributed worker's late commit from silently
// clobbering the coordinator's checkpoint.
const ManifestVersion = 2

// Owner identifies the process that owns a checkpoint directory: the
// host and pid that wrote the manifest, plus a role tag ("ooc" for the
// single-machine engine, "coordinator" for the distributed one, a
// worker id for anything a remote worker might ever write).  The ooc
// manifest write path used to assume same-process resume; with a
// coordinator and N worker processes sharing one run directory, the
// manifest itself must say whose commit it is.
type Owner struct {
	Host     string `json:"host"`
	PID      int    `json:"pid"`
	WorkerID string `json:"worker_id"`
}

// SelfOwner returns the calling process's Owner stamp with the given
// role tag.
func SelfOwner(workerID string) Owner {
	host, err := os.Hostname()
	if err != nil {
		host = "unknown"
	}
	return Owner{Host: host, PID: os.Getpid(), WorkerID: workerID}
}

// ReleaseRecord documents one re-lease: a shard whose lease expired (or
// whose worker died) and was handed to another worker.  The distributed
// coordinator appends these to its manifest so an operator — and the
// kill-a-worker smoke test — can see exactly which shards were
// re-executed.
type ReleaseRecord struct {
	Level   int    `json:"level"`
	Shard   string `json:"shard"`
	Worker  int    `json:"worker"`
	Attempt int    `json:"attempt"`
	Reason  string `json:"reason"`
}

// Manifest is the per-run checkpoint written at each level boundary: the
// next level to join, its shard files, the cumulative statistics through
// that boundary, and the identity of the graph the level files were
// derived from.  The distributed coordinator writes the same schema
// (plus its release history), so ooc.Resume can finish an interrupted
// distributed run on one machine.
type Manifest struct {
	Version  int         `json:"version"`
	Owner    Owner       `json:"owner"`
	Compress bool        `json:"compress"`
	K        int         `json:"k"` // clique size of Shards' records (next join input)
	MaxK     int         `json:"max_k,omitempty"`
	Shards   []ShardMeta `json:"shards"`
	Stats    Stats       `json:"stats"`
	GraphN   int         `json:"graph_n"`
	GraphM   int         `json:"graph_m"`
	// GraphHash fingerprints the canonical edge stream (FNV-1a), so a
	// checkpoint cannot silently resume against a different graph.
	GraphHash string `json:"graph_hash"`
	// Releases is the distributed coordinator's re-lease history
	// (empty for single-machine runs).
	Releases []ReleaseRecord `json:"releases,omitempty"`
}

// Fingerprint hashes the graph's canonical edge stream; Resume refuses a
// checkpoint whose fingerprint does not match the graph handed to it.
// The implementation is the promoted graph.Fingerprint — the one
// identity the manifest, the service registry, and the result cache all
// key on.
func Fingerprint(g graph.Interface) string { return graph.Fingerprint(g) }

// writeManifestRaw atomically replaces the run directory's manifest.
func writeManifestRaw(dir string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("ooc: encode manifest: %w", err)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("ooc: write manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("ooc: commit manifest: %w", err)
	}
	return nil
}

// WriteManifest commits a checkpoint: m.Version is stamped and the
// write replaces the directory's manifest atomically.  Unless takeover
// is set, a manifest already on disk must carry the same Owner — a
// commit from anyone else is rejected, so a stale worker (or a
// superseded coordinator) that wakes up late cannot clobber the live
// owner's checkpoint.  Takeover is for the two legitimate
// ownership-transfer points: the first commit of a fresh run and a
// Resume that has already validated the checkpoint it is adopting.
func WriteManifest(dir string, m *Manifest, takeover bool) error {
	m.Version = ManifestVersion
	if !takeover {
		if existing, err := LoadManifest(dir); err == nil && existing.Owner != (Owner{}) &&
			existing.Owner != m.Owner {
			return fmt.Errorf(
				"ooc: stale manifest commit rejected: %s is owned by %s@%s pid %d, not %s@%s pid %d",
				dir, existing.Owner.WorkerID, existing.Owner.Host, existing.Owner.PID,
				m.Owner.WorkerID, m.Owner.Host, m.Owner.PID)
		}
	}
	return writeManifestRaw(dir, m)
}

// LoadManifest reads and structurally validates a checkpoint manifest.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("ooc: no resumable checkpoint in %s: %w", dir, err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("ooc: corrupt manifest in %s: %w", dir, err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("ooc: manifest version %d, this build reads %d", m.Version, ManifestVersion)
	}
	if m.K < 2 {
		return nil, fmt.Errorf("ooc: corrupt manifest: level size %d", m.K)
	}
	for _, s := range m.Shards {
		if s.Path != filepath.Base(s.Path) || !strings.HasSuffix(s.Path, shardSuffix) {
			return nil, fmt.Errorf("ooc: corrupt manifest: suspicious shard path %q", s.Path)
		}
		if s.Records < 0 || s.Bytes < shardHeaderLen {
			return nil, fmt.Errorf("ooc: corrupt manifest: shard %s has %d records in %d bytes",
				s.Path, s.Records, s.Bytes)
		}
	}
	return &m, nil
}

// HasManifest reports whether dir holds a checkpoint manifest.
func HasManifest(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// RemoveManifest retires a completed checkpoint.  A missing manifest is
// not an error (the run may never have checkpointed).
func RemoveManifest(dir string) error {
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("ooc: removing completed checkpoint: %w", err)
	}
	return nil
}

// verifyShards stats every shard the manifest names, confirming presence
// and exact size — the cheap pre-flight that catches a truncated or
// tampered checkpoint before any join starts (record-level validation
// happens during the joins themselves).
func verifyShards(dir string, shards []ShardMeta) error {
	for _, s := range shards {
		fi, err := os.Stat(filepath.Join(dir, s.Path))
		if err != nil {
			return fmt.Errorf("ooc: checkpoint shard missing: %w", err)
		}
		if fi.Size() != s.Bytes {
			return fmt.Errorf("ooc: checkpoint shard %s is %d bytes, manifest says %d (truncated?)",
				s.Path, fi.Size(), s.Bytes)
		}
	}
	return nil
}

// RemoveStaleShards deletes shard files in dir that keep does not list —
// the partial outputs of an interrupted level, or the orphaned writes of
// a worker whose lease expired.  Only files matching the engine's naming
// pattern (the .ooc suffix) are touched.
func RemoveStaleShards(dir string, keep []ShardMeta) error {
	listed := make(map[string]bool, len(keep))
	for _, s := range keep {
		listed[s.Path] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("ooc: scan checkpoint dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || listed[name] || !strings.HasSuffix(name, shardSuffix) {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return fmt.Errorf("ooc: remove stale shard: %w", err)
		}
	}
	return nil
}
