package ooc

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/graph"
)

// manifestName is the checkpoint descriptor inside a run directory.  It
// is rewritten atomically (tmp + rename) at every level boundary, so a
// run killed at any instant leaves either the previous or the next
// consistent checkpoint — never a torn one.  See DESIGN.md §0c for the
// crash-ordering invariant (outputs durable before the manifest names
// them, inputs deleted only after).
const manifestName = "ooc-manifest.json"

// manifestVersion guards the on-disk format (shard encoding + manifest
// schema together).
const manifestVersion = 1

// manifest is the per-run checkpoint written at each level boundary: the
// next level to join, its shard files, the cumulative statistics through
// that boundary, and the identity of the graph the level files were
// derived from.
type manifest struct {
	Version  int         `json:"version"`
	Compress bool        `json:"compress"`
	K        int         `json:"k"` // clique size of Shards' records (next join input)
	MaxK     int         `json:"max_k,omitempty"`
	Shards   []shardMeta `json:"shards"`
	Stats    Stats       `json:"stats"`
	GraphN   int         `json:"graph_n"`
	GraphM   int         `json:"graph_m"`
	// GraphHash fingerprints the canonical edge stream (FNV-1a), so a
	// checkpoint cannot silently resume against a different graph.
	GraphHash string `json:"graph_hash"`
}

// Fingerprint hashes the graph's canonical edge stream; Resume refuses a
// checkpoint whose fingerprint does not match the graph handed to it.
// The implementation is the promoted graph.Fingerprint — the one
// identity the manifest, the service registry, and the result cache all
// key on.
func Fingerprint(g graph.Interface) string { return graph.Fingerprint(g) }

// writeManifest atomically replaces the run directory's manifest.
func writeManifest(dir string, m *manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("ooc: encode manifest: %w", err)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("ooc: write manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("ooc: commit manifest: %w", err)
	}
	return nil
}

// loadManifest reads and structurally validates a checkpoint manifest.
func loadManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("ooc: no resumable checkpoint in %s: %w", dir, err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("ooc: corrupt manifest in %s: %w", dir, err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("ooc: manifest version %d, this build reads %d", m.Version, manifestVersion)
	}
	if m.K < 2 {
		return nil, fmt.Errorf("ooc: corrupt manifest: level size %d", m.K)
	}
	for _, s := range m.Shards {
		if s.Path != filepath.Base(s.Path) || !strings.HasSuffix(s.Path, shardSuffix) {
			return nil, fmt.Errorf("ooc: corrupt manifest: suspicious shard path %q", s.Path)
		}
		if s.Records < 0 || s.Bytes < shardHeaderLen {
			return nil, fmt.Errorf("ooc: corrupt manifest: shard %s has %d records in %d bytes",
				s.Path, s.Records, s.Bytes)
		}
	}
	return &m, nil
}

// verifyShards stats every shard the manifest names, confirming presence
// and exact size — the cheap pre-flight that catches a truncated or
// tampered checkpoint before any join starts (record-level validation
// happens during the joins themselves).
func verifyShards(dir string, shards []shardMeta) error {
	for _, s := range shards {
		fi, err := os.Stat(filepath.Join(dir, s.Path))
		if err != nil {
			return fmt.Errorf("ooc: checkpoint shard missing: %w", err)
		}
		if fi.Size() != s.Bytes {
			return fmt.Errorf("ooc: checkpoint shard %s is %d bytes, manifest says %d (truncated?)",
				s.Path, fi.Size(), s.Bytes)
		}
	}
	return nil
}

// removeStaleShards deletes shard files in dir that the manifest does
// not list — the partial outputs of the level that was interrupted.
// Only files matching the engine's naming pattern are touched.
func removeStaleShards(dir string, keep []shardMeta) error {
	listed := make(map[string]bool, len(keep))
	for _, s := range keep {
		listed[s.Path] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("ooc: scan checkpoint dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || listed[name] || !strings.HasSuffix(name, shardSuffix) {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return fmt.Errorf("ooc: remove stale shard: %w", err)
		}
	}
	return nil
}
