package ooc

import (
	"strings"
	"testing"
)

// TestManifestV2RoundTrip pins the versioned manifest schema: owner
// stamp and re-lease history survive a write/load cycle intact.
func TestManifestV2RoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := &Manifest{
		Owner:    Owner{Host: "hostA", PID: 4242, WorkerID: "coordinator"},
		Compress: true,
		K:        3,
		MaxK:     7,
		Shards: []ShardMeta{
			{Path: "l003-000001.ooc", Records: 10, Runs: 4, Bytes: 64, RawBytes: 120},
		},
		Stats:     Stats{Maximal: 5, BytesWritten: 64, Levels: 1, Shards: 1},
		GraphN:    9,
		GraphM:    12,
		GraphHash: "fnv1a:deadbeef",
		Releases: []ReleaseRecord{
			{Level: 3, Shard: "l003-000001.ooc", Worker: 2, Attempt: 2, Reason: "lease expired"},
		},
	}
	if err := WriteManifest(dir, want, true); err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}
	if !HasManifest(dir) {
		t.Fatal("HasManifest = false after commit")
	}
	got, err := LoadManifest(dir)
	if err != nil {
		t.Fatalf("LoadManifest: %v", err)
	}
	if got.Version != ManifestVersion {
		t.Errorf("Version = %d, want %d (WriteManifest must stamp it)", got.Version, ManifestVersion)
	}
	if got.Owner != want.Owner {
		t.Errorf("Owner = %+v, want %+v", got.Owner, want.Owner)
	}
	if len(got.Releases) != 1 || got.Releases[0] != want.Releases[0] {
		t.Errorf("Releases = %+v, want %+v", got.Releases, want.Releases)
	}
	if got.K != want.K || got.MaxK != want.MaxK || got.GraphHash != want.GraphHash ||
		got.Compress != want.Compress || len(got.Shards) != 1 || got.Shards[0] != want.Shards[0] {
		t.Errorf("round-trip mismatch: got %+v", got)
	}
}

// TestManifestStaleOwnerRejected is the distributed-safety law the
// manifest write path now enforces: once a coordinator owns a run
// directory, a stale worker's (or superseded coordinator's) late commit
// is rejected instead of silently clobbering the live checkpoint.
func TestManifestStaleOwnerRejected(t *testing.T) {
	dir := t.TempDir()
	coord := Owner{Host: "hostA", PID: 100, WorkerID: "coordinator"}
	stale := Owner{Host: "hostA", PID: 217, WorkerID: "worker-3"}

	if err := WriteManifest(dir, &Manifest{Owner: coord, K: 2}, true); err != nil {
		t.Fatalf("initial takeover commit: %v", err)
	}
	// Same owner re-commits freely: the level-boundary steady state.
	if err := WriteManifest(dir, &Manifest{Owner: coord, K: 3}, false); err != nil {
		t.Fatalf("same-owner commit: %v", err)
	}
	// A different process's commit without takeover must be refused...
	err := WriteManifest(dir, &Manifest{Owner: stale, K: 4}, false)
	if err == nil || !strings.Contains(err.Error(), "stale manifest commit rejected") {
		t.Fatalf("stale commit error = %v, want rejection", err)
	}
	// ...and must leave the owner's checkpoint untouched.
	m, err := LoadManifest(dir)
	if err != nil {
		t.Fatalf("LoadManifest after rejected commit: %v", err)
	}
	if m.Owner != coord || m.K != 3 {
		t.Errorf("checkpoint after rejected commit: owner %+v K %d, want %+v K 3", m.Owner, m.K, coord)
	}
	// An explicit takeover (Resume adopting the checkpoint) still works.
	if err := WriteManifest(dir, &Manifest{Owner: stale, K: 4}, true); err != nil {
		t.Fatalf("takeover commit: %v", err)
	}
	if m, err = LoadManifest(dir); err != nil || m.Owner != stale {
		t.Fatalf("after takeover: m=%+v err=%v", m, err)
	}
}
