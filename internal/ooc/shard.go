package ooc

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/membudget"
)

// A level is stored as an ordered list of shard files, each holding a
// contiguous range of whole prefix runs (records sharing their first k-1
// vertices).  Because sharding is run-aligned and range-contiguous, the
// concatenation of the shards in list order IS the sorted level file —
// so shards can be joined concurrently and their outputs released in
// shard order by the streaming sequencer, reproducing the exact
// sequential emission order (see DESIGN.md §0c for the ordering
// argument).
//
// Each shard starts a fresh delta-encoder state, so shards decode
// independently — the unit of both parallelism and resume.

// shardHeaderLen is the fixed shard-file preamble: magic, format
// version, flags (bit0 = delta-varint), clique size.
const (
	shardMagic     = "OOCS"
	shardVersion   = 1
	shardHeaderLen = 7
)

// ShardMeta describes one shard file; the level manifest persists these
// for resume, and the in-memory level descriptor is just []ShardMeta.
type ShardMeta struct {
	Path     string `json:"path"` // relative to the run directory
	Records  int64  `json:"records"`
	Runs     int64  `json:"runs"`
	Bytes    int64  `json:"bytes"`     // encoded on-disk bytes (incl. header)
	RawBytes int64  `json:"raw_bytes"` // fixed-width-equivalent payload bytes (4k per record)
}

func levelRecords(shards []ShardMeta) int64 {
	var t int64
	for _, s := range shards {
		t += s.Records
	}
	return t
}

func levelBytes(shards []ShardMeta) (enc, raw int64) {
	for _, s := range shards {
		enc += s.Bytes
		raw += s.RawBytes
	}
	return
}

// LevelWriter writes one level's sorted record stream, splitting it into
// run-aligned shard files of roughly target encoded bytes.  newShard
// names each file (and lets the engine register it for failure
// cleanup); onWrite observes every encoded/raw byte increment as it
// happens — the accounting hook that keeps Stats.BytesWritten truthful
// even when the level aborts mid-shard — and may return an error (the
// spill-budget abort) to stop the writer.
type LevelWriter struct {
	dir      string
	k        int
	target   int64
	enc      *recordEncoder
	newShard func() (string, error)
	onWrite  func(encBytes, rawBytes int64) error
	gov      *membudget.Governor // charged with the in-flight I/O buffer

	shards  []ShardMeta
	f       *os.File
	bw      *bufio.Writer
	bufSize int64 // governor charge of the open shard's buffer
	cur     ShardMeta
	prev    []uint32
	count   int64 // records written this level
}

func NewLevelWriter(dir string, k int, compress bool, target int64,
	gov *membudget.Governor,
	newShard func() (string, error), onWrite func(enc, raw int64) error) *LevelWriter {
	if target < 1 {
		target = 1
	}
	return &LevelWriter{
		dir:      dir,
		k:        k,
		target:   target,
		enc:      newRecordEncoder(k, compress),
		newShard: newShard,
		onWrite:  onWrite,
		gov:      gov,
		prev:     make([]uint32, k),
	}
}

// write appends one record (sorted order is the caller's invariant).
func (w *LevelWriter) Write(rec []uint32) error {
	newRun := w.count == 0 || lcp(w.prev, rec) < w.k-1
	if w.f != nil && newRun && w.cur.Bytes >= w.target {
		if err := w.closeShard(); err != nil {
			return err
		}
	}
	if w.f == nil {
		if err := w.openShard(); err != nil {
			return err
		}
	}
	if newRun {
		w.cur.Runs++
	}
	buf := w.enc.encode(rec)
	if _, err := w.bw.Write(buf); err != nil {
		return fmt.Errorf("ooc: write %s: %w", w.cur.Path, err)
	}
	w.cur.Bytes += int64(len(buf))
	w.cur.RawBytes += int64(4 * len(rec))
	w.cur.Records++
	w.count++
	copy(w.prev, rec)
	return w.onWrite(int64(len(buf)), int64(4*len(rec)))
}

func (w *LevelWriter) openShard() error {
	name, err := w.newShard()
	if err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(w.dir, name))
	if err != nil {
		return fmt.Errorf("ooc: create shard: %w", err)
	}
	w.f = f
	sz := bufSize(w.target)
	w.bw = bufio.NewWriterSize(f, sz)
	w.bufSize = int64(sz)
	w.gov.Charge(w.bufSize)
	w.cur = ShardMeta{Path: name}
	w.enc.reset()
	hdr := shardHeader(w.k, w.enc.compress)
	if _, err := w.bw.Write(hdr); err != nil {
		return fmt.Errorf("ooc: write shard header: %w", err)
	}
	w.cur.Bytes += int64(len(hdr))
	return w.onWrite(int64(len(hdr)), 0)
}

func (w *LevelWriter) closeShard() error {
	if w.f == nil {
		return nil
	}
	err := w.bw.Flush()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.gov.Release(w.bufSize)
	w.bufSize = 0
	if err != nil {
		return fmt.Errorf("ooc: close shard %s: %w", w.cur.Path, err)
	}
	w.shards = append(w.shards, w.cur)
	w.f, w.bw = nil, nil
	return nil
}

// finish closes the current shard and returns the level's shard list.
func (w *LevelWriter) Finish() ([]ShardMeta, error) {
	if err := w.closeShard(); err != nil {
		return nil, err
	}
	return w.shards, nil
}

// abort flushes what the current shard buffered (so the on-disk state
// matches the byte accounting already reported through onWrite) and
// closes it.  The files themselves are removed by the engine's
// level-failure cleanup; abort only guarantees no descriptor leaks and
// surfaces — rather than swallows — close errors, annotated with the
// abort context.
func (w *LevelWriter) Abort() error {
	if w.f == nil {
		return nil
	}
	var errs []error
	if err := w.bw.Flush(); err != nil {
		errs = append(errs, fmt.Errorf("ooc: flushing aborted shard %s: %w", w.cur.Path, err))
	}
	if err := w.f.Close(); err != nil {
		errs = append(errs, fmt.Errorf("ooc: closing aborted shard %s: %w", w.cur.Path, err))
	}
	w.gov.Release(w.bufSize)
	w.bufSize = 0
	w.f, w.bw = nil, nil
	return errors.Join(errs...)
}

func shardHeader(k int, compress bool) []byte {
	hdr := make([]byte, 0, shardHeaderLen)
	hdr = append(hdr, shardMagic...)
	hdr = append(hdr, shardVersion)
	flags := byte(0)
	if compress {
		flags |= 1
	}
	return append(hdr, flags, byte(k))
}

// ShardReader streams one shard file's records, counting consumed bytes
// and enforcing the record count recorded at write time, so truncation
// and trailing garbage both surface as errors.
type ShardReader struct {
	f       *os.File
	cr      *countingReader
	br      *bufio.Reader
	dec     *recordDecoder
	meta    ShardMeta
	k       int
	records int64
	gov     *membudget.Governor
	bufSize int64
}

func OpenShard(dir string, meta ShardMeta, k, n int, compress bool, gov *membudget.Governor) (*ShardReader, error) {
	f, err := os.Open(filepath.Join(dir, meta.Path))
	if err != nil {
		return nil, fmt.Errorf("ooc: open shard: %w", err)
	}
	cr := &countingReader{r: f}
	sz := bufSize(meta.Bytes)
	r, err := newShardReader(cr, bufio.NewReaderSize(cr, sz), meta, k, n, compress)
	if err != nil {
		f.Close()
		return nil, err
	}
	r.f = f
	gov.Charge(int64(sz))
	r.gov, r.bufSize = gov, int64(sz)
	return r, nil
}

// OpenShardBytes reads a shard from an in-memory copy of its encoded
// file — the read-ahead path, where a prefetch goroutine has already
// pulled the bytes off disk.  The caller owns data (and its governor
// charge); Close closes no file and releases nothing.
func OpenShardBytes(data []byte, meta ShardMeta, k, n int, compress bool) (*ShardReader, error) {
	cr := &countingReader{r: bytes.NewReader(data)}
	// A small relay buffer: decode pulls bytes one at a time, and the
	// data already lives in memory, so a big window would only copy it
	// a second time for nothing.
	return newShardReader(cr, bufio.NewReaderSize(cr, 8<<10), meta, k, n, compress)
}

// newShardReader validates the shard preamble on br and assembles the
// reader; the caller attaches the file handle and governor charge (if
// any) on success.
func newShardReader(cr *countingReader, br *bufio.Reader, meta ShardMeta, k, n int, compress bool) (*ShardReader, error) {
	hdr := make([]byte, shardHeaderLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, corrupt("%s: short header: %v", meta.Path, err)
	}
	if string(hdr[:4]) != shardMagic {
		return nil, corrupt("%s: bad magic %q", meta.Path, hdr[:4])
	}
	if hdr[4] != shardVersion {
		return nil, corrupt("%s: unsupported format version %d", meta.Path, hdr[4])
	}
	if gotCompress := hdr[5]&1 != 0; gotCompress != compress {
		return nil, corrupt("%s: encoding mismatch (compressed=%v, run expects %v)",
			meta.Path, gotCompress, compress)
	}
	if int(hdr[6]) != k {
		return nil, corrupt("%s: clique size %d, level expects %d", meta.Path, hdr[6], k)
	}
	return &ShardReader{
		cr: cr, br: br,
		dec:  newRecordDecoder(k, n, compress),
		meta: meta, k: k,
	}, nil
}

// next reads one record into rec (len k), reporting io.EOF after exactly
// meta.Records records.
func (r *ShardReader) Next(rec []uint32) error {
	if r.records == r.meta.Records {
		// The write-time count is exhausted: the file must end here.
		if _, err := r.br.ReadByte(); err != io.EOF {
			return corrupt("%s: trailing data after %d records", r.meta.Path, r.records)
		}
		return io.EOF
	}
	if err := r.dec.decode(r.br, rec); err != nil {
		if err == io.EOF {
			return corrupt("%s: %d records, manifest expects %d",
				r.meta.Path, r.records, r.meta.Records)
		}
		return fmt.Errorf("%w (shard %s, record %d)", err, r.meta.Path, r.records)
	}
	r.records++
	return nil
}

// bytesRead returns the encoded bytes pulled from the file so far
// (buffered read-ahead included: it is real I/O).
func (r *ShardReader) BytesRead() int64 { return r.cr.n }

func (r *ShardReader) Close() error {
	r.gov.Release(r.bufSize)
	r.bufSize = 0
	if r.f == nil {
		return nil // in-memory source: nothing to close
	}
	if err := r.f.Close(); err != nil {
		return fmt.Errorf("ooc: close shard %s: %w", r.meta.Path, err)
	}
	return nil
}

// bufSize right-sizes a shard's I/O buffer: shard-sized when small (the
// common case once a level splits into many shards — a fixed 1 MiB
// buffer per shard would churn hundreds of times the level's bytes in
// allocations), capped at 1 MiB for big shards.
func bufSize(hint int64) int {
	const min = 4 << 10
	const max = 1 << 20
	if hint < min {
		return min
	}
	if hint > max {
		return max
	}
	return int(hint)
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
