// Package kose implements the maximal-clique enumeration algorithm of
// Kose et al. (Bioinformatics 17:1198–1208, 2001) as described in
// Section 2.3 of Zhang et al. (SC 2005) — the "Kose RAM" baseline of the
// paper's Table 1.
//
// The algorithm takes all edges (2-cliques) in non-repeating canonical
// order, generates all (k+1)-cliques from the k-cliques, then declares a
// k-clique maximal iff it is not contained in any (k+1)-clique, and
// repeats until no (k+1)-cliques are generated.  Its two structural
// weaknesses — storing *every* k-clique and (k+1)-clique, and deciding
// maximality by searching the (k+1)-clique list — are what the Clique
// Enumerator removes; they are kept here faithfully so the Table 1
// comparison measures what the paper measured.
//
// A FastContainment option replaces the quadratic containment scan with a
// hash-marking pass.  It is NOT part of the baseline (the paper's Kose
// RAM numbers come from the scan); it exists so correctness tests can
// cross-validate on graphs where the faithful scan would dominate test
// time.  Memory behavior is unchanged either way.
package kose

import (
	"repro/internal/clique"
	"repro/internal/graph"
)

// Options configures Enumerate.
type Options struct {
	// Reporter receives maximal cliques of size >= 3 in non-decreasing
	// size order (sizes 1-2 are outside the paper's experiments, matching
	// package core's default).  May be nil.
	Reporter clique.Reporter
	// FastContainment replaces the faithful O(M[k] * M[k+1] * k)
	// containment scan with hash marking.  See the package comment.
	FastContainment bool
	// MaxK, when positive, stops after generating cliques of size MaxK.
	MaxK int
}

// Stats reports counters from a run.
type Stats struct {
	Maximal        int64   // maximal cliques reported
	PeakCliques    int64   // max M[k] + M[k+1] held simultaneously
	PeakBytes      int64   // vertex-index bytes for that peak (c = 4)
	ContainChecks  int64   // k-clique vs (k+1)-clique containment tests
	GeneratedTotal int64   // cliques generated across all levels
	LevelCliques   []int64 // M[k] for k = 2, 3, ...
}

// cliqueList is a flat, canonical-order list of same-size cliques.
type cliqueList struct {
	k    int
	flat []uint32 // len = k * count
}

func (cl *cliqueList) count() int { return len(cl.flat) / cl.k }

func (cl *cliqueList) at(i int) []uint32 {
	return cl.flat[i*cl.k : (i+1)*cl.k]
}

// Enumerate runs Kose RAM over g and returns statistics.
func Enumerate(g *graph.Graph, opts Options) Stats {
	var st Stats

	// Level 2: all edges in canonical order.
	cur := &cliqueList{k: 2}
	g.ForEachEdge(func(u, v int) bool {
		cur.flat = append(cur.flat, uint32(u), uint32(v))
		return true
	})
	st.LevelCliques = append(st.LevelCliques, int64(cur.count()))

	emitBuf := make(clique.Clique, 0, 16)
	for cur.count() > 0 {
		if opts.MaxK > 0 && cur.k >= opts.MaxK {
			break
		}
		next := generate(g, cur)
		st.GeneratedTotal += int64(next.count())
		st.LevelCliques = append(st.LevelCliques, int64(next.count()))

		held := int64(cur.count() + next.count())
		if held > st.PeakCliques {
			st.PeakCliques = held
		}
		if bytes := int64(cur.count()*cur.k+next.count()*next.k) * 4; bytes > st.PeakBytes {
			st.PeakBytes = bytes
		}

		// Maximality: a k-clique is maximal iff it is a subgraph of no
		// (k+1)-clique.  Sizes below 3 are not reported (paper range).
		maximal := containmentFilter(cur, next, opts.FastContainment, &st)
		for _, idx := range maximal {
			if cur.k < 3 {
				break
			}
			st.Maximal++
			if opts.Reporter != nil {
				emitBuf = emitBuf[:0]
				for _, v := range cur.at(idx) {
					emitBuf = append(emitBuf, int(v))
				}
				opts.Reporter.Emit(emitBuf)
			}
		}
		cur = next
	}

	// Trailing level.  When the loop ended because no (k+1)-cliques were
	// generated, every remaining clique is maximal by definition; when a
	// MaxK stop cut generation short, non-maximal cliques may remain, so
	// verify each with the common-neighbor test.
	if cur.count() > 0 && cur.k >= 3 {
		stoppedEarly := opts.MaxK > 0 && cur.k >= opts.MaxK
		for i := 0; i < cur.count(); i++ {
			emitBuf = emitBuf[:0]
			for _, v := range cur.at(i) {
				emitBuf = append(emitBuf, int(v))
			}
			if stoppedEarly && !g.IsMaximalClique(emitBuf) {
				continue
			}
			st.Maximal++
			if opts.Reporter != nil {
				opts.Reporter.Emit(emitBuf)
			}
		}
	}
	return st
}

// generate joins k-cliques sharing their first k-1 vertices into
// (k+1)-cliques.  The input is in canonical order, so sharing cliques are
// consecutive; the output is again canonical.
func generate(g *graph.Graph, cur *cliqueList) *cliqueList {
	next := &cliqueList{k: cur.k + 1}
	n := cur.count()
	for start := 0; start < n; {
		end := start + 1
		for end < n && samePrefix(cur.at(start), cur.at(end)) {
			end++
		}
		// Join tails pairwise within the run [start, end).
		for i := start; i < end-1; i++ {
			ci := cur.at(i)
			v := int(ci[cur.k-1])
			for j := i + 1; j < end; j++ {
				u := int(cur.at(j)[cur.k-1])
				if g.HasEdge(v, u) {
					next.flat = append(next.flat, ci...)
					next.flat = append(next.flat, uint32(u))
				}
			}
		}
		start = end
	}
	return next
}

func samePrefix(a, b []uint32) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// containmentFilter returns the indices of cur's cliques that appear in
// no clique of next.
func containmentFilter(cur, next *cliqueList, fast bool, st *Stats) []int {
	if fast {
		return fastFilter(cur, next)
	}
	var maximal []int
	for i := 0; i < cur.count(); i++ {
		c := cur.at(i)
		contained := false
		for j := 0; j < next.count(); j++ {
			st.ContainChecks++
			if isSubset(c, next.at(j)) {
				contained = true
				break
			}
		}
		if !contained {
			maximal = append(maximal, i)
		}
	}
	return maximal
}

// isSubset reports c ⊆ d for sorted slices with len(d) = len(c)+1.
func isSubset(c, d []uint32) bool {
	skipped := false
	ci := 0
	for di := 0; di < len(d) && ci < len(c); di++ {
		switch {
		case d[di] == c[ci]:
			ci++
		case skipped:
			return false
		default:
			skipped = true
		}
	}
	return ci == len(c)
}

// fastFilter marks every k-subset-by-deletion of every (k+1)-clique in a
// hash set, then reports unmarked k-cliques.  Same answers, different
// complexity; used by tests only.
func fastFilter(cur, next *cliqueList) []int {
	marked := make(map[string]bool, next.count()*next.k)
	keyBuf := make([]byte, 0, 64)
	key := func(vs []uint32, skip int) string {
		keyBuf = keyBuf[:0]
		for i, v := range vs {
			if i == skip {
				continue
			}
			keyBuf = append(keyBuf,
				byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		return string(keyBuf)
	}
	for j := 0; j < next.count(); j++ {
		d := next.at(j)
		for skip := range d {
			marked[key(d, skip)] = true
		}
	}
	var maximal []int
	for i := 0; i < cur.count(); i++ {
		if !marked[key(cur.at(i), -1)] {
			maximal = append(maximal, i)
		}
	}
	return maximal
}

// MaximalCliques is a convenience wrapper returning all maximal cliques
// of size >= 3, sorted.
func MaximalCliques(g *graph.Graph, fast bool) []clique.Clique {
	col := &clique.Collector{}
	Enumerate(g, Options{Reporter: col, FastContainment: fast})
	col.Sort()
	return col.Cliques
}
