package kose

import (
	"math/rand"
	"testing"

	"repro/internal/clique"
	"repro/internal/graph"
)

// bruteMaximal3Plus returns brute-force maximal cliques of size >= 3,
// matching Kose's reporting range.
func bruteMaximal3Plus(g *graph.Graph) []clique.Clique {
	var out []clique.Clique
	for _, c := range clique.BruteForceMaximal(g) {
		if len(c) >= 3 {
			out = append(out, c)
		}
	}
	return out
}

func TestTriangle(t *testing.T) {
	g := graph.New(3)
	graph.PlantClique(g, []int{0, 1, 2})
	for _, fast := range []bool{false, true} {
		got := MaximalCliques(g, fast)
		if len(got) != 1 || got[0].Key() != "0,1,2" {
			t.Errorf("fast=%v: triangle -> %v", fast, got)
		}
	}
}

func TestEdgeOnlyGraphReportsNothing(t *testing.T) {
	// Maximal cliques of size 2 are outside the reporting range.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	st := Enumerate(g, Options{})
	if st.Maximal != 0 {
		t.Errorf("Maximal = %d, want 0", st.Maximal)
	}
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(12)
		g := graph.RandomGNP(rng, n, 0.55)
		want := bruteMaximal3Plus(g)
		for _, fast := range []bool{false, true} {
			got := MaximalCliques(g, fast)
			if ok, diff := clique.SameSets(got, want); !ok {
				t.Fatalf("trial %d fast=%v: %s", trial, fast, diff)
			}
			if err := clique.Validate(g, got, 3, 0); err != nil {
				t.Fatalf("trial %d fast=%v: %v", trial, fast, err)
			}
		}
	}
}

func TestFastAndFaithfulAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := graph.PlantedGraph(rng, 35, []graph.PlantedCliqueSpec{
		{Size: 7}, {Size: 5, Overlap: 2},
	}, 50)
	slow := MaximalCliques(g, false)
	fast := MaximalCliques(g, true)
	if ok, diff := clique.SameSets(slow, fast); !ok {
		t.Fatalf("containment strategies disagree: %s", diff)
	}
}

func TestNonDecreasingOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := graph.PlantedGraph(rng, 30, []graph.PlantedCliqueSpec{
		{Size: 6}, {Size: 4, Overlap: 1},
	}, 30)
	lastSize := 0
	Enumerate(g, Options{Reporter: clique.ReporterFunc(func(c clique.Clique) {
		if len(c) < lastSize {
			t.Fatalf("size order violated: %d after %d", len(c), lastSize)
		}
		lastSize = len(c)
	})})
}

func TestStatsTrackMemoryHunger(t *testing.T) {
	// On a planted 9-clique, Kose must hold all C(9,k) cliques at each
	// level: peak M[4]+M[5] = 126+126 = 252.
	g := graph.New(9)
	graph.PlantClique(g, []int{0, 1, 2, 3, 4, 5, 6, 7, 8})
	st := Enumerate(g, Options{})
	if st.PeakCliques != 252 {
		t.Errorf("PeakCliques = %d, want 252", st.PeakCliques)
	}
	// Peak bytes: 126*4*4 + 126*5*4 = 4536.
	if st.PeakBytes != 4536 {
		t.Errorf("PeakBytes = %d, want 4536", st.PeakBytes)
	}
	if st.ContainChecks == 0 {
		t.Error("no containment checks recorded")
	}
	// Level sizes must be the binomials C(9,k).
	want := []int64{36, 84, 126, 126, 84, 36, 9, 1, 0}
	if len(st.LevelCliques) != len(want) {
		t.Fatalf("LevelCliques = %v", st.LevelCliques)
	}
	for i := range want {
		if st.LevelCliques[i] != want[i] {
			t.Fatalf("LevelCliques = %v, want %v", st.LevelCliques, want)
		}
	}
}

func TestMaxKStopsEarly(t *testing.T) {
	g := graph.New(9)
	graph.PlantClique(g, []int{0, 1, 2, 3, 4, 5, 6, 7, 8})
	st := Enumerate(g, Options{MaxK: 4})
	// Levels 2, 3, 4 generated; generation stops at MaxK.
	if len(st.LevelCliques) != 3 {
		t.Errorf("LevelCliques = %v, want 3 levels", st.LevelCliques)
	}
}

func TestIsSubset(t *testing.T) {
	cases := []struct {
		c, d []uint32
		want bool
	}{
		{[]uint32{1, 2}, []uint32{1, 2, 3}, true},
		{[]uint32{1, 3}, []uint32{1, 2, 3}, true},
		{[]uint32{2, 3}, []uint32{1, 2, 3}, true},
		{[]uint32{1, 4}, []uint32{1, 2, 3}, false},
		{[]uint32{4, 5}, []uint32{1, 2, 3}, false},
		{[]uint32{1, 2, 3}, []uint32{1, 2, 3, 4}, true},
		{[]uint32{1, 2, 4}, []uint32{1, 2, 3, 4}, true},
	}
	for _, tc := range cases {
		if got := isSubset(tc.c, tc.d); got != tc.want {
			t.Errorf("isSubset(%v,%v) = %v", tc.c, tc.d, got)
		}
	}
}

func BenchmarkKoseFaithfulPlanted10(b *testing.B) {
	rng := rand.New(rand.NewSource(44))
	g := graph.PlantedGraph(rng, 100, []graph.PlantedCliqueSpec{{Size: 10}}, 120)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Enumerate(g, Options{})
	}
}
