package expt

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/clique"
	"repro/internal/core"
	"repro/internal/kose"
	"repro/internal/maxclique"
	"repro/internal/simarch"
)

// Config drives the experiment runners.
type Config struct {
	// Ctx, when non-nil, cancels the enumeration phases of an experiment
	// between levels (cmd/repro wires -timeout and SIGINT here).
	Ctx context.Context
	// Scale in (0,1] shrinks the paper's graphs (1 = paper scale).
	Scale float64
	// Seed makes every run reproducible; repetitions use Seed+rep.
	Seed int64
	// Reps is the number of repetitions for the experiments that report
	// mean ± stddev (the paper uses 10).
	Reps int
	// Budget caps resident candidate bytes for the blow-up experiment
	// (default 1 GiB).
	Budget int64
}

func (c Config) normalized() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Reps == 0 {
		c.Reps = 10
	}
	if c.Budget == 0 {
		c.Budget = 1 << 30
	}
	return c
}

func (c Config) specA() GraphSpec { return SpecA.Scale(c.Scale) }
func (c Config) specB() GraphSpec { return SpecB.Scale(c.Scale) }
func (c Config) specC() GraphSpec { return SpecC.Scale(c.Scale) }

// MaxCliqueBounds reproduces the Section 3 statement "we found the
// maximum clique size to be 17, 110, and 28 for each graph": it builds
// the three synthetic graphs and verifies the branch-and-bound solver
// recovers each planted maximum.
func MaxCliqueBounds(cfg Config) (*Table, error) {
	cfg = cfg.normalized()
	t := &Table{
		Title:   "Section 3: maximum clique sizes of the three input graphs",
		Headers: []string{"graph", "vertices", "edges", "density", "omega(paper)", "omega(found)", "time"},
	}
	for _, spec := range []GraphSpec{cfg.specA(), cfg.specB(), cfg.specC()} {
		g := Build(spec, cfg.Seed)
		start := time.Now()
		found := maxclique.Size(g)
		elapsed := time.Since(start)
		t.AddRow(spec.Name,
			fmt.Sprint(g.N()), fmt.Sprint(g.M()),
			fmt.Sprintf("%.4f%%", 100*g.Density()),
			fmt.Sprint(spec.Omega), fmt.Sprint(found),
			elapsed.Round(time.Millisecond).String())
		if found != spec.Omega {
			return t, fmt.Errorf("expt: %s: found ω=%d, planted %d", spec.Name, found, spec.Omega)
		}
	}
	if cfg.Scale < 1 {
		t.Notes = append(t.Notes, fmt.Sprintf("graphs scaled by %.2f; paper values are 17/110/28", cfg.Scale))
	}
	return t, nil
}

// Table1Result carries the Table 1 measurements.
type Table1Result struct {
	Table       *Table
	KoseSeconds float64
	CoreSeconds float64
	Speedup     float64
	Cliques     int64
}

// Table1 reproduces the paper's Table 1: Kose RAM versus the sequential
// Clique Enumerator on graph A, enumerating maximal cliques of sizes 3
// through ω.  The paper measured 17,261 s vs 45 s (≈383×) on a 1 GHz
// PowerPC G4; the comparison here runs both algorithms on the same host,
// so the ratio — not the absolute seconds — is the reproduced quantity.
func Table1(cfg Config) (*Table1Result, error) {
	cfg = cfg.normalized()
	spec := cfg.specA()
	g := Build(spec, cfg.Seed)

	koseCount := clique.NewCounter()
	start := time.Now()
	kose.Enumerate(g, kose.Options{Reporter: koseCount})
	koseSec := time.Since(start).Seconds()

	coreCount := clique.NewCounter()
	start = time.Now()
	coreRes, err := core.Enumerate(g, core.Options{Ctx: cfg.Ctx, Reporter: coreCount})
	if err != nil {
		return nil, err
	}
	coreSec := time.Since(start).Seconds()

	if koseCount.Total != coreCount.Total {
		return nil, fmt.Errorf("expt: kose found %d maximal cliques, core %d",
			koseCount.Total, coreCount.Total)
	}

	speedup := koseSec / coreSec
	t := &Table{
		Title: "Table 1: Kose RAM vs sequential Clique Enumerator (graph A)",
		Headers: []string{"graph size", "edge density", "clique range",
			"Kose RAM", "Clique Enumerator", "speedup", "maximal cliques"},
	}
	t.AddRow(fmt.Sprint(g.N()),
		fmt.Sprintf("%.4f%%", 100*g.Density()),
		fmt.Sprintf("[3, %d]", coreRes.MaxCliqueSize),
		fmt.Sprintf("%.2f s", koseSec),
		fmt.Sprintf("%.3f s", coreSec),
		fmt.Sprintf("%.0fx", speedup),
		fmt.Sprint(coreCount.Total))
	t.Notes = append(t.Notes,
		"paper: 17,261 s vs 45 s (383x) on a 1 GHz PowerPC G4; the ratio is the reproduced quantity")
	return &Table1Result{
		Table:       t,
		KoseSeconds: koseSec,
		CoreSeconds: coreSec,
		Speedup:     speedup,
		Cliques:     coreCount.Total,
	}, nil
}

// Fig9 reproduces Figure 9: the per-level memory profile (in the paper's
// own byte formula) of a full enumeration of graph C from size 3 to the
// maximum.  The reproduced shape: memory climbs to a peak near the middle
// clique sizes, then falls off quickly.
func Fig9(cfg Config) (*Table, error) {
	cfg = cfg.normalized()
	spec := cfg.specC()
	g := Build(spec, cfg.Seed)
	tr, err := simarch.Collect(g, 2, 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Figure 9: memory by clique size during full enumeration (graph C)",
		Headers: []string{"clique size k", "sub-lists N[k]", "cliques M[k]",
			"bytes (paper formula)", "MB"},
	}
	var peak int64
	peakK := 0
	for _, lt := range tr.Levels {
		t.AddRow(fmt.Sprint(lt.K), fmt.Sprint(lt.Sublists), fmt.Sprint(lt.Cliques),
			fmt.Sprint(lt.Bytes), fmt.Sprintf("%.2f", float64(lt.Bytes)/(1<<20)))
		if lt.Bytes > peak {
			peak, peakK = lt.Bytes, lt.K
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("peak %.2f MB at k=%d; paper: ~20 GB peak at k=13 on the unscaled graph",
			float64(peak)/(1<<20), peakK),
		"shape to verify: rise to a mid-range peak, then rapid decline")
	return t, nil
}

// BlowupResult carries the graph-B memory blow-up measurements.
type BlowupResult struct {
	Table         *Table
	AbortedAtK    int
	ResidentBytes int64
}

// Blowup reproduces the Section 3 anecdote: enumerating the dense
// 12,422-vertex graph B exhausts memory — the paper's run held 607 GB of
// new (k+1)-cliques plus 404 GB of k-cliques when it was terminated after
// 12 hours.  Here the run carries an explicit budget and reports where it
// aborts and how much was resident.
func Blowup(cfg Config) (*BlowupResult, error) {
	cfg = cfg.normalized()
	spec := cfg.specB()
	g := Build(spec, cfg.Seed)

	var levels []core.LevelStats
	_, err := core.Enumerate(g, core.Options{
		Ctx:          cfg.Ctx,
		MemoryBudget: cfg.Budget,
		OnLevel:      func(st core.LevelStats) { levels = append(levels, st) },
	})
	if err == nil {
		return nil, fmt.Errorf("expt: graph B enumeration fit in %d bytes; raise -scale or lower -budget", cfg.Budget)
	}
	if !errors.Is(err, core.ErrMemoryBudget) {
		return nil, err
	}

	t := &Table{
		Title: "Graph B blow-up: budget-bounded enumeration (paper: 607 GB + 404 GB, terminated after 12 h)",
		Headers: []string{"level k->k+1", "consumed bytes (k-cliques)",
			"produced bytes ((k+1)-cliques)", "resident total"},
	}
	last := levels[len(levels)-1]
	for _, st := range levels {
		t.AddRow(fmt.Sprintf("%d->%d", st.FromK, st.FromK+1),
			fmt.Sprint(st.Bytes), fmt.Sprint(st.NextBytes),
			fmt.Sprint(st.Bytes+st.NextBytes))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("aborted generating level %d with budget %d bytes", last.FromK+1, cfg.Budget),
		"paper shape: the dense graph's candidate sets outgrow any memory before mid-size levels")
	return &BlowupResult{
		Table:         t,
		AbortedAtK:    last.FromK + 1,
		ResidentBytes: last.Bytes + last.NextBytes,
	}, nil
}
