// Package expt is the experiment harness: it builds the synthetic
// stand-ins for the paper's three microarray graphs and regenerates every
// table and figure of the evaluation section (see DESIGN.md §4 for the
// per-experiment index).
package expt

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// GraphSpec describes one of the paper's input graphs.
type GraphSpec struct {
	Name     string
	N        int     // vertices (probe sets / genes)
	M        int     // edges after thresholding
	Omega    int     // maximum clique size the paper reports
	Density  float64 // as the paper quotes it (fraction, not percent)
	Comments string
}

// The paper's three graphs (Section 3):
//
//	A: mouse-brain U74Av2 data, 12,422 vertices, 6,151 edges (0.008%), ω = 17
//	B: same probe sets, lower threshold, 229,297 edges (0.3%), ω = 110
//	C: myogenic differentiation data, 2,895 vertices, 10,914 edges (0.2%), ω = 28
var (
	SpecA = GraphSpec{Name: "A (brain, sparse)", N: 12422, M: 6151, Omega: 17, Density: 0.00008}
	SpecB = GraphSpec{Name: "B (brain, dense)", N: 12422, M: 229297, Omega: 110, Density: 0.003}
	SpecC = GraphSpec{Name: "C (myogenic)", N: 2895, M: 10914, Omega: 28, Density: 0.002}
)

// Scale reduces a spec for hosts and time budgets below the paper's
// 256-processor, 2 TB platform: vertex and edge counts shrink linearly,
// the maximum clique size shrinks proportionally (it is the exponent of
// the workload, so this is the knob that matters), never below 8.
func (s GraphSpec) Scale(f float64) GraphSpec {
	if f >= 1 {
		return s
	}
	if f <= 0 {
		panic(fmt.Sprintf("expt: scale %v", f))
	}
	out := s
	out.Name = fmt.Sprintf("%s x%.2f", s.Name, f)
	out.N = max(16, int(float64(s.N)*f))
	out.Omega = max(8, int(float64(s.Omega)*f+0.5))
	out.M = max(out.Omega*(out.Omega-1)/2+8, int(float64(s.M)*f))
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Build synthesizes a graph matching the spec: a planted maximum clique
// of exactly Omega vertices, a ladder of smaller overlapping co-expression
// modules (the overlap structure that gives the paper's graphs their
// clique-rich neighborhoods), and random background edges to reach M
// exactly.  The construction mirrors what thresholded rank-correlation
// matrices of modular expression data look like; see DESIGN.md §2 for the
// substitution argument and package microarray for the full pipeline
// demonstrated end-to-end at small scale.
func Build(spec GraphSpec, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	modules := moduleLadder(spec)

	// Count edges the modules will surely contribute (ignoring overlap
	// double-counts, which PlantedGraph's AddEdge dedups): plant first,
	// count, then add background to hit M.
	g := graph.PlantedGraph(rng, spec.N, modules, 0)
	if g.M() > spec.M {
		panic(fmt.Sprintf("expt: %s modules need %d edges > target %d",
			spec.Name, g.M(), spec.M))
	}
	background := spec.M - g.M()
	for added := 0; added < background; {
		u := rng.Intn(spec.N)
		v := rng.Intn(spec.N)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.AddEdge(u, v)
		added++
	}
	return g
}

// moduleLadder returns the planted module structure for a spec: the
// maximum clique first, then progressively smaller modules overlapping
// their predecessor, to create the overlapping-clique neighborhoods that
// drive candidate growth in the mid-size levels (Figure 9's hump).
func moduleLadder(spec GraphSpec) []graph.PlantedCliqueSpec {
	ladder := []graph.PlantedCliqueSpec{{Size: spec.Omega}}
	size := spec.Omega * 3 / 4
	for size >= 6 && len(ladder) < 6 {
		ladder = append(ladder, graph.PlantedCliqueSpec{
			Size:    size,
			Overlap: size / 3,
		})
		size = size * 3 / 4
	}
	// A couple of disjoint mid-size modules for breadth.
	if spec.Omega >= 12 {
		ladder = append(ladder,
			graph.PlantedCliqueSpec{Size: spec.Omega / 2},
			graph.PlantedCliqueSpec{Size: spec.Omega / 3},
		)
	}
	return ladder
}
