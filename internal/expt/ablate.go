package expt

import (
	"fmt"
	"os"
	"time"

	"repro/internal/bk"
	"repro/internal/clique"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hybrid"
	"repro/internal/kose"
	"repro/internal/membudget"
	"repro/internal/ooc"
	"repro/internal/sched"
	"repro/internal/simarch"
)

// Ablations runs the design-choice comparisons DESIGN.md calls out and
// returns one table per ablation:
//
//  1. bitmap mode — store vs recompute vs WAH-compress (the paper's §2.3
//     trade-off plus its conclusions' compression direction);
//  2. storage tier — in-core vs the pre-Altix out-of-core design (the
//     paper's §1 motivation);
//  3. algorithm — Clique Enumerator vs Base/Improved BK vs Kose RAM;
//  4. scheduler — affinity+threshold (the paper's) vs re-chunk-everything
//     vs no balancing, on the simulated Altix;
//  5. graph representation — dense bitmap vs CSR vs WAH-compressed rows
//     (measured adjacency bytes and enumeration time);
//  6. memory governance — unconstrained in-core vs hybrid spillover at
//     shrinking budgets vs fully out-of-core (the adaptive answer to
//     the paper's in-core-dies / out-of-core-crawls dilemma).
func Ablations(cfg Config) ([]*Table, error) {
	cfg = cfg.normalized()
	var tables []*Table
	for _, fn := range []func(Config) (*Table, error){
		ablateCNMode, ablateStorage, ablateAlgorithms, ablateScheduler,
		RepresentationFootprint, ablateSpillover,
	} {
		t, err := fn(cfg)
		if err != nil {
			return tables, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func ablateCNMode(cfg Config) (*Table, error) {
	g := Build(cfg.specC(), cfg.Seed)
	t := &Table{
		Title:   "Ablation: common-neighbor bitmap mode (graph C)",
		Headers: []string{"mode", "time", "peak bytes (paper formula)", "AND words"},
	}
	for _, m := range []struct {
		name string
		opts core.Options
	}{
		{"store dense (paper)", core.Options{Ctx: cfg.Ctx}},
		{"recompute", core.Options{Ctx: cfg.Ctx, RecomputeCN: true}},
		{"WAH compress", core.Options{Ctx: cfg.Ctx, CompressCN: true}},
	} {
		start := time.Now()
		res, err := core.Enumerate(g, m.opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(m.name,
			time.Since(start).Round(time.Millisecond).String(),
			fmt.Sprint(res.PeakBytes),
			fmt.Sprint(res.TotalCost.ANDWords))
	}
	t.Notes = append(t.Notes,
		"expected: recompute/compress cut peak bytes; recompute pays extra ANDs")
	return t, nil
}

func ablateStorage(cfg Config) (*Table, error) {
	g := Build(cfg.specC(), cfg.Seed)
	t := &Table{
		Title:   "Ablation: in-core vs out-of-core (the paper's pre-Altix design)",
		Headers: []string{"tier", "time", "resident/peak bytes", "disk bytes moved"},
	}
	start := time.Now()
	inCore, err := core.Enumerate(g, core.Options{Ctx: cfg.Ctx})
	if err != nil {
		return nil, err
	}
	t.AddRow("in-core (paper)",
		time.Since(start).Round(time.Millisecond).String(),
		fmt.Sprint(inCore.PeakBytes), "0")

	// The out-of-core rows sweep the engine's two levers — parallel
	// shard joins and delta-varint level records — against the serial
	// uncompressed baseline: the workers attack the join time, the
	// encoding attacks the disk volume the paper calls the bottleneck.
	for _, m := range []struct {
		name string
		opts ooc.Options
	}{
		{"out-of-core serial", ooc.Options{}},
		{"out-of-core 4 workers", ooc.Options{Workers: 4}},
		{"out-of-core compressed", ooc.Options{Compress: true}},
		{"out-of-core 4w + compressed", ooc.Options{Workers: 4, Compress: true}},
	} {
		dir, err := os.MkdirTemp("", "repro-ablate-*")
		if err != nil {
			return nil, err
		}
		m.opts.Ctx = cfg.Ctx
		m.opts.Dir = dir
		start = time.Now()
		st, err := ooc.Enumerate(g, m.opts)
		if rmErr := os.RemoveAll(dir); rmErr != nil && err == nil {
			err = rmErr
		}
		if err != nil {
			return nil, err
		}
		t.AddRow(m.name,
			time.Since(start).Round(time.Millisecond).String(),
			fmt.Sprint(st.PeakLevelFile),
			fmt.Sprint(st.BytesRead+st.BytesWritten))
		if st.Maximal != inCore.MaximalCliques {
			return nil, fmt.Errorf("expt: storage tiers disagree (%s): %d vs %d",
				m.name, st.Maximal, inCore.MaximalCliques)
		}
	}
	t.Notes = append(t.Notes,
		"paper: the out-of-core variant could not finish genome-scale runs; disk I/O was the bottleneck;",
		"the compressed rows cut the bytes moved, the worker rows cut the join time")
	return t, nil
}

func ablateAlgorithms(cfg Config) (*Table, error) {
	g := Build(cfg.specA(), cfg.Seed)
	t := &Table{
		Title:   "Ablation: enumeration algorithm (graph A)",
		Headers: []string{"algorithm", "time", "maximal cliques (size >= 3)"},
	}
	time3 := func(name string, run func() int64) {
		start := time.Now()
		n := run()
		t.AddRow(name, time.Since(start).Round(time.Millisecond).String(), fmt.Sprint(n))
	}
	time3("Clique Enumerator", func() int64 {
		res, _ := core.Enumerate(g, core.Options{})
		return res.MaximalCliques
	})
	time3("Base BK", func() int64 {
		var n int64
		bk.Enumerate(g, bk.Base, clique.ReporterFunc(func(c clique.Clique) {
			if len(c) >= 3 {
				n++
			}
		}))
		return n
	})
	time3("Improved BK", func() int64 {
		var n int64
		bk.Enumerate(g, bk.Improved, clique.ReporterFunc(func(c clique.Clique) {
			if len(c) >= 3 {
				n++
			}
		}))
		return n
	})
	time3("Kose RAM", func() int64 {
		st := kose.Enumerate(g, kose.Options{})
		return st.Maximal
	})
	t.Notes = append(t.Notes,
		"BK variants do not emit in size order; Kose RAM stores every clique of every size")
	return t, nil
}

func ablateScheduler(cfg Config) (*Table, error) {
	spec := cfg.specC()
	ik := initKladder(spec)[0]
	g := Build(spec, cfg.Seed)
	tr, err := simarch.CollectMode(g, ik, 0, bigRunNeedsRecompute(spec, ik))
	if err != nil {
		return nil, err
	}
	machine := simarch.DefaultAltix().TunedFor(float64(tr.TotalUnits))
	machine.UnitsPerSecond = tr.UnitsPerSecond()

	t := &Table{
		Title:   fmt.Sprintf("Ablation: scheduler strategy at P=16, Init_K=%d (simulated Altix)", ik),
		Headers: []string{"strategy", "simulated time (s)", "transfers"},
	}
	for _, s := range []struct {
		name     string
		strategy simarch.Strategy
		policy   sched.Policy
	}{
		{"affinity + threshold (paper)", simarch.Affinity, sched.Policy{}},
		{"affinity, no transfers", simarch.Affinity, sched.Policy{RelTolerance: 1e9}},
		{"re-chunk every level", simarch.Contiguous, sched.Policy{}},
	} {
		res, err := simarch.Simulate(tr, simarch.SimOptions{
			Machine:    machine,
			Processors: 16,
			Strategy:   s.strategy,
			Policy:     s.policy,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(s.name, fmt.Sprintf("%.4f", res.Seconds), fmt.Sprint(res.Transfers))
	}
	t.Notes = append(t.Notes,
		"expected: no-transfer affinity suffers from skew; full re-chunking ignores NUMA locality;",
		"the paper's threshold policy transfers only what the imbalance justifies")
	return t, nil
}

// ablateSpillover sweeps the hybrid backend's memory budget on graph C:
// the unconstrained in-core run anchors one end and the fully
// out-of-core run the other, with hybrid rows at halving budgets in
// between.  The columns to watch are the governor peak (how much memory
// the run actually held) against the disk bytes it paid for the
// savings — the adaptive version of the paper's in-core/out-of-core
// dilemma, where the regime used to be an up-front either/or.
func ablateSpillover(cfg Config) (*Table, error) {
	g := Build(cfg.specC(), cfg.Seed)
	t := &Table{
		Title:   "Ablation: memory governance / adaptive spillover (graph C)",
		Headers: []string{"budget", "time", "spilled at", "governor peak", "disk bytes moved"},
	}
	inCore, err := core.Enumerate(g, core.Options{Ctx: cfg.Ctx})
	if err != nil {
		return nil, err
	}
	addRow := func(name string, budget int64, workers int) error {
		dir, err := os.MkdirTemp("", "repro-spillover-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		gov := membudget.New(budget)
		start := time.Now()
		res, err := hybrid.Enumerate(g, hybrid.Options{
			Ctx:     cfg.Ctx,
			Workers: workers,
			Dir:     dir,
			Gov:     gov,
		})
		if err != nil {
			return err
		}
		if res.MaximalCliques != inCore.MaximalCliques {
			return fmt.Errorf("expt: spillover at %s disagrees: %d vs %d cliques",
				name, res.MaximalCliques, inCore.MaximalCliques)
		}
		spilled := "never"
		if res.SpilledAtLevel > 0 {
			spilled = fmt.Sprintf("level %d", res.SpilledAtLevel)
		}
		t.AddRow(name,
			time.Since(start).Round(time.Millisecond).String(),
			spilled,
			fmt.Sprint(gov.Peak()),
			fmt.Sprint(res.OOC.BytesRead+res.OOC.BytesWritten))
		return nil
	}
	if err := addRow("unlimited (in-core)", 0, 1); err != nil {
		return nil, err
	}
	for _, frac := range []int64{2, 4, 8} {
		budget := inCore.PeakBytes / frac
		if err := addRow(fmt.Sprintf("peak/%d", frac), budget, 1); err != nil {
			return nil, err
		}
	}
	if err := addRow("peak/4, 4 workers", inCore.PeakBytes/4, 4); err != nil {
		return nil, err
	}
	if err := addRow("1 byte (out-of-core)", 1, 1); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"every row delivers the identical clique stream; the budget only moves the spill point,",
		"trading governor peak (resident bytes) against disk traffic — the paper had to choose a regime up front")
	return t, nil
}

// RepresentationFootprint compares the pluggable adjacency backends on
// graph C: the measured adjacency footprint of each representation (its
// Bytes() accounting) and the sequential enumeration time over it.  It
// is the data-layer counterpart of ablateCNMode — that table varies how
// candidate bitmaps are kept, this one varies how the graph itself is.
func RepresentationFootprint(cfg Config) (*Table, error) {
	cfg = cfg.normalized()
	dense := Build(cfg.specC(), cfg.Seed)
	t := &Table{
		Title:   "Ablation: graph representation (graph C)",
		Headers: []string{"representation", "adjacency bytes", "vs dense", "time", "maximal"},
	}
	for _, rep := range []graph.Representation{graph.Dense, graph.CSR, graph.Compressed} {
		g, err := graph.Convert(dense, rep)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := core.Enumerate(g, core.Options{Ctx: cfg.Ctx})
		if err != nil {
			return nil, err
		}
		t.AddRow(
			rep.String(),
			fmt.Sprintf("%d", g.Bytes()),
			fmt.Sprintf("%.1f%%", 100*float64(g.Bytes())/float64(dense.Bytes())),
			time.Since(start).Round(time.Microsecond).String(),
			fmt.Sprintf("%d", res.MaximalCliques),
		)
	}
	t.Notes = append(t.Notes,
		"adjacency bytes is the representation's own Bytes() accounting;",
		"dense = n*ceil(n/64)*8, CSR = 4(n+1+2m), WAH = sum of compressed rows.")
	return t, nil
}
