package expt

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple fixed-width text table, the output format of every
// experiment runner (one table per paper table/figure).
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row where each cell is already formatted by the
// caller; it exists for symmetry and clarity at call sites.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title))); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) error {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if err := printRow(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := printRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := printRow(row); err != nil {
			return err
		}
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Fprint(&sb) //nolint:cleanuperr strings.Builder writes cannot fail
	return sb.String()
}
