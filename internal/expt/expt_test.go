package expt

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/maxclique"
)

// testCfg is a small-scale configuration that keeps the experiment tests
// fast; the CLI runs the same code paths at (near-)paper scale.
var testCfg = Config{Scale: 0.55, Seed: 7, Reps: 2, Budget: 1 << 20}

func TestSpecScaling(t *testing.T) {
	c := SpecC.Scale(0.5)
	if c.N != 1447 || c.Omega != 14 {
		t.Errorf("scaled C: n=%d ω=%d", c.N, c.Omega)
	}
	if same := SpecC.Scale(1); same != SpecC {
		t.Errorf("Scale(1) changed the spec: %+v", same)
	}
	defer func() {
		if recover() == nil {
			t.Error("Scale(0) accepted")
		}
	}()
	SpecC.Scale(0)
}

func TestBuildMatchesSpec(t *testing.T) {
	for _, spec := range []GraphSpec{
		SpecA.Scale(0.4), SpecC.Scale(0.4), SpecC.Scale(0.7),
	} {
		g := Build(spec, 3)
		if g.N() != spec.N {
			t.Errorf("%s: n=%d want %d", spec.Name, g.N(), spec.N)
		}
		if g.M() != spec.M {
			t.Errorf("%s: m=%d want %d", spec.Name, g.M(), spec.M)
		}
		if got := maxclique.Size(g); got != spec.Omega {
			t.Errorf("%s: ω=%d want %d", spec.Name, got, spec.Omega)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Headers: []string{"a", "bb"},
		Notes:   []string{"n1"},
	}
	tab.AddRow("1", "2")
	tab.AddRowf(3, 4.5)
	out := tab.String()
	for _, want := range []string{"T\n=", "a  bb", "1  2", "3  4.5", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMaxCliqueBounds(t *testing.T) {
	cfg := testCfg
	cfg.Scale = 0.25 // keep graph B's branch-and-bound quick
	tab, err := MaxCliqueBounds(cfg)
	if err != nil {
		t.Fatalf("%v\n%s", err, tab)
	}
	if len(tab.Rows) != 3 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
}

func TestTable1(t *testing.T) {
	// Wall-clock comparisons at test scale are vulnerable to scheduler
	// noise on loaded hosts; retry a few times and require the expected
	// ordering (Clique Enumerator beats Kose RAM) to show at least once.
	best := 0.0
	for attempt := 0; attempt < 3; attempt++ {
		res, err := Table1(testCfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cliques == 0 {
			t.Fatal("no cliques found")
		}
		if len(res.Table.Rows) != 1 {
			t.Fatalf("table rows = %d", len(res.Table.Rows))
		}
		if res.Speedup > best {
			best = res.Speedup
		}
		if best > 1 {
			return
		}
	}
	t.Errorf("Kose RAM consistently faster than Clique Enumerator? best speedup=%.2f", best)
}

func TestFig5ShapeAndVariance(t *testing.T) {
	tab, err := Fig5(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 Init_K values x 9 processor counts.
	if len(tab.Rows) != 27 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Within each Init_K, T(2) < T(1) (scaling at low P).
	for r := 0; r+1 < len(tab.Rows); r += 9 {
		var t1, t2 float64
		if _, err := sscan(tab.Rows[r][2], &t1); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(tab.Rows[r+1][2], &t2); err != nil {
			t.Fatal(err)
		}
		if t2 >= t1 {
			t.Errorf("Init_K=%s: T(2)=%.3f >= T(1)=%.3f", tab.Rows[r][0], t2, t1)
		}
	}
}

func TestFig6RelativeSpeedups(t *testing.T) {
	fam, err := CollectFamily(testCfg, initKladder(testCfg.normalized().specC()))
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Fig6(testCfg, fam)
	if err != nil {
		t.Fatal(err)
	}
	// Relative speedup at P=2 must be near 2 for every Init_K (work
	// dominates at low processor counts).
	for _, row := range tab.Rows {
		if row[1] != "2" {
			continue
		}
		var rel float64
		if _, err := sscan(row[4], &rel); err != nil {
			t.Fatal(err)
		}
		if rel < 1.3 || rel > 2.05 {
			t.Errorf("Init_K=%s: relative speedup at P=2 = %.2f", row[0], rel)
		}
	}
}

func TestFig7MonotoneTrend(t *testing.T) {
	fam, err := CollectFamily(testCfg, append([]int{3}, initKladder(testCfg.normalized().specC())...))
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Fig7(testCfg, fam)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Sequential times must decrease down the Init_K ladder toward
	// Init_K=3 increasing... i.e. rows are ordered largest Init_K first,
	// so T(1) increases down the table.
	var prev float64
	for i, row := range tab.Rows {
		var t1 float64
		if _, err := sscan(row[1], &t1); err != nil {
			t.Fatal(err)
		}
		if i > 0 && t1 < prev {
			t.Errorf("row %d: T(1)=%.4f decreasing (prev %.4f)", i, t1, prev)
		}
		prev = t1
	}
}

func TestFig8LoadBalance(t *testing.T) {
	tab, err := Fig8(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Simulated rows: stddev within 25% of mean at this tiny scale (the
	// paper's 10% holds at paper scale where sub-lists are plentiful).
	for _, row := range tab.Rows {
		if row[1] != "simulated" {
			continue
		}
		var pct float64
		if _, err := sscanPct(row[4], &pct); err != nil {
			t.Fatal(err)
		}
		if pct > 25 {
			t.Errorf("P=%s: busy stddev %.1f%% of mean", row[0], pct)
		}
	}
}

func TestFig9MemoryHump(t *testing.T) {
	tab, err := Fig9(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The profile must rise to an interior peak and then decline: peak
	// strictly after the first level and before the last.
	var bytes []float64
	for _, row := range tab.Rows {
		var b float64
		if _, err := sscan(row[3], &b); err != nil {
			t.Fatal(err)
		}
		bytes = append(bytes, b)
	}
	peakAt := 0
	for i, b := range bytes {
		if b > bytes[peakAt] {
			peakAt = i
		}
	}
	if peakAt == 0 || peakAt == len(bytes)-1 {
		t.Errorf("memory peak at boundary level %d of %d", peakAt, len(bytes))
	}
}

func TestBlowupAborts(t *testing.T) {
	cfg := testCfg
	cfg.Budget = 64 << 10 // 64 KiB: certain to trip
	res, err := Blowup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AbortedAtK < 3 {
		t.Errorf("aborted at k=%d", res.AbortedAtK)
	}
	if res.ResidentBytes == 0 {
		t.Error("no resident bytes recorded")
	}
}

// sscan parses a leading float from a cell.
func sscan(cell string, out *float64) (int, error) {
	return fmtSscanf(cell, "%f", out)
}

func sscanPct(cell string, out *float64) (int, error) {
	return fmtSscanf(strings.TrimSuffix(cell, "%"), "%f", out)
}

func fmtSscanf(s, format string, out *float64) (int, error) {
	return fmt.Sscanf(s, format, out)
}

func TestAblations(t *testing.T) {
	tables, err := Ablations(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 6 {
		t.Fatalf("got %d ablation tables", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) < 2 {
			t.Errorf("%s: only %d rows", tab.Title, len(tab.Rows))
		}
	}
}
