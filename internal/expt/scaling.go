package expt

import (
	"fmt"
	"runtime"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/sched"
	"repro/internal/simarch"
)

// Processor sweeps used by the figures.
var (
	fig5Procs = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	fig6Procs = []int{1, 2, 4, 8, 16, 32, 64}
	fig8Procs = []int{2, 4, 8, 16}
)

// initKladder maps the paper's Init_K = 18, 19, 20 (on the ω = 28 graph C)
// to a scaled spec: ω-10, ω-9, ω-8, floored at 3.
func initKladder(spec GraphSpec) []int {
	iks := []int{spec.Omega - 10, spec.Omega - 9, spec.Omega - 8}
	for i := range iks {
		if iks[i] < 3 {
			iks[i] = 3
		}
	}
	return iks
}

// bigRunNeedsRecompute decides whether an Init_K trace should run the
// enumerator in its low-memory mode: at (near-)paper scale the Init_K=3
// candidate sets with stored bitmaps exceed workstation memory — which is
// the paper's own motivation for the 2 TB Altix.
func bigRunNeedsRecompute(spec GraphSpec, initK int) bool {
	return spec.Omega-initK >= 22
}

// fullWorkloadAnchor estimates the graph's full (Init_K = 3) workload
// from an Init_K = ω-10 trace, using the paper's own sequential-time
// ratio on graph C: 1,948 s (Init_K=3) / 343 s (Init_K=18).  Figure 5
// does not run Init_K = 3, but its machine is the same physical Altix
// that Figure 6/7's Init_K = 3 runs use, so its fixed overheads must be
// anchored to that full workload — otherwise the 256-processor
// degradation the paper reports cannot appear.
const fullWorkloadAnchor = 1948.0 / 343.0

// Family is a set of traces over the same scaled graph C with one entry
// per Init_K, simulated under one machine so cross-Init_K comparisons
// (Figures 6 and 7) are meaningful.
type Family struct {
	Spec    GraphSpec
	Machine simarch.Machine
	Entries []FamilyEntry
}

// FamilyEntry is one Init_K's trace.
type FamilyEntry struct {
	InitK     int
	Trace     *simarch.Trace
	Recompute bool
}

// CollectFamily builds one trace per Init_K over graph C and tunes the
// machine model to the family's largest workload, fixing the seconds
// calibration for the whole family.
func CollectFamily(cfg Config, iks []int) (*Family, error) {
	cfg = cfg.normalized()
	spec := cfg.specC()
	g := Build(spec, cfg.Seed)
	fam := &Family{Spec: spec}
	var maxUnits int64
	var rate float64
	for _, ik := range iks {
		recompute := bigRunNeedsRecompute(spec, ik)
		tr, err := simarch.CollectMode(g, ik, 0, recompute)
		if err != nil {
			return nil, fmt.Errorf("expt: trace Init_K=%d: %w", ik, err)
		}
		fam.Entries = append(fam.Entries, FamilyEntry{InitK: ik, Trace: tr, Recompute: recompute})
		if tr.TotalUnits > maxUnits {
			maxUnits = tr.TotalUnits
			rate = tr.UnitsPerSecond()
		}
	}
	fam.Machine = simarch.DefaultAltix().TunedFor(float64(maxUnits))
	fam.Machine.UnitsPerSecond = rate
	return fam, nil
}

func (f *Family) simulate(ik int, p int) (*simarch.Result, error) {
	for _, e := range f.Entries {
		if e.InitK == ik {
			return simarch.Simulate(e.Trace, simarch.SimOptions{
				Machine:    f.Machine,
				Processors: p,
				Strategy:   simarch.Affinity,
			})
		}
	}
	return nil, fmt.Errorf("expt: no trace for Init_K=%d", ik)
}

// Fig5 reproduces Figure 5: average run times (over cfg.Reps repetitions
// with independently generated graphs) to enumerate maximal cliques from
// Init_K ∈ {ω-10, ω-9, ω-8} on graph C, across 1..256 simulated
// processors.  Verifiable shape: scaling to 64 processors, weaker at 128,
// degradation at 256; each +1 on Init_K roughly halves run time; standard
// deviations within ~5%.
func Fig5(cfg Config) (*Table, error) {
	cfg = cfg.normalized()
	spec := cfg.specC()
	iks := initKladder(spec)

	// Accumulate seconds per (ik, P) over repetitions.  Traces are
	// collected one at a time to bound memory; the machine is tuned on
	// the first repetition of the smallest Init_K (largest workload).
	secs := make(map[int]map[int][]float64) // ik -> P -> samples
	var machine simarch.Machine
	tuned := false
	for rep := 0; rep < cfg.Reps; rep++ {
		g := Build(spec, cfg.Seed+int64(rep))
		for _, ik := range iks {
			tr, err := simarch.CollectMode(g, ik, 0, bigRunNeedsRecompute(spec, ik))
			if err != nil {
				return nil, err
			}
			if !tuned {
				// The first trace is the ladder's largest workload
				// (Init_K = ω-10); anchor the machine to the graph's
				// full workload it implies.
				machine = simarch.DefaultAltix().TunedFor(float64(tr.TotalUnits) * fullWorkloadAnchor)
				machine.UnitsPerSecond = tr.UnitsPerSecond()
				tuned = true
			}
			if secs[ik] == nil {
				secs[ik] = make(map[int][]float64)
			}
			for _, p := range fig5Procs {
				res, err := simarch.Simulate(tr, simarch.SimOptions{
					Machine:    machine,
					Processors: p,
					Strategy:   simarch.Affinity,
				})
				if err != nil {
					return nil, err
				}
				secs[ik][p] = append(secs[ik][p], res.Seconds)
			}
		}
	}

	t := &Table{
		Title: fmt.Sprintf("Figure 5: run times vs processors, graph C (n=%d), %d reps",
			spec.N, cfg.Reps),
		Headers: []string{"Init_K", "P", "mean (s)", "stddev (s)", "stddev %"},
	}
	for _, ik := range iks {
		for _, p := range fig5Procs {
			st := sched.Summarize(secs[ik][p])
			relPct := 0.0
			if st.Mean > 0 {
				relPct = 100 * st.StdDev / st.Mean
			}
			t.AddRow(fmt.Sprint(ik), fmt.Sprint(p),
				fmt.Sprintf("%.3f", st.Mean),
				fmt.Sprintf("%.3f", st.StdDev),
				fmt.Sprintf("%.1f%%", relPct))
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: scales well to 64 procs, still at 128, degrades at 256",
		"paper shape: Init_K+1 roughly halves the run time",
		"paper: standard deviations within 5% of run times (10 runs);",
		"here the simulator is deterministic, so variation across repetitions",
		"comes only from regenerating the synthetic graph")
	return t, nil
}

// Fig6 reproduces Figure 6: absolute speedup T(1)/T(p) and relative
// speedup T(p)/T(2p) for Init_K ∈ {3, ω-10, ω-9, ω-8} up to 64
// processors.  Verifiable shape: relative speedups hold near 1.8 across
// the doubling ladder; absolute speedups for Init_K=3 are the best.
func Fig6(cfg Config, fam *Family) (*Table, error) {
	cfg = cfg.normalized()
	if fam == nil {
		var err error
		fam, err = CollectFamily(cfg, append([]int{3}, initKladder(cfg.specC())...))
		if err != nil {
			return nil, err
		}
	}
	t := &Table{
		Title:   "Figure 6: absolute and relative speedups up to 64 processors (graph C)",
		Headers: []string{"Init_K", "P", "T(P) (s)", "absolute speedup", "relative T(P/2)/T(P)"},
	}
	for _, e := range fam.Entries {
		var t1, prev float64
		for _, p := range fig6Procs {
			res, err := fam.simulate(e.InitK, p)
			if err != nil {
				return nil, err
			}
			if p == 1 {
				t1 = res.Seconds
			}
			abs := t1 / res.Seconds
			rel := "-"
			if p > 1 {
				rel = fmt.Sprintf("%.2f", prev/res.Seconds)
			}
			t.AddRow(fmt.Sprint(e.InitK), fmt.Sprint(p),
				fmt.Sprintf("%.3f", res.Seconds),
				fmt.Sprintf("%.1f", abs), rel)
			prev = res.Seconds
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: relative speedups remain around 1.8 as processors double",
		"paper shape: absolute speedups for Init_K=3 exceed the other cases")
	return t, nil
}

// Fig7 reproduces Figure 7: the 256-processor absolute speedup grows with
// the sequential run time (paper: 22 at Init_K=20/98 s up to 51 at
// Init_K=3/1,948 s) — every problem size has its own optimal processor
// count.
func Fig7(cfg Config, fam *Family) (*Table, error) {
	cfg = cfg.normalized()
	if fam == nil {
		var err error
		fam, err = CollectFamily(cfg, append([]int{3}, initKladder(cfg.specC())...))
		if err != nil {
			return nil, err
		}
	}
	t := &Table{
		Title:   "Figure 7: 256-processor speedup vs sequential run time (graph C)",
		Headers: []string{"Init_K", "sequential T(1) (s)", "T(256) (s)", "absolute speedup"},
	}
	// Paper order: Init_K=20 (smallest work) first.
	order := make([]FamilyEntry, len(fam.Entries))
	copy(order, fam.Entries)
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if order[j].InitK > order[i].InitK {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	var lastSpeedup float64
	monotone := true
	for _, e := range order {
		r1, err := fam.simulate(e.InitK, 1)
		if err != nil {
			return nil, err
		}
		r256, err := fam.simulate(e.InitK, 256)
		if err != nil {
			return nil, err
		}
		speedup := r1.Seconds / r256.Seconds
		if speedup < lastSpeedup {
			monotone = false
		}
		lastSpeedup = speedup
		t.AddRow(fmt.Sprint(e.InitK),
			fmt.Sprintf("%.4f", r1.Seconds),
			fmt.Sprintf("%.4f", r256.Seconds),
			fmt.Sprintf("%.1f", speedup))
	}
	note := "paper shape: speedup at 256 processors increases with sequential time (22 -> 51)"
	if monotone {
		note += " [REPRODUCED: monotone]"
	} else {
		note += " [WARNING: not monotone in this run]"
	}
	t.Notes = append(t.Notes, note)
	return t, nil
}

// Fig8 reproduces Figure 8: the mean and standard deviation of per-
// processor execution times with the load balancer active, P ∈ {2,..,16},
// Init_K = ω-10.  The paper reports standard deviations within 10% of the
// mean.  A row measured on the real goroutine backend (P capped by the
// host) validates the simulated distribution.
func Fig8(cfg Config) (*Table, error) {
	cfg = cfg.normalized()
	spec := cfg.specC()
	ik := initKladder(spec)[0]
	g := Build(spec, cfg.Seed)
	tr, err := simarch.CollectMode(g, ik, 0, bigRunNeedsRecompute(spec, ik))
	if err != nil {
		return nil, err
	}
	machine := simarch.DefaultAltix().TunedFor(float64(tr.TotalUnits))
	machine.UnitsPerSecond = tr.UnitsPerSecond()

	t := &Table{
		Title:   fmt.Sprintf("Figure 8: per-processor load balance, Init_K=%d (graph C)", ik),
		Headers: []string{"P", "backend", "mean busy (s)", "stddev (s)", "stddev %"},
	}
	addRow := func(p int, backend string, busy []float64) {
		st := sched.Summarize(busy)
		rel := 0.0
		if st.Mean > 0 {
			rel = 100 * st.StdDev / st.Mean
		}
		t.AddRow(fmt.Sprint(p), backend,
			fmt.Sprintf("%.3f", st.Mean),
			fmt.Sprintf("%.4f", st.StdDev),
			fmt.Sprintf("%.1f%%", rel))
	}
	for _, p := range fig8Procs {
		res, err := simarch.Simulate(tr, simarch.SimOptions{
			Machine:    machine,
			Processors: p,
			Strategy:   simarch.Affinity,
		})
		if err != nil {
			return nil, err
		}
		addRow(p, "simulated", res.PerWorkerSeconds(machine.UnitsPerSecond))
	}

	// Real-backend validation at the host's parallelism.
	realP := runtime.GOMAXPROCS(0)
	if realP > 4 {
		realP = 4
	}
	if realP >= 2 {
		res, err := parallel.Enumerate(g, parallel.Options{
			Ctx:      cfg.Ctx,
			Workers:  realP,
			Lo:       ik,
			Strategy: parallel.Affinity,
		})
		if err != nil {
			return nil, err
		}
		addRow(realP, "goroutines", res.WorkerBusy)
	}
	t.Notes = append(t.Notes,
		"paper: standard deviations within 10% of average run times",
		"the goroutine row is measured on this host, not simulated")
	return t, nil
}

// buildForSeed exists for tests needing the same graph the experiments
// use.
func buildForSeed(cfg Config) *graph.Graph {
	cfg = cfg.normalized()
	return Build(cfg.specC(), cfg.Seed)
}
