package vc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/clique"
	"repro/internal/graph"
)

// isCover verifies every edge has an endpoint in the cover.
func isCover(g *graph.Graph, cover []int) bool {
	in := make(map[int]bool, len(cover))
	for _, v := range cover {
		in[v] = true
	}
	ok := true
	g.ForEachEdge(func(u, v int) bool {
		if !in[u] && !in[v] {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// bruteMinCover finds the true minimum cover size by subset enumeration.
func bruteMinCover(g *graph.Graph) int {
	n := g.N()
	best := n
	for mask := 0; mask < 1<<uint(n); mask++ {
		var cover []int
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				cover = append(cover, v)
			}
		}
		if len(cover) < best && isCover(g, cover) {
			best = len(cover)
		}
	}
	return best
}

func TestDecideTrivial(t *testing.T) {
	g := graph.New(4)
	if cover, ok := Decide(g, 0); !ok || len(cover) != 0 {
		t.Error("edgeless graph needs no cover")
	}
	g.AddEdge(0, 1)
	if _, ok := Decide(g, 0); ok {
		t.Error("k=0 covers an edge")
	}
	if cover, ok := Decide(g, 1); !ok || len(cover) != 1 || !isCover(g, cover) {
		t.Errorf("K2 cover: %v %v", cover, ok)
	}
	if _, ok := Decide(g, -1); ok {
		t.Error("negative k accepted")
	}
}

func TestStarGraphDegree1Rule(t *testing.T) {
	// A star forces its center via the degree-1 rule with no branching.
	g := graph.New(8)
	for leaf := 1; leaf < 8; leaf++ {
		g.AddEdge(0, leaf)
	}
	cover, ok, st := DecideStats(g, 1)
	if !ok || len(cover) != 1 || cover[0] != 0 {
		t.Fatalf("star cover = %v, %v", cover, ok)
	}
	if st.BranchNodes > 1 {
		t.Errorf("star needed %d branch nodes; kernelization should solve it", st.BranchNodes)
	}
}

func TestHighDegreeRule(t *testing.T) {
	// Center of degree 5 with k=2: high-degree rule must take it.
	g := graph.New(8)
	for leaf := 1; leaf < 6; leaf++ {
		g.AddEdge(0, leaf)
	}
	g.AddEdge(6, 7)
	cover, ok := Decide(g, 2)
	if !ok || !isCover(g, cover) || len(cover) > 2 {
		t.Fatalf("cover = %v %v", cover, ok)
	}
}

func TestBussRejection(t *testing.T) {
	// A triangle-rich graph with tiny k: must reject quickly.
	g := graph.New(12)
	for u := 0; u < 12; u++ {
		for v := u + 1; v < 12; v++ {
			g.AddEdge(u, v)
		}
	}
	if _, ok := Decide(g, 3); ok {
		t.Error("K12 covered with 3 vertices")
	}
}

func TestMinimumCoverAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 40; trial++ {
		g := graph.RandomGNP(rng, 3+rng.Intn(10), 0.5)
		want := bruteMinCover(g)
		cover := MinimumCover(g)
		if len(cover) != want {
			t.Fatalf("trial %d: |cover| = %d, want %d", trial, len(cover), want)
		}
		if !isCover(g, cover) {
			t.Fatalf("trial %d: %v is not a cover", trial, cover)
		}
	}
}

func TestDecideMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	g := graph.RandomGNP(rng, 12, 0.4)
	min := len(MinimumCover(g))
	for k := 0; k < min; k++ {
		if _, ok := Decide(g, k); ok {
			t.Errorf("k=%d accepted below minimum %d", k, min)
		}
	}
	for k := min; k <= g.N(); k++ {
		cover, ok := Decide(g, k)
		if !ok {
			t.Errorf("k=%d rejected above minimum %d", k, min)
		}
		if !isCover(g, cover) {
			t.Errorf("k=%d produced a non-cover", k)
		}
	}
}

func TestMatchingLowerBound(t *testing.T) {
	// A perfect matching of 4 edges: lower bound 4, true minimum 4.
	g := graph.New(8)
	for i := 0; i < 8; i += 2 {
		g.AddEdge(i, i+1)
	}
	if lb := matchingLowerBound(g); lb != 4 {
		t.Errorf("matching bound = %d", lb)
	}
	if cover := MinimumCover(g); len(cover) != 4 {
		t.Errorf("min cover = %v", cover)
	}
}

func TestMaxCliqueViaVC(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 25; trial++ {
		g := graph.RandomGNP(rng, 3+rng.Intn(9), 0.5)
		cliqueVerts := MaxCliqueViaVC(g)
		if !g.IsClique(cliqueVerts) {
			t.Fatalf("trial %d: %v not a clique", trial, cliqueVerts)
		}
		if want := clique.BruteForceMaxCliqueSize(g); len(cliqueVerts) != want {
			t.Fatalf("trial %d: ω = %d, want %d", trial, len(cliqueVerts), want)
		}
	}
}

// Property: the complement identity ω(G) = n − τ(Ḡ) on random graphs.
func TestQuickComplementIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomGNP(rng, 2+rng.Intn(9), 0.5)
		tau := len(MinimumCover(g.Complement()))
		omega := clique.BruteForceMaxCliqueSize(g)
		return omega == g.N()-tau
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	g := graph.RandomGNP(rng, 14, 0.5)
	_, ok, st := DecideStats(g, g.N())
	if !ok {
		t.Fatal("cover of size n rejected")
	}
	if st.BranchNodes == 0 {
		t.Error("no branch nodes recorded")
	}
}

func BenchmarkMinimumCoverGNP20(b *testing.B) {
	rng := rand.New(rand.NewSource(85))
	g := graph.RandomGNP(rng, 20, 0.3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MinimumCover(g)
	}
}
