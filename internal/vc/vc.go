// Package vc implements a fixed-parameter-tractable vertex cover solver,
// the route the paper takes to maximum clique: "clique is not FPT unless
// the W hierarchy collapses.  Thus we focus instead on clique's
// complementary dual, the vertex cover problem" (Section 4).  A maximum
// clique of G is the complement of a minimum vertex cover of the
// complement graph: ω(G) = n − τ(Ḡ).
//
// The solver is kernelization + bounded search-tree branching, the
// architecture of the Abu-Khzam/Langston implementations the paper cites:
//
//   - degree-0 vertices are discarded;
//   - degree-1 vertices force their neighbor into the cover;
//   - vertices of degree > k must be in any k-cover (the high-degree
//     rule), and after it applies, a kernel with more than k² edges is a
//     certified "no" (Buss's bound);
//   - branching picks a maximum-degree vertex v and recurses on the two
//     exhaustive cases: v in the cover (k-1) or all of N(v) in the cover
//     (k-|N(v)|).
//
// The branch factor is that of the classic O(1.47^k) algorithm; the
// asymptotically faster O(1.2759^k) refinements the paper cites
// (Chandran-Grandoni memorization) change the polynomial bookkeeping, not
// the interface, and are unnecessary at the parameter ranges of the
// paper's graphs.
package vc

import (
	"repro/internal/bitset"
	"repro/internal/graph"
)

// Stats reports search effort.
type Stats struct {
	BranchNodes int64 // search-tree nodes expanded
	KernelWins  int64 // subproblems closed by kernelization alone
}

// Decide reports whether g has a vertex cover of size at most k and, if
// so, returns one (not necessarily minimum).
func Decide(g graph.Interface, k int) ([]int, bool) {
	cover, ok, _ := DecideStats(g, k)
	return cover, ok
}

// DecideStats is Decide with search statistics.  Any representation is
// accepted; non-dense graphs are densified at entry (the kernelization
// maintains soft-deleted dense rows).
func DecideStats(gi graph.Interface, k int) ([]int, bool, Stats) {
	if k < 0 {
		return nil, false, Stats{}
	}
	g := graph.Densify(gi)
	s := &solver{g: g, n: g.N()}
	s.deg = make([]int, s.n)
	s.alive = bitset.New(s.n)
	s.alive.SetAll()
	m := 0
	for v := 0; v < s.n; v++ {
		s.deg[v] = g.Degree(v)
		m += s.deg[v]
	}
	s.m = m / 2
	cover, ok := s.search(k)
	if ok {
		sortInts(cover)
	}
	return cover, ok, s.stats
}

// MinimumCover returns a minimum vertex cover of g, found by growing k
// from a maximal-matching lower bound.  Non-dense inputs are densified
// once here, not once per k iteration.
func MinimumCover(gi graph.Interface) []int {
	g := graph.Densify(gi)
	lb := matchingLowerBound(g)
	for k := lb; ; k++ {
		if cover, ok := Decide(g, k); ok {
			return cover
		}
	}
}

// matchingLowerBound returns the size of a greedily built maximal
// matching: any vertex cover must take one endpoint per matched edge.
func matchingLowerBound(g graph.Interface) int {
	used := bitset.New(g.N())
	size := 0
	graph.ForEachEdge(g, func(u, v int) bool {
		if !used.Test(u) && !used.Test(v) {
			used.Set(u)
			used.Set(v)
			size++
		}
		return true
	})
	return size
}

// MaxCliqueViaVC computes a maximum clique of g by solving minimum vertex
// cover on the complement: the vertices outside the cover form a maximum
// independent set of Ḡ, which is a maximum clique of G.
func MaxCliqueViaVC(gi graph.Interface) []int {
	g := graph.Densify(gi)
	comp := g.Complement()
	cover := MinimumCover(comp)
	inCover := bitset.New(g.N())
	for _, v := range cover {
		inCover.Set(v)
	}
	var clique []int
	for v := 0; v < g.N(); v++ {
		if !inCover.Test(v) {
			clique = append(clique, v)
		}
	}
	return clique
}

// solver carries the mutable search state.  Vertices are soft-deleted via
// the alive set with incrementally maintained degrees, so branching and
// undoing are O(degree).
type solver struct {
	g     *graph.Graph
	n     int
	m     int // live edges
	alive *bitset.Bitset
	deg   []int
	cover []int
	stats Stats
}

// remove soft-deletes v and returns its live neighbors (for undo).
func (s *solver) remove(v int) []int {
	var ns []int
	s.g.Neighbors(v).ForEach(func(u int) bool {
		if s.alive.Test(u) {
			ns = append(ns, u)
			s.deg[u]--
			s.m--
		}
		return true
	})
	s.alive.Clear(v)
	s.deg[v] = 0
	return ns
}

// restore undoes remove(v) given its recorded live neighbors.
func (s *solver) restore(v int, ns []int) {
	s.alive.Set(v)
	for _, u := range ns {
		s.deg[u]++
		s.m++
	}
	s.deg[v] = len(ns)
}

// search decides whether the live subgraph has a cover of size <= k,
// appending chosen vertices to s.cover.
func (s *solver) search(k int) ([]int, bool) {
	s.stats.BranchNodes++
	mark := len(s.cover)
	type undo struct {
		v  int
		ns []int
	}
	var undos []undo
	take := func(v int) {
		undos = append(undos, undo{v, s.remove(v)})
		s.cover = append(s.cover, v)
		k--
	}
	unwind := func() {
		for i := len(undos) - 1; i >= 0; i-- {
			s.restore(undos[i].v, undos[i].ns)
		}
		s.cover = s.cover[:mark]
	}

	// Kernelize to a fixed point.
	for {
		if s.m == 0 {
			result := append([]int(nil), s.cover...)
			unwind()
			s.stats.KernelWins++
			return result, true
		}
		if k <= 0 {
			unwind()
			return nil, false
		}
		applied := false
		// High-degree rule, then degree-1 rule, scanning live vertices.
		for v := 0; v < s.n && !applied; v++ {
			if !s.alive.Test(v) || s.deg[v] == 0 {
				continue
			}
			if s.deg[v] > k {
				take(v)
				applied = true
			} else if s.deg[v] == 1 {
				// Take the single neighbor instead of v.
				u := -1
				s.g.Neighbors(v).ForEach(func(w int) bool {
					if s.alive.Test(w) {
						u = w
						return false
					}
					return true
				})
				take(u)
				applied = true
			}
		}
		if !applied {
			break
		}
	}
	// Buss: a (k, max-degree<=k) kernel has at most k^2 coverable edges.
	if s.m > k*k {
		unwind()
		return nil, false
	}

	// Branch on a maximum-degree vertex.
	best, bestDeg := -1, 0
	for v := 0; v < s.n; v++ {
		if s.alive.Test(v) && s.deg[v] > bestDeg {
			best, bestDeg = v, s.deg[v]
		}
	}
	if best < 0 { // no live edges; handled above, defensive
		result := append([]int(nil), s.cover...)
		unwind()
		return result, true
	}

	// Case 1: best joins the cover.
	ns := s.remove(best)
	s.cover = append(s.cover, best)
	if result, ok := s.search(k - 1); ok {
		s.cover = s.cover[:len(s.cover)-1]
		s.restore(best, ns)
		unwind()
		return result, true
	}
	s.cover = s.cover[:len(s.cover)-1]
	s.restore(best, ns)

	// Case 2: all of N(best) join the cover.
	if len(ns) <= k {
		var caseUndos []undo
		for _, u := range ns {
			caseUndos = append(caseUndos, undo{u, s.remove(u)})
			s.cover = append(s.cover, u)
		}
		if result, ok := s.search(k - len(ns)); ok {
			for i := len(caseUndos) - 1; i >= 0; i-- {
				s.restore(caseUndos[i].v, caseUndos[i].ns)
			}
			s.cover = s.cover[:len(s.cover)-len(ns)]
			unwind()
			return result, true
		}
		for i := len(caseUndos) - 1; i >= 0; i-- {
			s.restore(caseUndos[i].v, caseUndos[i].ns)
		}
		s.cover = s.cover[:len(s.cover)-len(ns)]
	}

	unwind()
	return nil, false
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
