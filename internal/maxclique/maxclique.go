// Package maxclique computes maximum cliques exactly with a Tomita-style
// branch-and-bound (greedy-coloring upper bounds over bitset candidate
// sets).  The paper's pipeline computes the maximum clique size first and
// uses it as the upper bound of the enumeration range; on sparse graphs
// it reduces to vertex cover on the complement (package vc), but the
// complement of the dense 12,422-vertex microarray graph is far too large
// for that route, so a dedicated branch-and-bound is the practical tool —
// both are provided and cross-validated.
package maxclique

import (
	"context"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// Stats reports search effort.
type Stats struct {
	Nodes  int64 // branch-and-bound nodes expanded
	Cutoff int64 // nodes pruned by the coloring bound
}

// ctxCheckMask throttles cancellation polls to one per 1024 nodes
// expanded: a branch-and-bound node is microseconds of row algebra, so
// the poll granularity bounds post-cancellation work to ~milliseconds
// while keeping the check off the hot path.
const ctxCheckMask = 1<<10 - 1

// Find returns a maximum clique of g in canonical vertex order.  Any
// representation is accepted; non-dense graphs are densified at entry —
// the coloring bounds are inherently word-parallel row algebra.
func Find(g graph.Interface) []int {
	c, _ := FindStats(g)
	return c
}

// FindStats is Find with search statistics.
func FindStats(gi graph.Interface) ([]int, Stats) {
	c, st, _ := FindStatsContext(context.Background(), gi)
	return c, st
}

// FindContext is Find with cancellation: the worst-case-exponential
// search polls ctx between node expansions and unwinds when it is
// done, returning ctx's error — the hook that lets a serving layer
// abandon a search when its client disconnects instead of burning CPU
// to completion.
func FindContext(ctx context.Context, g graph.Interface) ([]int, error) {
	c, _, err := FindStatsContext(ctx, g)
	return c, err
}

// FindStatsContext is FindContext with search statistics (which count
// the nodes actually expanded before the abort, if any).
func FindStatsContext(ctx context.Context, gi graph.Interface) ([]int, Stats, error) {
	g := graph.Densify(gi)
	n := g.N()
	s := &searcher{g: g, pool: bitset.NewPool(n), ctx: ctx}
	if err := ctx.Err(); err != nil {
		return nil, s.stats, err
	}
	// Greedy seed: a good initial bound prunes most of the tree.
	s.best = g.GreedyCliqueLowerBound()

	cand := bitset.New(n)
	cand.SetAll()
	s.expand(cand, nil)
	if s.stopped {
		return nil, s.stats, ctx.Err()
	}
	sortInts(s.best)
	return s.best, s.stats, nil
}

// Size returns ω(g).
func Size(g graph.Interface) int { return len(Find(g)) }

type searcher struct {
	g       *graph.Graph
	ctx     context.Context
	pool    *bitset.Pool
	best    []int
	stats   Stats
	stopped bool // ctx canceled mid-search; unwind without branching
}

// expand grows the current clique over the candidate set, bounding with a
// greedy coloring: candidates are colored so adjacent candidates get
// different colors; |clique| + #colors is an upper bound on any clique
// through this node, and candidates are tried in descending color to
// tighten the bound fastest (Tomita's MCQ ordering).
func (s *searcher) expand(cand *bitset.Bitset, current []int) {
	s.stats.Nodes++
	if s.stats.Nodes&ctxCheckMask == 0 && s.ctx.Err() != nil {
		s.stopped = true
	}
	if s.stopped {
		return
	}
	if cand.None() {
		if len(current) > len(s.best) {
			s.best = append([]int(nil), current...)
		}
		return
	}
	order, colors := s.color(cand)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if len(current)+colors[i] <= len(s.best) {
			s.stats.Cutoff++
			return // all remaining have even smaller bounds
		}
		next := s.pool.GetNoClear()
		next.And(cand, s.g.Neighbors(v))
		s.expand(next, append(current, v))
		s.pool.Put(next)
		if s.stopped {
			return
		}
		cand.Clear(v)
	}
}

// color greedily colors the candidate set, returning candidates in
// nondecreasing color order along with each one's color number (1-based).
func (s *searcher) color(cand *bitset.Bitset) (order []int, colors []int) {
	work := s.pool.GetNoClear()
	work.CopyFrom(cand)
	uncolored := s.pool.GetNoClear()
	color := 0
	for work.Any() {
		color++
		// One color class: a maximal independent set of the remainder.
		uncolored.CopyFrom(work)
		for {
			v, ok := uncolored.Min()
			if !ok {
				break
			}
			order = append(order, v)
			colors = append(colors, color)
			work.Clear(v)
			uncolored.Clear(v)
			uncolored.AndNot(uncolored, s.g.Neighbors(v))
		}
	}
	s.pool.Put(work)
	s.pool.Put(uncolored)
	return order, colors
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
