package maxclique

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/vc"
)

func TestTrivialGraphs(t *testing.T) {
	if c := Find(graph.New(0)); len(c) != 0 {
		t.Errorf("empty graph: %v", c)
	}
	if c := Find(graph.New(3)); len(c) != 1 {
		t.Errorf("edgeless: %v (one vertex is a 1-clique)", c)
	}
	g := graph.New(2)
	g.AddEdge(0, 1)
	if c := Find(g); len(c) != 2 {
		t.Errorf("K2: %v", c)
	}
}

func TestCompleteGraph(t *testing.T) {
	g := graph.New(10)
	verts := make([]int, 10)
	for i := range verts {
		verts[i] = i
	}
	graph.PlantClique(g, verts)
	c := Find(g)
	if len(c) != 10 {
		t.Errorf("K10: %v", c)
	}
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 50; trial++ {
		g := graph.RandomGNP(rng, 3+rng.Intn(14), []float64{0.3, 0.5, 0.8}[trial%3])
		c := Find(g)
		if !g.IsClique(c) {
			t.Fatalf("trial %d: %v not a clique", trial, c)
		}
		if want := clique.BruteForceMaxCliqueSize(g); len(c) != want {
			t.Fatalf("trial %d: ω = %d, want %d", trial, len(c), want)
		}
	}
}

func TestAgreesWithVCRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomGNP(rng, 3+rng.Intn(12), 0.5)
		bb := Find(g)
		viaVC := vc.MaxCliqueViaVC(g)
		if len(bb) != len(viaVC) {
			t.Fatalf("trial %d: BB ω=%d, VC ω=%d", trial, len(bb), len(viaVC))
		}
	}
}

func TestPlantedCliqueRecovered(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	g := graph.PlantedGraph(rng, 400, []graph.PlantedCliqueSpec{{Size: 20}}, 800)
	c, st := FindStats(g)
	if len(c) != 20 {
		t.Fatalf("planted ω=20, found %d", len(c))
	}
	if !g.IsClique(c) {
		t.Fatal("result not a clique")
	}
	if st.Nodes == 0 {
		t.Error("no nodes recorded")
	}
}

// TestFindContext covers the cancellable entry point: a live context
// returns exactly what Find returns, a pre-canceled one is refused at
// entry, and a cancellation mid-search unwinds the branch-and-bound
// promptly instead of running the worst-case-exponential tree to
// completion (the /maxclique disconnect path).
func TestFindContext(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	small := graph.RandomGNP(rng, 20, 0.5)
	got, err := FindContext(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	if want := Find(small); len(got) != len(want) {
		t.Fatalf("FindContext ω=%d, Find ω=%d", len(got), len(want))
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FindContext(ctx, small); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled search: err = %v, want context.Canceled", err)
	}

	// A dense instance far too hard to finish in the allotted window:
	// only the in-search cancellation poll can bring the call back.
	hard := graph.RandomGNP(rng, 250, 0.85)
	hctx, hcancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := FindContext(hctx, hard)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	hcancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled search: err = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("search ignored cancellation")
	}
}

func TestMoonMoser(t *testing.T) {
	// K_{3,3,3}: ω = 3 despite 27 maximal cliques.
	g := graph.New(9)
	for u := 0; u < 9; u++ {
		for v := u + 1; v < 9; v++ {
			if u/3 != v/3 {
				g.AddEdge(u, v)
			}
		}
	}
	if got := Size(g); got != 3 {
		t.Errorf("Moon-Moser ω = %d, want 3", got)
	}
}

func TestResultCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	g := graph.RandomGNP(rng, 15, 0.6)
	c := Find(g)
	for i := 1; i < len(c); i++ {
		if c[i] <= c[i-1] {
			t.Fatalf("result not canonical: %v", c)
		}
	}
}

// Property: ω is monotone under edge addition.
func TestQuickMonotoneUnderEdgeAddition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomGNP(rng, 4+rng.Intn(10), 0.3)
		before := Size(g)
		// Add a random non-edge if one exists.
		for tries := 0; tries < 50; tries++ {
			u, v := rng.Intn(g.N()), rng.Intn(g.N())
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
				break
			}
		}
		return Size(g) >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFindPlanted20(b *testing.B) {
	rng := rand.New(rand.NewSource(95))
	g := graph.PlantedGraph(rng, 400, []graph.PlantedCliqueSpec{{Size: 20}}, 800)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Find(g)
	}
}
