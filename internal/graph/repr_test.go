package graph

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitset"
)

// allReps are the concrete representations every parity test sweeps.
var allReps = []Representation{Dense, CSR, Compressed}

// buildRep streams the edges of a dense reference graph into a builder
// pinned to rep.
func buildRep(t *testing.T, ref *Graph, rep Representation) Interface {
	t.Helper()
	b := NewBuilder(ref.N()).WithRepresentation(rep)
	ForEachEdge(ref, func(u, v int) bool {
		if err := b.AddEdge(u, v); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
		}
		return true
	})
	g, err := b.Freeze()
	if err != nil {
		t.Fatalf("Freeze(%v): %v", rep, err)
	}
	return g
}

// TestRepresentationParity checks that every backend answers the whole
// Interface contract — and every bitset.Reader operation — identically
// to the dense reference, on randomized graphs.
func TestRepresentationParity(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 40 + rng.Intn(60)
		maxM := n * (n - 1) / 2
		ref := RandomGNM(rng, n, rng.Intn(maxM/2+1))
		ref.SetName(0, "gene0")
		ref.SetName(n-1, "geneN")

		for _, rep := range allReps {
			b := NewBuilder(n).WithRepresentation(rep)
			ForEachEdge(ref, func(u, v int) bool {
				if err := b.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
				// Duplicate insertions must collapse identically.
				if rng.Intn(4) == 0 {
					if err := b.AddEdge(v, u); err != nil {
						t.Fatal(err)
					}
				}
				return true
			})
			b.SetName(0, "gene0")
			b.SetName(n-1, "geneN")
			g, err := b.Freeze()
			if err != nil {
				t.Fatalf("seed %d rep %v: %v", seed, rep, err)
			}
			if g.Representation() != rep {
				t.Fatalf("seed %d: got representation %v, want %v", seed, g.Representation(), rep)
			}
			checkParity(t, ref, g)
		}
	}
}

func checkParity(t *testing.T, ref *Graph, g Interface) {
	t.Helper()
	n := ref.N()
	if g.N() != n || g.M() != ref.M() {
		t.Fatalf("%v: n,m = %d,%d want %d,%d", g.Representation(), g.N(), g.M(), n, ref.M())
	}
	if g.Name(0) != ref.Name(0) || g.Name(n-1) != ref.Name(n-1) || g.Name(1) != ref.Name(1) {
		t.Fatalf("%v: names differ", g.Representation())
	}
	probe := bitset.New(n)
	for v := 0; v < n; v += 7 {
		probe.Set(v)
	}
	probe2 := bitset.New(n)
	for v := 0; v < n; v += 3 {
		probe2.Set(v)
	}
	scratchA := bitset.New(n)
	scratchB := bitset.New(n)
	want := bitset.New(n)
	for v := 0; v < n; v++ {
		if g.Degree(v) != ref.Degree(v) {
			t.Fatalf("%v: degree(%d) = %d want %d", g.Representation(), v, g.Degree(v), ref.Degree(v))
		}
		refRow := ref.Neighbors(v)
		row := g.Row(v)
		if row.Len() != n || row.Count() != refRow.Count() {
			t.Fatalf("%v: row(%d) len/count mismatch", g.Representation(), v)
		}
		for u := 0; u < n; u++ {
			if g.HasEdge(v, u) != ref.HasEdge(v, u) {
				t.Fatalf("%v: HasEdge(%d,%d) mismatch", g.Representation(), v, u)
			}
			if row.Test(u) != refRow.Test(u) {
				t.Fatalf("%v: Row(%d).Test(%d) mismatch", g.Representation(), v, u)
			}
		}
		// ForEach order and content.
		var got []int
		row.ForEach(func(i int) bool { got = append(got, i); return true })
		var exp []int
		refRow.ForEach(func(i int) bool { exp = append(exp, i); return true })
		if len(got) != len(exp) {
			t.Fatalf("%v: ForEach(%d) count mismatch", g.Representation(), v)
		}
		for i := range got {
			if got[i] != exp[i] {
				t.Fatalf("%v: ForEach(%d) order mismatch", g.Representation(), v)
			}
		}
		// Materialize.
		g.Materialize(v, scratchA)
		if !scratchA.Equal(refRow) {
			t.Fatalf("%v: Materialize(%d) mismatch", g.Representation(), v)
		}
		// Reader algebra against a fixed dense probe set.
		if row.IntersectsWith(probe) != refRow.IntersectsWith(probe) {
			t.Fatalf("%v: IntersectsWith(%d) mismatch", g.Representation(), v)
		}
		if row.AndCount(probe) != refRow.AndCount(probe) {
			t.Fatalf("%v: AndCount(%d) mismatch", g.Representation(), v)
		}
		// Fused three-way probe vs the unfused dense composition
		// (materialize probe ∩ probe2, then intersect with the row).
		want.And(probe, probe2)
		if got := row.AndAnyWith(probe, probe2); got != refRow.IntersectsWith(want) {
			t.Fatalf("%v: AndAnyWith(%d) = %v, dense composition %v",
				g.Representation(), v, got, refRow.IntersectsWith(want))
		}
		row.AndInto(scratchA, probe)
		want.And(refRow, probe)
		if !scratchA.Equal(want) {
			t.Fatalf("%v: AndInto(%d) mismatch", g.Representation(), v)
		}
		scratchB.CopyFrom(probe)
		row.IntersectInto(scratchB)
		if !scratchB.Equal(want) {
			t.Fatalf("%v: IntersectInto(%d) mismatch", g.Representation(), v)
		}
	}
	// Canonical edge streams.
	refEdges := ref.Edges()
	gotEdges := Edges(g)
	if len(refEdges) != len(gotEdges) {
		t.Fatalf("%v: edge count mismatch", g.Representation())
	}
	for i := range refEdges {
		if refEdges[i] != gotEdges[i] {
			t.Fatalf("%v: edge %d mismatch", g.Representation(), i)
		}
	}
}

// TestGenericHelpersParity checks the Interface-level helpers against
// the dense methods.
func TestGenericHelpersParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := RandomGNM(rng, 70, 500)
	for _, rep := range allReps {
		g := buildRep(t, ref, rep)
		if MaxDegree(g) != ref.MaxDegree() {
			t.Errorf("%v: MaxDegree mismatch", rep)
		}
		if Density(g) != ref.Density() {
			t.Errorf("%v: Density mismatch", rep)
		}
		alive := KCorePeel(g, 3)
		if !alive.Equal(ref.KCorePeel(3)) {
			t.Errorf("%v: KCorePeel mismatch", rep)
		}
		cn := bitset.New(ref.N())
		cnRef := bitset.New(ref.N())
		cliqueVerts := []int{1, 2, 5}
		CommonNeighbors(g, cn, cliqueVerts)
		ref.CommonNeighbors(cnRef, cliqueVerts)
		if !cn.Equal(cnRef) {
			t.Errorf("%v: CommonNeighbors mismatch", rep)
		}
		// Induced subgraph preserves representation and content.
		sub, newToOld := InducedSubgraph(g, alive)
		refSub, refMap := ref.InducedSubgraph(alive)
		if sub.Representation() != rep {
			t.Errorf("%v: induced subgraph came back %v", rep, sub.Representation())
		}
		if len(newToOld) != len(refMap) {
			t.Fatalf("%v: induced map size mismatch", rep)
		}
		if sub.M() != refSub.M() {
			t.Errorf("%v: induced subgraph m=%d want %d", rep, sub.M(), refSub.M())
		}
		for v := 0; v < sub.N(); v++ {
			for u := 0; u < sub.N(); u++ {
				if sub.HasEdge(v, u) != refSub.HasEdge(v, u) {
					t.Fatalf("%v: induced HasEdge mismatch", rep)
				}
			}
		}
	}
}

// TestConvertRoundTrip checks Convert between every ordered pair of
// representations, including the identity (which must not copy).
func TestConvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ref := RandomGNM(rng, 50, 300)
	ref.SetName(3, "probe3")
	for _, from := range allReps {
		src := buildRep(t, ref, from)
		if nm := nameSliceOf(src); nm != nil {
			t.Fatalf("buildRep should not have names; test bug")
		}
		for _, to := range allReps {
			dst, err := Convert(src, to)
			if err != nil {
				t.Fatal(err)
			}
			if dst.Representation() != to {
				t.Fatalf("Convert(%v -> %v): got %v", from, to, dst.Representation())
			}
			if from == to && dst != src {
				t.Fatalf("Convert(%v -> %v): expected identity", from, to)
			}
			checkSameEdges(t, ref, dst)
		}
	}
	// Names survive conversion.
	named, err := Convert(ref, CSR)
	if err != nil {
		t.Fatal(err)
	}
	if named.Name(3) != "probe3" {
		t.Errorf("Convert dropped names: Name(3) = %q", named.Name(3))
	}
	back, err := Convert(named, Compressed)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name(3) != "probe3" {
		t.Errorf("second Convert dropped names: Name(3) = %q", back.Name(3))
	}
	if _, err := Convert(ref, Representation(99)); err == nil {
		t.Error("Convert accepted an unknown representation")
	}
}

func checkSameEdges(t *testing.T, ref *Graph, g Interface) {
	t.Helper()
	if g.N() != ref.N() || g.M() != ref.M() {
		t.Fatalf("%v: size mismatch", g.Representation())
	}
	ok := true
	ForEachEdge(g, func(u, v int) bool {
		if !ref.HasEdge(u, v) {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		t.Fatalf("%v: produced a non-edge", g.Representation())
	}
}

// TestAutoSelection pins the density rule: small graphs stay dense,
// large sparse graphs go CSR, large dense graphs stay dense.
func TestAutoSelection(t *testing.T) {
	if got := chooseAuto(1000, 100000); got != Dense {
		t.Errorf("small graph: chose %v, want Dense", got)
	}
	if got := chooseAuto(50000, 50000*8); got != CSR {
		t.Errorf("large sparse: chose %v, want CSR", got)
	}
	if got := chooseAuto(50000, 50000*20000/2); got != Dense {
		t.Errorf("large dense: chose %v, want Dense", got)
	}
	// The byte formulas the rule compares.
	if DenseAdjacencyBytes(128) != 128*2*8 {
		t.Errorf("DenseAdjacencyBytes(128) = %d", DenseAdjacencyBytes(128))
	}
	if CSRAdjacencyBytes(10, 20) != 4*(10+1+40) {
		t.Errorf("CSRAdjacencyBytes(10,20) = %d", CSRAdjacencyBytes(10, 20))
	}
}

// TestBytesAccounting checks the measured footprints against the closed
// forms.
func TestBytesAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ref := RandomGNM(rng, 300, 2000)
	if ref.Bytes() != DenseAdjacencyBytes(300) {
		t.Errorf("dense Bytes() = %d, want %d", ref.Bytes(), DenseAdjacencyBytes(300))
	}
	csr := buildRep(t, ref, CSR)
	if csr.Bytes() != CSRAdjacencyBytes(300, 2000) {
		t.Errorf("csr Bytes() = %d, want %d", csr.Bytes(), CSRAdjacencyBytes(300, 2000))
	}
	wahG := buildRep(t, ref, Compressed)
	if wahG.Bytes() <= 0 {
		t.Errorf("wah Bytes() = %d", wahG.Bytes())
	}
}

// TestDenseRangePanics pins the satellite bugfix: out-of-range vertices
// panic with a clear message, not a bare index-out-of-range.
func TestDenseRangePanics(t *testing.T) {
	g := New(5)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"AddEdge-high", func() { g.AddEdge(1, 5) }},
		{"AddEdge-neg", func() { g.AddEdge(-1, 2) }},
		{"HasEdge-high", func() { g.HasEdge(7, 0) }},
		{"RemoveEdge-high", func() { g.RemoveEdge(0, 9) }},
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s: no panic", tc.name)
					return
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "out of range [0,5)") || !strings.Contains(msg, "graph: vertex") {
					t.Errorf("%s: unhelpful panic %v", tc.name, r)
				}
			}()
			tc.fn()
		}()
	}
	// HasEdge on non-dense representations must report the same message.
	for _, rep := range []Representation{CSR, Compressed} {
		g, err := NewBuilder(5).WithRepresentation(rep).Freeze()
		if err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				r := recover()
				msg, ok := r.(string)
				if r == nil || !ok || !strings.Contains(msg, "out of range [0,5)") {
					t.Errorf("%v HasEdge: unhelpful panic %v", rep, r)
				}
			}()
			g.HasEdge(0, 6)
		}()
	}
}
