package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
)

func TestNewAndEdges(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("New(5): N=%d M=%d", g.N(), g.M())
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate, other direction
	g.AddEdge(3, 4)
	if g.M() != 2 {
		t.Errorf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge (0,1) missing")
	}
	if g.HasEdge(0, 0) {
		t.Error("self edge reported")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge (0,2)")
	}
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) || g.M() != 1 {
		t.Error("RemoveEdge failed")
	}
	g.RemoveEdge(0, 1) // no-op
	if g.M() != 1 {
		t.Error("double remove changed m")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge self-loop did not panic")
		}
	}()
	New(3).AddEdge(1, 1)
}

func TestDegreeAndDensity(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	if g.Degree(0) != 3 || g.Degree(1) != 1 {
		t.Errorf("degrees: %d %d", g.Degree(0), g.Degree(1))
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d", g.MaxDegree())
	}
	if got, want := g.Density(), 0.5; got != want {
		t.Errorf("Density = %g, want %g", got, want)
	}
	if New(1).Density() != 0 {
		t.Error("Density of K1 != 0")
	}
}

func TestEdgesCanonical(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 1)
	g.AddEdge(2, 0)
	g.AddEdge(1, 0)
	edges := g.Edges()
	want := []Edge{{0, 1}, {0, 2}, {1, 3}}
	if len(edges) != len(want) {
		t.Fatalf("Edges = %v", edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", edges, want)
		}
	}
	var visited []Edge
	g.ForEachEdge(func(u, v int) bool {
		visited = append(visited, Edge{u, v})
		return len(visited) < 2
	})
	if len(visited) != 2 {
		t.Errorf("ForEachEdge early stop visited %d", len(visited))
	}
}

func TestNames(t *testing.T) {
	g := New(2)
	if g.Name(0) != "v0" {
		t.Errorf("default name = %q", g.Name(0))
	}
	g.SetName(0, "Lin7c")
	if g.Name(0) != "Lin7c" {
		t.Errorf("Name = %q", g.Name(0))
	}
	c := g.Clone()
	if c.Name(0) != "Lin7c" {
		t.Error("Clone dropped names")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Error("Clone shares adjacency storage")
	}
	if g.M() != 1 || c.M() != 2 {
		t.Errorf("M: g=%d c=%d", g.M(), c.M())
	}
}

func TestComplement(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	c := g.Complement()
	if c.M() != 4 {
		t.Errorf("complement M = %d, want 4", c.M())
	}
	if c.HasEdge(0, 1) || c.HasEdge(2, 3) {
		t.Error("complement kept original edges")
	}
	if !c.HasEdge(0, 2) || !c.HasEdge(1, 3) {
		t.Error("complement missing edges")
	}
	for v := 0; v < 4; v++ {
		if c.HasEdge(v, v) {
			t.Error("complement has self-loop")
		}
	}
}

// Property: complement of complement is the original graph.
func TestQuickComplementInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGNP(rng, 1+rng.Intn(30), 0.3)
		cc := g.Complement().Complement()
		if cc.M() != g.M() {
			return false
		}
		equal := true
		g.ForEachEdge(func(u, v int) bool {
			if !cc.HasEdge(u, v) {
				equal = false
				return false
			}
			return true
		})
		return equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 4)
	g.AddEdge(4, 5)
	g.SetName(4, "geneX")
	keep := bitset.FromIndices(6, 1, 2, 4)
	sub, newToOld := g.InducedSubgraph(keep)
	if sub.N() != 3 {
		t.Fatalf("sub.N = %d", sub.N())
	}
	if sub.M() != 2 {
		t.Errorf("sub.M = %d, want 2", sub.M())
	}
	// newToOld must be ascending originals: [1 2 4]
	want := []int{1, 2, 4}
	for i := range want {
		if newToOld[i] != want[i] {
			t.Fatalf("newToOld = %v", newToOld)
		}
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Error("induced adjacency wrong")
	}
	if sub.Name(2) != "geneX" {
		t.Errorf("induced name = %q", sub.Name(2))
	}
}

func TestCommonNeighborsFigure2(t *testing.T) {
	// The 4-vertex example of Figure 2: a,b,c,d all mutually adjacent.
	g := New(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			g.AddEdge(u, v)
		}
	}
	cn := bitset.New(4)
	g.CommonNeighbors(cn, []int{0, 1}) // clique (a,b)
	if want := bitset.FromIndices(4, 2, 3); !cn.Equal(want) {
		t.Errorf("CN(a,b) = %v", cn)
	}
	g.CommonNeighbors(cn, []int{0, 1, 2}) // clique (a,b,c)
	if want := bitset.FromIndices(4, 3); !cn.Equal(want) {
		t.Errorf("CN(a,b,c) = %v", cn)
	}
	g.CommonNeighbors(cn, []int{0, 1, 2, 3})
	if cn.Any() {
		t.Errorf("CN(a,b,c,d) = %v, want empty", cn)
	}
	if !g.IsMaximalClique([]int{0, 1, 2, 3}) {
		t.Error("K4 not maximal")
	}
	if g.IsMaximalClique([]int{0, 1, 2}) {
		t.Error("(a,b,c) reported maximal inside K4")
	}
	g.CommonNeighbors(cn, nil)
	if cn.Count() != 4 {
		t.Errorf("CN(∅) = %v, want all", cn)
	}
}

func TestIsClique(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if g.IsClique([]int{0, 1, 2}) {
		t.Error("path reported as clique")
	}
	if !g.IsClique([]int{0, 1}) || !g.IsClique([]int{3}) || !g.IsClique(nil) {
		t.Error("trivial cliques rejected")
	}
}

func TestKCorePeel(t *testing.T) {
	// Triangle 0-1-2 with a pendant 3 hanging off 2 and an isolated 4.
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	alive := g.KCorePeel(2)
	if want := bitset.FromIndices(5, 0, 1, 2); !alive.Equal(want) {
		t.Errorf("2-core = %v, want %v", alive, want)
	}
	// Peeling must cascade: in a path, requiring degree 2 kills everything.
	p := New(4)
	p.AddEdge(0, 1)
	p.AddEdge(1, 2)
	p.AddEdge(2, 3)
	if p.KCorePeel(2).Any() {
		t.Error("2-core of a path is non-empty")
	}
	if got := p.KCorePeel(0).Count(); got != 4 {
		t.Errorf("0-core size = %d", got)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if comps[0].Count() != 3 || comps[1].Count() != 2 || comps[2].Count() != 1 {
		t.Errorf("component sizes: %d %d %d",
			comps[0].Count(), comps[1].Count(), comps[2].Count())
	}
	if !comps[2].Test(5) {
		t.Error("isolated vertex not its own component")
	}
}

func TestDegeneracyOrder(t *testing.T) {
	// K4 has degeneracy 3; a tree has degeneracy 1.
	k4 := New(4)
	PlantClique(k4, []int{0, 1, 2, 3})
	if order, d := k4.DegeneracyOrder(); d != 3 || len(order) != 4 {
		t.Errorf("K4 degeneracy = %d, |order| = %d", d, len(order))
	}
	tree := New(5)
	tree.AddEdge(0, 1)
	tree.AddEdge(0, 2)
	tree.AddEdge(2, 3)
	tree.AddEdge(2, 4)
	if _, d := tree.DegeneracyOrder(); d != 1 {
		t.Errorf("tree degeneracy = %d, want 1", d)
	}
}

func TestGreedyCliqueLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := PlantedGraph(rng, 200, []PlantedCliqueSpec{{Size: 12}}, 100)
	clique := g.GreedyCliqueLowerBound()
	if !g.IsClique(clique) {
		t.Fatalf("greedy result not a clique: %v", clique)
	}
	if len(clique) < 10 {
		t.Errorf("greedy clique size %d; planted 12 should be nearly found", len(clique))
	}
}

func TestRandomGNM(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomGNM(rng, 50, 100)
	if g.N() != 50 || g.M() != 100 {
		t.Errorf("G(n,m): N=%d M=%d", g.N(), g.M())
	}
	defer func() {
		if recover() == nil {
			t.Error("G(n,m) with impossible m did not panic")
		}
	}()
	RandomGNM(rng, 3, 10)
}

func TestRandomGNPExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if g := RandomGNP(rng, 20, 0); g.M() != 0 {
		t.Error("G(n,0) has edges")
	}
	if g := RandomGNP(rng, 20, 1); g.M() != 190 {
		t.Errorf("G(20,1).M = %d, want 190", g.M())
	}
}

func TestPlantedGraphStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	specs := []PlantedCliqueSpec{{Size: 10}, {Size: 6, Overlap: 3}, {Size: 5, Overlap: 2}}
	g := PlantedGraph(rng, 100, specs, 50)
	// Planted edges: C(10,2) + (C(6,2)-C(3,2)) + (C(5,2)-C(2,2)) plus
	// some of the 50 background (which may collide with planted pairs —
	// AddEdge dedups, and the generator only counts *new* edges).
	minPlanted := 45 + (15 - 3) + (10 - 1)
	if g.M() < minPlanted+50 {
		t.Errorf("M = %d, want >= %d", g.M(), minPlanted+50)
	}
	// Degeneracy must reflect the big module.
	if _, d := g.DegeneracyOrder(); d < 9 {
		t.Errorf("degeneracy = %d, want >= 9", d)
	}
}

func TestPlantedGraphBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized modules did not panic")
		}
	}()
	PlantedGraph(rand.New(rand.NewSource(4)), 5,
		[]PlantedCliqueSpec{{Size: 4}, {Size: 4}}, 0)
}

func TestTrimToEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	clique := []int{0, 1, 2, 3, 4}
	g := New(50)
	PlantClique(g, clique)
	for i := 5; i < 45; i++ {
		g.AddEdge(i, i+1)
	}
	target := g.M() - 20
	TrimToEdgeCount(rng, g, target, [][]int{clique})
	if g.M() != target {
		t.Errorf("M = %d, want %d", g.M(), target)
	}
	if !g.IsClique(clique) {
		t.Error("trim damaged the protected clique")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := RandomGNM(rng, 40, 80)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("round trip: N=%d M=%d", h.N(), h.M())
	}
	g.ForEachEdge(func(u, v int) bool {
		if !h.HasEdge(u, v) {
			t.Errorf("edge (%d,%d) lost", u, v)
		}
		return true
	})
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "x y\n",
		"bad vertex":   "3 1\n0 zzz\n",
		"out of range": "3 1\n0 7\n",
		"self loop":    "3 1\n1 1\n",
		"triple field": "3 1\n0 1 2\n",
	}
	for name, input := range cases {
		if _, err := ReadEdgeList(strings.NewReader(input)); err == nil {
			t.Errorf("%s: no error for %q", name, input)
		}
	}
	// Comments and blank lines are fine.
	g, err := ReadEdgeList(strings.NewReader("# comment\n\n3 1\n# mid\n0 2\n"))
	if err != nil || g.M() != 1 {
		t.Errorf("comment parse: %v, m=%v", err, g)
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := RandomGNM(rng, 30, 60)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("round trip: N=%d M=%d", h.N(), h.M())
	}
	g.ForEachEdge(func(u, v int) bool {
		if !h.HasEdge(u, v) {
			t.Errorf("edge (%d,%d) lost", u, v)
		}
		return true
	})
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := map[string]string{
		"no problem":    "e 1 2\n",
		"bad problem":   "p foo 3 1\n",
		"bad edge":      "p edge 3 1\ne 0 2\n",
		"self loop":     "p edge 3 1\ne 2 2\n",
		"unknown":       "p edge 3 1\nq 1 2\n",
		"missing field": "p edge 3 1\ne 1\n",
		"empty":         "",
	}
	for name, input := range cases {
		if _, err := ReadDIMACS(strings.NewReader(input)); err == nil {
			t.Errorf("%s: no error for %q", name, input)
		}
	}
	// Comments accepted.
	g, err := ReadDIMACS(strings.NewReader("c hello\np edge 2 1\ne 1 2\n"))
	if err != nil || g.M() != 1 {
		t.Errorf("comment parse: %v", err)
	}
}

// Property: sum of degrees equals 2m on random graphs.
func TestQuickHandshake(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGNP(rng, 1+rng.Intn(40), 0.25)
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: KCorePeel(k) retains exactly vertices with >= k surviving
// neighbors, verified by direct degree recount on the induced subgraph.
func TestQuickKCoreFixedPoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGNP(rng, 2+rng.Intn(30), 0.3)
		k := 1 + rng.Intn(4)
		alive := g.KCorePeel(k)
		sub, _ := g.InducedSubgraph(alive)
		for v := 0; v < sub.N(); v++ {
			if sub.Degree(v) < k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
