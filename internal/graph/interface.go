package graph

import (
	"fmt"

	"repro/internal/bitset"
)

// Representation names an adjacency storage backend.  The paper's central
// trade-off (§2.1, §5) is that the dense bit-string index is what makes
// the Clique Enumerator fast *and* what makes it memory-bound at genome
// scale; the pluggable representation layer lets each workload pick its
// memory/speed point — or lets the Builder pick one from measured density.
type Representation int

const (
	// Auto lets Builder.Freeze (and Convert) choose between Dense and
	// CSR from the measured edge density.  Compressed is never chosen
	// automatically: its wins are workload-specific, so it is opt-in.
	Auto Representation = iota
	// Dense stores one n-bit bitmap row per vertex — the paper's
	// "globally addressable bitmap memory index".  Fastest row algebra,
	// n*ceil(n/64)*8 bytes of adjacency.
	Dense
	// CSR stores sorted compressed-sparse-row adjacency: 4(n+1+2m)
	// bytes.  Rows are materialized into dense scratch only on demand.
	CSR
	// Compressed stores one WAH-compressed bitmap row per vertex
	// (package wah) — the paper's §5 future-work direction, previously
	// used only for common-neighbor storage.
	Compressed
)

// String names the representation for flags and diagnostics.
func (r Representation) String() string {
	switch r {
	case Auto:
		return "auto"
	case Dense:
		return "dense"
	case CSR:
		return "csr"
	case Compressed:
		return "wah"
	}
	return fmt.Sprintf("representation(%d)", int(r))
}

// ParseRepresentation parses the names String produces ("auto", "dense",
// "csr", "wah"; "compressed" is accepted as an alias of "wah").
func ParseRepresentation(s string) (Representation, error) {
	switch s {
	case "auto":
		return Auto, nil
	case "dense":
		return Dense, nil
	case "csr":
		return CSR, nil
	case "wah", "compressed":
		return Compressed, nil
	}
	return Auto, fmt.Errorf("graph: unknown representation %q (want auto, dense, csr or wah)", s)
}

// Valid reports whether r is a known representation.
func (r Representation) Valid() bool { return r >= Auto && r <= Compressed }

// Interface is the representation-independent read contract all
// algorithm packages consume.  *Graph (dense), *CSRGraph and
// *CompressedGraph implement it.  Implementations are immutable once
// obtained from Builder.Freeze or Convert; the dense *Graph retains its
// historical mutating methods for construction, and the algorithm
// packages treat every Interface value as frozen.
//
// Row is the hot-path contract: it returns the adjacency row of v as a
// bitset.Reader without materializing (dense rows are their own Reader;
// CSR and WAH rows are pre-built zero-allocation views).  Materialize is
// the escape hatch for callers that need a private dense copy of a row
// (e.g. per-sub-list common-neighbor bitmaps): it overwrites dst with
// N(v).
type Interface interface {
	// N returns the number of vertices.
	N() int
	// M returns the number of edges.
	M() int
	// Degree returns the number of neighbors of v.
	Degree(v int) int
	// HasEdge reports whether (u,v) is an edge.
	HasEdge(u, v int) bool
	// Name returns the label of v, or "v<index>" if none was set.
	Name(v int) string
	// Row returns the adjacency row of v as a read-only view.  The view
	// is owned by the graph: it is valid for the graph's lifetime and
	// must not be written through.
	Row(v int) bitset.Reader
	// Materialize overwrites dst (a bitset over [0, N())) with the
	// neighbor set of v.
	Materialize(v int, dst *bitset.Bitset)
	// Bytes returns the measured adjacency footprint of the
	// representation in bytes — the quantity the paper's memory
	// accounting and the representation benchmarks compare.
	Bytes() int64
	// Representation identifies the storage backend.
	Representation() Representation
}

// namer is the internal contract for transplanting vertex labels between
// representations without inventing default "v<i>" names.
type namer interface{ nameSlice() []string }

// DenseAdjacencyBytes returns the adjacency footprint of the dense
// representation on n vertices — n rows of ceil(n/64) words — without
// allocating it.  This is the baseline the CSR/WAH memory wins are
// measured against.
func DenseAdjacencyBytes(n int) int64 {
	return int64(n) * int64((n+63)/64) * 8
}

// CSRAdjacencyBytes returns the adjacency footprint of the CSR
// representation on n vertices and m edges: a 4-byte row pointer per
// vertex (plus one) and two 4-byte column entries per edge.
func CSRAdjacencyBytes(n, m int) int64 {
	return 4 * (int64(n) + 1 + 2*int64(m))
}

// chooseAuto is the density-driven selection rule shared by Builder and
// Convert: small graphs stay dense (the row algebra wins and the
// footprint is trivial); otherwise CSR is chosen only when it saves at
// least half the dense footprint, so borderline densities keep the fast
// path.
func chooseAuto(n, m int) Representation {
	const smallN = 4096
	if n <= smallN {
		return Dense
	}
	if 2*CSRAdjacencyBytes(n, m) < DenseAdjacencyBytes(n) {
		return CSR
	}
	return Dense
}

// Density returns m / (n choose 2) for any representation.
func Density(g Interface) float64 {
	n := g.N()
	if n < 2 {
		return 0
	}
	return float64(g.M()) / (float64(n) * float64(n-1) / 2)
}

// MaxDegree returns the largest vertex degree of any representation.
func MaxDegree(g Interface) int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// ForEachEdge calls fn for every edge of g in canonical order (sorted by
// U, then V, U < V), for any representation.
func ForEachEdge(g Interface, fn func(u, v int) bool) {
	for u := 0; u < g.N(); u++ {
		stop := false
		g.Row(u).ForEach(func(v int) bool {
			if v > u {
				if !fn(u, v) {
					stop = true
					return false
				}
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Edges returns all edges of g in canonical order, for any
// representation.
func Edges(g Interface) []Edge {
	edges := make([]Edge, 0, g.M())
	ForEachEdge(g, func(u, v int) bool {
		edges = append(edges, Edge{u, v})
		return true
	})
	return edges
}

// CommonNeighbors computes the common-neighbor bit string of the given
// clique into dst for any representation: bit i is 1 iff i is outside
// the clique and adjacent to every member (the paper's Figure 2
// operation).  dst must be a bitset over [0, N()).
func CommonNeighbors(g Interface, dst *bitset.Bitset, clique []int) {
	if len(clique) == 0 {
		dst.SetAll()
		return
	}
	g.Materialize(clique[0], dst)
	for _, v := range clique[1:] {
		g.Row(v).IntersectInto(dst)
	}
}

// IsClique reports whether every pair of the given vertices is adjacent,
// for any representation.
func IsClique(g Interface, vertices []int) bool {
	for i := 0; i < len(vertices); i++ {
		for j := i + 1; j < len(vertices); j++ {
			if !g.HasEdge(vertices[i], vertices[j]) {
				return false
			}
		}
	}
	return true
}

// IsMaximalClique reports whether the vertices form a clique with no
// common neighbor, for any representation.
func IsMaximalClique(g Interface, vertices []int) bool {
	if !IsClique(g, vertices) {
		return false
	}
	cn := bitset.New(g.N())
	CommonNeighbors(g, cn, vertices)
	return cn.None()
}

// KCorePeel iteratively removes vertices of degree < k and returns the
// surviving vertex set, for any representation.
func KCorePeel(g Interface, k int) *bitset.Bitset {
	n := g.N()
	alive := bitset.New(n)
	alive.SetAll()
	deg := make([]int, n)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] < k {
			queue = append(queue, v)
			alive.Clear(v)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		g.Row(v).ForEach(func(u int) bool {
			if alive.Test(u) {
				deg[u]--
				if deg[u] < k {
					alive.Clear(u)
					queue = append(queue, u)
				}
			}
			return true
		})
	}
	return alive
}

// InducedSubgraph returns the subgraph induced by the given vertices in
// the same representation as g (Auto inputs re-run the density rule on
// the subgraph), plus the mapping from new indices to original vertex
// IDs.  Vertex order is preserved.  Vertex names are transplanted.
func InducedSubgraph(g Interface, vertices *bitset.Bitset) (Interface, []int) {
	if d, ok := g.(*Graph); ok {
		sub, newToOld := d.InducedSubgraph(vertices)
		return sub, newToOld
	}
	if vertices.Len() != g.N() {
		panic("graph: vertex-set universe mismatch")
	}
	newToOld := vertices.Indices()
	old2new := make([]int, g.N())
	for i := range old2new {
		old2new[i] = -1
	}
	for ni, ov := range newToOld {
		old2new[ov] = ni
	}
	b := NewBuilder(len(newToOld)).WithRepresentation(g.Representation())
	names := nameSliceOf(g)
	for ni, ov := range newToOld {
		if names != nil && names[ov] != "" {
			b.SetName(ni, names[ov])
		}
		g.Row(ov).ForEach(func(ou int) bool {
			if nu := old2new[ou]; nu > ni {
				b.AddEdge(ni, nu)
			}
			return true
		})
	}
	sub, err := b.Freeze()
	if err != nil {
		// All indices were derived from valid vertices; Freeze cannot
		// fail here.
		panic(fmt.Sprintf("graph: induced subgraph freeze: %v", err))
	}
	return sub, newToOld
}

// nameSliceOf extracts the raw label slice of any representation (nil
// when no names were ever set).
func nameSliceOf(g Interface) []string {
	if nm, ok := g.(namer); ok {
		return nm.nameSlice()
	}
	return nil
}

// Densify returns g as a dense *Graph: g itself when already dense,
// otherwise a freshly materialized dense copy (names transplanted).
// Algorithms whose row algebra is inherently dense — the complement
// route of the FPT pipeline, the coloring bounds of the maximum-clique
// solver — use this at their entry points; the cost is the dense
// adjacency footprint, so genome-scale sparse graphs should prefer the
// enumeration paths, which never densify whole graphs.
func Densify(g Interface) *Graph {
	if d, ok := g.(*Graph); ok {
		return d
	}
	d := New(g.N())
	if names := nameSliceOf(g); names != nil {
		d.names = append([]string(nil), names...)
	}
	for v := 0; v < g.N(); v++ {
		g.Materialize(v, d.adj[v])
	}
	d.m = g.M()
	return d
}

// Convert returns g in the requested representation, re-encoding only
// when necessary (g itself is returned when it already matches).  Auto
// applies the density rule of Builder.Freeze to g's measured n and m.
func Convert(g Interface, rep Representation) (Interface, error) {
	if !rep.Valid() {
		return nil, fmt.Errorf("graph: unknown representation %d", int(rep))
	}
	if rep == Auto {
		rep = chooseAuto(g.N(), g.M())
	}
	if g.Representation() == rep {
		return g, nil
	}
	if rep == Dense {
		return Densify(g), nil
	}
	b := NewBuilder(g.N()).WithRepresentation(rep)
	if names := nameSliceOf(g); names != nil {
		for v, name := range names {
			if name != "" {
				b.SetName(v, name)
			}
		}
	}
	ForEachEdge(g, func(u, v int) bool {
		b.AddEdge(u, v)
		return true
	})
	return b.Freeze()
}
