package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the two interchange formats the tools speak:
//
//   - a plain edge list ("el" format): first line "n m", then one "u v"
//     pair per line, 0-based, in any order; '#' starts a comment.
//   - DIMACS clique format: "c" comments, "p edge N M" header, "e u v"
//     lines, 1-based, as used by the clique/vertex-cover community the
//     paper's FPT work comes from.

// WriteEdgeList writes g in edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	var err error
	g.ForEachEdge(func(u, v int) bool {
		_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadEdgeList parses edge-list format.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if g == nil {
			if len(fields) != 2 {
				return nil, fmt.Errorf("edge list line %d: want \"n m\" header, got %q", line, text)
			}
			n, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("edge list line %d: bad n: %v", line, err)
			}
			if n < 0 {
				return nil, fmt.Errorf("edge list line %d: negative n", line)
			}
			g = New(n)
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("edge list line %d: want \"u v\", got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("edge list line %d: bad u: %v", line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("edge list line %d: bad v: %v", line, err)
		}
		if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
			return nil, fmt.Errorf("edge list line %d: vertex out of range [0,%d)", line, g.N())
		}
		if u == v {
			return nil, fmt.Errorf("edge list line %d: self-loop at %d", line, u)
		}
		g.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("edge list: empty input")
	}
	return g, nil
}

// WriteDIMACS writes g in DIMACS clique format (1-based).
func WriteDIMACS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p edge %d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	var err error
	g.ForEachEdge(func(u, v int) bool {
		_, err = fmt.Fprintf(bw, "e %d %d\n", u+1, v+1)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadDIMACS parses DIMACS clique format.
func ReadDIMACS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		switch text[0] {
		case 'c':
			continue
		case 'p':
			fields := strings.Fields(text)
			if len(fields) < 4 || fields[1] != "edge" {
				return nil, fmt.Errorf("dimacs line %d: bad problem line %q", line, text)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dimacs line %d: bad vertex count", line)
			}
			g = New(n)
		case 'e':
			if g == nil {
				return nil, fmt.Errorf("dimacs line %d: edge before problem line", line)
			}
			fields := strings.Fields(text)
			if len(fields) != 3 {
				return nil, fmt.Errorf("dimacs line %d: bad edge line %q", line, text)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("dimacs line %d: bad u", line)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("dimacs line %d: bad v", line)
			}
			if u < 1 || u > g.N() || v < 1 || v > g.N() || u == v {
				return nil, fmt.Errorf("dimacs line %d: bad edge (%d,%d)", line, u, v)
			}
			g.AddEdge(u-1, v-1)
		default:
			return nil, fmt.Errorf("dimacs line %d: unknown record %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("dimacs: no problem line")
	}
	return g, nil
}
