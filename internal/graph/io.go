package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the two interchange formats the tools speak:
//
//   - a plain edge list ("el" format): first line "n m", then one "u v"
//     pair per line, 0-based, in any order; '#' starts a comment.
//   - DIMACS clique format: "c" comments, "p edge N M" header, "e u v"
//     lines, 1-based, as used by the clique/vertex-cover community the
//     paper's FPT work comes from.
//
// Both parsers stream into a Builder, so malformed input — truncated
// records, self-loops, vertex ids outside [0,n), empty files — is
// reported as an error (never a panic) regardless of the representation
// requested, and duplicate edges collapse identically in every backend.

// WriteEdgeList writes g in edge-list format, for any representation.
func WriteEdgeList(w io.Writer, g Interface) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	var err error
	ForEachEdge(g, func(u, v int) bool {
		_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadEdgeList parses edge-list format into the dense representation.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	g, err := ReadEdgeListRep(r, Dense)
	if err != nil {
		return nil, err
	}
	return g.(*Graph), nil
}

// ReadEdgeListRep parses edge-list format into the requested
// representation (Auto: density-driven choice at freeze).
func ReadEdgeListRep(r io.Reader, rep Representation) (Interface, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var b *Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if b == nil {
			if len(fields) != 2 {
				return nil, fmt.Errorf("edge list line %d: want \"n m\" header, got %q", line, text)
			}
			n, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("edge list line %d: bad n: %v", line, err)
			}
			if n < 0 {
				return nil, fmt.Errorf("edge list line %d: negative n", line)
			}
			b = NewBuilder(n).WithRepresentation(rep)
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("edge list line %d: want \"u v\", got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("edge list line %d: bad u: %v", line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("edge list line %d: bad v: %v", line, err)
		}
		if err := b.AddEdge(u, v); err != nil {
			return nil, fmt.Errorf("edge list line %d: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("edge list: empty input")
	}
	return b.Freeze()
}

// WriteDIMACS writes g in DIMACS clique format (1-based), for any
// representation.
func WriteDIMACS(w io.Writer, g Interface) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p edge %d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	var err error
	ForEachEdge(g, func(u, v int) bool {
		_, err = fmt.Fprintf(bw, "e %d %d\n", u+1, v+1)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadDIMACS parses DIMACS clique format into the dense representation.
func ReadDIMACS(r io.Reader) (*Graph, error) {
	g, err := ReadDIMACSRep(r, Dense)
	if err != nil {
		return nil, err
	}
	return g.(*Graph), nil
}

// ReadDIMACSRep parses DIMACS clique format into the requested
// representation (Auto: density-driven choice at freeze).
func ReadDIMACSRep(r io.Reader, rep Representation) (Interface, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var b *Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		switch text[0] {
		case 'c':
			continue
		case 'p':
			fields := strings.Fields(text)
			if len(fields) < 4 || fields[1] != "edge" {
				return nil, fmt.Errorf("dimacs line %d: bad problem line %q", line, text)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dimacs line %d: bad vertex count", line)
			}
			b = NewBuilder(n).WithRepresentation(rep)
		case 'e':
			if b == nil {
				return nil, fmt.Errorf("dimacs line %d: edge before problem line", line)
			}
			fields := strings.Fields(text)
			if len(fields) != 3 {
				return nil, fmt.Errorf("dimacs line %d: bad edge line %q", line, text)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("dimacs line %d: bad u", line)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("dimacs line %d: bad v", line)
			}
			if u < 1 || u > b.N() || v < 1 || v > b.N() || u == v {
				return nil, fmt.Errorf("dimacs line %d: bad edge (%d,%d)", line, u, v)
			}
			if err := b.AddEdge(u-1, v-1); err != nil {
				return nil, fmt.Errorf("dimacs line %d: %v", line, err)
			}
		default:
			return nil, fmt.Errorf("dimacs line %d: unknown record %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("dimacs: no problem line")
	}
	return b.Freeze()
}
