package graph

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// Fingerprint hashes a graph's identity — vertex count, edge count, and
// the canonical (increasing u < v, row-major) edge stream — with
// FNV-1a.  It is representation-independent: a dense, CSR, or
// WAH-compressed encoding of the same graph fingerprints identically.
//
// One identity serves three consumers that must agree: the out-of-core
// checkpoint manifest (a resume refuses a different graph), the query
// service's graph registry (uploads are keyed and deduplicated by
// fingerprint), and its result cache (a cached stream is only valid for
// the exact graph it was computed on).  The ooc manifest's historical
// value is this function; TestFingerprintMatchesManifest pins the
// cross-check.
func Fingerprint(g Interface) string {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(g.N()))
	binary.LittleEndian.PutUint32(buf[4:], uint32(g.M()))
	h.Write(buf[:])
	ForEachEdge(g, func(u, v int) bool {
		binary.LittleEndian.PutUint32(buf[:4], uint32(u))
		binary.LittleEndian.PutUint32(buf[4:], uint32(v))
		h.Write(buf[:])
		return true
	})
	return fmt.Sprintf("%016x", h.Sum64())
}
