package graph

import (
	"errors"
	"strings"
	"testing"
)

func TestBuilderErrorsInsteadOfPanics(t *testing.T) {
	// Each error class on a fresh builder (errors latch: once one is
	// recorded, subsequent calls re-report it).
	if err := NewBuilder(4).AddEdge(0, 4); err == nil || !strings.Contains(err.Error(), "vertex 4 out of range [0,4)") {
		t.Errorf("high vertex: err = %v", err)
	}
	if err := NewBuilder(4).AddEdge(-2, 1); err == nil || !strings.Contains(err.Error(), "vertex -2 out of range [0,4)") {
		t.Errorf("negative vertex: err = %v", err)
	}
	if err := NewBuilder(4).AddEdge(2, 2); err == nil || !strings.Contains(err.Error(), "self-loop") {
		t.Errorf("self-loop: err = %v", err)
	}
	if err := NewBuilder(4).SetName(9, "x"); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("SetName range: err = %v", err)
	}
	// The first error is latched: a caller that only checks Freeze still
	// cannot obtain a graph that silently dropped records, and later
	// calls re-report the first error.
	b := NewBuilder(4)
	if err := b.AddEdge(0, 4); err == nil {
		t.Fatal("bad edge accepted")
	}
	if err := b.AddEdge(0, 1); err == nil || !strings.Contains(err.Error(), "vertex 4 out of range") {
		t.Errorf("latched error not re-reported by AddEdge: %v", err)
	}
	if _, err := b.Freeze(); err == nil || !strings.Contains(err.Error(), "vertex 4 out of range") {
		t.Errorf("Freeze after bad records: err = %v", err)
	}

	// A clean builder freezes, then rejects everything.
	b = NewBuilder(4)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 || !g.HasEdge(0, 1) {
		t.Errorf("frozen graph: m=%d", g.M())
	}
	if err := b.AddEdge(0, 2); !errors.Is(err, ErrFrozen) { //nolint:frozengraph deliberately exercising the ErrFrozen guard
		t.Errorf("AddEdge after Freeze: %v", err)
	}
	if err := b.SetName(0, "x"); !errors.Is(err, ErrFrozen) { //nolint:frozengraph deliberately exercising the ErrFrozen guard
		t.Errorf("SetName after Freeze: %v", err)
	}
	if _, err := b.Freeze(); !errors.Is(err, ErrFrozen) {
		t.Errorf("second Freeze: %v", err)
	}
}

func TestBuilderNegativeNAndBadRep(t *testing.T) {
	if _, err := NewBuilder(-1).Freeze(); err == nil {
		t.Error("negative n not reported")
	}
	if _, err := NewBuilder(3).WithRepresentation(Representation(42)).Freeze(); err == nil {
		t.Error("unknown representation not reported")
	}
}

func TestBuilderDeduplicatesAndTracksDensity(t *testing.T) {
	for _, rep := range allReps {
		b := NewBuilder(10).WithRepresentation(rep)
		for i := 0; i < 5; i++ {
			if err := b.AddEdge(1, 2); err != nil {
				t.Fatal(err)
			}
			if err := b.AddEdge(2, 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.AddEdge(3, 4); err != nil {
			t.Fatal(err)
		}
		if b.EdgesAdded() != 11 {
			t.Errorf("%v: EdgesAdded = %d", rep, b.EdgesAdded())
		}
		if b.Density() <= 0 {
			t.Errorf("%v: density not tracked", rep)
		}
		g, err := b.Freeze()
		if err != nil {
			t.Fatal(err)
		}
		if g.M() != 2 {
			t.Errorf("%v: duplicates not collapsed: m=%d", rep, g.M())
		}
		if g.Degree(1) != 1 || g.Degree(2) != 1 {
			t.Errorf("%v: duplicate rows not deduplicated", rep)
		}
	}
}

func TestBuilderAutoPicksByDensity(t *testing.T) {
	// Small: dense even when sparse.
	g, err := NewBuilder(100).Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if g.Representation() != Dense {
		t.Errorf("small auto: %v", g.Representation())
	}
	// Large and sparse: CSR.
	b := NewBuilder(20000)
	for v := 1; v < 20000; v++ {
		if err := b.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	g, err = b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if g.Representation() != CSR {
		t.Errorf("large sparse auto: %v", g.Representation())
	}
}

func TestBuilderNamesAndEmptyRows(t *testing.T) {
	for _, rep := range allReps {
		b := NewBuilder(3).WithRepresentation(rep)
		if err := b.SetName(1, "only"); err != nil {
			t.Fatal(err)
		}
		g, err := b.Freeze()
		if err != nil {
			t.Fatal(err)
		}
		if g.Name(1) != "only" || g.Name(0) != "v0" {
			t.Errorf("%v: names %q %q", rep, g.Name(1), g.Name(0))
		}
		if g.M() != 0 || g.Degree(0) != 0 {
			t.Errorf("%v: edgeless graph wrong", rep)
		}
		if g.Row(0).Count() != 0 {
			t.Errorf("%v: empty row non-empty", rep)
		}
	}
}
