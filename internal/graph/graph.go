// Package graph provides the undirected-graph substrate for the clique
// enumeration framework of Zhang et al. (SC 2005).
//
// Adjacency is stored as one dense bit string per vertex (package bitset),
// exactly the "globally addressable bitmap memory index" of the paper:
// the neighborhood row of vertex v is the bit string whose i-th bit is 1
// iff (v,i) is an edge.  Common neighbors of a clique are then the AND of
// the member rows, and every algorithm in the framework — the Clique
// Enumerator itself, the Bron–Kerbosch baselines, the k-clique seeder and
// the vertex-cover reductions — works over these rows.
//
// Vertices are dense integer indices [0, N()).  Self-loops are rejected.
// Graphs are mutable during construction and treated as immutable by the
// algorithm packages.
package graph

import (
	"fmt"

	"repro/internal/bitset"
)

// Graph is an undirected simple graph over vertices [0, n) with bitmap
// adjacency rows.
type Graph struct {
	n     int
	m     int
	adj   []*bitset.Bitset
	names []string // optional vertex labels (gene/probe-set IDs)
}

// New returns an edgeless graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	g := &Graph{n: n, adj: make([]*bitset.Bitset, n)}
	for i := range g.adj {
		g.adj[i] = bitset.New(n)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// check panics with a clear diagnostic when v is outside the vertex
// universe.  Every mutating and edge-probing entry point funnels through
// it, so a bad index reports "vertex 12 out of range [0,10)" instead of a
// bare slice index panic from deep inside the bitset layer.  (The
// streaming Builder returns errors instead; use it when indices come from
// untrusted input.)
func (g *Graph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}

// AddEdge inserts the undirected edge (u,v).  Inserting an existing edge
// is a no-op; self-loops and out-of-range vertices panic (the streaming
// Builder reports both as errors instead).
func (g *Graph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	if g.adj[u].Test(v) {
		return
	}
	g.adj[u].Set(v)
	g.adj[v].Set(u)
	g.m++
}

// RemoveEdge deletes the undirected edge (u,v) if present.
func (g *Graph) RemoveEdge(u, v int) {
	g.check(u)
	g.check(v)
	if u == v || !g.adj[u].Test(v) {
		return
	}
	g.adj[u].Clear(v)
	g.adj[v].Clear(u)
	g.m--
}

// HasEdge reports whether (u,v) is an edge.
//
//repro:hotpath
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if u == v {
		return false
	}
	return g.adj[u].Test(v)
}

// Neighbors returns the adjacency bit string of v.  The returned set is
// the graph's internal row: callers must not modify it.
//
//repro:hotpath
func (g *Graph) Neighbors(v int) *bitset.Bitset { return g.adj[v] }

// Row returns the adjacency row of v as a read-only view (the dense row
// is its own bitset.Reader).  Part of the graph.Interface contract.
//
//repro:hotpath
func (g *Graph) Row(v int) bitset.Reader { return g.adj[v] }

// Materialize overwrites dst with the neighbor set of v.  Part of the
// graph.Interface contract; for the dense representation it is one
// word-level copy.
//
//repro:hotpath
func (g *Graph) Materialize(v int, dst *bitset.Bitset) { dst.CopyFrom(g.adj[v]) }

// Bytes returns the measured adjacency footprint: n rows of ceil(n/64)
// words, as actually allocated.
func (g *Graph) Bytes() int64 {
	var b int64
	for _, row := range g.adj {
		b += int64(row.Bytes())
	}
	return b
}

// Representation identifies the dense backend.
func (g *Graph) Representation() Representation { return Dense }

// nameSlice exposes the raw label slice for representation conversions.
func (g *Graph) nameSlice() []string { return g.names }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return g.adj[v].Count() }

// MaxDegree returns the largest vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// Density returns m / (n choose 2), the edge density reported for the
// paper's microarray graphs (e.g. 0.008%, 0.2%, 0.3%).
func (g *Graph) Density() float64 {
	if g.n < 2 {
		return 0
	}
	return float64(g.m) / (float64(g.n) * float64(g.n-1) / 2)
}

// SetName attaches a label (e.g. a probe-set ID) to vertex v.
func (g *Graph) SetName(v int, name string) {
	if g.names == nil {
		g.names = make([]string, g.n)
	}
	g.names[v] = name
}

// Name returns the label of v, or "v<index>" if none was set.
func (g *Graph) Name(v int) string {
	if g.names != nil && g.names[v] != "" {
		return g.names[v]
	}
	return fmt.Sprintf("v%d", v)
}

// Edge is an undirected edge in canonical (U < V) order.
type Edge struct{ U, V int }

// Edges returns all edges in canonical order: sorted by U, then V, with
// U < V.  This is the non-repeating canonical edge list the Kose-style
// algorithms take as input.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		g.adj[u].ForEach(func(v int) bool {
			if v > u {
				edges = append(edges, Edge{u, v})
			}
			return true
		})
	}
	return edges
}

// ForEachEdge calls fn for every edge in canonical order.
func (g *Graph) ForEachEdge(fn func(u, v int) bool) {
	for u := 0; u < g.n; u++ {
		stop := false
		g.adj[u].ForEach(func(v int) bool {
			if v > u {
				if !fn(u, v) {
					stop = true
					return false
				}
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n, m: g.m, adj: make([]*bitset.Bitset, g.n)}
	for i := range g.adj {
		c.adj[i] = g.adj[i].Clone()
	}
	if g.names != nil {
		c.names = append([]string(nil), g.names...)
	}
	return c
}

// Complement returns the complement graph: (u,v) is an edge iff it is not
// an edge of g.  Used by the FPT pipeline, which solves maximum clique as
// vertex cover on the complement.
func (g *Graph) Complement() *Graph {
	c := New(g.n)
	row := bitset.New(g.n)
	for v := 0; v < g.n; v++ {
		row.Not(g.adj[v])
		row.Clear(v) // no self-loops
		c.adj[v].CopyFrom(row)
	}
	// Recount edges once rather than per insertion.
	m := 0
	for v := 0; v < g.n; v++ {
		m += c.adj[v].Count()
	}
	c.m = m / 2
	return c
}

// InducedSubgraph returns the subgraph induced by the given vertices plus
// the mapping from new indices to original vertex IDs.  Vertex order is
// preserved (ascending original index), keeping canonical clique order
// meaningful across the reduction.
func (g *Graph) InducedSubgraph(vertices *bitset.Bitset) (*Graph, []int) {
	if vertices.Len() != g.n {
		panic("graph: vertex-set universe mismatch")
	}
	old2new := make([]int, g.n)
	for i := range old2new {
		old2new[i] = -1
	}
	newToOld := vertices.Indices()
	for ni, ov := range newToOld {
		old2new[ov] = ni
	}
	sub := New(len(newToOld))
	if g.names != nil {
		sub.names = make([]string, len(newToOld))
	}
	scratch := bitset.New(g.n)
	for ni, ov := range newToOld {
		if g.names != nil {
			sub.names[ni] = g.names[ov]
		}
		scratch.And(g.adj[ov], vertices)
		scratch.ForEach(func(ou int) bool {
			nu := old2new[ou]
			if nu > ni {
				sub.AddEdge(ni, nu)
			}
			return true
		})
	}
	return sub, newToOld
}

// IsClique reports whether every pair of the given vertices is adjacent.
func (g *Graph) IsClique(vertices []int) bool {
	for i := 0; i < len(vertices); i++ {
		for j := i + 1; j < len(vertices); j++ {
			if !g.HasEdge(vertices[i], vertices[j]) {
				return false
			}
		}
	}
	return true
}

// CommonNeighbors computes the common-neighbor bit string of the given
// clique into dst: bit i is 1 iff i is outside the clique and adjacent to
// every member.  dst must be a bitset over [0, N()).  This is the paper's
// defining bitmap operation (Figure 2).
//
//repro:hotpath
func (g *Graph) CommonNeighbors(dst *bitset.Bitset, clique []int) {
	if len(clique) == 0 {
		dst.SetAll()
		return
	}
	dst.CopyFrom(g.adj[clique[0]])
	for _, v := range clique[1:] {
		dst.And(dst, g.adj[v])
	}
	// Adjacency rows never include the vertex itself, so members are
	// already excluded from the result.
}

// IsMaximalClique reports whether the vertices form a clique with no
// common neighbor (the bit-string test of Figure 2).
func (g *Graph) IsMaximalClique(vertices []int) bool {
	if !g.IsClique(vertices) {
		return false
	}
	cn := bitset.New(g.n)
	g.CommonNeighbors(cn, vertices)
	return cn.None()
}

// KCorePeel iteratively removes vertices of degree < k and returns the
// surviving vertex set.  The k-clique enumerator uses this with k-1:
// vertices of degree < k-1 cannot belong to any k-clique (the paper's
// preprocessing step, applied to a fixed point rather than a single pass).
func (g *Graph) KCorePeel(k int) *bitset.Bitset {
	alive := bitset.New(g.n)
	alive.SetAll()
	deg := make([]int, g.n)
	queue := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] < k {
			queue = append(queue, v)
			alive.Clear(v)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		g.adj[v].ForEach(func(u int) bool {
			if alive.Test(u) {
				deg[u]--
				if deg[u] < k {
					alive.Clear(u)
					queue = append(queue, u)
				}
			}
			return true
		})
	}
	return alive
}

// ConnectedComponents returns the vertex sets of the connected components,
// largest first by vertex count.
func (g *Graph) ConnectedComponents() []*bitset.Bitset {
	seen := bitset.New(g.n)
	var comps []*bitset.Bitset
	stack := make([]int, 0, 64)
	for s := 0; s < g.n; s++ {
		if seen.Test(s) {
			continue
		}
		comp := bitset.New(g.n)
		stack = append(stack[:0], s)
		seen.Set(s)
		comp.Set(s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			g.adj[v].ForEach(func(u int) bool {
				if !seen.Test(u) {
					seen.Set(u)
					comp.Set(u)
					stack = append(stack, u)
				}
				return true
			})
		}
		comps = append(comps, comp)
	}
	// Insertion sort by descending size; component counts are small.
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && comps[j].Count() > comps[j-1].Count(); j-- {
			comps[j], comps[j-1] = comps[j-1], comps[j]
		}
	}
	return comps
}

// DegeneracyOrder returns a vertex ordering produced by repeatedly
// removing a minimum-degree vertex, along with the graph's degeneracy.
// Several bounding heuristics (greedy clique, coloring) consume it.
func (g *Graph) DegeneracyOrder() (order []int, degeneracy int) {
	n := g.n
	deg := make([]int, n)
	removed := make([]bool, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	// Bucket queue over degrees.
	maxDeg := g.MaxDegree()
	buckets := make([][]int, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	order = make([]int, 0, n)
	cur := 0
	for len(order) < n {
		if cur > maxDeg {
			break
		}
		if len(buckets[cur]) == 0 {
			cur++
			continue
		}
		v := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[v] || deg[v] != cur {
			continue // stale bucket entry
		}
		removed[v] = true
		order = append(order, v)
		if cur > degeneracy {
			degeneracy = cur
		}
		g.adj[v].ForEach(func(u int) bool {
			if !removed[u] {
				deg[u]--
				buckets[deg[u]] = append(buckets[deg[u]], u)
				if deg[u] < cur {
					cur = deg[u]
				}
			}
			return true
		})
	}
	return order, degeneracy
}

// GreedyCliqueLowerBound grows a clique greedily along the reverse
// degeneracy order and returns its vertices.  It is a fast lower bound for
// the maximum-clique solvers.
func (g *Graph) GreedyCliqueLowerBound() []int {
	order, _ := g.DegeneracyOrder()
	best := []int{}
	cand := bitset.New(g.n)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		clique := []int{v}
		cand.CopyFrom(g.adj[v])
		for {
			// Pick the candidate with most connections into cand.
			bestU, bestDeg := -1, -1
			cand.ForEach(func(u int) bool {
				d := g.adj[u].AndCount(cand)
				if d > bestDeg {
					bestU, bestDeg = u, d
				}
				return true
			})
			if bestU < 0 {
				break
			}
			clique = append(clique, bestU)
			cand.And(cand, g.adj[bestU])
		}
		if len(clique) > len(best) {
			best = clique
		}
		// Trying every start is quadratic; a handful of starts from the
		// high-coreness end is enough for a bound.
		if len(order)-i >= 8 {
			break
		}
	}
	sortInts(best)
	return best
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
