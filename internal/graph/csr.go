package graph

import (
	"fmt"

	"repro/internal/bitset"
)

// CSRGraph is the compressed-sparse-row adjacency backend: one sorted
// uint32 column array plus a row-pointer array, 4(n+1+2m) bytes total.
// This is the O(n+m) representation that makes genome-scale sparse
// coexpression graphs loadable at all — a 200k-vertex graph of average
// degree 32 costs ~26 MB here against ~5 GB dense.  Rows are exposed as
// bitset.Reader views over the sorted slices (adjacency tests are binary
// searches, intersections walk the neighbor list), and Materialize
// produces a dense row on demand for callers that need bitmap algebra
// over a private copy.
//
// A CSRGraph is immutable: build one with Builder.Freeze or Convert.
type CSRGraph struct {
	n      int
	m      int
	rowPtr []uint32 // len n+1
	cols   []uint32 // len 2m, sorted within each row
	rows   []csrRow // pre-built zero-allocation Reader views
	names  []string
}

// newCSR assembles a CSRGraph from per-vertex sorted, deduplicated
// neighbor lists.  adj is consumed.
// panicVertexRange reports an out-of-range vertex index.  It lives out
// of line so the bounds checks in the hot accessors carry no fmt
// boxing and the accessors stay within the inlining budget; the message
// matches the dense backend's check, so a caller bug fails identically
// on every representation.
func panicVertexRange(v, n int) {
	panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, n))
}

func newCSR(n int, adj [][]uint32, names []string) (*CSRGraph, error) {
	total := 0
	for _, row := range adj {
		total += len(row)
	}
	if int64(total) > int64(^uint32(0)) {
		return nil, fmt.Errorf("graph: CSR column index overflow: %d directed edges", total)
	}
	g := &CSRGraph{
		n:      n,
		m:      total / 2,
		rowPtr: make([]uint32, n+1),
		cols:   make([]uint32, 0, total),
		names:  names,
	}
	for v, row := range adj {
		g.rowPtr[v] = uint32(len(g.cols))
		g.cols = append(g.cols, row...)
		adj[v] = nil // release the builder's backing storage as we go
	}
	g.rowPtr[n] = uint32(len(g.cols))
	g.rows = make([]csrRow, n)
	for v := 0; v < n; v++ {
		g.rows[v] = csrRow{cols: g.cols[g.rowPtr[v]:g.rowPtr[v+1]], n: n}
	}
	return g, nil
}

// N returns the number of vertices.
func (g *CSRGraph) N() int { return g.n }

// M returns the number of edges.
func (g *CSRGraph) M() int { return g.m }

// Degree returns the number of neighbors of v.
func (g *CSRGraph) Degree(v int) int { return int(g.rowPtr[v+1] - g.rowPtr[v]) }

// HasEdge reports whether (u,v) is an edge: a binary search of the
// smaller endpoint's row.
//
//repro:hotpath
func (g *CSRGraph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n {
		panicVertexRange(u, g.n)
	}
	if v < 0 || v >= g.n {
		panicVertexRange(v, g.n)
	}
	if u == v {
		return false
	}
	if g.Degree(v) < g.Degree(u) {
		u, v = v, u
	}
	return g.rows[u].Test(v)
}

// Name returns the label of v, or "v<index>" if none was set.
func (g *CSRGraph) Name(v int) string {
	if g.names != nil && g.names[v] != "" {
		return g.names[v]
	}
	return fmt.Sprintf("v%d", v)
}

// Row returns the adjacency row of v as a read-only sorted-list view.
func (g *CSRGraph) Row(v int) bitset.Reader { return &g.rows[v] }

// Materialize overwrites dst with the neighbor set of v.
//
//repro:hotpath
func (g *CSRGraph) Materialize(v int, dst *bitset.Bitset) {
	dst.ClearAll()
	for _, u := range g.rows[v].cols {
		dst.Set(int(u))
	}
}

// Bytes returns the measured adjacency footprint: the row-pointer and
// column arrays.
func (g *CSRGraph) Bytes() int64 {
	return 4 * (int64(len(g.rowPtr)) + int64(len(g.cols)))
}

// Representation identifies the CSR backend.
func (g *CSRGraph) Representation() Representation { return CSR }

// nameSlice exposes the raw label slice for representation conversions.
func (g *CSRGraph) nameSlice() []string { return g.names }

// csrRow is the bitset.Reader view of one sorted neighbor list.
type csrRow struct {
	cols []uint32
	n    int
}

var _ bitset.Reader = (*csrRow)(nil)

// Len returns the universe size.
func (r *csrRow) Len() int { return r.n }

// Count returns the row's degree.
func (r *csrRow) Count() int { return len(r.cols) }

// Test reports membership via binary search: O(log degree).  Out-of-
// range indices panic with the same diagnostic as the dense and WAH
// rows, so a caller bug fails identically on every backend.
//
//repro:hotpath
func (r *csrRow) Test(i int) bool {
	if i < 0 || i >= r.n {
		panicVertexRange(i, r.n)
	}
	// Hand-rolled binary search: sort.Search would cost a closure and an
	// indirect call per probe on this hot path.
	lo, hi := 0, len(r.cols)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(r.cols[mid]) < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(r.cols) && int(r.cols[lo]) == i
}

// ForEach visits the neighbors in increasing order.
//
//repro:hotpath
func (r *csrRow) ForEach(fn func(i int) bool) {
	for _, u := range r.cols {
		if !fn(int(u)) {
			return
		}
	}
}

// mustMatchUniverse panics unless the dense operand spans the row's
// universe; the hot probes below index operand words directly off the
// neighbor list, so the single up-front check replaces a per-neighbor
// range test.
func (r *csrRow) mustMatchUniverse(o *bitset.Bitset) {
	if o.Len() != r.n {
		panic(fmt.Sprintf("graph: operand universe %d, want %d", o.Len(), r.n))
	}
}

// IntersectsWith probes the dense operand per neighbor: O(degree), which
// on sparse graphs beats the dense word scan.  The probe indexes the
// operand's backing word directly — the sorted neighbor list guarantees
// in-range indices once the universes match.
//
//repro:hotpath
func (r *csrRow) IntersectsWith(o *bitset.Bitset) bool {
	r.mustMatchUniverse(o)
	for _, u := range r.cols {
		if o.WordAt(int(u)>>6)&(1<<(u&63)) != 0 {
			return true
		}
	}
	return false
}

// AndAnyWith reports whether row ∩ x ∩ o is non-empty: a merged walk of
// the neighbor list against both dense operands, one word probe each,
// early-exiting on the first common member.
//
//repro:hotpath
func (r *csrRow) AndAnyWith(x, o *bitset.Bitset) bool {
	r.mustMatchUniverse(x)
	r.mustMatchUniverse(o)
	for _, u := range r.cols {
		if x.WordAt(int(u)>>6)&o.WordAt(int(u)>>6)&(1<<(u&63)) != 0 {
			return true
		}
	}
	return false
}

// AndCount returns |row ∩ o| in O(degree).
//
//repro:hotpath
func (r *csrRow) AndCount(o *bitset.Bitset) int {
	r.mustMatchUniverse(o)
	c := 0
	for _, u := range r.cols {
		c += int(o.WordAt(int(u)>>6) >> (u & 63) & 1)
	}
	return c
}

// AndInto overwrites dst with row ∩ o: one clearing pass plus O(degree)
// probes.  dst must not alias o.
//
//repro:hotpath
func (r *csrRow) AndInto(dst, o *bitset.Bitset) {
	dst.ClearAll()
	for _, u := range r.cols {
		if o.Test(int(u)) {
			dst.Set(int(u))
		}
	}
}

// IntersectInto replaces dst with dst ∩ row in place: a two-pointer walk
// of dst's set bits against the sorted neighbor list, clearing members of
// dst absent from the row.
//
//repro:hotpath
func (r *csrRow) IntersectInto(dst *bitset.Bitset) {
	k := 0
	for v, ok := dst.NextSet(0); ok; v, ok = dst.NextSet(v + 1) {
		for k < len(r.cols) && int(r.cols[k]) < v {
			k++
		}
		if k >= len(r.cols) || int(r.cols[k]) != v {
			dst.Clear(v)
		}
	}
}
