package graph

import (
	"fmt"
	"sort"
)

// Builder is the streaming, append-only construction path of the
// representation layer: edges and names are ingested one at a time
// (duplicates tolerated — the stream is deduplicated at Freeze), density
// is tracked as the stream arrives, and Freeze picks the adjacency
// backend — dense bitmap, CSR, or WAH-compressed — from the measured
// density unless one was pinned with WithRepresentation.
//
// Builder replaces mutate-in-place construction for untrusted and
// streaming inputs: where *Graph panics on a bad index, Builder returns
// errors, and the Interface it freezes into is immutable by API — the
// guarantee the algorithm packages previously only assumed.
//
// A Builder is single-use: after Freeze every method returns ErrFrozen.
// It is not safe for concurrent use.
type Builder struct {
	n      int
	adj    [][]uint32 // per-vertex neighbor stream, unsorted, may repeat
	names  []string
	rep    Representation
	adds   int64 // edge insertions seen (before dedup)
	frozen bool
	err    error // first construction error, returned again by Freeze
}

// ErrFrozen is returned by Builder methods called after Freeze.
var ErrFrozen = fmt.Errorf("graph: builder is frozen")

// NewBuilder returns a streaming builder over n vertices with automatic
// representation selection.  A negative n is reported by Freeze.
func NewBuilder(n int) *Builder {
	b := &Builder{n: n, rep: Auto}
	if n < 0 {
		b.err = fmt.Errorf("graph: negative vertex count %d", n)
		return b
	}
	b.adj = make([][]uint32, n)
	return b
}

// WithRepresentation pins the representation Freeze will produce
// (default Auto: density-driven choice between Dense and CSR).  Returns
// the builder for chaining.
func (b *Builder) WithRepresentation(rep Representation) *Builder {
	if b.err == nil && !rep.Valid() {
		b.err = fmt.Errorf("graph: unknown representation %d", int(rep))
	}
	b.rep = rep
	return b
}

// checkVertex records and returns a clear out-of-range error.
func (b *Builder) checkVertex(v int) error {
	if v < 0 || v >= b.n {
		return fmt.Errorf("graph: vertex %d out of range [0,%d)", v, b.n)
	}
	return nil
}

// fail latches the first construction error so Freeze re-reports it:
// a caller that checks only Freeze (legitimate for streaming loops)
// still cannot obtain a graph that silently dropped records.
func (b *Builder) fail(err error) error {
	if b.err == nil {
		b.err = err
	}
	return err
}

// AddEdge ingests the undirected edge (u,v).  Out-of-range vertices and
// self-loops are errors, not panics; any such error also fails the
// eventual Freeze, so unchecked bad records cannot yield a silently
// incomplete graph.  Duplicate insertions are tolerated and collapse at
// Freeze.
func (b *Builder) AddEdge(u, v int) error {
	if b.frozen {
		return ErrFrozen
	}
	if b.err != nil {
		return b.err
	}
	if err := b.checkVertex(u); err != nil {
		return b.fail(err)
	}
	if err := b.checkVertex(v); err != nil {
		return b.fail(err)
	}
	if u == v {
		return b.fail(fmt.Errorf("graph: self-loop at %d", u))
	}
	b.adj[u] = append(b.adj[u], uint32(v))
	b.adj[v] = append(b.adj[v], uint32(u))
	b.adds++
	return nil
}

// SetName attaches a label (e.g. a probe-set ID) to vertex v.  An
// out-of-range vertex is an error and also fails the eventual Freeze.
func (b *Builder) SetName(v int, name string) error {
	if b.frozen {
		return ErrFrozen
	}
	if b.err != nil {
		return b.err
	}
	if err := b.checkVertex(v); err != nil {
		return b.fail(err)
	}
	if b.names == nil {
		b.names = make([]string, b.n)
	}
	b.names[v] = name
	return nil
}

// N returns the number of vertices.
func (b *Builder) N() int { return b.n }

// EdgesAdded returns the number of AddEdge calls accepted so far —
// an upper bound on the final edge count (duplicates collapse at
// Freeze).
func (b *Builder) EdgesAdded() int64 { return b.adds }

// Density returns the running density estimate adds / (n choose 2) —
// an upper bound on the frozen graph's density, exact when the stream
// repeats no edge.  It is a streaming observability hook; the Auto rule
// itself consults the exact deduplicated edge count Freeze measures.
func (b *Builder) Density() float64 {
	if b.n < 2 {
		return 0
	}
	return float64(b.adds) / (float64(b.n) * float64(b.n-1) / 2)
}

// Freeze deduplicates the ingested edge stream, selects the
// representation (Auto: the density rule over the measured, deduplicated
// edge count), and returns the immutable graph.  The builder's storage
// is consumed; subsequent builder calls return ErrFrozen.
func (b *Builder) Freeze() (Interface, error) {
	if b.frozen {
		return nil, ErrFrozen
	}
	if b.err != nil {
		return nil, b.err
	}
	b.frozen = true

	// Sort + dedup each row in place; count the surviving directed
	// entries for the exact m the Auto rule and the backends need.
	total := 0
	for v, row := range b.adj {
		if len(row) > 1 {
			sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
			w := 1
			for i := 1; i < len(row); i++ {
				if row[i] != row[i-1] {
					row[w] = row[i]
					w++
				}
			}
			row = row[:w]
			b.adj[v] = row
		}
		total += len(b.adj[v])
	}
	m := total / 2

	rep := b.rep
	if rep == Auto {
		rep = chooseAuto(b.n, m)
	}
	switch rep {
	case Dense:
		g := New(b.n)
		g.names = b.names
		for v, row := range b.adj {
			for _, u := range row {
				g.adj[v].Set(int(u))
			}
			b.adj[v] = nil
		}
		g.m = m
		return g, nil
	case CSR:
		return newCSR(b.n, b.adj, b.names)
	case Compressed:
		return newCompressed(b.n, b.adj, b.names), nil
	}
	return nil, fmt.Errorf("graph: unknown representation %d", int(rep))
}
