package graph

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/wah"
)

// CompressedGraph stores one WAH-compressed bitmap per adjacency row —
// the paper's §5 future-work direction ("the sparsity of the bitmap
// memory index can potentially provide high compression rate and allow
// for bitwise operations to be performed on the compressed data"),
// promoted from common-neighbor storage to the graph substrate itself.
// Row probes and intersections walk the compressed stream; operations
// that genuinely need a dense row (AndInto/IntersectInto) decompress
// into pooled scratch, so repeated row access allocates nothing in
// steady state.
//
// A CompressedGraph is immutable: build one with Builder.Freeze or
// Convert.
type CompressedGraph struct {
	n     int
	m     int
	rows  []wahRow
	names []string
	pool  *bitset.Pool
	bytes int64
}

// newCompressed assembles a CompressedGraph from per-vertex sorted,
// deduplicated neighbor lists.  adj is consumed.
func newCompressed(n int, adj [][]uint32, names []string) *CompressedGraph {
	g := &CompressedGraph{
		n:     n,
		rows:  make([]wahRow, n),
		names: names,
		pool:  bitset.NewPool(n),
	}
	scratch := bitset.New(n)
	total := 0
	for v, row := range adj {
		total += len(row)
		scratch.ClearAll()
		for _, u := range row {
			scratch.Set(int(u))
		}
		bm := wah.Compress(scratch)
		g.rows[v] = wahRow{bm: bm, deg: len(row), g: g}
		g.bytes += int64(bm.CompressedBytes())
		adj[v] = nil
	}
	g.m = total / 2
	return g
}

// N returns the number of vertices.
func (g *CompressedGraph) N() int { return g.n }

// M returns the number of edges.
func (g *CompressedGraph) M() int { return g.m }

// Degree returns the number of neighbors of v.
func (g *CompressedGraph) Degree(v int) int { return g.rows[v].deg }

// HasEdge reports whether (u,v) is an edge, probing the compressed row.
//
//repro:hotpath
func (g *CompressedGraph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n {
		panicVertexRange(u, g.n)
	}
	if v < 0 || v >= g.n {
		panicVertexRange(v, g.n)
	}
	if u == v {
		return false
	}
	return g.rows[u].bm.Test(v)
}

// Name returns the label of v, or "v<index>" if none was set.
func (g *CompressedGraph) Name(v int) string {
	if g.names != nil && g.names[v] != "" {
		return g.names[v]
	}
	return fmt.Sprintf("v%d", v)
}

// Row returns the adjacency row of v as a read-only compressed view.
//
//repro:hotpath
func (g *CompressedGraph) Row(v int) bitset.Reader { return &g.rows[v] }

// WAHRow returns the compressed bitmap of v's row.  wah.Bitmap is
// immutable, so callers may retain it; the CNCompress enumeration mode
// uses this to seed sub-lists without a decompress/recompress round
// trip.
func (g *CompressedGraph) WAHRow(v int) *wah.Bitmap { return g.rows[v].bm }

// Materialize overwrites dst with the neighbor set of v.
//
//repro:hotpath
func (g *CompressedGraph) Materialize(v int, dst *bitset.Bitset) {
	g.rows[v].bm.DecompressInto(dst)
}

// Bytes returns the measured adjacency footprint: the sum of the
// compressed row sizes.
func (g *CompressedGraph) Bytes() int64 { return g.bytes }

// Representation identifies the WAH backend.
func (g *CompressedGraph) Representation() Representation { return Compressed }

// nameSlice exposes the raw label slice for representation conversions.
func (g *CompressedGraph) nameSlice() []string { return g.names }

// wahRow is the bitset.Reader view of one compressed row.
type wahRow struct {
	bm  *wah.Bitmap
	deg int
	g   *CompressedGraph
}

var _ bitset.Reader = (*wahRow)(nil)

// Len returns the universe size.
func (r *wahRow) Len() int { return r.bm.Len() }

// Count returns the row's degree.
func (r *wahRow) Count() int { return r.deg }

// Test probes the compressed stream: O(compressed words).
func (r *wahRow) Test(i int) bool { return r.bm.Test(i) }

// ForEach visits the neighbors in increasing order on the compressed
// stream.
func (r *wahRow) ForEach(fn func(i int) bool) { r.bm.ForEach(fn) }

// IntersectsWith walks the compressed stream against the dense operand
// group-by-group, no decode and no per-bit closure.
//
//repro:hotpath
func (r *wahRow) IntersectsWith(o *bitset.Bitset) bool {
	return r.bm.AndAnyDense(o)
}

// AndAnyWith reports whether row ∩ x ∩ o is non-empty on the compressed
// stream: the fused three-way maximality probe.
//
//repro:hotpath
func (r *wahRow) AndAnyWith(x, o *bitset.Bitset) bool {
	return r.bm.AndAnyDense2(x, o)
}

// AndCount returns |row ∩ o| by walking the compressed stream.
func (r *wahRow) AndCount(o *bitset.Bitset) int {
	c := 0
	r.bm.ForEach(func(i int) bool {
		if o.Test(i) {
			c++
		}
		return true
	})
	return c
}

// AndInto overwrites dst with row ∩ o, decompressing into pooled
// scratch.  dst must not alias o.
func (r *wahRow) AndInto(dst, o *bitset.Bitset) {
	scratch := r.g.pool.GetNoClear()
	r.bm.DecompressInto(scratch)
	dst.And(scratch, o)
	r.g.pool.Put(scratch)
}

// IntersectInto replaces dst with dst ∩ row in place, decompressing into
// pooled scratch.
func (r *wahRow) IntersectInto(dst *bitset.Bitset) {
	scratch := r.g.pool.GetNoClear()
	r.bm.DecompressInto(scratch)
	dst.And(dst, scratch)
	r.g.pool.Put(scratch)
}
