package graph

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// failWriter injects a write failure after a byte budget, exercising the
// error paths of the graph writers.
type failWriter struct{ n int }

var errInjected = errors.New("injected write failure")

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errInjected
	}
	if len(p) > f.n {
		p = p[:f.n]
	}
	f.n -= len(p)
	return len(p), nil
}

func TestWriteEdgeListPropagatesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := RandomGNM(rng, 200, 2000)
	for _, budget := range []int{0, 2, 50, 4096} {
		if err := WriteEdgeList(&failWriter{n: budget}, g); err == nil {
			t.Errorf("budget %d: write failure swallowed", budget)
		}
	}
}

func TestWriteDIMACSPropagatesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	g := RandomGNM(rng, 200, 2000)
	for _, budget := range []int{0, 5, 100, 4096} {
		if err := WriteDIMACS(&failWriter{n: budget}, g); err == nil {
			t.Errorf("budget %d: write failure swallowed", budget)
		}
	}
}

// The malformed-input matrix of the representation layer: every reader
// must report errors — never panic — on broken input, identically for
// every representation, and must collapse duplicate edges identically.
func TestReadEdgeListMalformedPerRepresentation(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"comment-only", "# nothing here\n"},
		{"truncated-header", "5\n"},
		{"truncated-edge", "5 2\n0 1\n3\n"},
		{"vertex-too-large", "5 1\n0 5\n"},
		{"vertex-negative", "5 1\n-1 2\n"},
		{"self-loop", "5 1\n2 2\n"},
		{"garbage-edge", "5 1\nx y\n"},
		{"negative-n", "-3 0\n"},
	}
	reps := []Representation{Auto, Dense, CSR, Compressed}
	for _, tc := range cases {
		for _, rep := range reps {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%s/%v: panic %v", tc.name, rep, r)
					}
				}()
				if _, err := ReadEdgeListRep(strings.NewReader(tc.input), rep); err == nil {
					t.Errorf("%s/%v: error swallowed", tc.name, rep)
				}
			}()
		}
	}
	// Duplicate edges are tolerated and collapse identically everywhere.
	const dup = "4 3\n0 1\n1 0\n0 1\n2 3\n"
	for _, rep := range reps {
		g, err := ReadEdgeListRep(strings.NewReader(dup), rep)
		if err != nil {
			t.Fatalf("dup/%v: %v", rep, err)
		}
		if g.M() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(2, 3) {
			t.Errorf("dup/%v: m=%d", rep, g.M())
		}
	}
}

func TestReadDIMACSMalformedPerRepresentation(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"comment-only", "c nothing\n"},
		{"edge-before-problem", "e 1 2\n"},
		{"bad-problem", "p graph 5 2\n"},
		{"truncated-edge", "p edge 5 2\ne 1\n"},
		{"vertex-too-large", "p edge 5 1\ne 1 6\n"},
		{"vertex-zero", "p edge 5 1\ne 0 2\n"},
		{"self-loop", "p edge 5 1\ne 2 2\n"},
		{"unknown-record", "p edge 5 1\nq 1 2\n"},
	}
	reps := []Representation{Auto, Dense, CSR, Compressed}
	for _, tc := range cases {
		for _, rep := range reps {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%s/%v: panic %v", tc.name, rep, r)
					}
				}()
				if _, err := ReadDIMACSRep(strings.NewReader(tc.input), rep); err == nil {
					t.Errorf("%s/%v: error swallowed", tc.name, rep)
				}
			}()
		}
	}
	const dup = "p edge 4 3\ne 1 2\ne 2 1\ne 3 4\n"
	for _, rep := range reps {
		g, err := ReadDIMACSRep(strings.NewReader(dup), rep)
		if err != nil {
			t.Fatalf("dup/%v: %v", rep, err)
		}
		if g.M() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(2, 3) {
			t.Errorf("dup/%v: m=%d", rep, g.M())
		}
	}
}

// Round trip through both writers from every representation.
func TestWritersAcceptEveryRepresentation(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	ref := RandomGNM(rng, 60, 400)
	for _, rep := range []Representation{Dense, CSR, Compressed} {
		g, err := Convert(ref, rep)
		if err != nil {
			t.Fatal(err)
		}
		var el, dm strings.Builder
		if err := WriteEdgeList(&el, g); err != nil {
			t.Fatalf("%v: %v", rep, err)
		}
		back, err := ReadEdgeListRep(strings.NewReader(el.String()), rep)
		if err != nil {
			t.Fatalf("%v: reread: %v", rep, err)
		}
		if back.M() != ref.M() {
			t.Errorf("%v: edge-list round trip lost edges", rep)
		}
		if err := WriteDIMACS(&dm, g); err != nil {
			t.Fatalf("%v: %v", rep, err)
		}
		back, err = ReadDIMACSRep(strings.NewReader(dm.String()), rep)
		if err != nil {
			t.Fatalf("%v: reread dimacs: %v", rep, err)
		}
		if back.M() != ref.M() {
			t.Errorf("%v: dimacs round trip lost edges", rep)
		}
	}
}
