package graph

import (
	"errors"
	"math/rand"
	"testing"
)

// failWriter injects a write failure after a byte budget, exercising the
// error paths of the graph writers.
type failWriter struct{ n int }

var errInjected = errors.New("injected write failure")

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errInjected
	}
	if len(p) > f.n {
		p = p[:f.n]
	}
	f.n -= len(p)
	return len(p), nil
}

func TestWriteEdgeListPropagatesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := RandomGNM(rng, 200, 2000)
	for _, budget := range []int{0, 2, 50, 4096} {
		if err := WriteEdgeList(&failWriter{n: budget}, g); err == nil {
			t.Errorf("budget %d: write failure swallowed", budget)
		}
	}
}

func TestWriteDIMACSPropagatesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	g := RandomGNM(rng, 200, 2000)
	for _, budget := range []int{0, 5, 100, 4096} {
		if err := WriteDIMACS(&failWriter{n: budget}, g); err == nil {
			t.Errorf("budget %d: write failure swallowed", budget)
		}
	}
}
