package graph

import (
	"fmt"
	"math/rand"
)

// The generators in this file produce the synthetic stand-ins for the
// paper's microarray-derived graphs (see DESIGN.md §2).  All take an
// explicit *rand.Rand so experiments are reproducible from a seed, as the
// paper's 10-repetition methodology requires.

// RandomGNM returns a uniform random graph with exactly n vertices and m
// edges (Erdős–Rényi G(n,m)).
func RandomGNM(rng *rand.Rand, n, m int) *Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		panic(fmt.Sprintf("graph: G(n,m) with m=%d > max %d", m, maxM))
	}
	g := New(n)
	for g.M() < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// RandomGNP returns an Erdős–Rényi G(n,p) graph: each pair is an edge
// independently with probability p.
func RandomGNP(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// PlantClique overlays a clique on the given vertices of g.
func PlantClique(g *Graph, vertices []int) {
	for i := 0; i < len(vertices); i++ {
		for j := i + 1; j < len(vertices); j++ {
			g.AddEdge(vertices[i], vertices[j])
		}
	}
}

// PlantedCliqueSpec describes one planted module for PlantedGraph.
type PlantedCliqueSpec struct {
	Size    int // vertices in the clique
	Overlap int // how many vertices are shared with the previous module
}

// PlantedGraph builds the synthetic microarray-style correlation graphs
// used throughout the reproduction: a chain of planted cliques (gene
// modules), each optionally overlapping its predecessor, on top of a
// sparse random background.  The first module is the largest and, as long
// as backgroundEdges keeps the background density far below the clique
// threshold, it is the maximum clique of the result (the paper's graphs
// have ω = 17, 110 and 28 from exactly this kind of module structure).
//
// Module vertices are chosen at spread positions (not a contiguous block)
// so that canonical vertex order does not accidentally align with clique
// membership, which would flatter ordered algorithms.
func PlantedGraph(rng *rand.Rand, n int, modules []PlantedCliqueSpec, backgroundEdges int) *Graph {
	g := New(n)
	perm := rng.Perm(n)
	next := 0
	take := func(k int) []int {
		if next+k > n {
			panic("graph: planted modules exceed vertex budget")
		}
		vs := perm[next : next+k]
		next += k
		return append([]int(nil), vs...)
	}
	var prev []int
	for mi, spec := range modules {
		if spec.Size < 2 {
			panic(fmt.Sprintf("graph: module %d size %d < 2", mi, spec.Size))
		}
		ov := spec.Overlap
		if mi == 0 {
			ov = 0
		}
		if ov > spec.Size {
			ov = spec.Size
		}
		if ov > len(prev) {
			ov = len(prev)
		}
		members := make([]int, 0, spec.Size)
		members = append(members, prev[:ov]...)
		members = append(members, take(spec.Size-ov)...)
		PlantClique(g, members)
		prev = members
	}
	// Sparse background noise (correlations that pass threshold by chance).
	for added := 0; added < backgroundEdges; {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.AddEdge(u, v)
		added++
	}
	return g
}

// TrimToEdgeCount removes random background edges until the graph has
// exactly m edges, never touching edges inside protect (a list of planted
// cliques).  Panics if the target is unreachable.
func TrimToEdgeCount(rng *rand.Rand, g *Graph, m int, protect [][]int) {
	protected := func(u, v int) bool {
		for _, clique := range protect {
			inU, inV := false, false
			for _, w := range clique {
				if w == u {
					inU = true
				}
				if w == v {
					inV = true
				}
			}
			if inU && inV {
				return true
			}
		}
		return false
	}
	if g.M() < m {
		panic(fmt.Sprintf("graph: cannot trim %d edges up to %d", g.M(), m))
	}
	edges := g.Edges()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for _, e := range edges {
		if g.M() == m {
			return
		}
		if !protected(e.U, e.V) {
			g.RemoveEdge(e.U, e.V)
		}
	}
	if g.M() != m {
		panic(fmt.Sprintf("graph: trim stuck at %d edges, want %d", g.M(), m))
	}
}
