// Package kclique implements the paper's "k-clique enumerator"
// (Section 2.2): a modification of Base Bron–Kerbosch that enumerates
// every clique of exactly size k — maximal and non-maximal — in canonical
// order.  Maximal k-cliques are reported as results; non-maximal ones are
// the seed candidates handed to the Clique Enumerator (package core),
// which continues the enumeration upward from size k.
//
// The two modifications over Base BK are exactly the paper's: (1) when
// |COMPSUB| reaches k, classify by whether NEW_CANDIDATES and NEW_NOT are
// both empty and return instead of recursing; (2) prune any node where
// |COMPSUB| + |CANDIDATES| < k.  Preprocessing removes vertices that
// cannot be in any k-clique — the paper eliminates vertices of degree
// < k-1; we run that rule to its fixed point ((k-1)-core peeling), which
// is strictly stronger and never excludes a k-clique vertex.
//
// Because Base BK selects candidates in index order, COMPSUB is strictly
// increasing along every search path.  Consequently all k-cliques sharing
// a (k-1)-vertex prefix are visited consecutively, from a single search
// node whose CANDIDATES ∪ NOT is precisely the common-neighbor set of the
// prefix — which is exactly the sub-list layout (shared prefix, prefix
// common-neighbor bitmap, tail array) the Clique Enumerator consumes, so
// seeding requires no regrouping pass.
package kclique

import (
	"repro/internal/bitset"
	"repro/internal/clique"
	"repro/internal/graph"
)

// Group is one sub-list-shaped batch of k-cliques: all share Prefix (k-1
// vertices, canonical order), and each tail vertex extends it to a
// k-clique.  PrefixCN is the common-neighbor bitmap of Prefix over the
// ORIGINAL graph's vertex universe.  MaximalTails lists tails whose
// k-clique is maximal; CandidateTails lists the rest (the Clique
// Enumerator's seed candidates).  All tails exceed Prefix's last vertex
// and are increasing.
//
// Callers must treat every field as borrowed: the enumerator reuses the
// backing storage between Group deliveries.
type Group struct {
	Prefix         []int
	PrefixCN       *bitset.Bitset
	MaximalTails   []int
	CandidateTails []int
}

// Options configures Enumerate.
type Options struct {
	// K is the clique size to enumerate; must be >= 2.
	K int
	// OnGroup, if non-nil, receives each non-empty group of k-cliques.
	OnGroup func(g Group)
	// SkipPeel disables the (k-1)-core preprocessing (for tests and
	// ablation benchmarks).
	SkipPeel bool
	// Shard and Shards split the enumeration for parallel seeding.  When
	// Shards > 1, the top-level branch vertices of the (peeled) working
	// graph are cut into Shards contiguous ranges and only range Shard
	// (0-based) is enumerated.  Every k-clique is found in exactly the
	// shard holding its smallest vertex, and Base BK's index-order
	// selection means concatenating shard outputs in shard order
	// reproduces the canonical full enumeration.  Shards <= 1 disables
	// sharding.
	Shard, Shards int
}

// Stats reports counters from one enumeration run.
type Stats struct {
	Maximal      int64 // maximal k-cliques found
	Candidates   int64 // non-maximal k-cliques found
	Groups       int64 // groups delivered
	PeeledAway   int   // vertices removed by preprocessing
	SearchNodes  int64 // EXTEND invocations
	BoundaryCuts int64 // nodes pruned by |COMPSUB|+|CANDIDATES| < k
}

// Enumerate finds every k-clique of g and reports them through
// opts.OnGroup.  It returns run statistics.
func Enumerate(g graph.Interface, opts Options) Stats {
	return prepare(g, opts.K, opts.SkipPeel).Enumerate(opts)
}

// Prepared is the peeled enumeration context: the (k-1)-core working
// graph plus its translation back to the original vertex universe.
// Preparing once and running several sharded Enumerate calls over it —
// concurrently if desired; Prepared itself is read-only during
// enumeration — avoids repeating the peel per shard, which is how the
// parallel seeder uses it.
type Prepared struct {
	orig       graph.Interface
	work       graph.Interface
	newToOld   []int
	k          int
	peeledAway int
}

// Prepare peels g for size-k enumeration.  Any representation is
// accepted; the peeled working graph keeps the input's representation,
// so sparse inputs stay sparse through seeding.
func Prepare(g graph.Interface, k int) *Prepared {
	if k < 2 {
		panic("kclique: K must be >= 2")
	}
	return prepare(g, k, false)
}

func prepare(g graph.Interface, k int, skipPeel bool) *Prepared {
	if k < 2 {
		panic("kclique: K must be >= 2")
	}
	p := &Prepared{orig: g, work: g, k: k}
	if !skipPeel {
		alive := graph.KCorePeel(g, k-1)
		if alive.Count() < g.N() {
			p.work, p.newToOld = graph.InducedSubgraph(g, alive)
			p.peeledAway = g.N() - p.work.N()
		}
	}
	return p
}

// Enumerate runs the (optionally sharded) enumeration over the prepared
// graph.  opts.K must match the prepared k; opts.SkipPeel is ignored
// (peeling already happened, or was skipped, at Prepare time).
func (p *Prepared) Enumerate(opts Options) Stats {
	if opts.K != p.k {
		panic("kclique: Options.K differs from Prepared k")
	}
	if opts.Shards > 1 && (opts.Shard < 0 || opts.Shard >= opts.Shards) {
		panic("kclique: Shard out of [0, Shards)")
	}
	st := Stats{PeeledAway: p.peeledAway}
	work := p.work
	if work.N() < p.k {
		return st
	}

	// Sharded runs reproduce the exact search state Base BK would have on
	// reaching top-level vertex `from`: vertices below the range sit in
	// NOT, the rest are candidates, and branching stops at `to`.
	from, to := 0, work.N()
	if opts.Shards > 1 {
		from = work.N() * opts.Shard / opts.Shards
		to = work.N() * (opts.Shard + 1) / opts.Shards
	}

	e := &searcher{
		g:        work,
		orig:     p.orig,
		newToOld: p.newToOld,
		k:        p.k,
		topLimit: to,
		onGroup:  opts.OnGroup,
		st:       &st,
		pool:     bitset.NewPool(work.N()),
		prefix:   make([]int, 0, p.k),
	}
	cand := bitset.New(work.N())
	cand.SetAll()
	not := bitset.New(work.N())
	for v := 0; v < from; v++ {
		cand.Clear(v)
		not.Set(v)
	}
	e.extend(cand, not)
	return st
}

type searcher struct {
	g        graph.Interface // peeled working graph
	orig     graph.Interface // original graph (for PrefixCN universes)
	newToOld []int           // nil when no peeling happened
	k        int
	topLimit int // exclusive bound on top-level branch vertices (sharding)
	onGroup  func(Group)
	st       *Stats
	pool     *bitset.Pool

	prefix    []int // COMPSUB, strictly increasing
	prefixOut []int // prefix translated to original IDs
	maxTails  []int
	candTails []int
	cnScratch *bitset.Bitset // original-universe CN, lazily allocated
}

func (e *searcher) toOld(v int) int {
	if e.newToOld == nil {
		return v
	}
	return e.newToOld[v]
}

func (e *searcher) extend(cand, not *bitset.Bitset) {
	e.st.SearchNodes++
	// Boundary condition: not enough vertices left to reach size k.
	if len(e.prefix)+cand.Count() < e.k {
		e.st.BoundaryCuts++
		return
	}
	if len(e.prefix) == e.k-1 {
		e.emitGroup(cand, not)
		return
	}

	branch := cand.Indices()
	for _, v := range branch {
		if len(e.prefix) == 0 && v >= e.topLimit {
			break // outside this shard's top-level range
		}
		rv := e.g.Row(v)
		newCand := e.pool.GetNoClear()
		rv.AndInto(newCand, cand)
		newNot := e.pool.GetNoClear()
		rv.AndInto(newNot, not)

		e.prefix = append(e.prefix, v)
		e.extend(newCand, newNot)
		e.prefix = e.prefix[:len(e.prefix)-1]

		e.pool.Put(newCand)
		e.pool.Put(newNot)

		cand.Clear(v)
		not.Set(v)
	}
}

// emitGroup classifies every k-clique prefix+t for tails t in cand and
// delivers one Group.  cand ∪ not is the common-neighbor set of the
// prefix in the working graph; it is translated to the original vertex
// universe for the PrefixCN field.
func (e *searcher) emitGroup(cand, not *bitset.Bitset) {
	e.maxTails = e.maxTails[:0]
	e.candTails = e.candTails[:0]

	tails := cand.Indices() // increasing, all > prefix max
	if len(tails) == 0 {
		return
	}
	for _, t := range tails {
		nt := e.g.Row(t)
		// The k-clique prefix+t is maximal iff no vertex is adjacent to
		// all of prefix and to t: (cand ∪ not) ∩ N(t) = ∅.  Checking the
		// two halves separately avoids materializing the union.
		if nt.IntersectsWith(cand) || nt.IntersectsWith(not) {
			e.candTails = append(e.candTails, e.toOld(t))
		} else {
			e.maxTails = append(e.maxTails, e.toOld(t))
		}
	}
	e.st.Maximal += int64(len(e.maxTails))
	e.st.Candidates += int64(len(e.candTails))
	e.st.Groups++

	if e.onGroup == nil {
		return
	}
	// Translate the prefix and its CN to original vertex IDs.
	e.prefixOut = e.prefixOut[:0]
	for _, v := range e.prefix {
		e.prefixOut = append(e.prefixOut, e.toOld(v))
	}
	if e.cnScratch == nil {
		e.cnScratch = bitset.New(e.orig.N())
	}
	cn := e.cnScratch
	if e.newToOld == nil {
		cn.Or(cand, not)
	} else {
		cn.ClearAll()
		cand.ForEach(func(v int) bool { cn.Set(e.newToOld[v]); return true })
		not.ForEach(func(v int) bool { cn.Set(e.newToOld[v]); return true })
	}
	e.onGroup(Group{
		Prefix:         e.prefixOut,
		PrefixCN:       cn,
		MaximalTails:   e.maxTails,
		CandidateTails: e.candTails,
	})
}

// All returns every k-clique of g, split into maximal and non-maximal,
// each in canonical order.  Convenience for tests and small runs.
func All(g graph.Interface, k int) (maximal, candidates []clique.Clique) {
	Enumerate(g, Options{
		K: k,
		OnGroup: func(gr Group) {
			for _, t := range gr.MaximalTails {
				c := append(clique.Clique(nil), gr.Prefix...)
				maximal = append(maximal, append(c, t))
			}
			for _, t := range gr.CandidateTails {
				c := append(clique.Clique(nil), gr.Prefix...)
				candidates = append(candidates, append(c, t))
			}
		},
	})
	return maximal, candidates
}
