package kclique

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/clique"
	"repro/internal/graph"
)

func collectAll(g *graph.Graph, k int) (maximal, cands []clique.Clique) {
	return All(g, k)
}

func TestKTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("K=1 did not panic")
		}
	}()
	Enumerate(graph.New(3), Options{K: 1})
}

func TestTriangleLevels(t *testing.T) {
	g := graph.New(4)
	graph.PlantClique(g, []int{0, 1, 2})
	g.AddEdge(2, 3)

	// k=2: edges {0,1},{0,2},{1,2},{2,3}; only {2,3} is maximal.
	max2, cand2 := collectAll(g, 2)
	if len(max2) != 1 || max2[0].Key() != "2,3" {
		t.Errorf("maximal 2-cliques = %v", max2)
	}
	if len(cand2) != 3 {
		t.Errorf("candidate 2-cliques = %v", cand2)
	}

	// k=3: only {0,1,2}, maximal.
	max3, cand3 := collectAll(g, 3)
	if len(max3) != 1 || max3[0].Key() != "0,1,2" {
		t.Errorf("maximal 3-cliques = %v", max3)
	}
	if len(cand3) != 0 {
		t.Errorf("candidate 3-cliques = %v", cand3)
	}

	// k=4: none.
	max4, cand4 := collectAll(g, 4)
	if len(max4)+len(cand4) != 0 {
		t.Errorf("4-cliques = %v %v", max4, cand4)
	}
}

func TestAgainstBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(12)
		g := graph.RandomGNP(rng, n, 0.5)
		for k := 2; k <= 5; k++ {
			maximal, cands := collectAll(g, k)
			all := append(append([]clique.Clique{}, maximal...), cands...)
			want := clique.BruteForceKCliques(g, k)
			if ok, diff := clique.SameSets(all, want); !ok {
				t.Fatalf("trial %d k=%d: %s", trial, k, diff)
			}
			// Maximality split must match the definition.
			for _, c := range maximal {
				if !g.IsMaximalClique(c) {
					t.Fatalf("trial %d k=%d: %v flagged maximal", trial, k, c)
				}
			}
			for _, c := range cands {
				if g.IsMaximalClique(c) {
					t.Fatalf("trial %d k=%d: %v flagged candidate", trial, k, c)
				}
			}
		}
	}
}

func TestCanonicalOrderAndUniqueness(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	g := graph.PlantedGraph(rng, 40, []graph.PlantedCliqueSpec{{Size: 7}}, 60)
	var all []clique.Clique
	Enumerate(g, Options{K: 3, OnGroup: func(gr Group) {
		for _, t := range gr.CandidateTails {
			all = append(all, append(append(clique.Clique{}, gr.Prefix...), t))
		}
		for _, t := range gr.MaximalTails {
			all = append(all, append(append(clique.Clique{}, gr.Prefix...), t))
		}
	}})
	seen := map[string]bool{}
	for _, c := range all {
		if !c.Canonical() {
			t.Fatalf("non-canonical %v", c)
		}
		if seen[c.Key()] {
			t.Fatalf("duplicate %v", c)
		}
		seen[c.Key()] = true
	}
}

func TestGroupPrefixCN(t *testing.T) {
	// PrefixCN must equal the common-neighbor set of the prefix in the
	// ORIGINAL graph, even when peeling reindexed the working graph.
	rng := rand.New(rand.NewSource(33))
	g := graph.PlantedGraph(rng, 30, []graph.PlantedCliqueSpec{{Size: 6}}, 25)
	want := bitset.New(g.N())
	checked := 0
	Enumerate(g, Options{K: 4, OnGroup: func(gr Group) {
		g.CommonNeighbors(want, gr.Prefix)
		if !gr.PrefixCN.Equal(want) {
			t.Fatalf("prefix %v: CN mismatch\n got %v\nwant %v",
				gr.Prefix, gr.PrefixCN, want)
		}
		checked++
	}})
	if checked == 0 {
		t.Fatal("no groups delivered")
	}
}

func TestPeelingStatsAndEquivalence(t *testing.T) {
	// A graph with a big low-degree fringe: peeling must remove it and
	// results must be unchanged.
	g := graph.New(30)
	graph.PlantClique(g, []int{0, 1, 2, 3, 4})
	for i := 5; i < 30; i++ {
		g.AddEdge(i, (i+1)%30)
	}
	stPeel := Enumerate(g, Options{K: 4})
	stNoPeel := Enumerate(g, Options{K: 4, SkipPeel: true})
	if stPeel.PeeledAway == 0 {
		t.Error("peeling removed nothing")
	}
	if stPeel.Maximal != stNoPeel.Maximal || stPeel.Candidates != stNoPeel.Candidates {
		t.Errorf("peel changed results: %+v vs %+v", stPeel, stNoPeel)
	}
	if stPeel.SearchNodes >= stNoPeel.SearchNodes {
		t.Errorf("peeling did not shrink the search: %d >= %d",
			stPeel.SearchNodes, stNoPeel.SearchNodes)
	}
}

func TestBoundaryCutFiresOnSparseGraph(t *testing.T) {
	// Disable peeling so that underfilled branches reach the boundary
	// condition |COMPSUB| + |CANDIDATES| < k.
	g := graph.New(8)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	st := Enumerate(g, Options{K: 3, SkipPeel: true})
	if st.BoundaryCuts == 0 {
		t.Error("boundary condition never fired on a path graph")
	}
	if st.Maximal != 0 && st.Candidates != 0 {
		t.Errorf("path graph has no 3-cliques: %+v", st)
	}
}

func TestTooFewVerticesAfterPeel(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	st := Enumerate(g, Options{K: 3})
	if st.Maximal+st.Candidates != 0 {
		t.Errorf("no 3-cliques exist: %+v", st)
	}
}

func TestStatsCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	g := graph.RandomGNP(rng, 14, 0.6)
	var maximal, cands int64
	st := Enumerate(g, Options{K: 3, OnGroup: func(gr Group) {
		maximal += int64(len(gr.MaximalTails))
		cands += int64(len(gr.CandidateTails))
	}})
	if st.Maximal != maximal || st.Candidates != cands {
		t.Errorf("stats %+v disagree with delivered %d/%d", st, maximal, cands)
	}
	if st.Groups == 0 || st.SearchNodes == 0 {
		t.Errorf("counters not populated: %+v", st)
	}
}

func TestLargePlantedClique(t *testing.T) {
	// Seeding scenario from the paper: Init_K below the max clique size.
	rng := rand.New(rand.NewSource(35))
	g := graph.PlantedGraph(rng, 120, []graph.PlantedCliqueSpec{{Size: 12}}, 150)
	st := Enumerate(g, Options{K: 10})
	// Every 10-subset of the planted 12-clique is a candidate 10-clique:
	// C(12,10) = 66 of them, none maximal (all extend to the 12-clique).
	if st.Candidates < 66 {
		t.Errorf("candidates = %d, want >= 66", st.Candidates)
	}
	if st.Maximal != 0 {
		// Background edges could in principle create maximal 10-cliques,
		// but at this density they cannot.
		t.Errorf("maximal 10-cliques = %d, want 0", st.Maximal)
	}
}

func BenchmarkSeedK10Planted(b *testing.B) {
	rng := rand.New(rand.NewSource(36))
	g := graph.PlantedGraph(rng, 500, []graph.PlantedCliqueSpec{{Size: 14}}, 900)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Enumerate(g, Options{K: 10, OnGroup: func(Group) {}})
	}
}

// TestShardedEnumerationMatchesFull: concatenating shard outputs in shard
// order must reproduce the unsharded enumeration exactly — same groups,
// same order, same classification — since every k-clique lives in the
// shard of its smallest vertex.  This is the invariant the parallel
// seeder builds on.
func TestShardedEnumerationMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := graph.PlantedGraph(rng, 70, []graph.PlantedCliqueSpec{
		{Size: 9}, {Size: 6, Overlap: 2},
	}, 150)
	type flatGroup struct {
		prefix []int
		maxT   []int
		candT  []int
	}
	collect := func(shard, shards int) ([]flatGroup, Stats) {
		var out []flatGroup
		st := Enumerate(g, Options{
			K:      4,
			Shard:  shard,
			Shards: shards,
			OnGroup: func(gr Group) {
				out = append(out, flatGroup{
					prefix: append([]int(nil), gr.Prefix...),
					maxT:   append([]int(nil), gr.MaximalTails...),
					candT:  append([]int(nil), gr.CandidateTails...),
				})
			},
		})
		return out, st
	}
	full, fullStats := collect(0, 1)
	for _, shards := range []int{2, 3, 7, 16} {
		var merged []flatGroup
		var maximal, candidates, groups int64
		for s := 0; s < shards; s++ {
			part, st := collect(s, shards)
			merged = append(merged, part...)
			maximal += st.Maximal
			candidates += st.Candidates
			groups += st.Groups
		}
		if len(merged) != len(full) {
			t.Fatalf("shards=%d: %d groups, want %d", shards, len(merged), len(full))
		}
		for i := range full {
			if !equalInts(merged[i].prefix, full[i].prefix) ||
				!equalInts(merged[i].maxT, full[i].maxT) ||
				!equalInts(merged[i].candT, full[i].candT) {
				t.Fatalf("shards=%d: group %d differs: %+v vs %+v",
					shards, i, merged[i], full[i])
			}
		}
		if maximal != fullStats.Maximal || candidates != fullStats.Candidates || groups != fullStats.Groups {
			t.Errorf("shards=%d: summed stats %d/%d/%d, want %d/%d/%d", shards,
				maximal, candidates, groups,
				fullStats.Maximal, fullStats.Candidates, fullStats.Groups)
		}
	}
}

func TestShardOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Shard >= Shards did not panic")
		}
	}()
	Enumerate(graph.New(10), Options{K: 2, Shard: 3, Shards: 2})
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
