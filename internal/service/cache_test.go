package service_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/service"
)

func TestCacheLRUEviction(t *testing.T) {
	c := service.NewCache(100)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), "t", bytes.Repeat([]byte{byte(i)}, 25))
	}
	// Touch k0 so k1 is the LRU victim when k4 arrives.
	if _, _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.Put("k4", "t", bytes.Repeat([]byte{4}, 25))
	if _, _, ok := c.Get("k1"); ok {
		t.Fatal("k1 should have been evicted as LRU")
	}
	for _, k := range []string{"k0", "k2", "k3", "k4"} {
		if _, _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	st := c.Stats()
	if st.Entries != 4 || st.Bytes != 100 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCacheOversizedAndDisabled(t *testing.T) {
	c := service.NewCache(100)
	if c.EntryLimit() != 25 {
		t.Fatalf("entry limit %d", c.EntryLimit())
	}
	c.Put("big", "t", make([]byte, 26)) // over a quarter of capacity
	if _, _, ok := c.Get("big"); ok {
		t.Fatal("oversized body was cached")
	}
	off := service.NewCache(0)
	if off.EntryLimit() != 0 {
		t.Fatal("disabled cache has a nonzero entry limit")
	}
	off.Put("k", "t", []byte("x"))
	if _, _, ok := off.Get("k"); ok {
		t.Fatal("disabled cache stored a body")
	}
}

func TestCacheReplaceAndInvalidate(t *testing.T) {
	c := service.NewCache(1000)
	c.Put("fp1|a", "t", []byte("one"))
	c.Put("fp1|b", "t", []byte("two"))
	c.Put("fp2|a", "t", []byte("three"))
	c.Put("fp1|a", "t", []byte("replaced"))
	if body, _, _ := c.Get("fp1|a"); string(body) != "replaced" {
		t.Fatalf("replace failed: %q", body)
	}
	c.Invalidate("fp1|")
	if _, _, ok := c.Get("fp1|a"); ok {
		t.Fatal("fp1|a survived invalidation")
	}
	if _, _, ok := c.Get("fp1|b"); ok {
		t.Fatal("fp1|b survived invalidation")
	}
	if _, _, ok := c.Get("fp2|a"); !ok {
		t.Fatal("fp2|a was invalidated by another graph's prefix")
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != 5 {
		t.Fatalf("stats after invalidate: %+v", st)
	}
}

func TestRegistryBusyAndRefcounts(t *testing.T) {
	upload := testGraphBytes(t, 13, 30, 0.2)
	srv, ts := newServer(t, service.Config{})
	fp := loadGraph(t, ts, upload)

	e, err := srv.Registry().Acquire(fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Registry().Remove(fp); err == nil {
		t.Fatal("Remove succeeded while a query holds the graph")
	}
	srv.Registry().Release(e)
	if err := srv.Registry().Remove(fp); err != nil {
		t.Fatalf("Remove after release: %v", err)
	}
	if srv.Registry().Len() != 0 {
		t.Fatal("registry not empty after remove")
	}
	if used := srv.Governor().Used(); used != 0 {
		t.Fatalf("remove left %d bytes pinned", used)
	}
}
