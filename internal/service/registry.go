package service

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro"
	"repro/internal/membudget"
)

// Registry holds the loaded graphs, keyed by fingerprint.  Each entry
// pins its adjacency bytes under a membudget.Reservation carved from
// the shared server governor, so loaded graphs and running queries
// compete for the same budget and /healthz's governor numbers are the
// true resident total.  Queries take a reference on their graph for the
// duration of the run; eviction refuses while references are out.
type Registry struct {
	gov    *membudget.Governor
	mu     sync.Mutex
	graphs map[string]*GraphEntry
}

// GraphEntry is one loaded graph.  Immutable after Add except the
// reference count, which the Registry guards.
type GraphEntry struct {
	Fingerprint string
	Name        string
	G           repro.GraphInterface
	LoadedAt    time.Time

	gov   *membudget.Governor // the pin reservation's child governor
	res   *membudget.Reservation
	bytes int64
	refs  int // guarded by Registry.mu
}

// close releases the graph's pinned adjacency bytes and returns its
// reservation to the server governor.
func (e *GraphEntry) close() {
	e.gov.Release(e.bytes)
	e.res.Close()
}

// GraphInfo is the JSON view of a loaded graph.
type GraphInfo struct {
	Fingerprint    string  `json:"fingerprint"`
	Name           string  `json:"name,omitempty"`
	N              int     `json:"n"`
	M              int     `json:"m"`
	Density        float64 `json:"density"`
	Representation string  `json:"representation"`
	AdjacencyBytes int64   `json:"adjacency_bytes"`
	LoadedAt       string  `json:"loaded_at"`
	ActiveQueries  int     `json:"active_queries"`
}

// NewRegistry returns an empty registry pinning against gov.
func NewRegistry(gov *membudget.Governor) *Registry {
	return &Registry{gov: gov, graphs: make(map[string]*GraphEntry)}
}

// Add registers g under its fingerprint, pinning its adjacency bytes
// against the server budget.  Loading the same graph twice is
// idempotent: the existing entry is returned with loaded=false and no
// additional memory is pinned.  Admission failure (the graph does not
// fit the remaining budget) is returned as membudget.ErrNoHeadroom.
func (r *Registry) Add(name string, g repro.GraphInterface) (e *GraphEntry, loaded bool, err error) {
	fp := repro.Fingerprint(g)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.graphs[fp]; ok {
		return e, false, nil
	}
	res, err := r.gov.Reserve(g.Bytes())
	if err != nil {
		return nil, false, fmt.Errorf("graph %s (%d adjacency bytes): %w", fp, g.Bytes(), err)
	}
	e = &GraphEntry{
		Fingerprint: fp,
		Name:        name,
		G:           g,
		LoadedAt:    time.Now(),
		gov:         res.Governor(),
		res:         res,
		bytes:       g.Bytes(),
	}
	// The graph is resident from this moment: charge its bytes so the
	// shared governor's Used is the truth, not just its Reserved.
	// GraphEntry.close releases the pair.  This pin is the *only* charge
	// the adjacency bytes ever get — queries on the graph run under
	// repro.WithGraphCharged, so Used counts each loaded graph once,
	// not once more per active query.
	e.gov.Charge(e.bytes)
	r.graphs[fp] = e
	return e, true, nil
}

// Acquire returns the entry for fp with a reference taken; callers must
// Release it when their query ends.
func (r *Registry) Acquire(fp string) (*GraphEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.graphs[fp]
	if !ok {
		return nil, fmt.Errorf("no graph with fingerprint %s", fp)
	}
	e.refs++
	return e, nil
}

// Release returns a reference taken by Acquire.
func (r *Registry) Release(e *GraphEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e.refs--
}

// Remove evicts the graph, releasing its pinned bytes.  It refuses
// (ErrGraphBusy) while queries hold references.
func (r *Registry) Remove(fp string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.graphs[fp]
	if !ok {
		return fmt.Errorf("no graph with fingerprint %s", fp)
	}
	if e.refs > 0 {
		return fmt.Errorf("%w: %d active queries", ErrGraphBusy, e.refs)
	}
	delete(r.graphs, fp)
	e.close()
	return nil
}

// Len returns the number of loaded graphs.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.graphs)
}

// List returns the loaded graphs' info, fingerprint-sorted.
func (r *Registry) List() []GraphInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]GraphInfo, 0, len(r.graphs))
	for _, e := range r.graphs {
		out = append(out, e.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out
}

// Info returns one graph's info.
func (r *Registry) Info(fp string) (GraphInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.graphs[fp]
	if !ok {
		return GraphInfo{}, false
	}
	return e.info(), true
}

// info builds the JSON view; callers hold Registry.mu.
func (e *GraphEntry) info() GraphInfo {
	return GraphInfo{
		Fingerprint:    e.Fingerprint,
		Name:           e.Name,
		N:              e.G.N(),
		M:              e.G.M(),
		Density:        repro.Density(e.G),
		Representation: e.G.Representation().String(),
		AdjacencyBytes: e.bytes,
		LoadedAt:       e.LoadedAt.UTC().Format(time.RFC3339),
		ActiveQueries:  e.refs,
	}
}
