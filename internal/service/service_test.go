package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/graph"
	"repro/internal/service"
)

// testGraphBytes builds a deterministic test graph and returns its
// edge-list serialization — the bytes a client would upload.
func testGraphBytes(t *testing.T, seed int64, n int, p float64) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomGNP(rng, n, p)
	repro.PlantClique(g, []int{0, 1, 2, 3, 4, 5})
	repro.PlantClique(g, []int{3, 4, 5, 6, 7})
	var buf bytes.Buffer
	if err := repro.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newServer starts an httptest server over a fresh service.
func newServer(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	srv := service.New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// loadGraph uploads body and returns the fingerprint the service
// assigned.
func loadGraph(t *testing.T, ts *httptest.Server, body []byte) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/graphs", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("load graph: status %d: %s", resp.StatusCode, b)
	}
	var info struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info.Fingerprint
}

// get fetches a URL and returns status, the X-Cliqued-Cache header, and
// the whole body.
func get(t *testing.T, url string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("X-Cliqued-Cache"), body
}

// expectedText enumerates the same uploaded bytes locally and renders
// them exactly as cmd/cliquer prints cliques — the parity oracle.
func expectedText(t *testing.T, upload []byte, lo, hi int) string {
	t.Helper()
	g, err := repro.ReadGraph(bytes.NewReader(upload), repro.FormatAuto, repro.Auto)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for c, err := range repro.NewEnumerator(repro.WithBounds(lo, hi)).Cliques(context.Background(), g) {
		if err != nil {
			t.Fatal(err)
		}
		names := make([]string, len(c))
		for i, v := range c {
			names[i] = g.Name(v)
		}
		sb.WriteString(strings.Join(names, " "))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestStreamParityAcrossBackendsAndCache is the service's acceptance
// parity test: the text stream equals the cliquer-rendered enumeration
// byte for byte — from the sequential backend, from the parallel
// backend (on a cache-disabled server, so it really runs), and from a
// cached replay, which must also announce itself via X-Cliqued-Cache.
func TestStreamParityAcrossBackendsAndCache(t *testing.T) {
	upload := testGraphBytes(t, 42, 60, 0.15)
	want := expectedText(t, upload, 3, 0)
	if strings.Count(want, "\n") < 5 {
		t.Fatalf("test graph yields only %d cliques; too weak", strings.Count(want, "\n"))
	}

	_, ts := newServer(t, service.Config{})
	fp := loadGraph(t, ts, upload)

	status, cache, body := get(t, ts.URL+"/graphs/"+fp+"/cliques?format=text&lo=3")
	if status != http.StatusOK || cache != "miss" {
		t.Fatalf("first query: status %d cache %q", status, cache)
	}
	if string(body) != want {
		t.Fatalf("sequential stream diverges from cliquer output:\ngot %d bytes\nwant %d bytes", len(body), len(want))
	}

	status, cache, body = get(t, ts.URL+"/graphs/"+fp+"/cliques?format=text&lo=3")
	if status != http.StatusOK || cache != "hit" {
		t.Fatalf("repeat query: status %d cache %q, want a cache hit", status, cache)
	}
	if string(body) != want {
		t.Fatal("cached replay diverges from the original stream")
	}

	// A different execution policy maps to the same cache key on
	// purpose — the backends are parity-pinned — so exercise the
	// parallel and low-memory backends on a cache-disabled server.
	_, ts2 := newServer(t, service.Config{CacheBytes: -1})
	fp2 := loadGraph(t, ts2, upload)
	for _, q := range []string{
		"workers=3&strategy=affinity",
		"workers=2&strategy=contiguous",
		"mode=lowmem",
	} {
		status, cache, body = get(t, ts2.URL+"/graphs/"+fp2+"/cliques?format=text&lo=3&"+q)
		if status != http.StatusOK || cache != "miss" {
			t.Fatalf("%s: status %d cache %q", q, status, cache)
		}
		if string(body) != want {
			t.Fatalf("%s: stream diverges from cliquer output", q)
		}
	}
}

// TestNDJSONStream checks the default wire format: one record per
// clique and a terminal done-summary whose count matches.
func TestNDJSONStream(t *testing.T) {
	upload := testGraphBytes(t, 7, 50, 0.15)
	_, ts := newServer(t, service.Config{})
	fp := loadGraph(t, ts, upload)

	status, cache, body := get(t, ts.URL+"/graphs/"+fp+"/cliques?lo=3")
	if status != http.StatusOK || cache != "miss" {
		t.Fatalf("status %d cache %q", status, cache)
	}
	lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("stream has %d lines", len(lines))
	}
	for _, ln := range lines[:len(lines)-1] {
		var rec struct {
			Size     int   `json:"size"`
			Vertices []int `json:"vertices"`
		}
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("bad NDJSON record %q: %v", ln, err)
		}
		if rec.Size != len(rec.Vertices) || rec.Size < 3 {
			t.Fatalf("record %q: size/vertices mismatch", ln)
		}
	}
	var sum struct {
		Done    bool   `json:"done"`
		Count   int64  `json:"count"`
		Backend string `json:"backend"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil {
		t.Fatalf("bad summary %q: %v", lines[len(lines)-1], err)
	}
	if !sum.Done || sum.Count != int64(len(lines)-1) || sum.Backend == "" {
		t.Fatalf("summary %+v does not match the %d streamed records", sum, len(lines)-1)
	}

	// Cached NDJSON replay is byte-identical, summary included.
	_, cache2, body2 := get(t, ts.URL+"/graphs/"+fp+"/cliques?lo=3")
	if cache2 != "hit" || !bytes.Equal(body, body2) {
		t.Fatalf("cached NDJSON replay differs (cache=%q)", cache2)
	}
}

// TestClientDisconnectMidStream is the multi-tenancy cleanup test: a
// client that hangs up mid-stream must cancel the run and return its
// whole reservation, leaving the governor at the pinned-graphs
// baseline with no residual charges.
func TestClientDisconnectMidStream(t *testing.T) {
	upload := testGraphBytes(t, 9, 120, 0.25) // big enough to stream for a while
	srv, ts := newServer(t, service.Config{Budget: 1 << 30})
	fp := loadGraph(t, ts, upload)
	baseline := srv.Governor().Used() // the pinned graph

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/graphs/"+fp+"/cliques?format=text&lo=3", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one chunk of the live stream, then hang up.
	buf := make([]byte, 256)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("reading the stream head: %v", err)
	}
	cancel()
	resp.Body.Close()

	// The handler notices on its next write, cancels the run, and
	// closes the lease; poll until the governor is back to baseline.
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := srv.Snapshot()
		if snap.Active == 0 && snap.Governor.Used == baseline &&
			snap.Governor.Reserved == baseline {
			if snap.ResidualBytes != 0 {
				t.Fatalf("disconnect left %d residual bytes", snap.ResidualBytes)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("governor never returned to baseline: %+v (baseline %d)",
				snap.Governor, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The server is still healthy and the graph still serves queries.
	status, _, _ := get(t, ts.URL+"/graphs/"+fp+"/cliques?format=text&lo=4")
	if status != http.StatusOK {
		t.Fatalf("query after disconnect: status %d", status)
	}
}

// TestAdmissionShedding drives the service's shedding paths over HTTP:
// a reservation that can never fit is refused outright (507), and a
// full budget with no headroom appearing within QueueWait sheds with
// 503 + Retry-After.
func TestAdmissionShedding(t *testing.T) {
	upload := testGraphBytes(t, 5, 40, 0.15)
	srv, ts := newServer(t, service.Config{
		Budget:    8 << 20,
		QueueWait: 50 * time.Millisecond,
	})
	fp := loadGraph(t, ts, upload)

	// mem= beyond the whole budget: never fits, immediate 507.
	status, _, body := get(t, ts.URL+"/graphs/"+fp+"/cliques?mem=16777217&format=text")
	if status != http.StatusInsufficientStorage {
		t.Fatalf("oversized mem=: status %d body %s", status, body)
	}

	// Occupy the remaining budget so a well-sized query queues, times
	// out, and is shed with the retry hint.
	res, err := srv.Governor().Reserve(srv.Governor().Budget() - srv.Governor().Reserved())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/graphs/" + fp + "/cliques?mem=1048576&format=text")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("full budget: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// Headroom returns; the same query is admitted.
	res.Close()
	status, _, _ = get(t, ts.URL+"/graphs/"+fp+"/cliques?mem=1048576&format=text")
	if status != http.StatusOK {
		t.Fatalf("after release: status %d", status)
	}
}

// TestGraphLifecycle covers load (201), idempotent reload (200), list,
// info, eviction, and the 404 after.
func TestGraphLifecycle(t *testing.T) {
	upload := testGraphBytes(t, 3, 30, 0.2)
	srv, ts := newServer(t, service.Config{})
	fp := loadGraph(t, ts, upload)
	baseline := srv.Governor().Used()
	if baseline == 0 {
		t.Fatal("loaded graph pinned no bytes")
	}

	// Reload: same fingerprint, 200, no extra pin.
	resp, err := http.Post(ts.URL+"/graphs?name=again", "text/plain", bytes.NewReader(upload))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: status %d, want 200", resp.StatusCode)
	}
	if srv.Governor().Used() != baseline {
		t.Fatal("idempotent reload pinned additional bytes")
	}

	status, _, body := get(t, ts.URL+"/graphs")
	if status != http.StatusOK || !strings.Contains(string(body), fp) {
		t.Fatalf("list: status %d body %s", status, body)
	}
	status, _, _ = get(t, ts.URL+"/graphs/"+fp)
	if status != http.StatusOK {
		t.Fatalf("info: status %d", status)
	}

	// Warm the cache, then evict: pinned bytes return, cached streams
	// for the graph are invalidated, and queries 404.
	if status, _, _ := get(t, ts.URL+"/graphs/"+fp+"/cliques?lo=3"); status != http.StatusOK {
		t.Fatal("warmup query failed")
	}
	req, _ := http.NewRequest("DELETE", ts.URL+"/graphs/"+fp, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evict: status %d", resp.StatusCode)
	}
	if used := srv.Governor().Used(); used != 0 {
		t.Fatalf("evicted graph left %d bytes pinned", used)
	}
	if srv.Snapshot().Cache.Entries != 0 {
		t.Fatal("eviction left the graph's cached streams behind")
	}
	status, _, _ = get(t, ts.URL+"/graphs/"+fp+"/cliques?lo=3")
	if status != http.StatusNotFound {
		t.Fatalf("query after eviction: status %d, want 404", status)
	}
}

// TestGraphTooLargeForBudget: a graph whose adjacency cannot fit the
// server budget is refused at load with 507.
func TestGraphTooLargeForBudget(t *testing.T) {
	upload := testGraphBytes(t, 8, 100, 0.3)
	_, ts := newServer(t, service.Config{Budget: 1024})
	resp, err := http.Post(ts.URL+"/graphs", "text/plain", bytes.NewReader(upload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("status %d, want 507", resp.StatusCode)
	}
}

// TestMaxCliqueEndpoint checks the exact search and its cache entry.
func TestMaxCliqueEndpoint(t *testing.T) {
	upload := testGraphBytes(t, 42, 60, 0.15)
	g, err := repro.ReadGraph(bytes.NewReader(upload), repro.FormatAuto, repro.Auto)
	if err != nil {
		t.Fatal(err)
	}
	want := len(repro.MaxClique(g))

	_, ts := newServer(t, service.Config{})
	fp := loadGraph(t, ts, upload)
	status, cache, body := get(t, ts.URL+"/graphs/"+fp+"/maxclique")
	if status != http.StatusOK || cache != "miss" {
		t.Fatalf("status %d cache %q", status, cache)
	}
	var out struct {
		Size     int   `json:"size"`
		Vertices []int `json:"vertices"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Size != want || len(out.Vertices) != want {
		t.Fatalf("maxclique size %d, want %d", out.Size, want)
	}
	if _, cache, _ := get(t, ts.URL+"/graphs/"+fp+"/maxclique"); cache != "hit" {
		t.Fatal("repeat maxclique missed the cache")
	}
}

// TestParacliquesEndpoint compares the endpoint against the facade.
func TestParacliquesEndpoint(t *testing.T) {
	upload := testGraphBytes(t, 42, 60, 0.15)
	g, err := repro.ReadGraph(bytes.NewReader(upload), repro.FormatAuto, repro.Auto)
	if err != nil {
		t.Fatal(err)
	}
	want, err := repro.NewEnumerator(repro.WithBounds(4, 0)).Paracliques(context.Background(), g, 0.9)
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newServer(t, service.Config{})
	fp := loadGraph(t, ts, upload)
	status, _, body := get(t, ts.URL+"/graphs/"+fp+"/paracliques?lo=4&glom=0.9")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var out struct {
		Count       int `json:"count"`
		Paracliques []struct {
			Vertices []int   `json:"vertices"`
			CoreSize int     `json:"core_size"`
			Density  float64 `json:"density"`
		} `json:"paracliques"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != len(want) {
		t.Fatalf("endpoint found %d paracliques, facade %d", out.Count, len(want))
	}
	for i, p := range out.Paracliques {
		if p.CoreSize != want[i].CoreSize || len(p.Vertices) != len(want[i].Vertices) {
			t.Fatalf("paraclique %d diverges from the facade", i)
		}
	}
}

// TestPathwaysEndpoint runs a tiny linear pathway through the EFM
// endpoint.
func TestPathwaysEndpoint(t *testing.T) {
	_, ts := newServer(t, service.Config{})
	reqBody := `{
		"metabolites": ["A", "B"],
		"reactions": [
			{"name": "in",  "reversible": false, "stoich": {"0": 1}},
			{"name": "mid", "reversible": false, "stoich": {"0": -1, "1": 1}},
			{"name": "out", "reversible": false, "stoich": {"1": -1}}
		]
	}`
	resp, err := http.Post(ts.URL+"/pathways", "application/json", strings.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var out struct {
		Count int `json:"count"`
		Modes []struct {
			Flux    []string `json:"flux"`
			Support []int    `json:"support"`
		} `json:"modes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 1 || len(out.Modes) != 1 || len(out.Modes[0].Support) != 3 {
		t.Fatalf("linear chain EFMs = %+v, want one mode through all three reactions", out)
	}
}

// TestBadRequests sweeps the 4xx surface.
func TestBadRequests(t *testing.T) {
	upload := testGraphBytes(t, 2, 30, 0.2)
	_, ts := newServer(t, service.Config{})
	fp := loadGraph(t, ts, upload)

	for _, c := range []struct {
		url  string
		want int
	}{
		{"/graphs/deadbeef00000000/cliques", http.StatusNotFound},
		{"/graphs/deadbeef00000000", http.StatusNotFound},
		{"/graphs/" + fp + "/cliques?lo=x", http.StatusBadRequest},
		{"/graphs/" + fp + "/cliques?strategy=quantum", http.StatusBadRequest},
		{"/graphs/" + fp + "/cliques?format=xml", http.StatusBadRequest},
		{"/graphs/" + fp + "/cliques?mode=turbo", http.StatusBadRequest},
		{"/graphs/" + fp + "/cliques?mem=-3", http.StatusBadRequest},
		{"/graphs/" + fp + "/cliques?workers=-2", http.StatusBadRequest},
		{"/graphs/" + fp + "/paracliques?glom=1.5", http.StatusBadRequest},
	} {
		status, _, body := get(t, ts.URL+c.url)
		if status != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.url, status, c.want, body)
		}
	}

	resp, err := http.Post(ts.URL+"/graphs", "text/plain", strings.NewReader("not a graph\n!!!\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload: status %d, want 400", resp.StatusCode)
	}
}

// TestWorkersClamped pins the ungoverned-allocation fix: the parallel
// pool sizes per-worker scratch straight from workers= before the
// governor sees a byte, so an absurd count must be clamped to the
// configured maximum, not sized into allocations.  The request still
// succeeds — with the clamped pool — and streams the same bytes as a
// sequential run.
func TestWorkersClamped(t *testing.T) {
	upload := testGraphBytes(t, 11, 40, 0.2)
	want := expectedText(t, upload, 3, 0)
	_, ts := newServer(t, service.Config{CacheBytes: -1, MaxWorkers: 2})
	fp := loadGraph(t, ts, upload)
	status, _, body := get(t, ts.URL+"/graphs/"+fp+"/cliques?format=text&lo=3&workers=2000000000")
	if status != http.StatusOK {
		t.Fatalf("huge workers=: status %d body %s", status, body)
	}
	if string(body) != want {
		t.Fatal("clamped parallel stream diverges from cliquer output")
	}
}

// TestHealthz sanity-checks the snapshot wiring.
func TestHealthz(t *testing.T) {
	upload := testGraphBytes(t, 2, 30, 0.2)
	srv, ts := newServer(t, service.Config{Budget: 1 << 28})
	fp := loadGraph(t, ts, upload)
	if status, _, _ := get(t, ts.URL+"/graphs/"+fp+"/cliques?lo=3"); status != http.StatusOK {
		t.Fatal("query failed")
	}
	status, _, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz: status %d", status)
	}
	var snap service.Stats
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Status != "ok" || snap.Graphs != 1 || snap.Queries < 1 {
		t.Fatalf("healthz snapshot %+v", snap)
	}
	if snap.Governor.Budget != 1<<28 || snap.Governor.Used != srv.Governor().Used() {
		t.Fatalf("healthz governor %+v", snap.Governor)
	}
	if fmt.Sprint(snap.ResidualBytes) != "0" {
		t.Fatalf("healthz reports %d residual bytes", snap.ResidualBytes)
	}
}
