package service_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/membudget"
	"repro/internal/service"
)

func TestAdmissionImmediate(t *testing.T) {
	a := service.NewAdmission(membudget.New(100), 4, time.Second)
	lease, err := a.Acquire(context.Background(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Amount() != 60 {
		t.Fatalf("lease amount %d", lease.Amount())
	}
	if residual := lease.Close(); residual != 0 {
		t.Fatalf("clean lease closed with residual %d", residual)
	}
	// Idempotent close.
	if residual := lease.Close(); residual != 0 {
		t.Fatalf("double close returned %d", residual)
	}
}

func TestAdmissionNeverFits(t *testing.T) {
	a := service.NewAdmission(membudget.New(100), 4, time.Minute)
	start := time.Now()
	_, err := a.Acquire(context.Background(), 101)
	if !errors.Is(err, membudget.ErrNoHeadroom) {
		t.Fatalf("error = %v, want ErrNoHeadroom", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("an impossible reservation waited in the queue")
	}
}

func TestAdmissionQueueFullAndTimeout(t *testing.T) {
	gov := membudget.New(100)
	a := service.NewAdmission(gov, 1, 80*time.Millisecond)
	hold, err := a.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}

	// First excess query occupies the single queue slot and times out.
	done := make(chan error, 1)
	go func() {
		_, err := a.Acquire(context.Background(), 50)
		done <- err
	}()
	// Wait until it is queued, then a second one must be shed at once.
	deadline := time.Now().Add(2 * time.Second)
	for a.Queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first query never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := a.Acquire(context.Background(), 50); !errors.Is(err, service.ErrQueueFull) {
		t.Fatalf("second queued query: error = %v, want ErrQueueFull", err)
	}
	if err := <-done; !errors.Is(err, service.ErrQueueTimeout) {
		t.Fatalf("queued query: error = %v, want ErrQueueTimeout", err)
	}
	hold.Close()
}

func TestAdmissionWakeupOnClose(t *testing.T) {
	gov := membudget.New(100)
	a := service.NewAdmission(gov, 4, 10*time.Second)
	hold, err := a.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		lease *service.Lease
		err   error
	}
	done := make(chan result, 1)
	go func() {
		l, err := a.Acquire(context.Background(), 40)
		done <- result{l, err}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for a.Queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never queued")
		}
		time.Sleep(time.Millisecond)
	}
	hold.Close() // signals the queue
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("queued query after release: %v", r.err)
		}
		r.lease.Close()
	case <-time.After(5 * time.Second):
		t.Fatal("queued query was never woken by the lease close")
	}
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	gov := membudget.New(100)
	a := service.NewAdmission(gov, 4, 10*time.Second)
	hold, err := a.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx, 40)
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for a.Queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled queued query: error = %v", err)
	}
	if a.Queued() != 0 {
		t.Fatal("canceled query still counted as queued")
	}
}

// TestAdmissionSignalRacesReserve pins the lost-wakeup fix: a lease
// that closes in the window between a waiter's failed Reserve and its
// select must still wake the waiter.  The hold is closed without
// waiting for the waiter to be queued, so the Signal often lands
// exactly in that window; because the waiter captures the generation
// channel *before* each Reserve attempt, the close is never missed and
// every iteration must admit long before the (deliberately long) queue
// timeout.
func TestAdmissionSignalRacesReserve(t *testing.T) {
	gov := membudget.New(100)
	a := service.NewAdmission(gov, 4, 30*time.Second)
	for i := 0; i < 200; i++ {
		hold, err := a.Acquire(context.Background(), 100)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			l, err := a.Acquire(context.Background(), 100)
			if err == nil {
				l.Close()
			}
			done <- err
		}()
		hold.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("iteration %d: waiter missed the close signal", i)
		}
	}
}

// TestAdmissionConcurrent hammers the controller: many goroutines
// acquire-and-release; the governor must end at zero with peak within
// budget, and nobody deadlocks.
func TestAdmissionConcurrent(t *testing.T) {
	gov := membudget.New(1000)
	a := service.NewAdmission(gov, 64, 10*time.Second)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				lease, err := a.Acquire(context.Background(), 100)
				if err != nil {
					t.Error(err)
					return
				}
				lease.Governor().Charge(100)
				lease.Governor().Release(100)
				lease.Close()
			}
		}()
	}
	wg.Wait()
	if gov.Used() != 0 || gov.Reserved() != 0 {
		t.Fatalf("governor not at baseline: used=%d reserved=%d", gov.Used(), gov.Reserved())
	}
	if gov.Peak() > 1000 {
		t.Fatalf("peak %d exceeds budget", gov.Peak())
	}
}
