package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/enumcfg"
	"repro/internal/membudget"
)

// writeJSON writes a JSON response.  Encode errors mean the client hung
// up mid-body; there is no channel left to report on.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errorJSON writes the uniform error envelope.
func errorJSON(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// shed maps an admission failure to its HTTP response: queue-full and
// queue-timeout become 503 + Retry-After, a reservation that can never
// fit becomes 507, and a client that hung up while queued gets nothing.
func (s *Server) shed(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrQueueTimeout):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds()+0.5)))
		errorJSON(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, membudget.ErrNoHeadroom):
		errorJSON(w, http.StatusInsufficientStorage, "%v", err)
	default:
		// Client disconnected while queued; the connection is gone.
	}
}

// ---- graph management -------------------------------------------------

func (s *Server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	format, err := repro.ParseGraphFormat(r.URL.Query().Get("format"))
	if err != nil {
		errorJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	rep, err := repro.ParseRepresentation(valueOr(r.URL.Query().Get("rep"), "auto"))
	if err != nil {
		errorJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The body streams straight into the graph builder — an uploaded
	// genome-scale edge list never touches a temp file.
	g, err := repro.ReadGraph(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), format, rep)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, "parse graph: %v", err)
		return
	}
	e, loaded, err := s.reg.Add(r.URL.Query().Get("name"), g)
	if err != nil {
		if errors.Is(err, membudget.ErrNoHeadroom) {
			errorJSON(w, http.StatusInsufficientStorage, "load graph: %v", err)
		} else {
			errorJSON(w, http.StatusInternalServerError, "load graph: %v", err)
		}
		return
	}
	info, _ := s.reg.Info(e.Fingerprint)
	status := http.StatusOK
	if loaded {
		status = http.StatusCreated
	}
	writeJSON(w, status, info)
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.reg.List()})
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	info, ok := s.reg.Info(r.PathValue("fp"))
	if !ok {
		errorJSON(w, http.StatusNotFound, "no graph with fingerprint %s", r.PathValue("fp"))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	if err := s.reg.Remove(fp); err != nil {
		if errors.Is(err, ErrGraphBusy) {
			errorJSON(w, http.StatusConflict, "%v", err)
		} else {
			errorJSON(w, http.StatusNotFound, "%v", err)
		}
		return
	}
	// The graph's streams can never be served again; its headroom can.
	s.cache.Invalidate(fp + "|")
	s.adm.Signal()
	writeJSON(w, http.StatusOK, map[string]string{"evicted": fp})
}

// ---- enumerate queries ------------------------------------------------

// cliqueQuery is one parsed enumerate request.
type cliqueQuery struct {
	lo, hi  int
	workers int
	strat   repro.Strategy
	mode    string // "", "lowmem", "wah"
	small   bool
	rep     repro.Representation
	repSet  bool
	mem     int64
	format  string // "ndjson" or "text"
}

// parseCliqueQuery decodes and validates the query parameters all
// enumeration endpoints share.  maxWorkers caps workers=: the parallel
// pool allocates per-worker scratch before the governor sees a byte, so
// an unbounded count would be an ungoverned allocation a single request
// controls.  Requests above the cap are clamped — more workers than
// the server allows cannot stream different bytes, only waste memory.
func parseCliqueQuery(r *http.Request, maxWorkers int) (q cliqueQuery, err error) {
	v := r.URL.Query()
	if q.lo, err = intParam(v.Get("lo"), 3); err != nil {
		return q, fmt.Errorf("lo: %v", err)
	}
	if q.hi, err = intParam(v.Get("hi"), 0); err != nil {
		return q, fmt.Errorf("hi: %v", err)
	}
	if q.workers, err = intParam(v.Get("workers"), 1); err != nil {
		return q, fmt.Errorf("workers: %v", err)
	}
	if q.workers < 0 {
		return q, fmt.Errorf("workers: want a non-negative count, got %d", q.workers)
	}
	if q.workers > maxWorkers {
		q.workers = maxWorkers
	}
	switch v.Get("strategy") {
	case "", "contiguous":
		q.strat = repro.Contiguous
	case "affinity":
		q.strat = repro.Affinity
	default:
		return q, fmt.Errorf("strategy: unknown %q (want affinity or contiguous)", v.Get("strategy"))
	}
	switch v.Get("mode") {
	case "", "store", "lowmem", "wah":
		q.mode = v.Get("mode")
	default:
		return q, fmt.Errorf("mode: unknown %q (want store, lowmem or wah)", v.Get("mode"))
	}
	q.small = v.Get("small") == "1" || v.Get("small") == "true"
	if rs := v.Get("rep"); rs != "" {
		if q.rep, err = repro.ParseRepresentation(rs); err != nil {
			return q, err
		}
		q.repSet = true
	}
	if ms := v.Get("mem"); ms != "" {
		m, perr := strconv.ParseInt(ms, 10, 64)
		if perr != nil || m <= 0 {
			return q, fmt.Errorf("mem: want a positive byte count, got %q", ms)
		}
		q.mem = m
	}
	switch v.Get("format") {
	case "", "ndjson":
		q.format = "ndjson"
	case "text":
		q.format = "text"
	default:
		return q, fmt.Errorf("format: unknown %q (want ndjson or text)", v.Get("format"))
	}
	return q, nil
}

// options assembles the facade options for the parsed query (the
// governor is appended by the handler once admission succeeds).
func (q cliqueQuery) options() []repro.Option {
	opts := []repro.Option{repro.WithBounds(q.lo, q.hi)}
	if q.workers > 1 {
		opts = append(opts, repro.WithWorkers(q.workers), repro.WithStrategy(q.strat))
	}
	switch q.mode {
	case "lowmem":
		opts = append(opts, repro.WithLowMemory())
	case "wah":
		opts = append(opts, repro.WithCompressedBitmaps())
	}
	if q.small {
		opts = append(opts, repro.WithReportSmall())
	}
	if q.repSet {
		opts = append(opts, repro.WithGraphRepresentation(q.rep))
	}
	return opts
}

// cacheKey scopes a cached stream to exactly what determines its bytes:
// the graph identity, the output-identity of the config
// (enumcfg.Config.Key() — execution policy deliberately excluded; every
// backend streams identical bytes), and the wire format.
func (q cliqueQuery) cacheKey(fp string) string {
	cfg := enumcfg.Config{Lo: q.lo, Hi: q.hi, ReportSmall: q.small}
	return fp + "|" + cfg.Key() + "|" + q.format
}

// reservation sizes the query's admission reservation: the caller's
// mem= if given, else the graph's adjacency bytes plus the configured
// working headroom.  The registry pin already holds the adjacency
// bytes resident (the run itself does not re-charge them —
// repro.WithGraphCharged), so the graph-sized share of the reservation
// is pure working headroom: enough to cover a requested representation
// conversion, which is the one per-query copy of graph-scale data.
func (q cliqueQuery) reservation(graphBytes, headroom int64) int64 {
	n := q.mem
	if n == 0 {
		n = graphBytes + headroom
	}
	if n < graphBytes+1 {
		n = graphBytes + 1
	}
	return n
}

func (s *Server) handleCliques(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	q, err := parseCliqueQuery(r, s.cfg.MaxWorkers)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, err := s.reg.Acquire(fp)
	if err != nil {
		errorJSON(w, http.StatusNotFound, "%v", err)
		return
	}
	defer s.reg.Release(e)
	s.queries.Add(1)

	contentType := "application/x-ndjson"
	if q.format == "text" {
		contentType = "text/plain; charset=utf-8"
	}

	// O(1) fast path: a completed identical stream replays byte for
	// byte, no admission, no enumeration.
	ckey := q.cacheKey(fp)
	if body, ct, ok := s.cache.Get(ckey); ok {
		w.Header().Set("Content-Type", ct)
		w.Header().Set("X-Cliqued-Cache", "hit")
		w.WriteHeader(http.StatusOK)
		if _, werr := w.Write(body); werr != nil {
			return // client hung up mid-replay
		}
		return
	}

	lease, err := s.adm.Acquire(r.Context(), q.reservation(e.G.Bytes(), s.cfg.QueryHeadroom))
	if err != nil {
		s.shed(w, err)
		return
	}
	s.active.Add(1)
	defer func() {
		s.residual.Add(lease.Close())
		s.active.Add(-1)
	}()

	var st repro.Stats
	// WithGraphCharged: the registry pin already charged the adjacency
	// bytes to the shared governor; charging them again from this run's
	// child would inflate the parent's Used by graphBytes per active
	// query.
	opts := append(q.options(),
		repro.WithGovernor(lease.Governor()), repro.WithGraphCharged(), repro.WithStats(&st))
	enum := repro.NewEnumerator(opts...)

	w.Header().Set("Content-Type", contentType)
	w.Header().Set("X-Cliqued-Cache", "miss")
	w.Header().Set("X-Cliqued-Reservation", strconv.FormatInt(lease.Amount(), 10))
	flusher, _ := w.(http.Flusher)

	// Tee the stream into a prospective cache entry; the buffer is
	// dropped the moment it outgrows what the cache would accept, so an
	// uncacheably huge stream costs no memory here.
	var cacheBuf *bytes.Buffer
	if limit := s.cache.EntryLimit(); limit > 0 {
		cacheBuf = &bytes.Buffer{}
	}

	var line bytes.Buffer
	wroteAny := false
	for c, rerr := range enum.Cliques(r.Context(), e.G) {
		if rerr != nil {
			// Mid-stream failures (cancellation, budget trip) cannot
			// change the status line once bytes are out; NDJSON signals
			// in-band, text simply ends.  Nothing is cached.
			s.streamError(w, q.format, wroteAny, rerr)
			return
		}
		line.Reset()
		if q.format == "text" {
			writeTextClique(&line, e.G, c)
		} else {
			writeNDJSONClique(&line, c)
		}
		if _, werr := w.Write(line.Bytes()); werr != nil {
			return // client hung up; the range break cancels the run
		}
		wroteAny = true
		if cacheBuf != nil {
			cacheBuf.Write(line.Bytes())
			if int64(cacheBuf.Len()) > s.cache.EntryLimit() {
				cacheBuf = nil
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	if q.format == "ndjson" {
		line.Reset()
		writeNDJSONSummary(&line, &st)
		if _, werr := w.Write(line.Bytes()); werr != nil {
			return
		}
		if cacheBuf != nil {
			cacheBuf.Write(line.Bytes())
		}
	}
	if cacheBuf != nil {
		s.cache.Put(ckey, contentType, cacheBuf.Bytes())
	}
}

// streamError reports a failed run: as a status code while the response
// is still unstarted, in-band for NDJSON once bytes are out.
func (s *Server) streamError(w http.ResponseWriter, format string, wroteAny bool, err error) {
	if !wroteAny {
		if errors.Is(err, context.Canceled) {
			return // client hung up before the first clique
		}
		status := http.StatusInternalServerError
		if errors.Is(err, repro.ErrMemoryBudget) {
			status = http.StatusInsufficientStorage
		}
		errorJSON(w, status, "%v", err)
		return
	}
	if format == "ndjson" {
		msg, _ := json.Marshal(err.Error())
		if _, werr := fmt.Fprintf(w, "{\"error\":%s}\n", msg); werr != nil {
			return // client gone too; nothing left to report on
		}
	}
}

// writeTextClique renders one clique exactly the way cmd/cliquer prints
// it — vertex names joined by single spaces, one line — so a text
// stream from the service is byte-identical to the CLI's output for the
// same graph and bounds (pinned by TestStreamParity).
func writeTextClique(buf *bytes.Buffer, g repro.GraphInterface, c repro.Clique) {
	for i, v := range c {
		if i > 0 {
			buf.WriteByte(' ')
		}
		buf.WriteString(g.Name(v))
	}
	buf.WriteByte('\n')
}

// writeNDJSONClique renders one clique as one NDJSON record.
func writeNDJSONClique(buf *bytes.Buffer, c repro.Clique) {
	buf.WriteString(`{"size":`)
	buf.WriteString(strconv.Itoa(len(c)))
	buf.WriteString(`,"vertices":[`)
	for i, v := range c {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(strconv.Itoa(v))
	}
	buf.WriteString("]}\n")
}

// writeNDJSONSummary is the terminal record of a successful NDJSON
// stream: the run's statistics, so a client knows the stream is
// complete (a stream without it was truncated).
func writeNDJSONSummary(buf *bytes.Buffer, st *repro.Stats) {
	fmt.Fprintf(buf,
		"{\"done\":true,\"count\":%d,\"max_size\":%d,\"backend\":%q,\"peak_bytes\":%d,\"elapsed_ms\":%.3f}\n",
		st.MaximalCliques, st.MaxCliqueSize, st.Backend, st.PeakBytes,
		float64(st.Elapsed)/float64(time.Millisecond))
}

// ---- maxclique / paracliques -----------------------------------------

func (s *Server) handleMaxClique(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	e, err := s.reg.Acquire(fp)
	if err != nil {
		errorJSON(w, http.StatusNotFound, "%v", err)
		return
	}
	defer s.reg.Release(e)
	s.queries.Add(1)

	ckey := fp + "|maxclique"
	if body, _, ok := s.cache.Get(ckey); ok {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cliqued-Cache", "hit")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body) //nolint:cleanuperr client hung up mid-replay; no channel left
		return
	}

	// The exact search densifies non-dense graphs; reserve for that
	// worst case so a genome-scale CSR graph cannot OOM the server
	// through this endpoint (it is refused or queued instead).
	n := e.G.Bytes() + 1<<20
	if e.G.Representation() != repro.Dense {
		n += repro.DenseAdjacencyBytes(e.G.N())
	}
	lease, err := s.adm.Acquire(r.Context(), n)
	if err != nil {
		s.shed(w, err)
		return
	}
	s.active.Add(1)
	defer func() {
		s.residual.Add(lease.Close())
		s.active.Add(-1)
	}()

	start := time.Now()
	cliqueVerts, err := repro.MaxCliqueContext(r.Context(), e.G)
	if err != nil {
		// Client hung up mid-search: the branch-and-bound observed the
		// context and exited, so the lease and graph reference the
		// deferred cleanups release really are free now.  No response
		// channel is left to report on.
		return
	}
	body, err := json.Marshal(map[string]any{
		"size":       len(cliqueVerts),
		"vertices":   cliqueVerts,
		"elapsed_ms": float64(time.Since(start)) / float64(time.Millisecond),
	})
	if err != nil {
		errorJSON(w, http.StatusInternalServerError, "%v", err)
		return
	}
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cliqued-Cache", "miss")
	if _, werr := w.Write(body); werr != nil {
		return
	}
	s.cache.Put(ckey, "application/json", body)
}

func (s *Server) handleParacliques(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	q, err := parseCliqueQuery(r, s.cfg.MaxWorkers)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	glom := 0.8
	if gs := r.URL.Query().Get("glom"); gs != "" {
		glom, err = strconv.ParseFloat(gs, 64)
		if err != nil || glom <= 0 || glom > 1 {
			errorJSON(w, http.StatusBadRequest, "glom: want a number in (0,1], got %q", gs)
			return
		}
	}
	e, err := s.reg.Acquire(fp)
	if err != nil {
		errorJSON(w, http.StatusNotFound, "%v", err)
		return
	}
	defer s.reg.Release(e)
	s.queries.Add(1)

	ckey := fmt.Sprintf("%s|paracliques:lo=%d,glom=%s", fp, q.lo,
		strconv.FormatFloat(glom, 'g', -1, 64))
	if body, _, ok := s.cache.Get(ckey); ok {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cliqued-Cache", "hit")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body) //nolint:cleanuperr client hung up mid-replay; no channel left
		return
	}

	lease, err := s.adm.Acquire(r.Context(), q.reservation(e.G.Bytes(), s.cfg.QueryHeadroom))
	if err != nil {
		s.shed(w, err)
		return
	}
	s.active.Add(1)
	defer func() {
		s.residual.Add(lease.Close())
		s.active.Add(-1)
	}()

	enum := repro.NewEnumerator(
		repro.WithBounds(q.lo, 0), repro.WithGovernor(lease.Governor()),
		repro.WithGraphCharged())
	ps, err := enum.Paracliques(r.Context(), e.G, glom)
	if err != nil {
		errorJSON(w, http.StatusInternalServerError, "%v", err)
		return
	}
	type pc struct {
		Vertices []int   `json:"vertices"`
		CoreSize int     `json:"core_size"`
		Density  float64 `json:"density"`
	}
	out := make([]pc, len(ps))
	for i, p := range ps {
		out[i] = pc{Vertices: p.Vertices, CoreSize: p.CoreSize, Density: p.Density}
	}
	body, err := json.Marshal(map[string]any{"count": len(out), "paracliques": out})
	if err != nil {
		errorJSON(w, http.StatusInternalServerError, "%v", err)
		return
	}
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cliqued-Cache", "miss")
	if _, werr := w.Write(body); werr != nil {
		return
	}
	s.cache.Put(ckey, "application/json", body)
}

// ---- pathways ---------------------------------------------------------

// pathwayRequest is the JSON body of POST /pathways: a stoichiometric
// network.  Stoich maps reaction-local metabolite index (as a JSON
// string key) to its coefficient, negative for consumed.
type pathwayRequest struct {
	Metabolites []string `json:"metabolites"`
	Reactions   []struct {
		Name       string           `json:"name"`
		Reversible bool             `json:"reversible"`
		Stoich     map[string]int64 `json:"stoich"`
	} `json:"reactions"`
}

func (s *Server) handlePathways(w http.ResponseWriter, r *http.Request) {
	var req pathwayRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		errorJSON(w, http.StatusBadRequest, "decode network: %v", err)
		return
	}
	s.queries.Add(1)
	net := &repro.MetabolicNetwork{Metabolites: req.Metabolites}
	for _, rx := range req.Reactions {
		stoich := make(map[int]int64, len(rx.Stoich))
		for k, v := range rx.Stoich {
			idx, err := strconv.Atoi(k)
			if err != nil || idx < 0 || idx >= len(req.Metabolites) {
				errorJSON(w, http.StatusBadRequest,
					"reaction %q: bad metabolite index %q", rx.Name, k)
				return
			}
			stoich[idx] = v
		}
		net.AddReaction(rx.Name, rx.Reversible, stoich)
	}
	modes, err := repro.ElementaryFluxModes(net)
	if err != nil {
		errorJSON(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	type mode struct {
		Flux    []string `json:"flux"`
		Support []int    `json:"support"`
		Text    string   `json:"text"`
	}
	out := make([]mode, len(modes))
	for i, m := range modes {
		fl := make([]string, len(m.Flux))
		for j, f := range m.Flux {
			fl[j] = f.String()
		}
		out[i] = mode{Flux: fl, Support: m.Support(), Text: m.String()}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(out), "modes": out})
}

// ---- health -----------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// ---- small helpers ----------------------------------------------------

func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("want an integer, got %q", s)
	}
	return n, nil
}

func valueOr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
