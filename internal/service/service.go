// Package service is the multi-tenant clique query service behind
// cmd/cliqued: a long-lived HTTP/JSON daemon that turns the repro
// enumeration facade into a shared, memory-governed computational
// resource — the paper's genome-scale clique machinery serving many
// concurrent clients instead of one command line.
//
// The moving parts and their invariants (DESIGN.md §0f):
//
//   - Registry: graphs are loaded once (streamed straight off the
//     request body, no temp files) and keyed by repro.Fingerprint — the
//     same FNV identity the out-of-core checkpoint manifest stores, so
//     every layer of the system agrees on what "the same graph" means.
//     Each loaded graph pins its adjacency bytes under a
//     membudget.Reservation carved from the server governor.
//   - Admission: one shared membudget.Governor holds the whole server's
//     budget.  Every query must reserve its working memory before it
//     runs; when headroom is tight the request waits in a bounded FIFO
//     queue, and past the depth limit it is shed with 503 +
//     Retry-After.  A query's reservation is closed on every exit path
//     — success, error, budget trip, or client disconnect — so the
//     governor always returns to baseline.
//   - Streaming: enumerate queries stream NDJSON (or cliquer-parity
//     text) over a chunked response directly from the Cliques iterator;
//     the client sees cliques as they are enumerated, and hanging up
//     cancels the run through the per-request context.
//   - Cache: completed streams are cached in an LRU keyed by
//     (graph fingerprint, enumcfg.Config.Key(), format), so a repeated
//     query on a hot graph is O(1) and byte-identical to the original.
package service

import (
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/membudget"
)

// Config tunes a Server.  The zero value is usable: unlimited memory,
// default queue and cache sizes.
type Config struct {
	// Budget is the server-wide memory governor budget in bytes: the
	// bound on everything resident across loaded graphs and concurrent
	// query working sets.  0 means unlimited (observe only).
	Budget int64
	// QueueDepth bounds the admission wait queue: a query that cannot
	// reserve memory waits while fewer than QueueDepth others are
	// already waiting, and is shed with 503 + Retry-After past it.
	// Default 16.
	QueueDepth int
	// QueueWait bounds how long a queued query waits for headroom
	// before it is shed.  Default 30s.
	QueueWait time.Duration
	// QueryHeadroom is the default working-memory reservation a query
	// makes above its graph's adjacency bytes when the request does not
	// name one with mem=.  Default 64 MiB.
	QueryHeadroom int64
	// CacheBytes caps the result cache (0 disables caching).
	// Default 64 MiB; set -1 to disable explicitly.
	CacheBytes int64
	// MaxBodyBytes caps uploaded graph bodies.  Default 1 GiB.
	MaxBodyBytes int64
	// MaxWorkers caps the workers= query parameter; larger requests are
	// clamped to it (negative ones are rejected with 400).  The parallel
	// pool sizes per-worker scratch and result slices from this number
	// before any of it is charged to the governor, so leaving it
	// unbounded would let a single request allocate memory the admission
	// budget never sees.  Default runtime.GOMAXPROCS(0) — more workers
	// than cores cannot go faster anyway.
	MaxWorkers int
	// RetryAfter is the Retry-After hint returned with 503s.
	// Default 2s.
	RetryAfter time.Duration
}

// defaults fills the zero fields.
func (c Config) defaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.QueueWait == 0 {
		c.QueueWait = 30 * time.Second
	}
	if c.QueryHeadroom == 0 {
		c.QueryHeadroom = 64 << 20
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	} else if c.CacheBytes < 0 {
		c.CacheBytes = 0
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 30
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = 2 * time.Second
	}
	return c
}

// Server is the query service: an http.Handler plus the shared
// governor, registry, admission controller, and result cache.
type Server struct {
	cfg   Config
	gov   *membudget.Governor
	reg   *Registry
	adm   *Admission
	cache *Cache
	mux   *http.ServeMux

	started time.Time
	active  atomic.Int64 // queries currently executing (admitted, not cached)
	queries atomic.Int64 // queries served, cached or not
	// residual accumulates bytes a query's run failed to release before
	// its reservation was closed — always 0 unless a backend violates
	// the budgetpair discipline; surfaced in /healthz as a bug canary.
	residual atomic.Int64
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.defaults()
	gov := membudget.New(cfg.Budget)
	s := &Server{
		cfg:     cfg,
		gov:     gov,
		reg:     NewRegistry(gov),
		adm:     NewAdmission(gov, cfg.QueueDepth, cfg.QueueWait),
		cache:   NewCache(cfg.CacheBytes),
		started: time.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /graphs", s.handleLoadGraph)
	mux.HandleFunc("GET /graphs", s.handleListGraphs)
	mux.HandleFunc("GET /graphs/{fp}", s.handleGetGraph)
	mux.HandleFunc("DELETE /graphs/{fp}", s.handleDeleteGraph)
	mux.HandleFunc("GET /graphs/{fp}/cliques", s.handleCliques)
	mux.HandleFunc("POST /graphs/{fp}/cliques", s.handleCliques)
	mux.HandleFunc("GET /graphs/{fp}/maxclique", s.handleMaxClique)
	mux.HandleFunc("GET /graphs/{fp}/paracliques", s.handleParacliques)
	mux.HandleFunc("POST /graphs/{fp}/paracliques", s.handleParacliques)
	mux.HandleFunc("POST /pathways", s.handlePathways)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux = mux
	return s
}

// ServeHTTP dispatches to the service routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Governor exposes the shared governor (tests and the daemon's
// shutdown-time accounting check).
func (s *Server) Governor() *membudget.Governor { return s.gov }

// Registry exposes the graph registry (the daemon preloads graphs
// through it at startup).
func (s *Server) Registry() *Registry { return s.reg }

// Stats is the /healthz payload.
type Stats struct {
	Status        string        `json:"status"`
	UptimeSeconds float64       `json:"uptime_seconds"`
	Graphs        int           `json:"graphs"`
	Active        int64         `json:"active_queries"`
	Queued        int           `json:"queued_queries"`
	Queries       int64         `json:"queries_served"`
	ResidualBytes int64         `json:"residual_bytes"`
	Governor      GovernorStats `json:"governor"`
	Cache         CacheStats    `json:"cache"`
}

// GovernorStats is the shared governor's view in /healthz.
type GovernorStats struct {
	Budget   int64 `json:"budget"`
	Used     int64 `json:"used"`
	Peak     int64 `json:"peak"`
	Reserved int64 `json:"reserved"`
}

// Snapshot assembles the current Stats.
func (s *Server) Snapshot() Stats {
	return Stats{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
		Graphs:        s.reg.Len(),
		Active:        s.active.Load(),
		Queued:        s.adm.Queued(),
		Queries:       s.queries.Load(),
		ResidualBytes: s.residual.Load(),
		Governor: GovernorStats{
			Budget:   s.gov.Budget(),
			Used:     s.gov.Used(),
			Peak:     s.gov.Peak(),
			Reserved: s.gov.Reserved(),
		},
		Cache: s.cache.Stats(),
	}
}
