package service

import (
	"container/list"
	"sync"
)

// Cache is the LRU result cache: completed response bodies keyed by
// (graph fingerprint, enumcfg.Config.Key(), stream format) — see
// cacheKey in handlers.go.  Hits replay the exact bytes of the original
// stream, so a cached repeat is indistinguishable from a re-enumeration
// (pinned by TestStreamParity).  Entries larger than a quarter of the
// capacity are not cached at all: one giant stream must not evict the
// whole working set.  The cache's bytes are bounded by its own capacity
// and deliberately NOT charged to the memory governor — the cache is
// how the server trades a fixed, configured slice of memory for O(1)
// hot-graph queries, and letting it compete with admissions would turn
// every cache fill into a potential query rejection.
type Cache struct {
	mu      sync.Mutex
	cap     int64
	used    int64
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses int64 // guarded by mu
}

type centry struct {
	key         string
	contentType string
	body        []byte
}

// CacheStats is the /healthz view of the cache.
type CacheStats struct {
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	Capacity int64 `json:"capacity"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
}

// NewCache returns an LRU cache bounded by capBytes (0 disables: every
// Get misses and Put discards).
func NewCache(capBytes int64) *Cache {
	return &Cache{cap: capBytes, ll: list.New(), entries: make(map[string]*list.Element)}
}

// EntryLimit returns the largest body Put will accept (a quarter of the
// capacity); handlers stop teeing a stream into a prospective entry the
// moment it crosses this, so oversized streams cost no buffer memory.
func (c *Cache) EntryLimit() int64 {
	if c.cap <= 0 {
		return 0
	}
	return c.cap / 4
}

// Get returns the cached body and content type for key, marking it most
// recently used.  The returned slice is shared and must be treated as
// read-only.
func (c *Cache) Get(key string) (body []byte, contentType string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.entries[key]
	if !found {
		c.misses++
		return nil, "", false
	}
	c.hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*centry)
	return e.body, e.contentType, true
}

// Put stores a completed response body, evicting least-recently-used
// entries until it fits.  Oversized bodies (more than a quarter of the
// capacity) are discarded.  The cache takes ownership of body.
func (c *Cache) Put(key, contentType string, body []byte) {
	n := int64(len(body))
	if c.cap <= 0 || n == 0 || n > c.cap/4 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, found := c.entries[key]; found {
		// Replace in place (a re-run of an uncached config after an
		// eviction race); sizes may differ.
		old := el.Value.(*centry)
		c.used += n - int64(len(old.body))
		old.body, old.contentType = body, contentType
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(&centry{key: key, contentType: contentType, body: body})
		c.used += n
	}
	for c.used > c.cap {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*centry)
		c.ll.Remove(back)
		delete(c.entries, e.key)
		c.used -= int64(len(e.body))
	}
}

// Invalidate drops every entry whose key begins with prefix — eviction
// of a graph invalidates all of its cached streams.
func (c *Cache) Invalidate(prefix string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*centry)
		if len(e.key) >= len(prefix) && e.key[:len(prefix)] == prefix {
			c.ll.Remove(el)
			delete(c.entries, e.key)
			c.used -= int64(len(e.body))
		}
		el = next
	}
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:  len(c.entries),
		Bytes:    c.used,
		Capacity: c.cap,
		Hits:     c.hits,
		Misses:   c.misses,
	}
}
