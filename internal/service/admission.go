package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/membudget"
)

// Admission is the query admission controller: every query reserves its
// working memory from the shared governor before it runs.  When the
// reservation does not fit, the query waits — bounded in depth and in
// time — for running queries (or evicted graphs) to return headroom;
// past the depth bound it is shed immediately so the queue can never
// grow without limit.  Wakeups are broadcast: each Close replaces a
// generation channel every waiter selects on, and waiters re-attempt
// their reservation in arrival order is not guaranteed — the governor's
// CAS decides — but the depth bound keeps the wait set small enough
// that starvation is a non-issue at service scale.
type Admission struct {
	gov   *membudget.Governor
	depth int
	wait  time.Duration

	mu      sync.Mutex
	waiters int
	gen     chan struct{} // closed + replaced on every release signal
}

// ErrQueueFull is returned when the admission wait queue is at depth;
// the handler maps it to 503 + Retry-After.
var ErrQueueFull = errors.New("service: admission queue full")

// ErrQueueTimeout is returned when a queued query waited QueueWait
// without headroom appearing.
var ErrQueueTimeout = errors.New("service: timed out waiting for memory headroom")

// ErrGraphBusy is returned by Registry.Remove while queries hold
// references to the graph.
var ErrGraphBusy = errors.New("service: graph has active queries")

// NewAdmission builds the controller over the shared governor.
func NewAdmission(gov *membudget.Governor, depth int, wait time.Duration) *Admission {
	return &Admission{gov: gov, depth: depth, wait: wait, gen: make(chan struct{})}
}

// Queued returns the number of queries waiting for headroom.
func (a *Admission) Queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiters
}

// Signal wakes every waiter to re-attempt its reservation; called
// whenever headroom may have appeared (a lease closed, a graph was
// evicted).
func (a *Admission) Signal() {
	a.mu.Lock()
	close(a.gen)
	a.gen = make(chan struct{})
	a.mu.Unlock()
}

// Acquire reserves n bytes of the shared budget for one query, waiting
// in the bounded queue when the budget is momentarily full.  The
// returned Lease must be closed on every exit path of the query.
//
//repro:ctxloop waiters block only in the select observing ctx/timer/generation
func (a *Admission) Acquire(ctx context.Context, n int64) (*Lease, error) {
	if res, err := a.gov.Reserve(n); err == nil {
		return &Lease{res: res, a: a}, nil
	} else if !errors.Is(err, membudget.ErrNoHeadroom) {
		return nil, err
	}
	// A reservation that can never fit must not queue: it would wait
	// the full timeout for headroom that cannot appear.
	if b := a.gov.Budget(); b > 0 && n > b {
		return nil, fmt.Errorf("%w: %d bytes exceed the whole budget %d",
			membudget.ErrNoHeadroom, n, b)
	}
	a.mu.Lock()
	if a.waiters >= a.depth {
		a.mu.Unlock()
		return nil, fmt.Errorf("%w: %d queries already waiting", ErrQueueFull, a.depth)
	}
	a.waiters++
	gen := a.gen
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		a.waiters--
		a.mu.Unlock()
	}()

	timer := time.NewTimer(a.wait)
	defer timer.Stop()
	for {
		// Reserve only with gen already captured: a Signal landing after
		// the capture closes this gen, so a release racing the failed
		// attempt still wakes the select below instead of being lost
		// (the waiter would otherwise sleep the full QueueWait beside
		// free headroom).
		res, err := a.gov.Reserve(n)
		if err == nil {
			return &Lease{res: res, a: a}, nil
		}
		if !errors.Is(err, membudget.ErrNoHeadroom) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-timer.C:
			return nil, ErrQueueTimeout
		case <-gen:
		}
		a.mu.Lock()
		gen = a.gen
		a.mu.Unlock()
	}
}

// Lease is one admitted query's hold on the shared budget: a
// membudget.Reservation plus the wakeup of the admission queue when it
// closes.
type Lease struct {
	res *membudget.Reservation
	a   *Admission
}

// Governor returns the lease's child governor; hand it to the run via
// repro.WithGovernor.
func (l *Lease) Governor() *membudget.Governor { return l.res.Governor() }

// Amount returns the reserved bytes.
func (l *Lease) Amount() int64 { return l.res.Amount() }

// Close returns the reservation to the shared budget and wakes the
// admission queue.  Idempotent (the underlying reservation reconciles
// once); returns the residual bytes the run failed to release — 0 in a
// correct run.
func (l *Lease) Close() int64 {
	residual := l.res.Close()
	l.a.Signal()
	return residual
}
