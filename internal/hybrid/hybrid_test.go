package hybrid

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/clique"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/membudget"
)

// testGraph plants overlapping modules in a random graph so every run
// has several generation levels to trip a budget inside.
func testGraph(seed int64, n int, p float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomGNP(rng, n, p)
	graph.PlantClique(g, []int{0, 1, 2, 3, 4, 5, 6})
	graph.PlantClique(g, []int{4, 5, 6, 7, 8})
	graph.PlantClique(g, []int{n - 5, n - 4, n - 3, n - 2, n - 1})
	return g
}

func keys(cs []clique.Clique) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Key()
	}
	return out
}

func reference(t *testing.T, g graph.Interface, lo int) []string {
	t.Helper()
	col := &clique.Collector{}
	if _, err := core.Enumerate(g, core.Options{Lo: lo, Reporter: col}); err != nil {
		t.Fatalf("reference: %v", err)
	}
	return keys(col.Cliques)
}

// TestSpilloverParity is the package's acceptance property: for any
// budget (never trips, trips mid-run, trips immediately), any worker
// count, and either seeding mode, the hybrid stream is byte-identical
// to the in-core reference.
func TestSpilloverParity(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := testGraph(seed, 80, 0.15)
		want := reference(t, g, 3)
		if len(want) == 0 {
			t.Fatalf("seed %d: empty reference", seed)
		}
		// Resident candidate storage peaks at a few KB on this graph;
		// the budgets below cover never / late / early / immediate trips.
		for _, budget := range []int64{0, 1 << 30, 2 << 10, 1 << 10, 1} {
			for _, workers := range []int{1, 3} {
				gov := membudget.New(budget)
				col := &clique.Collector{}
				res, err := Enumerate(g, Options{
					Lo:       3,
					Workers:  workers,
					Dir:      t.TempDir(),
					Gov:      gov,
					Reporter: col,
				})
				if err != nil {
					t.Fatalf("seed %d budget %d workers %d: %v", seed, budget, workers, err)
				}
				got := keys(col.Cliques)
				if len(got) != len(want) {
					t.Fatalf("seed %d budget %d workers %d: %d cliques, want %d (spilled at %d)",
						seed, budget, workers, len(got), len(want), res.SpilledAtLevel)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d budget %d workers %d: stream diverges at %d: got {%s} want {%s}",
							seed, budget, workers, i, got[i], want[i])
					}
				}
				if res.MaximalCliques != int64(len(want)) {
					t.Fatalf("Result.MaximalCliques = %d, want %d", res.MaximalCliques, len(want))
				}
				switch {
				case budget == 0 || budget == 1<<30:
					if res.SpilledAtLevel != 0 {
						t.Errorf("budget %d spilled at level %d; should have stayed in core",
							budget, res.SpilledAtLevel)
					}
				default:
					if res.SpilledAtLevel == 0 {
						t.Errorf("budget %d never spilled; the trip point is untested", budget)
					}
					// An immediate trip drains the whole run through the
					// disk engine, so bytes must have moved; later trips
					// may drain an empty final level.
					if budget == 1 && res.OOC.BytesWritten == 0 {
						t.Errorf("budget %d spilled but moved no bytes", budget)
					}
				}
			}
		}
	}
}

// TestSpilloverWithSeededBounds exercises the Lo >= 3 k-clique seeding
// and an upper bound across the spill boundary.
func TestSpilloverWithSeededBounds(t *testing.T) {
	g := testGraph(7, 90, 0.18)
	want := reference(t, g, 4)
	if len(want) == 0 {
		t.Skip("no size >= 4 cliques on this seed")
	}
	for _, workers := range []int{1, 2} {
		col := &clique.Collector{}
		res, err := Enumerate(g, Options{
			Lo:       4,
			Workers:  workers,
			Dir:      t.TempDir(),
			Gov:      membudget.New(16 << 10),
			Reporter: col,
		})
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		got := keys(col.Cliques)
		if len(got) != len(want) {
			t.Fatalf("workers %d: %d cliques, want %d (spilled at %d)",
				workers, len(got), len(want), res.SpilledAtLevel)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers %d: diverges at %d", workers, i)
			}
		}
	}
}

// TestPeakStaysNearBudget pins the governor guarantee: a spilled run's
// peak cannot exceed the budget by more than one level's drain
// allowance — the level resident when the trip was detected, plus the
// spill machinery's bounded I/O buffers.  The graph is sized so the
// unconstrained peak (a few MB) dwarfs that allowance, making the bound
// meaningful: an implementation that kept accumulating candidates after
// the trip would blow straight through it.
func TestPeakStaysNearBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomGNP(rng, 300, 0.3)
	// Unconstrained run: measure the largest per-step resident bytes.
	var maxStep int64
	res, err := core.Enumerate(g, core.Options{Lo: 3, OnLevel: func(ls core.LevelStats) {
		if r := ls.Bytes + ls.NextBytes; r > maxStep {
			maxStep = r
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakBytes < 1<<20 {
		t.Fatalf("reference peak %d too small to make the bound meaningful", res.PeakBytes)
	}
	budget := res.PeakBytes / 4
	for _, workers := range []int{1, 4} {
		gov := membudget.New(budget)
		out, err := Enumerate(g, Options{Lo: 3, Workers: workers, Dir: t.TempDir(), Gov: gov})
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if out.SpilledAtLevel == 0 {
			t.Fatalf("workers %d: budget %d (quarter of peak %d) did not trip",
				workers, budget, res.PeakBytes)
		}
		// Drain allowance: one resident level plus the disk engine's
		// in-flight buffers (one writer + one reader per worker, 32 KiB
		// shard targets on a run this size, 1 MiB hard cap each).
		allowance := maxStep + (2*int64(workers)+2)*(1<<20)
		if gov.Peak() > budget+allowance {
			t.Errorf("workers %d: governor peak %d exceeds budget %d + allowance %d",
				workers, gov.Peak(), budget, allowance)
		}
		if gov.Peak() >= res.PeakBytes {
			t.Errorf("workers %d: spilled peak %d not below the unconstrained peak %d",
				workers, gov.Peak(), res.PeakBytes)
		}
		if gov.Used() != 0 {
			t.Errorf("workers %d: %d bytes still charged after the run (leaked accounting)",
				workers, gov.Used())
		}
	}
}

// TestCancellationDuringSpill cancels from inside the reporter after the
// spill and checks the error and spill-dir cleanup behavior of the
// out-of-core continuation.
func TestCancellationDuringSpill(t *testing.T) {
	g := testGraph(9, 150, 0.22)
	want := reference(t, g, 3)
	if len(want) < 50 {
		t.Fatalf("only %d cliques; need a longer run", len(want))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	res, err := Enumerate(g, Options{
		Ctx:     ctx,
		Lo:      3,
		Workers: 1,
		Dir:     t.TempDir(),
		Gov:     membudget.New(1), // immediate spill
		Reporter: clique.ReporterFunc(func(c clique.Clique) {
			seen++
			if seen == len(want)/2 {
				cancel()
			}
		}),
	})
	if err == nil {
		t.Fatal("run completed despite cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if res.SpilledAtLevel == 0 {
		t.Fatal("budget 1 did not spill before the cancel")
	}
	// Delivered prefix must match the reference stream.
	if seen < len(want)/2 {
		t.Fatalf("delivered %d cliques before cancel, want >= %d", seen, len(want)/2)
	}
}
