// Package hybrid is the adaptive in-core -> out-of-core enumerator: the
// resolution of the paper's central tension.  The in-core Clique
// Enumerator is fast but dies when candidate storage outgrows RAM (the
// graph-B run that "consumed 607 GB ... when it was terminated after 12
// hours"); the out-of-core engine survives any level but pays
// "intensive disk I/O" from its first record.  The hybrid backend runs
// the in-core machinery — sequential or the streaming worker pool —
// under the memory governor (package membudget), and the moment the
// governor trips it drains the level being generated to run-aligned
// out-of-core shard files and hands the run to the disk-backed engine:
// memory-priced while the run fits, disk-priced only from the level
// that stopped fitting.
//
// The drained stream is byte-identical to a pure in-core run's:
//
//   - The in-core backends emit, and retain candidates, in canonical
//     order, and outputs of input sub-list i sort strictly before
//     outputs of input j > i.  A trip therefore yields a consistent cut:
//     for some frontier f, everything for inputs < f has been emitted
//     and retained; inputs >= f are untouched (the parallel pool's
//     sched.Sequencer enforces exactly this, discarding any
//     out-of-order window beyond the frontier).
//   - The drain writes the retained sub-lists' records — the sorted head
//     of the produced level — then joins the remaining inputs with a
//     core.Builder in spill mode, which emits their maximal cliques in
//     order and appends the surviving candidates to the same sorted
//     record stream.
//   - The produced level is then a complete, sorted, run-aligned level
//     file, exactly what ooc.Continue expects; the out-of-core engine's
//     own ordering invariant (DESIGN.md §0c) carries the stream to the
//     end of the run.
//
// Governor accounting across the switch: retained head sub-lists are
// released as their records leave for disk, discarded window results
// are released by the pool, the consumed level is released when its
// drain completes, and the out-of-core engine charges only its I/O
// buffers — so Peak records the true high-water mark and Used falls
// back under budget the moment the spill lands.
package hybrid

import (
	"context"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/clique"
	"repro/internal/core"
	"repro/internal/enumcfg"
	"repro/internal/graph"
	"repro/internal/kclique"
	"repro/internal/membudget"
	"repro/internal/ooc"
	"repro/internal/parallel"
)

// Options configures Enumerate.
type Options struct {
	// Ctx, when non-nil, cancels the run at the usual backend
	// cancellation points (per sub-list batch in core, per chunk in the
	// pool, per record batch out of core).
	Ctx context.Context
	// Lo, Hi bound the clique sizes of interest, as in core.Options.
	Lo, Hi int
	// Mode is the common-neighbor bitmap policy of the in-core phase.
	Mode core.CNMode
	// Workers selects the in-core engine (1 = sequential, > 1 = the
	// streaming pool) and is reused as the out-of-core join width after
	// a spill.
	Workers int
	// Strategy is the pool dispatch policy (Workers > 1).
	Strategy enumcfg.Strategy
	// ReportSmall additionally reports maximal 1-/2-cliques (sequential
	// in-core phase only; they are emitted before any level work, so a
	// later spill never affects them).
	ReportSmall bool
	// Dir is the spill directory the out-of-core phase uses (required).
	Dir string
	// SpillBudget, when positive, bounds one out-of-core level's file
	// bytes after a spill, as in ooc.Options.MaxLevelBytes.
	SpillBudget int64
	// Compress delta-varint encodes spilled level records.
	Compress bool
	// MemoryBudget seeds a private governor when Gov is nil.
	MemoryBudget int64
	// Gov is the run's shared memory governor; its budget is the spill
	// trigger.  An unlimited governor (budget 0) never spills.
	Gov *membudget.Governor
	// Reporter receives every maximal clique, in the same ordered stream
	// a pure in-core run delivers.
	Reporter clique.Reporter
	// OnLevel observes each generation step, in-core or spilled.
	OnLevel func(LevelStats)
}

// LevelStats is one generation step of a hybrid run.
type LevelStats struct {
	FromK         int
	Sublists      int   // in-core steps; 0 after the spill
	Cliques       int64 // candidate cliques consumed
	Maximal       int64 // maximal (FromK+1)-cliques reported
	ResidentBytes int64 // in-core: paper-formula resident; spilled: level file bytes
	Spilled       bool  // this step ran (at least partly) out of core
}

// Result summarizes a hybrid run.
type Result struct {
	MaximalCliques int64
	MaxCliqueSize  int
	// SpilledAtLevel is the clique size of the level that was being
	// generated when the governor tripped — the size of the records the
	// drain wrote.  0 means the whole run stayed in core.
	SpilledAtLevel int
	SeedStats      kclique.Stats
	// OOC is the out-of-core engine's I/O accounting for the spilled
	// phase (zero when the run never spilled).
	OOC ooc.Stats
}

// OptionsFromConfig derives hybrid Options from the unified backend
// config.  Reporter, OnLevel and Gov are left for the caller.
func OptionsFromConfig(c enumcfg.Config) Options {
	return Options{
		Ctx:          c.Ctx,
		Lo:           c.Lo,
		Hi:           c.Hi,
		Mode:         c.Mode,
		Workers:      c.Workers,
		Strategy:     c.Strategy,
		ReportSmall:  c.ReportSmall,
		Dir:          c.Dir,
		SpillBudget:  c.SpillBudget,
		Compress:     c.OOCCompress,
		MemoryBudget: c.MemoryBudget,
	}
}

// runner is one Enumerate invocation's state.
type runner struct {
	g    graph.Interface
	opts Options
	gov  *membudget.Governor
	rep  clique.Reporter // counting wrapper around opts.Reporter
	bits *bitset.Pool
	res  *Result
}

// Enumerate runs the adaptive enumeration.  The emitted clique stream —
// order included — is identical to the sequential in-core backend's for
// any budget, worker count and trip point.
func Enumerate(g graph.Interface, opts Options) (*Result, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("hybrid: Dir is required")
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.Lo == 0 {
		opts.Lo = 2
	}
	if err := enumcfg.CheckBounds(opts.Lo, opts.Hi); err != nil {
		return nil, fmt.Errorf("hybrid: %w", err)
	}
	if opts.Mode < core.CNStore || opts.Mode > core.CNCompress {
		return nil, fmt.Errorf("hybrid: unknown CN mode %d", opts.Mode)
	}
	if opts.ReportSmall && opts.Workers > 1 {
		return nil, fmt.Errorf("hybrid: ReportSmall requires the sequential in-core phase")
	}
	gov := opts.Gov
	if gov == nil {
		gov = membudget.New(opts.MemoryBudget)
	}
	h := &runner{
		g:    g,
		opts: opts,
		gov:  gov,
		bits: bitset.NewPool(g.N()),
		res:  &Result{},
	}
	// Every emission — seed phase, in-core levels, drain join, and the
	// out-of-core continuation — flows through one counting reporter, so
	// the result's totals are exactly what the caller received.
	h.rep = clique.ReporterFunc(func(c clique.Clique) {
		h.res.MaximalCliques++
		if len(c) > h.res.MaxCliqueSize {
			h.res.MaxCliqueSize = len(c)
		}
		if h.opts.Reporter != nil {
			h.opts.Reporter.Emit(c)
		}
	})
	var err error
	if opts.Workers > 1 {
		err = h.runParallel()
	} else {
		err = h.runSequential()
	}
	return h.res, err
}

func (h *runner) ctx() context.Context {
	if h.opts.Ctx == nil {
		return context.Background()
	}
	return h.opts.Ctx
}

// runSequential is the Workers == 1 in-core phase: the core level loop
// with a per-sub-list governor poll.
//
//repro:ctxloop
func (h *runner) runSequential() error {
	g, opts := h.g, h.opts
	var lvl *core.Level
	if opts.Lo <= 2 {
		if opts.ReportSmall {
			core.ReportSmallCliques(g, opts.Lo, h.rep)
		}
		lvl = core.SeedFromEdgesMode(g, opts.Mode)
	} else {
		var err error
		lvl, h.res.SeedStats, err = core.SeedFromKMode(g, opts.Lo, opts.Mode, h.rep)
		if err != nil {
			return err
		}
	}
	h.gov.Charge(lvl.Bytes(g.N()))

	b := core.NewBuilderMode(g, opts.Mode, h.bits)
	b.Ctx = opts.Ctx
	b.Gov = h.gov
	h.gov.Charge(b.ScratchBytes())
	defer h.gov.Release(b.ScratchBytes())
	for len(lvl.Sub) > 0 && (opts.Hi == 0 || lvl.K+1 <= opts.Hi) {
		if err := h.ctx().Err(); err != nil {
			h.gov.Release(lvl.Bytes(g.N())) // retire the level before aborting
			return fmt.Errorf("hybrid: canceled before level %d->%d: %w", lvl.K, lvl.K+1, err)
		}
		lvlBytes := lvl.Bytes(g.N())
		b.Reset()
		tripAt := -1
		for i, s := range lvl.Sub {
			if i&63 == 0 && h.ctx().Err() != nil {
				// The consumed level and the partial next level are both
				// still charged; retire them so the shared governor stays
				// balanced for the spillover bookkeeping.
				h.gov.Release(lvlBytes + b.NewBytes)
				return fmt.Errorf("hybrid: canceled during level %d->%d: %w",
					lvl.K, lvl.K+1, h.ctx().Err())
			}
			if h.gov.Over() {
				tripAt = i
				break
			}
			b.ProcessSubList(s, h.rep)
		}
		if tripAt >= 0 {
			// The governor tripped at input tripAt: drain the head
			// (outputs of inputs < tripAt, all retained and in order)
			// plus the joined remainder, then continue out of core.
			return h.drain(lvl, b.Next, lvl.Sub[tripAt:], b.Maximal, lvlBytes)
		}
		next := &core.Level{K: lvl.K + 1, Sub: b.Next}
		h.observe(LevelStats{
			FromK:         lvl.K,
			Sublists:      len(lvl.Sub),
			Cliques:       lvl.Cliques(),
			Maximal:       b.Maximal,
			ResidentBytes: lvlBytes + b.NewBytes,
		})
		h.gov.Release(lvlBytes)
		lvl = next
	}
	h.gov.Release(lvl.Bytes(g.N()))
	return nil
}

// runParallel is the Workers > 1 in-core phase: the streaming pool with
// the governor as its per-chunk trip, and the sequencer's frontier as
// the consistent cut the drain resumes from.
//
//repro:ctxloop
func (h *runner) runParallel() error {
	g, opts := h.g, h.opts
	p, err := parallel.NewPool(g, parallel.Options{
		Ctx:         opts.Ctx,
		Workers:     opts.Workers,
		Lo:          opts.Lo,
		Hi:          opts.Hi,
		RecomputeCN: opts.Mode == core.CNRecompute,
		CompressCN:  opts.Mode == core.CNCompress,
		Strategy:    opts.Strategy,
		Gov:         h.gov,
	})
	if err != nil {
		return fmt.Errorf("hybrid: %w", err)
	}
	defer p.Close()

	var lvl *core.Level
	var homes []int32
	if opts.Lo <= 2 {
		lvl, homes = core.SeedFromEdgesParallel(g, opts.Mode, opts.Workers)
	} else {
		lvl, homes, h.res.SeedStats, err = core.SeedFromKParallel(g, opts.Lo, opts.Mode, opts.Workers, h.rep)
		if err != nil {
			return err
		}
	}
	h.gov.Charge(lvl.Bytes(g.N()))

	for len(lvl.Sub) > 0 && (opts.Hi == 0 || lvl.K+1 <= opts.Hi) {
		if err := h.ctx().Err(); err != nil {
			h.gov.Release(lvl.Bytes(g.N())) // retire the level before aborting
			return fmt.Errorf("hybrid: canceled before level %d->%d: %w", lvl.K, lvl.K+1, err)
		}
		lvlBytes := lvl.Bytes(g.N())
		out := p.RunLevel(opts.Ctx, lvl, homes, h.rep, h.gov.Over)
		if err := h.ctx().Err(); err != nil {
			// The consumed level plus the head of the next level the pool
			// retained below its frontier are still charged; retire both.
			h.gov.Release(lvlBytes + out.Next.Bytes(g.N()))
			return fmt.Errorf("hybrid: canceled during level %d->%d: %w", lvl.K, lvl.K+1, err)
		}
		if out.Tripped {
			// Outputs for inputs < Frontier were released in order (and
			// emitted); the window beyond it was discarded by the pool.
			// Close the pool before the serial drain so its workers'
			// scratch leaves the accounting.
			maximal := out.Stats.Maximal
			p.Close()
			return h.drain(lvl, out.Next.Sub, lvl.Sub[out.Frontier:], maximal, lvlBytes)
		}
		h.observe(LevelStats{
			FromK:         lvl.K,
			Sublists:      len(lvl.Sub),
			Cliques:       lvl.Cliques(),
			Maximal:       out.Stats.Maximal,
			ResidentBytes: lvlBytes + out.Next.Bytes(g.N()),
		})
		h.gov.Release(lvlBytes)
		lvl, homes = out.Next, out.Homes
	}
	h.gov.Release(lvl.Bytes(g.N()))
	return nil
}

// drain switches the run out of core mid-step.  lvl is the consumed
// level (size k); head holds the produced (k+1)-sub-lists retained for
// inputs before the trip frontier, in canonical order; rest holds the
// unjoined input sub-lists from the frontier on.  The produced level
// leaves for disk as one sorted record stream — head records verbatim,
// then the rest's surviving candidates via a spill-mode builder that
// emits their maximal cliques in order — and ooc.Continue runs the level
// loop from there.
func (h *runner) drain(lvl *core.Level, head, rest []*core.SubList, stepMaximal int64, lvlBytes int64) error {
	g, opts := h.g, h.opts
	k := lvl.K + 1 // size of the records being drained
	h.res.SpilledAtLevel = k

	var headCliques int64
	for _, s := range head {
		headCliques += int64(len(s.Tails))
	}
	rawHint := (headCliques + lvl.Cliques()) * 4 * int64(k)

	drainMaximal := stepMaximal
	consumedReleased := false
	oocOpts := ooc.Options{
		Ctx:           opts.Ctx,
		Dir:           opts.Dir,
		Reporter:      h.rep,
		MaxK:          opts.Hi,
		MaxLevelBytes: opts.SpillBudget,
		Workers:       opts.Workers,
		Compress:      opts.Compress,
		Gov:           h.gov,
		OnLevel: func(ls ooc.LevelStats) {
			h.observe(LevelStats{
				FromK:         ls.FromK,
				Cliques:       ls.Cliques,
				Maximal:       ls.Maximal,
				ResidentBytes: ls.FileBytes + ls.NextBytes,
				Spilled:       true,
			})
		},
	}
	st, err := ooc.Continue(g, oocOpts, k, rawHint, func(write func(rec []uint32) error) error {
		rec := make([]uint32, k)
		for i, s := range head {
			if i&63 == 0 && h.ctx().Err() != nil {
				return fmt.Errorf("hybrid: canceled draining level %d: %w", k, h.ctx().Err())
			}
			copy(rec, s.Prefix)
			for _, t := range s.Tails {
				rec[k-1] = t
				if err := write(rec); err != nil {
					return err
				}
			}
			// The head sub-list is on disk now; its resident charge goes.
			h.gov.Release(s.MemBytes(g.N()))
			if s.CN != nil {
				h.bits.Put(s.CN)
				s.CN = nil
			}
		}
		// Join the un-drained inputs with a spill-mode builder: maximal
		// cliques keep flowing to the reporter in canonical order, and
		// survivors append to the same sorted record stream.  Inputs
		// whose bitmaps were already consumed (a discarded parallel
		// window) reconstruct their prefix CN from adjacency rows.
		db := core.NewBuilderMode(g, opts.Mode, h.bits)
		db.Ctx = opts.Ctx
		db.Spill = write
		for i, s := range rest {
			if i&63 == 0 && h.ctx().Err() != nil {
				return fmt.Errorf("hybrid: canceled draining level %d: %w", k, h.ctx().Err())
			}
			db.ProcessSubList(s, h.rep)
			if db.SpillErr != nil {
				return db.SpillErr
			}
		}
		drainMaximal += db.Maximal
		// The consumed level is fully joined and on disk: release it now,
		// inside the feed, so the out-of-core phase runs with Used back
		// under budget instead of carrying the spilled level's bytes to
		// the end of the run.
		h.gov.Release(lvlBytes)
		consumedReleased = true
		// The drained step k-1 -> k is complete here, before the
		// out-of-core loop reports any later level, so observers see the
		// steps in generation order.
		h.observe(LevelStats{
			FromK:         lvl.K,
			Sublists:      len(lvl.Sub),
			Cliques:       lvl.Cliques(),
			Maximal:       drainMaximal,
			ResidentBytes: lvlBytes,
			Spilled:       true,
		})
		return nil
	})
	if !consumedReleased {
		// The drain aborted mid-feed (cancellation, I/O error): the level
		// is abandoned with the run, but the ledger still balances.
		h.gov.Release(lvlBytes)
	}
	h.res.OOC = st
	if err != nil {
		return fmt.Errorf("hybrid: spilled at level %d: %w", k, err)
	}
	return nil
}

func (h *runner) observe(ls LevelStats) {
	if h.opts.OnLevel != nil {
		h.opts.OnLevel(ls)
	}
}
