// Package dist distributes the out-of-core enumeration across worker
// processes.  A coordinator executes one level at a time by leasing the
// level's shard files to workers; each worker joins its shard with the
// same ooc.Joiner the single-machine pool uses, writes its output
// shards into the shared run directory, and reports their metadata
// back.  Results are released in shard order through sched.Sequencer,
// so the merged clique stream is byte-identical to a sequential run at
// any worker count — the same stream-parity law the in-process pool
// obeys.
//
// The first transport is exec/pipe: workers are child processes
// (cliquer -worker / cliqued -worker) speaking the length-prefixed
// protocol below over stdin/stdout.  The Transport interface keeps the
// coordinator transport-agnostic, so a TCP transport can drop in
// without touching it.
//
// Fault tolerance rides on the ooc manifest machinery: every lease
// carries a deadline; a dead or expired worker's shard goes back to
// the table and is re-joined by another worker.  Re-execution is
// idempotent because output shard names embed the shard index and the
// lease attempt (a superseded attempt's files can never collide with
// its replacement's), results are accepted at most once per shard, and
// the level barrier commits the manifest only after every output is
// durable — the outputs-durable → manifest → delete-inputs ordering
// from the single-machine checkpoint path.
package dist

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/ooc"
)

// Wire protocol: 4-byte big-endian frame length followed by one JSON
// Msg.  JSON keeps the first transport debuggable (frames are readable
// in a hex dump) and versionable; the length prefix keeps framing
// trivial over any byte stream.

// maxFrame bounds one frame.  Result frames carry a shard's maximal
// clique emissions, so the bound is generous; anything larger is a
// protocol error, not a bigger buffer.
const maxFrame = 1 << 30

// Message types, in the order a session uses them.
const (
	MsgInit      = "init"      // coordinator → worker: run setup
	MsgReady     = "ready"     // worker → coordinator: setup done, scratch declared
	MsgLease     = "lease"     // coordinator → worker: join one shard
	MsgResult    = "result"    // worker → coordinator: the join's outputs
	MsgHeartbeat = "heartbeat" // worker → coordinator: liveness, sent on a timer
	MsgError     = "error"     // worker → coordinator: fatal worker error
	MsgShutdown  = "shutdown"  // coordinator → worker: clean exit
)

// Msg is one protocol frame.  A single struct (rather than per-type
// payloads) keeps the codec one function pair; unused fields are
// omitted on the wire.
type Msg struct {
	Type string `json:"type"`

	// init
	GraphPath string `json:"graph_path,omitempty"` // edge-list file, relative to Dir
	Dir       string `json:"dir,omitempty"`        // shared run directory
	Compress  bool   `json:"compress,omitempty"`
	WorkerID  string `json:"worker_id,omitempty"`    // the worker's manifest/owner tag
	PingMS    int64  `json:"heartbeat_ms,omitempty"` // worker heartbeat period

	// ready / heartbeat
	ScratchBytes int64  `json:"scratch_bytes,omitempty"` // joiner bitmaps, reserved by the coordinator
	Host         string `json:"host,omitempty"`
	PID          int    `json:"pid,omitempty"`

	// lease
	LeaseID    int64         `json:"lease_id,omitempty"`
	K          int           `json:"k,omitempty"`           // record size of the input shard
	Shard      ooc.ShardMeta `json:"shard,omitempty"`       // input shard to join
	ShardIndex int           `json:"shard_index,omitempty"` // position in the level's shard list
	Attempt    int           `json:"attempt,omitempty"`     // 1-based lease attempt for this shard
	Target     int64         `json:"target,omitempty"`      // output shard target bytes
	Collect    bool          `json:"collect,omitempty"`     // buffer maximal emissions in the result

	// result (echoes LeaseID)
	Out       []ooc.ShardMeta `json:"out,omitempty"` // output shards, in order
	Maximal   int64           `json:"maximal,omitempty"`
	EmitVerts []int           `json:"emit_verts,omitempty"` // flat emission arena
	EmitOff   []int32         `json:"emit_off,omitempty"`   // arena end offsets, one per clique
	BytesRead int64           `json:"bytes_read,omitempty"`

	// error
	Error string `json:"error,omitempty"`
}

// WriteMsg frames and writes one message.  The caller owns any
// buffering and flushing; WriteMsg itself issues exactly two writes.
func WriteMsg(w io.Writer, m *Msg) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("dist: encode %s frame: %w", m.Type, err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("dist: %s frame of %d bytes exceeds limit", m.Type, len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("dist: write frame header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("dist: write %s frame: %w", m.Type, err)
	}
	return nil
}

// ReadMsg reads one framed message.  io.EOF is returned verbatim on a
// clean close between frames (the peer-death signal the coordinator
// watches for); any mid-frame truncation is an error.
func ReadMsg(r io.Reader) (*Msg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("dist: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("dist: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("dist: read frame body: %w", err)
	}
	var m Msg
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("dist: decode frame: %w", err)
	}
	if m.Type == "" {
		return nil, fmt.Errorf("dist: frame without type")
	}
	return &m, nil
}

// pipeConn adapts a read/write stream pair to Conn with buffered,
// flush-per-frame writes.  Send is not safe for concurrent use; both
// the coordinator (per-worker sender) and the worker (send mutex in
// ServeWorker) serialize their sends.
type pipeConn struct {
	r     *bufio.Reader
	w     *bufio.Writer
	close func() error
}

// NewPipeConn wraps a byte-stream pair (a child's stdout/stdin, a TCP
// socket's two directions, an in-process pipe) as a Conn.  closeFn may
// be nil.
func NewPipeConn(r io.Reader, w io.Writer, closeFn func() error) Conn {
	return &pipeConn{r: bufio.NewReader(r), w: bufio.NewWriter(w), close: closeFn}
}

func (c *pipeConn) Send(m *Msg) error {
	if err := WriteMsg(c.w, m); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *pipeConn) Recv() (*Msg, error) { return ReadMsg(c.r) }

func (c *pipeConn) Close() error {
	if c.close == nil {
		return nil
	}
	return c.close()
}
