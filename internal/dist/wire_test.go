package dist

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"testing"

	"repro/internal/ooc"
)

func TestWireRoundTrip(t *testing.T) {
	msgs := []*Msg{
		{Type: MsgInit, Dir: "/tmp/run", GraphPath: GraphFileName, Compress: true,
			WorkerID: "worker-2", PingMS: 250},
		{Type: MsgReady, ScratchBytes: 4096, Host: "h", PID: 99},
		{Type: MsgLease, LeaseID: 7, K: 3,
			Shard:      ooc.ShardMeta{Path: "l003-c-000001.ooc", Records: 12, Runs: 3, Bytes: 80, RawBytes: 144},
			ShardIndex: 4, Attempt: 2, Target: 1 << 16, Collect: true},
		{Type: MsgResult, LeaseID: 7, Maximal: 3,
			Out:       []ooc.ShardMeta{{Path: "l004-s00004-a02-001.ooc", Records: 2, Runs: 1, Bytes: 30, RawBytes: 32}},
			EmitVerts: []int{0, 1, 2, 4, 5, 6}, EmitOff: []int32{3, 6}, BytesRead: 80},
		{Type: MsgHeartbeat},
		{Type: MsgError, LeaseID: 7, Error: "boom"},
		{Type: MsgShutdown},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteMsg(&buf, m); err != nil {
			t.Fatalf("WriteMsg(%s): %v", m.Type, err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMsg(&buf)
		if err != nil {
			t.Fatalf("ReadMsg(%s): %v", want.Type, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip %s:\n got %+v\nwant %+v", want.Type, got, want)
		}
	}
	if _, err := ReadMsg(&buf); err != io.EOF {
		t.Errorf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestWireTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMsg(&buf, &Msg{Type: MsgHeartbeat}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadMsg(bytes.NewReader(trunc)); err == nil || err == io.EOF {
		t.Errorf("truncated body: err = %v, want mid-frame error", err)
	}
	if _, err := ReadMsg(bytes.NewReader(buf.Bytes()[:2])); err == nil || err == io.EOF {
		t.Errorf("truncated header: err = %v, want mid-frame error", err)
	}
}

func TestWireOversizeFrameRejected(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	if _, err := ReadMsg(bytes.NewReader(hdr[:])); err == nil {
		t.Error("oversize frame accepted")
	}
}
