package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/membudget"
	"repro/internal/ooc"
	"repro/internal/sched"
)

// GraphFileName is the shared edge-list file the coordinator writes
// into the run directory for workers to load.
const GraphFileName = "dist-graph.el"

// ReportName is the coordinator's final run report — the distributed
// counterpart of the retired checkpoint manifest, kept after success so
// operators (and the kill-a-worker smoke test) can audit the run's
// re-lease history.
const ReportName = "dist-manifest.json"

// Options configures a distributed enumeration.
type Options struct {
	// Ctx cancels the run between events; nil means Background.
	Ctx context.Context
	// Dir is the shared run directory (required).  The coordinator owns
	// it for the run's duration: graph file, level shards, checkpoint
	// manifest, and final report all live here.
	Dir string
	// Workers is the number of worker slots (>= 1).
	Workers int
	// Transport connects worker slots; nil means the exec/pipe
	// transport spawning WorkerCmd (or this binary with -worker).
	Transport Transport
	// WorkerCmd is the exec transport's worker argv (nil = self).
	WorkerCmd []string
	// LeaseTimeout bounds one shard join; an overdue lease is revoked,
	// its worker killed, and the shard re-leased.  Default 30s.
	LeaseTimeout time.Duration
	// Heartbeat is the worker liveness beacon period; default
	// LeaseTimeout/8 clamped to [100ms, 1s].
	Heartbeat time.Duration
	// MaxDeaths fails the run after this many worker deaths (0 =
	// 2*Workers+2): fault tolerance must not hide a systematically
	// crashing worker binary behind infinite respawns.
	MaxDeaths int
	// Reporter receives maximal cliques in the canonical stream order —
	// byte-identical to a sequential run at any worker count.
	Reporter clique.Reporter
	// MaxK stops after generating cliques of size MaxK (0 = run out).
	MaxK int
	// Compress delta-varint encodes the level shards.
	Compress bool
	// ShardBytes overrides the target shard size (0 = auto).
	ShardBytes int64
	// OnLevel observes each generation step.
	OnLevel func(ooc.LevelStats)
	// Gov is the coordinator's governor — the run's single accounting
	// authority.  Each worker's declared scratch is held as a child
	// reservation for the worker's lifetime; nil means unmetered.
	Gov *membudget.Governor
}

// Stats reports a distributed run.
type Stats struct {
	Maximal         int64
	Levels          int
	Shards          int64
	BytesWritten    int64 // encoded bytes of all produced levels
	RawBytesWritten int64
	BytesRead       int64 // encoded bytes workers read back
	Workers         int
	Releases        int // leases revoked (expiry or death) and re-run
	WorkerDeaths    int
}

// Report is the persisted run summary (ReportName).
type Report struct {
	Owner        ooc.Owner           `json:"owner"`
	Workers      int                 `json:"workers"`
	Levels       int                 `json:"levels"`
	Maximal      int64               `json:"maximal"`
	Shards       int64               `json:"shards"`
	WorkerDeaths int                 `json:"worker_deaths"`
	Releases     []ooc.ReleaseRecord `json:"releases"`
	GraphHash    string              `json:"graph_hash"`
}

func normalize(opts *Options) error {
	if opts.Dir == "" {
		return fmt.Errorf("dist: Dir is required")
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Ctx == nil {
		opts.Ctx = context.Background()
	}
	if opts.LeaseTimeout <= 0 {
		opts.LeaseTimeout = 30 * time.Second
	}
	if opts.Heartbeat <= 0 {
		hb := opts.LeaseTimeout / 8
		if hb < 100*time.Millisecond {
			hb = 100 * time.Millisecond
		}
		if hb > time.Second {
			hb = time.Second
		}
		opts.Heartbeat = hb
	}
	if opts.MaxDeaths <= 0 {
		opts.MaxDeaths = 2*opts.Workers + 2
	}
	if opts.ShardBytes < 0 {
		return fmt.Errorf("dist: negative ShardBytes %d", opts.ShardBytes)
	}
	if opts.Gov == nil {
		opts.Gov = membudget.New(0)
	}
	if opts.Transport == nil {
		opts.Transport = &ExecTransport{Command: opts.WorkerCmd}
	}
	return nil
}

// event is one frame (or stream failure) from a worker slot, funneled
// into the coordinator's single dispatch loop.
type event struct {
	slot int
	gen  int // dial generation, so a dead worker's trailing events are ignored
	msg  *Msg
	err  error
}

// workerState is the coordinator's view of one slot.
type workerState struct {
	slot  int
	gen   int
	conn  Conn
	res   *membudget.Reservation // the worker's scratch, held on its behalf
	ready bool
	lease *Lease
}

// coordinator is one run's state.
type coordinator struct {
	opts   Options
	g      graph.Interface
	dir    string
	owner  ooc.Owner
	fp     string
	events chan event
	done   chan struct{}  // closed at run end; unblocks parked pumps
	reaps  sync.WaitGroup // in-flight async conn closes; joined at run end
	ws     []*workerState
	gens   []int // per-slot dial generation, monotonic across respawns

	table       *LeaseTable // current level's leases (nil between levels)
	levelShards []ooc.ShardMeta
	seq         *sched.Sequencer[*Msg]
	target      int64
	level       int
	collect     bool
	shardSeq    int64

	maximal    int64
	levels     int
	shards     int64
	written    int64
	rawWritten int64
	read       int64
	deaths     int
	releases   []ooc.ReleaseRecord
	claimed    bool
	nextLevel  []ooc.ShardMeta
}

// Enumerate runs the distributed enumeration: the coordinator owns the
// run directory, workers own shard joins, and the merged stream obeys
// the same order law as every other backend.
func Enumerate(g graph.Interface, opts Options) (Stats, error) {
	if err := normalize(&opts); err != nil {
		return Stats{}, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return Stats{}, err
	}
	if ooc.HasManifest(opts.Dir) {
		return Stats{}, fmt.Errorf("dist: %s already holds a checkpoint; Resume or remove it", opts.Dir)
	}
	c := &coordinator{
		opts:   opts,
		g:      g,
		dir:    opts.Dir,
		owner:  ooc.SelfOwner("coordinator"),
		fp:     ooc.Fingerprint(g),
		events: make(chan event, 4*opts.Workers+4),
		done:   make(chan struct{}),
		ws:     make([]*workerState, opts.Workers),
		gens:   make([]int, opts.Workers),
	}
	st, err := c.run()
	return st, err
}

func (c *coordinator) stats() Stats {
	return Stats{
		Maximal:         c.maximal,
		Levels:          c.levels,
		Shards:          c.shards,
		BytesWritten:    c.written,
		RawBytesWritten: c.rawWritten,
		BytesRead:       c.read,
		Workers:         c.opts.Workers,
		Releases:        len(c.releases),
		WorkerDeaths:    c.deaths,
	}
}

func (c *coordinator) run() (Stats, error) {
	defer close(c.done) // parked pumps exit once the run is over
	defer c.reaps.Wait()
	defer c.shutdownWorkers()

	// Ship the graph: exec workers share the host filesystem, so bulk
	// data (graph, shards) moves through the run directory and only
	// metadata crosses the wire.
	if err := c.writeGraph(); err != nil {
		return c.stats(), err
	}
	for i := range c.ws {
		if err := c.startWorker(i); err != nil {
			return c.stats(), err
		}
	}

	// Level 2 — the edge level — is coordinator-written; every later
	// level is assembled from worker output shards.
	shards, err := c.spillEdges()
	if err != nil {
		return c.stats(), err
	}
	if err := c.commitManifest(shards, 2); err != nil {
		return c.stats(), err
	}

	k := 2
	for ooc.LevelRecords(shards) > 0 {
		if c.opts.MaxK > 0 && k >= c.opts.MaxK {
			break
		}
		if err := c.opts.Ctx.Err(); err != nil {
			return c.stats(), fmt.Errorf("dist: canceled before level %d->%d: %w", k, k+1, err)
		}
		next, err := c.runLevel(shards, k)
		if err != nil {
			return c.stats(), err
		}
		// Crash-ordering, inherited from the single-machine checkpoint:
		// produced level durable → manifest names it → consumed level
		// deleted.  Then sweep orphans (a superseded attempt's outputs).
		if err := c.commitManifest(next, k+1); err != nil {
			return c.stats(), err
		}
		if err := c.removeShards(shards); err != nil {
			return c.stats(), err
		}
		if err := ooc.RemoveStaleShards(c.dir, next); err != nil {
			return c.stats(), err
		}
		shards, k = next, k+1
	}

	// Completion: retire the checkpoint manifest before deleting the
	// shards it names, then persist the audit report.
	if err := ooc.RemoveManifest(c.dir); err != nil {
		return c.stats(), err
	}
	if err := c.removeShards(shards); err != nil {
		return c.stats(), err
	}
	if err := os.Remove(filepath.Join(c.dir, GraphFileName)); err != nil {
		return c.stats(), err
	}
	if err := c.writeReport(); err != nil {
		return c.stats(), err
	}
	return c.stats(), nil
}

func (c *coordinator) writeGraph() error {
	f, err := os.Create(filepath.Join(c.dir, GraphFileName))
	if err != nil {
		return fmt.Errorf("dist: write graph: %w", err)
	}
	if err := graph.WriteEdgeList(f, c.g); err != nil {
		return fmt.Errorf("dist: write graph: %w", errors.Join(err, f.Close()))
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("dist: write graph: %w", err)
	}
	return nil
}

func (c *coordinator) nextShardName(k int) string {
	c.shardSeq++
	return ooc.ShardFileName(k, fmt.Sprintf("c-%06d", c.shardSeq))
}

func (c *coordinator) spillEdges() ([]ooc.ShardMeta, error) {
	target := c.opts.ShardBytes
	if target == 0 {
		target = ooc.DefaultShardTarget(8*int64(c.g.M()), c.opts.Workers)
	}
	shards, err := ooc.WriteLevel(c.dir, 2, c.opts.Compress, target, c.opts.Gov,
		func() (string, error) { return c.nextShardName(2), nil },
		func(enc, raw int64) error {
			c.written += enc
			c.rawWritten += raw
			return nil
		},
		ooc.EdgeFeed(c.opts.Ctx, c.g))
	if err != nil {
		return nil, err
	}
	c.shards += int64(len(shards))
	return shards, nil
}

func (c *coordinator) commitManifest(shards []ooc.ShardMeta, k int) error {
	err := ooc.WriteManifest(c.dir, &ooc.Manifest{
		Owner:    c.owner,
		Compress: c.opts.Compress,
		K:        k,
		MaxK:     c.opts.MaxK,
		Shards:   shards,
		Stats: ooc.Stats{
			Maximal:         c.maximal,
			BytesWritten:    c.written,
			RawBytesWritten: c.rawWritten,
			BytesRead:       c.read,
			Levels:          c.levels,
			Shards:          c.shards,
		},
		GraphN:    c.g.N(),
		GraphM:    c.g.M(),
		GraphHash: c.fp,
		Releases:  c.releases,
	}, !c.claimed)
	if err == nil {
		c.claimed = true
	}
	return err
}

func (c *coordinator) writeReport() error {
	data, err := json.MarshalIndent(&Report{
		Owner:        c.owner,
		Workers:      c.opts.Workers,
		Levels:       c.levels,
		Maximal:      c.maximal,
		Shards:       c.shards,
		WorkerDeaths: c.deaths,
		Releases:     append([]ooc.ReleaseRecord{}, c.releases...),
		GraphHash:    c.fp,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("dist: encode report: %w", err)
	}
	tmp := filepath.Join(c.dir, ReportName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("dist: write report: %w", err)
	}
	return os.Rename(tmp, filepath.Join(c.dir, ReportName))
}

func (c *coordinator) removeShards(shards []ooc.ShardMeta) error {
	var errs []error
	for _, s := range shards {
		if err := os.Remove(filepath.Join(c.dir, s.Path)); err != nil && !os.IsNotExist(err) {
			errs = append(errs, fmt.Errorf("dist: remove consumed shard: %w", err))
		}
	}
	return errors.Join(errs...)
}

// startWorker dials a slot and sends init.  The worker becomes
// assignable when its ready frame arrives through the event loop.
func (c *coordinator) startWorker(slot int) error {
	conn, err := c.opts.Transport.Dial(c.opts.Ctx, slot)
	if err != nil {
		return fmt.Errorf("dist: dial worker %d: %w", slot, err)
	}
	c.gens[slot]++
	ws := &workerState{slot: slot, gen: c.gens[slot], conn: conn}
	c.ws[slot] = ws
	if err := conn.Send(&Msg{
		Type:      MsgInit,
		Dir:       c.dir,
		GraphPath: GraphFileName,
		Compress:  c.opts.Compress,
		WorkerID:  fmt.Sprintf("worker-%d", slot),
		PingMS:    c.opts.Heartbeat.Milliseconds(),
	}); err != nil {
		conn.Close()
		return fmt.Errorf("dist: init worker %d: %w", slot, err)
	}
	go c.pump(ws)
	return nil
}

// pump forwards one connection's frames into the event loop until the
// stream breaks.  The final error event carries the break.
func (c *coordinator) pump(ws *workerState) {
	for {
		m, err := ws.conn.Recv()
		select {
		case c.events <- event{slot: ws.slot, gen: ws.gen, msg: m, err: err}:
		case <-c.done:
			return
		}
		if err != nil {
			return
		}
	}
}

// runLevel joins one level's shards across the workers and returns the
// next level's shard list, releasing results in shard order so the
// emitted stream matches the sequential order exactly.
//
//repro:ctxloop
func (c *coordinator) runLevel(shards []ooc.ShardMeta, k int) ([]ooc.ShardMeta, error) {
	c.levels++
	encB, rawB := ooc.LevelBytes(shards)
	lst := ooc.LevelStats{
		FromK:        k,
		Cliques:      ooc.LevelRecords(shards),
		Shards:       len(shards),
		FileBytes:    encB,
		RawFileBytes: rawB,
	}
	maxBefore := c.maximal

	c.level = k
	c.levelShards = shards
	c.table = NewLeaseTable(k, shards, c.opts.LeaseTimeout)
	c.collect = c.opts.Reporter != nil
	c.target = c.opts.ShardBytes
	if c.target == 0 {
		c.target = ooc.DefaultShardTarget(encB, c.opts.Workers)
	}
	c.nextLevel = c.nextLevel[:0]
	c.seq = sched.NewSequencer(len(shards), func(_ int, res *Msg) {
		c.maximal += res.Maximal
		if c.opts.Reporter != nil {
			start := int32(0)
			for _, end := range res.EmitOff {
				c.opts.Reporter.Emit(clique.Clique(res.EmitVerts[start:end]))
				start = end
			}
		}
		c.nextLevel = append(c.nextLevel, res.Out...)
	})

	c.assignAll()
	tick := time.NewTicker(c.opts.Heartbeat)
	defer tick.Stop()
	for !c.table.Done() {
		if err := c.opts.Ctx.Err(); err != nil {
			return nil, fmt.Errorf("dist: canceled during level %d->%d: %w", k, k+1, err)
		}
		select {
		case <-c.opts.Ctx.Done():
			// Observed at the top of the next iteration.
		case ev := <-c.events:
			if err := c.handleEvent(ev); err != nil {
				return nil, err
			}
		case <-tick.C:
			if err := c.expireLeases(); err != nil {
				return nil, err
			}
		}
	}
	c.table = nil
	c.seq = nil

	next := append([]ooc.ShardMeta(nil), c.nextLevel...)
	c.shards += int64(len(next))
	nst, nraw := ooc.LevelBytes(next)
	c.written += nst
	c.rawWritten += nraw
	lst.NextBytes, lst.RawNextBytes = nst, nraw
	lst.Maximal = c.maximal - maxBefore
	if c.opts.OnLevel != nil {
		c.opts.OnLevel(lst)
	}
	return next, nil
}

// handleEvent processes one worker frame (or stream break) during a
// level.
func (c *coordinator) handleEvent(ev event) error {
	ws := c.ws[ev.slot]
	if ws == nil || ws.gen != ev.gen {
		return nil // a dead generation's trailing frame
	}
	now := time.Now()
	if ev.err != nil {
		return c.handleDeath(ws, fmt.Sprintf("worker %d died: %v", ws.slot, ev.err))
	}
	switch ev.msg.Type {
	case MsgReady:
		ws.ready = true
		if ws.res == nil && ev.msg.ScratchBytes > 0 {
			res, err := c.opts.Gov.Reserve(ev.msg.ScratchBytes)
			if err != nil {
				return fmt.Errorf("dist: worker %d scratch admission: %w", ws.slot, err)
			}
			ws.res = res
		}
		c.assign(ws)
	case MsgHeartbeat:
		if ws.lease != nil {
			c.table.Extend(ws.lease.ID, now)
		}
	case MsgResult:
		shard, status := c.table.Complete(ev.msg.LeaseID, now)
		if ws.lease != nil && ws.lease.ID == ev.msg.LeaseID {
			ws.lease = nil
		}
		switch status {
		case Accepted:
			c.read += ev.msg.BytesRead
			c.seq.Deposit(shard, ev.msg)
		case Duplicate:
			// The accepted delivery owns the files; nothing to do.
		case Stale:
			// A superseded lease's outputs are orphans — delete now so
			// a re-leased shard's accepted outputs are never shadowed.
			if err := c.removeShards(ev.msg.Out); err != nil {
				return err
			}
		}
		c.assign(ws)
	case MsgError:
		return fmt.Errorf("dist: worker %d failed: %s", ws.slot, ev.msg.Error)
	default:
		return fmt.Errorf("dist: unexpected %s frame from worker %d", ev.msg.Type, ws.slot)
	}
	return nil
}

// handleDeath revokes a dead worker's lease, returns its scratch
// reservation, and respawns the slot.
func (c *coordinator) handleDeath(ws *workerState, reason string) error {
	c.deaths++
	// Exec close reaps the child without blocking dispatch; the run
	// joins these before returning so no close outlives the coordinator.
	c.reaps.Add(1)
	conn := ws.conn
	go func() {
		defer c.reaps.Done()
		_ = conn.Close() //nolint:cleanuperr the worker is already dead; the close exists to reap it
	}()
	if ws.res != nil {
		ws.res.Close()
		ws.res = nil
	}
	if ws.lease != nil && c.table != nil {
		if c.table.Release(ws.lease.ID, reason, time.Now()) {
			c.recordReleases()
		}
		ws.lease = nil
	}
	if c.deaths > c.opts.MaxDeaths {
		return fmt.Errorf("dist: %d worker deaths (limit %d); last: %s",
			c.deaths, c.opts.MaxDeaths, reason)
	}
	if err := c.startWorker(ws.slot); err != nil {
		return err
	}
	return nil
}

// expireLeases sweeps overdue leases: each one's shard returns to the
// pool, the overdue worker is killed (its late result must classify as
// stale, and SIGKILL guarantees no further writes), and the slot is
// respawned.
func (c *coordinator) expireLeases() error {
	if c.table == nil {
		return nil
	}
	expired := c.table.Expire(time.Now())
	if len(expired) == 0 {
		return nil
	}
	c.recordReleases()
	for _, l := range expired {
		ws := c.ws[l.Worker]
		if ws == nil || ws.lease == nil || ws.lease.ID != l.ID {
			continue
		}
		ws.lease = nil
		_ = c.opts.Transport.Kill(ws.slot)
		if err := c.handleDeath(ws, "lease expired"); err != nil {
			return err
		}
	}
	c.assignAll()
	return nil
}

// recordReleases syncs the run-wide release history from the current
// table (idempotent: the table's history is authoritative per level).
func (c *coordinator) recordReleases() {
	if c.table == nil {
		return
	}
	rel := c.table.Releases()
	// Replace this level's slice suffix: count entries from this level.
	base := 0
	for _, r := range c.releases {
		if r.Level != c.level {
			base++
		}
	}
	c.releases = append(c.releases[:base], rel...)
}

// assign hands an idle, ready worker the next pending shard.
func (c *coordinator) assign(ws *workerState) {
	if c.table == nil || !ws.ready || ws.lease != nil {
		return
	}
	l, ok := c.table.Acquire(ws.slot, time.Now())
	if !ok {
		return
	}
	ws.lease = &l
	err := ws.conn.Send(&Msg{
		Type:       MsgLease,
		LeaseID:    l.ID,
		K:          c.level,
		Shard:      c.levelShards[l.Shard],
		ShardIndex: l.Shard,
		Attempt:    l.Attempt,
		Target:     c.target,
		Collect:    c.collect,
	})
	if err != nil {
		// The pump will also observe the break; revoking here just gets
		// the shard back into the pool sooner.
		_ = c.table.Release(l.ID, fmt.Sprintf("worker %d send failed: %v", ws.slot, err), time.Now())
		c.recordReleases()
		ws.lease = nil
	}
}

func (c *coordinator) assignAll() {
	for _, ws := range c.ws {
		if ws != nil {
			c.assign(ws)
		}
	}
}

func (c *coordinator) shutdownWorkers() {
	for _, ws := range c.ws {
		if ws == nil {
			continue
		}
		_ = ws.conn.Send(&Msg{Type: MsgShutdown})
		_ = ws.conn.Close() //nolint:cleanuperr best-effort teardown; the run is already decided
		if ws.res != nil {
			ws.res.Close()
			ws.res = nil
		}
	}
}
