package dist

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"sync"
)

// Environment contract between ExecTransport and worker processes.
const (
	// EnvWorker marks a process as a dist worker.  Binaries that can
	// serve as workers (cliquer, cliqued, the test binary) check it
	// before flag parsing and hand control to WorkerMain.
	EnvWorker = "REPRO_DIST_WORKER"
	// EnvWorkerIndex is the worker's slot index, for logs and for
	// fault-injection targeting.
	EnvWorkerIndex = "REPRO_DIST_WORKER_INDEX"
	// EnvDieAfter ("slot:count") makes the worker on that slot exit
	// hard upon receiving its count-th lease — a deterministic
	// mid-level crash for the recovery tests.  The lease is in flight
	// when the worker dies, so the coordinator must re-lease it.
	EnvDieAfter = "REPRO_DIST_DIE_AFTER"
	// EnvDieOnce names a sentinel file making EnvDieAfter one-shot
	// across respawns: the first incarnation to reach its death point
	// creates the file and dies; later incarnations see it and live.
	EnvDieOnce = "REPRO_DIST_DIE_ONCE"
)

// ExecTransport spawns each worker as a child process speaking the wire
// protocol over stdin/stdout — the exec/pipe transport.  The zero value
// re-executes the current binary; set Command to spawn a different
// worker binary (e.g. "cliqued" "-worker").
type ExecTransport struct {
	// Command is the worker argv.  Empty means [os.Executable(),
	// "-worker"].  The "-worker" argument is advisory (activation is by
	// environment), but it makes workers identifiable in ps/pgrep.
	Command []string
	// Env entries are appended to the child's inherited environment.
	Env []string

	mu    sync.Mutex
	procs map[int]*exec.Cmd
}

func (t *ExecTransport) Dial(ctx context.Context, i int) (Conn, error) {
	argv := t.Command
	if len(argv) == 0 {
		self, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("dist: resolve worker binary: %w", err)
		}
		argv = []string{self, "-worker"}
	}
	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(),
		EnvWorker+"=1",
		EnvWorkerIndex+"="+strconv.Itoa(i))
	cmd.Env = append(cmd.Env, t.Env...)
	cmd.Stderr = os.Stderr // worker diagnostics pass through
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: worker stdin: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: worker stdout: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: start worker %d (%s): %w", i, argv[0], err)
	}
	t.mu.Lock()
	if t.procs == nil {
		t.procs = make(map[int]*exec.Cmd)
	}
	t.procs[i] = cmd
	t.mu.Unlock()
	return NewPipeConn(stdout, stdin, func() error {
		stdin.Close()
		// Reap the child; a worker killed or exiting nonzero is not an
		// error at transport level — the coordinator already classified
		// the death from the broken stream.
		_ = cmd.Wait()
		return nil
	}), nil
}

func (t *ExecTransport) Kill(i int) error {
	t.mu.Lock()
	cmd := t.procs[i]
	t.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("dist: kill: no worker on slot %d", i)
	}
	return cmd.Process.Kill()
}
