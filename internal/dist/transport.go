package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Conn is one worker's framed, bidirectional message stream.  Send and
// Recv are each called from a single goroutine (the coordinator's
// dispatcher sends; a per-worker pump receives); implementations need
// not serialize beyond that.
type Conn interface {
	Send(*Msg) error
	Recv() (*Msg, error)
	Close() error
}

// Transport starts workers and wires them to the coordinator.  The
// coordinator is transport-agnostic: exec/pipe today, TCP tomorrow,
// in-process loopback in the tests — none of them change a line of
// coordinator code.
type Transport interface {
	// Dial starts (or connects to) worker slot i and returns its
	// connection.  Slots are dialed again after a worker dies; each
	// Dial is a fresh worker process/goroutine.
	Dial(ctx context.Context, i int) (Conn, error)
	// Kill forcibly terminates the most recent worker on slot i — the
	// revocation behind lease expiry.  Best effort; killing an
	// already-dead worker is not an error.
	Kill(i int) error
}

// LoopbackTransport runs each worker as an in-process goroutine over
// io.Pipe pairs — no exec, no sandbox, and the race detector sees both
// sides.  Used by unit tests; Kill closes the worker's pipes, which the
// worker experiences as a fatal transport error (the closest loopback
// analogue of SIGKILL).
type LoopbackTransport struct {
	// Serve runs the worker side over conn; defaults to ServeWorker.
	Serve func(ctx context.Context, conn Conn) error

	mu    sync.Mutex
	kills map[int]func()
}

func (t *LoopbackTransport) Dial(ctx context.Context, i int) (Conn, error) {
	serve := t.Serve
	if serve == nil {
		serve = ServeWorker
	}
	c2w := newPipe() // coordinator → worker
	w2c := newPipe() // worker → coordinator
	workerConn := NewPipeConn(c2w.r, w2c.w, func() error {
		return errors.Join(c2w.r.Close(), w2c.w.Close())
	})
	coordConn := NewPipeConn(w2c.r, c2w.w, func() error {
		return errors.Join(c2w.w.Close(), w2c.r.Close())
	})
	go func() {
		// A worker error surfaces to the coordinator as a broken pipe
		// (plus the error frame ServeWorker sends when it still can).
		_ = serve(ctx, workerConn)
		_ = workerConn.Close() //nolint:cleanuperr in-process pipe halves cannot fail to close
	}()
	t.mu.Lock()
	if t.kills == nil {
		t.kills = make(map[int]func())
	}
	t.kills[i] = func() {
		c2w.r.CloseWithError(io.ErrClosedPipe)
		w2c.w.CloseWithError(io.ErrClosedPipe)
	}
	t.mu.Unlock()
	return coordConn, nil
}

func (t *LoopbackTransport) Kill(i int) error {
	t.mu.Lock()
	kill := t.kills[i]
	t.mu.Unlock()
	if kill == nil {
		return fmt.Errorf("dist: loopback kill: no worker on slot %d", i)
	}
	kill()
	return nil
}

type pipePair struct {
	r *io.PipeReader
	w *io.PipeWriter
}

func newPipe() pipePair {
	r, w := io.Pipe()
	return pipePair{r, w}
}
