package dist

import (
	"sync"
	"testing"
	"time"

	"repro/internal/ooc"
)

func testShards(n int) []ooc.ShardMeta {
	shards := make([]ooc.ShardMeta, n)
	for i := range shards {
		shards[i] = ooc.ShardMeta{Path: ooc.ShardFileName(3, "t"), Records: 1, Bytes: 8}
	}
	return shards
}

// TestLeaseExpiryDuringInFlightDelivery pins the race the lease table
// exists for: the lease expires while its result is in flight, so the
// late delivery must classify Stale (files deleted), and the re-leased
// attempt's delivery must be the accepted one.
func TestLeaseExpiryDuringInFlightDelivery(t *testing.T) {
	t0 := time.Unix(1000, 0)
	tab := NewLeaseTable(3, testShards(1), time.Second)

	l1, ok := tab.Acquire(0, t0)
	if !ok || l1.Shard != 0 || l1.Attempt != 1 {
		t.Fatalf("first acquire = %+v, %v", l1, ok)
	}
	// Worker 0's result is "in flight" when the sweep runs.
	expired := tab.Expire(t0.Add(2 * time.Second))
	if len(expired) != 1 || expired[0].ID != l1.ID {
		t.Fatalf("Expire = %+v, want lease %d", expired, l1.ID)
	}
	// The late delivery lands after the sweep: must be Stale.
	if shard, st := tab.Complete(l1.ID, t0.Add(2*time.Second)); st != Stale {
		t.Fatalf("late delivery: (%d, %v), want Stale", shard, st)
	}
	if tab.Done() {
		t.Fatal("table done after stale delivery")
	}
	// Re-lease carries the next attempt number.
	l2, ok := tab.Acquire(1, t0.Add(2*time.Second))
	if !ok || l2.Shard != 0 || l2.Attempt != 2 {
		t.Fatalf("re-lease = %+v, %v, want shard 0 attempt 2", l2, ok)
	}
	if shard, st := tab.Complete(l2.ID, t0.Add(3*time.Second)); st != Accepted || shard != 0 {
		t.Fatalf("re-leased delivery: (%d, %v), want (0, Accepted)", shard, st)
	}
	if !tab.Done() {
		t.Fatal("table not done after accepted delivery")
	}
	rel := tab.Releases()
	if len(rel) != 1 || rel[0].Reason != "lease expired" || rel[0].Attempt != 1 || rel[0].Worker != 0 {
		t.Fatalf("release history = %+v", rel)
	}
}

// TestLeaseDoubleRelease: a lease settles exactly once — the second
// release of the same shard's lease is a no-op, not a second history
// entry or a corrupted pending pool.
func TestLeaseDoubleRelease(t *testing.T) {
	t0 := time.Unix(1000, 0)
	tab := NewLeaseTable(3, testShards(2), time.Second)
	l, _ := tab.Acquire(0, t0)
	if !tab.Release(l.ID, "worker died", t0) {
		t.Fatal("first release reported false")
	}
	if tab.Release(l.ID, "worker died again", t0) {
		t.Fatal("second release of the same lease reported true")
	}
	if n := len(tab.Releases()); n != 1 {
		t.Fatalf("release history has %d entries, want 1", n)
	}
	// The shard is pending again exactly once: two acquires must grab
	// the two distinct shards, a third finds nothing.
	a, _ := tab.Acquire(1, t0) //nolint:leasestate deliberately parked lease: the test asserts shard exclusivity
	b, _ := tab.Acquire(2, t0) //nolint:leasestate deliberately parked lease: the test asserts shard exclusivity
	if a.Shard == b.Shard {
		t.Fatalf("double-released shard handed out twice: %d and %d", a.Shard, b.Shard)
	}
	if _, ok := tab.Acquire(3, t0); ok { //nolint:leasestate probe must fail; nothing is leased when ok is false
		t.Fatal("third acquire found a shard in a 2-shard table")
	}
}

// TestLeaseReLeaseRacingCompletion: after a heartbeat-timeout re-lease,
// whichever delivery belongs to the live lease wins — the superseded
// worker's result is stale even if it arrives first, and a result that
// beats the expiry sweep is accepted even past its deadline.
func TestLeaseReLeaseRacingCompletion(t *testing.T) {
	t0 := time.Unix(1000, 0)

	// Arm A, expire it, re-lease to B.  A delivers first, then B.
	tab := NewLeaseTable(3, testShards(1), time.Second)
	a, _ := tab.Acquire(0, t0)
	tab.Expire(t0.Add(5 * time.Second))
	b, _ := tab.Acquire(1, t0.Add(5*time.Second))
	if _, st := tab.Complete(a.ID, t0.Add(5*time.Second)); st != Stale {
		t.Fatalf("superseded worker's delivery = %v, want Stale", st)
	}
	if _, st := tab.Complete(b.ID, t0.Add(6*time.Second)); st != Accepted {
		t.Fatalf("live lease's delivery = %v, want Accepted", st)
	}

	// The mirror race: A's result beats the sweep.  It is accepted
	// (deadline notwithstanding), the sweep then finds nothing, and no
	// re-lease ever happens.
	tab = NewLeaseTable(3, testShards(1), time.Second)
	a, _ = tab.Acquire(0, t0)
	if _, st := tab.Complete(a.ID, t0.Add(5*time.Second)); st != Accepted {
		t.Fatalf("pre-sweep delivery = %v, want Accepted", st)
	}
	if exp := tab.Expire(t0.Add(5 * time.Second)); len(exp) != 0 {
		t.Fatalf("sweep after acceptance expired %+v", exp)
	}
	if _, ok := tab.Acquire(1, t0.Add(5*time.Second)); ok { //nolint:leasestate probe must fail; nothing is leased when ok is false
		t.Fatal("completed shard re-leased")
	}
	if !tab.Done() {
		t.Fatal("table not done")
	}
	// A retransmit of the accepted result is Duplicate — files stay.
	if _, st := tab.Complete(a.ID, t0.Add(6*time.Second)); st != Duplicate {
		t.Fatalf("retransmit = %v, want Duplicate", st)
	}
}

// TestLeaseExtend: liveness proof pushes the deadline out, so a slow
// worker that heartbeats is never swept.
func TestLeaseExtend(t *testing.T) {
	t0 := time.Unix(1000, 0)
	tab := NewLeaseTable(3, testShards(1), time.Second)
	l, _ := tab.Acquire(0, t0)
	if !tab.Extend(l.ID, t0.Add(900*time.Millisecond)) {
		t.Fatal("extend of live lease reported false")
	}
	if exp := tab.Expire(t0.Add(1500 * time.Millisecond)); len(exp) != 0 {
		t.Fatalf("extended lease expired: %+v", exp)
	}
	if exp := tab.Expire(t0.Add(3 * time.Second)); len(exp) != 1 {
		t.Fatalf("lease never expired after extension lapsed: %+v", exp)
	}
	if tab.Extend(l.ID, t0.Add(4*time.Second)) {
		t.Fatal("extend of a released lease reported true")
	}
}

// TestLeaseTableConcurrent hammers the table from many goroutines so
// the race detector (make race) can see any unlocked path.  Invariant
// checked: every shard is accepted exactly once.
func TestLeaseTableConcurrent(t *testing.T) {
	const shards = 64
	const workers = 8
	tab := NewLeaseTable(3, testShards(shards), 50*time.Millisecond)
	var accepted sync.Map
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !tab.Done() {
				now := time.Now()
				tab.Expire(now)
				l, ok := tab.Acquire(w, now)
				if !ok {
					continue
				}
				// Half the workers are "slow": release instead of
				// completing, forcing re-leases.
				if w%2 == 1 && l.Attempt == 1 {
					tab.Release(l.ID, "simulated death", now)
					continue
				}
				if shard, st := tab.Complete(l.ID, time.Now()); st == Accepted {
					if _, dup := accepted.LoadOrStore(shard, w); dup {
						t.Errorf("shard %d accepted twice", shard)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	n := 0
	accepted.Range(func(any, any) bool { n++; return true })
	if n != shards {
		t.Fatalf("%d shards accepted, want %d", n, shards)
	}
}
