package dist

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/membudget"
	"repro/internal/ooc"
)

// TestMain lets this test binary serve as an exec/pipe worker: the
// coordinator's default exec transport re-executes the running binary,
// and the environment marker routes the child into WorkerMain before
// any test runs.
func TestMain(m *testing.M) {
	if WorkerEnabled() {
		WorkerMain()
	}
	os.Exit(m.Run())
}

// testGraph is the shared fixture: planted cliques with overlap on a
// random background, dense enough to make several levels.
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	return graph.PlantedGraph(rng, 48, []graph.PlantedCliqueSpec{
		{Size: 9},
		{Size: 7, Overlap: 3},
		{Size: 6, Overlap: 2},
	}, 140)
}

// orderedReporter records the exact emission sequence — parity checks
// compare order, not just sets.
type orderedReporter struct{ seq []clique.Clique }

func (r *orderedReporter) Emit(c clique.Clique) { r.seq = append(r.seq, c.Clone()) }

func sequentialStream(t *testing.T, g *graph.Graph, compress bool) []clique.Clique {
	t.Helper()
	var ref orderedReporter
	if _, err := ooc.Enumerate(g, ooc.Options{
		Dir:      t.TempDir(),
		Reporter: &ref,
		Compress: compress,
	}); err != nil {
		t.Fatalf("sequential reference: %v", err)
	}
	return ref.seq
}

func assertSameStream(t *testing.T, label string, got, want []clique.Clique) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d cliques, sequential emitted %d", label, len(got), len(want))
	}
	for i := range want {
		if clique.Compare(got[i], want[i]) != 0 {
			t.Fatalf("%s: clique %d = %v, sequential emitted %v (stream order diverged)",
				label, i, got[i], want[i])
		}
	}
}

// TestDistStreamParityMatrix is the acceptance matrix: coordinator + N
// exec/pipe workers must emit a stream identical (content AND order) to
// the sequential backend, for N in {1,2,4}, raw and compressed shards.
func TestDistStreamParityMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	g := testGraph(t)
	for _, compress := range []bool{false, true} {
		want := sequentialStream(t, g, compress)
		if len(want) == 0 {
			t.Fatal("reference stream is empty; fixture too sparse")
		}
		for _, workers := range []int{1, 2, 4} {
			name := fmt.Sprintf("workers=%d/compress=%v", workers, compress)
			t.Run(name, func(t *testing.T) {
				var rep orderedReporter
				st, err := Enumerate(g, Options{
					Dir:        t.TempDir(),
					Workers:    workers,
					Compress:   compress,
					ShardBytes: 256, // many shards per level: real leasing traffic
					Reporter:   &rep,
				})
				if err != nil {
					t.Fatalf("dist enumerate: %v", err)
				}
				assertSameStream(t, name, rep.seq, want)
				if st.Maximal != int64(len(want)) {
					t.Errorf("Stats.Maximal = %d, want %d", st.Maximal, len(want))
				}
				if st.Workers != workers {
					t.Errorf("Stats.Workers = %d, want %d", st.Workers, workers)
				}
			})
		}
	}
}

// TestDistKillWorkerRecovery is the fault-tolerance half of the
// acceptance criterion: one worker dies mid-level with a lease in
// flight, the shard is re-leased, and the final stream is still
// byte-identical — with the re-lease visible in the persisted report.
func TestDistKillWorkerRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	g := testGraph(t)
	want := sequentialStream(t, g, false)
	dir := t.TempDir()
	var rep orderedReporter
	st, err := Enumerate(g, Options{
		Dir:        dir,
		Workers:    3,
		ShardBytes: 256,
		Reporter:   &rep,
		Transport: &ExecTransport{Env: []string{
			// Slot 1 crashes upon receiving its 2nd lease — once.
			EnvDieAfter + "=1:2",
			EnvDieOnce + "=" + filepath.Join(t.TempDir(), "died"),
		}},
	})
	if err != nil {
		t.Fatalf("dist enumerate with crash: %v", err)
	}
	assertSameStream(t, "after worker kill", rep.seq, want)
	if st.WorkerDeaths == 0 {
		t.Error("Stats.WorkerDeaths = 0; fault injection never fired")
	}
	if st.Releases == 0 {
		t.Error("Stats.Releases = 0; the in-flight shard was never re-leased")
	}
	data, err := os.ReadFile(filepath.Join(dir, ReportName))
	if err != nil {
		t.Fatalf("run report: %v", err)
	}
	var report Report
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("decode report: %v", err)
	}
	if len(report.Releases) == 0 {
		t.Error("report shows no re-leased shard")
	}
	for _, r := range report.Releases {
		if r.Shard == "" || r.Reason == "" {
			t.Errorf("release record incomplete: %+v", r)
		}
	}
	if report.WorkerDeaths != st.WorkerDeaths {
		t.Errorf("report deaths %d != stats deaths %d", report.WorkerDeaths, st.WorkerDeaths)
	}
}

// TestDistLoopbackParityAndAccounting runs the coordinator over the
// in-process loopback transport — the configuration `make race`
// exercises with the race detector watching both sides — and checks
// the governor's zero-residual law: after the run every worker
// reservation and every transient buffer has been returned.
func TestDistLoopbackParityAndAccounting(t *testing.T) {
	g := testGraph(t)
	want := sequentialStream(t, g, true)
	gov := membudget.New(0)
	var rep orderedReporter
	st, err := Enumerate(g, Options{
		Dir:        t.TempDir(),
		Workers:    3,
		Compress:   true,
		ShardBytes: 256,
		Reporter:   &rep,
		Transport:  &LoopbackTransport{},
		Gov:        gov,
	})
	if err != nil {
		t.Fatalf("loopback enumerate: %v", err)
	}
	assertSameStream(t, "loopback", rep.seq, want)
	if st.Maximal != int64(len(want)) {
		t.Errorf("Stats.Maximal = %d, want %d", st.Maximal, len(want))
	}
	if used := gov.Used(); used != 0 {
		t.Errorf("governor residual after run: %d bytes (reservation leak)", used)
	}
	if gov.Peak() == 0 {
		t.Error("governor peak is zero: worker scratch was never accounted")
	}
}

// TestDistRunDirCleanup: a successful run leaves only the audit report
// in the run directory — shards, manifest, and the shipped graph are
// all retired.
func TestDistRunDirCleanup(t *testing.T) {
	g := testGraph(t)
	dir := t.TempDir()
	if _, err := Enumerate(g, Options{
		Dir:       dir,
		Workers:   2,
		Transport: &LoopbackTransport{},
	}); err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != ReportName {
			t.Errorf("leftover file after successful run: %s", e.Name())
		}
	}
	if ooc.HasManifest(dir) {
		t.Error("checkpoint manifest survived a successful run")
	}
}

// TestDistNoGoroutineLeakAfterDeaths pins the handleDeath reaper join:
// every asynchronous connection close spawned for a dead worker is
// awaited before Enumerate returns, so crash-recovery runs leave no
// straggler goroutines behind — the invariant goroleak enforces
// statically at the launch site.
func TestDistNoGoroutineLeakAfterDeaths(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	g := testGraph(t)
	before := runtime.NumGoroutine()
	for i := 0; i < 2; i++ {
		if _, err := Enumerate(g, Options{
			Dir:        t.TempDir(),
			Workers:    3,
			ShardBytes: 256,
			Transport: &ExecTransport{Env: []string{
				EnvDieAfter + "=1:2",
				EnvDieOnce + "=" + filepath.Join(t.TempDir(), "died"),
			}},
		}); err != nil {
			t.Fatalf("run %d with crash: %v", i, err)
		}
	}
	// Pump goroutines unwind asynchronously after run() closes c.done;
	// only a bounded settling window is acceptable, not a leak per run.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before the runs, %d after settling",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
