package dist

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/membudget"
	"repro/internal/ooc"
)

// WorkerEnabled reports whether this process was spawned as a dist
// worker (the exec transport's environment marker).  Binaries check it
// before parsing flags and hand the process to WorkerMain.
func WorkerEnabled() bool { return os.Getenv(EnvWorker) == "1" }

// WorkerMain serves the wire protocol over stdin/stdout and exits the
// process: 0 on a clean shutdown, 1 on error.  It is the entire main()
// of a worker-mode process.
func WorkerMain() {
	conn := NewPipeConn(os.Stdin, os.Stdout, nil)
	if err := ServeWorker(context.Background(), conn); err != nil {
		fmt.Fprintf(os.Stderr, "dist worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// lockedConn serializes sends between the worker's main loop and its
// heartbeat goroutine.
type lockedConn struct {
	mu sync.Mutex
	c  Conn
}

func (l *lockedConn) send(m *Msg) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.Send(m)
}

// ServeWorker runs one worker session: receive init, load the shared
// graph, declare scratch, then join leased shards until shutdown.  The
// same function serves an exec'd child (over stdin/stdout) and a
// loopback goroutine (over in-process pipes), so the protocol has
// exactly one implementation.
//
//repro:ctxloop
func ServeWorker(ctx context.Context, conn Conn) error {
	init, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("dist: worker awaiting init: %w", err)
	}
	if init.Type != MsgInit {
		return fmt.Errorf("dist: worker expected init, got %s", init.Type)
	}
	f, err := os.Open(filepath.Join(init.Dir, init.GraphPath))
	if err != nil {
		return fmt.Errorf("dist: worker graph: %w", err)
	}
	g, err := graph.ReadEdgeList(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("dist: worker graph: %w", err)
	}
	join := ooc.NewJoiner(g)
	// The worker's local governor only meters transient I/O buffers;
	// global accounting lives with the coordinator, which reserved this
	// worker's declared scratch from the single authoritative governor.
	gov := membudget.New(0)
	self := ooc.SelfOwner(init.WorkerID)
	out := &lockedConn{c: conn}
	if err := out.send(&Msg{
		Type:         MsgReady,
		ScratchBytes: join.ScratchBytes(),
		Host:         self.Host,
		PID:          self.PID,
	}); err != nil {
		return err
	}

	// Liveness beacon: independent of join progress, so a long join does
	// not read as death — a hung shard is the lease deadline's problem,
	// a dead process breaks the pipe.
	ping := 500 * time.Millisecond
	if init.PingMS > 0 {
		ping = time.Duration(init.PingMS) * time.Millisecond
	}
	stopPing := make(chan struct{})
	defer close(stopPing)
	go func() {
		t := time.NewTicker(ping)
		defer t.Stop()
		for {
			select {
			case <-stopPing:
				return
			case <-t.C:
				if out.send(&Msg{Type: MsgHeartbeat}) != nil {
					return
				}
			}
		}
	}()

	dieAfter := dieAfterCount()
	leases := 0
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		m, err := conn.Recv()
		if err != nil {
			return fmt.Errorf("dist: worker receive: %w", err)
		}
		switch m.Type {
		case MsgShutdown:
			return nil
		case MsgHeartbeat:
			// Coordinator ping; our own beacon already answers liveness.
		case MsgLease:
			leases++
			if dieAfter > 0 && leases >= dieAfter && claimDeath() {
				// Fault injection: die with the lease in flight, the way
				// a real crash would — no error frame, no cleanup.
				os.Exit(3)
			}
			res, jerr := joinLease(ctx, join, gov, init, m)
			if jerr != nil {
				// A join error is fatal for this worker: report it so
				// the coordinator can fail fast (a transport break alone
				// would look like a crash and trigger pointless retry).
				_ = out.send(&Msg{Type: MsgError, LeaseID: m.LeaseID, Error: jerr.Error()})
				return fmt.Errorf("dist: worker join: %w", jerr)
			}
			if err := out.send(res); err != nil {
				return err
			}
		default:
			return fmt.Errorf("dist: worker got unexpected %s frame", m.Type)
		}
	}
}

// joinLease executes one lease: join the input shard, writing output
// shards whose names embed the shard index and lease attempt — the
// uniqueness that makes re-execution of an expired lease collision-free
// by construction.
func joinLease(ctx context.Context, join *ooc.Joiner, gov *membudget.Governor,
	init *Msg, m *Msg) (*Msg, error) {
	seq := 0
	out := ooc.NewLevelWriter(init.Dir, m.K+1, init.Compress, m.Target, gov,
		func() (string, error) {
			seq++
			return ooc.ShardFileName(m.K+1,
				fmt.Sprintf("s%05d-a%02d-%03d", m.ShardIndex, m.Attempt, seq)), nil
		},
		func(enc, raw int64) error { return nil })
	st, err := join.JoinShard(ctx, init.Dir, m.Shard, m.K, init.Compress, gov, out, m.Collect)
	if err != nil {
		return nil, fmt.Errorf("%w (abort: %v)", err, out.Abort())
	}
	metas, err := out.Finish()
	if err != nil {
		return nil, err
	}
	return &Msg{
		Type:      MsgResult,
		LeaseID:   m.LeaseID,
		Out:       metas,
		Maximal:   st.Maximal,
		EmitVerts: st.EmitVerts,
		EmitOff:   st.EmitOff,
		BytesRead: st.BytesRead,
	}, nil
}

// claimDeath makes the injected crash one-shot across respawns when
// EnvDieOnce names a sentinel file: only the incarnation that creates
// the sentinel dies.  Without EnvDieOnce every incarnation dies.
func claimDeath() bool {
	path := os.Getenv(EnvDieOnce)
	if path == "" {
		return true
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return false // sentinel exists: someone already died
	}
	_ = f.Close() //nolint:cleanuperr the O_EXCL create IS the claim; the empty sentinel has nothing to flush
	return true
}

// dieAfterCount decodes the fault-injection contract: EnvDieAfter is
// "slot:count", and applies only when this process's EnvWorkerIndex
// matches slot.  Returns 0 (never die) otherwise.
func dieAfterCount() int {
	spec := os.Getenv(EnvDieAfter)
	if spec == "" {
		return 0
	}
	slot, count, ok := strings.Cut(spec, ":")
	if !ok {
		return 0
	}
	if slot != os.Getenv(EnvWorkerIndex) {
		return 0
	}
	n, err := strconv.Atoi(count)
	if err != nil {
		return 0
	}
	return n
}
