package dist

import (
	"sync"
	"time"

	"repro/internal/ooc"
)

// CompleteStatus classifies a result delivery against the lease table.
type CompleteStatus int

const (
	// Accepted: the result came from the shard's live lease and is the
	// shard's one accepted join.  Its output files are now owned by the
	// level.
	Accepted CompleteStatus = iota
	// Duplicate: the same lease's result was already accepted (a
	// retransmit).  The files on disk are the accepted ones — ignore
	// the delivery, do not delete anything.
	Duplicate
	// Stale: the lease was superseded (expired and re-leased, or its
	// worker was declared dead) before the result arrived.  The
	// delivery's output files are orphans and must be deleted.
	Stale
)

func (s CompleteStatus) String() string {
	switch s {
	case Accepted:
		return "accepted"
	case Duplicate:
		return "duplicate"
	case Stale:
		return "stale"
	}
	return "unknown"
}

// Lease is one grant: join shard Shard (index into the level's shard
// list) and deliver the result before Deadline.  Attempt counts grants
// of this shard (1-based), and is baked into the worker's output shard
// names so re-executions cannot collide.
type Lease struct {
	ID       int64
	Shard    int
	Worker   int
	Attempt  int
	Deadline time.Time
}

// LeaseTable tracks one level's shards through the lease lifecycle
//
//	pending --Acquire--> leased --Complete--> done
//	            ^            |
//	            +--Release/Expire (recorded as a ReleaseRecord)
//
// Every transition takes an explicit clock so the expiry races the
// tests pin down are deterministic.  All methods are safe for
// concurrent use.
type LeaseTable struct {
	mu       sync.Mutex
	level    int // clique size of the level's records (for release records)
	names    []string
	timeout  time.Duration
	nextID   int64
	cur      []Lease // live lease per shard; ID 0 = none
	attempts []int   // grants so far per shard
	done     []bool
	doneN    int
	byID     map[int64]int // live lease ID -> shard
	accepted map[int64]int // accepted lease ID -> shard
	releases []ooc.ReleaseRecord
}

// NewLeaseTable builds the table for one level's shard list.
func NewLeaseTable(level int, shards []ooc.ShardMeta, timeout time.Duration) *LeaseTable {
	names := make([]string, len(shards))
	for i, s := range shards {
		names[i] = s.Path
	}
	return &LeaseTable{
		level:    level,
		names:    names,
		timeout:  timeout,
		cur:      make([]Lease, len(shards)),
		attempts: make([]int, len(shards)),
		done:     make([]bool, len(shards)),
		byID:     make(map[int64]int),
		accepted: make(map[int64]int),
	}
}

// Acquire grants the lowest-indexed shard that is neither done nor
// currently leased.  Lowest-first keeps the in-order release window
// (and thus the sequencer's buffered backlog) small.  ok is false when
// every remaining shard is leased or done — the caller parks the worker
// until a release or completion frees work.
func (t *LeaseTable) Acquire(worker int, now time.Time) (l Lease, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.cur {
		if t.done[i] || t.cur[i].ID != 0 {
			continue
		}
		t.nextID++
		t.attempts[i]++
		l = Lease{
			ID:       t.nextID,
			Shard:    i,
			Worker:   worker,
			Attempt:  t.attempts[i],
			Deadline: now.Add(t.timeout),
		}
		t.cur[i] = l
		t.byID[l.ID] = i
		return l, true
	}
	return Lease{}, false
}

// Complete records a result delivery for lease id and classifies it:
// Accepted exactly once per shard (from its live lease), Duplicate for
// a re-delivery of the accepted lease, Stale for a superseded lease.
// The shard index is valid for every status except Stale deliveries
// whose lease the table no longer knows (then shard is -1).
func (t *LeaseTable) Complete(id int64, now time.Time) (shard int, status CompleteStatus) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.accepted[id]; ok {
		return s, Duplicate
	}
	i, live := t.byID[id]
	if !live {
		return -1, Stale
	}
	// The live lease's result is accepted even if its deadline has
	// technically passed: expiry is decided by the Expire sweep, and a
	// result that beats the sweep is a perfectly good result.
	delete(t.byID, id)
	t.cur[i] = Lease{}
	t.done[i] = true
	t.doneN++
	t.accepted[id] = i
	return i, Accepted
}

// Release returns a live lease's shard to the pending pool — the
// worker died, or the coordinator decided to revoke.  The release is
// recorded in the table's history.  A second release of the same lease
// (or a release after the result was accepted) reports false and
// changes nothing: release/complete settle each lease exactly once.
func (t *LeaseTable) Release(id int64, reason string, now time.Time) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	i, live := t.byID[id]
	if !live {
		return false
	}
	t.release(i, reason)
	return true
}

// release unlinks shard i's live lease and records why.  Caller holds mu.
func (t *LeaseTable) release(i int, reason string) {
	l := t.cur[i]
	delete(t.byID, l.ID)
	t.cur[i] = Lease{}
	t.releases = append(t.releases, ooc.ReleaseRecord{
		Level:   t.level,
		Shard:   t.names[i],
		Worker:  l.Worker,
		Attempt: l.Attempt,
		Reason:  reason,
	})
}

// Expire sweeps leases whose deadline has passed, returning them to the
// pending pool and reporting them so the coordinator can treat the
// holders as suspect.  An expired lease's late result will classify as
// Stale; its re-execution gets a fresh attempt number.
func (t *LeaseTable) Expire(now time.Time) []Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	var expired []Lease
	for i := range t.cur {
		if t.cur[i].ID != 0 && now.After(t.cur[i].Deadline) {
			expired = append(expired, t.cur[i])
			t.release(i, "lease expired")
		}
	}
	return expired
}

// Extend pushes a live lease's deadline out from now — the coordinator
// calls it when the holding worker proves liveness (a heartbeat or any
// other frame).  Reports false for settled or superseded leases.
func (t *LeaseTable) Extend(id int64, now time.Time) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	i, live := t.byID[id]
	if !live {
		return false
	}
	t.cur[i].Deadline = now.Add(t.timeout)
	return true
}

// LiveByWorker returns the worker's live leases (a worker holds at most
// one in the current coordinator, but the table does not assume it).
func (t *LeaseTable) LiveByWorker(worker int) []Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	var ls []Lease
	for i := range t.cur {
		if t.cur[i].ID != 0 && t.cur[i].Worker == worker {
			ls = append(ls, t.cur[i])
		}
	}
	return ls
}

// Done reports whether every shard's result has been accepted.
func (t *LeaseTable) Done() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.doneN == len(t.done)
}

// Releases returns the table's re-lease history in occurrence order.
func (t *LeaseTable) Releases() []ooc.ReleaseRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]ooc.ReleaseRecord(nil), t.releases...)
}
