package fvs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// bruteMinFVS finds the true minimum FVS size by subset enumeration.
func bruteMinFVS(g *graph.Graph) int {
	n := g.N()
	for size := 0; size <= n; size++ {
		if subsetOfSize(g, size, 0, nil) {
			return size
		}
	}
	return n
}

func subsetOfSize(g *graph.Graph, size, from int, chosen []int) bool {
	if len(chosen) == size {
		return IsFeedbackVertexSet(g, chosen)
	}
	for v := from; v < g.N(); v++ {
		if subsetOfSize(g, size, v+1, append(chosen, v)) {
			return true
		}
	}
	return false
}

func TestAcyclicGraphs(t *testing.T) {
	// Trees and forests need no feedback vertices.
	g := graph.New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(4, 5)
	if sol, ok := Decide(g, 0); !ok || len(sol) != 0 {
		t.Errorf("forest: %v %v", sol, ok)
	}
	if got := Minimum(g); len(got) != 0 {
		t.Errorf("Minimum on forest = %v", got)
	}
}

func TestSingleCycle(t *testing.T) {
	g := graph.New(5)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)
	}
	if _, ok := Decide(g, 0); ok {
		t.Error("C5 accepted with k=0")
	}
	sol, ok := Decide(g, 1)
	if !ok || len(sol) != 1 {
		t.Fatalf("C5: %v %v", sol, ok)
	}
	if !IsFeedbackVertexSet(g, sol) {
		t.Error("returned set is not a FVS")
	}
}

func TestTwoDisjointCycles(t *testing.T) {
	g := graph.New(8)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, (i+1)%4)
		g.AddEdge(4+i, 4+(i+1)%4)
	}
	if _, ok := Decide(g, 1); ok {
		t.Error("two disjoint cycles accepted with k=1")
	}
	sol, ok := Decide(g, 2)
	if !ok || !IsFeedbackVertexSet(g, sol) {
		t.Fatalf("k=2: %v %v", sol, ok)
	}
}

func TestCompleteGraph(t *testing.T) {
	// FVS(K_n) = n-2.
	g := graph.New(6)
	verts := []int{0, 1, 2, 3, 4, 5}
	graph.PlantClique(g, verts)
	got := Minimum(g)
	if len(got) != 4 {
		t.Errorf("FVS(K6) = %v, want size 4", got)
	}
	if !IsFeedbackVertexSet(g, got) {
		t.Error("not a FVS")
	}
}

func TestNegativeK(t *testing.T) {
	if _, ok := Decide(graph.New(3), -1); ok {
		t.Error("negative k accepted")
	}
}

func TestMinimumAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 30; trial++ {
		g := graph.RandomGNP(rng, 3+rng.Intn(8), 0.45)
		want := bruteMinFVS(g)
		got := Minimum(g)
		if len(got) != want {
			t.Fatalf("trial %d: |FVS| = %d, want %d (graph m=%d)",
				trial, len(got), want, g.M())
		}
		if !IsFeedbackVertexSet(g, got) {
			t.Fatalf("trial %d: %v is not a FVS", trial, got)
		}
	}
}

// Property: the solver's FVS is always valid and Decide is monotone in k.
func TestQuickValidityAndMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomGNP(rng, 3+rng.Intn(9), 0.4)
		min := Minimum(g)
		if !IsFeedbackVertexSet(g, min) {
			return false
		}
		if len(min) > 0 {
			if _, ok := Decide(g, len(min)-1); ok {
				return false
			}
		}
		if _, ok := Decide(g, len(min)+1); !ok {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestIsFeedbackVertexSet(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if IsFeedbackVertexSet(g, nil) {
		t.Error("triangle acyclic without removals?")
	}
	if !IsFeedbackVertexSet(g, []int{0}) {
		t.Error("removing one triangle vertex should break the cycle")
	}
}

func TestPetersenGraph(t *testing.T) {
	// The Petersen graph has feedback vertex number 3.
	outer := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	spokes := [][2]int{{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}}
	inner := [][2]int{{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}}
	g := graph.New(10)
	for _, edges := range [][][2]int{outer, spokes, inner} {
		for _, e := range edges {
			g.AddEdge(e[0], e[1])
		}
	}
	got := Minimum(g)
	if len(got) != 3 {
		t.Errorf("FVS(Petersen) = %v, want size 3", got)
	}
	if !IsFeedbackVertexSet(g, got) {
		t.Error("not a FVS")
	}
}
