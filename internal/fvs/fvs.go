// Package fvs solves the undirected feedback vertex set problem with a
// bounded search tree, the direction the paper's conclusions single out:
// "In phylogenetic footprinting ... it is feedback vertex set that is the
// crucial combinatorial problem.  We have recently devised the
// asymptotically-fastest currently-known algorithms for feedback vertex
// set" (citing Dehne, Fellows, Langston, Rosamond, Stevens; COCOON 2005).
//
// A feedback vertex set (FVS) is a vertex set whose removal leaves the
// graph acyclic.  The solver here is the classic branching scheme the
// FPT literature builds on:
//
//   - reduction rules run to a fixed point: degree-0/1 vertices are
//     dropped; a degree-2 vertex is bypassed by connecting its neighbors
//     (if that creates a parallel edge, the vertex pair lies on a
//     2-cycle, and the degree-2 vertex's counterpart must be taken);
//   - a shortest cycle is located, and the search branches on which of
//     its vertices joins the solution — a cycle of length c yields c
//     children, and reductions keep c small.
//
// This is not the 2^O(k) record-holder the paper cites, but it is exact,
// parameterized, and fast at the parameter sizes phylogenetic
// footprinting instances exhibit; the interface matches the vertex-cover
// solver so downstream tooling treats both uniformly.
package fvs

import (
	"repro/internal/bitset"
	"repro/internal/graph"
)

// multiGraph is a working copy supporting parallel edges (degree-2
// bypass can create them) over soft-deleted vertices.
type multiGraph struct {
	n     int
	alive *bitset.Bitset
	adj   []map[int]int // adj[v][u] = edge multiplicity
}

func newMulti(g graph.Interface) *multiGraph {
	m := &multiGraph{
		n:     g.N(),
		alive: bitset.New(g.N()),
		adj:   make([]map[int]int, g.N()),
	}
	m.alive.SetAll()
	for v := 0; v < g.N(); v++ {
		m.adj[v] = make(map[int]int)
		g.Row(v).ForEach(func(u int) bool {
			m.adj[v][u] = 1
			return true
		})
	}
	return m
}

func (m *multiGraph) clone() *multiGraph {
	c := &multiGraph{n: m.n, alive: m.alive.Clone(), adj: make([]map[int]int, m.n)}
	for v, row := range m.adj {
		c.adj[v] = make(map[int]int, len(row))
		for u, k := range row {
			c.adj[v][u] = k
		}
	}
	return c
}

func (m *multiGraph) degree(v int) int {
	d := 0
	for _, k := range m.adj[v] {
		d += k
	}
	return d
}

func (m *multiGraph) remove(v int) {
	for u := range m.adj[v] {
		delete(m.adj[u], v)
	}
	m.adj[v] = make(map[int]int)
	m.alive.Clear(v)
}

// hasSelfLoopAt reports whether v carries a self-loop (created when a
// degree-2 bypass closes a 2-cycle onto one vertex); such a vertex is in
// every FVS.
func (m *multiGraph) hasSelfLoop(v int) bool { return m.adj[v][v] > 0 }

// Decide reports whether g has a feedback vertex set of size at most k
// and returns one if so.  The returned set refers to original vertex IDs
// and is not necessarily minimum.
func Decide(g graph.Interface, k int) ([]int, bool) {
	if k < 0 {
		return nil, false
	}
	m := newMulti(g)
	sol, ok := search(m, k)
	if !ok {
		return nil, false
	}
	sortInts(sol)
	return sol, true
}

// Minimum returns a minimum feedback vertex set of g.
func Minimum(g graph.Interface) []int {
	for k := 0; ; k++ {
		if sol, ok := Decide(g, k); ok {
			return sol
		}
	}
}

// search returns a FVS of size <= k of m, if one exists.  m is consumed.
func search(m *multiGraph, k int) ([]int, bool) {
	var forced []int

	// Reductions to a fixed point.
	for {
		changed := false
		for v := 0; v < m.n; v++ {
			if !m.alive.Test(v) {
				continue
			}
			if m.hasSelfLoop(v) {
				// v lies on a loop: it must be taken.
				if k == 0 {
					return nil, false
				}
				m.remove(v)
				forced = append(forced, v)
				k--
				changed = true
				continue
			}
			switch d := m.degree(v); {
			case d <= 1:
				m.remove(v)
				changed = true
			case d == 2:
				// Bypass: connect v's two neighbor slots.
				var ends []int
				for u, cnt := range m.adj[v] {
					for i := 0; i < cnt; i++ {
						ends = append(ends, u)
					}
				}
				a, b := ends[0], ends[1]
				m.remove(v)
				if a == b {
					// v and a formed a 2-cycle: a gets a self-loop and
					// the loop rule takes it next sweep.
					m.adj[a][a]++
				} else {
					m.adj[a][b]++
					m.adj[b][a]++
				}
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	cycle := shortestCycle(m)
	if cycle == nil {
		return forced, true // acyclic: done
	}
	if k == 0 {
		return nil, false
	}
	// Branch: some vertex of the cycle is in the solution.
	for _, v := range cycle {
		child := m.clone()
		child.remove(v)
		if sol, ok := search(child, k-1); ok {
			return append(append(forced, v), sol...), true
		}
	}
	return nil, false
}

// shortestCycle returns the vertices of a shortest cycle in m, or nil if
// m is acyclic.  Parallel edges form 2-cycles.  BFS from every vertex;
// the graphs reaching this point are small post-reduction.
func shortestCycle(m *multiGraph) []int {
	// 2-cycles from parallel edges first.
	for v := 0; v < m.n; v++ {
		if !m.alive.Test(v) {
			continue
		}
		for u, cnt := range m.adj[v] {
			if u != v && cnt >= 2 {
				return []int{v, u}
			}
		}
	}
	best := []int(nil)
	parent := make([]int, m.n)
	depth := make([]int, m.n)
	for src := 0; src < m.n; src++ {
		if !m.alive.Test(src) {
			continue
		}
		for i := range parent {
			parent[i] = -2
		}
		parent[src] = -1
		depth[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for u := range m.adj[v] {
				if u == v {
					continue
				}
				if parent[v] == u {
					continue // the tree edge back
				}
				if parent[u] == -2 {
					parent[u] = v
					depth[u] = depth[v] + 1
					queue = append(queue, u)
					continue
				}
				// Cross/back edge: cycle through src if both walks meet.
				cyc := extractCycle(parent, depth, v, u)
				if cyc != nil && (best == nil || len(cyc) < len(best)) {
					best = cyc
				}
			}
		}
	}
	return best
}

// extractCycle walks v and u to their common ancestor, returning the
// cycle v..lca..u plus edge (u,v).
func extractCycle(parent, depth []int, v, u int) []int {
	var pv, pu []int
	x, y := v, u
	for x != y {
		if depth[x] >= depth[y] {
			pv = append(pv, x)
			x = parent[x]
			if x < 0 {
				return nil
			}
		} else {
			pu = append(pu, y)
			y = parent[y]
			if y < 0 {
				return nil
			}
		}
	}
	cycle := append(pv, x)
	for i := len(pu) - 1; i >= 0; i-- {
		cycle = append(cycle, pu[i])
	}
	return cycle
}

// IsFeedbackVertexSet verifies that removing the set leaves g acyclic.
func IsFeedbackVertexSet(g graph.Interface, set []int) bool {
	removed := bitset.New(g.N())
	for _, v := range set {
		removed.Set(v)
	}
	// Acyclicity check: union-find over surviving edges.
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	acyclic := true
	graph.ForEachEdge(g, func(u, v int) bool {
		if removed.Test(u) || removed.Test(v) {
			return true
		}
		ru, rv := find(u), find(v)
		if ru == rv {
			acyclic = false
			return false
		}
		parent[ru] = rv
		return true
	})
	return acyclic
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
