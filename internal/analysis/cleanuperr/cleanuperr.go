// Package cleanuperr enforces the cleanup-error discipline from PR 4:
// errors from Close, Sync, Flush, Remove and friends on cleanup paths
// must be returned, joined with errors.Join, or explicitly justified —
// never silently dropped.  A swallowed Close on a shard file is how an
// out-of-core run reports success after writing a truncated spill.
//
// Three shapes are flagged:
//
//   - bare `defer f.Close()` / `defer w.Sync()` when the value is
//     write-side: an *os.File from os.Create or os.OpenFile with a
//     writable flag, or any type whose method set satisfies io.Writer.
//     Read-side closes are best-effort and left alone.
//   - bare ExpressionStmt calls whose result includes an error —
//     f.Close(), os.Remove(p), w.Flush() on a line of their own —
//     same write-side rule for Close/Sync/Flush; Remove/RemoveAll are
//     always flagged.
//   - explicit discards `_ = f.Close()` (or `_, _ = ...`) of the
//     cleanup-family calls {Close, Sync, Flush, Remove, RemoveAll,
//     Fprint, Fprintf, Fprintln, Write, WriteString}.  An intentional
//     discard is suppressed with //nolint:cleanuperr <reason>.
package cleanuperr

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/lintkit"
)

// Analyzer is the cleanuperr check.
var Analyzer = &lintkit.Analyzer{
	Name: "cleanuperr",
	Doc:  "check that cleanup errors (Close/Sync/Flush/Remove) are propagated, not discarded",
	Run:  run,
}

// closeFamily are methods whose error matters when the value is
// write-side.
var closeFamily = map[string]bool{"Close": true, "Sync": true, "Flush": true}

// discardFamily are the callees whose explicitly-discarded errors are
// flagged (`_ = ...`).
var discardFamily = map[string]bool{
	"Close": true, "Sync": true, "Flush": true,
	"Remove": true, "RemoveAll": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true,
}

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{pass: pass, writable: writableOrigins(pass, fd.Body)}
			ast.Inspect(fd.Body, w.visit)
		}
	}
	return nil
}

type walker struct {
	pass     *lintkit.Pass
	writable map[types.Object]bool
}

func (w *walker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.DeferStmt:
		if w.flaggableCleanup(n.Call) {
			w.pass.Reportf(n.Pos(),
				"deferred %s discards its error on a write-side value; close explicitly and propagate (or errors.Join) the error",
				callLabel(n.Call))
		}
		return true
	case *ast.ExprStmt:
		call, ok := n.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		if w.flaggableCleanup(call) {
			w.pass.Reportf(n.Pos(),
				"%s error is silently dropped; check it (return, errors.Join, or //nolint:cleanuperr <reason>)",
				callLabel(call))
		} else if name := lintkit.CalleeName(call); (name == "Remove" || name == "RemoveAll") && isOsCall(w.pass.TypesInfo, call) {
			w.pass.Reportf(n.Pos(),
				"os.%s error is silently dropped; check it (return, errors.Join, or //nolint:cleanuperr <reason>)", name)
		}
		return true
	case *ast.AssignStmt:
		if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
			return true
		}
		// `_ = call` / `x, _ := call`: every blank on the LHS positionally
		// covering an error result of a cleanup-family call is a discard.
		if len(n.Rhs) != 1 {
			return true
		}
		call, ok := n.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		name := lintkit.CalleeName(call)
		if !discardFamily[name] {
			return true
		}
		if !errorDiscarded(w.pass.TypesInfo, n, call) {
			return true
		}
		w.pass.Reportf(n.Pos(),
			"error from %s is assigned to _; propagate it or justify with //nolint:cleanuperr <reason>", callLabel(call))
		return true
	}
	return true
}

// flaggableCleanup reports whether call is a zero-arg Close/Sync/Flush
// on a write-side value whose error result would be dropped.
func (w *walker) flaggableCleanup(call *ast.CallExpr) bool {
	name := lintkit.CalleeName(call)
	if !closeFamily[name] || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if !returnsError(w.pass.TypesInfo, call) {
		return false
	}
	return w.isWriteSide(sel.X)
}

// isWriteSide reports whether e's value is one we require checked
// cleanup for: an *os.File that this function opened writable, or any
// non-file type that satisfies io.Writer.
func (w *walker) isWriteSide(e ast.Expr) bool {
	tv, ok := w.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if isOsFile(tv.Type) {
		root := lintkit.RootIdent(e)
		if root == nil {
			return true // can't prove read-side; err on the checked side
		}
		obj := w.pass.TypesInfo.Uses[root]
		if obj == nil {
			obj = w.pass.TypesInfo.Defs[root]
		}
		if obj == nil {
			return true
		}
		known, tracked := w.writable[obj]
		if !tracked {
			return true // not locally opened (field, param): require the check
		}
		return known
	}
	return implementsWriter(tv.Type)
}

// writableOrigins scans a function body for `f, err := os.Open/Create/
// OpenFile(...)` and records whether each assigned *os.File object is
// write-side.  os.Open is the only provably read-only constructor;
// OpenFile is write-side unless its flag argument is the literal
// os.O_RDONLY.
func writableOrigins(pass *lintkit.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) < 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || !isOsCall(pass.TypesInfo, call) {
			return true
		}
		var writable bool
		switch lintkit.CalleeName(call) {
		case "Open":
			writable = false
		case "Create", "CreateTemp":
			writable = true
		case "OpenFile":
			writable = true
			if len(call.Args) >= 2 {
				if s := lintkit.ExprString(call.Args[1]); s == "os.O_RDONLY" || s == "O_RDONLY" {
					writable = false
				}
			}
		default:
			return true
		}
		if id, ok := assign.Lhs[0].(*ast.Ident); ok {
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != nil {
				out[obj] = writable
			}
		}
		return true
	})
	return out
}

// isOsFile reports whether t is *os.File (or os.File).
func isOsFile(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}

// isOsCall reports whether call's callee is a function from package os.
func isOsCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := info.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "os"
}

// implementsWriter reports whether t (or *t) has a
// Write([]byte) (int, error) method — the io.Writer shape, tested
// structurally so stubs in testdata qualify without importing io.
func implementsWriter(t types.Type) bool {
	if _, isPtr := t.(*types.Pointer); !isPtr {
		t = types.NewPointer(t)
	}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok || fn.Name() != "Write" {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
			continue
		}
		if s, ok := sig.Params().At(0).Type().(*types.Slice); ok {
			if b, ok := s.Elem().(*types.Basic); ok && b.Kind() == types.Uint8 {
				return true
			}
		}
	}
	return false
}

// returnsError reports whether any of call's results is the error type.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// errorDiscarded reports whether assign's blank identifiers cover an
// error result of call.
func errorDiscarded(info *types.Info, assign *ast.AssignStmt, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	var results []types.Type
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			results = append(results, tuple.At(i).Type())
		}
	} else {
		results = []types.Type{tv.Type}
	}
	if len(assign.Lhs) != len(results) {
		return false
	}
	for i, lhs := range assign.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" && isErrorType(results[i]) {
			return true
		}
	}
	return false
}

// callLabel renders a short receiver.Method() label for messages.
func callLabel(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return lintkit.ExprString(sel.X) + "." + sel.Sel.Name + "()"
	}
	return lintkit.CalleeName(call) + "()"
}
