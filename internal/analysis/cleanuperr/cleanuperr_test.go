package cleanuperr_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/cleanuperr"
	"repro/internal/analysis/lintkit/testkit"
)

func TestCleanuperr(t *testing.T) {
	testkit.Run(t, filepath.Join("testdata", "src", "a"), cleanuperr.Analyzer)
}
