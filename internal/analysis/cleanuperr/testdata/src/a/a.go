// Package a is cleanuperr analyzer testdata.
package a

import "os"

func badDeferCreate(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `discards its error on a write-side value`
	_, err = f.WriteString("x")
	return err
}

func okDeferOpen(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() // read-side close is best-effort
	var b [8]byte
	_, err = f.Read(b[:])
	return err
}

func badBareClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Close() // want `error is silently dropped`
	return nil
}

func okCheckedClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

func badRemove(path string) {
	os.Remove(path) // want `os.Remove error is silently dropped`
}

func badDiscard(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_ = f.Close() // want `assigned to _`
	return nil
}

func okJustifiedDiscard(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //nolint:cleanuperr the Sync failure is the error that matters
		return err
	}
	return f.Close()
}

// sink is write-side by shape: its method set satisfies io.Writer.
type sink struct{ n int }

func (s *sink) Write(p []byte) (int, error) { s.n += len(p); return len(p), nil }
func (s *sink) Close() error                { return nil }

func badWriterClose(s *sink) {
	defer s.Close() // want `discards its error on a write-side value`
	if _, err := s.Write([]byte("x")); err != nil {
		return
	}
}

// roSeq's Close returns no error; nothing to check.
type roSeq struct{}

func (roSeq) Close() {}

func okNoErrorClose(r roSeq) {
	defer r.Close()
}
