package budgetpair_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/budgetpair"
	"repro/internal/analysis/lintkit/testkit"
)

func TestBudgetpair(t *testing.T) {
	testkit.Run(t, filepath.Join("testdata", "src", "a"), budgetpair.Analyzer)
}
