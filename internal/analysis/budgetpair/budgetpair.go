// Package budgetpair flow-checks the repo's memory-accounting
// discipline: every byte charged to a membudget.Governor must be
// released on every path out of the charging code, and every
// reservation carved out of a shared governor (Governor.Reserve) must
// be closed (Reservation.Close) on every path — or the resource's
// ownership must demonstrably transfer to a type that releases/closes
// it later.  This is the PR 5 invariant ("one budget, one meaning of
// memory"), extended in the service PR to the reservation sub-budget
// API multi-tenant admission is built on, and in the dist PR to the
// shard-lease table: a lease taken with LeaseTable.Acquire must be
// settled on every path — Complete (result landed), Release (worker
// died), or Expire (deadline sweep); runtime leak checks can only
// sample these disciplines, the analyzer enforces them on every return
// path mechanically.
//
// The check is intraprocedural with two ownership-escape rules that
// encode the repo's legitimate cross-function patterns:
//
//   - receiver escape: an acquire through a field of some named type T
//     (e.g. w.gov.Charge(n) inside a *levelWriter method) is owned by T
//     when any method of T in the same package performs the matching
//     release — the constructor/Close pairing of the ooc shard writers,
//     the worker pools, and the service registry's graph pins;
//   - result escape: an acquire inside a function returning a named
//     type T whose methods release (e.g. openShard charging a read
//     buffer into the *shardReader it returns, or Admission.Acquire
//     reserving into the *Lease it hands the caller) transfers
//     ownership to the returned value.
//
// Otherwise, every return statement lexically after the first acquire
// must be covered by a deferred release registered before it or a
// release call between the acquire and the return.  Two deliberate
// exemptions: methods of the accounting types themselves (Governor,
// Reservation) are skipped — their internal parent-forwarding mirrors
// are the accounting mechanism, not acquisitions; and for the
// two-result Reserve, returns inside a `!= nil`/`== nil` error check
// are exempt — a failed Reserve leaves nothing to close.  A transfer
// the rules cannot see is suppressed with //nolint:budgetpair <reason>.
//
// When a function has exactly one Charge and none of its Releases
// textually matches the charged expression, the analyzer additionally
// reports a quantity mismatch — the charge/release amounts must track
// the same bytes.
package budgetpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/lintkit"
)

// ReleasesParamFact marks a function that calls Governor.Release on the
// Governor passed as parameter Param: a call to it counts as a release
// of unknown quantity in the caller's pairing check.
type ReleasesParamFact struct{ Param int }

func (*ReleasesParamFact) AFact() {}

// ClosesParamFact marks a function that calls Reservation.Close on the
// Reservation passed as parameter Param.
type ClosesParamFact struct{ Param int }

func (*ClosesParamFact) AFact() {}

// Analyzer is the budgetpair check.
var Analyzer = &lintkit.Analyzer{
	Name: "budgetpair",
	Doc: "check that every membudget Charge/Reserve is paired with a Release/Close on all return paths " +
		"(or ownership provably transfers to a releasing type)",
	Run:       run,
	FactTypes: []lintkit.Fact{(*ReleasesParamFact)(nil), (*ClosesParamFact)(nil)},
}

// relMethod is one method that settles an acquisition.
type relMethod struct {
	name string
	args int
}

// pairSpec is one acquire/release discipline the analyzer enforces.  A
// spec may accept several settling methods on the release type: the
// dist lease table's Acquire is settled by Complete (result landed),
// Release (worker died), or Expire (deadline sweep) alike.
type pairSpec struct {
	acquireType string // named receiver type of the acquire method
	acquireName string
	acquireArgs int
	releaseType string // named receiver type of the settling methods
	rels        []relMethod
	quantity    bool // apply the same-amount check (Charge/Release only)
	errExempt   bool // acquire also returns an error; err-check returns owe nothing
	okExempt    bool // acquire also returns a bool; `if !ok` returns owe nothing
	what        string
	fix         string
}

var specs = []pairSpec{
	{
		acquireType: "Governor", acquireName: "Charge", acquireArgs: 1,
		releaseType: "Governor", rels: []relMethod{{"Release", 1}},
		quantity: true,
		what:     "the governor charge", fix: "Release",
	},
	{
		acquireType: "Governor", acquireName: "Reserve", acquireArgs: 1,
		releaseType: "Reservation", rels: []relMethod{{"Close", 0}},
		errExempt: true,
		what:      "the reservation", fix: "Close",
	},
	{
		acquireType: "LeaseTable", acquireName: "Acquire", acquireArgs: 2,
		releaseType: "LeaseTable", rels: []relMethod{{"Complete", 2}, {"Release", 3}, {"Expire", 1}},
		okExempt: true,
		what:     "the shard lease", fix: "Complete/Release",
	},
}

// releaseCall reports whether call is any of spec's settling methods.
func releaseCall(info *types.Info, call *ast.CallExpr, spec pairSpec) bool {
	for _, r := range spec.rels {
		if _, ok := methodCall(info, call, spec.releaseType, r.name, r.args); ok {
			return true
		}
	}
	return false
}

// methodCall reports whether call is method `name` with nargs arguments
// on a value whose named type is typeName.  Matching is nominal so
// analysis testdata can stub the types without importing the real
// package.
func methodCall(info *types.Info, call *ast.CallExpr, typeName, name string, nargs int) (recv ast.Expr, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != name || len(call.Args) != nargs {
		return nil, false
	}
	tv, found := info.Types[sel.X]
	if !found {
		return nil, false
	}
	return sel.X, isNamed(tv.Type, typeName)
}

// isNamed reports whether t (possibly behind pointers) is a named type
// with the given name.
func isNamed(t types.Type, name string) bool {
	for {
		switch v := t.(type) {
		case *types.Pointer:
			t = v.Elem()
		case *types.Named:
			return v.Obj().Name() == name
		default:
			return false
		}
	}
}

// namedTypeName returns the name of e's named type (behind pointers),
// or "".
func namedTypeName(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok {
		return ""
	}
	t := tv.Type
	for {
		switch v := t.(type) {
		case *types.Pointer:
			t = v.Elem()
		case *types.Named:
			return v.Obj().Name()
		default:
			return ""
		}
	}
}

type acquire struct {
	pos     token.Pos
	argText string
	recv    ast.Expr
}

type release struct {
	pos      token.Pos
	argText  string
	deferred bool
	deferPos token.Pos
}

func run(pass *lintkit.Pass) error {
	relHelpers, closeHelpers := settlerHelpers(pass)
	for _, spec := range specs {
		// settlesVia resolves a callee to the parameter index it settles
		// for this spec, through the local pre-pass or an imported fact.
		var settlesVia func(*types.Func) (int, bool)
		switch spec.acquireName {
		case "Charge":
			settlesVia = func(fn *types.Func) (int, bool) {
				if i, ok := relHelpers[fn]; ok {
					return i, true
				}
				var f ReleasesParamFact
				if pass.ImportObjectFact(fn, &f) {
					return f.Param, true
				}
				return 0, false
			}
		case "Reserve":
			settlesVia = func(fn *types.Func) (int, bool) {
				if i, ok := closeHelpers[fn]; ok {
					return i, true
				}
				var f ClosesParamFact
				if pass.ImportObjectFact(fn, &f) {
					return f.Param, true
				}
				return 0, false
			}
		}
		owners := owningTypes(pass, spec)
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkFunc(pass, fd, spec, owners, settlesVia)
			}
		}
	}
	return nil
}

// settlerHelpers summarizes which local functions release a Governor
// parameter or close a Reservation parameter, and exports the matching
// facts so importers see through the helpers too.
func settlerHelpers(pass *lintkit.Pass) (rel, cls map[*types.Func]int) {
	rel = make(map[*types.Func]int)
	cls = make(map[*types.Func]int)
	info := pass.TypesInfo
	for fn, decl := range lintkit.LocalFuncs(pass.Files, info) {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			var typeName, method string
			var nargs int
			switch {
			case isNamed(p.Type(), "Governor"):
				typeName, method, nargs = "Governor", "Release", 1
			case isNamed(p.Type(), "Reservation"):
				typeName, method, nargs = "Reservation", "Close", 0
			default:
				continue
			}
			found := false
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if recv, ok := methodCall(info, call, typeName, method, nargs); ok {
					if root := lintkit.RootIdent(recv); root != nil && info.ObjectOf(root) == p {
						found = true
						return false
					}
				}
				return true
			})
			if !found {
				continue
			}
			if typeName == "Governor" {
				rel[fn] = i
				pass.ExportObjectFact(fn, &ReleasesParamFact{Param: i})
			} else {
				cls[fn] = i
				pass.ExportObjectFact(fn, &ClosesParamFact{Param: i})
			}
			break
		}
	}
	return rel, cls
}

// recvTypeName returns the named type of fd's receiver ("" for plain
// functions).
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	e := fd.Recv.List[0].Type
	if s, isStar := e.(*ast.StarExpr); isStar {
		e = s.X
	}
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.IndexExpr:
		if id, isIdent := v.X.(*ast.Ident); isIdent {
			return id.Name
		}
	}
	return ""
}

// owningTypes collects the named receiver types that own the spec's
// release somewhere in the package: any method whose body (closures
// included) calls it marks its receiver type as an owner.  The release
// method's own receiver type is seeded in — a constructor returning a
// *Reservation has transferred the close obligation to its caller.
func owningTypes(pass *lintkit.Pass, spec pairSpec) map[string]bool {
	out := map[string]bool{spec.releaseType: true}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recvName := recvTypeName(fd)
			if recvName == "" || out[recvName] {
				continue
			}
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				if call, isCall := n.(*ast.CallExpr); isCall {
					if releaseCall(pass.TypesInfo, call, spec) {
						found = true
						return false
					}
				}
				return true
			})
			if found {
				out[recvName] = true
			}
		}
	}
	return out
}

// checkFunc applies one spec's pairing rules to one function
// declaration.  Function literals are not descended into (a closure is
// not a return path of its enclosing function), except the immediate
// body of a `defer func() { ... }()`, whose releases count as deferred
// coverage.
func checkFunc(pass *lintkit.Pass, fd *ast.FuncDecl, spec pairSpec, owners map[string]bool,
	settlesVia func(*types.Func) (int, bool)) {
	// The accounting types' own methods ARE the mechanism: Governor's
	// parent-forwarding Charge/Release mirrors and Reservation's
	// reconciling Close would all read as unpaired acquisitions.
	if recv := recvTypeName(fd); recv == spec.acquireType || recv == spec.releaseType {
		return
	}

	var acquires []acquire
	var releases []release
	var returns []*ast.ReturnStmt
	var errRanges [][2]token.Pos // bodies of `if <x op nil>` blocks

	var walk func(n ast.Node, deferPos token.Pos)
	walk = func(root ast.Node, deferPos token.Pos) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // separate function; see doc comment
			case *ast.DeferStmt:
				// Walk the deferred call (and a deferred closure's whole
				// body) in deferred mode, then skip the normal descent.
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					walk(lit.Body, n.Pos())
				} else {
					walk(n.Call, n.Pos())
				}
				return false
			case *ast.IfStmt:
				if spec.errExempt && isNilCheck(n.Cond) {
					errRanges = append(errRanges, [2]token.Pos{n.Body.Pos(), n.Body.End()})
				}
				if spec.okExempt && isNotOkCheck(n.Cond) {
					errRanges = append(errRanges, [2]token.Pos{n.Body.Pos(), n.Body.End()})
				}
			case *ast.ReturnStmt:
				if deferPos == token.NoPos {
					returns = append(returns, n)
				}
			case *ast.CallExpr:
				if recv, ok := methodCall(pass.TypesInfo, n, spec.acquireType, spec.acquireName, spec.acquireArgs); ok {
					acquires = append(acquires, acquire{
						pos:     n.Pos(),
						argText: lintkit.ExprString(n.Args[0]),
						recv:    recv,
					})
				}
				if releaseCall(pass.TypesInfo, n, spec) {
					argText := "?"
					if len(n.Args) > 0 {
						argText = lintkit.ExprString(n.Args[0])
					}
					releases = append(releases, release{
						pos:      n.Pos(),
						argText:  argText,
						deferred: deferPos != token.NoPos,
						deferPos: deferPos,
					})
				} else if settlesVia != nil {
					// A call into a helper that settles one of its
					// parameters is a release of unknown quantity here.
					callee := lintkit.CalleeFunc(pass.TypesInfo, n)
					if callee != nil && callee != pass.TypesInfo.Defs[fd.Name] {
						if pi, ok := settlesVia(callee); ok && pi < len(n.Args) {
							releases = append(releases, release{
								pos:      n.Pos(),
								argText:  "?",
								deferred: deferPos != token.NoPos,
								deferPos: deferPos,
							})
						}
					}
				}
			}
			return true
		})
	}
	walk(fd.Body, token.NoPos)

	if len(acquires) == 0 {
		return
	}

	// Receiver escape: the acquire went through a field of a type whose
	// methods release (w.gov.Charge inside a *levelWriter method).
	allEscape := true
	for _, a := range acquires {
		if !acquireEscapes(pass, a, fd, spec, owners) {
			allEscape = false
			break
		}
	}
	if allEscape {
		return
	}

	firstAcquire := acquires[0].pos
	covered := func(ret token.Pos) bool {
		for _, r := range releases {
			if r.deferred && r.deferPos < ret {
				return true
			}
			if !r.deferred && r.pos > firstAcquire && r.pos < ret {
				return true
			}
		}
		return false
	}
	inErrCheck := func(ret token.Pos) bool {
		for _, rng := range errRanges {
			if ret >= rng[0] && ret < rng[1] {
				return true
			}
		}
		return false
	}

	if len(releases) == 0 {
		pass.Reportf(firstAcquire,
			"%s(%s) has no matching %s in %s; %s it on every path or transfer ownership (//nolint:budgetpair <reason>)",
			spec.acquireName, acquires[0].argText, spec.fix, fd.Name.Name, spec.fix)
		return
	}

	for _, ret := range returns {
		if ret.Pos() <= firstAcquire {
			continue
		}
		if inErrCheck(ret.Pos()) {
			continue // a failed Reserve returned an error; nothing to close
		}
		if !covered(ret.Pos()) {
			pass.Reportf(ret.Pos(),
				"return leaks %s from line %d: no %s reaches this path (defer the %s or reconcile before returning)",
				spec.what, pass.Fset.Position(firstAcquire).Line, spec.fix, spec.fix)
		}
	}
	// A function body that can fall off the end is one more return path.
	if n := len(fd.Body.List); n > 0 {
		if _, endsInReturn := fd.Body.List[n-1].(*ast.ReturnStmt); !endsInReturn {
			if !covered(fd.Body.End()) {
				pass.Reportf(acquires[0].pos,
					"%s(%s) is not %sd before %s falls off the end of the function",
					spec.acquireName, acquires[0].argText, spec.fix, fd.Name.Name)
			}
		}
	}

	// Quantity check: a lone Charge whose releases all name a different
	// amount is charging and releasing different bytes.
	if spec.quantity && len(acquires) == 1 && acquires[0].argText != "?" {
		match := false
		for _, r := range releases {
			if r.argText == acquires[0].argText || r.argText == "?" {
				match = true
				break
			}
		}
		if !match {
			pass.Reportf(acquires[0].pos,
				"Charge(%s) is never Released with the same quantity (releases: %s)",
				acquires[0].argText, releases[0].argText)
		}
	}
}

// isNilCheck reports whether cond contains a `x != nil` or `x == nil`
// comparison — the shape of the error check after a two-result acquire.
func isNilCheck(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && (b.Op == token.NEQ || b.Op == token.EQL) {
			if isNilIdent(b.X) || isNilIdent(b.Y) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isNotOkCheck reports whether cond is a bare `!ident` — the shape of
// the not-acquired check after a comma-ok acquire (`if !ok { return }`
// owes no settlement: nothing was leased).
func isNotOkCheck(cond ast.Expr) bool {
	u, ok := cond.(*ast.UnaryExpr)
	if !ok || u.Op != token.NOT {
		return false
	}
	_, isIdent := u.X.(*ast.Ident)
	return isIdent
}

// acquireEscapes reports whether one acquire's ownership provably
// leaves the function: through the receiver chain (rule one) or through
// a returned owning type (rule two).
func acquireEscapes(pass *lintkit.Pass, a acquire, fd *ast.FuncDecl, spec pairSpec, owners map[string]bool) bool {
	// Rule one: recv is a selector chain rooted at a value of a named
	// type whose methods release (w.gov, e.opts.Gov, ...).  A bare
	// *Governor root (local or parameter) does not escape.
	if root := lintkit.RootIdent(a.recv); root != nil {
		if name := rootNamedType(pass.TypesInfo, a.recv); name != "" && name != spec.acquireType && owners[name] {
			return true
		}
	}
	// Rule two: the function returns a named type whose methods release
	// (constructors handing the acquired resource to the caller).
	if fd.Type.Results != nil {
		for _, res := range fd.Type.Results.List {
			e := res.Type
			if s, ok := e.(*ast.StarExpr); ok {
				e = s.X
			}
			if id, ok := e.(*ast.Ident); ok && owners[id.Name] {
				return true
			}
		}
	}
	return false
}

// rootNamedType returns the named type of the leftmost identifier of
// recv's selector chain ("" when untyped or not named).
func rootNamedType(info *types.Info, recv ast.Expr) string {
	root := lintkit.RootIdent(recv)
	if root == nil {
		return ""
	}
	return namedTypeName(info, root)
}
