// Package budgetpair flow-checks the repo's memory-accounting
// discipline: every byte charged to a membudget.Governor must be
// released on every path out of the charging code, or its ownership
// must demonstrably transfer to a type that releases it later.  This is
// the PR 5 invariant ("one budget, one meaning of memory") that runtime
// leak checks can only sample; the analyzer enforces it on every return
// path mechanically.
//
// The check is intraprocedural with two ownership-escape rules that
// encode the repo's legitimate cross-function patterns:
//
//   - receiver escape: a charge through a field of some named type T
//     (e.g. w.gov.Charge(n) inside a *levelWriter method) is owned by T
//     when any method of T in the same package performs a Release —
//     the constructor/Close pairing of the ooc shard writers and the
//     worker pools;
//   - result escape: a charge inside a function returning a named type
//     T whose methods Release (e.g. openShard charging a read buffer
//     into the *shardReader it returns) transfers ownership to the
//     returned value.
//
// Otherwise, every return statement lexically after the first Charge
// must be covered by a deferred Release registered before it or a
// Release call between the Charge and the return.  A deliberate
// transfer the rules cannot see (core.Builder.keep charges sub-lists
// the level loop later retires) is suppressed with
// //nolint:budgetpair <reason>.
//
// When a function has exactly one Charge and none of its Releases
// textually matches the charged expression, the analyzer additionally
// reports a quantity mismatch — the charge/release amounts must track
// the same bytes.
package budgetpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/lintkit"
)

// Analyzer is the budgetpair check.
var Analyzer = &lintkit.Analyzer{
	Name: "budgetpair",
	Doc: "check that every membudget.Governor.Charge is paired with a Release on all return paths " +
		"(or ownership provably transfers to a releasing type)",
	Run: run,
}

// governorCall reports whether call is method `name` on a value whose
// named type is membudget's Governor.  Matching is nominal (type name
// "Governor", method Charge/Release) so analysis testdata can stub the
// type without importing the real package.
func governorCall(info *types.Info, call *ast.CallExpr, name string) (recv ast.Expr, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != name || len(call.Args) != 1 {
		return nil, false
	}
	tv, found := info.Types[sel.X]
	if !found {
		return nil, false
	}
	return sel.X, isNamed(tv.Type, "Governor")
}

// isNamed reports whether t (possibly behind pointers) is a named type
// with the given name.
func isNamed(t types.Type, name string) bool {
	for {
		switch v := t.(type) {
		case *types.Pointer:
			t = v.Elem()
		case *types.Named:
			return v.Obj().Name() == name
		default:
			return false
		}
	}
}

// namedTypeName returns the name of e's named type (behind pointers),
// or "".
func namedTypeName(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok {
		return ""
	}
	t := tv.Type
	for {
		switch v := t.(type) {
		case *types.Pointer:
			t = v.Elem()
		case *types.Named:
			return v.Obj().Name()
		default:
			return ""
		}
	}
}

type charge struct {
	pos     token.Pos
	argText string
	recv    ast.Expr
}

type release struct {
	pos      token.Pos
	argText  string
	deferred bool
	deferPos token.Pos
}

func run(pass *lintkit.Pass) error {
	releasers := releasingTypes(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, releasers)
		}
	}
	return nil
}

// releasingTypes collects the named receiver types that own a Release
// somewhere in the package: any method whose body (closures included)
// calls Governor.Release marks its receiver type as a releaser.
func releasingTypes(pass *lintkit.Pass) map[string]bool {
	out := make(map[string]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recvName := ""
			if t := fd.Recv.List[0].Type; t != nil {
				e := t
				if s, isStar := e.(*ast.StarExpr); isStar {
					e = s.X
				}
				if id, isIdent := e.(*ast.Ident); isIdent {
					recvName = id.Name
				} else if idx, isIdx := e.(*ast.IndexExpr); isIdx {
					if id, isIdent := idx.X.(*ast.Ident); isIdent {
						recvName = id.Name
					}
				}
			}
			if recvName == "" || out[recvName] {
				continue
			}
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				if call, isCall := n.(*ast.CallExpr); isCall {
					if _, isRel := governorCall(pass.TypesInfo, call, "Release"); isRel {
						found = true
						return false
					}
				}
				return true
			})
			if found {
				out[recvName] = true
			}
		}
	}
	return out
}

// checkFunc applies the pairing rules to one function declaration.
// Function literals are not descended into (a closure is not a return
// path of its enclosing function), except the immediate body of a
// `defer func() { ... }()`, whose Releases count as deferred coverage.
func checkFunc(pass *lintkit.Pass, fd *ast.FuncDecl, releasers map[string]bool) {
	var charges []charge
	var releases []release
	var returns []*ast.ReturnStmt

	var walk func(n ast.Node, deferPos token.Pos)
	walk = func(root ast.Node, deferPos token.Pos) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // separate function; see doc comment
			case *ast.DeferStmt:
				// Walk the deferred call (and a deferred closure's whole
				// body) in deferred mode, then skip the normal descent.
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					walk(lit.Body, n.Pos())
				} else {
					walk(n.Call, n.Pos())
				}
				return false
			case *ast.ReturnStmt:
				if deferPos == token.NoPos {
					returns = append(returns, n)
				}
			case *ast.CallExpr:
				if recv, ok := governorCall(pass.TypesInfo, n, "Charge"); ok {
					charges = append(charges, charge{
						pos:     n.Pos(),
						argText: lintkit.ExprString(n.Args[0]),
						recv:    recv,
					})
				}
				if _, ok := governorCall(pass.TypesInfo, n, "Release"); ok {
					releases = append(releases, release{
						pos:      n.Pos(),
						argText:  lintkit.ExprString(n.Args[0]),
						deferred: deferPos != token.NoPos,
						deferPos: deferPos,
					})
				}
			}
			return true
		})
	}
	walk(fd.Body, token.NoPos)

	if len(charges) == 0 {
		return
	}

	// Receiver escape: the charge went through a field of a type whose
	// methods release (w.gov.Charge inside a *levelWriter method).
	allEscape := true
	for _, c := range charges {
		if !chargeEscapes(pass, c, fd, releasers) {
			allEscape = false
			break
		}
	}
	if allEscape {
		return
	}

	firstCharge := charges[0].pos
	covered := func(ret token.Pos) bool {
		for _, r := range releases {
			if r.deferred && r.deferPos < ret {
				return true
			}
			if !r.deferred && r.pos > firstCharge && r.pos < ret {
				return true
			}
		}
		return false
	}

	if len(releases) == 0 {
		pass.Reportf(firstCharge,
			"Charge(%s) has no matching Release in %s; release it on every path or transfer ownership (//nolint:budgetpair <reason>)",
			charges[0].argText, fd.Name.Name)
		return
	}

	for _, ret := range returns {
		if ret.Pos() <= firstCharge {
			continue
		}
		if !covered(ret.Pos()) {
			pass.Reportf(ret.Pos(),
				"return leaks the governor charge from line %d: no Release reaches this path (defer the Release or reconcile before returning)",
				pass.Fset.Position(firstCharge).Line)
		}
	}
	// A function body that can fall off the end is one more return path.
	if n := len(fd.Body.List); n > 0 {
		if _, endsInReturn := fd.Body.List[n-1].(*ast.ReturnStmt); !endsInReturn {
			if !covered(fd.Body.End()) {
				pass.Reportf(charges[0].pos,
					"Charge(%s) is not Released before %s falls off the end of the function",
					charges[0].argText, fd.Name.Name)
			}
		}
	}

	// Quantity check: a lone Charge whose releases all name a different
	// amount is charging and releasing different bytes.
	if len(charges) == 1 && charges[0].argText != "?" {
		match := false
		for _, r := range releases {
			if r.argText == charges[0].argText || r.argText == "?" {
				match = true
				break
			}
		}
		if !match {
			pass.Reportf(charges[0].pos,
				"Charge(%s) is never Released with the same quantity (releases: %s)",
				charges[0].argText, releases[0].argText)
		}
	}
}

// chargeEscapes reports whether one charge's ownership provably leaves
// the function: through the receiver chain (rule one) or through a
// returned releasing type (rule two).
func chargeEscapes(pass *lintkit.Pass, c charge, fd *ast.FuncDecl, releasers map[string]bool) bool {
	// Rule one: recv is a selector chain rooted at a value of a named
	// type whose methods release (w.gov, e.opts.Gov, ...).  A bare
	// *Governor root (local or parameter) does not escape.
	if root := lintkit.RootIdent(c.recv); root != nil {
		if name := rootNamedType(pass.TypesInfo, c.recv); name != "" && name != "Governor" && releasers[name] {
			return true
		}
	}
	// Rule two: the function returns a named type whose methods release
	// (constructors handing the charged resource to the caller).
	if fd.Type.Results != nil {
		for _, res := range fd.Type.Results.List {
			e := res.Type
			if s, ok := e.(*ast.StarExpr); ok {
				e = s.X
			}
			if id, ok := e.(*ast.Ident); ok && releasers[id.Name] {
				return true
			}
		}
	}
	return false
}

// rootNamedType returns the named type of the leftmost identifier of
// recv's selector chain ("" when untyped or not named).
func rootNamedType(info *types.Info, recv ast.Expr) string {
	root := lintkit.RootIdent(recv)
	if root == nil {
		return ""
	}
	return namedTypeName(info, root)
}
