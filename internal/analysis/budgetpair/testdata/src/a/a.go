// Package a is budgetpair analyzer testdata: a local Governor stub
// (matched nominally) exercising the pairing, escape and quantity rules.
package a

import (
	"errors"

	"repro/internal/analysis/budgetpair/testdata/src/a/gov"
)

type Governor struct{ n int64 }

func (g *Governor) Charge(n int64)  { g.n += n }
func (g *Governor) Release(n int64) { g.n -= n }

var errBoom = errors.New("boom")

func leakNoRelease(g *Governor, n int64) {
	g.Charge(n) // want `has no matching Release`
}

func leakEarlyReturn(g *Governor, n int64, bad bool) error {
	g.Charge(n)
	if bad {
		return errBoom // want `return leaks the governor charge`
	}
	g.Release(n)
	return nil
}

func okDefer(g *Governor, n int64, bad bool) error {
	g.Charge(n)
	defer g.Release(n)
	if bad {
		return errBoom
	}
	return nil
}

func okDeferClosure(g *Governor, n int64, bad bool) error {
	g.Charge(n)
	defer func() {
		g.Release(n)
	}()
	if bad {
		return errBoom
	}
	return nil
}

func leakWrongAmount(g *Governor, n int64) {
	g.Charge(n) // want `never Released with the same quantity`
	g.Release(8)
}

func leakFallOffEnd(g *Governor, n int64) {
	g.Release(n)
	g.Charge(n) // want `falls off the end`
}

// pool releases in stop what start charged: receiver escape, no finding.
type pool struct{ gov *Governor }

func (p *pool) start(n int64) {
	p.gov.Charge(n)
}

func (p *pool) stop(n int64) {
	p.gov.Release(n)
}

// reader releases in close what open charged into it: result escape.
type reader struct {
	gov *Governor
	n   int64
}

func (r *reader) close() { r.gov.Release(r.n) }

func open(g *Governor, n int64) *reader {
	g.Charge(n)
	return &reader{gov: g, n: n}
}

// keep transfers ownership to a caller the escape rules cannot see; the
// justified suppression keeps it quiet.
//
//nolint:budgetpair the level loop retires these sub-lists in bulk
func keep(g *Governor, n int64) {
	g.Charge(n)
}

// ---- Reserve/Close pairing (the reservation sub-budget API) ----------

// Reservation stubs the membudget sub-budget handle; Close is its
// release method.
type Reservation struct {
	g *Governor
	n int64
}

func (r *Reservation) Close() int64 { r.g.Release(r.n); return 0 }

// Reserve stubs the acquire.  Its internal Charge is exempt: methods of
// the accounting types are the mechanism, not acquisitions.
func (g *Governor) Reserve(n int64) (*Reservation, error) {
	g.Charge(n)
	return &Reservation{g: g, n: n}, nil
}

func leakReserveNoClose(g *Governor, n int64) {
	g.Reserve(n) // want `Reserve\(n\) has no matching Close`
}

func leakReserveEarlyReturn(g *Governor, n int64, bad bool) error {
	res, err := g.Reserve(n)
	if err != nil {
		return err // exempt: a failed Reserve leaves nothing to close
	}
	if bad {
		return errBoom // want `return leaks the reservation`
	}
	res.Close()
	return nil
}

func okReserveDefer(g *Governor, n int64, bad bool) error {
	res, err := g.Reserve(n)
	if err != nil {
		return err
	}
	defer res.Close()
	if bad {
		return errBoom
	}
	return nil
}

func leakReserveFallOffEnd(g *Governor, n int64) {
	res, _ := g.Reserve(n)
	_ = res
	res2, _ := g.Reserve(n)
	res2.Close()
	res.Close()
}

func leakReserveFallOffEnd2(g *Governor, n int64) {
	stale := &Reservation{g: g, n: n}
	stale.Close()
	g.Reserve(n) // want `Reserve\(n\) is not Closed before leakReserveFallOffEnd2 falls off the end`
}

// lease owns its reservation: Close on the lease closes it, so the
// constructor's Reserve escapes by rule two.
type lease struct{ res *Reservation }

func (l *lease) Close() int64 { return l.res.Close() }

func acquireLease(g *Governor, n int64) (*lease, error) {
	res, err := g.Reserve(n)
	if err != nil {
		return nil, err
	}
	return &lease{res: res}, nil
}

// holder pins a reservation through a field: receiver escape via the
// registry pattern (a method of holder closes it later).
type holder struct {
	gov *Governor
	res *Reservation
}

func (h *holder) pin(n int64) error {
	res, err := h.gov.Reserve(n)
	if err != nil {
		return err
	}
	h.res = res
	return nil
}

func (h *holder) unpin() { h.res.Close() }

// ---- lease acquire/settle pairing (the dist shard-lease table) -------

// LeaseTable stubs the dist lease table; a lease taken with Acquire is
// settled by Complete (result landed), Release (worker died), or Expire
// (the deadline sweep).
type LeaseTable struct{ live int }

type TableLease struct{ ID int64 }

func (t *LeaseTable) Acquire(worker, now int) (TableLease, bool) { t.live++; return TableLease{}, true }
func (t *LeaseTable) Complete(id int64, now int) (int, int)      { t.live--; return 0, 0 }
func (t *LeaseTable) Release(id int64, reason string, now int) bool {
	t.live--
	return true
}
func (t *LeaseTable) Expire(now int) []TableLease { t.live = 0; return nil }

func leakLeaseNoSettle(t *LeaseTable) {
	t.Acquire(0, 1) // want `Acquire\(0\) has no matching Complete/Release`
}

func leakLeaseEarlyReturn(t *LeaseTable, bad bool) error {
	l, ok := t.Acquire(0, 1)
	if !ok {
		return nil // exempt: a failed Acquire leased nothing
	}
	if bad {
		return errBoom // want `return leaks the shard lease`
	}
	t.Complete(l.ID, 2)
	return nil
}

func okLeaseReleaseOnDeath(t *LeaseTable) {
	l, ok := t.Acquire(0, 1)
	if !ok {
		return
	}
	t.Release(l.ID, "worker died", 2)
}

func okLeaseExpireSweep(t *LeaseTable) {
	t.Acquire(0, 1)
	t.Expire(99)
}

// dispatcher holds the live lease in a field and settles it from other
// methods — the coordinator's assign/handleEvent split: receiver escape,
// no finding.
type dispatcher struct {
	table *LeaseTable
	cur   TableLease
}

func (d *dispatcher) grab() {
	l, ok := d.table.Acquire(0, 1)
	if !ok {
		return
	}
	d.cur = l
}

func (d *dispatcher) landed() { d.table.Complete(d.cur.ID, 2) }

// ---- settlement through helpers (facts) ------------------------------

// returnBudget settles its governor parameter; callers releasing
// through it are paired (ReleasesParamFact).
func returnBudget(g *Governor, n int64) {
	g.Release(n)
}

func okHelperRelease(g *Governor, n int64, bad bool) error {
	g.Charge(n)
	defer returnBudget(g, n)
	if bad {
		return errBoom
	}
	return nil
}

func okCrossHelperRelease(g *gov.Governor, n int64) {
	g.Charge(n)
	gov.ReturnBudget(g, n)
}

func closeRes(r *Reservation) { r.Close() }

func okHelperClose(g *Governor, n int64, bad bool) error {
	res, err := g.Reserve(n)
	if err != nil {
		return err
	}
	defer closeRes(res)
	if bad {
		return errBoom
	}
	return nil
}

// peek merely reads the governor — not a settlement.
func peek(g *Governor) int64 { return g.n }

func leakHelperNoRelease(g *Governor, n int64) {
	g.Charge(n) // want `has no matching Release`
	peek(g)
}
