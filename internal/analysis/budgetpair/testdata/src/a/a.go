// Package a is budgetpair analyzer testdata: a local Governor stub
// (matched nominally) exercising the pairing, escape and quantity rules.
package a

import "errors"

type Governor struct{ n int64 }

func (g *Governor) Charge(n int64)  { g.n += n }
func (g *Governor) Release(n int64) { g.n -= n }

var errBoom = errors.New("boom")

func leakNoRelease(g *Governor, n int64) {
	g.Charge(n) // want `has no matching Release`
}

func leakEarlyReturn(g *Governor, n int64, bad bool) error {
	g.Charge(n)
	if bad {
		return errBoom // want `return leaks the governor charge`
	}
	g.Release(n)
	return nil
}

func okDefer(g *Governor, n int64, bad bool) error {
	g.Charge(n)
	defer g.Release(n)
	if bad {
		return errBoom
	}
	return nil
}

func okDeferClosure(g *Governor, n int64, bad bool) error {
	g.Charge(n)
	defer func() {
		g.Release(n)
	}()
	if bad {
		return errBoom
	}
	return nil
}

func leakWrongAmount(g *Governor, n int64) {
	g.Charge(n) // want `never Released with the same quantity`
	g.Release(8)
}

func leakFallOffEnd(g *Governor, n int64) {
	g.Release(n)
	g.Charge(n) // want `falls off the end`
}

// pool releases in stop what start charged: receiver escape, no finding.
type pool struct{ gov *Governor }

func (p *pool) start(n int64) {
	p.gov.Charge(n)
}

func (p *pool) stop(n int64) {
	p.gov.Release(n)
}

// reader releases in close what open charged into it: result escape.
type reader struct {
	gov *Governor
	n   int64
}

func (r *reader) close() { r.gov.Release(r.n) }

func open(g *Governor, n int64) *reader {
	g.Charge(n)
	return &reader{gov: g, n: n}
}

// keep transfers ownership to a caller the escape rules cannot see; the
// justified suppression keeps it quiet.
//
//nolint:budgetpair the level loop retires these sub-lists in bulk
func keep(g *Governor, n int64) {
	g.Charge(n)
}
