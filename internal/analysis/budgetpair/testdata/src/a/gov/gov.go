// Package gov stubs the governor for budgetpair's cross-package helper
// case: ReturnBudget's ReleasesParamFact travels to importers, so a
// charge settled through it is paired.
package gov

type Governor struct{ n int64 }

func (g *Governor) Charge(n int64)  { g.n += n }
func (g *Governor) Release(n int64) { g.n -= n }

// ReturnBudget releases n from g on the caller's behalf.
func ReturnBudget(g *Governor, n int64) {
	g.Release(n)
}
