package sendctx_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/lintkit/testkit"
	"repro/internal/analysis/sendctx"
)

func TestSendctx(t *testing.T) {
	testkit.Run(t, filepath.Join("testdata", "src", "a"), sendctx.Analyzer)
}
