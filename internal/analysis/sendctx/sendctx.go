// Package sendctx implements the repolint analyzer that makes the
// PR 7 lost-wakeup bug structurally impossible: inside a function
// marked //repro:ctxloop, every channel send and receive must sit in a
// select that also observes a liveness case — ctx.Done() or a struct{}
// signal/generation channel — so no blocking channel operation can
// outlive its cancellation signal.
//
// Three shapes are accepted:
//
//   - an op that is a comm case of a select with a liveness case (a
//     `case <-ctx.Done():` or a receive from a chan struct{}) or with a
//     default clause (the select cannot block);
//   - a bare receive that *is* the liveness signal: `<-ctx.Done()` or a
//     receive from a struct{} channel;
//   - nothing else: a bare send, or a bare receive from a data channel,
//     is a finding even when it "obviously" completes today.
package sendctx

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/lintkit"
)

// Analyzer is the sendctx entry point.
var Analyzer = &lintkit.Analyzer{
	Name: "sendctx",
	Doc: "in //repro:ctxloop functions, every channel send/receive must sit in a " +
		"select observing ctx.Done or a struct{} signal channel",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !lintkit.HasDirective(fd.Doc, "ctxloop") {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *lintkit.Pass, fd *ast.FuncDecl) {
	// Map each comm-clause op node to its select, then demand every
	// channel op in the body either belongs to a live select or is
	// itself a liveness receive.
	inSelect := make(map[ast.Node]*ast.SelectStmt)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			comm := clause.(*ast.CommClause).Comm
			switch c := comm.(type) {
			case *ast.SendStmt:
				inSelect[c] = sel
			case *ast.ExprStmt:
				inSelect[ast.Unparen(c.X)] = sel
			case *ast.AssignStmt:
				if len(c.Rhs) == 1 {
					inSelect[ast.Unparen(c.Rhs[0])] = sel
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if sel := inSelect[ast.Node(n)]; sel != nil && selectIsLive(pass.TypesInfo, sel) {
				return true
			}
			pass.Reportf(n.Pos(), "channel send in a //repro:ctxloop function must sit in a "+
				"select observing ctx.Done or a signal channel")
		case *ast.UnaryExpr:
			if n.Op.String() != "<-" {
				return true
			}
			if sel := inSelect[ast.Node(n)]; sel != nil && selectIsLive(pass.TypesInfo, sel) {
				return true
			}
			if isLivenessRecv(pass.TypesInfo, n.X) {
				return true
			}
			pass.Reportf(n.Pos(), "channel receive in a //repro:ctxloop function must sit in a "+
				"select observing ctx.Done or a signal channel")
		}
		return true
	})
}

// selectIsLive reports whether the select can always make progress on
// cancellation: it has a default clause, or a comm case receiving the
// liveness signal.
func selectIsLive(info *types.Info, sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		comm := clause.(*ast.CommClause).Comm
		if comm == nil {
			return true // default: the select cannot block
		}
		var recv ast.Expr
		switch c := comm.(type) {
		case *ast.ExprStmt:
			if u, ok := ast.Unparen(c.X).(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
				recv = u.X
			}
		case *ast.AssignStmt:
			if len(c.Rhs) == 1 {
				if u, ok := ast.Unparen(c.Rhs[0]).(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
					recv = u.X
				}
			}
		}
		if recv != nil && isLivenessRecv(info, recv) {
			return true
		}
	}
	return false
}

// isLivenessRecv reports whether receiving from e observes the
// cancellation signal: e is ctx.Done() on a context.Context, or e is a
// struct{} channel (the generation/stop idiom).
func isLivenessRecv(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			if tv, ok := info.Types[sel.X]; ok && isContext(tv.Type) {
				return true
			}
		}
	}
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
