// Package a is sendctx analyzer testdata: in a //repro:ctxloop
// function every channel op must sit in a select with a liveness path.
package a

import "context"

// okSelect: both ops live inside a ctx-observing select.
//
//repro:ctxloop pump loop
func okSelect(ctx context.Context, in, out chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-in:
			select {
			case <-ctx.Done():
				return
			case out <- v:
			}
		}
	}
}

// okSignalSelect: a struct{} stop channel is an accepted liveness case.
//
//repro:ctxloop stop-channel pump
func okSignalSelect(stop chan struct{}, out chan int) {
	for {
		select {
		case <-stop:
			return
		case out <- 1:
		}
	}
}

// okDefault: a select with a default clause can never block.
//
//repro:ctxloop non-blocking probe
func okDefault(out chan int) {
	select {
	case out <- 1:
	default:
	}
}

// okBareLiveness: a bare receive that IS the liveness observation.
//
//repro:ctxloop drains ctx only
func okBareLiveness(ctx context.Context, stop chan struct{}) {
	<-ctx.Done()
	<-stop
}

// badBareSend: an unguarded send can wedge the loop forever.
//
//repro:ctxloop bad pump
func badBareSend(out chan int) {
	for {
		out <- 1 // want `channel send in a //repro:ctxloop function must sit in a select`
	}
}

// badBareRecv: an unguarded data receive, same hazard.
//
//repro:ctxloop bad drain
func badBareRecv(in chan int) {
	for {
		v := <-in // want `channel receive in a //repro:ctxloop function must sit in a select`
		sink(v)
	}
}

// badDeadSelect: a select with no liveness case is as wedgeable as a
// bare op — every comm clause is reported.
//
//repro:ctxloop dead select
func badDeadSelect(in, out chan int) {
	select {
	case v := <-in: // want `channel receive in a //repro:ctxloop function must sit in a select`
		sink(v)
	case out <- 1: // want `channel send in a //repro:ctxloop function must sit in a select`
	}
}

// unmarked functions are out of scope no matter what they do.
func unmarked(in, out chan int) {
	out <- <-in
}

// suppressed: the annotation is deliberate and documented.
//
//repro:ctxloop suppressed corpus case
func suppressed(out chan int) {
	out <- 1 //nolint:sendctx corpus case: send guarded by construction
}

func sink(int) {}
