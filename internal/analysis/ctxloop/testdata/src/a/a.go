// Package a is ctxloop analyzer testdata.
package a

import "context"

//repro:ctxloop
func okDirect(ctx context.Context, items []int) error {
	for range items {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

//repro:ctxloop
func okDelegated(ctx context.Context, items []int) {
	for _, it := range items {
		process(ctx, it)
	}
}

//repro:ctxloop
func okSelect(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-ch:
			process(ctx, v)
		}
	}
}

// okInnerInherits: only the outermost loop must observe cancellation;
// the inner tail scan inherits it.
//
//repro:ctxloop
func okInnerInherits(ctx context.Context, grid [][]int) error {
	for _, row := range grid {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, v := range row {
			work(v)
		}
	}
	return nil
}

//repro:ctxloop
func badSilent(ctx context.Context, items []int) {
	_ = ctx
	for range items { // want `never observes cancellation`
		work(0)
	}
}

// badSecondLoop: each outermost loop needs its own touchpoint.
//
//repro:ctxloop
func badSecondLoop(ctx context.Context, items []int) {
	for range items {
		process(ctx, 0)
	}
	for range items { // want `never observes cancellation`
		work(0)
	}
}

//repro:ctxloop
func misplaced(ctx context.Context) int { // want `has no loops`
	_ = ctx
	return 1
}

func process(ctx context.Context, it int) {}

func work(v int) {}
