package ctxloop_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/ctxloop"
	"repro/internal/analysis/lintkit/testkit"
)

func TestCtxloop(t *testing.T) {
	testkit.Run(t, filepath.Join("testdata", "src", "a"), ctxloop.Analyzer)
}
