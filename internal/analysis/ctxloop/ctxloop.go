// Package ctxloop enforces the enumeration backends' long-running-loop
// discipline: a function marked //repro:ctxloop must observe
// cancellation in every outermost loop.  This is the PR 2 invariant —
// level loops, sub-list scans and record streams all run for hours at
// genome scale, and a loop that never consults its context turns
// Ctrl-C, -timeout and client disconnects into hangs.
//
// A loop observes cancellation when its body (at any depth, nested
// loops included) either
//
//   - calls Err or Done on a context.Context value (ctx.Err(),
//     b.Ctx.Err(), h.ctx().Done(), a select on ctx.Done()), or
//   - passes a context.Context value to a call — delegating the check
//     to the callee, the way the level loops hand ctx to Step.
//
// Only outermost loops are checked: an inner tail scan inherits its
// enclosing level loop's cancellation point.  The directive on a
// function with no loops at all is reported as misplaced, so stale
// markers cannot silently vouch for nothing.
package ctxloop

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/lintkit"
)

// Analyzer is the ctxloop check.
var Analyzer = &lintkit.Analyzer{
	Name: "ctxloop",
	Doc:  "check that //repro:ctxloop functions observe context cancellation in every outermost loop",
	Run:  run,
}

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !lintkit.HasDirective(fd.Doc, "ctxloop") {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *lintkit.Pass, fd *ast.FuncDecl) {
	loops := outermostLoops(fd.Body)
	if len(loops) == 0 {
		pass.Reportf(fd.Pos(),
			"//repro:ctxloop on %s, but the function has no loops; drop the directive or move it to the looping function",
			fd.Name.Name)
		return
	}
	for _, loop := range loops {
		if !observesCancellation(pass.TypesInfo, loopBody(loop)) {
			pass.Reportf(loop.Pos(),
				"loop in //repro:ctxloop function %s never observes cancellation: check ctx.Err()/ctx.Done() or pass the context into the loop body",
				fd.Name.Name)
		}
	}
}

// outermostLoops returns the for/range statements of body that are not
// nested inside another loop (loops inside function literals are
// closures with their own lifecycle and are skipped).
func outermostLoops(body *ast.BlockStmt) []ast.Stmt {
	var loops []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, n)
			return false // inner loops inherit the outermost check
		case *ast.RangeStmt:
			loops = append(loops, n)
			return false
		case *ast.FuncLit:
			return false
		}
		return true
	})
	return loops
}

func loopBody(s ast.Stmt) *ast.BlockStmt {
	switch s := s.(type) {
	case *ast.ForStmt:
		return s.Body
	case *ast.RangeStmt:
		return s.Body
	}
	return nil
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// observesCancellation reports whether the loop body contains a
// cancellation touchpoint as defined in the package comment.
func observesCancellation(info *types.Info, body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// ctx.Err() / ctx.Done() on a context-typed receiver.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") {
			if tv, ok := info.Types[sel.X]; ok && isContext(tv.Type) {
				found = true
				return false
			}
		}
		// Delegation: a context value handed to any call.
		for _, arg := range call.Args {
			if tv, ok := info.Types[arg]; ok && isContext(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
