package repolint

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis/lintkit"
)

// TestSuiteIsRegistered pins the analyzer roster: adding an analyzer to
// the tree without registering it here would silently exempt the repo
// from its check.
func TestSuiteIsRegistered(t *testing.T) {
	want := []string{"budgetpair", "cleanuperr", "ctxloop", "frozengraph", "goroleak",
		"hotalloc", "leasestate", "lockorder", "sendctx"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() has %d entries, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d] = %q, want %q", i, a.Name, want[i])
		}
	}
}

// TestRepoIsClean is the smoke test the CI lint gate mirrors: the full
// module — tests included — must produce zero diagnostics under the
// suite.  A regression anywhere in the tree fails this test with the
// offending positions listed.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	root, err := moduleRoot()
	if err != nil {
		t.Skip("module root not found: ", err)
	}
	pkgs, fset, err := lintkit.Load(root, []string{"./..."}, true)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	ds, err := lintkit.Run(fset, pkgs, Analyzers())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range ds {
		pos := fset.Position(d.Pos)
		t.Errorf("%s: %s: %s", pos, d.Analyzer, d.Message)
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
