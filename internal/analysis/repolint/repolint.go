// Package repolint is the registry binding the repo's analyzers into
// one suite.  cmd/repolint and the smoke tests consume this list; add
// new analyzers here and they are picked up by `make lint`, the vet
// adapter and the CI gate with no further wiring.
package repolint

import (
	"repro/internal/analysis/budgetpair"
	"repro/internal/analysis/cleanuperr"
	"repro/internal/analysis/ctxloop"
	"repro/internal/analysis/frozengraph"
	"repro/internal/analysis/goroleak"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/leasestate"
	"repro/internal/analysis/lintkit"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/sendctx"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*lintkit.Analyzer {
	return []*lintkit.Analyzer{
		budgetpair.Analyzer,
		cleanuperr.Analyzer,
		ctxloop.Analyzer,
		frozengraph.Analyzer,
		goroleak.Analyzer,
		hotalloc.Analyzer,
		leasestate.Analyzer,
		lockorder.Analyzer,
		sendctx.Analyzer,
	}
}
