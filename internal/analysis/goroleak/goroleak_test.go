package goroleak_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/goroleak"
	"repro/internal/analysis/lintkit/testkit"
)

func TestGoroleak(t *testing.T) {
	testkit.Run(t, filepath.Join("testdata", "src", "a"), goroleak.Analyzer)
}
