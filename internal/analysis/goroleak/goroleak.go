// Package goroleak implements the repolint analyzer that requires every
// goroutine launch to have a statically visible join or termination
// path.  Long-running services (cliqued, the dist coordinator) turn a
// forgotten goroutine into an unbounded leak; this analyzer makes "who
// reaps this?" a question the launch site must answer.
//
// A launch passes when its body (the launched func literal, or the
// declaration of a same-package function/method it calls) satisfies any
// of:
//
//   - it observes a context.Context — uses a ctx-typed variable, which
//     covers both `<-ctx.Done()` loops and delegating ctx to a callee;
//   - it calls Done on a sync.WaitGroup (the launcher Waits);
//   - it receives from a struct{} signal channel — the close-to-stop
//     idiom;
//   - it ranges over a channel — terminated by the producer's close;
//   - it is straight-line (no loops) with no channel receives, and
//     every channel send targets a channel the launching function
//     itself receives from — the `go func() { errc <- serve() }()`
//     idiom.
//
// Launches through values the analyzer cannot see into — interface
// methods, function values, cross-package calls — are findings: wrap
// them in a literal that proves termination, or justify a //nolint.
package goroleak

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/lintkit"
)

// Analyzer is the goroleak entry point.
var Analyzer = &lintkit.Analyzer{
	Name: "goroleak",
	Doc: "report goroutine launches with no reachable join/termination path " +
		"(ctx observation, WaitGroup.Done, signal-channel receive, channel range, " +
		"or a parent-received result send)",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	locals := lintkit.LocalFuncs(pass.Files, pass.TypesInfo)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkLaunch(pass, locals, fd, g)
				return true
			})
		}
	}
	return nil
}

// checkLaunch applies the termination rules to one go statement.
func checkLaunch(pass *lintkit.Pass, locals map[*types.Func]*ast.FuncDecl, enclosing *ast.FuncDecl, g *ast.GoStmt) {
	var body *ast.BlockStmt
	switch fn := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fn.Body
	default:
		callee := lintkit.CalleeFunc(pass.TypesInfo, g.Call)
		if callee == nil {
			pass.Reportf(g.Pos(), "goroutine launched through an interface method or function value; "+
				"wrap it in a literal with a join/termination path")
			return
		}
		decl, ok := locals[callee]
		if !ok || decl.Body == nil {
			pass.Reportf(g.Pos(), "goroutine body %s is outside this package; "+
				"wrap the launch in a literal with a join/termination path", callee.Name())
			return
		}
		body = decl.Body
	}
	if terminates(pass.TypesInfo, body) {
		return
	}
	if straightLineAccounted(pass.TypesInfo, body, enclosing, g) {
		return
	}
	pass.Reportf(g.Pos(), "goroutine has no reachable join/termination path "+
		"(want ctx observation, WaitGroup.Done, signal-channel receive, channel range, "+
		"or a parent-received result send)")
}

// terminates reports whether the body satisfies one of the direct
// termination rules: ctx use, WaitGroup.Done, struct{}-channel receive,
// or range over a channel.
func terminates(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && isContext(obj.Type()) {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if tv, ok := info.Types[sel.X]; ok && isWaitGroup(tv.Type) {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && isSignalChan(info, n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// straightLineAccounted reports whether the body is loop-free, receives
// from nothing, and sends only on channels the enclosing function
// receives from — the launch-collect idiom where the parent's receive
// is the join.
func straightLineAccounted(info *types.Info, body *ast.BlockStmt, enclosing *ast.FuncDecl, g *ast.GoStmt) bool {
	simple := true
	var sendChans []types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if !simple {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			simple = false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				simple = false
			}
		case *ast.SendStmt:
			obj := chanObject(info, n.Chan)
			if obj == nil {
				simple = false
			} else {
				sendChans = append(sendChans, obj)
			}
		}
		return simple
	})
	if !simple {
		return false
	}
	for _, obj := range sendChans {
		if !parentReceivesFrom(info, enclosing, g, obj) {
			return false
		}
	}
	return true
}

// parentReceivesFrom reports whether the enclosing function, outside
// the launch itself, receives from the channel object.
func parentReceivesFrom(info *types.Info, enclosing *ast.FuncDecl, g *ast.GoStmt, ch types.Object) bool {
	found := false
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		if found || n == g {
			return !found && n != g
		}
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
			if chanObject(info, u.X) == ch {
				found = true
			}
		}
		return !found
	})
	return found
}

// chanObject resolves a channel expression to the variable object at
// its root, or nil when the channel is not a plain identifier.
func chanObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isWaitGroup reports whether t is sync.WaitGroup or *sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// isSignalChan reports whether e has type <-chan struct{} (any
// direction) — the close-to-broadcast termination idiom.
func isSignalChan(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
