// Package a is goroleak analyzer testdata: every `go` launch needs a
// statically visible join or termination path.
package a

import (
	"context"
	"io"
	"sync"
)

// okWaitGroup: the launcher Waits, the body Dones.
func okWaitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// okCtx: the body observes cancellation.
func okCtx(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				sink(v)
			}
		}
	}()
}

// okCtxDelegated: passing ctx onward counts as observing it.
func okCtxDelegated(ctx context.Context) {
	go func() {
		runUntilCanceled(ctx)
	}()
}

// okSignal: receive from a struct{} stop channel.
func okSignal(stop chan struct{}, ch chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case v := <-ch:
				sink(v)
			}
		}
	}()
}

// okRange: the producer's close terminates the loop.
func okRange(ch chan int) {
	go func() {
		for v := range ch {
			sink(v)
		}
	}()
}

// okStraightLine: no loops, no channel ops — the body runs off its end.
func okStraightLine() {
	go func() {
		work()
	}()
}

// okParentReceives: the enclosing function's receive is the join.
func okParentReceives() error {
	errc := make(chan error, 1)
	go func() { errc <- io.EOF }()
	return <-errc
}

// okLocalCallee: launching a same-package method whose body ranges.
func okLocalCallee(p *pool) {
	go p.loop()
}

type pool struct{ jobs chan int }

func (p *pool) loop() {
	for j := range p.jobs {
		sink(j)
	}
}

// badEndless: an unbounded loop nobody can stop.
func badEndless(ch chan int) {
	go func() { // want `no reachable join/termination path`
		for {
			sink(<-ch)
		}
	}()
}

// badSendNoReceiver: the parent never collects, so the send can block
// forever once the launcher returns.
func badSendNoReceiver(ch chan int) {
	go func() { // want `no reachable join/termination path`
		ch <- 1
	}()
}

// badInterface: the analyzer cannot see into an interface method.
func badInterface(c io.Closer) {
	go c.Close() // want `interface method or function value`
}

// badFuncValue: nor into a function value.
func badFuncValue(f func()) {
	go f() // want `interface method or function value`
}

// badCrossPackage: nor across package boundaries.
func badCrossPackage(w io.Writer) {
	go io.WriteString(w, "x") // want `outside this package`
}

// suppressed: a documented fire-and-forget.
func suppressed() {
	go func() { //nolint:goroleak corpus case: deliberate fire-and-forget
		for {
			work()
		}
	}()
}

func work()                            {}
func sink(int)                         {}
func runUntilCanceled(context.Context) {}
