package lintkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// vetConfig is the per-package configuration file the go command hands a
// -vettool (the x/tools "unitchecker" protocol): the compiled package's
// file list plus maps resolving its imports to compiler export data.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetMain implements the `go vet -vettool` entry point: argv is the
// single <pkg>.cfg argument the go command passes per package.  It runs
// the analyzers over that one package with its dependencies' facts
// (decoded from the .vetx files named in PackageVetx), prints findings
// in vet's file:line:col form, writes the package's own facts — its
// exports plus a re-export of everything imported, which is what makes
// fact visibility transitive — to the .vetx output the protocol
// requires, and returns the process exit code: 0 clean, 2 findings,
// 1 internal error.
func VetMain(cfgPath string, analyzers []*Analyzer) int {
	code, err := vetPackage(cfgPath, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 1
	}
	return code
}

func vetPackage(cfgPath string, analyzers []*Analyzer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}
	// The go command always expects the facts file; guarantee one exists
	// even when we bail out early (typecheck failure, parse error).
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return 0, err
		}
	}

	// Merge dependency facts.  Standard-library vetx files don't exist
	// (vet isn't run over std for vettools), and pre-facts runs wrote
	// zero-byte files — both decode as "no facts".
	RegisterFactTypes(analyzers)
	facts := NewFactStore()
	for _, vetx := range cfg.PackageVetx {
		f, err := os.Open(vetx)
		if err != nil {
			continue
		}
		derr := facts.Decode(f)
		f.Close()
		if derr != nil {
			return 0, fmt.Errorf("reading facts %s: %v", vetx, derr)
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, cfg.Compiler, lookup)}
	tpkg, err := conf.Check(canonicalImportPath(cfg.ImportPath), fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}

	// The analyzers must run even under VetxOnly — that mode means "this
	// package is only a dependency of the requested targets", and its
	// exported facts are exactly what downstream units need.
	pkg := &Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	ds, err := runPackage(fset, pkg, analyzers, facts)
	if err != nil {
		return 0, err
	}
	if cfg.VetxOutput != "" {
		var buf bytes.Buffer
		if err := facts.Encode(&buf); err != nil {
			return 0, err
		}
		if err := os.WriteFile(cfg.VetxOutput, buf.Bytes(), 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly || len(ds) == 0 {
		return 0, nil
	}
	sortDiagnostics(fset, ds)
	Format(os.Stderr, fset, ds)
	return 2, nil
}

// VetVersion prints the -V=full banner the go command uses to fingerprint
// a vet tool for build caching.  The final field must parse as a build
// ID.  Hashing the tool's own executable means any analyzer change (not
// just a roster change) invalidates cached vet results; the analyzer
// names are the fallback when the binary can't be read.
func VetVersion(progname string, analyzers []*Analyzer) {
	sum := fnv1a(executableBytes(analyzers))
	fmt.Printf("%s version repolint buildID=%016x\n", progname, sum)
}

func executableBytes(analyzers []*Analyzer) []byte {
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			return data
		}
	}
	var names []string
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	return []byte(strings.Join(names, ","))
}

func fnv1a(data []byte) uint64 {
	var sum uint64 = 1469598103934665603
	for _, b := range data {
		sum ^= uint64(b)
		sum *= 1099511628211
	}
	return sum
}
