package lintkit

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// vetConfig is the per-package configuration file the go command hands a
// -vettool (the x/tools "unitchecker" protocol): the compiled package's
// file list plus maps resolving its imports to compiler export data.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetMain implements the `go vet -vettool` entry point: argv is the
// single <pkg>.cfg argument the go command passes per package.  It runs
// the analyzers over that one package, prints findings in vet's
// file:line:col form, writes the (empty — repolint exchanges no facts)
// .vetx output the protocol requires, and returns the process exit code:
// 0 clean, 2 findings, 1 internal error.
func VetMain(cfgPath string, analyzers []*Analyzer) int {
	code, err := vetPackage(cfgPath, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 1
	}
	return code
}

func vetPackage(cfgPath string, analyzers []*Analyzer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}
	// The go command always expects the facts file, even from a tool
	// that produces none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, cfg.Compiler, lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}

	pkg := &Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	ds, err := runPackage(fset, pkg, analyzers)
	if err != nil {
		return 0, err
	}
	if len(ds) == 0 {
		return 0, nil
	}
	sortDiagnostics(fset, ds)
	Format(os.Stderr, fset, ds)
	return 2, nil
}

// VetVersion prints the -V=full banner the go command uses to fingerprint
// a vet tool for build caching.  The final field must parse as a build
// ID; a content hash of the analyzer names keeps it stable per suite.
func VetVersion(progname string, analyzers []*Analyzer) {
	var names []string
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	var sum uint64 = 1469598103934665603 // FNV-1a
	for _, b := range []byte(strings.Join(names, ",")) {
		sum ^= uint64(b)
		sum *= 1099511628211
	}
	fmt.Printf("%s version repolint buildID=%016x\n", progname, sum)
}
