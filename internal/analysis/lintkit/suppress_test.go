package lintkit

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestParseNolint(t *testing.T) {
	cases := []struct {
		text      string
		ok, all   bool
		names     []string
		hasReason bool
	}{
		{"// ordinary comment", false, false, nil, false},
		{"//nolint:budgetpair ownership transfers to the level loop", true, false, []string{"budgetpair"}, true},
		{"//nolint:budgetpair,hotalloc shared scratch", true, false, []string{"budgetpair", "hotalloc"}, true},
		{"//nolint:all generated file", true, true, nil, true},
		{"//nolint:cleanuperr", true, false, []string{"cleanuperr"}, false},
	}
	for _, c := range cases {
		names, all, hasReason, ok := parseNolint(c.text)
		if ok != c.ok || all != c.all || hasReason != c.hasReason {
			t.Errorf("parseNolint(%q) = ok %v all %v reason %v, want %v %v %v",
				c.text, ok, all, hasReason, c.ok, c.all, c.hasReason)
		}
		for _, n := range c.names {
			if !names[n] {
				t.Errorf("parseNolint(%q): missing analyzer %q", c.text, n)
			}
		}
	}
}

const suppressSrc = `package p

// covered by a doc-comment suppression across the whole function
//
//nolint:budgetpair the caller retires the charge
func f() {
	g()
	g()
}

func g() {
	_ = 1 //nolint:hotalloc scratch is preallocated
	_ = 2
}

func h() {
	_ = 3 //nolint:cleanuperr
}
`

func TestSuppressions(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := collectSuppressions(fset, f)

	line := func(marker string) int {
		idx := strings.Index(suppressSrc, marker)
		if idx < 0 {
			t.Fatalf("marker %q not found", marker)
		}
		return 1 + strings.Count(suppressSrc[:idx], "\n")
	}

	// Doc-comment nolint covers every line of f's declaration.
	for _, l := range []int{line("func f()"), line("g()\n\tg()"), line("func f()") + 2} {
		if !sup.suppresses("budgetpair", l) {
			t.Errorf("line %d of f should be suppressed for budgetpair", l)
		}
	}
	if sup.suppresses("ctxloop", line("func f()")) {
		t.Error("doc nolint must only suppress the analyzers it names")
	}

	// Same-line nolint covers exactly its line.
	if !sup.suppresses("hotalloc", line("_ = 1")) {
		t.Error("same-line nolint should suppress its own line")
	}
	if sup.suppresses("hotalloc", line("_ = 2")) {
		t.Error("same-line nolint must not leak to the next line")
	}

	// A reasonless nolint still suppresses but fails hygiene.
	ds := sup.hygiene(fset.File(f.Pos()))
	if len(ds) != 1 {
		t.Fatalf("hygiene findings = %d, want 1 (the reasonless cleanuperr nolint)", len(ds))
	}
	if got := fset.Position(ds[0].Pos).Line; got != line("_ = 3") {
		t.Errorf("hygiene finding on line %d, want %d", got, line("_ = 3"))
	}
	if !sup.suppresses("cleanuperr", line("_ = 3")) {
		t.Error("reasonless nolint still suppresses; hygiene reports it separately")
	}
}

const ownLineSrc = `package p

func q(ch chan int) {
	_ = 4
	//nolint:goroleak the pump drains when ch closes
	go func() {
		for range ch {
		}
	}()
	_ = 5
}
`

// TestOwnLineSuppression: a //nolint alone on the line above a
// multi-line statement reaches the finding reported at the statement's
// first token — without leaking past it.
func TestOwnLineSuppression(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "q.go", ownLineSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := collectSuppressions(fset, f)

	line := func(marker string) int {
		idx := strings.Index(ownLineSrc, marker)
		if idx < 0 {
			t.Fatalf("marker %q not found", marker)
		}
		return 1 + strings.Count(ownLineSrc[:idx], "\n")
	}

	if !sup.suppresses("goroleak", line("go func()")) {
		t.Error("own-line nolint should cover the statement starting on the next line")
	}
	if sup.suppresses("goroleak", line("_ = 4")) {
		t.Error("own-line nolint must not reach the preceding line")
	}
	if sup.suppresses("goroleak", line("_ = 5")) {
		t.Error("own-line nolint must not reach past the next line")
	}
	if sup.suppresses("ctxloop", line("go func()")) {
		t.Error("own-line nolint must only suppress the analyzers it names")
	}
}
