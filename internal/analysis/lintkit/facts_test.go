package lintkit

import (
	"bytes"
	"encoding/gob"
	"go/token"
	"go/types"
	"testing"
)

type testObjFact struct{ N int }

func (*testObjFact) AFact() {}

type testPkgFact struct{ Names []string }

func (*testPkgFact) AFact() {}

// TestFactsRoundTrip pins the vetx carrier: facts exported on one side
// of the gob stream must import intact on the other, keyed by the
// stable object path, for objects, methods and package facts alike.
func TestFactsRoundTrip(t *testing.T) {
	gob.Register(&testObjFact{})
	gob.Register(&testPkgFact{})

	pkg := types.NewPackage("example.com/p", "p")
	v := types.NewVar(token.NoPos, pkg, "V", types.Typ[types.Int])
	fn := types.NewFunc(token.NoPos, pkg, "F", types.NewSignatureType(nil, nil, nil, nil, nil, false))
	recvType := types.NewNamed(types.NewTypeName(token.NoPos, pkg, "T", nil), types.NewStruct(nil, nil), nil)
	recv := types.NewVar(token.NoPos, pkg, "t", types.NewPointer(recvType))
	method := types.NewFunc(token.NoPos, pkg, "M",
		types.NewSignatureType(recv, nil, nil, nil, nil, false))

	src := NewFactStore()
	src.exportObject(v, &testObjFact{N: 7})
	src.exportObject(fn, &testObjFact{N: 9})
	src.exportObject(method, &testObjFact{N: 11})
	src.exportPackage(pkg.Path(), &testPkgFact{Names: []string{"a", "b"}})

	if key := ObjectKey(method); key != "example.com/p::T.M" {
		t.Fatalf("method key = %q, want example.com/p::T.M", key)
	}

	var buf bytes.Buffer
	if err := src.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}

	// A fresh store on the "other end": only the gob stream crossed.
	dst := NewFactStore()
	if err := dst.Decode(&buf); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for _, c := range []struct {
		obj  types.Object
		want int
	}{{v, 7}, {fn, 9}, {method, 11}} {
		var f testObjFact
		if !dst.importObject(c.obj, &f) {
			t.Fatalf("fact for %s did not survive the round trip", ObjectKey(c.obj))
		}
		if f.N != c.want {
			t.Errorf("fact for %s = %d, want %d", ObjectKey(c.obj), f.N, c.want)
		}
	}
	var pf testPkgFact
	if !dst.importPackage(pkg.Path(), &pf) {
		t.Fatal("package fact did not survive the round trip")
	}
	if len(pf.Names) != 2 || pf.Names[0] != "a" || pf.Names[1] != "b" {
		t.Errorf("package fact = %+v", pf)
	}
	if all := dst.allPackageFacts((*testPkgFact)(nil)); len(all) != 1 || all[pkg.Path()] == nil {
		t.Errorf("allPackageFacts = %v, want the one example.com/p entry", all)
	}

	// Importing a type never exported reports absence, not garbage.
	var missing testPkgFact
	if dst.importPackage("example.com/other", &missing) {
		t.Error("import from an unexported package reported a fact")
	}

	// The pre-facts suite wrote zero-byte vetx files; they decode as
	// "no facts", not as an error.
	if err := NewFactStore().Decode(bytes.NewReader(nil)); err != nil {
		t.Errorf("empty stream decode: %v", err)
	}
}

// TestFactsEncodeDeterministic: the vetx bytes feed the build cache, so
// identical stores must serialize identically regardless of map order.
func TestFactsEncodeDeterministic(t *testing.T) {
	gob.Register(&testObjFact{})
	build := func() *FactStore {
		pkg := types.NewPackage("example.com/p", "p")
		s := NewFactStore()
		for _, name := range []string{"C", "A", "B", "E", "D"} {
			v := types.NewVar(token.NoPos, pkg, name, types.Typ[types.Int])
			s.exportObject(v, &testObjFact{N: int(name[0])})
		}
		return s
	}
	var first bytes.Buffer
	if err := build().Encode(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		var again bytes.Buffer
		if err := build().Encode(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("encoding %d differs from the first", i)
		}
	}
}
