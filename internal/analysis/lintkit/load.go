package lintkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, parsed, type-checked package ready for
// analysis.
type Package struct {
	ImportPath string
	Dir        string
	Imports    []string // canonical import paths (brackets stripped)
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// CanonicalPath strips the " [pkg.test]" decoration go list puts on
// test-augmented variants, so fact keys and the dependency order use
// the same path whether or not -test loading is on.
func (p *Package) CanonicalPath() string { return canonicalImportPath(p.ImportPath) }

// canonicalImportPath maps "p [p.test]" and "p_test [p.test]" to "p"
// and "p_test"; plain paths pass through.
func canonicalImportPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	Imports    []string
	DepOnly    bool
	Standard   bool
	ForTest    string
	Error      *struct{ Err string }
}

// Load resolves the go-list patterns (e.g. "./...") relative to dir,
// parses the matched packages, and type-checks them against their
// dependencies' compiler export data.  It shells out to `go list -e
// -export -deps -json`, which works entirely from the local build
// cache — no module downloads — which is what lets the suite run in a
// network-isolated environment where golang.org/x/tools cannot be
// fetched.
//
// includeTests additionally loads each package's test-augmented variant
// (in-package _test.go files merged in, plus external _test packages);
// synthesized ".test" mains are always skipped.
func Load(dir string, patterns []string, includeTests bool) ([]*Package, *token.FileSet, error) {
	args := []string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Name,Export,GoFiles,Imports,DepOnly,Standard,ForTest,Error"}
	if includeTests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("lintkit: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []listPackage
	augmented := make(map[string]bool) // plain paths with a [pkg.test] twin
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("lintkit: go list output: %v", err)
		}
		if p.Export != "" {
			// Test-augmented variants ("p [p.test]") must not shadow the
			// plain package's export data in the import resolution map.
			if _, dup := exports[p.ImportPath]; !dup && p.ForTest == "" {
				exports[p.ImportPath] = p.Export
			}
		}
		if p.DepOnly || p.Standard || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("lintkit: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.ForTest != "" && !strings.HasSuffix(p.ImportPath, "_test]") {
			// "p [p.test]" supersedes the plain "p" listed alongside it.
			augmented[p.ForTest] = true
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		targets = append(targets, p)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lintkit: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range targets {
		if p.ForTest == "" && augmented[p.ImportPath] {
			continue // analyzed via its test-augmented variant instead
		}
		var files []*ast.File
		for _, gf := range p.GoFiles {
			name := gf
			if !filepath.IsAbs(name) {
				name = filepath.Join(p.Dir, gf)
			}
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
			if err != nil {
				return nil, nil, fmt.Errorf("lintkit: %v", err)
			}
			files = append(files, f)
		}
		info := newTypesInfo()
		conf := types.Config{Importer: imp}
		// Type-check under the canonical path: facts keyed off the
		// types.Package must read "p", not "p [p.test]", or the augmented
		// variant's exports would be invisible to importers of p.
		tpkg, err := conf.Check(canonicalImportPath(p.ImportPath), fset, files, info)
		if err != nil {
			return nil, nil, fmt.Errorf("lintkit: type-checking %s: %v", p.ImportPath, err)
		}
		imports := make([]string, 0, len(p.Imports))
		for _, dep := range p.Imports {
			imports = append(imports, canonicalImportPath(dep))
		}
		pkgs = append(pkgs, &Package{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			Imports:    imports,
			Syntax:     files,
			Types:      tpkg,
			TypesInfo:  info,
		})
	}
	return pkgs, fset, nil
}

// newTypesInfo allocates the full set of type-checker result maps the
// analyzers consult.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
