package lintkit

import (
	"encoding/gob"
	"fmt"
	"go/types"
	"io"
	"reflect"
	"sort"
)

// The facts layer mirrors go/analysis Facts: an analyzer may attach a
// typed fact to a package-level object (function, method, type, var) or
// to a package as a whole, and analyzers running later — over packages
// that import the exporter — can read it back.  Facts are what turn the
// per-package analyzers into whole-program ones: budgetpair follows a
// governor through an exported helper because the helper's package
// exported a "calling me releases param 1" fact, and lockorder's
// acquisition-order graph is the union of every package's exported edge
// facts.
//
// Two carriers exist, matching the two driver modes:
//
//   - standalone (`repolint ./...`): one in-memory FactStore is threaded
//     through the packages in import-dependency order (Run topo-sorts),
//     so facts never touch disk;
//   - vet (`go vet -vettool=repolint`): each package's facts are
//     gob-serialized into the .vetx file the unitchecker protocol
//     already exchanges, keyed by stable object paths, so incremental
//     runs off the go build cache still see their dependencies' facts.
//     A package's vetx output re-exports the facts it imported, which is
//     what makes fact visibility transitive without any extra plumbing.
//
// A Fact implementation must be a pointer-to-struct, gob-serializable,
// and listed in its Analyzer's FactTypes so the codec knows the
// concrete types to register.

// Fact is the marker interface for analyzer facts (go/analysis.Fact).
type Fact interface{ AFact() }

// factKey identifies one object fact: the object's stable path plus the
// fact's concrete type (one fact of each type per object).
type factKey struct {
	obj string
	typ reflect.Type
}

// pkgFactKey identifies one package fact.
type pkgFactKey struct {
	path string
	typ  reflect.Type
}

// FactStore holds every fact visible to the current analysis unit:
// facts decoded from dependencies plus facts exported so far.
type FactStore struct {
	objects map[factKey]Fact
	pkgs    map[pkgFactKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		objects: make(map[factKey]Fact),
		pkgs:    make(map[pkgFactKey]Fact),
	}
}

// ObjectKey renders the stable cross-package key for a package-level
// object: pkgpath::Name for plain objects, pkgpath::Recv.Name for
// methods.  Objects without a package (builtins, the blank identifier)
// have no key and take no facts.
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	name := obj.Name()
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			rt := sig.Recv().Type()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			if named, ok := rt.(*types.Named); ok {
				name = named.Obj().Name() + "." + name
			}
		}
	}
	return obj.Pkg().Path() + "::" + name
}

func (s *FactStore) exportObject(obj types.Object, f Fact) {
	key := ObjectKey(obj)
	if key == "" {
		return
	}
	s.objects[factKey{key, reflect.TypeOf(f)}] = f
}

// importObject copies a stored fact of f's type into f, reporting
// whether one existed.
func (s *FactStore) importObject(obj types.Object, f Fact) bool {
	key := ObjectKey(obj)
	if key == "" {
		return false
	}
	got, ok := s.objects[factKey{key, reflect.TypeOf(f)}]
	if !ok {
		return false
	}
	reflect.ValueOf(f).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

func (s *FactStore) exportPackage(path string, f Fact) {
	s.pkgs[pkgFactKey{path, reflect.TypeOf(f)}] = f
}

func (s *FactStore) importPackage(path string, f Fact) bool {
	got, ok := s.pkgs[pkgFactKey{path, reflect.TypeOf(f)}]
	if !ok {
		return false
	}
	reflect.ValueOf(f).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// allPackageFacts returns every package fact whose concrete type
// matches example's, keyed by package path.  The returned facts are the
// stored pointers: treat them as read-only.
func (s *FactStore) allPackageFacts(example Fact) map[string]Fact {
	want := reflect.TypeOf(example)
	out := make(map[string]Fact)
	for k, f := range s.pkgs {
		if k.typ == want {
			out[k.path] = f
		}
	}
	return out
}

// ----------------------------------------------------------------------
// Serialization (the vetx carrier)
// ----------------------------------------------------------------------

// wireFact is the gob wire form of one fact.  Object is "" for package
// facts; Fact rides as a gob interface value, so every concrete fact
// type must be registered (RegisterFactTypes) on both ends.
type wireFact struct {
	Object string // ObjectKey, or "" for a package fact
	Pkg    string // package path (package facts only)
	Fact   Fact
}

// RegisterFactTypes registers every analyzer's FactTypes with gob.
// Call once per process before encoding or decoding fact files.
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// Encode writes the store's facts to w in a deterministic order.
func (s *FactStore) Encode(w io.Writer) error {
	var facts []wireFact
	for k, f := range s.objects {
		facts = append(facts, wireFact{Object: k.obj, Fact: f})
	}
	for k, f := range s.pkgs {
		facts = append(facts, wireFact{Pkg: k.path, Fact: f})
	}
	sort.Slice(facts, func(i, j int) bool {
		if facts[i].Object != facts[j].Object {
			return facts[i].Object < facts[j].Object
		}
		if facts[i].Pkg != facts[j].Pkg {
			return facts[i].Pkg < facts[j].Pkg
		}
		return fmt.Sprintf("%T", facts[i].Fact) < fmt.Sprintf("%T", facts[j].Fact)
	})
	return gob.NewEncoder(w).Encode(facts)
}

// Decode merges facts from r into the store.  An empty stream (the
// pre-facts suite wrote zero-byte vetx files) decodes as no facts.
func (s *FactStore) Decode(r io.Reader) error {
	var facts []wireFact
	if err := gob.NewDecoder(r).Decode(&facts); err != nil {
		if err == io.EOF {
			return nil
		}
		return fmt.Errorf("lintkit: decoding facts: %v", err)
	}
	for _, wf := range facts {
		if wf.Fact == nil {
			continue
		}
		if wf.Object != "" {
			s.objects[factKey{wf.Object, reflect.TypeOf(wf.Fact)}] = wf.Fact
		} else if wf.Pkg != "" {
			s.pkgs[pkgFactKey{wf.Pkg, reflect.TypeOf(wf.Fact)}] = wf.Fact
		}
	}
	return nil
}
