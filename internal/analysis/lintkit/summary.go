package lintkit

import (
	"go/ast"
	"go/types"
)

// This file is the "callgraph lite" layer the facts-based analyzers
// share: enough call resolution to follow a value from a call site into
// the callee's declaration (same package) or into the callee's exported
// facts (other packages), without building a real whole-program
// callgraph.

// LocalFuncs indexes a package's function and method declarations by
// their types.Func object, so an analyzer that meets a call to a
// same-package function can walk straight into its body.  Bodyless
// declarations (assembly- or linkname-backed) are omitted: every
// returned decl has a non-nil Body.
func LocalFuncs(files []*ast.File, info *types.Info) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// CalleeFunc resolves a call expression to the declared function or
// method it invokes, or nil for calls through function values,
// builtins, interface methods, and type conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		// Interface method calls resolve to a *types.Func too, but its
		// declaring scope is the interface — callers that need a body or
		// a fact key on a concrete method must not treat those as
		// followable.  Distinguish via the selection kind.
		if sel, ok := info.Selections[fn]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				return nil
			}
		}
		id = fn.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// ParamVar returns the i'th declared parameter of fn, or nil.  This is
// how a caller-side analyzer names "the value I passed in position i"
// when walking into a same-package callee's body.
func ParamVar(fn *types.Func, i int) *types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || i < 0 || i >= sig.Params().Len() {
		return nil
	}
	return sig.Params().At(i)
}
