package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
)

// Run applies every analyzer to every package, filters the findings
// through the files' //nolint suppressions, appends suppression-hygiene
// findings (nolint without a reason), and returns the remainder sorted
// by position.
//
// Packages are visited in import-dependency order with one shared
// FactStore, so facts an analyzer exports from a package are visible
// when its importers are analyzed — the standalone counterpart of the
// vetx fact files the vet protocol threads through the build cache.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	RegisterFactTypes(analyzers)
	facts := NewFactStore()
	var all []Diagnostic
	for _, pkg := range sortByImports(pkgs) {
		ds, err := runPackage(fset, pkg, analyzers, facts)
		if err != nil {
			return nil, err
		}
		all = append(all, ds...)
	}
	sortDiagnostics(fset, all)
	return all, nil
}

// sortByImports orders packages dependencies-first (Kahn's algorithm
// over the loaded set, alphabetical tie-break so the order is stable).
// Edges that would form a cycle — possible only through the
// test-augmented variants' merged import lists — are dropped rather
// than wedging the run: fact visibility degrades, correctness of the
// per-package checks does not.
func sortByImports(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.CanonicalPath()] = p
	}
	indeg := make(map[string]int, len(pkgs))
	dependents := make(map[string][]string)
	for _, p := range pkgs {
		path := p.CanonicalPath()
		if _, ok := indeg[path]; !ok {
			indeg[path] = 0
		}
		for _, imp := range p.Imports {
			if _, loaded := byPath[imp]; !loaded || imp == path {
				continue
			}
			indeg[path]++
			dependents[imp] = append(dependents[imp], path)
		}
	}
	var ready []string
	for path, d := range indeg {
		if d == 0 {
			ready = append(ready, path)
		}
	}
	sort.Strings(ready)
	var order []*Package
	emitted := make(map[string]bool)
	for len(order) < len(pkgs) {
		if len(ready) == 0 {
			// Cycle remainder: emit alphabetically and move on.
			var rest []string
			for path := range indeg {
				if !emitted[path] {
					rest = append(rest, path)
				}
			}
			sort.Strings(rest)
			for _, path := range rest {
				order = append(order, byPath[path])
				emitted[path] = true
			}
			break
		}
		path := ready[0]
		ready = ready[1:]
		if emitted[path] {
			continue
		}
		emitted[path] = true
		order = append(order, byPath[path])
		deps := dependents[path]
		sort.Strings(deps)
		for _, dep := range deps {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
			}
		}
		sort.Strings(ready)
	}
	return order
}

// runPackage is Run for a single package (the unit the vet protocol
// hands us one at a time), reading and writing facts through store.
func runPackage(fset *token.FileSet, pkg *Package, analyzers []*Analyzer, facts *FactStore) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			report:    func(d Diagnostic) { raw = append(raw, d) },
			facts:     facts,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lintkit: %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	// Suppression pass: a finding is dropped when a //nolint naming its
	// analyzer covers the finding's line; every nolint comment itself
	// must carry a justification.
	sups := make(map[string]suppressions) // filename -> parsed nolints
	var kept []Diagnostic
	for _, f := range pkg.Syntax {
		name := fset.Position(f.Pos()).Filename
		sup := collectSuppressions(fset, f)
		sups[name] = sup
		kept = append(kept, sup.hygiene(fset.File(f.Pos()))...)
	}
	for _, d := range raw {
		pos := fset.Position(d.Pos)
		if sups[pos.Filename].suppresses(d.Analyzer, pos.Line) {
			continue
		}
		kept = append(kept, d)
	}
	return kept, nil
}

// Format writes diagnostics in the conventional file:line:col form.
func Format(w io.Writer, fset *token.FileSet, ds []Diagnostic) {
	for _, d := range ds {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(w, "%s: %s (%s)\n", pos, d.Message, d.Analyzer)
	}
}

// ----------------------------------------------------------------------
// Shared AST/type helpers used by several analyzers
// ----------------------------------------------------------------------

// CalleeName returns, for a call expression, the bare method or function
// name being invoked ("" when the callee is not an identifier or
// selector).
func CalleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// RootIdent returns the leftmost identifier of a selector chain
// (x in x.a.b), or nil.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.CallExpr:
			e = v.Fun
		default:
			return nil
		}
	}
}

// ExprString renders a small expression from its AST (the loader does
// not retain source bytes), for message text and for the textual
// quantity comparison budgetpair performs.
func ExprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.BasicLit:
		return v.Value
	case *ast.SelectorExpr:
		return ExprString(v.X) + "." + v.Sel.Name
	case *ast.CallExpr:
		s := ExprString(v.Fun) + "("
		for i, a := range v.Args {
			if i > 0 {
				s += ", "
			}
			s += ExprString(a)
		}
		return s + ")"
	case *ast.BinaryExpr:
		return ExprString(v.X) + v.Op.String() + ExprString(v.Y)
	case *ast.UnaryExpr:
		return v.Op.String() + ExprString(v.X)
	case *ast.StarExpr:
		return "*" + ExprString(v.X)
	case *ast.ParenExpr:
		return "(" + ExprString(v.X) + ")"
	case *ast.IndexExpr:
		return ExprString(v.X) + "[" + ExprString(v.Index) + "]"
	}
	return "?"
}
