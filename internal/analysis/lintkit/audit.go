package lintkit

import (
	"fmt"
	"go/token"
	"io"
	"sort"
	"strings"
)

// NolintSite is one //nolint suppression found by the audit: where it
// is, what it silences, and why — plus any hygiene issues (no reason,
// or an analyzer name the suite does not know, which means the
// suppression silences nothing and is stale or a typo).
type NolintSite struct {
	Pos    token.Position
	Names  []string // analyzers named; ["all"] for nolint:all
	Reason string
	Issues []string
}

// AuditNolints lists every nolint suppression in the loaded packages —
// file:line, the analyzers it names, its reason — and returns the
// sites together with the number of unhealthy ones.  The audit is the
// inventory `repolint -audit` prints so suppressions stay justified:
// each one is a hole in the invariant suite, and a hole nobody can
// explain (or that names a nonexistent analyzer) fails the gate.
func AuditNolints(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) (sites []NolintSite, bad int) {
	known := make(map[string]bool)
	for _, a := range analyzers {
		known[a.Name] = true
	}
	seen := make(map[string]bool) // test-augmented packages reparse files
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if _, _, _, ok := parseNolint(c.Text); !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column)
					if seen[key] {
						continue
					}
					seen[key] = true
					names, reason := splitNolint(c.Text)
					site := NolintSite{Pos: pos, Names: names, Reason: reason}
					if reason == "" {
						site.Issues = append(site.Issues, "no reason given")
					}
					for _, n := range names {
						if n != "all" && !known[n] {
							site.Issues = append(site.Issues,
								fmt.Sprintf("unknown analyzer %q", n))
						}
					}
					sites = append(sites, site)
				}
			}
		}
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].Pos.Filename != sites[j].Pos.Filename {
			return sites[i].Pos.Filename < sites[j].Pos.Filename
		}
		return sites[i].Pos.Line < sites[j].Pos.Line
	})
	for _, s := range sites {
		if len(s.Issues) > 0 {
			bad++
		}
	}
	return sites, bad
}

// FormatAudit renders the audit listing, one site per line, with
// hygiene issues flagged inline.
func FormatAudit(w io.Writer, sites []NolintSite) {
	for _, s := range sites {
		line := fmt.Sprintf("%s:%d: %s", s.Pos.Filename, s.Pos.Line, strings.Join(s.Names, ","))
		if s.Reason != "" {
			line += " — " + s.Reason
		}
		for _, issue := range s.Issues {
			line += fmt.Sprintf("  [AUDIT: %s]", issue)
		}
		fmt.Fprintln(w, line)
	}
}

// splitNolint splits a nolint comment into its analyzer names and its
// free-text reason (parseNolint validates; this extracts the text).
func splitNolint(text string) (names []string, reason string) {
	const marker = "//nolint:"
	idx := strings.Index(text, marker)
	if idx < 0 {
		return nil, ""
	}
	rest := text[idx+len(marker):]
	list := rest
	if sp := strings.IndexAny(rest, " \t"); sp >= 0 {
		list, reason = rest[:sp], strings.TrimSpace(rest[sp+1:])
	}
	for _, n := range strings.Split(list, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, reason
}
