// Package lintkit is the repo's self-contained static-analysis
// framework: the subset of golang.org/x/tools/go/analysis that the
// repolint suite needs, rebuilt on the standard library's go/ast,
// go/parser, go/types and go/importer so the module keeps its
// zero-dependency contract.  The API deliberately mirrors go/analysis
// (Analyzer, Pass, Diagnostic, analysistest-style `// want` testdata via
// the sibling testkit package), so a future migration to the upstream
// framework is a mechanical import swap.
//
// Three pieces live here:
//
//   - the analyzer contract (this file): Analyzer, Pass, Diagnostic,
//     plus the shared //repro: directive and //nolint: suppression
//     parsing every analyzer and the runner agree on;
//   - the loader (load.go): type-checked packages from `go list -e
//     -export -deps -json` patterns, importing dependencies through
//     their compiler export data — no network, no out-of-module code;
//   - the runner (run.go): runs analyzers over loaded packages,
//     applies nolint suppressions, checks suppression hygiene, and
//     formats diagnostics; vet.go adapts the same pipeline to the
//     `go vet -vettool` unitchecker protocol.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //nolint:<name> suppressions.  Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description `repolint -list` prints.
	Doc string
	// Run applies the analyzer to one package and reports findings
	// through pass.Reportf.  A non-nil error aborts the whole run —
	// reserve it for internal failures, not findings.
	Run func(pass *Pass) error
	// FactTypes lists one exemplar of each fact type the analyzer
	// exports or imports (pointer-to-struct values).  Required for the
	// gob codec that carries facts through the vetx files.
	FactTypes []Fact
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	facts  *FactStore
}

// ExportObjectFact attaches f to obj for analyzers of downstream
// packages (and later functions of this one) to import.  obj should be
// a package-level object of the current package.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if p.facts != nil {
		p.facts.exportObject(obj, f)
	}
}

// ImportObjectFact copies the fact of f's concrete type attached to obj
// into f, reporting whether one exists.  obj may belong to any package
// analyzed earlier in the run (or whose vetx facts were supplied).
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	return p.facts != nil && p.facts.importObject(obj, f)
}

// ExportPackageFact attaches f to the current package.
func (p *Pass) ExportPackageFact(f Fact) {
	if p.facts != nil && p.Pkg != nil {
		p.facts.exportPackage(p.Pkg.Path(), f)
	}
}

// ImportPackageFact copies the package fact of f's concrete type for
// the package at path into f, reporting whether one exists.
func (p *Pass) ImportPackageFact(path string, f Fact) bool {
	return p.facts != nil && p.facts.importPackage(path, f)
}

// AllPackageFacts returns every visible package fact of example's
// concrete type, keyed by package path — the aggregation lockorder uses
// to assemble the whole-program acquisition graph.  The returned facts
// are shared; treat them as read-only.
func (p *Pass) AllPackageFacts(example Fact) map[string]Fact {
	if p.facts == nil {
		return nil
	}
	return p.facts.allPackageFacts(example)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned in the shared FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// ----------------------------------------------------------------------
// //repro: directives
// ----------------------------------------------------------------------

// HasDirective reports whether the comment group (typically a FuncDecl's
// Doc) contains the directive comment //repro:<name>.  Directive
// comments follow the Go toolchain's machine-readable form: no space
// after //, and anything after the name on the same line is free-text
// commentary.
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	prefix := "//repro:" + name
	for _, c := range doc.List {
		if c.Text == prefix || strings.HasPrefix(c.Text, prefix+" ") {
			return true
		}
	}
	return false
}

// ----------------------------------------------------------------------
// //nolint: suppressions
// ----------------------------------------------------------------------

// A nolintComment is one parsed //nolint:name1,name2 reason comment.
type nolintComment struct {
	pos       token.Position // of the comment itself
	names     map[string]bool
	all       bool // //nolint:all
	hasReason bool
	// funcSpan, when set, extends the suppression to the whole span of
	// the function declaration the comment documents.
	spanStart, spanEnd int // line range covered (inclusive)
}

// parseNolint parses a single comment's text, returning nil when it is
// not a nolint comment.
func parseNolint(text string) (names map[string]bool, all, hasReason, ok bool) {
	const marker = "//nolint:"
	if !strings.HasPrefix(text, marker) {
		return nil, false, false, false
	}
	rest := text[len(marker):]
	// The analyzer list ends at the first space; everything after it is
	// the mandatory human-readable justification.
	list, reason, _ := strings.Cut(rest, " ")
	names = make(map[string]bool)
	for _, n := range strings.Split(list, ",") {
		n = strings.TrimSpace(n)
		if n == "all" {
			all = true
		} else if n != "" {
			names[n] = true
		}
	}
	return names, all, strings.TrimSpace(reason) != "", true
}

// suppressions indexes a file's nolint comments for the runner.
type suppressions struct {
	comments []nolintComment
}

// collectSuppressions parses every nolint comment in the file.  A
// trailing comment suppresses findings on its own line; a comment alone
// on its line additionally covers the next line, so a //nolint above a
// multi-line statement reaches the finding reported at the statement's
// first token; a comment that is part of a declaration's doc group
// suppresses findings in the whole declaration.
func collectSuppressions(fset *token.FileSet, f *ast.File) suppressions {
	var sup suppressions
	// Doc-comment suppressions cover their declaration's span.
	docSpan := make(map[*ast.Comment][2]int)
	for _, d := range f.Decls {
		var doc *ast.CommentGroup
		switch d := d.(type) {
		case *ast.FuncDecl:
			doc = d.Doc
		case *ast.GenDecl:
			doc = d.Doc
		}
		if doc == nil {
			continue
		}
		start := fset.Position(d.Pos()).Line
		end := fset.Position(d.End()).Line
		for _, c := range doc.List {
			docSpan[c] = [2]int{start, end}
		}
	}
	// Lines that start a code token, to tell a trailing comment (code
	// before it on the line — covers that line only) from an own-line
	// comment (covers the statement starting below it too).
	codeLines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return true
		}
		codeLines[fset.Position(n.Pos()).Line] = true
		if end := n.End(); end.IsValid() {
			codeLines[fset.Position(end-1).Line] = true
		}
		return true
	})
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			names, all, hasReason, ok := parseNolint(c.Text)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			nc := nolintComment{
				pos: pos, names: names, all: all, hasReason: hasReason,
				spanStart: pos.Line, spanEnd: pos.Line,
			}
			if span, isDoc := docSpan[c]; isDoc {
				nc.spanStart, nc.spanEnd = span[0], span[1]
			} else if !codeLines[pos.Line] {
				nc.spanEnd = pos.Line + 1
			}
			sup.comments = append(sup.comments, nc)
		}
	}
	return sup
}

// suppresses reports whether a diagnostic from the named analyzer at the
// given line is covered.
func (s suppressions) suppresses(analyzer string, line int) bool {
	for _, c := range s.comments {
		if line < c.spanStart || line > c.spanEnd {
			continue
		}
		if c.all || c.names[analyzer] {
			return true
		}
	}
	return false
}

// hygiene returns diagnostics for malformed suppressions: every
// //nolint must carry a justification after the analyzer list.  The
// findings carry the pseudo-analyzer name "nolint" (suppressible only
// by fixing the comment).
func (s suppressions) hygiene(file *token.File) []Diagnostic {
	var ds []Diagnostic
	for _, c := range s.comments {
		if !c.hasReason {
			ds = append(ds, Diagnostic{
				Pos:      file.LineStart(c.pos.Line),
				Analyzer: "nolint",
				Message:  "//nolint needs a justification: write //nolint:<analyzers> <reason>",
			})
		}
	}
	return ds
}

// sortDiagnostics orders findings by file position, then analyzer.
func sortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return ds[i].Analyzer < ds[j].Analyzer
	})
}
