// Package testkit is the suite's analysistest analogue: it loads a
// testdata package, runs one analyzer over it, and checks the reported
// diagnostics against `// want` expectations written next to the code
// that should trigger them:
//
//	gov.Charge(n) // want `has no matching Release`
//
// The backquoted (or double-quoted) string is an anchored-nowhere
// regexp matched against the diagnostic message; several expectations
// on one line mean several diagnostics on that line.  Diagnostics with
// no matching expectation, and expectations with no matching
// diagnostic, both fail the test.
package testkit

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/lintkit"
)

// Run loads the package tree rooted at dir (typically
// filepath.Join("testdata", "src", "a")) and applies the analyzer,
// comparing findings with the packages' // want comments.  Loading
// "./..." rather than "." lets a corpus keep helper subpackages (e.g.
// testdata/src/a/helper) whose exported facts the root package's cases
// depend on.
func Run(t *testing.T, dir string, a *lintkit.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("testkit: %v", err)
	}
	pkgs, fset, err := lintkit.Load(abs, []string{"./..."}, false)
	if err != nil {
		t.Fatalf("testkit: loading %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("testkit: no packages under %s", dir)
	}
	ds, err := lintkit.Run(fset, pkgs, []*lintkit.Analyzer{a})
	if err != nil {
		t.Fatalf("testkit: running %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, pkgs)
	matched := make([]bool, len(wants))
	for _, d := range ds {
		pos := fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s: %s (%s)", pos, d.Message, d.Analyzer)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants parses the `// want` expectations out of every comment in
// the loaded packages.
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*lintkit.Package) []want {
	t.Helper()
	var wants []want
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					wants = append(wants, parseWant(t, fset, c)...)
				}
			}
		}
	}
	return wants
}

// parseWant extracts zero or more expectations from one comment.
func parseWant(t *testing.T, fset *token.FileSet, c *ast.Comment) []want {
	t.Helper()
	text, ok := strings.CutPrefix(c.Text, "// want ")
	if !ok {
		return nil
	}
	pos := fset.Position(c.Pos())
	var wants []want
	rest := strings.TrimSpace(text)
	for rest != "" {
		var pat string
		var err error
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated ` in want comment", pos)
			}
			pat, rest = rest[1:1+end], rest[2+end:]
		case '"':
			// strconv.Unquote needs the whole quoted token; find its end by
			// scanning for an unescaped closing quote.
			end := 1
			for end < len(rest) {
				if rest[end] == '\\' {
					end += 2
					continue
				}
				if rest[end] == '"' {
					break
				}
				end++
			}
			if end >= len(rest) {
				t.Fatalf("%s: unterminated \" in want comment", pos)
			}
			pat, err = strconv.Unquote(rest[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want pattern: %v", pos, err)
			}
			rest = rest[end+1:]
		default:
			t.Fatalf("%s: want patterns must be `backquoted` or \"quoted\" (got %q)", pos, rest)
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("%s: want pattern %q: %v", pos, pat, err)
		}
		wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
		rest = strings.TrimSpace(rest)
	}
	return wants
}
