// Package dist stubs the lease table for the lockorder corpus;
// LeaseTable.Mu ranks second in the canonical order.
package dist

import "sync"

type LeaseTable struct {
	Mu sync.Mutex
}
