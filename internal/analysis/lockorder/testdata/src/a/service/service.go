// Package service stubs the serving-stack registry for the lockorder
// corpus; its import path ends in "service" so the canonical-order
// matcher ranks Registry.Mu first.
package service

import "sync"

type Registry struct {
	Mu sync.Mutex
	n  int
}

// LockedLen acquires the registry lock; callers importing this helper
// inherit the acquisition through the exported LocksFact.
func LockedLen(r *Registry) int {
	r.Mu.Lock()
	defer r.Mu.Unlock()
	return r.n
}
