// Package a is lockorder analyzer testdata: acquisition-order cycles
// and inversions of the canonical registry ≺ lease ≺ governor order.
package a

import (
	"sync"

	"repro/internal/analysis/lockorder/testdata/src/a/dist"
	"repro/internal/analysis/lockorder/testdata/src/a/membudget"
	"repro/internal/analysis/lockorder/testdata/src/a/service"
)

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

type C struct{ mu sync.Mutex }

// lockAB and lockBA form a two-class cycle; each contributes one edge
// and each edge sees the other close the loop.
func lockAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock order cycle`
	defer b.mu.Unlock()
}

func lockBA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `lock order cycle`
	defer a.mu.Unlock()
}

// okOrder: A before C everywhere — including through a local helper —
// is a consistent order, not a cycle.
func okOrder(a *A, c *C) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockC(c)
}

func lockC(c *C) {
	c.mu.Lock()
	c.mu.Unlock()
}

// okCanonical: registry then lease follows the documented order.
func okCanonical(r *service.Registry, tab *dist.LeaseTable) {
	r.Mu.Lock()
	tab.Mu.Lock()
	tab.Mu.Unlock()
	r.Mu.Unlock()
}

// badInversion: taking the registry lock under the governor lock is
// against the canonical order even without a closing cycle.
func badInversion(g *membudget.Gov, r *service.Registry) {
	g.Mu.Lock()
	defer g.Mu.Unlock()
	r.Mu.Lock() // want `lock order inversion`
	r.Mu.Unlock()
}

// badInversionViaHelper: the same inversion hidden behind an imported
// helper — the edge arrives through service.LockedLen's LocksFact.
func badInversionViaHelper(g *membudget.Gov, r *service.Registry) int {
	g.Mu.Lock()
	defer g.Mu.Unlock()
	return service.LockedLen(r) // want `lock order inversion`
}

// suppressedInversion: the same edge again; per-site suppression must
// silence exactly this occurrence.
func suppressedInversion(g *membudget.Gov, r *service.Registry) {
	g.Mu.Lock()
	defer g.Mu.Unlock()
	r.Mu.Lock() //nolint:lockorder corpus case: site-level suppression of a known inversion
	r.Mu.Unlock()
}

// localOnly: a function-local mutex has no class and no obligations.
func localOnly(a *A) {
	var mu sync.Mutex
	a.mu.Lock()
	mu.Lock()
	mu.Unlock()
	a.mu.Unlock()
}
