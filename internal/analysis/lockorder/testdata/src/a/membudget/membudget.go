// Package membudget stubs the governor for the lockorder corpus; any
// class under this package ranks last in the canonical order.
package membudget

import "sync"

type Gov struct {
	Mu sync.Mutex
}
