// Package lockorder implements the repolint analyzer that builds the
// program's mutex-acquisition order graph and reports cycles and
// canonical-order inversions.
//
// A lock class is a mutex with a stable cross-package name: a struct
// field ("pkg.Type.field") or a package-level variable ("pkg.var");
// function-local mutexes have no class and no ordering obligations.
// Within each function the analyzer walks the body in source order
// tracking the held set: acquiring B while holding A records the edge
// A→B.  Calls are followed — into same-package declarations via their
// computed summaries, into other packages via the LocksFact each
// package exports for every function that may acquire a class — so an
// edge through a helper is the same edge as an inline one.  Each
// package also exports its local edges as a package fact
// (LockEdgesFact); every pass unions all visible edge facts with its
// own and reports a cycle at each local edge that participates in one,
// which places the report in the package that contributed the edge.
//
// Independent of cycles, the suite documents a canonical total order
// for the serving stack's well-known classes:
//
//	registry (service.Registry.mu) ≺ lease (dist.LeaseTable.mu) ≺ governor (membudget.*)
//
// and any edge against that order is an inversion finding even before a
// second thread closes the cycle.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/lintkit"
)

// LocksFact records the lock classes a function may acquire,
// transitively through same-package callees.
type LocksFact struct{ Classes []string }

func (*LocksFact) AFact() {}

// LockEdge is one acquired-while-holding pair.
type LockEdge struct{ From, To string }

// LockEdgesFact is the package fact carrying every edge a package's
// functions contribute to the global acquisition graph.
type LockEdgesFact struct{ Edges []LockEdge }

func (*LockEdgesFact) AFact() {}

// Analyzer is the lockorder entry point.
var Analyzer = &lintkit.Analyzer{
	Name: "lockorder",
	Doc: "build the cross-package mutex acquisition-order graph; report cycles and " +
		"inversions of the canonical registry≺lease≺governor order",
	Run:       run,
	FactTypes: []lintkit.Fact{(*LocksFact)(nil), (*LockEdgesFact)(nil)},
}

func run(pass *lintkit.Pass) error {
	locals := lintkit.LocalFuncs(pass.Files, pass.TypesInfo)

	// Pass 1: per-function direct acquisitions (own Lock calls plus
	// imported facts of cross-package callees), then a fixed point
	// propagating through same-package calls.
	acquires := make(map[*types.Func]map[string]bool)
	calls := make(map[*types.Func][]*types.Func) // same-package call edges
	for fn, decl := range locals {
		set := make(map[string]bool)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if class, op := lockOp(pass.TypesInfo, call); class != "" && (op == "Lock" || op == "RLock") {
				set[class] = true
				return true
			}
			callee := lintkit.CalleeFunc(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			if _, local := locals[callee]; local {
				calls[fn] = append(calls[fn], callee)
			} else {
				var f LocksFact
				if pass.ImportObjectFact(callee, &f) {
					for _, c := range f.Classes {
						set[c] = true
					}
				}
			}
			return true
		})
		acquires[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			for _, callee := range callees {
				for c := range acquires[callee] {
					if !acquires[fn][c] {
						acquires[fn][c] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 2: held-set walk collecting edges with positions.
	type edgeSite struct {
		edge LockEdge
		pos  token.Pos
	}
	var sites []edgeSite
	addEdge := func(from, to string, pos token.Pos) {
		if from != to {
			sites = append(sites, edgeSite{LockEdge{from, to}, pos})
		}
	}
	// Walk declarations in file order so every site reports, and always
	// in the same sequence.
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	for _, decl := range decls {
		deferred := make(map[ast.Node]bool)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				deferred[d.Call] = true
			}
			return true
		})
		var held []string
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if class, op := lockOp(pass.TypesInfo, call); class != "" {
				switch op {
				case "Lock", "RLock":
					if !deferred[ast.Node(call)] {
						for _, h := range held {
							addEdge(h, class, call.Pos())
						}
						held = append(held, class)
					}
				case "Unlock", "RUnlock":
					// Deferred unlocks keep the class held to the end of
					// the source-order walk, which is what they mean.
					if !deferred[ast.Node(call)] {
						for i := len(held) - 1; i >= 0; i-- {
							if held[i] == class {
								held = append(held[:i], held[i+1:]...)
								break
							}
						}
					}
				}
				return true
			}
			if len(held) == 0 {
				return true
			}
			callee := lintkit.CalleeFunc(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			var classes []string
			if set, local := acquires[callee]; local || len(set) > 0 {
				for c := range set {
					classes = append(classes, c)
				}
			} else {
				var f LocksFact
				if pass.ImportObjectFact(callee, &f) {
					classes = f.Classes
				}
			}
			sort.Strings(classes)
			for _, c := range classes {
				for _, h := range held {
					addEdge(h, c, call.Pos())
				}
			}
			return true
		})
	}

	// Export facts: function summaries and the package's edges.
	for fn, set := range acquires {
		if len(set) == 0 {
			continue
		}
		var classes []string
		for c := range set {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		pass.ExportObjectFact(fn, &LocksFact{Classes: classes})
	}
	dedup := make(map[LockEdge]bool, len(sites))
	pkgEdges := make([]LockEdge, 0, len(sites))
	for _, s := range sites {
		if !dedup[s.edge] {
			dedup[s.edge] = true
			pkgEdges = append(pkgEdges, s.edge)
		}
	}
	sort.Slice(pkgEdges, func(i, j int) bool {
		if pkgEdges[i].From != pkgEdges[j].From {
			return pkgEdges[i].From < pkgEdges[j].From
		}
		return pkgEdges[i].To < pkgEdges[j].To
	})
	if len(pkgEdges) > 0 {
		pass.ExportPackageFact(&LockEdgesFact{Edges: pkgEdges})
	}

	// Pass 3: union the visible graph and report.
	graph := make(map[string][]string)
	add := func(e LockEdge) { graph[e.From] = append(graph[e.From], e.To) }
	for _, f := range pass.AllPackageFacts((*LockEdgesFact)(nil)) {
		for _, e := range f.(*LockEdgesFact).Edges {
			add(e)
		}
	}
	for _, e := range pkgEdges {
		add(e)
	}
	for _, s := range sites {
		if path := pathBetween(graph, s.edge.To, s.edge.From); path != nil {
			cycle := append([]string{s.edge.From}, path...)
			pass.Reportf(s.pos, "lock order cycle: %s", strings.Join(cycle, " → "))
		}
		fr, okF := canonicalRank(s.edge.From)
		tr, okT := canonicalRank(s.edge.To)
		if okF && okT && fr > tr {
			pass.Reportf(s.pos, "lock order inversion: %s acquired while holding %s; "+
				"the canonical order is registry ≺ lease ≺ governor", s.edge.To, s.edge.From)
		}
	}
	return nil
}

// lockOp recognizes a sync.Mutex/RWMutex Lock/RLock/Unlock/RUnlock call
// and names its lock class ("" when the mutex has no stable name).
func lockOp(info *types.Info, call *ast.CallExpr) (class, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	tv, ok := info.Types[sel.X]
	if !ok || !isMutex(tv.Type) {
		return "", ""
	}
	return classify(info, sel.X), sel.Sel.Name
}

// classify names the mutex expression's lock class.
func classify(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		// recv.field: class is the field of the receiver's named type.
		tv, ok := info.Types[e.X]
		if !ok {
			return ""
		}
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && !v.IsField() &&
			v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return ""
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex (or pointer).
func isMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// pathBetween returns a path from → to in the graph (nil when
// unreachable), used to render the cycle through an edge.
func pathBetween(graph map[string][]string, from, to string) []string {
	visited := map[string]bool{from: true}
	type node struct {
		name string
		path []string
	}
	queue := []node{{from, []string{from}}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.name == to {
			return n.path
		}
		next := append([]string(nil), graph[n.name]...)
		sort.Strings(next)
		for _, m := range next {
			if !visited[m] {
				visited[m] = true
				queue = append(queue, node{m, append(append([]string(nil), n.path...), m)})
			}
		}
	}
	return nil
}

// canonicalRank places the serving stack's well-known classes in the
// documented total order.  Classes are matched structurally (package
// basename + type) so the corpus can exercise the rule.
func canonicalRank(class string) (int, bool) {
	switch {
	case strings.Contains(class, "service.Registry."):
		return 0, true
	case strings.Contains(class, "dist.LeaseTable."):
		return 1, true
	case strings.Contains(class, "membudget."):
		return 2, true
	}
	return 0, false
}
