package lockorder_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/lintkit/testkit"
	"repro/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	testkit.Run(t, filepath.Join("testdata", "src", "a"), lockorder.Analyzer)
}
