// Package leasestate implements the repolint analyzer that tracks a
// shard lease from LeaseTable.Acquire to its settlement *across*
// function and package boundaries — the interprocedural upgrade of
// budgetpair's per-function lease spec.  Every lease a function
// acquires must show one of four evidences:
//
//   - local settlement: a Complete/Release call on a LeaseTable whose
//     argument is rooted at the lease variable, or an Expire sweep on
//     the same table the lease came from (expiry settles by deadline,
//     not identity);
//   - delegated settlement: the lease is passed to a function that
//     settles that parameter — proven by the SettlesFact the callee's
//     package exported (same-package callees are summarized in a
//     pre-pass);
//   - transfer: the lease (or its address) is returned, which exports a
//     TransfersFact so callers inherit the obligation;
//   - field escape: the lease is stored into a struct field, and some
//     function in the package settles through that same field (the
//     coordinator parks a lease in workerState.lease and handleDeath
//     releases ws.lease.ID).
//
// A lease with none of these is a finding.  The comma-ok acquire shape
// (`l, ok := t.Acquire(...)`; `if !ok`) owes nothing on the !ok path by
// construction — the analyzer checks evidence for the acquired value,
// not paths, so the exemption is implicit.
package leasestate

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/lintkit"
)

// SettlesFact marks a function that settles the lease passed as
// parameter Param (0-based, receiver excluded).
type SettlesFact struct{ Param int }

func (*SettlesFact) AFact() {}

// TransfersFact marks a function that returns an acquired lease,
// transferring the settlement obligation to its callers.
type TransfersFact struct{}

func (*TransfersFact) AFact() {}

// Analyzer is the leasestate entry point.
var Analyzer = &lintkit.Analyzer{
	Name: "leasestate",
	Doc: "track LeaseTable.Acquire results through helpers, returns and struct fields; " +
		"every lease must reach exactly one Complete/Release/Expire",
	Run:       run,
	FactTypes: []lintkit.Fact{(*SettlesFact)(nil), (*TransfersFact)(nil)},
}

func run(pass *lintkit.Pass) error {
	locals := lintkit.LocalFuncs(pass.Files, pass.TypesInfo)

	// Pre-pass: summarize which local functions settle a lease-typed
	// parameter, so delegation to a same-package helper resolves without
	// order sensitivity, and export the summaries for importers.
	settles := make(map[*types.Func]int) // fn -> settled param index
	for fn, decl := range locals {
		if i, ok := settlesParam(pass.TypesInfo, fn, decl); ok {
			settles[fn] = i
			pass.ExportObjectFact(fn, &SettlesFact{Param: i})
		}
	}

	// Field settlements: (type, field) pairs some function settles
	// through (c.table.Release(ws.lease.ID, ...)).
	fieldSettled := make(map[[2]string]bool)
	for _, decl := range locals {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSettleCall(pass.TypesInfo, call) || len(call.Args) == 0 {
				return true
			}
			if tf, ok := fieldOfArg(pass.TypesInfo, call.Args[0]); ok {
				fieldSettled[tf] = true
			}
			return true
		})
	}

	for fn, decl := range locals {
		// The table's own methods are the settlement mechanism.
		if recv := recvNamed(fn); recv == "LeaseTable" {
			continue
		}
		checkFunc(pass, locals, settles, fieldSettled, fn, decl)
	}
	return nil
}

// checkFunc verifies every Acquire in one declaration (closures
// included — settlement anywhere in the same declaration counts).
func checkFunc(pass *lintkit.Pass, locals map[*types.Func]*ast.FuncDecl, settles map[*types.Func]int,
	fieldSettled map[[2]string]bool, fn *types.Func, decl *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		src := "Acquire"
		var table types.Object
		if isAcquireCall(info, call) {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if root := lintkit.RootIdent(sel.X); root != nil {
					table = info.ObjectOf(root)
				}
			}
		} else {
			// A call into a lease-transferring function hands this caller
			// the settlement obligation, exactly like a direct Acquire.
			// Same-package transfers are already checked at their return
			// site, so only imported TransfersFacts create obligations.
			callee := lintkit.CalleeFunc(info, call)
			if callee == nil {
				return true
			}
			if _, local := locals[callee]; local {
				return true
			}
			var tf TransfersFact
			if !pass.ImportObjectFact(callee, &tf) {
				return true
			}
			src = callee.Name()
		}
		if len(as.Lhs) == 0 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			pass.Reportf(call.Pos(), "lease from %s is discarded; settle it with Complete/Release/Expire", src)
			return true
		}
		lease := info.ObjectOf(id)
		if lease == nil {
			return true
		}
		if !leaseAccounted(pass, locals, settles, fieldSettled, decl, lease, table, fn) {
			pass.Reportf(call.Pos(), "lease %s from %s is neither settled (Complete/Release/Expire), "+
				"passed to a settling function, returned, nor parked in a settled field", id.Name, src)
		}
		return true
	})
}

// leaseAccounted looks for any settlement/transfer evidence for the
// lease object inside the declaration.
func leaseAccounted(pass *lintkit.Pass, locals map[*types.Func]*ast.FuncDecl, settles map[*types.Func]int,
	fieldSettled map[[2]string]bool, decl *ast.FuncDecl, lease, table types.Object, fn *types.Func) bool {
	info := pass.TypesInfo
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// Local settlement: settle call rooted at the lease.
			if isSettleCall(info, n) && len(n.Args) > 0 && rootedAt(info, n.Args[0], lease) {
				found = true
				return false
			}
			// Expiry sweep on the same table: settles by deadline.
			if table != nil && isExpireCall(info, n) {
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && rootedAt(info, sel.X, table) {
					found = true
					return false
				}
			}
			// Delegated settlement: lease passed in a settled position.
			callee := lintkit.CalleeFunc(info, n)
			if callee == nil || callee == fn {
				return true
			}
			for i, arg := range n.Args {
				if !rootedAt(info, arg, lease) {
					continue
				}
				if _, local := locals[callee]; local {
					if pi, ok := settles[callee]; ok && pi == i {
						found = true
						return false
					}
				} else {
					var f SettlesFact
					if pass.ImportObjectFact(callee, &f) && f.Param == i {
						found = true
						return false
					}
				}
			}
		case *ast.ReturnStmt:
			// Transfer: the lease leaves through a return value.
			for _, res := range n.Results {
				if rootedAt(info, res, lease) {
					pass.ExportObjectFact(fn, &TransfersFact{})
					found = true
					return false
				}
			}
		case *ast.AssignStmt:
			// Field escape: x.f = l (or &l) with (type of x, f) settled
			// somewhere in the package.
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) && len(n.Rhs) != 1 {
					break
				}
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if !rootedAt(info, rhs, lease) {
					continue
				}
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if tf, ok := fieldOf(info, sel); ok && fieldSettled[tf] {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// settlesParam reports whether the declaration settles a lease-typed
// parameter, and which one.
func settlesParam(info *types.Info, fn *types.Func, decl *ast.FuncDecl) (int, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || decl.Body == nil {
		return 0, false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if !isLeaseType(p.Type()) {
			continue
		}
		settled := false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSettleCall(info, call) || len(call.Args) == 0 {
				return true
			}
			if rootedAt(info, call.Args[0], p) {
				settled = true
				return false
			}
			return true
		})
		if settled {
			return i, true
		}
	}
	return 0, false
}

// isAcquireCall matches LeaseTable.Acquire(worker, now) nominally, so
// testdata can stub the table without importing internal/dist.
func isAcquireCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Acquire" || len(call.Args) != 2 {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && isNamed(tv.Type, "LeaseTable")
}

// isExpireCall matches Expire on a LeaseTable.
func isExpireCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Expire" {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && isNamed(tv.Type, "LeaseTable")
}

// isSettleCall matches Complete/Release/Expire on a LeaseTable.
func isSettleCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Complete", "Release", "Expire":
	default:
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && isNamed(tv.Type, "LeaseTable")
}

// rootedAt reports whether e's leftmost identifier resolves to obj
// (l, &l, l.ID, ws.lease.ID when obj is the root var...).
func rootedAt(info *types.Info, e ast.Expr, obj types.Object) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = u.X
	}
	root := lintkit.RootIdent(e)
	return root != nil && info.ObjectOf(root) == obj
}

// fieldOf names a selector's (owner type, field) pair.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) ([2]string, bool) {
	tv, ok := info.Types[sel.X]
	if !ok {
		return [2]string{}, false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return [2]string{}, false
	}
	return [2]string{named.Obj().Name(), sel.Sel.Name}, true
}

// fieldOfArg digs the (type, field) pair out of a settlement argument
// like ws.lease.ID — the selector one level above the leaf.
func fieldOfArg(info *types.Info, arg ast.Expr) ([2]string, bool) {
	e := ast.Unparen(arg)
	for {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return [2]string{}, false
		}
		if isLeaseType(exprType(info, sel)) {
			return fieldOf(info, sel)
		}
		e = ast.Unparen(sel.X)
	}
}

func exprType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isLeaseType reports whether t (behind pointers) is a named type
// called Lease.
func isLeaseType(t types.Type) bool {
	return isNamed(t, "Lease")
}

// isNamed reports whether t (behind pointers) is the named type name.
func isNamed(t types.Type, name string) bool {
	for {
		switch v := t.(type) {
		case *types.Pointer:
			t = v.Elem()
		case *types.Named:
			return v.Obj().Name() == name
		default:
			return false
		}
	}
}

// recvNamed returns fn's receiver type name ("" for plain functions).
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
