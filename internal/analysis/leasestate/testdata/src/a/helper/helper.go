// Package helper stubs the lease table for the leasestate corpus and
// exports the two fact shapes: Settle settles its lease parameter
// (SettlesFact), Take returns an acquired lease (TransfersFact).
package helper

import "time"

type Lease struct {
	ID    int
	Shard int
}

type LeaseTable struct{}

func (t *LeaseTable) Acquire(w int, now time.Time) (Lease, bool)        { return Lease{}, false }
func (t *LeaseTable) Complete(id int, now time.Time) (int, int)         { return 0, 0 }
func (t *LeaseTable) Release(id int, reason string, now time.Time) bool { return false }
func (t *LeaseTable) Expire(now time.Time) []Lease                      { return nil }

// Settle settles the lease passed as its second parameter.
func Settle(t *LeaseTable, l Lease, now time.Time) {
	t.Release(l.ID, "settled", now)
}

// Take acquires a lease and hands the settlement obligation to its
// caller through the return value.
func Take(t *LeaseTable, now time.Time) (Lease, bool) {
	l, ok := t.Acquire(1, now)
	return l, ok
}
