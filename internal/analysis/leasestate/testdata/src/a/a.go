// Package a is leasestate analyzer testdata: every acquired lease must
// show a settlement, delegation, transfer, or settled-field escape.
package a

import (
	"time"

	"repro/internal/analysis/leasestate/testdata/src/a/helper"
)

// okLocal: settled directly on the table it came from.
func okLocal(t *helper.LeaseTable, now time.Time) {
	l, ok := t.Acquire(1, now)
	if !ok {
		return
	}
	t.Release(l.ID, "done", now)
}

// okSweep: an Expire sweep on the same table settles by deadline.
func okSweep(t *helper.LeaseTable, now time.Time) {
	l, ok := t.Acquire(1, now)
	if ok {
		record(l.Shard)
	}
	t.Expire(now.Add(time.Second))
}

// okDelegatedLocal: handed to a same-package helper that settles it.
func okDelegatedLocal(t *helper.LeaseTable, now time.Time) {
	l, ok := t.Acquire(1, now)
	if !ok {
		return
	}
	finish(t, l, now)
}

func finish(t *helper.LeaseTable, l helper.Lease, now time.Time) {
	t.Complete(l.ID, now)
}

// okDelegatedCross: handed to an imported helper; the evidence is the
// SettlesFact helper's package exported.
func okDelegatedCross(t *helper.LeaseTable, now time.Time) {
	l, ok := t.Acquire(1, now)
	if !ok {
		return
	}
	helper.Settle(t, l, now)
}

// okReturned: returning the lease transfers the obligation upward.
func okReturned(t *helper.LeaseTable, now time.Time) (helper.Lease, bool) {
	l, ok := t.Acquire(1, now)
	return l, ok
}

// okField + reap: the coordinator pattern — the lease parks in a field
// that another function in the package settles through.
type workerState struct{ lease helper.Lease }

type coord struct {
	table *helper.LeaseTable
	ws    *workerState
}

func (c *coord) okField(now time.Time) {
	l, ok := c.table.Acquire(1, now)
	if !ok {
		return
	}
	c.ws.lease = l
}

func (c *coord) reap(now time.Time) {
	c.table.Release(c.ws.lease.ID, "worker dead", now)
}

// badUnsettled: used but never settled.
func badUnsettled(t *helper.LeaseTable, now time.Time) {
	l, ok := t.Acquire(1, now) // want `neither settled`
	if ok {
		record(l.Shard)
	}
}

// badDiscard: the blank identifier is never an evidence.
func badDiscard(t *helper.LeaseTable, now time.Time) {
	_, _ = t.Acquire(1, now) // want `lease from Acquire is discarded`
}

// badFieldNoSettle: parked in a field no function ever settles through.
type parkedState struct{ slot helper.Lease }

func badFieldNoSettle(t *helper.LeaseTable, p *parkedState, now time.Time) {
	l, ok := t.Acquire(1, now) // want `neither settled`
	if !ok {
		return
	}
	p.slot = l
}

// badFromTransfer: helper.Take's TransfersFact makes this call an
// acquisition — the obligation arrives with the return value.
func badFromTransfer(t *helper.LeaseTable, now time.Time) {
	l, ok := helper.Take(t, now) // want `neither settled`
	if ok {
		record(l.Shard)
	}
}

// okFromTransfer: the transferred lease is settled here.
func okFromTransfer(t *helper.LeaseTable, now time.Time) {
	l, ok := helper.Take(t, now)
	if !ok {
		return
	}
	t.Release(l.ID, "done", now)
}

// suppressed: a documented parked lease.
func suppressed(t *helper.LeaseTable, now time.Time) {
	l, ok := t.Acquire(1, now) //nolint:leasestate corpus case: deliberately parked lease
	if ok {
		record(l.ID)
	}
}

func record(int) {}
