package leasestate_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/leasestate"
	"repro/internal/analysis/lintkit/testkit"
)

func TestLeasestate(t *testing.T) {
	testkit.Run(t, filepath.Join("testdata", "src", "a"), leasestate.Analyzer)
}
