package frozengraph_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/frozengraph"
	"repro/internal/analysis/lintkit/testkit"
)

func TestFrozengraph(t *testing.T) {
	testkit.Run(t, filepath.Join("testdata", "src", "a"), frozengraph.Analyzer)
}
