// Package frozengraph polices the graph layer's two lifecycle
// contracts from PR 3:
//
//   - a graph Builder is write-once: after b.Freeze() the builder may
//     not be mutated again (AddEdge, SetName, WithRepresentation).
//     Freeze hands the underlying storage to the immutable graph; a
//     late AddEdge corrupts a structure readers already share.
//   - Row(v) views are borrowed, not owned: the bitset.Reader a graph
//     backend returns may alias internal scratch that the next Row call
//     overwrites (the WAH row decoder reuses its decode buffer), so a
//     row obtained inside a loop must not be stored anywhere that
//     outlives the iteration — no assignment to a variable declared
//     outside the loop, no store through a selector or index, no
//     append, no composite-literal capture.  Re-binding with := inside
//     the loop is the supported idiom.
//
// Both checks are intraprocedural and name-based (a method named Freeze
// / Row on any named type) so testdata can stub the graph package.
package frozengraph

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/lintkit"
)

// Analyzer is the frozengraph check.
var Analyzer = &lintkit.Analyzer{
	Name: "frozengraph",
	Doc:  "forbid mutating a graph Builder after Freeze and retaining Row(v) views across loop iterations",
	Run:  run,
}

// mutators are the Builder methods that modify the underlying storage.
var mutators = map[string]bool{"AddEdge": true, "SetName": true, "WithRepresentation": true}

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFrozenMutation(pass, fd)
			checkRowRetention(pass, fd)
		}
	}
	return nil
}

// ----------------------------------------------------------------------
// Check A: no Builder mutation after Freeze
// ----------------------------------------------------------------------

// checkFrozenMutation flags mutator calls on an identifier lexically
// after a Freeze() call on the same identifier.  Lexical order is a
// sound approximation inside straight-line builder code, which is the
// only place the repo freezes; a false positive in genuinely branchy
// code is suppressible with //nolint:frozengraph.
func checkFrozenMutation(pass *lintkit.Pass, fd *ast.FuncDecl) {
	frozen := make(map[types.Object]token.Pos) // builder object -> Freeze position
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		// Rebinding the variable to a fresh builder thaws it.
		if assign, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range assign.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := exprObject(pass.TypesInfo, id); obj != nil {
						delete(frozen, obj)
					}
				}
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := exprObject(pass.TypesInfo, sel.X)
		if obj == nil {
			return true
		}
		switch {
		case sel.Sel.Name == "Freeze" && len(call.Args) == 0:
			if _, already := frozen[obj]; !already {
				frozen[obj] = call.Pos()
			}
		case mutators[sel.Sel.Name]:
			if fpos, isFrozen := frozen[obj]; isFrozen && call.Pos() > fpos {
				pass.Reportf(call.Pos(),
					"%s.%s after %s.Freeze() on line %d: the builder's storage now backs the frozen graph",
					lintkit.ExprString(sel.X), sel.Sel.Name, obj.Name(), pass.Fset.Position(fpos).Line)
			}
		}
		return true
	})
}

// exprObject resolves a plain identifier (possibly behind parens, * or
// &) to its object.  Call-rooted receivers (NewBuilder(3).Freeze())
// denote a fresh temporary each time and resolve to nil — they cannot
// be re-mutated, so tracking them would only alias unrelated chains
// through the constructor's function object.
func exprObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil {
				return obj
			}
			return info.Defs[v]
		default:
			return nil
		}
	}
}

// ----------------------------------------------------------------------
// Check B: no Row(v) retention across loop iterations
// ----------------------------------------------------------------------

// checkRowRetention walks every loop and flags Row(...) call results
// that are stored somewhere outliving the iteration.
func checkRowRetention(pass *lintkit.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		checkLoopBody(pass, body)
		return true // nested loops get their own (tighter) check
	})
}

func checkLoopBody(pass *lintkit.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			// Inner loop: its stores are judged against its own (tighter)
			// body by checkRowRetention's outer walk.
			return false
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !isRowCall(rhs) {
					continue
				}
				if i >= len(n.Lhs) && len(n.Lhs) != 1 {
					continue
				}
				lhs := n.Lhs[0]
				if len(n.Lhs) == len(n.Rhs) {
					lhs = n.Lhs[i]
				}
				if retains(info, n.Tok, lhs, body) {
					pass.Reportf(rhs.Pos(),
						"Row(...) view stored in %s outlives the loop iteration; rows are borrowed scratch — copy the bits or re-bind with := inside the loop",
						lintkit.ExprString(lhs))
				}
			}
		case *ast.CallExpr:
			if lintkit.CalleeName(n) == "append" {
				for _, arg := range n.Args[min(1, len(n.Args)):] {
					if isRowCall(arg) {
						pass.Reportf(arg.Pos(),
							"Row(...) view appended to a slice outlives the loop iteration; copy the bits instead")
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				e := elt
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if isRowCall(e) {
					pass.Reportf(e.Pos(),
						"Row(...) view captured in a composite literal outlives the loop iteration; copy the bits instead")
				}
			}
		}
		return true
	})
}

// retains reports whether assigning to lhs stores the row beyond the
// current iteration: any selector/index store, or a plain identifier
// declared outside the loop body (tok == "=" on an outer variable).
// A := define inside the loop is the blessed re-binding idiom.
func retains(info *types.Info, tok token.Token, lhs ast.Expr, body *ast.BlockStmt) bool {
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return false
		}
		if tok == token.DEFINE {
			return false
		}
		obj := info.Uses[l]
		if obj == nil {
			obj = info.Defs[l]
		}
		if obj == nil {
			return false
		}
		return !(obj.Pos() >= body.Pos() && obj.Pos() < body.End())
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	}
	return false
}

// isRowCall reports whether e is a call sel.Row(arg) — the graph
// Interface's row accessor shape.
func isRowCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Row" && len(call.Args) == 1
}
