// Package a is frozengraph analyzer testdata: a local Builder/graph
// stub matched nominally by method names (Freeze, Row, AddEdge, ...).
package a

type Builder struct{ frozen bool }

func (b *Builder) AddEdge(u, v int) {}
func (b *Builder) SetName(s string) {}
func (b *Builder) Freeze() *G       { b.frozen = true; return &G{} }

type G struct{}

func (g *G) Row(v int) *Row { return nil }

type Row struct{ bits []uint64 }

func badLateAddEdge() *G {
	b := &Builder{}
	b.AddEdge(1, 2)
	g := b.Freeze()
	b.AddEdge(2, 3) // want `after b.Freeze\(\) on line`
	return g
}

func badLateSetName() {
	b := &Builder{}
	b.SetName("before")
	_ = b.Freeze()
	b.SetName("after") // want `after b.Freeze\(\)`
}

func okDistinctBuilders() {
	b1 := &Builder{}
	b2 := &Builder{}
	_ = b1.Freeze()
	b2.AddEdge(1, 2) // a different builder; still live
	_ = b2.Freeze()
}

func badRetainAcrossIterations(g *G, n int) {
	var last *Row
	for v := 0; v < n; v++ {
		last = g.Row(v) // want `outlives the loop iteration`
	}
	_ = last
}

func okRebindEachIteration(g *G, n int) {
	for v := 0; v < n; v++ {
		r := g.Row(v)
		_ = r
	}
}

func badAppendRow(g *G, n int) []*Row {
	var rows []*Row
	for v := 0; v < n; v++ {
		rows = append(rows, g.Row(v)) // want `appended to a slice`
	}
	return rows
}

type holder struct{ r *Row }

func badStoreField(g *G, h *holder, n int) {
	for v := 0; v < n; v++ {
		h.r = g.Row(v) // want `outlives the loop iteration`
	}
}

type pair struct{ a *Row }

func badCompositeCapture(g *G, n int) {
	var p pair
	for v := 0; v < n; v++ {
		p = pair{a: g.Row(v)} // want `captured in a composite literal`
	}
	_ = p
}

func okRowOutsideLoop(g *G) *Row {
	r := g.Row(0) // no loop: callers own the copy decision
	return r
}
