// Package a is hotalloc analyzer testdata.
package a

type buf struct{ scratch []int }

type iface interface{ m() }

type impl struct{ v int }

func (impl) m() {}

type pimpl struct{ v int }

func (*pimpl) m() {}

func sink(v iface) {}

//repro:hotpath
func badMake(n int) []int {
	s := make([]int, n) // want `hot path allocates: make`
	return s
}

//repro:hotpath
func badLocalAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `append may grow a function-local slice`
	}
	return out
}

//repro:hotpath
func okSelfAppendField(b *buf, x int) {
	b.scratch = append(b.scratch, x)
}

//repro:hotpath
func okSelfAppendParam(dst []int, x int) []int {
	dst = append(dst, x)
	return dst
}

//repro:hotpath
func badClosure(n int) func() int {
	return func() int { return n } // want `function literal`
}

//repro:hotpath
func badLit(x, y int) {
	use(point{x, y}) // want `composite literal`
}

//repro:hotpath
func badConcat(a, b string) string {
	return a + b // want `string concatenation`
}

//repro:hotpath
func badReturnBox(v impl) iface {
	return v // want `return boxes`
}

//repro:hotpath
func okPointerReturn(p *pimpl) iface {
	return p
}

//repro:hotpath
func badArgBox(v impl) {
	sink(v) // want `boxes into interface parameter`
}

//repro:hotpath
func okPointerArg(p *pimpl) {
	sink(p)
}

//repro:hotpath
func badBytesConv(s string) []byte {
	return []byte(s) // want `copies its data`
}

//repro:hotpath
func okKernel(a, b []uint64) int {
	n := 0
	for i := range a {
		if a[i]&b[i] != 0 {
			n++
		}
	}
	return n
}

func use(p point) {}

type point struct{ x, y int }
