// Package hotalloc keeps the marked join kernels allocation-free: a
// function carrying the //repro:hotpath directive may not contain any
// construct that can allocate on the hot path.  It replaces the brittle
// runtime alloc-count pins as the first line of defense — the pins
// still run, but the analyzer points at the exact expression instead of
// a drifted counter.
//
// Flagged constructs (intraprocedural — mark the leaves, not drivers
// that call allocating helpers):
//
//   - make / new
//   - append, except amortized self-append (x = append(x, ...)) into a
//     buffer declared OUTSIDE the function (a parameter, receiver field
//     or captured scratch slice — the repo's reuse idiom); growing a
//     slice declared in the function body is an allocation
//   - composite literals and function literals (closure capture)
//   - go and defer statements
//   - string concatenation
//   - allocating conversions (to interface, string <-> []byte/[]rune)
//   - implicit interface boxing of a non-pointer-shaped value at a call
//     argument or return statement (pointers, maps, chans and funcs are
//     already reference-shaped and box for free)
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/lintkit"
)

// Analyzer is the hotalloc check.
var Analyzer = &lintkit.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocating constructs in functions marked //repro:hotpath",
	Run:  run,
}

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !lintkit.HasDirective(fd.Doc, "hotpath") {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *lintkit.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	body := fd.Body

	// selfAppendOK reports whether an append call is the blessed
	// amortized reuse form: x = append(x, ...) with x declared outside
	// the function body.
	selfAppendOK := func(assign *ast.AssignStmt, call *ast.CallExpr) bool {
		if assign == nil || assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return false
		}
		if assign.Rhs[0] != call || len(call.Args) == 0 {
			return false
		}
		if lintkit.ExprString(assign.Lhs[0]) != lintkit.ExprString(call.Args[0]) {
			return false
		}
		root := lintkit.RootIdent(call.Args[0])
		if root == nil {
			return false
		}
		obj := info.Uses[root]
		if obj == nil {
			obj = info.Defs[root]
		}
		if obj == nil {
			return false
		}
		// Declared inside the body => a fresh slice whose growth is a
		// real allocation.  Receivers and parameters sit outside Body.
		return !(obj.Pos() >= body.Pos() && obj.Pos() < body.End())
	}

	var parentAssign *ast.AssignStmt
	var walk func(n ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				// Track the immediate assignment so append can see its
				// statement context; nested assigns replace it.
				prev := parentAssign
				parentAssign = n
				for _, rhs := range n.Rhs {
					walk(rhs)
				}
				parentAssign = prev
				for _, lhs := range n.Lhs {
					walk(lhs)
				}
				return false
			case *ast.FuncLit:
				pass.Reportf(n.Pos(), "hot path allocates: function literal (closure capture)")
				return false
			case *ast.CompositeLit:
				pass.Reportf(n.Pos(), "hot path allocates: composite literal")
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "hot path allocates: go statement (new goroutine)")
			case *ast.DeferStmt:
				pass.Reportf(n.Pos(), "hot path allocates: defer statement")
			case *ast.BinaryExpr:
				if n.Op == token.ADD {
					if tv, ok := info.Types[n]; ok && isString(tv.Type) {
						pass.Reportf(n.Pos(), "hot path allocates: string concatenation")
					}
				}
			case *ast.CallExpr:
				checkCall(pass, fd, n, parentAssign, selfAppendOK)
			case *ast.ReturnStmt:
				checkReturnBoxing(pass, fd, n)
			}
			return true
		})
	}
	walk(body)
}

func checkCall(pass *lintkit.Pass, fd *ast.FuncDecl, call *ast.CallExpr,
	parentAssign *ast.AssignStmt, selfAppendOK func(*ast.AssignStmt, *ast.CallExpr) bool) {
	info := pass.TypesInfo

	// Builtins and conversions.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(), "hot path allocates: %s", b.Name())
			case "append":
				if !selfAppendOK(parentAssign, call) {
					pass.Reportf(call.Pos(),
						"hot path allocates: append may grow a function-local slice (reuse an outer scratch buffer: x = append(x, ...))")
				}
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion T(x).
		target := tv.Type
		if types.IsInterface(target.Underlying()) {
			pass.Reportf(call.Pos(), "hot path allocates: conversion to interface type %s", target)
		} else if len(call.Args) == 1 {
			if src, ok := info.Types[call.Args[0]]; ok && allocatingConversion(src.Type, target) {
				pass.Reportf(call.Pos(), "hot path allocates: conversion %s -> %s copies its data", src.Type, target)
			}
		}
		return
	}

	// Implicit interface boxing at call arguments.
	sig, ok := calleeSignature(info, call)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // forwarding an existing slice
			}
			param = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			param = params.At(i).Type()
		default:
			continue
		}
		if boxes(info, arg, param) {
			pass.Reportf(arg.Pos(),
				"hot path allocates: %s boxes into interface parameter %s", lintkit.ExprString(arg), param)
		}
	}
}

// checkReturnBoxing flags concrete non-pointer-shaped values returned
// through interface result types.
func checkReturnBoxing(pass *lintkit.Pass, fd *ast.FuncDecl, ret *ast.ReturnStmt) {
	if fd.Type.Results == nil || len(ret.Results) == 0 {
		return
	}
	var results []types.Type
	for _, field := range fd.Type.Results.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			return
		}
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			results = append(results, tv.Type)
		}
	}
	if len(ret.Results) != len(results) {
		return // multi-value call forwarding; out of scope
	}
	for i, e := range ret.Results {
		if boxes(pass.TypesInfo, e, results[i]) {
			pass.Reportf(e.Pos(),
				"hot path allocates: return boxes %s into interface %s", lintkit.ExprString(e), results[i])
		}
	}
}

// boxes reports whether assigning arg to a target of type param
// performs an allocating interface conversion.
func boxes(info *types.Info, arg ast.Expr, param types.Type) bool {
	if param == nil || !types.IsInterface(param.Underlying()) {
		return false
	}
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if types.IsInterface(t.Underlying()) {
		return false // interface-to-interface carries the existing box
	}
	if b, isBasic := t.Underlying().(*types.Basic); isBasic && b.Kind() == types.UntypedNil {
		return false
	}
	return !pointerShaped(t)
}

// pointerShaped reports whether values of t fit an interface's data
// word without an allocation.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// allocatingConversion reports the string <-> []byte/[]rune copies.
func allocatingConversion(src, dst types.Type) bool {
	return (isString(src) && isByteOrRuneSlice(dst)) || (isByteOrRuneSlice(src) && isString(dst))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// calleeSignature returns the signature of call's callee when it is a
// plain function or method call.
func calleeSignature(info *types.Info, call *ast.CallExpr) (*types.Signature, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return sig, ok
}
