package hotalloc_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/lintkit/testkit"
)

func TestHotalloc(t *testing.T) {
	testkit.Run(t, filepath.Join("testdata", "src", "a"), hotalloc.Analyzer)
}
