// Package membudget is the cross-layer memory accounting authority: one
// Governor per run that every layer charges — the graph representation's
// adjacency bytes at facade entry, the in-core enumerators' paper-formula
// resident candidate bytes, the parallel pool's per-worker scratch and
// merge-window buffers, and the out-of-core engine's in-flight shard I/O
// buffers.  It replaces the three disjoint ad-hoc budget fields the
// backends grew independently (core.Options.MemoryBudget, the Builder's
// Budget/Exceeded pair, and the facade-level rejection of budgets on
// every other backend) with one definition of "what memory means": the
// sum of everything a layer declared resident, compared against one
// budget.
//
// The paper's central tension motivates the design: the fast in-core
// enumerator dies when candidate storage outgrows RAM (the graph-B
// blow-up that "consumed 607 GB ... when it was terminated"), while the
// out-of-core regime survives but pays "intensive disk I/O".  A single
// accounting authority is what lets the hybrid backend stay in memory
// while the run fits and spill transparently the moment it does not —
// the resource-aware-runtime answer of the out-of-core GWAS literature.
//
// Charge/Release are cheap atomics, safe for concurrent use by worker
// pools; all methods are nil-receiver safe so layers charge
// unconditionally and an unbudgeted run costs two predictable branches.
package membudget

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrBudget is the sentinel every budget-exceeded abort wraps, across
// all backends.  core.ErrMemoryBudget aliases it, preserving the
// historical errors.Is target.
var ErrBudget = errors.New("memory budget exceeded")

// Governor is one run's memory accounting authority.  The zero value is
// unusable; use New.  A Governor with budget 0 only observes (Used/Peak
// stay meaningful, Over is always false) — this is how every backend
// reports PeakBytes even when no budget was configured.
type Governor struct {
	budget int64 // immutable after New
	used   atomic.Int64
	peak   atomic.Int64
	trip   atomic.Bool // latched by the first over-budget Charge
	// parent, when non-nil, receives a mirror of every Charge/Release:
	// this governor is a Reservation's child and the parent's Used must
	// remain the true resident total across all tenants.  Immutable
	// after Reserve.
	parent *Governor
	// reserved is the sum of outstanding reservations carved out of
	// this governor's budget (see Reserve).
	reserved atomic.Int64
}

// New returns a Governor enforcing the given budget in bytes; budget <= 0
// means unlimited (observe only).
func New(budget int64) *Governor {
	if budget < 0 {
		budget = 0
	}
	return &Governor{budget: budget}
}

// Budget returns the configured budget (0 = unlimited).  nil-safe.
func (g *Governor) Budget() int64 {
	if g == nil {
		return 0
	}
	return g.budget
}

// Charge declares n more bytes resident.  nil-safe; n <= 0 is a no-op.
// A reservation's child governor forwards the charge to its parent, so
// a shared server governor always sees the true resident total.
func (g *Governor) Charge(n int64) {
	if g == nil || n <= 0 {
		return
	}
	g.parent.Charge(n)
	used := g.used.Add(n)
	// Peak is monotone; the CAS loop loses only to strictly larger peaks.
	for {
		p := g.peak.Load()
		if used <= p || g.peak.CompareAndSwap(p, used) {
			break
		}
	}
	if g.budget > 0 && used > g.budget {
		g.trip.Store(true)
	}
}

// Release declares n bytes no longer resident.  nil-safe; n <= 0 is a
// no-op.  Releasing more than was charged is a caller bug; Used is
// clamped at zero rather than going negative so a stray double release
// cannot fake headroom forever.  The clamp is a CAS loop so containing
// one goroutine's over-release can never erase another's concurrent
// charge.
func (g *Governor) Release(n int64) {
	if g == nil || n <= 0 {
		return
	}
	for {
		u := g.used.Load()
		nu := u - n
		if nu < 0 {
			nu = 0
		}
		if g.used.CompareAndSwap(u, nu) {
			// Forward only the bytes actually released: a clamped
			// over-release must not erase another tenant's charge from
			// the shared parent.
			g.parent.Release(u - nu)
			return
		}
	}
}

// Used returns the bytes currently declared resident.  nil-safe.
func (g *Governor) Used() int64 {
	if g == nil {
		return 0
	}
	return g.used.Load()
}

// Peak returns the high-water mark of Used over the run.  nil-safe.
func (g *Governor) Peak() int64 {
	if g == nil {
		return 0
	}
	return g.peak.Load()
}

// Over reports whether the current residency exceeds a configured
// budget.  It is the per-sub-list / per-chunk trip check the in-core
// backends poll: two atomic loads, no locks.  nil-safe.
func (g *Governor) Over() bool {
	return g != nil && g.budget > 0 && g.used.Load() > g.budget
}

// Tripped reports whether Used has ever exceeded the budget, even if
// releases brought it back under.  nil-safe.
func (g *Governor) Tripped() bool {
	return g != nil && g.trip.Load()
}

// Err returns a descriptive error wrapping ErrBudget, for backends
// that abort on a trip.  It reports the Peak, not the instantaneous
// Used: abort paths reconcile (release) in-flight work before they
// format the error, and a message claiming fewer resident bytes than
// the budget it exceeded would contradict itself.
func (g *Governor) Err() error {
	return fmt.Errorf("%w: peak %d bytes resident > budget %d", ErrBudget, g.Peak(), g.Budget())
}
