package membudget

import (
	"errors"
	"sync"
	"testing"
)

func TestChargeReleasePeak(t *testing.T) {
	g := New(100)
	g.Charge(40)
	g.Charge(30)
	if got := g.Used(); got != 70 {
		t.Fatalf("Used = %d, want 70", got)
	}
	g.Release(50)
	if got := g.Used(); got != 20 {
		t.Fatalf("Used after release = %d, want 20", got)
	}
	if got := g.Peak(); got != 70 {
		t.Fatalf("Peak = %d, want 70", got)
	}
	if g.Over() || g.Tripped() {
		t.Fatal("under-budget governor reports Over/Tripped")
	}
}

func TestTripLatches(t *testing.T) {
	g := New(100)
	g.Charge(90)
	if g.Over() || g.Tripped() {
		t.Fatal("Over/Tripped before crossing")
	}
	g.Charge(20) // crosses
	if !g.Over() || !g.Tripped() {
		t.Fatal("crossing did not set Over/Tripped")
	}
	g.Release(50) // back under budget
	if g.Over() {
		t.Fatal("Over after releasing back under budget")
	}
	if !g.Tripped() {
		t.Fatal("Tripped did not latch across the release")
	}
	if !errors.Is(g.Err(), ErrBudget) {
		t.Fatalf("Err %v does not wrap ErrBudget", g.Err())
	}
}

func TestUnlimitedGovernorObservesOnly(t *testing.T) {
	g := New(0)
	g.Charge(1 << 40) //nolint:budgetpair deliberately unreleased: the test asserts Peak survives

	if g.Over() || g.Tripped() {
		t.Fatal("unlimited governor tripped")
	}
	if g.Peak() != 1<<40 {
		t.Fatalf("Peak = %d", g.Peak())
	}
}

func TestNilGovernorIsSafe(t *testing.T) {
	var g *Governor
	g.Charge(10)
	g.Release(10)
	if g.Used() != 0 || g.Peak() != 0 || g.Over() || g.Tripped() || g.Budget() != 0 {
		t.Fatal("nil governor leaked state")
	}
}

func TestConcurrentChargesKeepPeakSane(t *testing.T) {
	g := New(0)
	const workers = 8
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Charge(3)
				g.Release(3)
			}
		}()
	}
	wg.Wait()
	if got := g.Used(); got != 0 {
		t.Fatalf("Used after balanced charges = %d, want 0", got)
	}
	if p := g.Peak(); p < 3 || p > 3*workers {
		t.Fatalf("Peak %d outside [3, %d]", p, 3*workers)
	}
}

func TestReleaseClampsAtZero(t *testing.T) {
	g := New(50)
	g.Charge(10)
	g.Release(100)
	if g.Used() != 0 {
		t.Fatalf("Used = %d, want clamp to 0", g.Used())
	}
	g.Charge(60)
	if !g.Over() {
		t.Fatal("clamped governor lost the budget")
	}
}
