package membudget

import (
	"errors"
	"sync"
	"testing"
)

// TestReservationAccounting pins the three reservation laws: admission
// against the parent budget, charge forwarding, and close-time
// reconciliation.
func TestReservationAccounting(t *testing.T) {
	parent := New(1000)

	r1, err := parent.Reserve(600)
	if err != nil {
		t.Fatalf("first reservation: %v", err)
	}
	if got := parent.Reserved(); got != 600 {
		t.Fatalf("Reserved = %d, want 600", got)
	}

	// Admission: 600 + 500 > 1000 must be refused with ErrNoHeadroom.
	if _, err := parent.Reserve(500); !errors.Is(err, ErrNoHeadroom) {
		t.Fatalf("over-admission error = %v, want ErrNoHeadroom", err)
	}
	r2, err := parent.Reserve(400)
	if err != nil {
		t.Fatalf("exact-fit reservation: %v", err)
	}

	// Forwarding: child charges are visible in the parent.
	r1.Governor().Charge(100)
	r2.Governor().Charge(50)
	if got := parent.Used(); got != 150 {
		t.Fatalf("parent Used = %d after child charges, want 150", got)
	}
	if got := r1.Governor().Used(); got != 100 {
		t.Fatalf("child Used = %d, want 100", got)
	}
	r1.Governor().Release(100)
	if got := parent.Used(); got != 50 {
		t.Fatalf("parent Used = %d after child release, want 50", got)
	}

	// Child budget enforcement is local: r2 has budget 400.
	r2.Governor().Charge(400)
	if !r2.Governor().Over() {
		t.Fatal("child not Over at 450/400")
	}
	if parent.Over() {
		t.Fatal("parent Over though only 450 of 1000 used")
	}

	// Close reconciles the residual (r2 leaked 450) and frees headroom.
	if resid := r1.Close(); resid != 0 {
		t.Fatalf("clean close residual = %d, want 0", resid)
	}
	if resid := r2.Close(); resid != 450 {
		t.Fatalf("leaky close residual = %d, want 450", resid)
	}
	if got := parent.Used(); got != 0 {
		t.Fatalf("parent Used = %d after closes, want 0", got)
	}
	if got := parent.Reserved(); got != 0 {
		t.Fatalf("parent Reserved = %d after closes, want 0", got)
	}
	// Idempotent: a second Close reconciles nothing.
	if resid := r2.Close(); resid != 0 {
		t.Fatalf("second close residual = %d, want 0", resid)
	}

	// Headroom is reusable after close.
	r3, err := parent.Reserve(1000)
	if err != nil {
		t.Fatalf("post-close full-budget reservation: %v", err)
	}
	r3.Close()
}

// TestReserveEdgeCases: nil parents, unlimited parents, bad sizes.
func TestReserveEdgeCases(t *testing.T) {
	var nilGov *Governor
	r, err := nilGov.Reserve(10)
	if err != nil {
		t.Fatalf("nil-governor Reserve: %v", err)
	}
	r.Governor().Charge(5)
	if got := r.Governor().Used(); got != 5 {
		t.Fatalf("standalone child Used = %d, want 5", got)
	}
	r.Close()

	unlimited := New(0)
	r, err = unlimited.Reserve(1 << 40)
	if err != nil {
		t.Fatalf("unlimited-governor Reserve: %v", err)
	}
	r.Governor().Charge(7)
	if got := unlimited.Used(); got != 7 {
		t.Fatalf("unlimited parent Used = %d, want 7", got)
	}
	if resid := r.Close(); resid != 7 {
		t.Fatalf("residual = %d, want 7", resid)
	}
	if got := unlimited.Used(); got != 0 {
		t.Fatalf("unlimited parent Used = %d after close, want 0", got)
	}

	if _, err := New(100).Reserve(0); err == nil {
		t.Fatal("Reserve(0) accepted")
	}
	if _, err := New(100).Reserve(-5); err == nil {
		t.Fatal("Reserve(-5) accepted")
	}
}

// TestReservationConcurrent hammers Reserve/Charge/Release/Close from
// many goroutines (run under -race): the parent must end at zero and
// never exceed its budget by more than the tenants' own overshoot,
// which is zero here because every tenant stays within its child
// budget.
func TestReservationConcurrent(t *testing.T) {
	const (
		tenants = 16
		budget  = int64(tenants) * 100
		rounds  = 200
	)
	parent := New(budget)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				r, err := parent.Reserve(100)
				if err != nil {
					// Headroom contention: another tenant holds the
					// slot; retry like an admission queue would.
					j--
					continue
				}
				g := r.Governor()
				g.Charge(60)
				g.Charge(40)
				g.Release(40)
				g.Release(60)
				if resid := r.Close(); resid != 0 {
					t.Errorf("residual %d on clean run", resid)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := parent.Used(); got != 0 {
		t.Fatalf("parent Used = %d after all tenants closed, want 0", got)
	}
	if got := parent.Reserved(); got != 0 {
		t.Fatalf("parent Reserved = %d after all tenants closed, want 0", got)
	}
	if peak := parent.Peak(); peak > budget {
		t.Fatalf("parent Peak = %d exceeds budget %d though no tenant overshot", peak, budget)
	}
}
