package membudget

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Reservations partition one Governor's budget across concurrent
// dependent runs — the multi-tenancy primitive of the query service.
// Reserve carves a fixed sub-budget out of the parent: admission
// succeeds only while the sum of outstanding reservations fits the
// parent's budget, and the returned Reservation owns a child Governor
// (budget = the reserved amount) whose charges forward into the parent,
// so the parent's Used/Peak remain the true resident-byte totals across
// every tenant.  Close returns the reservation's headroom to the parent
// and reconciles any bytes its run failed to release.
//
// The accounting laws (pinned by TestReservationAccounting and enforced
// over internal/service by repolint's budgetpair):
//
//	admit:   sum(outstanding reservations) <= parent budget
//	forward: child.Charge(n) => parent.Used += n (Release symmetric)
//	close:   parent.Used -= child residual; outstanding -= amount
//
// A run that respects its child budget can therefore never push the
// parent past its budget beyond the backends' documented trip
// granularity (charges are polled at sub-list/chunk boundaries, so a
// tripping run overshoots its reservation by at most one sub-list
// before aborting).

// ErrNoHeadroom is returned by Reserve when the parent's budget cannot
// accommodate another reservation of the requested size.  Admission
// controllers queue or shed load on it.
var ErrNoHeadroom = errors.New("membudget: reservation exceeds remaining headroom")

// Reservation is a sub-budget carved from a parent Governor by Reserve.
// Its child Governor is handed to exactly one run (the facade's
// WithGovernor); Close must be called when the run is over, on every
// path — success, error, or client disconnect.
type Reservation struct {
	parent *Governor
	child  *Governor
	amount int64
	closed atomic.Bool
}

// Reserve carves n bytes out of g's budget.  It fails with ErrNoHeadroom
// (wrapped) when the outstanding reservations plus n would exceed the
// budget; an unlimited governor (budget 0) admits everything.  Reserving
// from a nil Governor returns a standalone observing reservation so
// callers need not special-case an unbudgeted server.  n must be
// positive.
func (g *Governor) Reserve(n int64) (*Reservation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("membudget: non-positive reservation %d", n)
	}
	if g == nil {
		return &Reservation{child: New(n), amount: n}, nil
	}
	if g.budget > 0 {
		for {
			r := g.reserved.Load()
			if r+n > g.budget {
				return nil, fmt.Errorf("%w: %d requested, %d of %d already reserved",
					ErrNoHeadroom, n, r, g.budget)
			}
			if g.reserved.CompareAndSwap(r, r+n) {
				break
			}
		}
	} else {
		g.reserved.Add(n)
	}
	child := New(n)
	child.parent = g
	return &Reservation{parent: g, child: child, amount: n}, nil
}

// Reserved returns the sum of outstanding reservations.  nil-safe.
func (g *Governor) Reserved() int64 {
	if g == nil {
		return 0
	}
	return g.reserved.Load()
}

// Governor returns the reservation's child governor: budget = the
// reserved amount, charges forwarded to the parent.  Hand it to the run
// (repro.WithGovernor) so every layer's charges are visible to both the
// run's own budget and the shared one.
func (r *Reservation) Governor() *Governor {
	if r == nil {
		return nil
	}
	return r.child
}

// Amount returns the reserved byte count.
func (r *Reservation) Amount() int64 {
	if r == nil {
		return 0
	}
	return r.amount
}

// Close returns the reservation to the parent: any bytes the run left
// charged are reconciled (released from the parent so one tenant's leak
// cannot shrink the server's budget forever) and the reserved amount
// becomes available to waiting admissions again.  It returns the
// residual byte count — 0 in a correct run; nonzero means the run
// violated the budgetpair discipline and should be surfaced.  Close is
// idempotent; only the first call reconciles.
func (r *Reservation) Close() int64 {
	if r == nil || !r.closed.CompareAndSwap(false, true) {
		return 0
	}
	residual := r.child.used.Swap(0)
	if r.parent != nil {
		if residual > 0 {
			r.parent.Release(residual)
		}
		r.parent.reserved.Add(-r.amount)
	}
	return residual
}
