package bitset

import (
	"math/rand"
	"testing"
)

// The fused kernels (AndAny, AndAny3, AndNotAny, RangeAndAny, AndCount3)
// and the unrolled word loops (And, Count, AndCount) share two hazards:
// the 4-word block/tail split, and the tail-word invariant ("words beyond
// the last valid bit stay zero") that lets them skip masking.  These
// tests pin both against bit-at-a-time references over universe sizes
// chosen to hit every tail shape: 0, 1, 63, 64, 65, 127 bits plus sizes
// that exercise 4-word blocks with 0..3 trailing words.

// fusedSizes covers empty, sub-word, word-boundary ±1, and block
// boundary ±k tails.
var fusedSizes = []int{0, 1, 63, 64, 65, 127, 128, 129, 191, 255, 256, 257, 300}

// randFused fills a fresh n-bit set at roughly the given density.
func randFused(rng *rand.Rand, n int, density float64) *Bitset {
	b := New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			b.Set(i)
		}
	}
	return b
}

func naiveAndAny(x, y *Bitset) bool {
	for i := 0; i < x.Len(); i++ {
		if x.Test(i) && y.Test(i) {
			return true
		}
	}
	return false
}

func naiveAndAny3(x, y, z *Bitset) bool {
	for i := 0; i < x.Len(); i++ {
		if x.Test(i) && y.Test(i) && z.Test(i) {
			return true
		}
	}
	return false
}

func naiveAndNotAny(x, y *Bitset) bool {
	for i := 0; i < x.Len(); i++ {
		if x.Test(i) && !y.Test(i) {
			return true
		}
	}
	return false
}

func naiveRangeAndAny(x, y *Bitset, start, end int) bool {
	if start < 0 {
		start = 0
	}
	if end > x.Len() {
		end = x.Len()
	}
	for i := start; i < end; i++ {
		if x.Test(i) && y.Test(i) {
			return true
		}
	}
	return false
}

func naiveAndCount3(x, y, z *Bitset) int {
	c := 0
	for i := 0; i < x.Len(); i++ {
		if x.Test(i) && y.Test(i) && z.Test(i) {
			c++
		}
	}
	return c
}

// checkFusedTriple runs every kernel over one (x, y, z) operand triple
// and cross-checks it against the references.
func checkFusedTriple(t *testing.T, rng *rand.Rand, x, y, z *Bitset) {
	t.Helper()
	n := x.Len()
	if got, want := AndAny(x, y), naiveAndAny(x, y); got != want {
		t.Fatalf("n=%d: AndAny = %v, naive %v", n, got, want)
	}
	if got, want := AndAny3(x, y, z), naiveAndAny3(x, y, z); got != want {
		t.Fatalf("n=%d: AndAny3 = %v, naive %v", n, got, want)
	}
	if got, want := AndNotAny(x, y), naiveAndNotAny(x, y); got != want {
		t.Fatalf("n=%d: AndNotAny = %v, naive %v", n, got, want)
	}
	if got, want := AndCount3(x, y, z), naiveAndCount3(x, y, z); got != want {
		t.Fatalf("n=%d: AndCount3 = %d, naive %d", n, got, want)
	}
	// Ranged probe, including bounds that clip (negative start, end past
	// the universe) and empty windows.
	starts := []int{-3, 0, n / 3, n - 1, n}
	ends := []int{-1, 0, n / 2, n, n + 5}
	for _, s := range starts {
		for _, e := range ends {
			if got, want := RangeAndAny(x, y, s, e), naiveRangeAndAny(x, y, s, e); got != want {
				t.Fatalf("n=%d: RangeAndAny[%d,%d) = %v, naive %v", n, s, e, got, want)
			}
		}
	}
	if n > 0 {
		s := rng.Intn(n)
		e := s + rng.Intn(n-s+1)
		if got, want := RangeAndAny(x, y, s, e), naiveRangeAndAny(x, y, s, e); got != want {
			t.Fatalf("n=%d: RangeAndAny[%d,%d) = %v, naive %v", n, s, e, got, want)
		}
	}
	// The unrolled materializing loops must agree both with the fused
	// existence/count kernels and with the bit-at-a-time model.
	dst := New(n)
	dst.And(x, y)
	if got, want := dst.Any(), naiveAndAny(x, y); got != want {
		t.Fatalf("n=%d: And(x,y).Any = %v, naive %v", n, got, want)
	}
	c := 0
	for i := 0; i < n; i++ {
		if x.Test(i) && y.Test(i) {
			if !dst.Test(i) {
				t.Fatalf("n=%d: And(x,y) missing bit %d", n, i)
			}
			c++
		} else if dst.Test(i) {
			t.Fatalf("n=%d: And(x,y) spurious bit %d", n, i)
		}
	}
	if dst.Count() != c {
		t.Fatalf("n=%d: Count = %d, naive %d", n, dst.Count(), c)
	}
	if x.AndCount(y) != c {
		t.Fatalf("n=%d: AndCount = %d, naive %d", n, x.AndCount(y), c)
	}
}

// TestFusedKernelsAgainstNaive sweeps all kernels across every tail
// shape at several densities, including the all-zero and all-one
// extremes where early exits fire on the first or no block.
func TestFusedKernelsAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(421))
	for _, n := range fusedSizes {
		for _, density := range []float64{0, 0.02, 0.3, 0.9, 1} {
			for trial := 0; trial < 8; trial++ {
				x := randFused(rng, n, density)
				y := randFused(rng, n, density)
				z := randFused(rng, n, density)
				checkFusedTriple(t, rng, x, y, z)
			}
		}
	}
}

// TestFusedKernelsSingleWitness plants exactly one common bit at every
// position of small universes — the adversarial case for early-exit
// kernels, where a block-level OR must not mask the lone witness.
func TestFusedKernelsSingleWitness(t *testing.T) {
	for _, n := range fusedSizes {
		for i := 0; i < n; i++ {
			x, y, z := New(n), New(n), New(n)
			x.Set(i)
			y.Set(i)
			z.Set(i)
			if !AndAny(x, y) || !AndAny3(x, y, z) {
				t.Fatalf("n=%d: lone witness at bit %d missed", n, i)
			}
			if AndCount3(x, y, z) != 1 {
				t.Fatalf("n=%d: AndCount3 with lone witness at %d != 1", n, i)
			}
			if !RangeAndAny(x, y, i, i+1) || RangeAndAny(x, y, i+1, n) || RangeAndAny(x, y, 0, i) {
				t.Fatalf("n=%d: RangeAndAny windows around bit %d wrong", n, i)
			}
			z.Clear(i)
			if AndAny3(x, y, z) {
				t.Fatalf("n=%d: AndAny3 found a witness after clearing bit %d", n, i)
			}
			y.Clear(i)
			if !AndNotAny(x, y) {
				t.Fatalf("n=%d: AndNotAny missed x\\y witness at bit %d", n, i)
			}
			x.Clear(i)
			if AndNotAny(x, y) {
				t.Fatalf("n=%d: AndNotAny nonempty on empty x (bit %d)", n, i)
			}
		}
	}
}

// FuzzFusedKernels feeds arbitrary word patterns into the kernels and
// cross-checks every one against the bit-at-a-time references.  The
// universe size is derived from the input so the fuzzer also explores
// tail shapes.
func FuzzFusedKernels(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint16(64))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), uint16(127))
	f.Add(uint64(1), uint64(1)<<63, uint64(1), uint64(1), uint64(1), uint64(1), uint16(65))
	f.Fuzz(func(t *testing.T, x0, x1, y0, y1, z0, z1 uint64, rawN uint16) {
		n := int(rawN)%300 + 1
		x, y, z := New(n), New(n), New(n)
		for i := 0; i < n && i < 128; i++ {
			w := [2]uint64{x0, x1}[i/64]
			if w>>(uint(i)%64)&1 != 0 {
				x.Set(i)
			}
			w = [2]uint64{y0, y1}[i/64]
			if w>>(uint(i)%64)&1 != 0 {
				y.Set(i)
			}
			w = [2]uint64{z0, z1}[i/64]
			if w>>(uint(i)%64)&1 != 0 {
				z.Set(i)
			}
		}
		rng := rand.New(rand.NewSource(int64(rawN)))
		checkFusedTriple(t, rng, x, y, z)
	})
}
