// Package bitset implements the dense bit-string sets at the heart of the
// Clique Enumerator framework of Zhang et al. (SC 2005).
//
// The paper stores the common neighbors of a clique as a packed bit string
// of ceil(n/8) bytes over the n vertices of the input graph: bit i is 1 iff
// every vertex of the clique is adjacent to vertex i.  Candidate generation
// and the clique-maximality test then reduce to bitwise AND followed by a
// "does any 1-bit exist" probe, replacing loops over adjacency lists with
// word-wide logical operations.  This package provides exactly those
// primitives, plus the iteration and counting support needed elsewhere in
// the framework.
//
// All operations treat the set as having a fixed universe [0, Len()).
// Words beyond the last valid bit are kept zero as an invariant, so
// whole-word operations (Any, Count, Equal, ...) never need to mask.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const (
	wordBits  = 64
	wordShift = 6
	wordMask  = wordBits - 1
)

// Bitset is a fixed-universe dense set of non-negative integers backed by
// 64-bit words.  The zero value is an empty set over an empty universe;
// use New to create a set over a universe of a given size.
type Bitset struct {
	words []uint64
	n     int // universe size in bits
}

// New returns an empty Bitset over the universe [0, n).
func New(n int) *Bitset {
	if n < 0 {
		panic("bitset: negative universe size")
	}
	return &Bitset{words: make([]uint64, wordsFor(n)), n: n}
}

// FromIndices returns a Bitset over [0, n) containing exactly the given
// indices.  Indices outside [0, n) cause a panic, as does a negative n.
func FromIndices(n int, indices ...int) *Bitset {
	b := New(n)
	for _, i := range indices {
		b.Set(i)
	}
	return b
}

func wordsFor(n int) int {
	return (n + wordBits - 1) / wordBits
}

// Len returns the universe size of the set, in bits.
func (b *Bitset) Len() int { return b.n }

// Words returns the number of 64-bit words backing the set.
func (b *Bitset) Words() int { return len(b.words) }

// Bytes returns the storage footprint of the bit data in bytes, which is
// the paper's ceil(n/8) term in the per-level memory accounting, rounded
// up to whole words as actually allocated.
func (b *Bitset) Bytes() int { return len(b.words) * 8 }

// Set adds i to the set.
func (b *Bitset) Set(i int) {
	b.check(i)
	b.words[i>>wordShift] |= 1 << uint(i&wordMask)
}

// Clear removes i from the set.
func (b *Bitset) Clear(i int) {
	b.check(i)
	b.words[i>>wordShift] &^= 1 << uint(i&wordMask)
}

// Flip toggles membership of i.
func (b *Bitset) Flip(i int) {
	b.check(i)
	b.words[i>>wordShift] ^= 1 << uint(i&wordMask)
}

// Test reports whether i is in the set.
//
//repro:hotpath
func (b *Bitset) Test(i int) bool {
	b.check(i)
	return b.words[i>>wordShift]&(1<<uint(i&wordMask)) != 0
}

func (b *Bitset) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, b.n))
	}
}

// Any reports whether the set contains at least one element.  This is the
// paper's BitOneExists operation: a non-empty common-neighbor bitmap means
// the clique is non-maximal.
//
//repro:hotpath
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// None reports whether the set is empty.
func (b *Bitset) None() bool { return !b.Any() }

// Count returns the number of elements in the set (population count).
// The plain range loop is deliberate: BENCH_all.json's kernel/count
// shows a 4-way accumulator unroll slower here — the extra slice
// bookkeeping costs more than the popcount dependence chain it breaks.
//
//repro:hotpath
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// SetAll adds every element of the universe to the set.
func (b *Bitset) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// ClearAll removes every element from the set.
func (b *Bitset) ClearAll() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// trim zeroes the bits of the final word beyond the universe, restoring
// the package invariant after whole-word operations that may set them.
func (b *Bitset) trim() {
	if rem := b.n & wordMask; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Clone returns an independent copy of the set.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// CopyFrom overwrites the receiver with the contents of src.  The two sets
// must share a universe size.
func (b *Bitset) CopyFrom(src *Bitset) {
	b.mustMatch(src)
	copy(b.words, src.words)
}

func (b *Bitset) mustMatch(o *Bitset) {
	if b.n != o.n {
		panic(fmt.Sprintf("bitset: universe mismatch %d vs %d", b.n, o.n))
	}
}

// And replaces the receiver with the intersection of x and y.  The receiver
// may alias either operand.  This is the workhorse of the Clique
// Enumerator: common neighbors of a (k+1)-clique are the AND of the common
// neighbors of a k-clique and the neighborhood of the new vertex.
//
//repro:hotpath
func (b *Bitset) And(x, y *Bitset) {
	x.mustMatch(y)
	b.mustMatch(x)
	bw, xw, yw := b.words, x.words, y.words
	for len(bw) >= 8 && len(xw) >= 8 && len(yw) >= 8 {
		bw[0] = xw[0] & yw[0]
		bw[1] = xw[1] & yw[1]
		bw[2] = xw[2] & yw[2]
		bw[3] = xw[3] & yw[3]
		bw[4] = xw[4] & yw[4]
		bw[5] = xw[5] & yw[5]
		bw[6] = xw[6] & yw[6]
		bw[7] = xw[7] & yw[7]
		bw, xw, yw = bw[8:], xw[8:], yw[8:]
	}
	for i := range bw {
		bw[i] = xw[i] & yw[i]
	}
}

// Or replaces the receiver with the union of x and y.  The receiver may
// alias either operand.
//
//repro:hotpath
func (b *Bitset) Or(x, y *Bitset) {
	x.mustMatch(y)
	b.mustMatch(x)
	for i := range b.words {
		b.words[i] = x.words[i] | y.words[i]
	}
}

// AndNot replaces the receiver with x minus y (set difference).  The
// receiver may alias either operand.
//
//repro:hotpath
func (b *Bitset) AndNot(x, y *Bitset) {
	x.mustMatch(y)
	b.mustMatch(x)
	for i := range b.words {
		b.words[i] = x.words[i] &^ y.words[i]
	}
}

// Xor replaces the receiver with the symmetric difference of x and y.  The
// receiver may alias either operand.
//
//repro:hotpath
func (b *Bitset) Xor(x, y *Bitset) {
	x.mustMatch(y)
	b.mustMatch(x)
	for i := range b.words {
		b.words[i] = x.words[i] ^ y.words[i]
	}
}

// Not replaces the receiver with the complement of x over the universe.
// The receiver may alias x.
//
//repro:hotpath
func (b *Bitset) Not(x *Bitset) {
	b.mustMatch(x)
	for i := range b.words {
		b.words[i] = ^x.words[i]
	}
	b.trim()
}

// IntersectsWith reports whether the receiver and o share any element,
// without materializing the intersection.  Equivalent to
// BitOneExists(BitAND(b, o)) in the paper's pseudocode, fused into one
// pass so the maximality test allocates nothing.
//
//repro:hotpath
func (b *Bitset) IntersectsWith(o *Bitset) bool {
	return AndAny(b, o)
}

// AndCount returns |b ∩ o| without materializing the intersection.
// Plain indexed loop on purpose: kernel/andcount in BENCH_all.json
// measures the two-slice 4-way unroll ~1.6x slower than this (double
// bounds checks and slice-header updates dominate).
//
//repro:hotpath
func (b *Bitset) AndCount(o *Bitset) int {
	b.mustMatch(o)
	ow := o.words
	c := 0
	for i, w := range b.words {
		c += bits.OnesCount64(w & ow[i])
	}
	return c
}

// IsSubsetOf reports whether every element of the receiver is in o.
//
//repro:hotpath
func (b *Bitset) IsSubsetOf(o *Bitset) bool {
	return !AndNotAny(b, o)
}

// Equal reports whether the two sets contain exactly the same elements
// over the same universe.
//
//repro:hotpath
func (b *Bitset) Equal(o *Bitset) bool {
	if b.n != o.n {
		return false
	}
	for i, w := range b.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// NextSet returns the smallest element >= i in the set, and whether one
// exists.  Passing i >= Len() returns (0, false).
//
//repro:hotpath
func (b *Bitset) NextSet(i int) (int, bool) {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return 0, false
	}
	wi := i >> wordShift
	w := b.words[wi] >> uint(i&wordMask)
	if w != 0 {
		return i + bits.TrailingZeros64(w), true
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return wi<<wordShift + bits.TrailingZeros64(b.words[wi]), true
		}
	}
	return 0, false
}

// Min returns the smallest element of the set, and whether the set is
// non-empty.
func (b *Bitset) Min() (int, bool) { return b.NextSet(0) }

// Max returns the largest element of the set, and whether the set is
// non-empty.
func (b *Bitset) Max() (int, bool) {
	for wi := len(b.words) - 1; wi >= 0; wi-- {
		if w := b.words[wi]; w != 0 {
			return wi<<wordShift + wordBits - 1 - bits.LeadingZeros64(w), true
		}
	}
	return 0, false
}

// ForEach calls fn for every element of the set in increasing order.  If
// fn returns false, iteration stops early.
//
//repro:hotpath
func (b *Bitset) ForEach(fn func(i int) bool) {
	for wi, w := range b.words {
		base := wi << wordShift
		for w != 0 {
			t := bits.TrailingZeros64(w)
			if !fn(base + t) {
				return
			}
			w &= w - 1
		}
	}
}

// AppendIndices appends the elements of the set, in increasing order, to
// dst and returns the extended slice.  It is the allocation-conscious way
// to extract members into reusable scratch space.
func (b *Bitset) AppendIndices(dst []int) []int {
	b.ForEach(func(i int) bool {
		dst = append(dst, i)
		return true
	})
	return dst
}

// Indices returns the elements of the set in increasing order.
func (b *Bitset) Indices() []int {
	return b.AppendIndices(make([]int, 0, b.Count()))
}

// WordAt returns the w-th backing word.  It is exposed for the compressed
// bitmap encoder in package wah and for tests; most callers should use the
// logical operations instead.
func (b *Bitset) WordAt(w int) uint64 { return b.words[w] }

// SetWordAt overwrites the w-th backing word, re-establishing the trailing
// zero invariant on the final word.
func (b *Bitset) SetWordAt(w int, v uint64) {
	b.words[w] = v
	if w == len(b.words)-1 {
		b.trim()
	}
}

// String renders the set as {i, j, ...} for debugging.  Large sets are
// rendered in full; callers who only need a summary should use Count.
func (b *Bitset) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	b.ForEach(func(i int) bool {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d", i)
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}
