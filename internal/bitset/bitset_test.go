package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128, 1000} {
		b := New(n)
		if b.Len() != n {
			t.Errorf("New(%d).Len() = %d", n, b.Len())
		}
		if b.Any() {
			t.Errorf("New(%d) not empty", n)
		}
		if b.Count() != 0 {
			t.Errorf("New(%d).Count() = %d", n, b.Count())
		}
		if got := wordsFor(n); b.Words() != got {
			t.Errorf("New(%d).Words() = %d, want %d", n, b.Words(), got)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetTestClear(t *testing.T) {
	b := New(130)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		if b.Test(i) {
			t.Errorf("bit %d set in empty set", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if b.Count() != len(idx) {
		t.Errorf("Count = %d, want %d", b.Count(), len(idx))
	}
	for _, i := range idx {
		b.Clear(i)
		if b.Test(i) {
			t.Errorf("bit %d set after Clear", i)
		}
	}
	if b.Any() {
		t.Error("set not empty after clearing all")
	}
}

func TestFlip(t *testing.T) {
	b := New(70)
	b.Flip(69)
	if !b.Test(69) {
		t.Error("Flip did not set")
	}
	b.Flip(69)
	if b.Test(69) {
		t.Error("Flip did not clear")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(b *Bitset)
	}{
		{"Set-neg", func(b *Bitset) { b.Set(-1) }},
		{"Set-high", func(b *Bitset) { b.Set(64) }},
		{"Test-high", func(b *Bitset) { b.Test(100) }},
		{"Clear-neg", func(b *Bitset) { b.Clear(-5) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.fn(New(64))
		})
	}
}

func TestSetAllTrimInvariant(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 127, 129} {
		b := New(n)
		b.SetAll()
		if b.Count() != n {
			t.Errorf("n=%d: SetAll Count = %d", n, b.Count())
		}
		// The trailing word must be masked so whole-word ops stay exact.
		if max, ok := b.Max(); !ok || max != n-1 {
			t.Errorf("n=%d: Max = %d,%v", n, max, ok)
		}
	}
}

func TestNotRespectsUniverse(t *testing.T) {
	b := FromIndices(67, 1, 5, 66)
	c := New(67)
	c.Not(b)
	if c.Count() != 67-3 {
		t.Errorf("Not Count = %d, want 64", c.Count())
	}
	if c.Test(1) || c.Test(5) || c.Test(66) {
		t.Error("Not retained member bits")
	}
	if !c.Test(0) || !c.Test(65) {
		t.Error("Not missing complement bits")
	}
}

func TestBinaryOps(t *testing.T) {
	x := FromIndices(100, 1, 2, 3, 64, 65)
	y := FromIndices(100, 2, 3, 4, 65, 99)

	and := New(100)
	and.And(x, y)
	if want := FromIndices(100, 2, 3, 65); !and.Equal(want) {
		t.Errorf("And = %v", and)
	}

	or := New(100)
	or.Or(x, y)
	if want := FromIndices(100, 1, 2, 3, 4, 64, 65, 99); !or.Equal(want) {
		t.Errorf("Or = %v", or)
	}

	diff := New(100)
	diff.AndNot(x, y)
	if want := FromIndices(100, 1, 64); !diff.Equal(want) {
		t.Errorf("AndNot = %v", diff)
	}

	xor := New(100)
	xor.Xor(x, y)
	if want := FromIndices(100, 1, 4, 64, 99); !xor.Equal(want) {
		t.Errorf("Xor = %v", xor)
	}
}

func TestOpsAliasReceiver(t *testing.T) {
	x := FromIndices(80, 1, 10, 70)
	y := FromIndices(80, 10, 70, 79)
	x.And(x, y)
	if want := FromIndices(80, 10, 70); !x.Equal(want) {
		t.Errorf("aliased And = %v", x)
	}
}

func TestUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched universes did not panic")
		}
	}()
	New(64).And(New(64), New(65))
}

func TestIntersectsWithAndCount(t *testing.T) {
	x := FromIndices(200, 5, 100, 150)
	y := FromIndices(200, 6, 100, 199)
	if !x.IntersectsWith(y) {
		t.Error("IntersectsWith = false, want true")
	}
	if got := x.AndCount(y); got != 1 {
		t.Errorf("AndCount = %d, want 1", got)
	}
	z := FromIndices(200, 7, 101)
	if x.IntersectsWith(z) {
		t.Error("IntersectsWith = true, want false")
	}
	if got := x.AndCount(z); got != 0 {
		t.Errorf("AndCount = %d, want 0", got)
	}
}

func TestSubsetEqual(t *testing.T) {
	x := FromIndices(64, 1, 2)
	y := FromIndices(64, 1, 2, 3)
	if !x.IsSubsetOf(y) {
		t.Error("x ⊄ y")
	}
	if y.IsSubsetOf(x) {
		t.Error("y ⊂ x")
	}
	if !x.IsSubsetOf(x) {
		t.Error("x ⊄ x")
	}
	if x.Equal(y) {
		t.Error("x == y")
	}
	if x.Equal(FromIndices(65, 1, 2)) {
		t.Error("equal across universes")
	}
}

func TestNextSetIteration(t *testing.T) {
	b := FromIndices(300, 0, 63, 64, 128, 299)
	var got []int
	for i, ok := b.NextSet(0); ok; i, ok = b.NextSet(i + 1) {
		got = append(got, i)
	}
	want := []int{0, 63, 64, 128, 299}
	if len(got) != len(want) {
		t.Fatalf("NextSet walk = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NextSet walk = %v, want %v", got, want)
		}
	}
	if _, ok := b.NextSet(300); ok {
		t.Error("NextSet past universe returned ok")
	}
	if i, ok := b.NextSet(-7); !ok || i != 0 {
		t.Errorf("NextSet(-7) = %d,%v", i, ok)
	}
}

func TestMinMax(t *testing.T) {
	b := New(128)
	if _, ok := b.Min(); ok {
		t.Error("Min of empty returned ok")
	}
	if _, ok := b.Max(); ok {
		t.Error("Max of empty returned ok")
	}
	b.Set(17)
	b.Set(93)
	if v, ok := b.Min(); !ok || v != 17 {
		t.Errorf("Min = %d,%v", v, ok)
	}
	if v, ok := b.Max(); !ok || v != 93 {
		t.Errorf("Max = %d,%v", v, ok)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	b := FromIndices(64, 1, 2, 3, 4)
	n := 0
	b.ForEach(func(i int) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("ForEach visited %d, want 2", n)
	}
}

func TestIndicesAndString(t *testing.T) {
	b := FromIndices(70, 69, 3, 11)
	got := b.Indices()
	want := []int{3, 11, 69}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
	if s := b.String(); s != "{3, 11, 69}" {
		t.Errorf("String = %q", s)
	}
	if s := New(5).String(); s != "{}" {
		t.Errorf("empty String = %q", s)
	}
}

func TestCloneAndCopyFromIndependence(t *testing.T) {
	a := FromIndices(64, 1, 2)
	c := a.Clone()
	c.Set(3)
	if a.Test(3) {
		t.Error("Clone shares storage")
	}
	d := New(64)
	d.CopyFrom(a)
	if !d.Equal(a) {
		t.Error("CopyFrom mismatch")
	}
	d.Clear(1)
	if !a.Test(1) {
		t.Error("CopyFrom shares storage")
	}
}

func TestSetWordAtTrims(t *testing.T) {
	b := New(65) // two words, second has 1 valid bit
	b.SetWordAt(1, ^uint64(0))
	if b.Count() != 1 {
		t.Errorf("Count after raw word write = %d, want 1", b.Count())
	}
}

// reference is a map-based model used to cross-check the bit operations.
type reference map[int]bool

func refFrom(b *Bitset) reference {
	r := reference{}
	b.ForEach(func(i int) bool { r[i] = true; return true })
	return r
}

// TestRandomizedAgainstReference drives random operation sequences against
// both the Bitset and a map model, checking they stay in lockstep.
func TestRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	const n = 257
	b := New(n)
	ref := reference{}
	for step := 0; step < 20000; step++ {
		i := rng.Intn(n)
		switch rng.Intn(4) {
		case 0:
			b.Set(i)
			ref[i] = true
		case 1:
			b.Clear(i)
			delete(ref, i)
		case 2:
			if b.Test(i) != ref[i] {
				t.Fatalf("step %d: Test(%d) = %v, ref %v", step, i, b.Test(i), ref[i])
			}
		case 3:
			if b.Count() != len(ref) {
				t.Fatalf("step %d: Count = %d, ref %d", step, b.Count(), len(ref))
			}
		}
	}
	if got := refFrom(b); len(got) != len(ref) {
		t.Fatalf("final mismatch: %d vs %d members", len(got), len(ref))
	}
}

// TestQuickAndCommutes property: And(x,y) == And(y,x) and AndCount agrees
// with the materialized intersection, for random 128-bit universes.
func TestQuickAndCommutes(t *testing.T) {
	f := func(xw, yw [2]uint64) bool {
		x, y := New(128), New(128)
		x.SetWordAt(0, xw[0])
		x.SetWordAt(1, xw[1])
		y.SetWordAt(0, yw[0])
		y.SetWordAt(1, yw[1])
		xy, yx := New(128), New(128)
		xy.And(x, y)
		yx.And(y, x)
		if !xy.Equal(yx) {
			return false
		}
		if xy.Count() != x.AndCount(y) {
			return false
		}
		return xy.Any() == x.IntersectsWith(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickDeMorgan property: ¬(x ∪ y) == ¬x ∩ ¬y over a 100-bit universe
// (exercises the trailing-word trim).
func TestQuickDeMorgan(t *testing.T) {
	f := func(xw, yw [2]uint64) bool {
		x, y := New(100), New(100)
		x.SetWordAt(0, xw[0])
		x.SetWordAt(1, xw[1])
		y.SetWordAt(0, yw[0])
		y.SetWordAt(1, yw[1])
		left := New(100)
		left.Or(x, y)
		left.Not(left)
		nx, ny := New(100), New(100)
		nx.Not(x)
		ny.Not(y)
		right := New(100)
		right.And(nx, ny)
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickSubsetAfterAnd property: x∩y ⊆ x and x∩y ⊆ y.
func TestQuickSubsetAfterAnd(t *testing.T) {
	f := func(xw, yw uint64) bool {
		x, y := New(64), New(64)
		x.SetWordAt(0, xw)
		y.SetWordAt(0, yw)
		z := New(64)
		z.And(x, y)
		return z.IsSubsetOf(x) && z.IsSubsetOf(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoolReuse(t *testing.T) {
	p := NewPool(128)
	if p.UniverseLen() != 128 {
		t.Fatalf("UniverseLen = %d", p.UniverseLen())
	}
	b := p.Get()
	b.Set(5)
	p.Put(b)
	c := p.Get()
	if c.Any() {
		t.Error("pooled Bitset not cleared by Get")
	}
	p.Put(c)
	d := p.GetNoClear()
	d.And(FromIndices(128, 1), FromIndices(128, 1)) // full overwrite
	if d.Count() != 1 || !d.Test(1) {
		t.Error("GetNoClear + And produced wrong contents")
	}
	p.Put(nil) // must not panic
}

func TestPoolForeignPut(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Put of foreign universe did not panic")
		}
	}()
	NewPool(64).Put(New(65))
}

func BenchmarkAnd12422(b *testing.B) {
	// Universe sized to the paper's 12,422-vertex microarray graphs.
	x, y := New(12422), New(12422)
	for i := 0; i < 12422; i += 7 {
		x.Set(i)
	}
	for i := 0; i < 12422; i += 11 {
		y.Set(i)
	}
	z := New(12422)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.And(x, y)
	}
}

func BenchmarkIntersectsWith12422(b *testing.B) {
	x, y := New(12422), New(12422)
	x.Set(12421)
	y.Set(12420)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if x.IntersectsWith(y) {
			b.Fatal("unexpected intersection")
		}
	}
}
