package bitset

import "math/bits"

// Fused intersect-and-test kernels.  The enumerator's maximality probe —
// BitOneExists(BitAND(...)) in the paper's pseudocode — does not need the
// intersection materialized: these kernels answer the existence question
// in one pass over the operands, early-exiting on the first nonzero
// word, and write nothing.  The word loops test four words per iteration
// (OR-combined so the branch is per-block, not per-word); the tail-word
// invariant ("words beyond the last valid bit stay zero") means no
// masking is ever needed.

// AndAny reports whether x ∩ y is non-empty without materializing the
// intersection.  Equivalent to x.IntersectsWith(y).
//
//repro:hotpath
func AndAny(x, y *Bitset) bool {
	x.mustMatch(y)
	xw, yw := x.words, y.words
	for len(xw) >= 4 && len(yw) >= 4 {
		if xw[0]&yw[0]|xw[1]&yw[1]|xw[2]&yw[2]|xw[3]&yw[3] != 0 {
			return true
		}
		xw, yw = xw[4:], yw[4:]
	}
	for i := range xw {
		if xw[i]&yw[i] != 0 {
			return true
		}
	}
	return false
}

// AndAny3 reports whether x ∩ y ∩ z is non-empty in a single fused pass.
// This is the join's maximality probe without the candidate-intersection
// materialize: where the enumerator would compute tmp = x AND y and then
// ask tmp.IntersectsWith(z), AndAny3 answers directly, touching each
// operand word at most once and exiting on the first witness block.
//
//repro:hotpath
func AndAny3(x, y, z *Bitset) bool {
	x.mustMatch(y)
	x.mustMatch(z)
	xw, yw, zw := x.words, y.words, z.words
	for len(xw) >= 4 && len(yw) >= 4 && len(zw) >= 4 {
		if xw[0]&yw[0]&zw[0]|xw[1]&yw[1]&zw[1]|xw[2]&yw[2]&zw[2]|xw[3]&yw[3]&zw[3] != 0 {
			return true
		}
		xw, yw, zw = xw[4:], yw[4:], zw[4:]
	}
	for i := range xw {
		if xw[i]&yw[i]&zw[i] != 0 {
			return true
		}
	}
	return false
}

// AndNotAny reports whether x \ y is non-empty (some element of x is not
// in y) without materializing the difference.  Equivalent to
// !x.IsSubsetOf(y).
//
//repro:hotpath
func AndNotAny(x, y *Bitset) bool {
	x.mustMatch(y)
	xw, yw := x.words, y.words
	for len(xw) >= 4 && len(yw) >= 4 {
		if xw[0]&^yw[0]|xw[1]&^yw[1]|xw[2]&^yw[2]|xw[3]&^yw[3] != 0 {
			return true
		}
		xw, yw = xw[4:], yw[4:]
	}
	for i := range xw {
		if xw[i]&^yw[i] != 0 {
			return true
		}
	}
	return false
}

// RangeAndAny reports whether x ∩ y contains any element in [start, end).
// Bounds are clipped to the universe.  It exists for the compressed row
// probe: a WAH fill-1 run covers a bit range, and the question "does the
// run meet x ∩ y" is exactly a ranged AndAny over the dense operands.
//
//repro:hotpath
func RangeAndAny(x, y *Bitset, start, end int) bool {
	x.mustMatch(y)
	if start < 0 {
		start = 0
	}
	if end > x.n {
		end = x.n
	}
	if start >= end {
		return false
	}
	sw, ew := start>>wordShift, (end-1)>>wordShift
	startMask := ^uint64(0) << uint(start&wordMask)
	endMask := ^uint64(0) >> uint(wordBits-1-(end-1)&wordMask)
	if sw == ew {
		return x.words[sw]&y.words[sw]&startMask&endMask != 0
	}
	if x.words[sw]&y.words[sw]&startMask != 0 {
		return true
	}
	for i := sw + 1; i < ew; i++ {
		if x.words[i]&y.words[i] != 0 {
			return true
		}
	}
	return x.words[ew]&y.words[ew]&endMask != 0
}

// AndCount3 returns |x ∩ y ∩ z| in a single fused pass.  Plain indexed
// loop for the same reason as Bitset.AndCount: the multi-slice unroll
// measures slower than one bounds-checked stream.
//
//repro:hotpath
func AndCount3(x, y, z *Bitset) int {
	x.mustMatch(y)
	x.mustMatch(z)
	yw, zw := y.words, z.words
	c := 0
	for i, w := range x.words {
		c += bits.OnesCount64(w & yw[i] & zw[i])
	}
	return c
}
