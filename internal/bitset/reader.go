package bitset

// Reader is the read-only row-access contract of the pluggable
// graph-representation layer: every adjacency backend (dense bitmap, CSR,
// WAH-compressed) hands its rows to the algorithms through this
// interface.  A dense *Bitset is its own Reader; sparse and compressed
// rows implement the same operations over their native encodings, so the
// bitmap algebra of the Clique Enumerator (AND, fused AND-any, popcount)
// runs without densifying a row unless the caller asks for it.
//
// The dense operand of the binary operations is always a *Bitset: the
// enumeration state (common-neighbor bitmaps, candidate sets) stays dense
// regardless of how the graph stores adjacency, which is what keeps the
// hot loops word-parallel.
type Reader interface {
	// Len returns the universe size in bits.
	Len() int
	// Count returns the number of set bits (the row's degree).
	Count() int
	// Test reports whether bit i is set.
	Test(i int) bool
	// ForEach calls fn for every set bit in increasing order; returning
	// false stops the iteration.
	ForEach(fn func(i int) bool)
	// IntersectsWith reports whether the row shares any bit with o — the
	// paper's fused BitAND + BitOneExists maximality probe.
	IntersectsWith(o *Bitset) bool
	// AndAnyWith reports whether row ∩ x ∩ o is non-empty: the join's
	// maximality probe with the candidate-intersection materialize fused
	// away.  Where a caller would compute tmp = x AND o and then ask
	// row.IntersectsWith(tmp), AndAnyWith answers in one pass over the
	// row's native encoding and early-exits on the first witness.
	AndAnyWith(x, o *Bitset) bool
	// AndCount returns the size of the intersection with o.
	AndCount(o *Bitset) int
	// AndInto overwrites dst with row AND o.  dst must share the
	// universe and must not alias o.
	AndInto(dst, o *Bitset)
	// IntersectInto replaces dst with dst AND row, in place.
	IntersectInto(dst *Bitset)
}

// Compile-time check: a dense Bitset is its own Reader.
var _ Reader = (*Bitset)(nil)

// AndAnyWith reports whether b ∩ x ∩ o is non-empty (Reader form of the
// fused three-way probe).
//
//repro:hotpath
func (b *Bitset) AndAnyWith(x, o *Bitset) bool { return AndAny3(b, x, o) }

// AndInto overwrites dst with b AND o (Reader form of And).
//
//repro:hotpath
func (b *Bitset) AndInto(dst, o *Bitset) { dst.And(b, o) }

// IntersectInto replaces dst with dst AND b, in place.
//
//repro:hotpath
func (b *Bitset) IntersectInto(dst *Bitset) { dst.And(dst, b) }
