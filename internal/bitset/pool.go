package bitset

import "sync"

// Pool recycles Bitsets of a single universe size.  The Clique Enumerator
// allocates one common-neighbor bitmap per sub-list per level; on genome-
// scale graphs that is millions of short-lived ceil(n/8)-byte buffers, so
// reuse matters.  A Pool is safe for concurrent use by multiple
// goroutines, matching the paper's multithreaded setting where worker
// threads create and free sub-lists independently.
type Pool struct {
	n    int
	pool sync.Pool
}

// NewPool returns a pool of Bitsets over the universe [0, n).
func NewPool(n int) *Pool {
	p := &Pool{n: n}
	p.pool.New = func() any { return New(n) }
	return p
}

// UniverseLen returns the universe size of Bitsets managed by the pool.
func (p *Pool) UniverseLen() int { return p.n }

// Get returns an empty Bitset over [0, n).  The caller owns it until Put.
func (p *Pool) Get() *Bitset {
	b := p.pool.Get().(*Bitset)
	b.ClearAll()
	return b
}

// GetNoClear returns a Bitset whose contents are unspecified; callers that
// immediately overwrite every word (e.g. via And) can skip the clearing
// pass that Get performs.
func (p *Pool) GetNoClear() *Bitset {
	return p.pool.Get().(*Bitset)
}

// Put returns b to the pool.  b must have been created by this pool or
// share its universe size; nil is ignored.
func (p *Pool) Put(b *Bitset) {
	if b == nil {
		return
	}
	if b.n != p.n {
		panic("bitset: Put of foreign-universe Bitset")
	}
	p.pool.Put(b)
}
