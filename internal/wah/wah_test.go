package wah

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
)

func randomBitset(rng *rand.Rand, n int, density float64) *bitset.Bitset {
	b := bitset.New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			b.Set(i)
		}
	}
	return b
}

func TestRoundTripEmpty(t *testing.T) {
	for _, n := range []int{0, 1, 62, 63, 64, 126, 127, 1000} {
		src := bitset.New(n)
		bm := Compress(src)
		if got := bm.Decompress(); !got.Equal(src) {
			t.Errorf("n=%d: empty round trip failed", n)
		}
		if bm.Any() {
			t.Errorf("n=%d: Any on empty = true", n)
		}
		if bm.Count() != 0 {
			t.Errorf("n=%d: Count on empty = %d", n, bm.Count())
		}
	}
}

func TestRoundTripFull(t *testing.T) {
	for _, n := range []int{1, 62, 63, 64, 125, 126, 127, 189, 1000} {
		src := bitset.New(n)
		src.SetAll()
		bm := Compress(src)
		if got := bm.Decompress(); !got.Equal(src) {
			t.Errorf("n=%d: full round trip failed", n)
		}
		if bm.Count() != n {
			t.Errorf("n=%d: Count = %d, want %d", n, bm.Count(), n)
		}
		if !bm.Any() {
			t.Errorf("n=%d: Any = false", n)
		}
	}
}

func TestRoundTripRandomDensities(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, density := range []float64{0.0001, 0.001, 0.01, 0.1, 0.5, 0.9, 0.999} {
		for _, n := range []int{63, 64, 100, 500, 4096, 12422} {
			src := randomBitset(rng, n, density)
			bm := Compress(src)
			if got := bm.Decompress(); !got.Equal(src) {
				t.Fatalf("n=%d density=%g: round trip failed", n, density)
			}
			if bm.Count() != src.Count() {
				t.Fatalf("n=%d density=%g: Count = %d, want %d",
					n, density, bm.Count(), src.Count())
			}
			if bm.Any() != src.Any() {
				t.Fatalf("n=%d density=%g: Any mismatch", n, density)
			}
		}
	}
}

func TestSparseCompressionWins(t *testing.T) {
	// A genome-scale sparse neighborhood: 12,422 vertices, ~48 neighbors
	// clustered into a few co-expressed modules (the realistic shape for
	// thresholded correlation graphs).
	src := bitset.New(12422)
	for _, base := range []int{300, 5000, 11000} {
		for i := 0; i < 16; i++ {
			src.Set(base + i)
		}
	}
	bm := Compress(src)
	if r := bm.CompressionRatio(); r < 5 {
		t.Errorf("compression ratio %.2f on clustered sparse input, want >= 5", r)
	}
	if bm.UncompressedBytes() != (12422+63)/64*8 {
		t.Errorf("UncompressedBytes = %d", bm.UncompressedBytes())
	}
}

func TestAndMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		x := randomBitset(rng, n, []float64{0.001, 0.05, 0.5, 0.95}[trial%4])
		y := randomBitset(rng, n, []float64{0.5, 0.001, 0.95, 0.05}[trial%4])
		want := bitset.New(n)
		want.And(x, y)

		got := And(Compress(x), Compress(y)).Decompress()
		if !got.Equal(want) {
			t.Fatalf("trial %d n=%d: compressed And mismatch", trial, n)
		}
		if AndAny(Compress(x), Compress(y)) != want.Any() {
			t.Fatalf("trial %d n=%d: AndAny mismatch", trial, n)
		}
	}
}

func TestAndLongFillRuns(t *testing.T) {
	// Force the fill-vs-fill fast path with megabit runs.
	n := 63 * 5000
	x, y := bitset.New(n), bitset.New(n)
	x.SetAll()
	for i := 200000; i < 200100; i++ {
		y.Set(i)
	}
	want := bitset.New(n)
	want.And(x, y)
	got := And(Compress(x), Compress(y))
	if !got.Decompress().Equal(want) {
		t.Fatal("fill-run And mismatch")
	}
	if got.CompressedWords() > 16 {
		t.Errorf("result uses %d words; fills not coalesced", got.CompressedWords())
	}
	if !AndAny(Compress(x), Compress(y)) {
		t.Error("AndAny = false, want true")
	}
}

func TestAndAnyFillIntersection(t *testing.T) {
	n := 63 * 100
	x, y := bitset.New(n), bitset.New(n)
	x.SetAll()
	y.SetAll()
	if !AndAny(Compress(x), Compress(y)) {
		t.Error("two all-ones maps do not intersect?")
	}
	y.ClearAll()
	if AndAny(Compress(x), Compress(y)) {
		t.Error("ones ∩ zeros reported non-empty")
	}
}

func TestUniverseMismatchPanics(t *testing.T) {
	x := Compress(bitset.New(64))
	y := Compress(bitset.New(65))
	for name, fn := range map[string]func(){
		"And":    func() { And(x, y) },
		"AndAny": func() { AndAny(x, y) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched universes did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestQuickRoundTrip property: Compress then Decompress is the identity on
// arbitrary 3-word (192-bit) universes.
func TestQuickRoundTrip(t *testing.T) {
	f := func(w [3]uint64) bool {
		src := bitset.New(190)
		for i, v := range w {
			src.SetWordAt(i, v)
		}
		return Compress(src).Decompress().Equal(src)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickAndHomomorphism property: Compress(x AND y) has the same
// logical contents as And(Compress(x), Compress(y)).
func TestQuickAndHomomorphism(t *testing.T) {
	f := func(xw, yw [3]uint64) bool {
		x, y := bitset.New(190), bitset.New(190)
		for i := range xw {
			x.SetWordAt(i, xw[i])
			y.SetWordAt(i, yw[i])
		}
		dense := bitset.New(190)
		dense.And(x, y)
		compressed := And(Compress(x), Compress(y))
		return compressed.Decompress().Equal(dense) &&
			compressed.Count() == dense.Count() &&
			AndAny(Compress(x), Compress(y)) == dense.Any()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompressSparse12422(b *testing.B) {
	src := bitset.New(12422)
	for i := 0; i < 12422; i += 200 {
		src.Set(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compress(src)
	}
}

func BenchmarkAndAnyCompressedSparse(b *testing.B) {
	x, y := bitset.New(12422), bitset.New(12422)
	for i := 0; i < 12422; i += 151 {
		x.Set(i)
	}
	for i := 1; i < 12422; i += 173 {
		y.Set(i)
	}
	cx, cy := Compress(x), Compress(y)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AndAny(cx, cy)
	}
}
