// Package wah implements Word-Aligned Hybrid (WAH) compressed bitmaps.
//
// The conclusions of Zhang et al. (SC 2005) observe that the sparsity of
// the bitmap memory index "can potentially provide high compression rate
// and allow for bitwise operations to be performed on the compressed
// data", and state that work in that direction is underway.  This package
// is that extension: a 64-bit WAH codec whose AND operates directly on the
// compressed form, so common-neighbor bitmaps of sparse genome-scale
// graphs can be stored and intersected without decompression.
//
// Encoding: the logical bit string is split into 63-bit groups.  Each
// group is stored either as a literal word (MSB = 0, low 63 bits payload)
// or folded into a fill word (MSB = 1; bit 62 = fill bit value; low 62
// bits = run length in groups).  This is the classic WAH layout of Wu,
// Otoo and Shoshani, adapted to 64-bit words.
package wah

import (
	"fmt"
	"math/bits"

	"repro/internal/bitset"
)

const (
	groupBits = 63 // payload bits per word
	flagBit   = uint64(1) << 63
	fillBit   = uint64(1) << 62
	countMask = fillBit - 1 // low 62 bits: run length in groups
	litMask   = flagBit - 1 // low 63 bits: literal payload
)

// Bitmap is an immutable WAH-compressed bitmap over a fixed universe.
// Build one with Compress or a Builder.
type Bitmap struct {
	words []uint64
	n     int // universe size in bits
}

// Len returns the universe size in bits.
func (b *Bitmap) Len() int { return b.n }

// CompressedWords returns the number of physical 64-bit words used.
func (b *Bitmap) CompressedWords() int { return len(b.words) }

// CompressedBytes returns the physical storage footprint in bytes.
func (b *Bitmap) CompressedBytes() int { return len(b.words) * 8 }

// UncompressedBytes returns the size a dense bitset over the same
// universe would occupy, for compression-ratio reporting.
func (b *Bitmap) UncompressedBytes() int { return (b.n + 63) / 64 * 8 }

// CompressionRatio returns uncompressed/compressed size; >1 means WAH won.
func (b *Bitmap) CompressionRatio() float64 {
	if len(b.words) == 0 {
		return 1
	}
	return float64(b.UncompressedBytes()) / float64(b.CompressedBytes())
}

func groupsFor(n int) int { return (n + groupBits - 1) / groupBits }

// Builder accumulates 63-bit groups into WAH form.
type Builder struct {
	words []uint64
	n     int
}

// append adds one 63-bit group (payload in the low 63 bits).
func (bd *Builder) append(group uint64) {
	switch group {
	case 0:
		bd.appendFill(0, 1)
	case litMask:
		bd.appendFill(1, 1)
	default:
		bd.words = append(bd.words, group)
	}
	bd.n += groupBits
}

func (bd *Builder) appendFill(bit uint64, count uint64) {
	if count == 0 {
		return
	}
	if k := len(bd.words); k > 0 {
		last := bd.words[k-1]
		if last&flagBit != 0 && (last&fillBit != 0) == (bit != 0) {
			run := last & countMask
			if run+count <= countMask {
				bd.words[k-1] = flagBit | (bit * fillBit) | (run + count)
				return
			}
		}
	}
	bd.words = append(bd.words, flagBit|(bit*fillBit)|count)
}

// Compress converts a dense bitset into WAH form.
func Compress(src *bitset.Bitset) *Bitmap {
	n := src.Len()
	bd := &Builder{}
	g := groupsFor(n)
	for gi := 0; gi < g; gi++ {
		bd.append(extractGroup(src, gi))
	}
	return &Bitmap{words: bd.words, n: n}
}

// extractGroup pulls the gi-th 63-bit group out of a dense bitset.
func extractGroup(src *bitset.Bitset, gi int) uint64 {
	startBit := gi * groupBits
	w := startBit >> 6
	off := uint(startBit & 63)
	var v uint64
	v = src.WordAt(w) >> off
	if off != 0 && w+1 < src.Words() {
		v |= src.WordAt(w+1) << (64 - off)
	}
	return v & litMask
}

// Decompress expands the bitmap into a fresh dense bitset.
func (b *Bitmap) Decompress() *bitset.Bitset {
	out := bitset.New(b.n)
	b.decompressInto(out)
	return out
}

// DecompressInto expands the bitmap into dst, which must share the
// universe size; dst is overwritten.  It exists so hot loops (the
// compressed-bitmap enumeration mode) can reuse scratch storage.
func (b *Bitmap) DecompressInto(dst *bitset.Bitset) {
	if dst.Len() != b.n {
		panic(fmt.Sprintf("wah: DecompressInto universe %d, want %d", dst.Len(), b.n))
	}
	dst.ClearAll()
	b.decompressInto(dst)
}

func (b *Bitmap) decompressInto(out *bitset.Bitset) {
	gi := 0
	for _, w := range b.words {
		if w&flagBit != 0 {
			run := int(w & countMask)
			if w&fillBit != 0 {
				for r := 0; r < run; r++ {
					writeGroup(out, gi+r, litMask)
				}
			}
			gi += run
			continue
		}
		writeGroup(out, gi, w&litMask)
		gi++
	}
}

// writeGroup ORs a 63-bit group into a dense bitset at group index gi,
// clipping to the universe.
func writeGroup(dst *bitset.Bitset, gi int, group uint64) {
	if group == 0 {
		return
	}
	base := gi * groupBits
	for g := group; g != 0; g &= g - 1 {
		i := base + bits.TrailingZeros64(g)
		if i >= dst.Len() {
			break
		}
		dst.Set(i)
	}
}

// Test reports whether bit i is set, walking the compressed form.  It is
// O(compressed words); row-access paths that probe many bits of one
// bitmap should DecompressInto scratch instead.
func (b *Bitmap) Test(i int) bool {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("wah: index %d out of range [0,%d)", i, b.n))
	}
	target := i / groupBits
	off := uint(i % groupBits)
	gi := 0
	for _, w := range b.words {
		if w&flagBit != 0 {
			run := int(w & countMask)
			if target < gi+run {
				return w&fillBit != 0
			}
			gi += run
			continue
		}
		if gi == target {
			return w&(1<<off) != 0
		}
		gi++
	}
	return false
}

// ForEach calls fn for every set bit in increasing order, walking the
// compressed form; returning false stops the iteration.  Indices beyond
// the universe (padding bits of the final group) are never produced.
func (b *Bitmap) ForEach(fn func(i int) bool) {
	gi := 0
	for _, w := range b.words {
		if w&flagBit != 0 {
			run := int(w & countMask)
			if w&fillBit != 0 {
				for r := 0; r < run; r++ {
					base := (gi + r) * groupBits
					for off := 0; off < groupBits; off++ {
						i := base + off
						if i >= b.n {
							return
						}
						if !fn(i) {
							return
						}
					}
				}
			}
			gi += run
			continue
		}
		base := gi * groupBits
		for g := w & litMask; g != 0; g &= g - 1 {
			i := base + bits.TrailingZeros64(g)
			if i >= b.n {
				return
			}
			if !fn(i) {
				return
			}
		}
		gi++
	}
}

// Count returns the number of set bits, computed on the compressed form.
func (b *Bitmap) Count() int {
	c := 0
	gi := 0
	lastGroup := groupsFor(b.n) - 1
	tailBits := b.n - lastGroup*groupBits
	for _, w := range b.words {
		if w&flagBit != 0 {
			run := int(w & countMask)
			if w&fillBit != 0 {
				// Full groups of 63 ones; the final group of the universe
				// may be partial.
				for r := 0; r < run; r++ {
					if gi+r == lastGroup {
						c += tailBits
					} else {
						c += groupBits
					}
				}
			}
			gi += run
			continue
		}
		c += bits.OnesCount64(w & litMask)
		gi++
	}
	return c
}

// Any reports whether any bit is set, computed on the compressed form.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w&flagBit != 0 {
			if w&fillBit != 0 && w&countMask > 0 {
				return true
			}
			continue
		}
		if w&litMask != 0 {
			return true
		}
	}
	return false
}

// AndAnyDense reports whether b ∩ o is non-empty, walking the compressed
// stream directly against the dense operand: fill-0 runs are skipped
// outright, fill-1 runs reduce to a ranged any-probe of o, and literal
// groups AND against the matching 63-bit window of o.  No decode buffer
// is touched.
//
//repro:hotpath
func (b *Bitmap) AndAnyDense(o *bitset.Bitset) bool {
	if o.Len() != b.n {
		panicOperandUniverse(o.Len(), b.n)
	}
	gi := 0
	for _, w := range b.words {
		if w&flagBit != 0 {
			run := int(w & countMask)
			if w&fillBit != 0 && bitset.RangeAndAny(o, o, gi*groupBits, (gi+run)*groupBits) {
				return true
			}
			gi += run
			continue
		}
		if w&litMask&extractGroup(o, gi) != 0 {
			return true
		}
		gi++
	}
	return false
}

// AndAnyDense2 reports whether b ∩ x ∩ o is non-empty in one pass over
// the compressed stream — the three-way maximality probe with both the
// decode and the candidate-intersection materialize fused away.
//
//repro:hotpath
func (b *Bitmap) AndAnyDense2(x, o *bitset.Bitset) bool {
	if x.Len() != b.n {
		panicOperandUniverse(x.Len(), b.n)
	}
	if o.Len() != b.n {
		panicOperandUniverse(o.Len(), b.n)
	}
	gi := 0
	for _, w := range b.words {
		if w&flagBit != 0 {
			run := int(w & countMask)
			if w&fillBit != 0 && bitset.RangeAndAny(x, o, gi*groupBits, (gi+run)*groupBits) {
				return true
			}
			gi += run
			continue
		}
		if w&litMask&extractGroup(x, gi)&extractGroup(o, gi) != 0 {
			return true
		}
		gi++
	}
	return false
}

// decoder walks a WAH word stream group-by-group without materializing.
type decoder struct {
	words []uint64
	pos   int    // index into words
	run   uint64 // groups remaining in current fill
	fill  uint64 // current fill payload (0 or litMask)
}

// next returns the next 63-bit group.  Callers must not read past the end.
func (d *decoder) next() uint64 {
	if d.run > 0 {
		d.run--
		return d.fill
	}
	w := d.words[d.pos]
	d.pos++
	if w&flagBit != 0 {
		d.run = w & countMask
		if w&fillBit != 0 {
			d.fill = litMask
		} else {
			d.fill = 0
		}
		d.run--
		return d.fill
	}
	return w & litMask
}

// panicOperandUniverse reports a dense operand whose universe does not
// match the bitmap's.  It lives out of line so the fused probes carry no
// fmt boxing on their hotalloc-pinned paths.
func panicOperandUniverse(got, want int) {
	panic(fmt.Sprintf("wah: operand universe %d, want %d", got, want))
}

// And intersects two compressed bitmaps directly in compressed space and
// returns the compressed result.  The operands must share a universe.
func And(x, y *Bitmap) *Bitmap {
	if x.n != y.n {
		panic(fmt.Sprintf("wah: universe mismatch %d vs %d", x.n, y.n))
	}
	dx := decoder{words: x.words}
	dy := decoder{words: y.words}
	bd := &Builder{}
	g := groupsFor(x.n)
	for gi := 0; gi < g; gi++ {
		// Fast path: both sides inside a fill run.
		if dx.run > 0 && dy.run > 0 {
			run := dx.run
			if dy.run < run {
				run = dy.run
			}
			remaining := uint64(g - gi)
			if run > remaining {
				run = remaining
			}
			var fill uint64
			if dx.fill&dy.fill != 0 {
				fill = 1
			}
			bd.appendFill(fill, run)
			bd.n += int(run-1) * groupBits
			dx.run -= run
			dy.run -= run
			gi += int(run) - 1
			continue
		}
		bd.append(dx.next() & dy.next())
	}
	return &Bitmap{words: bd.words, n: x.n}
}

// AndAny reports whether the intersection of x and y is non-empty without
// building the result: the paper's fused maximality probe, on compressed
// data.
func AndAny(x, y *Bitmap) bool {
	if x.n != y.n {
		panic(fmt.Sprintf("wah: universe mismatch %d vs %d", x.n, y.n))
	}
	dx := decoder{words: x.words}
	dy := decoder{words: y.words}
	g := groupsFor(x.n)
	for gi := 0; gi < g; gi++ {
		if dx.run > 0 && dy.run > 0 {
			if dx.fill&dy.fill != 0 {
				return true
			}
			run := dx.run
			if dy.run < run {
				run = dy.run
			}
			remaining := uint64(g - gi)
			if run > remaining {
				run = remaining
			}
			dx.run -= run
			dy.run -= run
			gi += int(run) - 1
			continue
		}
		if dx.next()&dy.next() != 0 {
			return true
		}
	}
	return false
}
