package enumcfg

import (
	"strings"
	"testing"
)

// TestNormalizeMatrix is the table-driven accept/reject matrix over
// every validation branch of Normalize, including the hybrid/spillover
// rules.  Each reject case names a fragment the error must contain, so
// a rule cannot silently start firing for the wrong reason.
func TestNormalizeMatrix(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string  // "" = accept
		backend Backend // checked on accept
	}{
		// --- defaults and universal rules ---
		{"zero value", Config{}, "", Sequential},
		{"explicit bounds", Config{Lo: 3, Hi: 10}, "", Sequential},
		{"lo below one", Config{Lo: -1}, "Lo", 0},
		{"hi below lo", Config{Lo: 5, Hi: 3}, "Hi", 0},
		{"negative workers", Config{Workers: -2}, "workers", 0},
		{"unknown mode", Config{Mode: CNCompress + 1}, "CN mode", 0},
		{"unknown strategy", Config{Strategy: Affinity + 1}, "strategy", 0},
		{"negative memory budget", Config{MemoryBudget: -5}, "negative memory budget", 0},

		// --- worker/barrier selection ---
		{"parallel", Config{Workers: 4}, "", Parallel},
		{"barrier", Config{Workers: 4, Barrier: true}, "", ParallelBarrier},
		{"barrier without workers", Config{Barrier: true}, "barrier backend requires", 0},

		// --- in-core budgets (governor-enforced everywhere) ---
		{"sequential budget", Config{MemoryBudget: 1 << 20}, "", Sequential},
		{"parallel budget", Config{Workers: 4, MemoryBudget: 1 << 20}, "", Parallel},
		{"barrier budget", Config{Workers: 4, Barrier: true, MemoryBudget: 1 << 20}, "", ParallelBarrier},

		// --- report-small ---
		{"sequential report-small", Config{ReportSmall: true}, "", Sequential},
		{"parallel report-small", Config{Workers: 2, ReportSmall: true}, "ReportSmall", 0},
		{"ooc report-small", Config{Dir: "d", ReportSmall: true}, "ReportSmall", 0},

		// --- out-of-core knob dependencies ---
		{"ooc", Config{Dir: "d"}, "", OutOfCore},
		{"ooc workers", Config{Dir: "d", Workers: 4}, "", OutOfCore},
		{"ooc compress", Config{Dir: "d", OOCCompress: true}, "", OutOfCore},
		{"ooc checkpoint", Config{Dir: "d", Checkpoint: true}, "", OutOfCore},
		{"ooc resume", Config{Dir: "d", Resume: true}, "", OutOfCore},
		{"compress without dir", Config{OOCCompress: true}, "require a spill Dir", 0},
		{"checkpoint without dir", Config{Checkpoint: true}, "require a spill Dir", 0},
		{"resume without dir", Config{Resume: true}, "require a spill Dir", 0},
		{"ooc low-memory", Config{Dir: "d", Mode: CNRecompute}, "meaningless out of core", 0},
		{"ooc compressed bitmaps", Config{Dir: "d", Mode: CNCompress}, "meaningless out of core", 0},
		{"ooc barrier", Config{Dir: "d", Workers: 4, Barrier: true}, "in-core only", 0},

		// --- hybrid / spillover ---
		{"implied hybrid", Config{Dir: "d", MemoryBudget: 1 << 20}, "", Hybrid},
		{"explicit spillover", Config{Dir: "d", Spill: true, MemoryBudget: 1 << 20}, "", Hybrid},
		{"hybrid parallel", Config{Dir: "d", MemoryBudget: 1 << 20, Workers: 4}, "", Hybrid},
		{"hybrid compress", Config{Dir: "d", MemoryBudget: 1 << 20, OOCCompress: true}, "", Hybrid},
		{"hybrid low-memory", Config{Dir: "d", MemoryBudget: 1 << 20, Mode: CNRecompute}, "", Hybrid},
		{"hybrid report-small sequential", Config{Dir: "d", MemoryBudget: 1 << 20, ReportSmall: true}, "", Hybrid},
		{"hybrid report-small parallel", Config{Dir: "d", MemoryBudget: 1 << 20, Workers: 2, ReportSmall: true},
			"sequential in-core phase", 0},
		{"spillover without dir", Config{Spill: true, MemoryBudget: 1 << 20}, "requires a spill Dir", 0},
		{"spillover without budget", Config{Dir: "d", Spill: true}, "requires a MemoryBudget", 0},
		{"resume plus spillover", Config{Dir: "d", Spill: true, Resume: true, MemoryBudget: 1 << 20},
			"spillover does not apply", 0},
		{"resume plus budget", Config{Dir: "d", Resume: true, MemoryBudget: 1 << 20},
			"budget does not apply", 0},
		{"hybrid barrier", Config{Dir: "d", MemoryBudget: 1 << 20, Workers: 4, Barrier: true},
			"cannot spill over", 0},
		{"hybrid checkpoint", Config{Dir: "d", MemoryBudget: 1 << 20, Checkpoint: true},
			"out-of-core run from the start", 0},

		// --- distributed ---
		{"distributed", Config{Dir: "d", DistWorkers: 4}, "", Distributed},
		{"distributed one worker", Config{Dir: "d", DistWorkers: 1}, "", Distributed},
		{"distributed compress", Config{Dir: "d", DistWorkers: 2, OOCCompress: true}, "", Distributed},
		{"distributed knobs", Config{Dir: "d", DistWorkers: 2, DistLeaseTimeout: 1,
			DistShardBytes: 1 << 16, DistWorkerCmd: []string{"cliqued", "-worker"}}, "", Distributed},
		{"distributed without dir", Config{DistWorkers: 2}, "requires a run Dir", 0},
		{"distributed negative lease timeout", Config{Dir: "d", DistWorkers: 2, DistLeaseTimeout: -1},
			"negative distributed lease timeout", 0},
		{"distributed negative shard bytes", Config{Dir: "d", DistWorkers: 2, DistShardBytes: -1},
			"negative distributed shard bytes", 0},
		{"distributed plus in-process workers", Config{Dir: "d", DistWorkers: 2, Workers: 4},
			"not both", 0},
		{"distributed plus checkpoint", Config{Dir: "d", DistWorkers: 2, Checkpoint: true},
			"manages its own checkpoint", 0},
		{"distributed plus resume", Config{Dir: "d", DistWorkers: 2, Resume: true},
			"manages its own checkpoint", 0},
		{"distributed plus memory budget", Config{Dir: "d", DistWorkers: 2, MemoryBudget: 1 << 20},
			"memory budget does not apply", 0},
		{"distributed plus spill budget", Config{Dir: "d", DistWorkers: 2, SpillBudget: 1 << 20},
			"not supported by the distributed coordinator", 0},
		{"distributed barrier", Config{Dir: "d", DistWorkers: 2, Workers: 4, Barrier: true}, "not both", 0},
		{"distributed report-small", Config{Dir: "d", DistWorkers: 2, ReportSmall: true}, "ReportSmall", 0},
		{"distributed low-memory mode", Config{Dir: "d", DistWorkers: 2, Mode: CNRecompute},
			"meaningless out of core", 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := c.cfg
			err := cfg.Normalize()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("Normalize(%+v) = %v, want accept", c.cfg, err)
				}
				if got := cfg.Backend(); got != c.backend {
					t.Fatalf("Backend() = %v, want %v", got, c.backend)
				}
				// Defaults must have been applied.
				if cfg.Lo < 1 || cfg.Workers < 1 {
					t.Fatalf("defaults not applied: %+v", cfg)
				}
				return
			}
			if err == nil {
				t.Fatalf("Normalize(%+v) accepted, want error containing %q", c.cfg, c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("Normalize error %q does not contain %q", err, c.wantErr)
			}
		})
	}
}

// TestNormalizeLatchesImpliedSpill: the Dir+MemoryBudget shorthand
// normalizes to the explicit Spill form, and resume implies checkpoint.
func TestNormalizeLatchesImpliedSpill(t *testing.T) {
	cfg := Config{Dir: "d", MemoryBudget: 1}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	if !cfg.Spill {
		t.Error("implied hybrid did not latch Spill")
	}
	cfg = Config{Dir: "d", Resume: true}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	if !cfg.Checkpoint {
		t.Error("Resume did not imply Checkpoint")
	}
}
