// Package enumcfg is the single configuration vocabulary shared by every
// enumeration backend (internal/core, internal/parallel, internal/ooc)
// and by the public facade.  The paper's arc is one algorithm — level-wise
// maximal clique enumeration — retargeted across execution regimes; this
// package is where the regimes agree on what a run means: the size
// bounds, the bitmap mode, the worker count, the spill directory, and the
// cancellation context.  Each backend derives its own Options from a
// Config, so option semantics (defaults, validation, mutual exclusions)
// are defined exactly once.
package enumcfg

import (
	"context"
	"fmt"
	"time"
)

// CNMode selects how sub-lists keep their prefix common-neighbor bitmaps.
// The canonical definition lives here so the sequential and parallel
// backends (and the facade) share one enum; internal/core re-exports it
// under its historical name.
type CNMode int

const (
	// CNStore keeps the dense bitmap per sub-list (the paper's choice:
	// "faster but requires keeping the common neighbors").
	CNStore CNMode = iota
	// CNRecompute stores nothing and rebuilds the bitmap with k-2 extra
	// ANDs per sub-list ("requires no more memory but will perform
	// bitwise AND operations on the same bit strings repeatedly").
	CNRecompute
	// CNCompress keeps the bitmap WAH-compressed, decompressing on use:
	// "the sparcity of the bitmap memory index can potentially provide
	// high compression rate".
	CNCompress
)

// Strategy selects the parallel dispatch policy.
type Strategy int

const (
	// Contiguous dispatches each level's sub-lists from one shared
	// canonical-order queue.
	Contiguous Strategy = iota
	// Affinity keeps creator ownership and applies threshold stealing.
	Affinity
)

// Backend identifies the execution regime a Config resolves to.
type Backend int

const (
	// Sequential is the in-core single-threaded Clique Enumerator.
	Sequential Backend = iota
	// Parallel is the persistent streaming worker pool.
	Parallel
	// ParallelBarrier is the bulk-synchronous reference pool.
	ParallelBarrier
	// OutOfCore is the disk-spilling enumerator.
	OutOfCore
	// Hybrid starts in-core (sequential or the streaming pool per
	// Workers) under the memory governor and spills the resident level
	// to out-of-core shard files the moment the budget trips, continuing
	// on the disk-backed engine — same ordered clique stream either way.
	Hybrid
	// Distributed is the coordinator/worker regime: level shards are
	// leased to worker processes over a transport and the results merged
	// in shard order — the same ordered clique stream as every other
	// backend, at any worker count.
	Distributed
)

// String names the backend for stats and diagnostics.
func (b Backend) String() string {
	switch b {
	case Sequential:
		return "sequential"
	case Parallel:
		return "parallel"
	case ParallelBarrier:
		return "parallel-barrier"
	case OutOfCore:
		return "out-of-core"
	case Hybrid:
		return "hybrid"
	case Distributed:
		return "distributed"
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// Config is the unified run description every backend understands.  Zero
// value + Normalize gives the defaults the paper's experiments use: the
// full size range from Init_K = 2, dense stored bitmaps, one thread,
// in-core.
type Config struct {
	// Ctx cancels the run between generation steps (and, within a step,
	// between sub-lists or spill records).  nil means Background.
	Ctx context.Context

	// Lo is the smallest clique size of interest (the paper's Init_K);
	// Hi, when positive, stops after cliques of size Hi.  Defaults: 2, 0.
	Lo, Hi int

	// Workers selects the parallel backend when > 1.  Default 1.
	Workers int
	// Strategy is the parallel dispatch policy.
	Strategy Strategy
	// Barrier selects the bulk-synchronous reference pool instead of the
	// streaming pool (benchmark baseline; only meaningful with Workers > 1).
	Barrier bool

	// Mode is the common-neighbor bitmap policy.
	Mode CNMode

	// MemoryBudget, when positive, is the memory governor's budget: the
	// bound on everything the run declares resident (graph adjacency
	// bytes, paper-formula candidate storage, worker scratch, spill I/O
	// buffers).  On the purely in-core backends exceeding it aborts the
	// run; combined with a spill Dir it selects the hybrid backend,
	// which spills to disk and continues instead of aborting.
	MemoryBudget int64

	// Dir, when non-empty, selects the out-of-core backend (or, together
	// with MemoryBudget, the hybrid backend), spilling level files
	// inside Dir.  SpillBudget, when positive, aborts when a level's
	// files would exceed that many bytes.  Workers > 1 joins the level
	// shards concurrently (the output stream is identical at any worker
	// count).
	Dir         string
	SpillBudget int64
	// Spill records that the hybrid regime was requested explicitly
	// (the facade's WithSpillover), so a missing Dir or MemoryBudget is
	// a configuration error instead of a silent fallback to another
	// backend.  It is implied — and set by Normalize — whenever both
	// MemoryBudget and Dir are given on a non-resume run.
	Spill bool
	// OOCCompress delta-varint encodes out-of-core level records,
	// cutting the disk I/O volume the paper identifies as the
	// bottleneck.
	OOCCompress bool
	// Checkpoint makes the out-of-core run resumable: Dir becomes a
	// durable run directory with a manifest committed at every level
	// boundary, kept on cancellation for a later Resume.
	Checkpoint bool
	// Resume continues the checkpointed out-of-core run whose manifest
	// lives in Dir instead of starting fresh.  Implies Checkpoint.
	Resume bool

	// DistWorkers, when > 0, selects the distributed coordinator/worker
	// backend with that many worker processes leasing level shards from
	// Dir.  Mutually exclusive with the in-process regimes' knobs; see
	// Normalize.
	DistWorkers int
	// DistWorkerCmd is the worker argv for the exec/pipe transport
	// (empty = re-execute this binary with -worker).
	DistWorkerCmd []string
	// DistLeaseTimeout bounds one shard join before the lease is
	// revoked and the shard re-leased (0 = the coordinator's default).
	DistLeaseTimeout time.Duration
	// DistShardBytes overrides the distributed run's target shard size
	// (0 = auto).
	DistShardBytes int64

	// ReportSmall additionally reports maximal 1- and 2-cliques
	// (sequential backend only; the paper's experiments start at 3).
	ReportSmall bool
}

// Context returns the run context, never nil.
func (c *Config) Context() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

// Backend resolves the execution regime the config selects.  A spill Dir
// plus a memory budget means hybrid — start in-core, spill on the
// governor's trip — unless the run resumes a checkpoint, which is
// out-of-core from its first record.
func (c *Config) Backend() Backend {
	switch {
	case c.DistWorkers > 0:
		return Distributed
	case c.Resume:
		return OutOfCore
	case c.Spill, c.Dir != "" && c.MemoryBudget > 0:
		return Hybrid
	case c.Dir != "":
		return OutOfCore
	case c.Workers > 1 && c.Barrier:
		return ParallelBarrier
	case c.Workers > 1:
		return Parallel
	}
	return Sequential
}

// CheckBounds validates a (lo, hi) size range after defaulting; it is the
// one bounds rule all backends share.
func CheckBounds(lo, hi int) error {
	if lo < 1 {
		return fmt.Errorf("enumcfg: Lo %d < 1", lo)
	}
	if hi != 0 && hi < lo {
		return fmt.Errorf("enumcfg: Hi %d < Lo %d", hi, lo)
	}
	return nil
}

// Normalize applies defaults and validates the config in place.
//
// The validation is regime-structured: the universal rules (bounds,
// workers, mode, strategy) come first, then the knob-dependency rules
// (out-of-core knobs need a Dir, spillover needs a Dir and a budget),
// then one switch with the per-backend exclusions.  MemoryBudget is
// accepted by every backend — the governor charges and enforces it on
// the in-core pools and the hybrid regime observes it as the spill
// trigger — except a resumed run, which is out-of-core from its first
// record and has nothing in core to bound.
func (c *Config) Normalize() error {
	if c.MemoryBudget < 0 {
		return fmt.Errorf("enumcfg: negative memory budget %d", c.MemoryBudget)
	}
	if c.Lo == 0 {
		c.Lo = 2
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if err := CheckBounds(c.Lo, c.Hi); err != nil {
		return err
	}
	if c.Workers < 1 {
		return fmt.Errorf("enumcfg: %d workers", c.Workers)
	}
	if c.Mode < CNStore || c.Mode > CNCompress {
		return fmt.Errorf("enumcfg: unknown CN mode %d", c.Mode)
	}
	if c.Strategy != Contiguous && c.Strategy != Affinity {
		return fmt.Errorf("enumcfg: unknown strategy %d", c.Strategy)
	}
	if c.Barrier && c.Workers <= 1 {
		return fmt.Errorf("enumcfg: the barrier backend requires more than one worker")
	}
	if c.Resume {
		c.Checkpoint = true
	}
	if c.Dir == "" && (c.OOCCompress || c.Checkpoint || c.Resume) {
		return fmt.Errorf("enumcfg: the out-of-core compress/checkpoint/resume options require a spill Dir")
	}
	// Spillover dependencies: an explicit WithSpillover must name a spill
	// directory and carry a budget for the governor to trip on; a
	// resumed run never has an in-core phase to spill from.
	if c.Spill {
		if c.Dir == "" {
			return fmt.Errorf("enumcfg: spillover requires a spill Dir")
		}
		if c.MemoryBudget <= 0 {
			return fmt.Errorf("enumcfg: spillover requires a MemoryBudget for the governor to trip on")
		}
		if c.Resume {
			return fmt.Errorf("enumcfg: a resumed run is out-of-core from the start; spillover does not apply")
		}
	}
	switch c.Backend() {
	case Distributed:
		if c.DistLeaseTimeout < 0 {
			return fmt.Errorf("enumcfg: negative distributed lease timeout %v", c.DistLeaseTimeout)
		}
		if c.DistShardBytes < 0 {
			return fmt.Errorf("enumcfg: negative distributed shard bytes %d", c.DistShardBytes)
		}
		if c.Dir == "" {
			return fmt.Errorf("enumcfg: the distributed backend requires a run Dir shared with its workers")
		}
		if c.Workers > 1 {
			return fmt.Errorf("enumcfg: choose one parallel regime: in-process Workers or DistWorkers, not both")
		}
		if c.Resume || c.Checkpoint {
			return fmt.Errorf("enumcfg: the distributed coordinator manages its own checkpoint manifest; drop Checkpoint/Resume")
		}
		if c.Spill || c.MemoryBudget > 0 {
			return fmt.Errorf("enumcfg: the distributed backend is out-of-core from the start; the in-core memory budget does not apply")
		}
		if c.SpillBudget > 0 {
			return fmt.Errorf("enumcfg: SpillBudget is not supported by the distributed coordinator")
		}
		// Barrier needs Workers > 1 (universal rule above), and Workers
		// > 1 with DistWorkers is already rejected — no separate rule.
		if c.ReportSmall {
			return fmt.Errorf("enumcfg: ReportSmall is not supported out of core (sizes < 3 never spill)")
		}
		if c.Mode != CNStore {
			return fmt.Errorf("enumcfg: CN mode %d is meaningless out of core (no bitmaps are retained)", c.Mode)
		}
	case Hybrid:
		c.Spill = true // latch the implied form (Dir + MemoryBudget)
		if c.Barrier {
			return fmt.Errorf("enumcfg: the barrier pool cannot spill over (no mid-level drain point); use the streaming pool")
		}
		if c.Checkpoint {
			return fmt.Errorf("enumcfg: checkpointing requires an out-of-core run from the start; drop the memory budget or the checkpoint")
		}
		if c.ReportSmall && c.Workers > 1 {
			return fmt.Errorf("enumcfg: ReportSmall is only supported by the sequential in-core phase")
		}
	case OutOfCore:
		if c.ReportSmall {
			return fmt.Errorf("enumcfg: ReportSmall is not supported out of core (sizes < 3 never spill)")
		}
		if c.Mode != CNStore {
			return fmt.Errorf("enumcfg: CN mode %d is meaningless out of core (no bitmaps are retained)", c.Mode)
		}
		if c.Barrier {
			return fmt.Errorf("enumcfg: the barrier pool is in-core only")
		}
		if c.Resume && c.MemoryBudget > 0 {
			return fmt.Errorf("enumcfg: a resumed run is out-of-core from the start; the memory budget does not apply")
		}
	case Parallel, ParallelBarrier:
		// The streaming and barrier pools enforce the governor's budget;
		// only the small-clique reports remain sequential-only.
		if c.ReportSmall {
			return fmt.Errorf("enumcfg: ReportSmall is only supported by the sequential backend")
		}
	}
	return nil
}
