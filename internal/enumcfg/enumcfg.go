// Package enumcfg is the single configuration vocabulary shared by every
// enumeration backend (internal/core, internal/parallel, internal/ooc)
// and by the public facade.  The paper's arc is one algorithm — level-wise
// maximal clique enumeration — retargeted across execution regimes; this
// package is where the regimes agree on what a run means: the size
// bounds, the bitmap mode, the worker count, the spill directory, and the
// cancellation context.  Each backend derives its own Options from a
// Config, so option semantics (defaults, validation, mutual exclusions)
// are defined exactly once.
package enumcfg

import (
	"context"
	"fmt"
)

// CNMode selects how sub-lists keep their prefix common-neighbor bitmaps.
// The canonical definition lives here so the sequential and parallel
// backends (and the facade) share one enum; internal/core re-exports it
// under its historical name.
type CNMode int

const (
	// CNStore keeps the dense bitmap per sub-list (the paper's choice:
	// "faster but requires keeping the common neighbors").
	CNStore CNMode = iota
	// CNRecompute stores nothing and rebuilds the bitmap with k-2 extra
	// ANDs per sub-list ("requires no more memory but will perform
	// bitwise AND operations on the same bit strings repeatedly").
	CNRecompute
	// CNCompress keeps the bitmap WAH-compressed, decompressing on use:
	// "the sparcity of the bitmap memory index can potentially provide
	// high compression rate".
	CNCompress
)

// Strategy selects the parallel dispatch policy.
type Strategy int

const (
	// Contiguous dispatches each level's sub-lists from one shared
	// canonical-order queue.
	Contiguous Strategy = iota
	// Affinity keeps creator ownership and applies threshold stealing.
	Affinity
)

// Backend identifies the execution regime a Config resolves to.
type Backend int

const (
	// Sequential is the in-core single-threaded Clique Enumerator.
	Sequential Backend = iota
	// Parallel is the persistent streaming worker pool.
	Parallel
	// ParallelBarrier is the bulk-synchronous reference pool.
	ParallelBarrier
	// OutOfCore is the disk-spilling enumerator.
	OutOfCore
)

// String names the backend for stats and diagnostics.
func (b Backend) String() string {
	switch b {
	case Sequential:
		return "sequential"
	case Parallel:
		return "parallel"
	case ParallelBarrier:
		return "parallel-barrier"
	case OutOfCore:
		return "out-of-core"
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// Config is the unified run description every backend understands.  Zero
// value + Normalize gives the defaults the paper's experiments use: the
// full size range from Init_K = 2, dense stored bitmaps, one thread,
// in-core.
type Config struct {
	// Ctx cancels the run between generation steps (and, within a step,
	// between sub-lists or spill records).  nil means Background.
	Ctx context.Context

	// Lo is the smallest clique size of interest (the paper's Init_K);
	// Hi, when positive, stops after cliques of size Hi.  Defaults: 2, 0.
	Lo, Hi int

	// Workers selects the parallel backend when > 1.  Default 1.
	Workers int
	// Strategy is the parallel dispatch policy.
	Strategy Strategy
	// Barrier selects the bulk-synchronous reference pool instead of the
	// streaming pool (benchmark baseline; only meaningful with Workers > 1).
	Barrier bool

	// Mode is the common-neighbor bitmap policy.
	Mode CNMode

	// MemoryBudget, when positive, bounds the paper-formula resident
	// bytes of the in-core backends; exceeding it aborts the run.
	MemoryBudget int64

	// Dir, when non-empty, selects the out-of-core backend, spilling
	// level files inside Dir.  SpillBudget, when positive, aborts when a
	// level's files would exceed that many bytes.  Workers > 1 joins the
	// level shards concurrently (the output stream is identical at any
	// worker count).
	Dir         string
	SpillBudget int64
	// OOCCompress delta-varint encodes out-of-core level records,
	// cutting the disk I/O volume the paper identifies as the
	// bottleneck.
	OOCCompress bool
	// Checkpoint makes the out-of-core run resumable: Dir becomes a
	// durable run directory with a manifest committed at every level
	// boundary, kept on cancellation for a later Resume.
	Checkpoint bool
	// Resume continues the checkpointed out-of-core run whose manifest
	// lives in Dir instead of starting fresh.  Implies Checkpoint.
	Resume bool

	// ReportSmall additionally reports maximal 1- and 2-cliques
	// (sequential backend only; the paper's experiments start at 3).
	ReportSmall bool
}

// Context returns the run context, never nil.
func (c *Config) Context() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

// Backend resolves the execution regime the config selects.
func (c *Config) Backend() Backend {
	switch {
	case c.Dir != "":
		return OutOfCore
	case c.Workers > 1 && c.Barrier:
		return ParallelBarrier
	case c.Workers > 1:
		return Parallel
	}
	return Sequential
}

// CheckBounds validates a (lo, hi) size range after defaulting; it is the
// one bounds rule all backends share.
func CheckBounds(lo, hi int) error {
	if lo < 1 {
		return fmt.Errorf("enumcfg: Lo %d < 1", lo)
	}
	if hi != 0 && hi < lo {
		return fmt.Errorf("enumcfg: Hi %d < Lo %d", hi, lo)
	}
	return nil
}

// Normalize applies defaults and validates the config in place.
func (c *Config) Normalize() error {
	if c.Lo == 0 {
		c.Lo = 2
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if err := CheckBounds(c.Lo, c.Hi); err != nil {
		return err
	}
	if c.Workers < 1 {
		return fmt.Errorf("enumcfg: %d workers", c.Workers)
	}
	if c.Mode < CNStore || c.Mode > CNCompress {
		return fmt.Errorf("enumcfg: unknown CN mode %d", c.Mode)
	}
	if c.Strategy != Contiguous && c.Strategy != Affinity {
		return fmt.Errorf("enumcfg: unknown strategy %d", c.Strategy)
	}
	if c.Barrier && c.Workers <= 1 {
		return fmt.Errorf("enumcfg: the barrier backend requires more than one worker")
	}
	if c.Resume {
		c.Checkpoint = true
	}
	if c.Dir == "" && (c.OOCCompress || c.Checkpoint || c.Resume) {
		return fmt.Errorf("enumcfg: the out-of-core compress/checkpoint/resume options require a spill Dir")
	}
	switch c.Backend() {
	case OutOfCore:
		if c.ReportSmall {
			return fmt.Errorf("enumcfg: ReportSmall is not supported out of core (sizes < 3 never spill)")
		}
		if c.Mode != CNStore {
			return fmt.Errorf("enumcfg: CN mode %d is meaningless out of core (no bitmaps are retained)", c.Mode)
		}
		if c.MemoryBudget > 0 {
			return fmt.Errorf("enumcfg: the memory budget is in-core only; bound spills with SpillBudget instead")
		}
		if c.Barrier {
			return fmt.Errorf("enumcfg: the barrier pool is in-core only")
		}
	case Parallel, ParallelBarrier:
		// Reject rather than silently drop: neither pool enforces the
		// resident-byte budget or the small-clique reports today.
		if c.MemoryBudget > 0 {
			return fmt.Errorf("enumcfg: the memory budget is only enforced by the sequential backend")
		}
		if c.ReportSmall {
			return fmt.Errorf("enumcfg: ReportSmall is only supported by the sequential backend")
		}
	}
	return nil
}
