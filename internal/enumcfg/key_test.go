package enumcfg

import "testing"

// TestKeyCanonicalization is the cache-correctness linchpin: configs
// that provably produce the same clique stream must collapse to one
// key, and configs that can differ must not.
func TestKeyCanonicalization(t *testing.T) {
	tests := []struct {
		name string
		a, b Config
		same bool
	}{
		{
			name: "zero value equals explicit defaults",
			a:    Config{},
			b:    Config{Lo: 2, Hi: 0, Workers: 1},
			same: true,
		},
		{
			name: "worker count is execution policy, not identity",
			a:    Config{Lo: 3},
			b:    Config{Lo: 3, Workers: 8},
			same: true,
		},
		{
			name: "dispatch strategy is execution policy on the streaming pool",
			a:    Config{Lo: 3, Workers: 4, Strategy: Contiguous},
			b:    Config{Lo: 3, Workers: 4, Strategy: Affinity},
			same: true,
		},
		{
			name: "CN mode does not change the stream",
			a:    Config{Lo: 3, Mode: CNStore},
			b:    Config{Lo: 3, Mode: CNCompress},
			same: true,
		},
		{
			name: "memory budget and spill directory do not change the stream",
			a:    Config{Lo: 3},
			b:    Config{Lo: 3, MemoryBudget: 1 << 20, Dir: "/tmp/x", OOCCompress: true},
			same: true,
		},
		{
			name: "barrier + contiguous still emits canonical order",
			a:    Config{Lo: 3},
			b:    Config{Lo: 3, Workers: 4, Barrier: true, Strategy: Contiguous},
			same: true,
		},
		{
			name: "barrier + affinity emits worker order: distinct key",
			a:    Config{Lo: 3},
			b:    Config{Lo: 3, Workers: 4, Barrier: true, Strategy: Affinity},
			same: false,
		},
		{
			name: "lower bound is identity",
			a:    Config{Lo: 3},
			b:    Config{Lo: 4},
			same: false,
		},
		{
			name: "default lower bound differs from 3",
			a:    Config{},
			b:    Config{Lo: 3},
			same: false,
		},
		{
			name: "upper bound is identity",
			a:    Config{Lo: 3},
			b:    Config{Lo: 3, Hi: 5},
			same: false,
		},
		{
			name: "ReportSmall is identity",
			a:    Config{Lo: 1},
			b:    Config{Lo: 1, ReportSmall: true},
			same: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ka, kb := tt.a.Key(), tt.b.Key()
			if (ka == kb) != tt.same {
				t.Errorf("Key(%+v) = %q, Key(%+v) = %q; want same=%v",
					tt.a, ka, tt.b, kb, tt.same)
			}
		})
	}
}

// TestKeyStableAcrossNormalize: normalizing must never change a valid
// config's key — the service normalizes before running but may key the
// cache either side of it.
func TestKeyStableAcrossNormalize(t *testing.T) {
	cfgs := []Config{
		{},
		{Lo: 3, Hi: 9, Workers: 4, Strategy: Affinity},
		{Lo: 1, ReportSmall: true},
		{Lo: 3, Workers: 2, Barrier: true, Strategy: Affinity},
	}
	for _, c := range cfgs {
		before := c.Key()
		if err := c.Normalize(); err != nil {
			t.Fatalf("Normalize(%+v): %v", c, err)
		}
		if after := c.Key(); after != before {
			t.Errorf("key changed across Normalize: %q -> %q", before, after)
		}
	}
}
