package enumcfg

import (
	"fmt"
	"strings"
)

// Key returns the deterministic canonical cache key of the clique
// stream this config produces on a given graph — the cache-correctness
// linchpin of the query service's result cache, which stores streams
// under (graph fingerprint, Config.Key()).
//
// The key identifies the OUTPUT, not the execution: every backend
// delivers the byte-identical stream for the same bounds (pinned by the
// cross-backend and cross-representation parity suites), so execution
// policy — Workers, Strategy, Mode, MemoryBudget, representation, the
// whole out-of-core knob set — is deliberately excluded.  A cached
// sequential run therefore satisfies a later 8-worker request, which is
// exactly what a hot-graph cache wants.  The one documented ordering
// exception, the benchmark-only barrier pool under the Affinity
// strategy (worker order within a level), gets its own order= component
// so its streams can never alias the canonical ones.
//
// Key applies the same defaulting Normalize does (Lo 0 -> 2) without
// validating, so equivalent spellings of a config collapse to one key;
// callers that need validation run Normalize first as usual.
func (c *Config) Key() string {
	lo := c.Lo
	if lo == 0 {
		lo = 2
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "v1:lo=%d,hi=%d", lo, c.Hi)
	if c.ReportSmall {
		sb.WriteString(",small=1")
	}
	if c.Barrier && c.Strategy == Affinity {
		sb.WriteString(",order=worker")
	}
	return sb.String()
}
