package simarch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sched"
)

func traceGraph(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return graph.PlantedGraph(rng, 120, []graph.PlantedCliqueSpec{
		{Size: 12}, {Size: 8, Overlap: 4},
	}, 250)
}

func collect(t *testing.T, g *graph.Graph, lo, hi int) *Trace {
	t.Helper()
	tr, err := Collect(g, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCollectMatchesCoreCounts(t *testing.T) {
	g := traceGraph(71)
	tr := collect(t, g, 2, 0)
	res, err := core.Enumerate(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaximalCliques != res.MaximalCliques {
		t.Errorf("trace maximal %d, core %d", tr.MaximalCliques, res.MaximalCliques)
	}
	if tr.MaxCliqueSize != res.MaxCliqueSize {
		t.Errorf("trace max size %d, core %d", tr.MaxCliqueSize, res.MaxCliqueSize)
	}
	if len(tr.Levels) != len(res.Levels) {
		t.Fatalf("trace has %d levels, core %d", len(tr.Levels), len(res.Levels))
	}
	for i, lt := range tr.Levels {
		if lt.Sublists != res.Levels[i].Sublists {
			t.Errorf("level %d sublists %d vs %d", i, lt.Sublists, res.Levels[i].Sublists)
		}
		if lt.Maximal != res.Levels[i].Maximal {
			t.Errorf("level %d maximal %d vs %d", i, lt.Maximal, res.Levels[i].Maximal)
		}
	}
}

func TestCollectParentage(t *testing.T) {
	g := traceGraph(72)
	tr := collect(t, g, 2, 0)
	if tr.Levels[0].Parents != nil {
		t.Error("seed level has parents")
	}
	for li := 1; li < len(tr.Levels); li++ {
		lt := tr.Levels[li]
		if len(lt.Parents) != len(lt.Costs) {
			t.Fatalf("level %d: %d parents for %d sublists",
				li, len(lt.Parents), len(lt.Costs))
		}
		prev := tr.Levels[li-1]
		lastParent := int32(-1)
		for _, par := range lt.Parents {
			if int(par) < 0 || int(par) >= prev.Sublists {
				t.Fatalf("level %d: parent %d out of range", li, par)
			}
			if par < lastParent {
				t.Fatalf("level %d: parents not monotone", li)
			}
			lastParent = par
		}
	}
}

func TestCollectSeeded(t *testing.T) {
	g := traceGraph(73)
	full := collect(t, g, 2, 0)
	seeded := collect(t, g, 6, 0)
	if seeded.SeedUnits == 0 {
		t.Error("seeded trace has zero seed cost")
	}
	// Maximal cliques of size >= 6 must match between the two traces.
	var want int64
	res, _ := core.Enumerate(g, core.Options{Lo: 6})
	want = res.MaximalCliques
	if seeded.MaximalCliques != want {
		t.Errorf("seeded trace maximal %d, want %d", seeded.MaximalCliques, want)
	}
	if full.TotalUnits <= seeded.TotalUnits {
		t.Errorf("full run %d units <= seeded %d", full.TotalUnits, seeded.TotalUnits)
	}
}

func TestCollectErrors(t *testing.T) {
	g := graph.New(4)
	if _, err := Collect(g, 1, 0); err == nil {
		t.Error("lo=1 accepted")
	}
	if _, err := Collect(g, 5, 4); err == nil {
		t.Error("hi < lo accepted")
	}
}

func simulate(t *testing.T, tr *Trace, p int, strategy Strategy) *Result {
	t.Helper()
	// Scale the machine overheads to the tiny test workload so the test
	// exercises the same overhead-to-work regime as paper-scale runs.
	res, err := Simulate(tr, SimOptions{
		Machine:    DefaultAltix().TunedFor(float64(tr.TotalUnits)),
		Processors: p,
		Strategy:   strategy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSimulateOneProcessorEqualsWork(t *testing.T) {
	g := traceGraph(74)
	tr := collect(t, g, 2, 0)
	res := simulate(t, tr, 1, Affinity)
	// With P=1 everything is local and busy time equals total work.
	if got, want := res.PerWorkerUnits[0], float64(tr.TotalUnits); got != want {
		t.Errorf("P=1 busy units %.0f, want %.0f", got, want)
	}
	if res.Transfers != 0 {
		t.Errorf("P=1 transfers = %d", res.Transfers)
	}
	if res.Units <= float64(tr.TotalUnits) {
		t.Error("overheads missing from total")
	}
}

func TestSimulateSpeedupShape(t *testing.T) {
	g := traceGraph(75)
	tr := collect(t, g, 2, 0)
	var prev float64
	times := map[int]float64{}
	for _, p := range []int{1, 2, 4, 8} {
		res := simulate(t, tr, p, Affinity)
		times[p] = res.Units
		if prev > 0 && res.Units >= prev {
			t.Errorf("P=%d did not speed up: %.0f >= %.0f", p, res.Units, prev)
		}
		prev = res.Units
	}
	// Relative speedup for small P must be near 2 (the work dominates).
	rel := times[1] / times[2]
	if rel < 1.4 || rel > 2.05 {
		t.Errorf("relative speedup 1->2 = %.2f, want ~1.4-2.0", rel)
	}
}

func TestSimulateWorkConservation(t *testing.T) {
	// Busy units across workers must equal total work, scaled only by
	// the remote penalty on transferred items.
	g := traceGraph(76)
	tr := collect(t, g, 2, 0)
	for _, p := range []int{2, 5, 16} {
		res := simulate(t, tr, p, Contiguous) // no transfers, no penalty
		var sum float64
		for _, u := range res.PerWorkerUnits {
			sum += u
		}
		if math.Abs(sum-float64(tr.TotalUnits)) > 1e-6*float64(tr.TotalUnits)+1 {
			t.Errorf("P=%d: busy sum %.0f != work %d", p, sum, tr.TotalUnits)
		}
		if res.Transfers != 0 {
			t.Errorf("contiguous strategy transferred %d", res.Transfers)
		}
	}
}

func TestSimulateRemotePenaltyCharged(t *testing.T) {
	g := traceGraph(77)
	tr := collect(t, g, 2, 0)
	aff, err := Simulate(tr, SimOptions{
		Machine:    DefaultAltix(),
		Processors: 8,
		Strategy:   Affinity,
		Policy:     sched.Policy{RelTolerance: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	if aff.Transfers == 0 {
		t.Skip("no transfers under tight policy; graph too uniform")
	}
	var busySum float64
	for _, u := range aff.PerWorkerUnits {
		busySum += u
	}
	if busySum <= float64(tr.TotalUnits) {
		t.Errorf("remote penalty not charged: busy %.0f <= work %d",
			busySum, tr.TotalUnits)
	}
}

func TestSimulateOverheadDominatesAtHugeP(t *testing.T) {
	// The paper's 256-processor degradation: when the per-level
	// synchronization overhead is large relative to the per-processor
	// work share, adding processors slows the run down.  Use the
	// unscaled (paper-scale) machine against the small test trace to
	// put the simulation deep in that regime.
	g := traceGraph(78)
	tr := collect(t, g, 2, 0)
	unscaled := func(p int) float64 {
		res, err := Simulate(tr, SimOptions{
			Machine:    DefaultAltix(),
			Processors: p,
			Strategy:   Affinity,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Units
	}
	t64 := unscaled(64)
	t256 := unscaled(256)
	if t256 <= t64 {
		t.Errorf("small workload: P=256 (%.0f) not slower than P=64 (%.0f)",
			t256, t64)
	}
}

func TestSimulateLoadBalanceQuality(t *testing.T) {
	g := traceGraph(79)
	tr := collect(t, g, 2, 0)
	for _, p := range []int{2, 4, 8, 16} {
		res := simulate(t, tr, p, Affinity)
		st := sched.Summarize(res.PerWorkerUnits)
		if st.Mean == 0 {
			continue
		}
		if st.StdDev/st.Mean > 0.35 {
			t.Errorf("P=%d: busy stddev %.0f is %.0f%% of mean %.0f",
				p, st.StdDev, 100*st.StdDev/st.Mean, st.Mean)
		}
	}
}

func TestSimulateCalibration(t *testing.T) {
	g := traceGraph(80)
	tr := collect(t, g, 2, 0)
	m := DefaultAltix()
	m.UnitsPerSecond = 1000
	res, err := Simulate(tr, SimOptions{Machine: m, Processors: 1, Strategy: Affinity})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Seconds-res.Units/1000) > 1e-9 {
		t.Errorf("calibration ignored: %.3f vs %.3f", res.Seconds, res.Units/1000)
	}
	// Default calibration uses the trace rate.
	res2, _ := Simulate(tr, SimOptions{Machine: DefaultAltix(), Processors: 1, Strategy: Affinity})
	want := res2.Units / tr.UnitsPerSecond()
	if math.Abs(res2.Seconds-want) > 1e-9 {
		t.Errorf("trace calibration wrong: %.4f vs %.4f", res2.Seconds, want)
	}
}

func TestScaledMachine(t *testing.T) {
	m := DefaultAltix().Scaled(0.25)
	if m.BarrierUnits != DefaultAltix().BarrierUnits*0.25 {
		t.Error("BarrierUnits not scaled")
	}
	if m.CollectPerProc != DefaultAltix().CollectPerProc*0.25 {
		t.Error("CollectPerProc not scaled")
	}
	if m.RemotePenalty != DefaultAltix().RemotePenalty {
		t.Error("RemotePenalty must not scale")
	}
}

func TestSimulateErrors(t *testing.T) {
	tr := &Trace{}
	if _, err := Simulate(tr, SimOptions{Processors: 0}); err == nil {
		t.Error("0 processors accepted")
	}
}

func TestPerWorkerSeconds(t *testing.T) {
	r := &Result{PerWorkerUnits: []float64{100, 200}}
	s := r.PerWorkerSeconds(100)
	if s[0] != 1 || s[1] != 2 {
		t.Errorf("PerWorkerSeconds = %v", s)
	}
}
