package simarch

import (
	"fmt"

	"repro/internal/sched"
)

// Machine models the overheads of a level-synchronous run on a ccNUMA
// shared-memory machine.  Work itself comes from the trace; the machine
// contributes only what the host cannot exhibit: many processors, barrier
// and scheduling latency, and remote-memory penalties.
type Machine struct {
	// RemotePenalty multiplies the processing cost of a sub-list that the
	// load balancer moved away from the thread that created it (the
	// paper: a thread "working on loads transferred from other threads
	// has to access the remote memory over that processor").
	RemotePenalty float64
	// BarrierUnits is the fixed synchronization cost per level.
	BarrierUnits float64
	// CollectPerProc is the scheduler's per-processor cost per level
	// (collecting results from P workers, signalling restarts).
	CollectPerProc float64
	// ContentionPerProcSq is the interconnect-contention cost per level,
	// charged as this coefficient times P²: the term that makes very
	// high processor counts counterproductive on small workloads — the
	// paper's "dominated by network and synchronization latency".
	ContentionPerProcSq float64
	// CollectPerSublist is the scheduler's serial per-sub-list handling
	// cost per level (load accounting and redistribution bookkeeping).
	CollectPerSublist float64
	// UnitsPerSecond converts cost units to seconds.  Zero means
	// calibrate from the trace's measured execution rate.
	UnitsPerSecond float64
}

// ReferenceUnits is the workload size (total trace units) the
// DefaultAltix overhead constants were tuned for: the paper's largest
// graph-C run (Init_K = 3, 1,948 sequential seconds).  TunedFor rescales
// the fixed overheads to other workload sizes.
const ReferenceUnits = 5e10

// DefaultAltix returns the machine model used throughout the experiment
// harness.  The overhead constants were fitted at ReferenceUnits so the
// paper-scale graph-C workloads reproduce the published scaling shape:
// near-linear speedup through 64 processors (relative speedup ≈ 1.8 per
// doubling), continued gains at 128, degradation at 256 that is mild for
// the largest workload and severe for the smallest, and 256-processor
// absolute speedups growing with sequential run time (Figure 7's 22 → 51
// trend).
func DefaultAltix() Machine {
	return Machine{
		RemotePenalty:       1.75,
		BarrierUnits:        2e6,
		CollectPerProc:      2e4,
		ContentionPerProcSq: 300,
		CollectPerSublist:   0.25,
		UnitsPerSecond:      0, // calibrate from the trace by default
	}
}

// Scaled returns a copy of the machine with its fixed overheads (barrier,
// per-processor and contention costs) multiplied by f.  Experiments that
// run at a reduced workload scale use f = W_scaled / W_reference so that
// the ratio of overhead to work — and therefore the shape of the speedup
// curves — is preserved (dimensionless scaling).
func (m Machine) Scaled(f float64) Machine {
	m.BarrierUnits *= f
	m.CollectPerProc *= f
	m.ContentionPerProcSq *= f
	return m
}

// TunedFor returns the machine with fixed overheads rescaled from
// ReferenceUnits to a workload of totalUnits, preserving curve shape
// across experiment scales.  The experiment harness calls this once per
// experiment family with the largest trace in the family, so that
// smaller workloads within the family still see proportionally larger
// overheads (the effect Figure 7 measures).
func (m Machine) TunedFor(totalUnits float64) Machine {
	if totalUnits <= 0 {
		return m
	}
	return m.Scaled(totalUnits / ReferenceUnits)
}

// SimOptions configures a Simulate run.
type SimOptions struct {
	Machine Machine
	// Processors is the simulated processor count P >= 1.
	Processors int
	// Strategy/Policy mirror package parallel: Affinity with the
	// threshold policy is the paper's scheduler; Contiguous is the
	// rebalance-everything ablation.
	Strategy Strategy
	Policy   sched.Policy
}

// Strategy selects the simulated assignment policy.
type Strategy int

const (
	// Affinity keeps sub-lists with their creators and applies threshold
	// transfers (the paper's scheduler).
	Affinity Strategy = iota
	// Contiguous re-chunks every level by load, ignoring affinity.
	Contiguous
)

// LevelResult is the simulated outcome of one level.
type LevelResult struct {
	K         int
	Makespan  float64 // busy makespan + overheads, units
	MaxBusy   float64 // slowest worker's busy units
	Overhead  float64 // barrier + collect units
	Transfers int
}

// Result is a complete simulated run.
type Result struct {
	Processors     int
	Seconds        float64
	Units          float64
	SeedUnits      float64
	PerWorkerUnits []float64 // busy units per processor, summed over levels
	Transfers      int
	Levels         []LevelResult
}

// PerWorkerSeconds converts per-processor busy units to seconds with the
// same calibration used for the total.
func (r *Result) PerWorkerSeconds(unitsPerSecond float64) []float64 {
	out := make([]float64, len(r.PerWorkerUnits))
	for i, u := range r.PerWorkerUnits {
		out[i] = u / unitsPerSecond
	}
	return out
}

// Simulate replays the trace on P simulated processors and returns the
// modelled run time and load distribution.
func Simulate(tr *Trace, opts SimOptions) (*Result, error) {
	p := opts.Processors
	if p < 1 {
		return nil, fmt.Errorf("simarch: %d processors", p)
	}
	ups := opts.Machine.UnitsPerSecond
	if ups <= 0 {
		ups = tr.UnitsPerSecond()
	}
	res := &Result{
		Processors:     p,
		PerWorkerUnits: make([]float64, p),
	}

	// The seed phase parallelizes like the level loop (the search-tree
	// branches of the k-clique enumerator are independent); charge it as
	// perfectly divisible work plus one barrier.
	res.SeedUnits = float64(tr.SeedUnits)/float64(p) + opts.Machine.BarrierUnits
	total := res.SeedUnits

	var executor []int32 // executor of each sub-list in the previous level
	for li := range tr.Levels {
		lt := &tr.Levels[li]
		n := len(lt.Costs)

		var assign sched.Assignment
		transfers := 0
		remote := make(map[int]bool)
		if opts.Strategy == Affinity && lt.Parents != nil && executor != nil {
			homes := make([]int32, n)
			for i, parent := range lt.Parents {
				homes[i] = executor[parent]
			}
			assign = sched.ByHome(homes, p)
			moves := opts.Policy.Rebalance(assign, lt.Costs)
			transfers = len(moves)
			for _, mv := range moves {
				remote[mv.Item] = true
			}
		} else {
			assign = sched.BalancedContiguous(lt.Costs, p)
		}

		// Busy time per worker, with the NUMA penalty on moved work.
		busy := make([]float64, p)
		executor = make([]int32, n)
		for w, items := range assign {
			for _, i := range items {
				c := float64(lt.Costs[i])
				if remote[i] {
					c *= opts.Machine.RemotePenalty
				}
				busy[w] += c
				executor[i] = int32(w)
			}
		}
		maxBusy := 0.0
		for w, bz := range busy {
			res.PerWorkerUnits[w] += bz
			if bz > maxBusy {
				maxBusy = bz
			}
		}
		overhead := opts.Machine.BarrierUnits +
			opts.Machine.CollectPerProc*float64(p) +
			opts.Machine.ContentionPerProcSq*float64(p)*float64(p) +
			opts.Machine.CollectPerSublist*float64(n)
		lr := LevelResult{
			K:         lt.K,
			MaxBusy:   maxBusy,
			Overhead:  overhead,
			Makespan:  maxBusy + overhead,
			Transfers: transfers,
		}
		res.Levels = append(res.Levels, lr)
		res.Transfers += transfers
		total += lr.Makespan
	}
	res.Units = total
	res.Seconds = total / ups
	return res, nil
}
