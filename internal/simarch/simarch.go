// Package simarch simulates the paper's evaluation platform — an SGI
// Altix 3700 with 256 processors sharing 2 TB of ccNUMA memory — so that
// the scaling experiments of Figures 5–8 can be regenerated on any host.
//
// The simulation is replay-based, not synthetic: Collect runs the real
// Clique Enumerator once, instrumented, and records the exact work (in
// abstract cost units: bitmap-AND words, pair checks, maximality probes)
// of every sub-list at every level, together with the sub-list parentage
// needed to model memory affinity.  Simulate then replays the level-
// synchronous schedule for any processor count P: sub-lists are assigned
// by the same centralized load balancer the real backend uses (package
// sched), transferred sub-lists pay a remote-memory penalty, and every
// level ends with a barrier plus scheduler collect/redistribute costs.
// Per-level makespans add up to the simulated run time; per-processor
// busy times feed the load-balance statistics of Figure 8.
//
// Because the cost trace comes from a real execution of the real
// algorithm, the simulated curves inherit the true work distribution —
// the skew between sub-lists, the level profile, the shrinking
// parallelism near the top of the clique ladder — and the machine model
// contributes only the overheads (synchronization, scheduling, NUMA),
// which is exactly the part of the paper's platform we cannot reproduce
// physically.  See DESIGN.md §2.
package simarch

import (
	"fmt"
	"time"

	"repro/internal/bitset"
	"repro/internal/clique"
	"repro/internal/core"
	"repro/internal/graph"
)

// LevelTrace records one level of the instrumented run.
type LevelTrace struct {
	K        int     // clique size of the candidates processed
	Costs    []int64 // per-sub-list processing cost, in units
	Parents  []int32 // index of each sub-list's parent in the previous level; -1 at the seed level
	Maximal  int64   // maximal (K+1)-cliques emitted by this level
	Sublists int     // len(Costs)
	Cliques  int64   // M[K] consumed
	Bytes    int64   // paper-formula bytes of the level
}

// Trace is a complete instrumented run.
type Trace struct {
	Levels         []LevelTrace
	SeedUnits      int64 // estimated cost of building the seed level
	TotalUnits     int64 // Σ level costs (excluding seed)
	WallSeconds    float64
	MaximalCliques int64
	MaxCliqueSize  int
	N              int // graph order (for reporting)
}

// UnitsPerSecond returns the measured execution rate of the instrumented
// host, used as the default seconds calibration.
func (t *Trace) UnitsPerSecond() float64 {
	if t.WallSeconds <= 0 {
		return 1
	}
	return float64(t.TotalUnits+t.SeedUnits) / t.WallSeconds
}

// Collect runs the Clique Enumerator sequentially with instrumentation
// and returns the cost trace.  lo/hi follow core.Options semantics.
func Collect(g *graph.Graph, lo, hi int) (*Trace, error) {
	return CollectMode(g, lo, hi, false)
}

// CollectMode is Collect with an explicit memory mode: recompute=true
// runs the enumerator in its low-memory variant (prefix common-neighbor
// bitmaps rebuilt instead of stored), which is how the largest paper-
// scale traces (Init_K = 3 on graph C) fit on hosts far below 2 TB.  The
// recorded costs then include the extra AND work of that mode, exactly as
// a real machine running it would.
func CollectMode(g *graph.Graph, lo, hi int, recompute bool) (*Trace, error) {
	if lo == 0 {
		lo = 2
	}
	if lo < 2 {
		return nil, fmt.Errorf("simarch: lo %d < 2", lo)
	}
	if hi != 0 && hi < lo {
		return nil, fmt.Errorf("simarch: hi %d < lo %d", hi, lo)
	}
	start := time.Now()
	tr := &Trace{N: g.N()}

	counter := clique.ReporterFunc(func(c clique.Clique) {
		tr.MaximalCliques++
		if len(c) > tr.MaxCliqueSize {
			tr.MaxCliqueSize = len(c)
		}
	})

	var lvl *core.Level
	if lo <= 2 {
		lvl = core.SeedFromEdges(g, !recompute)
		tr.SeedUnits = int64(g.M()) // one pass over the edge list
	} else {
		var err error
		lvl, tr.SeedUnits, err = seedFromKInstrumented(g, lo, !recompute, counter)
		if err != nil {
			return nil, err
		}
	}

	pool := bitset.NewPool(g.N())
	b := core.NewBuilder(g, !recompute, pool)
	var parents []int32 // parents of the CURRENT level's sub-lists
	for len(lvl.Sub) > 0 && (hi == 0 || lvl.K+1 <= hi) {
		lt := LevelTrace{
			K:        lvl.K,
			Costs:    make([]int64, len(lvl.Sub)),
			Parents:  parents,
			Sublists: len(lvl.Sub),
			Cliques:  lvl.Cliques(),
			Bytes:    lvl.Bytes(g.N()),
		}
		b.Reset()
		var nextParents []int32
		for i, s := range lvl.Sub {
			beforeUnits := b.Cost.Units()
			beforeNext := len(b.Next)
			b.ProcessSubList(s, counter)
			cost := b.Cost.Units() - beforeUnits
			if cost < 1 {
				cost = 1
			}
			lt.Costs[i] = cost
			for range b.Next[beforeNext:] {
				nextParents = append(nextParents, int32(i))
			}
		}
		lt.Maximal = b.Maximal
		for _, c := range lt.Costs {
			tr.TotalUnits += c
		}
		tr.Levels = append(tr.Levels, lt)
		lvl = &core.Level{K: lvl.K + 1, Sub: b.Next}
		parents = nextParents
	}
	tr.WallSeconds = time.Since(start).Seconds()
	return tr, nil
}

// seedFromKInstrumented wraps core.SeedFromK and estimates the seeding
// cost in the same units as level processing: one word-pass per search
// node of the k-clique enumerator.
func seedFromKInstrumented(g *graph.Graph, lo int, storeCN bool, r clique.Reporter) (*core.Level, int64, error) {
	lvl, st, err := core.SeedFromK(g, lo, storeCN, r)
	if err != nil {
		return nil, 0, err
	}
	words := int64((g.N() + 63) / 64)
	return lvl, st.SearchNodes * words, nil
}
