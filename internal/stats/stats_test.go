package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %g", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev of singleton != 0")
	}
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !approx(got, 2.138, 0.001) {
		t.Errorf("StdDev = %g", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %g,%g", min, max)
	}
	defer func() {
		if recover() == nil {
			t.Error("MinMax(nil) did not panic")
		}
	}()
	MinMax(nil)
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !approx(got, 1, 1e-12) {
		t.Errorf("Pearson = %g, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !approx(got, -1, 1e-12) {
		t.Errorf("Pearson = %g, want -1", got)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("Pearson with constant sample = %g, want 0", got)
	}
}

func TestPearsonPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"mismatch": func() { Pearson([]float64{1}, []float64{1, 2}) },
		"empty":    func() { Pearson(nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRanksNoTies(t *testing.T) {
	got := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{1, 2, 2, 3})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly monotone transform has Spearman exactly 1.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x)
	}
	if got := Spearman(xs, ys); !approx(got, 1, 1e-12) {
		t.Errorf("Spearman = %g, want 1", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !approx(got, c.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.75); !approx(got, 7.5, 1e-12) {
		t.Errorf("Quantile interp = %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Quantile(nil) did not panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestZNormalize(t *testing.T) {
	out := ZNormalize([]float64{1, 2, 3, 4, 5})
	if !approx(Mean(out), 0, 1e-12) {
		t.Errorf("normalized mean = %g", Mean(out))
	}
	if !approx(StdDev(out), 1, 1e-12) {
		t.Errorf("normalized sd = %g", StdDev(out))
	}
	flat := ZNormalize([]float64{7, 7, 7})
	for _, v := range flat {
		if v != 0 {
			t.Errorf("flat normalize = %v", flat)
		}
	}
}

// Property: Pearson is symmetric and bounded in [-1, 1].
func TestQuickPearsonBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r1 := Pearson(xs, ys)
		r2 := Pearson(ys, xs)
		return approx(r1, r2, 1e-12) && r1 >= -1-1e-12 && r1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Spearman is invariant under strictly increasing transforms.
func TestQuickSpearmanInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		txs := make([]float64, n)
		for i, x := range xs {
			txs[i] = x*x*x + 2*x // strictly increasing
		}
		return approx(Spearman(xs, ys), Spearman(txs, ys), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: ranks are a permutation of 1..n when values are distinct.
func TestQuickRanksPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) + rng.Float64()*0.5 // distinct
		}
		rng.Shuffle(n, func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		seen := make([]bool, n+1)
		for _, r := range Ranks(xs) {
			ri := int(r)
			if float64(ri) != r || ri < 1 || ri > n || seen[ri] {
				return false
			}
			seen[ri] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
