// Package stats provides the small statistical kernels used by the
// microarray preprocessing pipeline (rank transforms, Pearson and Spearman
// correlation) and by the experiment harness (means and standard
// deviations over repeated runs, as in the paper's 10-repetition
// methodology).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs,
// or 0 when fewer than two samples are given.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// MinMax returns the smallest and largest values of xs.  It panics on an
// empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Pearson returns the Pearson product-moment correlation of two
// equal-length samples.  It returns 0 when either sample has zero
// variance.  Panics on length mismatch or empty input.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	if len(xs) == 0 {
		panic("stats: Pearson of empty samples")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Ranks returns the fractional ranks of xs (average rank for ties),
// 1-based, as used by the Spearman rank coefficient.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank over the tie block [i, j].
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Spearman returns the Spearman rank correlation coefficient: the Pearson
// correlation of the fractional ranks.  The paper's preprocessing computes
// "pairwise rank coefficient" matrices from normalized expression data;
// this is that kernel.
func Spearman(xs, ys []float64) float64 {
	return Pearson(Ranks(xs), Ranks(ys))
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics.  Panics on empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// ZNormalize returns xs shifted and scaled to zero mean and unit sample
// standard deviation.  A zero-variance sample is returned as all zeros.
func ZNormalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	m := Mean(xs)
	sd := StdDev(xs)
	if sd == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - m) / sd
	}
	return out
}
