package core

import (
	"context"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/clique"
	"repro/internal/enumcfg"
	"repro/internal/graph"
	"repro/internal/kclique"
	"repro/internal/membudget"
	"repro/internal/wah"
)

// ErrMemoryBudget is returned (wrapped) when enumeration exceeds the
// memory budget — the in-library analogue of the paper's graph-B run
// that "consumed 607 GB ... and 404 GB ... when it was terminated after
// 12 hours".  It aliases the governor's sentinel, so every backend's
// budget abort satisfies the same errors.Is target.
var ErrMemoryBudget = membudget.ErrBudget

// Options configures Enumerate.
type Options struct {
	// Ctx, when non-nil, cancels the enumeration: the level loop checks
	// it before every generation step, and Step checks it every 64
	// sub-lists within a level, bounding cancellation latency to a small
	// batch of sub-lists.  On cancellation Enumerate returns the partial
	// Result together with an error wrapping ctx.Err().
	Ctx context.Context
	// Lo is the smallest clique size of interest (the paper's Init_K).
	// When Lo <= 2 the enumeration seeds directly from the edge list;
	// otherwise the k-clique enumerator (package kclique) seeds the
	// candidate lists and reports the maximal Lo-cliques.  Default 2.
	Lo int
	// Hi, when positive, stops the enumeration after cliques of size Hi
	// have been generated — the upper bound obtained from a maximum
	// clique computation in the paper's pipeline.  0 means run until no
	// candidates remain.
	Hi int
	// Reporter receives each maximal clique (size in [max(Lo,3), Hi],
	// plus size-Lo maximal cliques when seeding with Lo >= 3, plus
	// 1- and 2-cliques only as enabled below).  May be nil to count only.
	Reporter clique.Reporter
	// ReportSmall additionally reports maximal 1-cliques (isolated
	// vertices) and maximal 2-cliques (edges with no common neighbor)
	// when Lo <= 2.  The paper's experiments start at size 3 and skip
	// these; tools that need complete covers enable it.
	ReportSmall bool
	// RecomputeCN switches to the paper's low-memory alternative:
	// sub-lists do not retain their prefix common-neighbor bitmaps, and
	// each step reconstructs them with (k-2) extra ANDs.
	RecomputeCN bool
	// CompressCN stores the prefix bitmaps WAH-compressed (the paper's
	// future-work direction): high compression on sparse graphs at the
	// cost of one decompression pass per sub-list.  Mutually exclusive
	// with RecomputeCN.
	CompressCN bool
	// MemoryBudget, when positive, bounds the paper-formula byte total of
	// the resident levels (consumed + produced); exceeding it aborts with
	// ErrMemoryBudget.  Ignored when Gov is set.
	MemoryBudget int64
	// Gov, when non-nil, is the run's shared memory governor: the seed
	// level and every kept sub-list are charged against it, consumed
	// levels are released at step boundaries, and enumeration aborts
	// with ErrMemoryBudget once it reports Over.  Callers that charge
	// other layers into the same governor (the facade charges the graph
	// representation's adjacency bytes) thereby tighten the candidate
	// headroom — one budget, one meaning of memory.  When nil, a private
	// governor is derived from MemoryBudget.
	Gov *membudget.Governor
	// OnLevel, when non-nil, observes each generation step.
	OnLevel func(LevelStats)
}

// Result summarizes an enumeration run.
type Result struct {
	MaximalCliques int64        // total maximal cliques reported (all sizes)
	MaxCliqueSize  int          // largest maximal clique size seen
	Levels         []LevelStats // one entry per generation step
	SeedStats      kclique.Stats
	PeakBytes      int64 // max paper-formula bytes resident at any step
	TotalCost      Cost
}

// OptionsFromConfig derives sequential-backend Options from the unified
// backend config.  Reporter and OnLevel are not part of the config and
// are left for the caller to fill.
func OptionsFromConfig(c enumcfg.Config) Options {
	return Options{
		Ctx:          c.Ctx,
		Lo:           c.Lo,
		Hi:           c.Hi,
		ReportSmall:  c.ReportSmall,
		RecomputeCN:  c.Mode == enumcfg.CNRecompute,
		CompressCN:   c.Mode == enumcfg.CNCompress,
		MemoryBudget: c.MemoryBudget,
	}
}

// Enumerate runs the Clique Enumerator over g — any graph representation
// — and returns run statistics.  Maximal cliques are reported in
// non-decreasing order of size; within a level, in canonical order.  The
// dense representation keeps its historical allocation-identical fast
// path; CSR and WAH graphs run through the generic row-access contract.
//
//repro:ctxloop
func Enumerate(g graph.Interface, opts Options) (*Result, error) {
	if opts.Lo == 0 {
		opts.Lo = 2
	}
	if err := enumcfg.CheckBounds(opts.Lo, opts.Hi); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if opts.RecomputeCN && opts.CompressCN {
		return nil, fmt.Errorf("core: RecomputeCN and CompressCN are mutually exclusive")
	}
	mode := CNStore
	switch {
	case opts.RecomputeCN:
		mode = CNRecompute
	case opts.CompressCN:
		mode = CNCompress
	}

	res := &Result{}
	emit := func(c clique.Clique) {
		res.MaximalCliques++
		if len(c) > res.MaxCliqueSize {
			res.MaxCliqueSize = len(c)
		}
		if opts.Reporter != nil {
			opts.Reporter.Emit(c)
		}
	}
	reporter := clique.ReporterFunc(emit)

	var lvl *Level
	if opts.Lo <= 2 {
		if opts.ReportSmall {
			reportSmall(g, opts.Lo, reporter)
		}
		lvl = SeedFromEdgesMode(g, mode)
	} else {
		var err error
		lvl, res.SeedStats, err = SeedFromKMode(g, opts.Lo, mode, reporter)
		if err != nil {
			return res, err
		}
	}

	// The governor is the single accounting authority: the seed level is
	// charged up front, each kept sub-list is charged as it is retained
	// (Builder.keep), and a consumed level is released at its step
	// boundary — so Used tracks the paper's resident formula (consumed +
	// produced) continuously instead of being re-derived per step.
	gov := opts.Gov
	if gov == nil && opts.MemoryBudget > 0 {
		gov = membudget.New(opts.MemoryBudget)
	}
	gov.Charge(lvl.Bytes(g.N()))

	pool := bitset.NewPool(g.N())
	b := NewBuilderMode(g, mode, pool)
	b.Ctx = opts.Ctx
	b.Gov = gov
	b.TripOnOver = true
	for len(lvl.Sub) > 0 && (opts.Hi == 0 || lvl.K+1 <= opts.Hi) {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			gov.Release(lvl.Bytes(g.N())) // retire the level before aborting
			return res, fmt.Errorf("core: canceled before level %d->%d: %w",
				lvl.K, lvl.K+1, opts.Ctx.Err())
		}
		next, st := Step(g, lvl, reporter, b)
		if b.Canceled {
			// The consumed level and the partial next level are both still
			// charged; retire them so a shared governor stays balanced.
			gov.Release(st.Bytes + st.NextBytes)
			return res, fmt.Errorf("core: canceled during level %d->%d: %w",
				lvl.K, lvl.K+1, opts.Ctx.Err())
		}
		res.Levels = append(res.Levels, st)
		res.TotalCost.Add(st.Cost)
		if opts.OnLevel != nil {
			opts.OnLevel(st)
		}
		if resident := st.Bytes + st.NextBytes; resident > res.PeakBytes {
			res.PeakBytes = resident
		}
		if b.Exceeded || gov.Over() {
			err := fmt.Errorf("%w: level %d->%d resident %d bytes > budget %d",
				ErrMemoryBudget, lvl.K, lvl.K+1, gov.Used(), gov.Budget())
			gov.Release(st.Bytes + st.NextBytes) // reconcile after formatting
			return res, err
		}
		gov.Release(st.Bytes) // the consumed level is retired
		lvl = next
	}
	gov.Release(lvl.Bytes(g.N())) // the final (empty or Hi-cut) level
	return res, nil
}

// ReportSmallCliques emits the maximal 1- and 2-cliques reportSmall
// covers — the ReportSmall entry for drivers (the hybrid backend) that
// run the level machinery themselves instead of through Enumerate.
func ReportSmallCliques(g graph.Interface, lo int, r clique.Reporter) {
	reportSmall(g, lo, r)
}

// reportSmall emits maximal 1-cliques (when lo <= 1) and maximal
// 2-cliques (when lo <= 2).  These sizes fall outside the sub-list join
// machinery: a size-s maximal clique is only discovered when generated at
// step (s-1) -> s, so the two smallest sizes need direct checks.
func reportSmall(g graph.Interface, lo int, r clique.Reporter) {
	if lo <= 1 {
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) == 0 {
				r.Emit(clique.Clique{v})
			}
		}
	}
	scratch := bitset.New(g.N())
	graph.ForEachEdge(g, func(u, v int) bool {
		g.Materialize(u, scratch)
		g.Row(v).IntersectInto(scratch)
		if scratch.None() {
			r.Emit(clique.Clique{u, v})
		}
		return true
	})
}

// SeedFromK builds the initial candidate level at size k using the
// k-clique enumerator, reporting maximal k-cliques to r.  The returned
// level holds every non-maximal k-clique, grouped into sub-lists by
// shared (k-1)-prefix, with prefix common-neighbor bitmaps when storeCN
// is set.
func SeedFromK(g graph.Interface, k int, storeCN bool, r clique.Reporter) (*Level, kclique.Stats, error) {
	mode := CNStore
	if !storeCN {
		mode = CNRecompute
	}
	return SeedFromKMode(g, k, mode, r)
}

// SeedFromKMode is SeedFromK with an explicit bitmap mode.
func SeedFromKMode(g graph.Interface, k int, mode CNMode, r clique.Reporter) (*Level, kclique.Stats, error) {
	if k < 3 {
		return nil, kclique.Stats{}, fmt.Errorf("core: SeedFromK requires k >= 3, got %d", k)
	}
	lvl := &Level{K: k}
	var emitBuf clique.Clique
	st := kclique.Enumerate(g, kclique.Options{
		K: k,
		OnGroup: func(gr kclique.Group) {
			if r != nil {
				for _, t := range gr.MaximalTails {
					emitBuf = emitBuf[:0]
					emitBuf = append(emitBuf, gr.Prefix...)
					emitBuf = append(emitBuf, t)
					r.Emit(emitBuf)
				}
			}
			if s := sublistFromGroup(gr, mode); s != nil {
				lvl.Sub = append(lvl.Sub, s)
			}
		},
	})
	return lvl, st, nil
}

// sublistFromGroup copies one k-clique group (whose fields are borrowed)
// into an owned candidate sub-list, or returns nil when the paper's
// |S| > 1 rule discards it (a lone candidate cannot join).
func sublistFromGroup(gr kclique.Group, mode CNMode) *SubList {
	if len(gr.CandidateTails) < 2 {
		return nil
	}
	s := &SubList{
		Prefix: make([]uint32, len(gr.Prefix)),
		Tails:  make([]uint32, len(gr.CandidateTails)),
	}
	for i, p := range gr.Prefix {
		s.Prefix[i] = uint32(p)
	}
	for i, t := range gr.CandidateTails {
		s.Tails[i] = uint32(t)
	}
	switch mode {
	case CNStore:
		s.CN = gr.PrefixCN.Clone()
	case CNCompress:
		s.CNC = wah.Compress(gr.PrefixCN)
	}
	return s
}
