package core

import (
	"context"

	"repro/internal/bitset"
	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/membudget"
	"repro/internal/wah"
)

// Cost records the work performed while processing sub-lists, in the
// abstract units the simulated-machine replayer charges: bitmap-AND word
// operations, tail pair adjacency checks, and maximality probes.  It is
// additive across sub-lists.
type Cost struct {
	ANDWords  int64 // words touched by common-neighbor ANDs
	Pairs     int64 // tail pairs examined for adjacency
	Probes    int64 // maximality probes (worst-case words each)
	Generated int64 // cliques generated (maximal + candidate)
}

// Add accumulates o into c.
func (c *Cost) Add(o Cost) {
	c.ANDWords += o.ANDWords
	c.Pairs += o.Pairs
	c.Probes += o.Probes
	c.Generated += o.Generated
}

// Units collapses the cost into a single scalar work measure.  Pair checks
// are single-word operations; AND and probe terms are word-counted
// already.
func (c Cost) Units() int64 { return c.ANDWords + c.Pairs + c.Probes }

// Builder accumulates the next level's sub-lists plus statistics.  Each
// worker thread owns one Builder, so generation needs no locking — the
// independence property the paper's multithreading rests on.
type Builder struct {
	g     graph.Interface
	dense *graph.Graph // non-nil when g is the dense backend (fast path)
	mode  CNMode
	pool  *bitset.Pool

	Next     []*SubList
	Maximal  int64
	Cands    int64 // candidate cliques kept (Σ tails of Next)
	Dropped  int64 // non-maximal cliques discarded from singleton sub-lists
	Cost     Cost
	NewBytes int64 // paper-formula bytes of Next

	// Gov, when non-nil, is the run's memory governor: keep charges every
	// retained sub-list's paper-formula bytes against it.  The governor
	// may be shared by many builders; charges are atomic.
	Gov *membudget.Governor
	// TripOnOver additionally makes ProcessSubList a no-op (with
	// Exceeded set) once the governor reports Over — the sequential
	// backend's sub-list-granular abort, reproducing the paper's mid-run
	// termination of the graph-B blow-up (607 GB of (k+1)-cliques)
	// without owning 2 TB.  Worker pools leave it unset: a pool must
	// complete every sub-list it deposits so the in-order frontier stays
	// a consistent cut, and instead polls the governor between chunks.
	TripOnOver bool
	Exceeded   bool

	// Spill, when non-nil, switches the builder to drain mode: surviving
	// candidate sub-lists are not retained (and not charged) — each
	// candidate is written through Spill as a sorted (k+1)-record
	// (prefix, v, u), the on-disk level format of the out-of-core
	// engine.  Maximal cliques still go to the reporter, in the same
	// order, so a drained step's emissions are byte-identical to an
	// in-core step's.  A Spill error latches in SpillErr and turns the
	// remaining ProcessSubList calls into no-ops.
	Spill    func(rec []uint32) error
	SpillErr error
	spillRec []uint32

	// Ctx, when non-nil, lets Step abandon a level between sub-lists;
	// Canceled records that it did (and is cleared by Reset).
	Ctx      context.Context
	Canceled bool

	// matRows: rows of this representation have expensive per-bit Test
	// (WAH walks the compressed stream from the start on every probe),
	// so the generic join materializes each tail row once into
	// rowScratch instead of probing the row per pair.
	matRows    bool
	rowScratch *bitset.Bitset

	words   int
	cnBytes int
	scratch *bitset.Bitset // CN of the current k-clique being extended
	recompu *bitset.Bitset // prefix CN reconstruction in recompute mode
	emitBuf clique.Clique

	// Level storage arenas (see arena.go): prefix/tail slices and
	// SubList headers are bump-allocated per generation and recycled two
	// Resets later, when the level they back is provably dead.  The
	// survivors of one join accumulate in tailScratch and are copied
	// exact-size into the arena only if the sub-list is retained, so the
	// hot loop never grows a fresh slice.  retNext recycles the Next
	// backing arrays on the same two-generation lag.
	u32s        arena[uint32]
	subs        arena[SubList]
	tailScratch []uint32
	retNext     [2][]*SubList
}

// NewBuilder returns a Builder generating into graph g's universe.
// storeCN selects the paper's store-the-bitmap mode; pool supplies and
// recycles common-neighbor bitmaps and may be shared across Builders
// (bitset.Pool is concurrency-safe).
func NewBuilder(g graph.Interface, storeCN bool, pool *bitset.Pool) *Builder {
	mode := CNStore
	if !storeCN {
		mode = CNRecompute
	}
	return NewBuilderMode(g, mode, pool)
}

// NewBuilderMode is NewBuilder with an explicit bitmap mode.  A dense
// graph is detected once here, so the hot generation loop branches on a
// nil check instead of a per-pair interface dispatch.
func NewBuilderMode(g graph.Interface, mode CNMode, pool *bitset.Pool) *Builder {
	words := (g.N() + 63) / 64
	dense, _ := g.(*graph.Graph)
	_, compressed := g.(wahRows)
	b := &Builder{
		g:       g,
		dense:   dense,
		mode:    mode,
		pool:    pool,
		matRows: compressed,
		words:   words,
		cnBytes: words * 8,
		scratch: bitset.New(g.N()),
		recompu: bitset.New(g.N()),
		// Block schedules double from a few KiB up to a cap, so tiny
		// graphs carry tiny arenas while genome-scale levels settle on a
		// handful of 32 KiB blocks per generation.
		u32s: arena[uint32]{minLen: 1 << 9, maxLen: 1 << 13},
		subs: arena[SubList]{minLen: 1 << 5, maxLen: 1 << 10},
	}
	if b.matRows {
		b.rowScratch = bitset.New(g.N())
	}
	return b
}

// Reset clears the builder for a new level, retaining scratch storage and
// the budget setting.  It is also the arena generation boundary: level
// storage handed out two Resets ago backed a level that has since been
// consumed, so its blocks (and the Next backing array of that
// generation) are recycled here.  Callers that hold a produced Level
// must therefore consume it within one further Reset — the discipline
// every driver's at-most-two-levels-resident loop already follows.
func (b *Builder) Reset() {
	b.u32s.flip()
	b.subs.flip()
	old := b.retNext[1]
	b.retNext[1] = b.retNext[0]
	b.retNext[0] = b.Next
	b.Next = old[:0]
	b.Maximal = 0
	b.Cands = 0
	b.Dropped = 0
	b.Cost = Cost{}
	b.NewBytes = 0
	b.Exceeded = false
	b.Canceled = false
	b.SpillErr = nil
}

// ScratchBytes returns the resident footprint of the builder's private
// scratch bitmaps — what a worker pool charges the memory governor per
// builder, independent of any level's candidates.
func (b *Builder) ScratchBytes() int64 {
	n := 2 * int64(b.words) * 8 // scratch + recompu
	if b.matRows {
		n += int64(b.words) * 8 // rowScratch
	}
	return n
}

// prefixCN returns the common-neighbor bitmap of s.Prefix: the stored
// dense one, a decompression of the stored WAH form, or a reconstruction
// by (k-2) ANDs over adjacency rows (the paper's memory-saving
// alternative).
//
//repro:hotpath
func (b *Builder) prefixCN(s *SubList) *bitset.Bitset {
	if s.CN != nil {
		return s.CN
	}
	cn := b.recompu
	if s.CNC != nil {
		s.CNC.DecompressInto(cn)
		b.Cost.ANDWords += int64(b.words) // one pass over the bitmap
		return cn
	}
	if b.dense != nil {
		cn.CopyFrom(b.dense.Neighbors(int(s.Prefix[0])))
		for _, p := range s.Prefix[1:] {
			cn.And(cn, b.dense.Neighbors(int(p)))
			b.Cost.ANDWords += int64(b.words)
		}
		return cn
	}
	b.g.Materialize(int(s.Prefix[0]), cn)
	for _, p := range s.Prefix[1:] {
		b.g.Row(int(p)).IntersectInto(cn)
		b.Cost.ANDWords += int64(b.words)
	}
	return cn
}

// ProcessSubList is the paper's GenerateKCliques inner loop for one
// sub-list (Figure 3): it joins tail pairs into (k+1)-cliques, reports
// maximal ones to r, and appends surviving candidate sub-lists to the
// builder.  The input sub-list's bitmap is released back to the pool.
//
// Cost accounting and generation are exact regardless of Builder mode.
func (b *Builder) ProcessSubList(s *SubList, r clique.Reporter) {
	if b.SpillErr != nil {
		if s.CN != nil {
			b.pool.Put(s.CN)
			s.CN = nil
		}
		return
	}
	if b.Spill == nil && b.TripOnOver && b.Gov.Over() {
		b.Exceeded = true
		if s.CN != nil {
			b.pool.Put(s.CN)
			s.CN = nil
		}
		return
	}
	prefixCN := b.prefixCN(s)
	if b.dense != nil {
		b.processDense(s, prefixCN, r)
	} else {
		b.processGeneric(s, prefixCN, r)
	}
	if s.CN != nil {
		b.pool.Put(s.CN)
		s.CN = nil
	}
}

// processDense is the inner loop over the dense bitmap backend: direct
// row pointers, word-parallel AND and fused AND-any probes.  Survivors
// accumulate in the builder's tail scratch; keep copies them into arena
// storage only when the sub-list is retained.
//
//repro:hotpath
func (b *Builder) processDense(s *SubList, prefixCN *bitset.Bitset, r clique.Reporter) {
	tails := s.Tails
	for i := 0; i < len(tails)-1; i++ {
		v := int(tails[i])
		nv := b.dense.Neighbors(v)
		// CN(prefix+v) is needed only if this sub-list survives into the
		// next level: the maximality probes run fused over (prefixCN, nv,
		// N(u)) without it, so the materialize is deferred to keepLazy.
		// The cost model still charges the AND — it is the work the
		// paper's abstract machine performs for this join.
		b.Cost.ANDWords += int64(b.words)

		b.tailScratch = b.tailScratch[:0]
		for j := i + 1; j < len(tails); j++ {
			u := int(tails[j])
			b.Cost.Pairs++
			if !nv.Test(u) {
				continue
			}
			// (prefix, v, u) is a (k+1)-clique; it is maximal iff
			// CN(prefix+v) ∩ N(u) is empty.
			b.Cost.Probes += int64(b.words)
			b.Cost.Generated++
			if bitset.AndAny3(prefixCN, nv, b.dense.Neighbors(u)) {
				b.tailScratch = append(b.tailScratch, uint32(u))
			} else {
				b.emitMaximal(s.Prefix, v, u, r)
			}
		}
		b.keepLazy(s.Prefix, v, b.tailScratch, prefixCN, nv)
	}
}

// processGeneric is the same join over the representation-independent
// row contract: adjacency tests and maximality probes run on the rows'
// native encodings (CSR: neighbor-list walks and binary searches; WAH:
// compressed-stream walks), so no graph row is densified per pair.
//
//repro:hotpath
func (b *Builder) processGeneric(s *SubList, prefixCN *bitset.Bitset, r clique.Reporter) {
	tails := s.Tails
	for i := 0; i < len(tails)-1; i++ {
		v := int(tails[i])
		rv := b.g.Row(v)
		var nv *bitset.Bitset
		if b.matRows && len(tails)-i > 8 {
			// Expensive-Test rows (WAH): when enough pairs remain,
			// densify N(v) once so the per-pair adjacency probe is O(1)
			// instead of a compressed-stream walk per pair.  Short tail
			// runs stay on the direct probe — one decompression would
			// cost more than the few probes it saves.  CN(prefix+v) is
			// not materialized here: the probes run fused over
			// (prefixCN, nv) against u's compressed row, and keepLazy
			// materializes only if the sub-list survives.
			b.g.Materialize(v, b.rowScratch)
			nv = b.rowScratch
		} else {
			// Common neighbors of the k-clique prefix+v.
			rv.AndInto(b.scratch, prefixCN)
		}
		b.Cost.ANDWords += int64(b.words)

		b.tailScratch = b.tailScratch[:0]
		for j := i + 1; j < len(tails); j++ {
			u := int(tails[j])
			b.Cost.Pairs++
			if nv != nil {
				if !nv.Test(u) {
					continue
				}
			} else if !rv.Test(u) {
				continue
			}
			b.Cost.Probes += int64(b.words)
			b.Cost.Generated++
			var alive bool
			if nv != nil {
				alive = b.g.Row(u).AndAnyWith(prefixCN, nv)
			} else {
				alive = b.g.Row(u).IntersectsWith(b.scratch)
			}
			if alive {
				b.tailScratch = append(b.tailScratch, uint32(u))
			} else {
				b.emitMaximal(s.Prefix, v, u, r)
			}
		}
		if nv != nil {
			b.keepLazy(s.Prefix, v, b.tailScratch, prefixCN, nv)
		} else {
			b.keep(s.Prefix, v, b.tailScratch)
		}
	}
}

// emitMaximal reports the maximal clique prefix+v+u.
//
//repro:hotpath
func (b *Builder) emitMaximal(prefix []uint32, v, u int, r clique.Reporter) {
	b.Maximal++
	if r != nil {
		b.emitBuf = b.emitBuf[:0]
		for _, p := range prefix {
			b.emitBuf = append(b.emitBuf, int(p))
		}
		b.emitBuf = append(b.emitBuf, v, u)
		r.Emit(b.emitBuf)
	}
}

// keepLazy is keep for the fused join paths, which skip the CN(prefix+v)
// materialize during probing: it performs the deferred scratch = prefixCN
// AND nv only when keep will actually consume scratch — a retained
// sub-list in a CN-carrying mode.  Drain mode and recompute mode never
// touch scratch, and the |S| <= 1 cases retain nothing, so most joins
// never pay the materialize at all.
//
//repro:hotpath
func (b *Builder) keepLazy(prefix []uint32, v int, newTails []uint32, prefixCN, nv *bitset.Bitset) {
	if len(newTails) > 1 && b.Spill == nil && b.mode != CNRecompute {
		b.scratch.And(prefixCN, nv)
	}
	b.keep(prefix, v, newTails)
}

// keep retains the surviving candidate sub-list (prefix+v with the given
// tails) whose common-neighbor bitmap is b.scratch, applying the paper's
// |S_{k+1}| > 1 rule.  newTails may alias the builder's tail scratch: a
// retained sub-list copies it exact-size into arena storage.
//
//nolint:budgetpair ownership of the charge transfers with the kept sub-list: the level loop releases it when the produced level is consumed (Enumerate's st.Bytes release) or aborted
//repro:hotpath
func (b *Builder) keep(prefix []uint32, v int, newTails []uint32) {
	switch {
	case len(newTails) > 1:
		if b.Spill != nil {
			// Drain mode: the survivors leave as sorted on-disk records
			// instead of resident sub-lists.  The |S| > 1 rule still
			// applies — a spilled singleton run could never join — so the
			// drained level holds exactly the cliques the in-core level
			// would have.
			if b.SpillErr != nil {
				return
			}
			k := len(prefix) + 2
			rec := growRec(&b.spillRec, k)
			copy(rec, prefix)
			rec[k-2] = uint32(v)
			for _, u := range newTails {
				rec[k-1] = u
				if err := b.Spill(rec); err != nil {
					b.SpillErr = err
					return
				}
			}
			b.Cands += int64(len(newTails))
			return
		}
		ns := b.newSubList()
		p := b.u32s.alloc(len(prefix) + 1)
		copy(p, prefix)
		p[len(prefix)] = uint32(v)
		ns.Prefix = p
		t := b.u32s.alloc(len(newTails))
		copy(t, newTails)
		ns.Tails = t
		switch b.mode {
		case CNStore:
			cn := b.pool.GetNoClear()
			cn.CopyFrom(b.scratch)
			ns.CN = cn
		case CNCompress:
			ns.CNC = wah.Compress(b.scratch)
		}
		b.Next = append(b.Next, ns)
		b.Cands += int64(len(newTails))
		b.NewBytes += ns.bytes(b.cnBytes)
		b.Gov.Charge(ns.bytes(b.cnBytes))
	case len(newTails) == 1:
		// A lone non-maximal clique cannot join with a sibling; the
		// paper's |S_{k+1}| > 1 rule discards it.
		b.Dropped++
	}
}

// newSubList returns a zeroed SubList header from the slab arena.
func (b *Builder) newSubList() *SubList {
	s := b.subs.alloc(1)
	s[0] = SubList{}
	return &s[0]
}

// growRec resizes the spill record buffer; out of line so keep's rare
// growth stays off the hotalloc-pinned path.
func growRec(buf *[]uint32, n int) []uint32 {
	if cap(*buf) < n {
		*buf = make([]uint32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// LevelStats summarizes one generation step k -> k+1.
type LevelStats struct {
	FromK     int   // size of the consumed candidates
	Sublists  int   // N[k] consumed
	Cliques   int64 // M[k] consumed
	Bytes     int64 // paper-formula bytes of the consumed level
	NextSub   int   // N[k+1] produced
	NextCl    int64 // M[k+1] produced
	NextBytes int64 // paper-formula bytes of the produced level
	Maximal   int64 // maximal (k+1)-cliques reported
	Dropped   int64 // non-maximal (k+1)-cliques discarded (singleton rule)
	Cost      Cost
}

// Step runs one sequential generation step over an entire level and
// returns the next level with statistics.  The input level's bitmaps are
// recycled; its sub-list slice must not be reused by the caller.
func Step(g graph.Interface, lvl *Level, r clique.Reporter, b *Builder) (*Level, LevelStats) {
	st := LevelStats{
		FromK:    lvl.K,
		Sublists: len(lvl.Sub),
		Cliques:  lvl.Cliques(),
		Bytes:    lvl.Bytes(g.N()),
	}
	b.Reset()
	for i, s := range lvl.Sub {
		if b.Ctx != nil && i&63 == 0 && b.Ctx.Err() != nil {
			b.Canceled = true
			break
		}
		b.ProcessSubList(s, r)
	}
	st.NextSub = len(b.Next)
	st.NextCl = b.Cands
	st.NextBytes = b.NewBytes
	st.Maximal = b.Maximal
	st.Dropped = b.Dropped
	st.Cost = b.Cost
	return &Level{K: lvl.K + 1, Sub: b.Next}, st
}
