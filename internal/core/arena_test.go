package core

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/membudget"
)

// arenaTestGraph is a graph dense enough to run several generation
// levels with hundreds of retained sub-lists per level — the load the
// arena pin needs to be meaningful.
func arenaTestGraph() *graph.Graph {
	rng := rand.New(rand.NewSource(71))
	g := graph.PlantedGraph(rng, 120, []graph.PlantedCliqueSpec{
		{Size: 9}, {Size: 8, Overlap: 3}, {Size: 7, Overlap: 2}, {Size: 7},
	}, 600)
	return g
}

// runLevels drives the sequential level loop from the given seed to
// exhaustion on one builder and reports how many sub-lists were retained
// across all levels.  The seed level is read-only in recompute mode, so
// callers may reuse it across runs.
func runLevels(g *graph.Graph, seed *Level, b *Builder) (retained int) {
	lvl := seed
	for len(lvl.Sub) > 0 {
		next, _ := Step(g, lvl, nil, b)
		retained += len(next.Sub)
		lvl = next
	}
	return retained
}

// TestLevelLoopAllocs pins the arena guarantee: once the free lists are
// warm, a full level loop allocates O(levels) — the Level headers Step
// returns — instead of three heap objects (header, prefix, tails) per
// retained sub-list.  Recompute mode isolates the level storage itself
// from bitmap-pool and WAH-compression churn.
func TestLevelLoopAllocs(t *testing.T) {
	g := arenaTestGraph()
	seed := SeedFromEdgesMode(g, CNRecompute)
	b := NewBuilderMode(g, CNRecompute, bitset.NewPool(g.N()))

	retained := runLevels(g, seed, b) // warm the arenas and scratch
	if retained < 200 {
		t.Fatalf("only %d sub-lists retained; graph too easy to pin allocations", retained)
	}

	allocs := testing.AllocsPerRun(5, func() {
		runLevels(g, seed, b)
	})
	// One *Level per Step plus slack for a rare block-schedule step; the
	// pre-arena implementation allocated 3x per retained sub-list
	// (hundreds per run).
	if allocs > 32 {
		t.Errorf("level loop allocates %.0f objects per run with warm arenas (retained %d sub-lists); want <= 32",
			allocs, retained)
	}
}

// TestArenaLedgerChargesOnce pins the accounting contract of recycling:
// a retained sub-list's paper-formula bytes are charged to the governor
// exactly once, whether its storage came from a fresh block or a
// recycled one, and every charge is released by the level loop — so a
// second run on warm (fully recycled) arenas shows the same peak and
// the ledger returns to zero both times.
func TestArenaLedgerChargesOnce(t *testing.T) {
	g := arenaTestGraph()
	seed := SeedFromEdgesMode(g, CNRecompute)
	b := NewBuilderMode(g, CNRecompute, bitset.NewPool(g.N()))

	run := func() (peak int64) {
		gov := membudget.New(0) // unlimited: observe, never trip
		b.Gov = gov
		lvl := seed
		gov.Charge(lvl.Bytes(g.N()))
		for len(lvl.Sub) > 0 {
			next, st := Step(g, lvl, nil, b)
			gov.Release(st.Bytes)
			lvl = next
		}
		gov.Release(lvl.Bytes(g.N()))
		if used := gov.Used(); used != 0 {
			t.Fatalf("governor ledger unbalanced after run: used = %d", used)
		}
		return gov.Peak()
	}

	cold := run()
	blocksAfterCold := b.u32s.blocks() + b.subs.blocks()
	warm := run()
	if cold != warm {
		t.Errorf("peak differs between cold (%d) and warm (%d) arenas: recycled storage is not charged once", cold, warm)
	}
	if grown := b.u32s.blocks() + b.subs.blocks(); grown > blocksAfterCold {
		t.Errorf("arena grew from %d to %d blocks on an identical warm run; free lists are not recycling",
			blocksAfterCold, grown)
	}
}

// TestArenaLag2Liveness pins the recycling lag: the storage of a
// produced level must stay intact while the NEXT level is generated
// (one further Reset), because that is exactly when the driver loops
// read it.  The sub-lists captured at each step are re-validated right
// before the step that consumes them.
func TestArenaLag2Liveness(t *testing.T) {
	g := arenaTestGraph()
	seed := SeedFromEdgesMode(g, CNRecompute)
	b := NewBuilderMode(g, CNRecompute, bitset.NewPool(g.N()))

	lvl := seed
	for len(lvl.Sub) > 0 {
		// Snapshot the current level's contents, step (which Resets once
		// and reads lvl), and verify the snapshot never changed beneath
		// the consuming loop.
		type snap struct {
			prefix []uint32
			tails  []uint32
		}
		snaps := make([]snap, len(lvl.Sub))
		for i, s := range lvl.Sub {
			snaps[i] = snap{
				prefix: append([]uint32(nil), s.Prefix...),
				tails:  append([]uint32(nil), s.Tails...),
			}
		}
		subs := lvl.Sub
		next, _ := Step(g, lvl, nil, b)
		for i, s := range subs {
			if !equalU32(s.Prefix, snaps[i].prefix) || !equalU32(s.Tails, snaps[i].tails) {
				t.Fatalf("level k=%d sub-list %d mutated while being consumed", lvl.K, i)
			}
		}
		lvl = next
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
