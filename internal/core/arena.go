package core

// Level storage arena: a chunked bump allocator with generation
// recycling for the per-sub-list slices (prefixes, tails) and SubList
// headers a Builder retains.  The enumeration's level discipline — at
// most two levels resident, a consumed level dies at the next step
// boundary — makes lifetimes fully deterministic, so the storage never
// needs to reach the garbage collector at all:
//
//   - Every allocation made while generating level k+1 belongs to one
//     generation.  The produced level is read while level k+2 is
//     generated, and is dead before level k+3 starts.
//   - Every Builder driver (sequential Step, the streaming and barrier
//     worker pools, hybrid, simarch) calls Reset exactly once per level,
//     so Reset is the generation boundary: blocks that served the level
//     before last are provably dead and join the free list.
//
// Recycling changes the physical allocator, not the accounting: a
// retained sub-list's paper-formula bytes are still charged against the
// memory governor exactly once, in keep, and released when its level is
// consumed — the arena's steady-state block footprint is the recycled
// capacity behind those charges, never a second ledger entry.  Trip and
// cancel paths are safe by construction: a builder that stops mid-run
// never Resets again, so the frontier levels it leaves behind keep
// their storage.

// arena is one generation-recycled block allocator.  minLen seeds the
// doubling schedule (tiny graphs stay tiny); maxLen caps the steady-
// state block so a free block is never an outsized hostage.
type arena[T any] struct {
	minLen  int
	maxLen  int
	nextLen int   // doubling schedule for freshly made blocks
	active  []T   // unconsumed tail of the newest current-generation block
	cur     [][]T // blocks serving the level being generated
	prev    [][]T // blocks of the level now being consumed
	free    [][]T // blocks two generations old: dead, ready for reuse
}

// alloc returns storage for exactly n elements, capacity-clamped so a
// later append can never scribble over a neighbouring allocation.  The
// contents are unspecified; callers overwrite every element.
//
//repro:hotpath
func (a *arena[T]) alloc(n int) []T {
	if n > len(a.active) {
		a.refill(n)
	}
	s := a.active[:n:n]
	a.active = a.active[n:]
	return s
}

// refill installs a block with room for n elements: a recycled one when
// the free list has a fit, a fresh make otherwise.  Out of line so
// alloc's fast path stays allocation-free under the hotalloc pin.
func (a *arena[T]) refill(n int) {
	for i := len(a.free) - 1; i >= 0; i-- {
		if blk := a.free[i]; cap(blk) >= n {
			a.free[i] = a.free[len(a.free)-1]
			a.free[len(a.free)-1] = nil
			a.free = a.free[:len(a.free)-1]
			a.cur = append(a.cur, blk[:cap(blk)])
			a.active = blk[:cap(blk)]
			return
		}
	}
	want := a.nextLen
	if want < a.minLen {
		want = a.minLen
	}
	if want > a.maxLen {
		want = a.maxLen
	}
	if want < n {
		want = n // oversized request: a dedicated block
	}
	a.nextLen = want * 2
	blk := make([]T, want)
	a.cur = append(a.cur, blk)
	a.active = blk
}

// flip advances one generation at a level boundary: the blocks that
// served the level before last are dead (their level has been consumed
// and retired) and join the free list; the current generation becomes
// the consumed one.
func (a *arena[T]) flip() {
	a.free = append(a.free, a.prev...)
	recycled := a.prev[:0]
	a.prev = a.cur
	a.cur = recycled
	a.active = nil
}

// blocks reports how many blocks the arena currently retains across all
// generations and the free list — observability for the recycling
// tests.
func (a *arena[T]) blocks() int {
	return len(a.cur) + len(a.prev) + len(a.free)
}
