package core

import (
	"math/rand"
	"testing"

	"repro/internal/clique"
	"repro/internal/graph"
)

func seedTestGraph(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return graph.PlantedGraph(rng, 90, []graph.PlantedCliqueSpec{
		{Size: 10}, {Size: 7, Overlap: 3}, {Size: 5},
	}, 220)
}

// sameSublists asserts two levels hold identical sub-lists in identical
// order, including bitmap content.
func sameSublists(t *testing.T, got, want *Level, n int) {
	t.Helper()
	if got.K != want.K {
		t.Fatalf("K = %d, want %d", got.K, want.K)
	}
	if len(got.Sub) != len(want.Sub) {
		t.Fatalf("%d sub-lists, want %d", len(got.Sub), len(want.Sub))
	}
	for i := range want.Sub {
		g, w := got.Sub[i], want.Sub[i]
		if len(g.Prefix) != len(w.Prefix) || len(g.Tails) != len(w.Tails) {
			t.Fatalf("sub-list %d shape mismatch", i)
		}
		for j := range w.Prefix {
			if g.Prefix[j] != w.Prefix[j] {
				t.Fatalf("sub-list %d prefix differs", i)
			}
		}
		for j := range w.Tails {
			if g.Tails[j] != w.Tails[j] {
				t.Fatalf("sub-list %d tails differ", i)
			}
		}
		if (g.CN == nil) != (w.CN == nil) {
			t.Fatalf("sub-list %d CN presence differs", i)
		}
		if g.CN != nil && !g.CN.Equal(w.CN) {
			t.Fatalf("sub-list %d CN bitmap differs", i)
		}
	}
}

func checkHomes(t *testing.T, homes []int32, subs, workers int) {
	t.Helper()
	if len(homes) != subs {
		t.Fatalf("%d homes for %d sub-lists", len(homes), subs)
	}
	for i, h := range homes {
		if int(h) < 0 || int(h) >= workers {
			t.Fatalf("home[%d] = %d out of [0,%d)", i, h, workers)
		}
	}
}

func TestSeedFromEdgesParallelMatchesSequential(t *testing.T) {
	g := seedTestGraph(11)
	for _, mode := range []CNMode{CNStore, CNRecompute} {
		want := SeedFromEdgesMode(g, mode)
		for _, workers := range []int{1, 2, 4, 7} {
			lvl, homes := SeedFromEdgesParallel(g, mode, workers)
			sameSublists(t, lvl, want, g.N())
			checkHomes(t, homes, len(lvl.Sub), workers)
		}
	}
}

func TestSeedFromKParallelMatchesSequential(t *testing.T) {
	g := seedTestGraph(12)
	for _, k := range []int{3, 4, 6} {
		seqCol := &clique.Collector{}
		want, seqStats, err := SeedFromKMode(g, k, CNStore, seqCol)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 5} {
			parCol := &clique.Collector{}
			lvl, homes, st, err := SeedFromKParallel(g, k, CNStore, workers, parCol)
			if err != nil {
				t.Fatal(err)
			}
			sameSublists(t, lvl, want, g.N())
			checkHomes(t, homes, len(lvl.Sub), workers)
			// Maximal k-cliques must arrive in the identical canonical
			// order, not merely as the same set.
			if len(parCol.Cliques) != len(seqCol.Cliques) {
				t.Fatalf("k=%d workers=%d: %d maximal seeds, want %d",
					k, workers, len(parCol.Cliques), len(seqCol.Cliques))
			}
			for i := range seqCol.Cliques {
				if clique.Compare(parCol.Cliques[i], seqCol.Cliques[i]) != 0 {
					t.Fatalf("k=%d workers=%d: seed emission %d is %v, want %v",
						k, workers, i, parCol.Cliques[i], seqCol.Cliques[i])
				}
			}
			if st.Maximal != seqStats.Maximal || st.Candidates != seqStats.Candidates ||
				st.Groups != seqStats.Groups {
				t.Errorf("k=%d workers=%d: stats %+v, want counts of %+v",
					k, workers, st, seqStats)
			}
		}
	}
}

func TestSeedFromKParallelRejectsSmallK(t *testing.T) {
	g := seedTestGraph(13)
	if _, _, _, err := SeedFromKParallel(g, 2, CNStore, 4, nil); err == nil {
		t.Error("k=2 accepted")
	}
}
