package core

import (
	"math/rand"
	"testing"

	"repro/internal/clique"
	"repro/internal/graph"
)

// TestCompressedModeMatchesStored: the WAH-compressed bitmap mode must
// produce exactly the same maximal cliques as the dense default, across
// random and planted graphs and across seed levels.
func TestCompressedModeMatchesStored(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 15; trial++ {
		g := graph.PlantedGraph(rng, 60, []graph.PlantedCliqueSpec{
			{Size: 8}, {Size: 6, Overlap: 3},
		}, 100)
		for _, lo := range []int{2, 4, 5} {
			dense := &clique.Collector{}
			if _, err := Enumerate(g, Options{Lo: lo, Reporter: dense}); err != nil {
				t.Fatal(err)
			}
			compressed := &clique.Collector{}
			if _, err := Enumerate(g, Options{Lo: lo, CompressCN: true, Reporter: compressed}); err != nil {
				t.Fatal(err)
			}
			if ok, diff := clique.SameSets(dense.Cliques, compressed.Cliques); !ok {
				t.Fatalf("trial %d lo=%d: %s", trial, lo, diff)
			}
		}
	}
}

// TestCompressedModeSavesMemoryOnSparseGraphs: on a genome-scale sparse
// graph the compressed bitmaps must undercut the dense formula bytes —
// the compression-rate claim of the paper's conclusions.
func TestCompressedModeSavesMemoryOnSparseGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	// 4,000 vertices, one 12-module and sparse noise: dense bitmaps cost
	// 500 bytes each; common-neighbor sets are tiny.
	g := graph.PlantedGraph(rng, 4000, []graph.PlantedCliqueSpec{{Size: 12}}, 2500)
	dense, err := Enumerate(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	compressed, err := Enumerate(g, Options{CompressCN: true})
	if err != nil {
		t.Fatal(err)
	}
	if compressed.MaximalCliques != dense.MaximalCliques {
		t.Fatalf("clique counts differ: %d vs %d",
			compressed.MaximalCliques, dense.MaximalCliques)
	}
	if compressed.PeakBytes >= dense.PeakBytes {
		t.Errorf("compressed peak %d >= dense peak %d",
			compressed.PeakBytes, dense.PeakBytes)
	}
	ratio := float64(dense.PeakBytes) / float64(compressed.PeakBytes)
	if ratio < 1.5 {
		t.Errorf("compression ratio %.2f on sparse graph, want >= 1.5", ratio)
	}
	t.Logf("peak bytes: dense %d, compressed %d (%.1fx)",
		dense.PeakBytes, compressed.PeakBytes, ratio)
}

func TestCompressedAndRecomputeMutuallyExclusive(t *testing.T) {
	g := graph.New(3)
	if _, err := Enumerate(g, Options{RecomputeCN: true, CompressCN: true}); err == nil {
		t.Fatal("conflicting modes accepted")
	}
}

// TestAllThreeModesAgreeOnFigure4 exercises the three bitmap modes on a
// deterministic structure.
func TestAllThreeModesAgreeOnFigure4(t *testing.T) {
	g := graph.New(15)
	graph.PlantClique(g, []int{0, 1, 2, 3, 4})
	graph.PlantClique(g, []int{5, 6, 7, 8})
	graph.PlantClique(g, []int{9, 10, 11})
	graph.PlantClique(g, []int{12, 13, 14})
	var results [][]clique.Clique
	for _, opts := range []Options{
		{},
		{RecomputeCN: true},
		{CompressCN: true},
	} {
		col := &clique.Collector{}
		opts.Reporter = col
		if _, err := Enumerate(g, opts); err != nil {
			t.Fatal(err)
		}
		col.Sort()
		results = append(results, col.Cliques)
	}
	for i := 1; i < len(results); i++ {
		if ok, diff := clique.SameSets(results[0], results[i]); !ok {
			t.Fatalf("mode %d: %s", i, diff)
		}
	}
}
