package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bk"
	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/kose"
)

// maximalAtLeast filters brute-force maximal cliques by a size floor.
func maximalAtLeast(g *graph.Graph, lo int) []clique.Clique {
	var out []clique.Clique
	for _, c := range clique.BruteForceMaximal(g) {
		if len(c) >= lo {
			out = append(out, c)
		}
	}
	return out
}

func enumerate(t *testing.T, g *graph.Graph, opts Options) (*clique.Collector, *Result) {
	t.Helper()
	col := &clique.Collector{}
	opts.Reporter = col
	res, err := Enumerate(g, opts)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	return col, res
}

func TestFigure2Example(t *testing.T) {
	// Figure 2 of the paper: K4 on {a,b,c,d}; the only maximal clique is
	// the 4-clique itself.
	g := graph.New(4)
	graph.PlantClique(g, []int{0, 1, 2, 3})
	col, res := enumerate(t, g, Options{})
	if len(col.Cliques) != 1 || col.Cliques[0].Key() != "0,1,2,3" {
		t.Fatalf("cliques = %v", col.Cliques)
	}
	if res.MaximalCliques != 1 || res.MaxCliqueSize != 4 {
		t.Errorf("result = %+v", res)
	}
}

func TestFigure4Example(t *testing.T) {
	// Figure 4 illustrates the algorithm on a graph with "two maximal
	// 3-cliques, one maximal 4-clique and one maximal 5-clique".
	// Disjoint cliques realize exactly those counts; overlap structures
	// are covered by TestCrossValidation.
	g := graph.New(15)
	graph.PlantClique(g, []int{0, 1, 2, 3, 4}) // maximal 5-clique
	graph.PlantClique(g, []int{5, 6, 7, 8})    // maximal 4-clique
	graph.PlantClique(g, []int{9, 10, 11})     // maximal 3-clique
	graph.PlantClique(g, []int{12, 13, 14})    // maximal 3-clique
	want := maximalAtLeast(g, 3)
	sizes := map[int]int{}
	for _, c := range want {
		sizes[len(c)]++
	}
	if sizes[3] != 2 || sizes[4] != 1 || sizes[5] != 1 {
		t.Fatalf("construction broken: sizes %v", sizes)
	}
	col, _ := enumerate(t, g, Options{})
	if ok, diff := clique.SameSets(col.Cliques, want); !ok {
		t.Fatalf("mismatch: %s", diff)
	}
}

func TestNonDecreasingOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g := graph.PlantedGraph(rng, 50, []graph.PlantedCliqueSpec{
		{Size: 8}, {Size: 5, Overlap: 2}, {Size: 4, Overlap: 1},
	}, 80)
	lastSize := 0
	_, err := Enumerate(g, Options{Reporter: clique.ReporterFunc(func(c clique.Clique) {
		if len(c) < lastSize {
			t.Fatalf("order violated: size %d after %d", len(c), lastSize)
		}
		lastSize = len(c)
	})})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCrossValidation is the central correctness test of the repository:
// on random and planted graphs, the Clique Enumerator, both BK variants,
// Kose RAM and brute force must produce identical maximal-clique sets.
func TestCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 50; trial++ {
		var g *graph.Graph
		if trial%3 == 0 {
			size := 3 + rng.Intn(3)
			g = graph.PlantedGraph(rng, size+2+rng.Intn(10),
				[]graph.PlantedCliqueSpec{{Size: size}}, rng.Intn(10))
		} else {
			g = graph.RandomGNP(rng, 3+rng.Intn(13), []float64{0.3, 0.6, 0.8}[trial%3])
		}
		want := maximalAtLeast(g, 3)

		col, _ := enumerate(t, g, Options{})
		if err := clique.Validate(g, col.Cliques, 3, 0); err != nil {
			t.Fatalf("trial %d: core invalid: %v", trial, err)
		}
		if ok, diff := clique.SameSets(col.Cliques, want); !ok {
			t.Fatalf("trial %d: core vs brute: %s", trial, diff)
		}

		var bk3 []clique.Clique
		for _, c := range bk.MaximalCliques(g, bk.Improved) {
			if len(c) >= 3 {
				bk3 = append(bk3, c)
			}
		}
		if ok, diff := clique.SameSets(col.Cliques, bk3); !ok {
			t.Fatalf("trial %d: core vs improved BK: %s", trial, diff)
		}

		koseCliques := kose.MaximalCliques(g, true)
		if ok, diff := clique.SameSets(col.Cliques, koseCliques); !ok {
			t.Fatalf("trial %d: core vs kose: %s", trial, diff)
		}
	}
}

func TestRecomputeCNMatchesStored(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 15; trial++ {
		g := graph.PlantedGraph(rng, 30, []graph.PlantedCliqueSpec{
			{Size: 6}, {Size: 5, Overlap: 2},
		}, 40)
		stored, resStored := enumerate(t, g, Options{})
		recomp, resRecomp := enumerate(t, g, Options{RecomputeCN: true})
		if ok, diff := clique.SameSets(stored.Cliques, recomp.Cliques); !ok {
			t.Fatalf("trial %d: %s", trial, diff)
		}
		// The memory accounting must show the recompute mode cheaper and
		// the AND accounting costlier.
		if resRecomp.PeakBytes >= resStored.PeakBytes {
			t.Errorf("trial %d: recompute peak %d >= stored peak %d",
				trial, resRecomp.PeakBytes, resStored.PeakBytes)
		}
		if resRecomp.TotalCost.ANDWords <= resStored.TotalCost.ANDWords {
			t.Errorf("trial %d: recompute ANDs %d <= stored %d",
				trial, resRecomp.TotalCost.ANDWords, resStored.TotalCost.ANDWords)
		}
	}
}

func TestSeededEnumerationMatchesFull(t *testing.T) {
	// Seeding at Init_K must produce exactly the maximal cliques of size
	// >= Init_K that the full run produces.
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 10; trial++ {
		g := graph.PlantedGraph(rng, 60, []graph.PlantedCliqueSpec{
			{Size: 9}, {Size: 6, Overlap: 3},
		}, 100)
		full, _ := enumerate(t, g, Options{})
		for _, initK := range []int{3, 4, 5, 6, 7} {
			var want []clique.Clique
			for _, c := range full.Cliques {
				if len(c) >= initK {
					want = append(want, c)
				}
			}
			seeded, _ := enumerate(t, g, Options{Lo: initK})
			if ok, diff := clique.SameSets(seeded.Cliques, want); !ok {
				t.Fatalf("trial %d Init_K=%d: %s", trial, initK, diff)
			}
			if err := clique.Validate(g, seeded.Cliques, initK, 0); err != nil {
				t.Fatalf("trial %d Init_K=%d: %v", trial, initK, err)
			}
		}
	}
}

func TestUpperBoundHi(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	g := graph.PlantedGraph(rng, 40, []graph.PlantedCliqueSpec{{Size: 8}}, 60)
	full, _ := enumerate(t, g, Options{})
	for _, hi := range []int{3, 4, 5, 8} {
		var want []clique.Clique
		for _, c := range full.Cliques {
			if len(c) <= hi {
				want = append(want, c)
			}
		}
		bounded, _ := enumerate(t, g, Options{Hi: hi})
		if ok, diff := clique.SameSets(bounded.Cliques, want); !ok {
			t.Fatalf("hi=%d: %s", hi, diff)
		}
	}
	// Lo == Hi with seeding: only maximal cliques of exactly that size.
	exact, _ := enumerate(t, g, Options{Lo: 5, Hi: 5})
	for _, c := range exact.Cliques {
		if len(c) != 5 {
			t.Errorf("Lo=Hi=5 emitted %v", c)
		}
	}
}

func TestReportSmall(t *testing.T) {
	// Isolated vertex 4, isolated edge (2,3), triangle (0,1,5... keep
	// small): maximal cliques of sizes 1, 2, 3.
	g := graph.New(6)
	g.AddEdge(2, 3)
	graph.PlantClique(g, []int{0, 1, 5})
	col, _ := enumerate(t, g, Options{Lo: 1, ReportSmall: true})
	keys := map[string]bool{}
	for _, c := range col.Cliques {
		keys[c.Key()] = true
	}
	for _, want := range []string{"4", "2,3", "0,1,5"} {
		if !keys[want] {
			t.Errorf("missing clique {%s}; got %v", want, col.Cliques)
		}
	}
	if len(col.Cliques) != 3 {
		t.Errorf("cliques = %v", col.Cliques)
	}
	// Without ReportSmall only the triangle appears.
	plain, _ := enumerate(t, g, Options{})
	if len(plain.Cliques) != 1 || plain.Cliques[0].Key() != "0,1,5" {
		t.Errorf("default small handling: %v", plain.Cliques)
	}
}

func TestMemoryBudgetAbort(t *testing.T) {
	// A Moon-Moser-ish overlap graph has enough candidates to trip a tiny
	// budget; the error must wrap ErrMemoryBudget and partial results
	// must still be valid maximal cliques.
	rng := rand.New(rand.NewSource(56))
	g := graph.PlantedGraph(rng, 60, []graph.PlantedCliqueSpec{
		{Size: 10}, {Size: 8, Overlap: 4},
	}, 200)
	col := &clique.Collector{}
	res, err := Enumerate(g, Options{Reporter: col, MemoryBudget: 2048})
	if err == nil {
		t.Fatal("tiny budget did not abort")
	}
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("error %v does not wrap ErrMemoryBudget", err)
	}
	if err := clique.Validate(g, col.Cliques, 3, 0); err != nil {
		t.Errorf("partial results invalid: %v", err)
	}
	if res.PeakBytes <= 2048 {
		t.Errorf("PeakBytes %d should exceed the budget it tripped", res.PeakBytes)
	}
}

func TestLevelStatsConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	g := graph.PlantedGraph(rng, 40, []graph.PlantedCliqueSpec{{Size: 7}}, 70)
	var levels []LevelStats
	col := &clique.Collector{}
	res, err := Enumerate(g, Options{
		Reporter: col,
		OnLevel:  func(st LevelStats) { levels = append(levels, st) },
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	if len(levels) == 0 {
		t.Skip("OnLevel not wired yet")
	}
}

func TestLevelAccountingAgainstResult(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	g := graph.PlantedGraph(rng, 40, []graph.PlantedCliqueSpec{{Size: 7}}, 70)
	col, res := enumerate(t, g, Options{})
	var maximal int64
	for _, st := range res.Levels {
		maximal += st.Maximal
		// Chain consistency: produced counts of one level are the
		// consumed counts of the next.
		if st.FromK >= 3 && st.NextCl > 0 && st.NextSub == 0 {
			t.Errorf("level %d: cliques without sub-lists", st.FromK)
		}
	}
	if maximal != int64(len(col.Cliques)) {
		t.Errorf("levels report %d maximal, collector has %d",
			maximal, len(col.Cliques))
	}
	for i := 1; i < len(res.Levels); i++ {
		if res.Levels[i].Sublists != res.Levels[i-1].NextSub {
			t.Errorf("level chain broken at %d: %d vs %d",
				i, res.Levels[i].Sublists, res.Levels[i-1].NextSub)
		}
		if res.Levels[i].Cliques != res.Levels[i-1].NextCl {
			t.Errorf("clique chain broken at %d", i)
		}
	}
}

func TestMoonMoserCount(t *testing.T) {
	// K_{3,3,3}: 27 maximal 3-cliques (the 3^(n/3) extremal case).
	g := graph.New(9)
	for u := 0; u < 9; u++ {
		for v := u + 1; v < 9; v++ {
			if u/3 != v/3 {
				g.AddEdge(u, v)
			}
		}
	}
	col, res := enumerate(t, g, Options{})
	if len(col.Cliques) != 27 {
		t.Errorf("Moon-Moser: %d cliques, want 27", len(col.Cliques))
	}
	if res.MaxCliqueSize != 3 {
		t.Errorf("MaxCliqueSize = %d", res.MaxCliqueSize)
	}
}

func TestInvalidOptions(t *testing.T) {
	g := graph.New(3)
	if _, err := Enumerate(g, Options{Lo: -1}); err == nil {
		t.Error("negative Lo accepted")
	}
	if _, err := Enumerate(g, Options{Lo: 5, Hi: 4}); err == nil {
		t.Error("Hi < Lo accepted")
	}
	if _, _, err := SeedFromK(g, 2, true, nil); err == nil {
		t.Error("SeedFromK k=2 accepted")
	}
}

func TestEmptyAndEdgelessGraphs(t *testing.T) {
	col, res := enumerate(t, graph.New(0), Options{})
	if len(col.Cliques) != 0 || res.MaximalCliques != 0 {
		t.Error("empty graph produced cliques")
	}
	col, _ = enumerate(t, graph.New(5), Options{})
	if len(col.Cliques) != 0 {
		t.Error("edgeless graph produced cliques >= 3")
	}
}

func TestDroppedSingletonAccounting(t *testing.T) {
	// Construct a case with a known dropped singleton: path of triangles
	// sharing vertices tends to produce lone non-maximal cliques.
	rng := rand.New(rand.NewSource(59))
	var dropped int64
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomGNP(rng, 14, 0.5)
		_, res := enumerate(t, g, Options{})
		for _, st := range res.Levels {
			dropped += st.Dropped
		}
	}
	if dropped == 0 {
		t.Log("no singleton drops observed (acceptable but unusual)")
	}
}
