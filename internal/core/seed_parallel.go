package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/kclique"
)

// seedShardsPerWorker oversubscribes the seed phase: each worker is fed
// several contiguous vertex shards from a shared counter, so the skew of
// low-index shards (whose candidate sets are largest) self-balances
// without a static assignment.
const seedShardsPerWorker = 4

// SeedFromEdgesParallel builds the size-2 seed level with `workers`
// goroutines, each claiming contiguous anchor-vertex shards dynamically.
// Shard outputs are concatenated in shard order, so the returned level is
// identical to SeedFromEdgesMode.  The second return value records the
// creator worker of every sub-list — the initial ownership the Affinity
// strategy schedules by (previously seeding left ownership unset and the
// first generation level silently fell back to a contiguous split).
func SeedFromEdgesParallel(g graph.Interface, mode CNMode, workers int) (*Level, []int32) {
	n := g.N()
	if workers < 1 {
		workers = 1
	}
	shards := workers * seedShardsPerWorker
	if shards > n {
		shards = n
	}
	if workers == 1 || shards <= 1 {
		lvl := SeedFromEdgesMode(g, mode)
		return lvl, make([]int32, len(lvl.Sub))
	}

	type shardOut struct {
		subs   []*SubList
		worker int32
	}
	outs := make([]shardOut, shards)
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int32) {
			defer wg.Done()
			for {
				s := int(atomic.AddInt64(&next, 1)) - 1
				if s >= shards {
					return
				}
				from, to := n*s/shards, n*(s+1)/shards
				outs[s] = shardOut{subs: seedEdgeRange(g, mode, from, to), worker: w}
			}
		}(int32(w))
	}
	wg.Wait()

	lvl := &Level{K: 2}
	var homes []int32
	for _, o := range outs {
		lvl.Sub = append(lvl.Sub, o.subs...)
		for range o.subs {
			homes = append(homes, o.worker)
		}
	}
	return lvl, homes
}

// SeedFromKParallel seeds the enumeration at size k >= 3 with `workers`
// goroutines running sharded k-clique enumerations (kclique
// Options.Shard/Shards).  Sub-lists and maximal k-clique reports are
// merged in shard order, so output order and content match SeedFromKMode
// exactly; the returned homes record each sub-list's creator worker for
// the Affinity strategy.
func SeedFromKParallel(g graph.Interface, k int, mode CNMode, workers int, r clique.Reporter) (*Level, []int32, kclique.Stats, error) {
	if k < 3 {
		return nil, nil, kclique.Stats{}, fmt.Errorf("core: SeedFromKParallel requires k >= 3, got %d", k)
	}
	if workers < 1 {
		workers = 1
	}
	shards := workers * seedShardsPerWorker
	if shards > g.N() {
		shards = g.N()
	}
	if workers == 1 || shards <= 1 {
		lvl, st, err := SeedFromKMode(g, k, mode, r)
		if err != nil {
			return nil, nil, st, err
		}
		return lvl, make([]int32, len(lvl.Sub)), st, nil
	}

	type shardOut struct {
		subs    []*SubList
		maximal []clique.Clique
		st      kclique.Stats
		worker  int32
	}
	outs := make([]shardOut, shards)
	prepared := kclique.Prepare(g, k) // peel once, share across shards
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int32) {
			defer wg.Done()
			for {
				s := int(atomic.AddInt64(&next, 1)) - 1
				if s >= shards {
					return
				}
				o := &outs[s]
				o.worker = w
				o.st = prepared.Enumerate(kclique.Options{
					K:      k,
					Shard:  s,
					Shards: shards,
					OnGroup: func(gr kclique.Group) {
						for _, t := range gr.MaximalTails {
							c := make(clique.Clique, 0, len(gr.Prefix)+1)
							c = append(c, gr.Prefix...)
							o.maximal = append(o.maximal, append(c, t))
						}
						if sl := sublistFromGroup(gr, mode); sl != nil {
							o.subs = append(o.subs, sl)
						}
					},
				})
			}
		}(int32(w))
	}
	wg.Wait()

	lvl := &Level{K: k}
	var homes []int32
	var st kclique.Stats
	for s, o := range outs {
		if r != nil {
			for _, c := range o.maximal {
				r.Emit(c)
			}
		}
		lvl.Sub = append(lvl.Sub, o.subs...)
		for range o.subs {
			homes = append(homes, o.worker)
		}
		st.Maximal += o.st.Maximal
		st.Candidates += o.st.Candidates
		st.Groups += o.st.Groups
		st.SearchNodes += o.st.SearchNodes
		st.BoundaryCuts += o.st.BoundaryCuts
		if s == 0 {
			st.PeeledAway = o.st.PeeledAway // identical in every shard
		}
	}
	return lvl, homes, st, nil
}
