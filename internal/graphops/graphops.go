// Package graphops implements the Boolean graph queries the paper
// proposes for cleaning noisy protein-interaction data: "queries
// consisting of Boolean graph operations (e.g., graph intersection and
// at-least-k-of-n over multiple graphs) can be used to refine the data"
// (Section 1).  Each input graph records one experimental assay (e.g. a
// yeast two-hybrid screen) over the same vertex universe; intersection
// keeps interactions observed by every assay, at-least-k-of-n keeps those
// replicated in at least k assays, suppressing false positives.
//
// All operations work row-wise on the bitmap adjacency substrate, so an
// n-graph query costs n bitset passes per vertex.
package graphops

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// mustSameOrder verifies all graphs share a vertex universe.
func mustSameOrder(gs []*graph.Graph) int {
	if len(gs) == 0 {
		panic("graphops: no graphs")
	}
	n := gs[0].N()
	for i, g := range gs[1:] {
		if g.N() != n {
			panic(fmt.Sprintf("graphops: graph %d has %d vertices, want %d", i+1, g.N(), n))
		}
	}
	return n
}

// Intersection returns the graph whose edges appear in every input.
func Intersection(gs ...*graph.Graph) *graph.Graph {
	n := mustSameOrder(gs)
	out := graph.New(n)
	row := bitset.New(n)
	for v := 0; v < n; v++ {
		row.CopyFrom(gs[0].Neighbors(v))
		for _, g := range gs[1:] {
			row.And(row, g.Neighbors(v))
		}
		row.ForEach(func(u int) bool {
			if u > v {
				out.AddEdge(v, u)
			}
			return true
		})
	}
	return out
}

// Union returns the graph whose edges appear in any input.
func Union(gs ...*graph.Graph) *graph.Graph {
	n := mustSameOrder(gs)
	out := graph.New(n)
	row := bitset.New(n)
	for v := 0; v < n; v++ {
		row.CopyFrom(gs[0].Neighbors(v))
		for _, g := range gs[1:] {
			row.Or(row, g.Neighbors(v))
		}
		row.ForEach(func(u int) bool {
			if u > v {
				out.AddEdge(v, u)
			}
			return true
		})
	}
	return out
}

// Difference returns the edges of a that are not edges of b.
func Difference(a, b *graph.Graph) *graph.Graph {
	n := mustSameOrder([]*graph.Graph{a, b})
	out := graph.New(n)
	row := bitset.New(n)
	for v := 0; v < n; v++ {
		row.AndNot(a.Neighbors(v), b.Neighbors(v))
		row.ForEach(func(u int) bool {
			if u > v {
				out.AddEdge(v, u)
			}
			return true
		})
	}
	return out
}

// AtLeastKOfN returns the graph whose edges appear in at least k of the
// inputs — the paper's replication filter.  k must be in [1, len(gs)].
func AtLeastKOfN(k int, gs ...*graph.Graph) *graph.Graph {
	n := mustSameOrder(gs)
	if k < 1 || k > len(gs) {
		panic(fmt.Sprintf("graphops: k=%d with %d graphs", k, len(gs)))
	}
	out := graph.New(n)
	// Per-row bit-sliced counter: count[b] holds bit b of the per-edge
	// tally, so n graphs cost O(n log n) word operations per row instead
	// of per-edge loops.
	width := 1
	for (1 << width) <= len(gs) {
		width++
	}
	count := make([]*bitset.Bitset, width)
	for i := range count {
		count[i] = bitset.New(n)
	}
	carry := bitset.New(n)
	tmp := bitset.New(n)
	reach := bitset.New(n)
	for v := 0; v < n; v++ {
		for i := range count {
			count[i].ClearAll()
		}
		for _, g := range gs {
			// Ripple-carry add of the row into the counter.
			carry.CopyFrom(g.Neighbors(v))
			for b := 0; b < width && carry.Any(); b++ {
				tmp.And(count[b], carry)      // new carry
				count[b].Xor(count[b], carry) // sum bit
				carry.CopyFrom(tmp)
			}
		}
		// reach = set of u with tally >= k.
		reach.ClearAll()
		for tally := k; tally <= len(gs); tally++ {
			tmp.SetAll()
			for b := 0; b < width; b++ {
				if tally&(1<<b) != 0 {
					tmp.And(tmp, count[b])
				} else {
					tmp.AndNot(tmp, count[b])
				}
			}
			reach.Or(reach, tmp)
		}
		reach.ForEach(func(u int) bool {
			if u > v {
				out.AddEdge(v, u)
			}
			return true
		})
	}
	return out
}
