package graphops

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func assays(seed int64, n, count int, p float64) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	gs := make([]*graph.Graph, count)
	for i := range gs {
		gs[i] = graph.RandomGNP(rng, n, p)
	}
	return gs
}

func TestIntersection(t *testing.T) {
	a := graph.New(4)
	a.AddEdge(0, 1)
	a.AddEdge(1, 2)
	b := graph.New(4)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	got := Intersection(a, b)
	if got.M() != 1 || !got.HasEdge(1, 2) {
		t.Errorf("intersection edges = %v", got.Edges())
	}
}

func TestUnionAndDifference(t *testing.T) {
	a := graph.New(4)
	a.AddEdge(0, 1)
	b := graph.New(4)
	b.AddEdge(2, 3)
	u := Union(a, b)
	if u.M() != 2 || !u.HasEdge(0, 1) || !u.HasEdge(2, 3) {
		t.Errorf("union edges = %v", u.Edges())
	}
	d := Difference(u, b)
	if d.M() != 1 || !d.HasEdge(0, 1) {
		t.Errorf("difference edges = %v", d.Edges())
	}
}

func TestAtLeastKOfN(t *testing.T) {
	// Edge (0,1) in 3 assays, (1,2) in 2, (2,3) in 1.
	gs := make([]*graph.Graph, 3)
	for i := range gs {
		gs[i] = graph.New(4)
		gs[i].AddEdge(0, 1)
	}
	gs[0].AddEdge(1, 2)
	gs[1].AddEdge(1, 2)
	gs[2].AddEdge(2, 3)

	for k, wantEdges := range map[int][]graph.Edge{
		1: {{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}},
		2: {{U: 0, V: 1}, {U: 1, V: 2}},
		3: {{U: 0, V: 1}},
	} {
		got := AtLeastKOfN(k, gs...)
		if got.M() != len(wantEdges) {
			t.Errorf("k=%d: %d edges, want %d", k, got.M(), len(wantEdges))
		}
		for _, e := range wantEdges {
			if !got.HasEdge(e.U, e.V) {
				t.Errorf("k=%d: missing (%d,%d)", k, e.U, e.V)
			}
		}
	}
}

func TestAtLeastEdgeCases(t *testing.T) {
	gs := assays(1, 10, 4, 0.3)
	// k=1 equals union; k=n equals intersection.
	u := Union(gs...)
	if got := AtLeastKOfN(1, gs...); got.M() != u.M() {
		t.Errorf("k=1: %d edges, union has %d", got.M(), u.M())
	}
	in := Intersection(gs...)
	if got := AtLeastKOfN(len(gs), gs...); got.M() != in.M() {
		t.Errorf("k=n: %d edges, intersection has %d", got.M(), in.M())
	}
	for _, bad := range []int{0, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d accepted", bad)
				}
			}()
			AtLeastKOfN(bad, gs...)
		}()
	}
}

func TestMismatchedUniversesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("universe mismatch accepted")
		}
	}()
	Intersection(graph.New(3), graph.New(4))
}

func TestNoGraphsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty input accepted")
		}
	}()
	Union()
}

// Property: at-least-k edge counts are monotone decreasing in k, and the
// per-edge tally definition holds against direct counting.
func TestQuickAtLeastKCorrect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		count := 1 + rng.Intn(6)
		gs := make([]*graph.Graph, count)
		for i := range gs {
			gs[i] = graph.RandomGNP(rng, n, 0.4)
		}
		for k := 1; k <= count; k++ {
			got := AtLeastKOfN(k, gs...)
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					tally := 0
					for _, g := range gs {
						if g.HasEdge(u, v) {
							tally++
						}
					}
					if got.HasEdge(u, v) != (tally >= k) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan-ish sanity — difference(union, b) ⊆ a.
func TestQuickDifferenceSubset(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		a := graph.RandomGNP(rng, n, 0.4)
		b := graph.RandomGNP(rng, n, 0.4)
		d := Difference(Union(a, b), b)
		ok := true
		d.ForEachEdge(func(u, v int) bool {
			if !a.HasEdge(u, v) || b.HasEdge(u, v) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
