// Package parallel is the multithreaded Clique Enumerator: the paper's
// level-synchronous execution scheme running on persistent goroutine
// workers, coordinated by the centralized dynamic scheduler of package
// sched.
//
// Workers are started once per run and fed sub-list chunks over channels.
// Within a level the scheduler (sched.Dispatcher) hands out chunks
// dynamically — workers pull more work as they finish, so load-estimation
// error and skewed sub-list costs are absorbed inside the level instead
// of stretching a bulk-synchronous barrier.  Two dispatch strategies are
// provided:
//
//   - Contiguous: one canonical-order queue; any worker pulls the next
//     contiguous chunk.  Best balance, no ownership.
//   - Affinity: every sub-list is queued on the worker that created it
//     (creator ownership starts at the seed phase); an idle worker steals
//     from the heaviest backlog only while the backlog exceeds the
//     sched.Policy threshold — the paper's transfer rule applied
//     continuously, minimizing remote-memory traffic on ccNUMA machines.
//
// Seeding is parallelized across vertex ranges (core.SeedFromEdgesParallel
// / core.SeedFromKParallel), so the Lo >= 3 seed phase no longer
// serializes the run, and seeding records creator ownership for the
// Affinity strategy's first level.
//
// Emission is sharded per worker and merged by a streaming in-order
// merger: each completed sub-list's cliques are released as soon as every
// earlier sub-list of the level has completed, reproducing the exact
// sequential emission order (full canonical order, for both strategies)
// while buffering only the out-of-order window rather than the whole
// level.
//
// The pool charges the run's memory governor (package membudget) like
// every other layer: per-worker builder scratch at pool start, each
// retained sub-list at keep time (through core.Builder), and each
// merge-window emission copy between deposit and in-order release.  A
// configured budget is enforced — workers stop pulling chunks the moment
// the governor trips, the in-flight window drains through the
// sched.Sequencer, and Enumerate aborts with core.ErrMemoryBudget — and
// the same trip-and-drain machinery is what the hybrid backend uses,
// through Pool.RunLevel, to switch a live run out-of-core instead of
// aborting it.
//
// EnumerateBarrier retains the previous bulk-synchronous implementation
// (goroutines respawned per level, one static assignment per level,
// emissions buffered until the barrier) as the reference baseline for
// benchmarks.
package parallel

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/clique"
	"repro/internal/core"
	"repro/internal/enumcfg"
	"repro/internal/graph"
	"repro/internal/kclique"
	"repro/internal/membudget"
	"repro/internal/sched"
)

// Strategy selects the dispatch policy.  The canonical definition lives
// in package enumcfg, shared by every backend and the facade.
type Strategy = enumcfg.Strategy

const (
	// Contiguous dispatches each level's sub-lists from one shared
	// canonical-order queue.
	Contiguous = enumcfg.Contiguous
	// Affinity keeps creator ownership and applies threshold stealing.
	Affinity = enumcfg.Affinity
)

// Options configures Enumerate.
type Options struct {
	// Ctx, when non-nil, cancels the run: workers stop pulling dispatcher
	// chunks, the in-flight level drains through the usual barrier (so
	// the pool shuts down cleanly and no goroutine leaks), and Enumerate
	// returns the partial Result with an error wrapping ctx.Err().
	Ctx context.Context
	// Workers is the number of worker threads; must be >= 1.
	Workers int
	// Lo, Hi, RecomputeCN, CompressCN as in core.Options.
	Lo, Hi      int
	RecomputeCN bool
	CompressCN  bool
	// Strategy selects the dispatch policy (default Contiguous).
	Strategy Strategy
	// Policy tunes Affinity-mode stealing.
	Policy sched.Policy
	// ChunksPerWorker tunes dispatch granularity: each level is cut into
	// roughly Workers*ChunksPerWorker chunks by estimated load.  0 uses
	// sched.DefaultChunksPerWorker.
	ChunksPerWorker int
	// MemoryBudget, when positive, bounds the governor-accounted
	// resident bytes (seed level + retained candidates + worker scratch
	// + merge-window copies); exceeding it aborts the run with an error
	// wrapping core.ErrMemoryBudget.  Ignored when Gov is set.
	MemoryBudget int64
	// Gov, when non-nil, is the shared memory governor every layer of
	// the run charges; when nil, a private one is derived from
	// MemoryBudget.
	Gov *membudget.Governor
	// Reporter receives maximal cliques.  Enumerate delivers full
	// canonical order (non-decreasing size; lexicographic within a
	// size) with either strategy; EnumerateBarrier guarantees canonical
	// order only with Contiguous, and size order with Affinity.  May be
	// nil.
	Reporter clique.Reporter
	// OnLevel observes per-level scheduling statistics.
	OnLevel func(LevelStats)
}

// LevelStats describes one parallel level step.
type LevelStats struct {
	FromK      int
	Sublists   int
	Chunks     int       // dispatcher chunks handed out
	Transfers  int       // sub-lists processed by a non-home worker
	WorkerBusy []float64 // seconds of generation work per worker
	WorkerCost []int64   // abstract cost units per worker
	Maximal    int64
}

// Result summarizes a parallel run.
type Result struct {
	MaximalCliques int64
	MaxCliqueSize  int
	Levels         []LevelStats
	WorkerBusy     []float64 // total busy seconds per worker
	Transfers      int
	SeedStats      kclique.Stats // populated when Lo >= 3
	Elapsed        time.Duration
}

// OptionsFromConfig derives parallel-backend Options from the unified
// backend config.  Reporter, OnLevel, Policy and ChunksPerWorker are not
// part of the config and are left for the caller to fill.
func OptionsFromConfig(c enumcfg.Config) Options {
	return Options{
		Ctx:          c.Ctx,
		Workers:      c.Workers,
		Lo:           c.Lo,
		Hi:           c.Hi,
		RecomputeCN:  c.Mode == enumcfg.CNRecompute,
		CompressCN:   c.Mode == enumcfg.CNCompress,
		Strategy:     c.Strategy,
		MemoryBudget: c.MemoryBudget,
	}
}

// Enumerate runs the multithreaded Clique Enumerator on a persistent
// streaming worker pool, over any graph representation.
//
//repro:ctxloop
func Enumerate(g graph.Interface, opts Options) (*Result, error) {
	p, err := NewPool(g, opts)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	opts = p.opts // defaults applied
	start := time.Now()
	res := &Result{WorkerBusy: make([]float64, opts.Workers)}

	// Seed-phase reporter: counts and forwards maximal Lo-cliques.
	seedRep := clique.ReporterFunc(func(c clique.Clique) {
		res.MaximalCliques++
		if len(c) > res.MaxCliqueSize {
			res.MaxCliqueSize = len(c)
		}
		if opts.Reporter != nil {
			opts.Reporter.Emit(c)
		}
	})

	var lvl *core.Level
	var homes []int32
	if opts.Lo <= 2 {
		lvl, homes = core.SeedFromEdgesParallel(g, p.mode, opts.Workers)
	} else {
		lvl, homes, res.SeedStats, err = core.SeedFromKParallel(g, opts.Lo, p.mode, opts.Workers, seedRep)
		if err != nil {
			return nil, err
		}
	}
	gov := p.Gov()
	gov.Charge(lvl.Bytes(g.N()))

	var trip func() bool
	if gov.Budget() > 0 {
		trip = gov.Over
	}
	for len(lvl.Sub) > 0 && (opts.Hi == 0 || lvl.K+1 <= opts.Hi) {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			gov.Release(lvl.Bytes(g.N())) // retire the level before aborting
			res.Elapsed = time.Since(start)
			return res, fmt.Errorf("parallel: canceled at level %d->%d: %w",
				lvl.K, lvl.K+1, opts.Ctx.Err())
		}
		lvlBytes := lvl.Bytes(g.N())
		out := p.RunLevel(opts.Ctx, lvl, homes, opts.Reporter, trip)
		res.MaximalCliques += out.Stats.Maximal
		if out.Stats.Maximal > 0 && lvl.K+1 > res.MaxCliqueSize {
			res.MaxCliqueSize = lvl.K + 1
		}
		res.Transfers += out.Stats.Transfers
		for w, busy := range out.Stats.WorkerBusy {
			res.WorkerBusy[w] += busy
		}
		res.Levels = append(res.Levels, out.Stats)
		if opts.OnLevel != nil {
			opts.OnLevel(out.Stats)
		}
		if out.Tripped {
			// gov.Err() reports Peak, so retiring the consumed level first
			// does not distort the message; pool-side charges for the
			// partial next level were reconciled by the merger on trip.
			gov.Release(lvlBytes)
			res.Elapsed = time.Since(start)
			return res, fmt.Errorf("parallel: level %d->%d: %w", lvl.K, lvl.K+1, gov.Err())
		}
		gov.Release(lvlBytes) // the consumed level is retired
		lvl, homes = out.Next, out.Homes
	}
	gov.Release(lvl.Bytes(g.N()))
	res.Elapsed = time.Since(start)
	if opts.Ctx != nil && opts.Ctx.Err() != nil {
		return res, fmt.Errorf("parallel: canceled: %w", opts.Ctx.Err())
	}
	return res, nil
}

// checkOptions validates opts, applies defaults, and resolves the bitmap
// mode.  Shared by Enumerate and EnumerateBarrier.
func checkOptions(opts *Options) (core.CNMode, error) {
	if opts.Workers < 1 {
		return 0, fmt.Errorf("parallel: %d workers", opts.Workers)
	}
	if opts.Lo == 0 {
		opts.Lo = 2
	}
	if err := enumcfg.CheckBounds(opts.Lo, opts.Hi); err != nil {
		return 0, fmt.Errorf("parallel: %w", err)
	}
	if opts.RecomputeCN && opts.CompressCN {
		return 0, fmt.Errorf("parallel: RecomputeCN and CompressCN are mutually exclusive")
	}
	if opts.Gov == nil && opts.MemoryBudget > 0 {
		opts.Gov = membudget.New(opts.MemoryBudget)
	}
	switch {
	case opts.RecomputeCN:
		return core.CNRecompute, nil
	case opts.CompressCN:
		return core.CNCompress, nil
	}
	return core.CNStore, nil
}

// Pool is the persistent streaming worker pool with its level-merge
// machinery, exported so the hybrid backend can drive levels one at a
// time (and spill between them) through the exact engine Enumerate runs
// on.  A Pool is bound to one graph; levels must be run one at a time.
type Pool struct {
	g       graph.Interface
	opts    Options
	mode    core.CNMode
	bits    *bitset.Pool
	workers []*worker
	wg      sync.WaitGroup
	m       *merger
	words   int64
	loads   []int64 // reused across levels; each level ends before reuse
	scratch int64   // governor-charged builder scratch bytes
	closed  bool
}

// NewPool validates opts, starts the workers, and charges the governor
// with their builder scratch.  Close must be called to stop them.
func NewPool(g graph.Interface, opts Options) (*Pool, error) {
	mode, err := checkOptions(&opts)
	if err != nil {
		return nil, err
	}
	p := &Pool{
		g:     g,
		opts:  opts,
		mode:  mode,
		bits:  bitset.NewPool(g.N()),
		words: int64((g.N() + 63) / 64),
	}
	p.m = &merger{gov: opts.Gov, bits: p.bits, n: g.N()}
	p.workers = make([]*worker, opts.Workers)
	for w := range p.workers {
		b := core.NewBuilderMode(g, mode, p.bits)
		b.Gov = opts.Gov
		p.scratch += b.ScratchBytes()
		p.workers[w] = &worker{
			id:      w,
			builder: b,
			jobs:    make(chan levelJob, 1),
		}
		p.wg.Add(1)
		go p.workers[w].loop(&p.wg)
	}
	opts.Gov.Charge(p.scratch)
	return p, nil
}

// Gov returns the pool's governor (possibly nil).
func (p *Pool) Gov() *membudget.Governor { return p.opts.Gov }

// Close stops the workers and releases the governor's scratch charge.
// Idempotent.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for _, w := range p.workers {
		close(w.jobs)
	}
	p.wg.Wait()
	p.opts.Gov.Release(p.scratch)
}

// LevelOutcome is one RunLevel's result.  When the level ran to
// completion, Next/Homes describe the produced level and Frontier equals
// the input sub-list count.  When the trip callback (or a context
// cancellation) stopped it early, outputs were delivered in exact
// canonical order for inputs [0, Frontier) only: Next holds precisely
// their surviving sub-lists, every deposited-but-unreleased result
// beyond the frontier has been discarded (and its governor charges
// reconciled), and inputs [Frontier, n) are untouched input again — the
// consistent cut the hybrid drain resumes from.
type LevelOutcome struct {
	Next     *core.Level
	Homes    []int32
	Stats    LevelStats
	Frontier int
	Tripped  bool
}

// RunLevel drives one level through the pool: it hands every worker the
// level job, then sleeps until the level barrier.  Result merging is
// decentralized — workers deposit chunk results straight into the shared
// streaming merger — so the coordinator costs no CPU while the level
// runs, which matters when workers already oversubscribe the cores.
// trip, when non-nil, is polled by workers between chunks; once it
// returns true the level stops early with the consistent-cut semantics
// documented on LevelOutcome.
func (p *Pool) RunLevel(ctx context.Context, lvl *core.Level, homes []int32,
	rep clique.Reporter, trip func() bool) LevelOutcome {
	w := len(p.workers)
	items := len(lvl.Sub)
	st := LevelStats{
		FromK:      lvl.K,
		Sublists:   items,
		WorkerBusy: make([]float64, w),
		WorkerCost: make([]int64, w),
	}
	if cap(p.loads) < items {
		p.loads = make([]int64, items)
	}
	loads := p.loads[:items]
	for i, s := range lvl.Sub {
		loads[i] = estimateLoad(s, p.words)
	}
	grain := sched.ChunkGrain(loads, w, p.opts.ChunksPerWorker)
	var disp *sched.Dispatcher
	if p.opts.Strategy == Affinity {
		disp = sched.NewAffinityDispatcher(loads, homes, w, p.opts.Policy, grain)
	} else {
		disp = sched.NewContiguousDispatcher(loads, w, grain)
	}

	p.m.reset(items, lvl.K+1, rep)
	var wg sync.WaitGroup
	wg.Add(w)
	job := levelJob{
		ctx:     ctx,
		lvl:     lvl,
		disp:    disp,
		merger:  p.m,
		trip:    trip,
		wg:      &wg,
		busy:    st.WorkerBusy,
		cost:    st.WorkerCost,
		collect: rep != nil,
	}
	for _, wk := range p.workers {
		wk.jobs <- job
	}
	wg.Wait()

	st.Maximal = p.m.maximal
	st.Transfers = disp.Transfers()
	st.Chunks = disp.Chunks()
	out := LevelOutcome{
		Next:     p.m.next,
		Homes:    p.m.homes,
		Stats:    st,
		Frontier: p.m.seq.Released(),
	}
	if out.Frontier < items {
		// The level stopped early.  The only two ways that happens are a
		// context cancellation and the trip predicate, so if the context
		// is clean this WAS a trip — decided structurally, never by
		// re-polling trip(): the discard below (and releases during the
		// level) can flip an Over()-based predicate back under budget,
		// and a tripped level misread as complete would silently drop
		// every input at or beyond the frontier.
		out.Tripped = trip != nil && (ctx == nil || ctx.Err() == nil)
		// Reconcile the window: everything deposited beyond the frontier
		// is discarded — those inputs will be re-joined (by the hybrid
		// drain) or abandoned (abort paths), so their outputs must not
		// linger in the accounting.
		p.m.discardPending()
	}
	return out
}

// chunkResult is one processed chunk's outputs in compact offset form:
// item i of the chunk produced next[subOff[i]:subOff[i+1]] (a snapshot of
// the worker builder's output slice) and, when collecting, emitted
// cliques emitted[emitOff[i]:emitOff[i+1]].  Offset arrays cost a few
// bytes per sub-list, keeping the streaming machinery's allocation rate
// near the barrier implementation's.
type chunkResult struct {
	worker  int32
	items   []int32
	subOff  []int32
	next    []*core.SubList
	emitOff []int32
	emitted []clique.Clique
	maxCnt  []int64 // maximal cliques found per item
}

// itemRef locates one sub-list's results inside a deposited chunk.
type itemRef struct {
	chunk *chunkResult
	pos   int32
}

// merger is the streaming merge point for per-worker shard outputs:
// chunk results arrive in any order and each sub-list's outputs are
// released — through a sched.Sequencer, the in-order frontier shared
// with the out-of-core shard merger — as soon as every earlier sub-list
// of the level has been released.  Emission order is therefore exactly
// the sequential enumeration order, while only the out-of-order window
// is buffered — not the whole level, as the barrier implementation must.
// The window's emission copies are governor-charged between deposit and
// release, so "merge-window buffers" are part of what the budget means.
type merger struct {
	rep     clique.Reporter
	gov     *membudget.Governor
	bits    *bitset.Pool
	n       int // graph universe (for sub-list byte accounting)
	seq     *sched.Sequencer[itemRef]
	next    *core.Level
	homes   []int32
	maximal int64
}

// reset prepares the merger for a level of `items` sub-lists producing
// cliques of size nextK.
func (m *merger) reset(items, nextK int, rep clique.Reporter) {
	m.rep = rep
	if m.seq == nil {
		m.seq = sched.NewSequencer(items, m.releaseItem)
	} else {
		m.seq.Reset(items)
	}
	m.next = &core.Level{K: nextK}
	m.homes = nil
	m.maximal = 0
}

// deposit files one chunk's results; the sequencer releases every newly
// contiguous prefix of the level.  The reporter runs under the sequencer
// lock: emission is inherently serial (one ordered output stream), so
// the lock adds no parallelism loss beyond that.
func (m *merger) deposit(c *chunkResult) {
	for p, item := range c.items {
		m.seq.Deposit(int(item), itemRef{c, int32(p)})
	}
}

// releaseItem delivers one sub-list's outputs; the sequencer calls it in
// exact item order and drops the itemRef afterwards, so a fully released
// chunk becomes reclaimable as soon as its last item passes the
// frontier — the level holds only the out-of-order window.  Maximal
// counts accrue on release, not deposit, so a canceled level's count
// matches the cliques actually delivered: the frontier stops at the
// first unprocessed sub-list, and everything deposited beyond it is
// discarded, not counted.
func (m *merger) releaseItem(_ int, r itemRef) {
	rc, p := r.chunk, r.pos
	m.maximal += rc.maxCnt[p]
	if m.rep != nil && rc.emitOff != nil {
		for _, cl := range rc.emitted[rc.emitOff[p]:rc.emitOff[p+1]] {
			m.rep.Emit(cl)
			m.gov.Release(8 * int64(len(cl)))
		}
	}
	for _, s := range rc.next[rc.subOff[p]:rc.subOff[p+1]] {
		m.next.Sub = append(m.next.Sub, s)
		m.homes = append(m.homes, rc.worker)
	}
}

// discardPending reconciles the governor and the bitmap pool for every
// deposited-but-unreleased result of a level that stopped early: kept
// sub-lists (charged at keep time) are released and their bitmaps
// recycled, buffered emission copies are released.  The corresponding
// inputs become plain input again — the builders already returned their
// CN bitmaps, and prefixCN reconstruction covers a re-join.
func (m *merger) discardPending() {
	m.seq.DrainPending(func(_ int, r itemRef) {
		rc, p := r.chunk, r.pos
		if rc.emitOff != nil {
			for _, cl := range rc.emitted[rc.emitOff[p]:rc.emitOff[p+1]] {
				m.gov.Release(8 * int64(len(cl)))
			}
		}
		for _, s := range rc.next[rc.subOff[p]:rc.subOff[p+1]] {
			m.gov.Release(s.MemBytes(m.n))
			if s.CN != nil {
				m.bits.Put(s.CN)
				s.CN = nil
			}
		}
	})
}

// estimateLoad predicts the generation cost of a sub-list before running
// it: the pairwise tail joins plus the per-extension bitmap AND work.
func estimateLoad(s *core.SubList, words int64) int64 {
	t := int64(len(s.Tails))
	return t*(t-1)/2 + (t-1)*words
}

// levelJob is one level's work order, broadcast to every worker.
type levelJob struct {
	ctx     context.Context // nil = never canceled
	lvl     *core.Level
	disp    *sched.Dispatcher
	merger  *merger
	trip    func() bool // nil = never trips
	wg      *sync.WaitGroup
	busy    []float64 // per-worker stat slots; each worker writes its own
	cost    []int64
	collect bool
}

// worker is one persistent pool thread.  Its builder is reused across all
// levels of the run (reset per level), so scratch bitmaps and slices are
// allocated once.
type worker struct {
	id      int
	builder *core.Builder
	jobs    chan levelJob
}

// loop pulls level jobs until the pool shuts down; within a job it pulls
// chunks from the dispatcher until the level is exhausted for it, sending
// one batch per sub-list and a final done report.
func (wk *worker) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	for job := range wk.jobs {
		wk.builder.Reset()
		gov := job.merger.gov
		var busy time.Duration
		// One reporter closure per level: it copies borrowed cliques into
		// the current chunk's emission buffer.  Copies are charged to the
		// governor until their in-order release.
		var emitted []clique.Clique
		var rep clique.Reporter
		if job.collect {
			rep = clique.ReporterFunc(func(c clique.Clique) {
				emitted = append(emitted, append(clique.Clique(nil), c...))
				gov.Charge(8 * int64(len(c)))
			})
		}
		for {
			// Cancellation / governor-trip point: a stopped level is no
			// longer pulled, every worker falls through to the level
			// barrier, and the pool stays reusable — for a clean shutdown
			// on cancel, for the out-of-core drain on a trip.
			if job.ctx != nil && job.ctx.Err() != nil {
				break
			}
			if job.trip != nil && job.trip() {
				break
			}
			chunk, ok := job.disp.Next(wk.id)
			if !ok {
				break
			}
			n := len(chunk.Items)
			cr := &chunkResult{
				worker: int32(wk.id),
				items:  make([]int32, n),
				subOff: make([]int32, n+1),
				maxCnt: make([]int64, n),
			}
			if job.collect {
				emitted = nil
				cr.emitOff = make([]int32, n+1)
			}
			cr.subOff[0] = int32(len(wk.builder.Next))
			t0 := time.Now()
			for i, item := range chunk.Items {
				cr.items[i] = int32(item)
				maxStart := wk.builder.Maximal
				wk.builder.ProcessSubList(job.lvl.Sub[item], rep)
				cr.maxCnt[i] = wk.builder.Maximal - maxStart
				cr.subOff[i+1] = int32(len(wk.builder.Next))
				if cr.emitOff != nil {
					cr.emitOff[i+1] = int32(len(emitted))
				}
			}
			busy += time.Since(t0)
			cr.next = wk.builder.Next[:len(wk.builder.Next)]
			cr.emitted = emitted
			job.merger.deposit(cr)
		}
		job.busy[wk.id] = busy.Seconds()
		job.cost[wk.id] = wk.builder.Cost.Units()
		job.wg.Done()
	}
}
