// Package parallel is the multithreaded Clique Enumerator: the paper's
// level-synchronous execution scheme running on real OS threads
// (goroutines), coordinated by the centralized dynamic load balancer of
// package sched.
//
// Each level, the task scheduler assigns the candidate sub-lists to
// worker threads; workers generate (k+1)-cliques from their sub-lists
// completely independently (sub-list joins never interact — the paper's
// key parallelism property), then synchronize at a barrier where the
// scheduler collects results and loads and decides transfers for the next
// level.  Two assignment strategies are provided:
//
//   - Contiguous: re-partition every level into load-balanced contiguous
//     chunks.  Keeps the canonical output order and is the best balance,
//     at the cost of ignoring memory affinity entirely.
//   - Affinity: every thread keeps the sub-lists it created, and the
//     scheduler transfers work from heavy to light threads only when the
//     imbalance exceeds the threshold policy — the paper's strategy,
//     minimizing remote-memory traffic on ccNUMA machines.
package parallel

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/clique"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sched"
)

// Strategy selects the per-level assignment policy.
type Strategy int

const (
	// Contiguous re-chunks each level evenly by estimated load.
	Contiguous Strategy = iota
	// Affinity keeps creator ownership and applies threshold transfers.
	Affinity
)

// Options configures Enumerate.
type Options struct {
	// Workers is the number of worker threads; must be >= 1.
	Workers int
	// Lo, Hi, RecomputeCN, CompressCN as in core.Options.
	Lo, Hi      int
	RecomputeCN bool
	CompressCN  bool
	// Strategy selects the assignment policy (default Contiguous).
	Strategy Strategy
	// Policy tunes Affinity-mode transfers.
	Policy sched.Policy
	// Reporter receives maximal cliques.  Delivery is level-ordered
	// (non-decreasing clique size); with the Contiguous strategy it is
	// additionally in full canonical order.  May be nil.
	Reporter clique.Reporter
	// OnLevel observes per-level scheduling statistics.
	OnLevel func(LevelStats)
}

// LevelStats describes one parallel level step.
type LevelStats struct {
	FromK      int
	Sublists   int
	Transfers  int       // sub-lists moved by the load balancer
	WorkerBusy []float64 // seconds of generation work per worker
	WorkerCost []int64   // abstract cost units per worker
	Maximal    int64
}

// Result summarizes a parallel run.
type Result struct {
	MaximalCliques int64
	MaxCliqueSize  int
	Levels         []LevelStats
	WorkerBusy     []float64 // total busy seconds per worker
	Transfers      int
	Elapsed        time.Duration
}

// Enumerate runs the multithreaded Clique Enumerator.
func Enumerate(g *graph.Graph, opts Options) (*Result, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("parallel: %d workers", opts.Workers)
	}
	if opts.Lo == 0 {
		opts.Lo = 2
	}
	if opts.Hi != 0 && opts.Hi < opts.Lo {
		return nil, fmt.Errorf("parallel: Hi %d < Lo %d", opts.Hi, opts.Lo)
	}
	if opts.RecomputeCN && opts.CompressCN {
		return nil, fmt.Errorf("parallel: RecomputeCN and CompressCN are mutually exclusive")
	}
	mode := core.CNStore
	switch {
	case opts.RecomputeCN:
		mode = core.CNRecompute
	case opts.CompressCN:
		mode = core.CNCompress
	}
	start := time.Now()
	res := &Result{WorkerBusy: make([]float64, opts.Workers)}

	// Seed-phase reporter: counts and forwards maximal Lo-cliques.
	seedCount := func(c clique.Clique) {
		res.MaximalCliques++
		if len(c) > res.MaxCliqueSize {
			res.MaxCliqueSize = len(c)
		}
		if opts.Reporter != nil {
			opts.Reporter.Emit(c)
		}
	}

	// Seeding is sequential (it is a negligible fraction of the run for
	// the paper's workloads; Figure 5 measures the level loop).
	var lvl *core.Level
	var homes []int32 // creator worker per sub-list; nil => worker 0
	if opts.Lo <= 2 {
		lvl = core.SeedFromEdgesMode(g, mode)
	} else {
		var err error
		lvl, _, err = core.SeedFromKMode(g, opts.Lo, mode,
			clique.ReporterFunc(seedCount))
		if err != nil {
			return nil, err
		}
	}

	pool := bitset.NewPool(g.N())
	workers := make([]*worker, opts.Workers)
	for w := range workers {
		workers[w] = &worker{
			builder: core.NewBuilderMode(g, mode, pool),
		}
	}

	words := int64((g.N() + 63) / 64)
	for len(lvl.Sub) > 0 && (opts.Hi == 0 || lvl.K+1 <= opts.Hi) {
		loads := make([]int64, len(lvl.Sub))
		for i, s := range lvl.Sub {
			loads[i] = estimateLoad(s, words)
		}

		var assign sched.Assignment
		transfers := 0
		if opts.Strategy == Affinity && homes != nil {
			assign = sched.ByHome(homes, opts.Workers)
			transfers = len(opts.Policy.Rebalance(assign, loads))
		} else {
			assign = sched.BalancedContiguous(loads, opts.Workers)
		}

		// Workers generate independently; the scheduler's barrier is the
		// WaitGroup.
		var wg sync.WaitGroup
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				workers[w].run(lvl, assign[w], opts.Reporter != nil)
			}(w)
		}
		wg.Wait()

		// Collect: merge next-level fragments and emissions in worker
		// order, record loads and stats, decide next homes.
		st := LevelStats{
			FromK:      lvl.K,
			Sublists:   len(lvl.Sub),
			Transfers:  transfers,
			WorkerBusy: make([]float64, opts.Workers),
			WorkerCost: make([]int64, opts.Workers),
		}
		next := &core.Level{K: lvl.K + 1}
		homes = homes[:0]
		for w, wk := range workers {
			st.WorkerBusy[w] = wk.busy.Seconds()
			st.WorkerCost[w] = wk.builder.Cost.Units()
			st.Maximal += wk.builder.Maximal
			res.WorkerBusy[w] += wk.busy.Seconds()
			if opts.Reporter != nil {
				for _, c := range wk.emitted {
					opts.Reporter.Emit(c)
				}
			}
			next.Sub = append(next.Sub, wk.builder.Next...)
			for range wk.builder.Next {
				homes = append(homes, int32(w))
			}
		}
		res.MaximalCliques += st.Maximal
		if st.Maximal > 0 && lvl.K+1 > res.MaxCliqueSize {
			res.MaxCliqueSize = lvl.K + 1
		}
		res.Transfers += transfers
		res.Levels = append(res.Levels, st)
		if opts.OnLevel != nil {
			opts.OnLevel(st)
		}
		lvl = next
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// estimateLoad predicts the generation cost of a sub-list before running
// it: the pairwise tail joins plus the per-extension bitmap AND work.
func estimateLoad(s *core.SubList, words int64) int64 {
	t := int64(len(s.Tails))
	return t*(t-1)/2 + (t-1)*words
}

type worker struct {
	builder *core.Builder
	emitted []clique.Clique
	busy    time.Duration
}

// run processes the assigned sub-list indices of the level, buffering any
// emissions for ordered delivery after the barrier.
func (wk *worker) run(lvl *core.Level, items []int, collect bool) {
	wk.builder.Reset()
	wk.emitted = wk.emitted[:0]
	var rep clique.Reporter
	if collect {
		rep = clique.ReporterFunc(func(c clique.Clique) {
			wk.emitted = append(wk.emitted, append(clique.Clique(nil), c...))
		})
	}
	start := time.Now()
	for _, i := range items {
		wk.builder.ProcessSubList(lvl.Sub[i], rep)
	}
	wk.busy = time.Since(start)
}
