package parallel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/clique"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sched"
)

// TestQuickParallelEqualsSequential fuzzes the parallel backend against
// the sequential enumerator across random graphs, worker counts,
// strategies, balancing policies and seed levels.
func TestQuickParallelEqualsSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(30)
		g := graph.RandomGNP(rng, n, 0.3+0.4*rng.Float64())
		lo := 2 + rng.Intn(3)
		workers := 1 + rng.Intn(5)
		strategy := Strategy(rng.Intn(2))
		policy := sched.Policy{RelTolerance: []float64{0, 0.01, 0.5}[rng.Intn(3)]}

		seq := &clique.Collector{}
		if _, err := core.Enumerate(g, core.Options{Lo: lo, Reporter: seq}); err != nil {
			return false
		}
		par := &clique.Collector{}
		if _, err := Enumerate(g, Options{
			Workers:  workers,
			Lo:       lo,
			Strategy: strategy,
			Policy:   policy,
			Reporter: par,
		}); err != nil {
			return false
		}
		if ok, _ := clique.SameSets(seq.Cliques, par.Cliques); !ok {
			return false
		}
		bar := &clique.Collector{}
		if _, err := EnumerateBarrier(g, Options{
			Workers:  workers,
			Lo:       lo,
			Strategy: strategy,
			Policy:   policy,
			Reporter: bar,
		}); err != nil {
			return false
		}
		ok, _ := clique.SameSets(seq.Cliques, bar.Cliques)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickWorkerCountInvariance: results must not depend on the worker
// count, even on the skewed planted workloads where balancing triggers.
func TestQuickWorkerCountInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 5 + rng.Intn(5)
		g := graph.PlantedGraph(rng, size*4+10,
			[]graph.PlantedCliqueSpec{{Size: size}, {Size: size - 1, Overlap: 2}},
			10+rng.Intn(40))
		var first []clique.Clique
		for _, workers := range []int{1, 3, 6} {
			col := &clique.Collector{}
			if _, err := Enumerate(g, Options{
				Workers:  workers,
				Strategy: Affinity,
				Reporter: col,
			}); err != nil {
				return false
			}
			if first == nil {
				first = col.Cliques
				continue
			}
			if ok, _ := clique.SameSets(first, col.Cliques); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
