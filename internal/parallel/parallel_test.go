package parallel

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/clique"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sched"
)

func testGraph(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return graph.PlantedGraph(rng, 60, []graph.PlantedCliqueSpec{
		{Size: 9}, {Size: 6, Overlap: 3}, {Size: 5, Overlap: 2},
	}, 120)
}

func sequentialCliques(t *testing.T, g *graph.Graph, lo, hi int) []clique.Clique {
	t.Helper()
	col := &clique.Collector{}
	if _, err := core.Enumerate(g, core.Options{Lo: lo, Hi: hi, Reporter: col}); err != nil {
		t.Fatal(err)
	}
	return col.Cliques
}

func TestMatchesSequentialAcrossWorkerCounts(t *testing.T) {
	g := testGraph(61)
	want := sequentialCliques(t, g, 2, 0)
	for _, workers := range []int{1, 2, 3, 4, 7} {
		for _, strategy := range []Strategy{Contiguous, Affinity} {
			col := &clique.Collector{}
			res, err := Enumerate(g, Options{
				Workers:  workers,
				Strategy: strategy,
				Reporter: col,
			})
			if err != nil {
				t.Fatal(err)
			}
			if ok, diff := clique.SameSets(col.Cliques, want); !ok {
				t.Fatalf("workers=%d strategy=%d: %s", workers, strategy, diff)
			}
			if res.MaximalCliques != int64(len(want)) {
				t.Errorf("workers=%d strategy=%d: count %d, want %d",
					workers, strategy, res.MaximalCliques, len(want))
			}
		}
	}
}

func TestCountsWithoutReporter(t *testing.T) {
	g := testGraph(62)
	want := sequentialCliques(t, g, 2, 0)
	res, err := Enumerate(g, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaximalCliques != int64(len(want)) {
		t.Errorf("count %d, want %d", res.MaximalCliques, len(want))
	}
	maxSize := 0
	for _, c := range want {
		if len(c) > maxSize {
			maxSize = len(c)
		}
	}
	if res.MaxCliqueSize != maxSize {
		t.Errorf("MaxCliqueSize = %d, want %d", res.MaxCliqueSize, maxSize)
	}
}

func TestSeededParallelMatchesSequential(t *testing.T) {
	g := testGraph(63)
	for _, initK := range []int{4, 6, 8} {
		want := sequentialCliques(t, g, initK, 0)
		col := &clique.Collector{}
		_, err := Enumerate(g, Options{
			Workers: 4, Lo: initK, Strategy: Affinity, Reporter: col,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ok, diff := clique.SameSets(col.Cliques, want); !ok {
			t.Fatalf("Init_K=%d: %s", initK, diff)
		}
	}
}

func TestUpperBoundHonored(t *testing.T) {
	g := testGraph(64)
	want := sequentialCliques(t, g, 2, 6)
	col := &clique.Collector{}
	if _, err := Enumerate(g, Options{Workers: 3, Hi: 6, Reporter: col}); err != nil {
		t.Fatal(err)
	}
	if ok, diff := clique.SameSets(col.Cliques, want); !ok {
		t.Fatalf("Hi=6: %s", diff)
	}
}

func TestContiguousPreservesCanonicalOrder(t *testing.T) {
	g := testGraph(65)
	var got []clique.Clique
	_, err := Enumerate(g, Options{
		Workers:  4,
		Strategy: Contiguous,
		Reporter: clique.ReporterFunc(func(c clique.Clique) {
			got = append(got, append(clique.Clique(nil), c...))
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if clique.Compare(got[i-1], got[i]) >= 0 {
			t.Fatalf("order violated at %d: %v then %v", i, got[i-1], got[i])
		}
	}
}

func TestAffinityNonDecreasingSizes(t *testing.T) {
	g := testGraph(66)
	lastSize := 0
	_, err := Enumerate(g, Options{
		Workers:  4,
		Strategy: Affinity,
		Reporter: clique.ReporterFunc(func(c clique.Clique) {
			if len(c) < lastSize {
				t.Fatalf("size order violated: %d after %d", len(c), lastSize)
			}
			lastSize = len(c)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecomputeCNParallel(t *testing.T) {
	g := testGraph(67)
	want := sequentialCliques(t, g, 2, 0)
	col := &clique.Collector{}
	if _, err := Enumerate(g, Options{Workers: 2, RecomputeCN: true, Reporter: col}); err != nil {
		t.Fatal(err)
	}
	if ok, diff := clique.SameSets(col.Cliques, want); !ok {
		t.Fatalf("recompute mode: %s", diff)
	}
}

func TestLevelStatsPopulated(t *testing.T) {
	g := testGraph(68)
	var levels []LevelStats
	res, err := Enumerate(g, Options{
		Workers: 3,
		OnLevel: func(st LevelStats) { levels = append(levels, st) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != len(res.Levels) {
		t.Fatalf("OnLevel fired %d times, %d levels recorded", len(levels), len(res.Levels))
	}
	var total int64
	for _, st := range levels {
		if len(st.WorkerBusy) != 3 || len(st.WorkerCost) != 3 {
			t.Fatalf("per-worker stats missing: %+v", st)
		}
		total += st.Maximal
	}
	if total != res.MaximalCliques {
		t.Errorf("level maximal sum %d != result %d", total, res.MaximalCliques)
	}
	if len(res.WorkerBusy) != 3 {
		t.Errorf("WorkerBusy = %v", res.WorkerBusy)
	}
}

func TestAffinityTransfersHappenUnderSkew(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		// Stealing needs workers that actually run concurrently: on a
		// single-P box the goroutines serialize, each drains its home
		// queue before another gets the chance to be idle, and no
		// transfer ever triggers.  (`go test -cpu 4` restores the test.)
		t.Skip("affinity transfers need GOMAXPROCS >= 2")
	}
	// A graph with one giant clique and scattered noise gives one worker
	// a dominating sub-list chain; idle workers must steal.  Stealing
	// depends on real-time imbalance, so on sub-millisecond runs a lucky
	// schedule can drain every queue at home — retry a few seeds before
	// declaring the balancer dead.
	for attempt := 0; attempt < 5; attempt++ {
		rng := rand.New(rand.NewSource(69 + int64(attempt)))
		g := graph.PlantedGraph(rng, 200, []graph.PlantedCliqueSpec{{Size: 14}}, 400)
		res, err := Enumerate(g, Options{
			Workers:  4,
			Strategy: Affinity,
			Policy:   sched.Policy{RelTolerance: 0.05},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Transfers > 0 {
			return
		}
	}
	t.Error("no transfers on a skewed workload in 5 attempts")
}

// TestBarrierAffinityActsFromLevelOne is the regression test for the
// seed-ownership bug: seeding used to leave sub-list ownership unset, so
// the Affinity strategy silently ran a contiguous split on the first
// generation level (transfers were impossible there by construction).
// With creator ownership assigned at seed time, the barrier backend's
// level-one assignment starts from the seeding thread's queue and the
// threshold balancer must move work — deterministically, because the
// barrier's transfer decision is pure arithmetic.
func TestBarrierAffinityActsFromLevelOne(t *testing.T) {
	rng := rand.New(rand.NewSource(69))
	g := graph.PlantedGraph(rng, 80, []graph.PlantedCliqueSpec{{Size: 12}}, 60)
	var first *LevelStats
	res, err := EnumerateBarrier(g, Options{
		Workers:  4,
		Strategy: Affinity,
		Policy:   sched.Policy{RelTolerance: 0.05},
		OnLevel: func(st LevelStats) {
			if first == nil {
				first = &st
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if first == nil {
		t.Fatal("no levels ran")
	}
	if first.Transfers == 0 {
		t.Errorf("level %d->%d: no transfers — Affinity not in effect from level one", first.FromK, first.FromK+1)
	}
	want := sequentialCliques(t, g, 2, 0)
	if res.MaximalCliques != int64(len(want)) {
		t.Errorf("count %d, want %d", res.MaximalCliques, len(want))
	}
}

// TestStrategyParity: both dispatch strategies, on both backends, must
// count exactly the same maximal cliques across a spread of seeds.
func TestStrategyParity(t *testing.T) {
	for seed := int64(100); seed < 108; seed++ {
		g := testGraph(seed)
		want := int64(len(sequentialCliques(t, g, 2, 0)))
		for _, workers := range []int{2, 5} {
			counts := map[string]int64{}
			for name, strategy := range map[string]Strategy{"contiguous": Contiguous, "affinity": Affinity} {
				res, err := Enumerate(g, Options{Workers: workers, Strategy: strategy})
				if err != nil {
					t.Fatal(err)
				}
				counts["streaming/"+name] = res.MaximalCliques
				bres, err := EnumerateBarrier(g, Options{Workers: workers, Strategy: strategy})
				if err != nil {
					t.Fatal(err)
				}
				counts["barrier/"+name] = bres.MaximalCliques
			}
			for name, got := range counts {
				if got != want {
					t.Errorf("seed %d workers %d %s: %d maximal cliques, want %d",
						seed, workers, name, got, want)
				}
			}
		}
	}
}

// The streaming merger releases emissions in sub-list order, so the
// Affinity strategy now delivers full canonical order too — not just
// non-decreasing sizes.
func TestAffinityPreservesCanonicalOrder(t *testing.T) {
	g := testGraph(71)
	var got []clique.Clique
	_, err := Enumerate(g, Options{
		Workers:  4,
		Strategy: Affinity,
		Policy:   sched.Policy{RelTolerance: 0.01},
		Reporter: clique.ReporterFunc(func(c clique.Clique) {
			got = append(got, append(clique.Clique(nil), c...))
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no cliques")
	}
	for i := 1; i < len(got); i++ {
		if clique.Compare(got[i-1], got[i]) >= 0 {
			t.Fatalf("order violated at %d: %v then %v", i, got[i-1], got[i])
		}
	}
}

func TestBarrierMatchesSequential(t *testing.T) {
	g := testGraph(72)
	want := sequentialCliques(t, g, 2, 0)
	for _, strategy := range []Strategy{Contiguous, Affinity} {
		col := &clique.Collector{}
		if _, err := EnumerateBarrier(g, Options{Workers: 4, Strategy: strategy, Reporter: col}); err != nil {
			t.Fatal(err)
		}
		if ok, diff := clique.SameSets(col.Cliques, want); !ok {
			t.Fatalf("strategy %d: %s", strategy, diff)
		}
	}
}

func TestChunksPerWorkerOption(t *testing.T) {
	g := testGraph(73)
	want := sequentialCliques(t, g, 2, 0)
	for _, cpw := range []int{1, 2, 64} {
		res, err := Enumerate(g, Options{Workers: 3, ChunksPerWorker: cpw})
		if err != nil {
			t.Fatal(err)
		}
		if res.MaximalCliques != int64(len(want)) {
			t.Errorf("ChunksPerWorker=%d: count %d, want %d", cpw, res.MaximalCliques, len(want))
		}
	}
}

func TestSeededBarrierMatchesSequential(t *testing.T) {
	g := testGraph(74)
	for _, initK := range []int{4, 6} {
		want := sequentialCliques(t, g, initK, 0)
		col := &clique.Collector{}
		if _, err := EnumerateBarrier(g, Options{
			Workers: 3, Lo: initK, Strategy: Affinity, Reporter: col,
		}); err != nil {
			t.Fatal(err)
		}
		if ok, diff := clique.SameSets(col.Cliques, want); !ok {
			t.Fatalf("Init_K=%d: %s", initK, diff)
		}
	}
}

func TestInvalidOptions(t *testing.T) {
	g := graph.New(3)
	if _, err := Enumerate(g, Options{Workers: 0}); err == nil {
		t.Error("0 workers accepted")
	}
	if _, err := Enumerate(g, Options{Workers: 1, Lo: 5, Hi: 4}); err == nil {
		t.Error("Hi < Lo accepted")
	}
}

func BenchmarkParallel2Workers(b *testing.B) {
	rng := rand.New(rand.NewSource(70))
	g := graph.PlantedGraph(rng, 300, []graph.PlantedCliqueSpec{{Size: 14}}, 700)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(g, Options{Workers: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
