package parallel

import (
	"math/rand"
	"testing"

	"repro/internal/clique"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sched"
)

func testGraph(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return graph.PlantedGraph(rng, 60, []graph.PlantedCliqueSpec{
		{Size: 9}, {Size: 6, Overlap: 3}, {Size: 5, Overlap: 2},
	}, 120)
}

func sequentialCliques(t *testing.T, g *graph.Graph, lo, hi int) []clique.Clique {
	t.Helper()
	col := &clique.Collector{}
	if _, err := core.Enumerate(g, core.Options{Lo: lo, Hi: hi, Reporter: col}); err != nil {
		t.Fatal(err)
	}
	return col.Cliques
}

func TestMatchesSequentialAcrossWorkerCounts(t *testing.T) {
	g := testGraph(61)
	want := sequentialCliques(t, g, 2, 0)
	for _, workers := range []int{1, 2, 3, 4, 7} {
		for _, strategy := range []Strategy{Contiguous, Affinity} {
			col := &clique.Collector{}
			res, err := Enumerate(g, Options{
				Workers:  workers,
				Strategy: strategy,
				Reporter: col,
			})
			if err != nil {
				t.Fatal(err)
			}
			if ok, diff := clique.SameSets(col.Cliques, want); !ok {
				t.Fatalf("workers=%d strategy=%d: %s", workers, strategy, diff)
			}
			if res.MaximalCliques != int64(len(want)) {
				t.Errorf("workers=%d strategy=%d: count %d, want %d",
					workers, strategy, res.MaximalCliques, len(want))
			}
		}
	}
}

func TestCountsWithoutReporter(t *testing.T) {
	g := testGraph(62)
	want := sequentialCliques(t, g, 2, 0)
	res, err := Enumerate(g, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaximalCliques != int64(len(want)) {
		t.Errorf("count %d, want %d", res.MaximalCliques, len(want))
	}
	maxSize := 0
	for _, c := range want {
		if len(c) > maxSize {
			maxSize = len(c)
		}
	}
	if res.MaxCliqueSize != maxSize {
		t.Errorf("MaxCliqueSize = %d, want %d", res.MaxCliqueSize, maxSize)
	}
}

func TestSeededParallelMatchesSequential(t *testing.T) {
	g := testGraph(63)
	for _, initK := range []int{4, 6, 8} {
		want := sequentialCliques(t, g, initK, 0)
		col := &clique.Collector{}
		_, err := Enumerate(g, Options{
			Workers: 4, Lo: initK, Strategy: Affinity, Reporter: col,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ok, diff := clique.SameSets(col.Cliques, want); !ok {
			t.Fatalf("Init_K=%d: %s", initK, diff)
		}
	}
}

func TestUpperBoundHonored(t *testing.T) {
	g := testGraph(64)
	want := sequentialCliques(t, g, 2, 6)
	col := &clique.Collector{}
	if _, err := Enumerate(g, Options{Workers: 3, Hi: 6, Reporter: col}); err != nil {
		t.Fatal(err)
	}
	if ok, diff := clique.SameSets(col.Cliques, want); !ok {
		t.Fatalf("Hi=6: %s", diff)
	}
}

func TestContiguousPreservesCanonicalOrder(t *testing.T) {
	g := testGraph(65)
	var got []clique.Clique
	_, err := Enumerate(g, Options{
		Workers:  4,
		Strategy: Contiguous,
		Reporter: clique.ReporterFunc(func(c clique.Clique) {
			got = append(got, append(clique.Clique(nil), c...))
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if clique.Compare(got[i-1], got[i]) >= 0 {
			t.Fatalf("order violated at %d: %v then %v", i, got[i-1], got[i])
		}
	}
}

func TestAffinityNonDecreasingSizes(t *testing.T) {
	g := testGraph(66)
	lastSize := 0
	_, err := Enumerate(g, Options{
		Workers:  4,
		Strategy: Affinity,
		Reporter: clique.ReporterFunc(func(c clique.Clique) {
			if len(c) < lastSize {
				t.Fatalf("size order violated: %d after %d", len(c), lastSize)
			}
			lastSize = len(c)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecomputeCNParallel(t *testing.T) {
	g := testGraph(67)
	want := sequentialCliques(t, g, 2, 0)
	col := &clique.Collector{}
	if _, err := Enumerate(g, Options{Workers: 2, RecomputeCN: true, Reporter: col}); err != nil {
		t.Fatal(err)
	}
	if ok, diff := clique.SameSets(col.Cliques, want); !ok {
		t.Fatalf("recompute mode: %s", diff)
	}
}

func TestLevelStatsPopulated(t *testing.T) {
	g := testGraph(68)
	var levels []LevelStats
	res, err := Enumerate(g, Options{
		Workers: 3,
		OnLevel: func(st LevelStats) { levels = append(levels, st) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != len(res.Levels) {
		t.Fatalf("OnLevel fired %d times, %d levels recorded", len(levels), len(res.Levels))
	}
	var total int64
	for _, st := range levels {
		if len(st.WorkerBusy) != 3 || len(st.WorkerCost) != 3 {
			t.Fatalf("per-worker stats missing: %+v", st)
		}
		total += st.Maximal
	}
	if total != res.MaximalCliques {
		t.Errorf("level maximal sum %d != result %d", total, res.MaximalCliques)
	}
	if len(res.WorkerBusy) != 3 {
		t.Errorf("WorkerBusy = %v", res.WorkerBusy)
	}
}

func TestAffinityTransfersHappenUnderSkew(t *testing.T) {
	// A graph with one giant clique and scattered noise gives one worker
	// a dominating sub-list chain; the threshold balancer must transfer.
	rng := rand.New(rand.NewSource(69))
	g := graph.PlantedGraph(rng, 80, []graph.PlantedCliqueSpec{{Size: 12}}, 60)
	res, err := Enumerate(g, Options{
		Workers:  4,
		Strategy: Affinity,
		Policy:   sched.Policy{RelTolerance: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transfers == 0 {
		t.Error("no transfers on a skewed workload")
	}
}

func TestInvalidOptions(t *testing.T) {
	g := graph.New(3)
	if _, err := Enumerate(g, Options{Workers: 0}); err == nil {
		t.Error("0 workers accepted")
	}
	if _, err := Enumerate(g, Options{Workers: 1, Lo: 5, Hi: 4}); err == nil {
		t.Error("Hi < Lo accepted")
	}
}

func BenchmarkParallel2Workers(b *testing.B) {
	rng := rand.New(rand.NewSource(70))
	g := graph.PlantedGraph(rng, 300, []graph.PlantedCliqueSpec{{Size: 14}}, 700)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(g, Options{Workers: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
