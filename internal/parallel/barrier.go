package parallel

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/clique"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sched"
)

// EnumerateBarrier is the previous bulk-synchronous implementation of the
// multithreaded Clique Enumerator, retained as the reference baseline the
// streaming pool (Enumerate) is benchmarked against.  Per level it
// computes one static assignment, respawns a goroutine per worker, takes
// a full barrier, and buffers every emission until the barrier; seeding
// is sequential.
//
// Unlike the original version, seeding now assigns creator ownership
// (every seed sub-list is owned by the seeding thread, worker 0), so the
// Affinity strategy's threshold balancer is in effect from the first
// generation level instead of silently falling back to a contiguous
// split.
func EnumerateBarrier(g graph.Interface, opts Options) (*Result, error) {
	mode, err := checkOptions(&opts)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{WorkerBusy: make([]float64, opts.Workers)}

	// Seed-phase reporter: counts and forwards maximal Lo-cliques.
	seedCount := func(c clique.Clique) {
		res.MaximalCliques++
		if len(c) > res.MaxCliqueSize {
			res.MaxCliqueSize = len(c)
		}
		if opts.Reporter != nil {
			opts.Reporter.Emit(c)
		}
	}

	// Seeding is sequential — part of the bulk-synchronous design this
	// baseline preserves.  All seed sub-lists are created by this thread,
	// so their home is worker 0.
	var lvl *core.Level
	if opts.Lo <= 2 {
		lvl = core.SeedFromEdgesMode(g, mode)
	} else {
		lvl, res.SeedStats, err = core.SeedFromKMode(g, opts.Lo, mode,
			clique.ReporterFunc(seedCount))
		if err != nil {
			return nil, err
		}
	}
	homes := make([]int32, len(lvl.Sub))

	// Governor charging mirrors the streaming pool's: builder scratch up
	// front, kept sub-lists at keep time, consumed levels at barriers.
	// Enforcement is level-granular — the bulk-synchronous design has no
	// mid-level drain point — so a tripped budget aborts at the next
	// barrier rather than mid-level.
	gov := opts.Gov
	gov.Charge(lvl.Bytes(g.N()))
	pool := bitset.NewPool(g.N())
	workers := make([]*barrierWorker, opts.Workers)
	var scratch int64
	for w := range workers {
		b := core.NewBuilderMode(g, mode, pool)
		b.Gov = gov
		scratch += b.ScratchBytes()
		workers[w] = &barrierWorker{builder: b}
	}
	gov.Charge(scratch)
	defer gov.Release(scratch)

	words := int64((g.N() + 63) / 64)
	for len(lvl.Sub) > 0 && (opts.Hi == 0 || lvl.K+1 <= opts.Hi) {
		// Cancellation is level-granular here: the bulk-synchronous
		// design has no mid-level pull point to interrupt.
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			gov.Release(lvl.Bytes(g.N())) // retire the level before aborting
			res.Elapsed = time.Since(start)
			return res, fmt.Errorf("parallel: canceled at level %d->%d: %w",
				lvl.K, lvl.K+1, opts.Ctx.Err())
		}
		lvlBytes := lvl.Bytes(g.N())
		loads := make([]int64, len(lvl.Sub))
		for i, s := range lvl.Sub {
			loads[i] = estimateLoad(s, words)
		}

		var assign sched.Assignment
		transfers := 0
		if opts.Strategy == Affinity {
			assign = sched.ByHome(homes, opts.Workers)
			transfers = len(opts.Policy.Rebalance(assign, loads))
		} else {
			assign = sched.BalancedContiguous(loads, opts.Workers)
		}

		// Workers generate independently; the scheduler's barrier is the
		// WaitGroup.
		var wg sync.WaitGroup
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				workers[w].run(lvl, assign[w], opts.Reporter != nil)
			}(w)
		}
		wg.Wait()

		// Collect: merge next-level fragments and emissions in worker
		// order, record loads and stats, decide next homes.
		st := LevelStats{
			FromK:      lvl.K,
			Sublists:   len(lvl.Sub),
			Transfers:  transfers,
			WorkerBusy: make([]float64, opts.Workers),
			WorkerCost: make([]int64, opts.Workers),
		}
		next := &core.Level{K: lvl.K + 1}
		homes = homes[:0]
		for w, wk := range workers {
			st.WorkerBusy[w] = wk.busy.Seconds()
			st.WorkerCost[w] = wk.builder.Cost.Units()
			st.Maximal += wk.builder.Maximal
			res.WorkerBusy[w] += wk.busy.Seconds()
			if opts.Reporter != nil {
				for _, c := range wk.emitted {
					opts.Reporter.Emit(c)
				}
			}
			next.Sub = append(next.Sub, wk.builder.Next...)
			for range wk.builder.Next {
				homes = append(homes, int32(w))
			}
		}
		res.MaximalCliques += st.Maximal
		if st.Maximal > 0 && lvl.K+1 > res.MaxCliqueSize {
			res.MaxCliqueSize = lvl.K + 1
		}
		res.Transfers += transfers
		res.Levels = append(res.Levels, st)
		if opts.OnLevel != nil {
			opts.OnLevel(st)
		}
		if gov.Over() {
			// gov.Err() reports Peak, so reconciling the consumed level and
			// the kept next level first does not distort the message.
			gov.Release(lvlBytes + next.Bytes(g.N()))
			res.Elapsed = time.Since(start)
			return res, fmt.Errorf("parallel: level %d->%d: %w", lvl.K, lvl.K+1, gov.Err())
		}
		gov.Release(lvlBytes)
		lvl = next
	}
	gov.Release(lvl.Bytes(g.N()))
	res.Elapsed = time.Since(start)
	return res, nil
}

type barrierWorker struct {
	builder *core.Builder
	emitted []clique.Clique
	busy    time.Duration
}

// run processes the assigned sub-list indices of the level, buffering any
// emissions for ordered delivery after the barrier.
func (wk *barrierWorker) run(lvl *core.Level, items []int, collect bool) {
	wk.builder.Reset()
	wk.emitted = wk.emitted[:0]
	var rep clique.Reporter
	if collect {
		rep = clique.ReporterFunc(func(c clique.Clique) {
			wk.emitted = append(wk.emitted, append(clique.Clique(nil), c...))
		})
	}
	start := time.Now()
	for _, i := range items {
		wk.builder.ProcessSubList(lvl.Sub[i], rep)
	}
	wk.busy = time.Since(start)
}
